// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation at laptop scale. Each BenchmarkFigNN corresponds to
// one figure; accuracies (or factors) are reported as custom benchmark
// metrics so `go test -bench=. -benchmem` prints the same quantities the
// paper plots. The absolute numbers come from a reduced dataset — the
// paper's full POJ-104 scale is available through cmd/arena — but the
// qualitative shape (who wins, by roughly what factor) matches; see
// EXPERIMENTS.md for the side-by-side.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progcache"
)

// benchSet caches the shared reduced dataset across benchmarks.
var benchSetCache = map[[2]int]*dataset.Set{}

func benchSet(b *testing.B, classes, perClass int) *dataset.Set {
	b.Helper()
	key := [2]int{classes, perClass}
	if s, ok := benchSetCache[key]; ok {
		return s
	}
	s, err := dataset.Generate(classes, perClass, 12345)
	if err != nil {
		b.Fatal(err)
	}
	benchSetCache[key] = s
	return s
}

func runGameBench(b *testing.B, set *dataset.Set, cfg core.GameConfig) float64 {
	b.Helper()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := core.RunGame(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc += res.Accuracy
	}
	return acc / float64(b.N)
}

// BenchmarkFig05EmbeddingsGame0 compares the nine embeddings in Game 0
// (paper: 32 classes, dgcnn/cnn; here a reduced 8x12 with the same models).
func BenchmarkFig05EmbeddingsGame0(b *testing.B) {
	set := benchSet(b, 8, 12)
	for _, emb := range embed.Names() {
		model := "dgcnn"
		if e, _ := embed.Get(emb); e.Kind == embed.VectorKind {
			model = "cnn"
		}
		b.Run(emb, func(b *testing.B) {
			acc := runGameBench(b, set, core.GameConfig{
				Game:     0,
				Pipeline: core.Pipeline{Embedding: emb, Model: model},
			})
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkFig06EmbeddingsGames123 evaluates the embeddings under evasion
// (ollvm) in the three adversarial games. To keep the run affordable it
// uses the histogram-vs-compact-graph contrast the paper highlights.
func BenchmarkFig06EmbeddingsGames123(b *testing.B) {
	set := benchSet(b, 6, 10)
	for _, game := range []int{1, 2, 3} {
		for _, emb := range []string{"histogram", "cfg_compact"} {
			model := "cnn"
			if emb == "cfg_compact" {
				model = "dgcnn"
			}
			b.Run(benchName("game", game, emb), func(b *testing.B) {
				acc := runGameBench(b, set, core.GameConfig{
					Game:   game,
					Evader: "ollvm",
					Pipeline: core.Pipeline{
						Embedding: emb, Model: model, Normalizer: passes.O3,
					},
				})
				b.ReportMetric(acc, "accuracy")
			})
		}
	}
}

func benchName(prefix string, game int, rest string) string {
	return prefix + string(rune('0'+game)) + "/" + rest
}

// BenchmarkFig07ModelsGame0 compares the six models on the histogram
// embedding and reports their accuracy and memory (paper: Figure 7).
func BenchmarkFig07ModelsGame0(b *testing.B) {
	set := benchSet(b, 10, 16)
	for _, model := range ml.VectorNames() {
		b.Run(model, func(b *testing.B) {
			var mem int64
			acc := 0.0
			for i := 0; i < b.N; i++ {
				res, err := core.RunGame(set, core.GameConfig{
					Game:     0,
					Pipeline: core.Pipeline{Embedding: "histogram", Model: model},
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				acc += res.Accuracy
				mem = res.ModelMemory
			}
			b.ReportMetric(acc/float64(b.N), "accuracy")
			b.ReportMetric(float64(mem), "model-bytes")
		})
	}
}

// BenchmarkFig08Game1 measures evasion against an unaware classifier for
// each evader (paper: Figure 8).
func BenchmarkFig08Game1(b *testing.B) {
	set := benchSet(b, 8, 12)
	for _, evader := range []string{"none", "O3", "bcf", "fla", "sub", "ollvm", "rs", "mcmc", "drlsg"} {
		b.Run(evader, func(b *testing.B) {
			acc := runGameBench(b, set, core.GameConfig{
				Game:     1,
				Evader:   evader,
				Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
			})
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkFig09Game2 repeats Figure 8 with an obfuscation-aware classifier
// (paper: Figure 9 — accuracies return to Game-0 levels).
func BenchmarkFig09Game2(b *testing.B) {
	set := benchSet(b, 8, 12)
	for _, evader := range []string{"O3", "bcf", "fla", "sub", "ollvm", "rs"} {
		b.Run(evader, func(b *testing.B) {
			acc := runGameBench(b, set, core.GameConfig{
				Game:     2,
				Evader:   evader,
				Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
			})
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkFig10Distance reports the mean histogram distance each evader
// induces (paper: Figure 10).
func BenchmarkFig10Distance(b *testing.B) {
	set := benchSet(b, 6, 4)
	for _, tr := range []string{"O3", "bcf", "fla", "sub", "ollvm", "rs", "mcmc", "drlsg"} {
		b.Run(tr, func(b *testing.B) {
			mean := 0.0
			for i := 0; i < b.N; i++ {
				res, err := core.DistanceAnalysis(set.Samples, []string{tr}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				mean += res[0].Summary.Mean
			}
			b.ReportMetric(mean/float64(b.N), "histogram-dist")
		})
	}
}

// BenchmarkFig11Game3 measures the -O3 normalizer against each evader
// (paper: Figure 11 — source evaders collapse, bcf/fla resist).
func BenchmarkFig11Game3(b *testing.B) {
	set := benchSet(b, 8, 12)
	for _, evader := range []string{"O3", "bcf", "fla", "sub", "ollvm", "rs", "mcmc", "drlsg"} {
		b.Run(evader, func(b *testing.B) {
			acc := runGameBench(b, set, core.GameConfig{
				Game:   3,
				Evader: evader,
				Pipeline: core.Pipeline{
					Embedding: "histogram", Model: "rf", Normalizer: passes.O3,
				},
			})
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkFig12ClassSweep evaluates accuracy as the class count grows
// (paper: Figure 12, 4..64 classes).
func BenchmarkFig12ClassSweep(b *testing.B) {
	for _, classes := range []int{4, 8, 16, 32} {
		set := benchSet(b, classes, 10)
		b.Run(benchName("classes", 0, itoa(classes)), func(b *testing.B) {
			acc := runGameBench(b, set, core.GameConfig{
				Game:     0,
				Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
			})
			b.ReportMetric(acc, "accuracy")
			b.ReportMetric(1/float64(classes), "random-baseline")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig13Speedup reruns the performance experiment: dynamic
// instruction counts at O0/O3/ollvm over the sixteen kernels (paper:
// Figure 13, geomeans 2.32x faster / 8.33x slower).
func BenchmarkFig13Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.Speedup(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.GeoO3Speedup, "O3-speedup")
		b.ReportMetric(rep.GeoOllvmSlowdown, "ollvm-slowdown")
	}
}

// BenchmarkFig14Discover reruns the obfuscator-identification experiment on
// the four dataset constructions (paper: Figure 14 — ~25% everywhere except
// the spurious dataset3).
func BenchmarkFig14Discover(b *testing.B) {
	for d := 1; d <= 4; d++ {
		b.Run(benchName("dataset", d, ""), func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				res, err := core.Discover(core.DiscoverConfig{
					Dataset: d, PerTransformer: 15, Model: "rf", Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				acc += res.Accuracy
			}
			b.ReportMetric(acc/float64(b.N), "accuracy")
		})
	}
}

// BenchmarkFig15Malware reruns the family-identification study (paper:
// Figure 15 — accuracy climbs to ~1.0 with the full suite).
func BenchmarkFig15Malware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.MalwareStudy(core.MalwareConfig{
			TrainPos: 10, Challenge: 5, Models: []string{"rf"}, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		accs := res.Acc["rf"]
		b.ReportMetric(accs[0], "accuracy-t1")
		b.ReportMetric(accs[len(accs)-1], "accuracy-t7")
	}
}

// BenchmarkFig16Antivirus reruns the signature-scanner comparison (paper:
// Figure 16 — the specialised rf dominates the generic engine).
func BenchmarkFig16Antivirus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.AntivirusComparison(core.MalwareConfig{
			TrainPos: 10, Challenge: 5, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		av, rf := 0.0, 0.0
		for _, r := range rows {
			av += r.AVDetect
			rf += r.RFDetect
		}
		b.ReportMetric(av/float64(len(rows)), "scanner-accuracy")
		b.ReportMetric(rf/float64(len(rows)), "rf-accuracy")
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationFoldableBCF quantifies how much of bcf's resistance to
// -O3 normalization comes from predicate opacity: with foldable predicates
// the detours vanish under optimization.
func BenchmarkAblationFoldableBCF(b *testing.B) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 50; i++) { if (i % 2) s += i; else s ^= i; }
		return s;
	}`
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		opaque, _ := minic.CompileSource(src, "a")
		foldable, _ := minic.CompileSource(src, "b")
		for _, f := range opaque.Functions {
			obfus.BogusControlFlow(f, rng, 0.9)
		}
		for _, f := range foldable.Functions {
			obfus.BogusControlFlowFoldable(f, rand.New(rand.NewSource(int64(i+1))), 0.9)
		}
		if err := passes.Optimize(opaque, passes.O3); err != nil {
			b.Fatal(err)
		}
		if err := passes.Optimize(foldable, passes.O3); err != nil {
			b.Fatal(err)
		}
		base, _ := minic.CompileSource(src, "c")
		if err := passes.Optimize(base, passes.O3); err != nil {
			b.Fatal(err)
		}
		h := embed.Histogram
		b.ReportMetric(embed.Distance(h(base), h(opaque)), "opaque-residual-dist")
		b.ReportMetric(embed.Distance(h(base), h(foldable)), "foldable-residual-dist")
	}
}

// BenchmarkAblationFlaPostO3 probes the fla × optimization interaction the
// paper flags as an "interesting accident" (in their stack, optimizing
// flattened code *increased* its evasion power). The bench reports fla's
// histogram distance before and after -O3 normalization; in this
// reproduction the optimizer claws back roughly half the distance — the
// dispatcher's memory traffic is promoted while the switch skeleton
// survives — so here normalization mildly helps against fla (see
// EXPERIMENTS.md, Figure 11 deviations).
func BenchmarkAblationFlaPostO3(b *testing.B) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 40; i++) { if (i % 3) s += i; else s ^= i; }
		return s;
	}`
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		h := embed.Histogram

		base, _ := minic.CompileSource(src, "base")
		fla, _ := minic.CompileSource(src, "fla")
		if err := obfus.Apply(fla, "fla", rng); err != nil {
			b.Fatal(err)
		}
		preDist := embed.Distance(h(base), h(fla))

		baseO3, _ := minic.CompileSource(src, "b3")
		flaO3, _ := minic.CompileSource(src, "f3")
		if err := obfus.Apply(flaO3, "fla", rand.New(rand.NewSource(int64(i+1)))); err != nil {
			b.Fatal(err)
		}
		if err := passes.Optimize(baseO3, passes.O3); err != nil {
			b.Fatal(err)
		}
		if err := passes.Optimize(flaO3, passes.O3); err != nil {
			b.Fatal(err)
		}
		postDist := embed.Distance(h(baseO3), h(flaO3))
		b.ReportMetric(preDist, "fla-dist-at-O0")
		b.ReportMetric(postDist, "fla-dist-after-O3")
	}
}

// BenchmarkAblationHistogramBuckets compares the 63-opcode histogram with a
// collapsed 8-category variant: how much dimensionality does classification
// need?
func BenchmarkAblationHistogramBuckets(b *testing.B) {
	set := benchSet(b, 8, 12)
	// The collapsed variant is computed by bucketing the full histogram.
	collapse := func(v embed.Vector) []float64 {
		out := make([]float64, 8)
		for op, c := range v {
			out[op%8] += c
		}
		return out
	}
	featurize := func(samples []dataset.Sample, full bool) ([][]float64, []int) {
		X := make([][]float64, len(samples))
		y := make([]int, len(samples))
		for i, s := range samples {
			m, err := minic.CompileSource(s.Source, "x")
			if err != nil {
				b.Fatal(err)
			}
			h := embed.Histogram(m)
			if full {
				X[i] = h
			} else {
				X[i] = collapse(h)
			}
			y[i] = s.Class
		}
		return X, y
	}
	for _, full := range []bool{true, false} {
		name := "full63"
		if !full {
			name = "buckets8"
		}
		b.Run(name, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				train, test := set.Split(0.75, rng)
				Xtr, ytr := featurize(train, full)
				Xte, yte := featurize(test, full)
				model := ml.NewRandomForest(40, 0, rng)
				if err := model.Fit(Xtr, ytr, set.NumClasses); err != nil {
					b.Fatal(err)
				}
				hits := 0
				for j, x := range Xte {
					if model.Predict(x) == yte[j] {
						hits++
					}
				}
				acc += float64(hits) / float64(len(Xte))
			}
			b.ReportMetric(acc/float64(b.N), "accuracy")
		})
	}
}

// BenchmarkAblationForestSize sweeps the random-forest ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	set := benchSet(b, 8, 12)
	for _, trees := range []int{5, 20, 60} {
		b.Run(itoa(trees)+"trees", func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				train, test := set.Split(0.75, rng)
				var Xtr [][]float64
				var ytr []int
				for _, s := range train {
					m, _ := minic.CompileSource(s.Source, "x")
					Xtr = append(Xtr, embed.Histogram(m))
					ytr = append(ytr, s.Class)
				}
				model := ml.NewRandomForest(trees, 0, rng)
				if err := model.Fit(Xtr, ytr, set.NumClasses); err != nil {
					b.Fatal(err)
				}
				hits := 0
				for _, s := range test {
					m, _ := minic.CompileSource(s.Source, "x")
					if model.Predict(embed.Histogram(m)) == s.Class {
						hits++
					}
				}
				acc += float64(hits) / float64(len(test))
			}
			b.ReportMetric(acc/float64(b.N), "accuracy")
		})
	}
}

// BenchmarkHarnessRounds measures the experiment harness itself on a
// repeated-rounds workload (the shape of every figure: N rounds over one
// dataset). "serial-nocache" is the historical configuration — rounds
// played one after another, every sample recompiled from MiniC source each
// round. "parallel-cached" is the current default: the progcache compiles
// each distinct source once and hands out clones, and RunRoundsN plays the
// rounds on a worker pool. Same seeds, bit-identical accuracies; the
// ns/op ratio between the two sub-benchmarks is the harness speedup —
// ≥ 3x from compile caching alone on a single core, more with cores since
// the rounds (including the serial model fits) then overlap.
func BenchmarkHarnessRounds(b *testing.B) {
	set := benchSet(b, 6, 10)
	cfg := core.GameConfig{
		Game:     0,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
	}
	const rounds = 6
	run := func(b *testing.B, workers int, cached bool) {
		progcache.SetEnabled(cached)
		defer progcache.SetEnabled(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i + 1)
			if _, _, err := core.RunRoundsN(set, c, rounds, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial-nocache", func(b *testing.B) { run(b, 1, false) })
	b.Run("parallel-cached", func(b *testing.B) { run(b, 0, true) })
}

// BenchmarkCompile measures raw front-end throughput (not a paper figure;
// infrastructure health).
func BenchmarkCompile(b *testing.B) {
	set := benchSet(b, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := set.Samples[i%len(set.Samples)]
		if _, err := minic.CompileSource(s.Source, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeO3 measures optimizer throughput.
func BenchmarkOptimizeO3(b *testing.B) {
	set := benchSet(b, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := set.Samples[i%len(set.Samples)]
		m, err := minic.CompileSource(s.Source, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := passes.Optimize(m, passes.O3); err != nil {
			b.Fatal(err)
		}
	}
}
