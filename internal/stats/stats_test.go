package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAccuracy(t *testing.T) {
	got, err := stats.Accuracy([]int{1, 2, 3}, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	if _, err := stats.Accuracy(nil, nil); err == nil {
		t.Fatal("empty prediction set must be an error, not 0%")
	}
	if _, err := stats.Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths must be an error, not 0%")
	}
}

func TestConfusion(t *testing.T) {
	cm := stats.Confusion([]int{0, 1, 1, 0}, []int{0, 1, 0, 1}, 2)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[0][1] != 1 || cm[1][0] != 1 {
		t.Fatalf("confusion = %v", cm)
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	if got := stats.MacroF1(pred, pred, 3); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
	wrong := []int{1, 2, 0, 1, 2, 0}
	if got := stats.MacroF1(wrong, pred, 3); got != 0 {
		t.Fatalf("all-wrong F1 = %v", got)
	}
}

// On balanced data with symmetric errors, F1 tracks accuracy (the paper's
// Figure 12 note).
func TestF1TracksAccuracyOnBalancedData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, classes := 600, 6
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = i % classes
		if rng.Float64() < 0.8 {
			pred[i] = truth[i]
		} else {
			pred[i] = rng.Intn(classes)
		}
	}
	acc, err := stats.Accuracy(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	f1 := stats.MacroF1(pred, truth, classes)
	if math.Abs(acc-f1) > 0.05 {
		t.Fatalf("acc %v and F1 %v diverge on balanced data", acc, f1)
	}
}

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v %v", s.Q1, s.Q3)
	}
	empty := stats.Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := stats.Summarize([]float64{7})
	if one.Median != 7 || one.Q1 != 7 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v", got)
	}
	if got := stats.GeoMean([]float64{2, -1}); got != 0 {
		t.Fatalf("non-positive input should give 0, got %v", got)
	}
	if got := stats.GeoMean(nil); got != 0 {
		t.Fatalf("empty geomean = %v", got)
	}
}

// Properties: summary bounds hold for arbitrary inputs.
func TestSummaryProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			// Exclude values whose sums/squares overflow float64; the
			// metric inputs are accuracies and distances, never 1e300.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := stats.Summarize(clean)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: accuracy is within [0,1] and equals 1 iff pred == truth.
func TestAccuracyProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		pred := make([]int, m)
		truth := make([]int, m)
		allEq := true
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(4)
			if pred[i] != truth[i] {
				allEq = false
			}
		}
		a, err := stats.Accuracy(pred, truth)
		if err != nil || a < 0 || a > 1 {
			return false
		}
		return (a == 1) == allEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEloExpected(t *testing.T) {
	if got := stats.EloExpected(1000, 1000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("equal ratings should expect 0.5, got %v", got)
	}
	// A 400-point gap is a 10:1 odds ratio by construction.
	if got := stats.EloExpected(1400, 1000); math.Abs(got-10.0/11.0) > 1e-12 {
		t.Fatalf("+400 should expect 10/11, got %v", got)
	}
	// Expectations of the two sides always sum to 1.
	for _, d := range []float64{-300, -50, 0, 75, 512} {
		a, b := stats.EloExpected(1000+d, 1000), stats.EloExpected(1000, 1000+d)
		if math.Abs(a+b-1) > 1e-12 {
			t.Fatalf("expectations must sum to 1: %v + %v", a, b)
		}
	}
}

func TestEloUpdateZeroSum(t *testing.T) {
	ra, rb := 1000.0, 1100.0
	const games = 10
	score := 6.5 // attacker took 6.5 of 10 points
	na := stats.EloUpdate(ra, rb, score, games, 32)
	nb := stats.EloUpdate(rb, ra, float64(games)-score, games, 32)
	if math.Abs((na+nb)-(ra+rb)) > 1e-9 {
		t.Fatalf("block update must be zero-sum: %v + %v != %v", na, nb, ra+rb)
	}
	// Scoring exactly the expectation leaves the rating unchanged.
	exp := stats.EloExpected(ra, rb) * games
	if got := stats.EloUpdate(ra, rb, exp, games, 32); math.Abs(got-ra) > 1e-9 {
		t.Fatalf("meeting expectation should not move the rating: %v -> %v", ra, got)
	}
	// No games, no movement; k<=0 falls back to the default gain.
	if got := stats.EloUpdate(ra, rb, 0, 0, 32); got != ra {
		t.Fatalf("0 games moved rating to %v", got)
	}
	if got := stats.EloUpdate(ra, rb, float64(games), games, 0); got <= ra {
		t.Fatalf("winning every game must raise the rating, got %v", got)
	}
}
