// Package stats provides the evaluation metrics of the paper: accuracy,
// macro F1 (identical to accuracy on perfectly balanced sets, as Figure 12
// illustrates), confusion matrices, box-plot summaries of repeated rounds
// and geometric means for the speedup analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy is hits over tries. A length mismatch or an empty prediction
// set is an error, not a silent 0 — a real 0% score and a harness bug must
// stay distinguishable.
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: accuracy over mismatched slices: %d predictions vs %d truths",
			len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("stats: accuracy of an empty prediction set")
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred)), nil
}

// Confusion builds the numClasses x numClasses confusion matrix
// (rows = truth, cols = prediction).
func Confusion(pred, truth []int, numClasses int) [][]int {
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i := range pred {
		if truth[i] >= 0 && truth[i] < numClasses && pred[i] >= 0 && pred[i] < numClasses {
			m[truth[i]][pred[i]]++
		}
	}
	return m
}

// MacroF1 averages per-class F1 scores. Classes absent from the truth are
// skipped.
func MacroF1(pred, truth []int, numClasses int) float64 {
	cm := Confusion(pred, truth, numClasses)
	sum, classes := 0.0, 0
	for c := 0; c < numClasses; c++ {
		tp := cm[c][c]
		fn, fp := 0, 0
		for k := 0; k < numClasses; k++ {
			if k != c {
				fn += cm[c][k]
				fp += cm[k][c]
			}
		}
		if tp+fn == 0 {
			continue // class not present
		}
		classes++
		if tp == 0 {
			continue
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		sum += 2 * prec * rec / (prec + rec)
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

// Summary holds the box-plot statistics of repeated measurements (the
// paper's plots summarize ten rounds).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		s.Mean += x
	}
	s.Mean /= float64(len(sorted))
	for _, x := range sorted {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(sorted)))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = quantile(sorted, 0.25)
	s.Median = quantile(sorted, 0.5)
	s.Q3 = quantile(sorted, 0.75)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary as "mean ± std [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f]", s.Mean, s.Std, s.Min, s.Max)
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// EloInitial is the rating both sides of an adversarial game start at, and
// EloK the default update gain (chess club conventions; the absolute scale
// is arbitrary, only rating differences carry meaning).
const (
	EloInitial = 1000.0
	EloK       = 32.0
)

// EloExpected returns the expected score of a player rated ra against an
// opponent rated rb under the logistic Elo model: 1/(1+10^((rb-ra)/400)).
func EloExpected(ra, rb float64) float64 {
	return 1 / (1 + math.Pow(10, (rb-ra)/400))
}

// EloUpdate folds the aggregate outcome of `games` encounters between a
// player rated ra and an opponent rated rb into a new rating for the
// player. scoreA is the player's total score over the block (wins count 1,
// draws 0.5), so 0 <= scoreA <= games. The block update is the standard
// per-game rule applied once with the summed score — the form used when a
// generation of an adversarial arena is scored as one rating period.
// k <= 0 selects EloK; games <= 0 returns ra unchanged.
func EloUpdate(ra, rb, scoreA float64, games int, k float64) float64 {
	if games <= 0 {
		return ra
	}
	if k <= 0 {
		k = EloK
	}
	return ra + k*(scoreA-float64(games)*EloExpected(ra, rb))
}
