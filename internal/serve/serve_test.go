package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/serve"
)

// stubModel is a deterministic Model whose verdict is the index of the
// largest coordinate, with an optional artificial latency to provoke
// overload and timeout paths.
type stubModel struct {
	delay time.Duration
	panic bool
}

func (s *stubModel) Fit(X [][]float64, y []int, numClasses int) error { return nil }

func (s *stubModel) Predict(x []float64) int {
	if s.panic {
		panic("stub model exploded")
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

func (s *stubModel) MemoryBytes() int64 { return 0 }

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestClassifyBatchesConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models:      map[string]ml.Model{"stub": &stubModel{}},
		BatchWindow: 50 * time.Millisecond,
		MaxBatch:    16,
	})

	const n = 8
	var wg sync.WaitGroup
	sizes := make([]int, n)
	verdicts := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vec := make([]float64, 4)
			vec[i%4] = 1 // expected verdict: i%4
			resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: vec})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out serve.ClassifyResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			verdicts[i] = out.Verdicts["stub"]
			sizes[i] = out.BatchSizes["stub"]
		}(i)
	}
	wg.Wait()

	maxBatch := 0
	for i := 0; i < n; i++ {
		if verdicts[i] != i%4 {
			t.Errorf("request %d: verdict %d, want %d", i, verdicts[i], i%4)
		}
		if sizes[i] > maxBatch {
			maxBatch = sizes[i]
		}
	}
	// With a 50ms window and 8 requests fired together, at least one GEMM
	// pass must have carried more than one request.
	if maxBatch < 2 {
		t.Errorf("no coalescing observed: max batch size %d", maxBatch)
	}
}

func TestOverloadSheds429ThenRecovers(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models:      map[string]ml.Model{"stub": &stubModel{delay: 200 * time.Millisecond}},
		MaxInFlight: 2,
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
	})

	const n = 10
	var wg sync.WaitGroup
	var ok, rejected, other int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: []float64{1}})
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				rejected++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Errorf("MaxInFlight=2 with %d concurrent slow requests shed nothing", n)
	}
	if ok == 0 {
		t.Error("overload starved every request; admitted ones should finish")
	}
	if other != 0 {
		t.Errorf("%d requests failed with unexpected statuses", other)
	}

	// The semaphore must fully release: a lone request after the storm
	// succeeds rather than the server collapsing.
	resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: []float64{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload request failed: %d: %s", resp.StatusCode, body)
	}
}

func TestGracefulDrainCompletesInFlight(t *testing.T) {
	s, err := serve.New(serve.Config{
		Models:      map[string]ml.Model{"stub": &stubModel{delay: 300 * time.Millisecond}},
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr

	status := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(serve.ClassifyRequest{Histogram: []float64{1}})
		resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request get admitted

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case st := <-status:
		if st != http.StatusOK {
			t.Fatalf("in-flight request during drain got %d, want 200", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	// New work after drain is refused at the connection or handler level.
	resp, err := http.Get(url + "/healthz")
	if err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Fatal("healthz still 200 after drain")
		}
		resp.Body.Close()
	}
}

func TestRequestTimeoutAnswers504(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models:         map[string]ml.Model{"stub": &stubModel{delay: 2 * time.Second}},
		RequestTimeout: 100 * time.Millisecond,
		MaxBatch:       1,
		BatchWindow:    time.Millisecond,
	})
	resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: []float64{1}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow model got %d, want 504: %s", resp.StatusCode, body)
	}
}

func TestPanicIsolation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models:      map[string]ml.Model{"bad": &stubModel{panic: true}, "good": &stubModel{}},
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
	})
	resp, body := postJSON(t, ts.URL+"/v1/classify",
		serve.ClassifyRequest{Histogram: []float64{1}, Models: []string{"bad"}})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("panicking model answered 200: %s", body)
	}
	// The batcher goroutine must survive its model's panic; an unrelated
	// model keeps serving.
	resp, body = postJSON(t, ts.URL+"/v1/classify",
		serve.ClassifyRequest{Histogram: []float64{0, 1}, Models: []string{"good"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy model after panic got %d: %s", resp.StatusCode, body)
	}
	// And the panicking model's batcher itself still answers (with the
	// same error, not a hang).
	resp, _ = postJSON(t, ts.URL+"/v1/classify",
		serve.ClassifyRequest{Histogram: []float64{1}, Models: []string{"bad"}})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("panicking model recovered to 200 without retraining")
	}
}

func TestClassifyValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models: map[string]ml.Model{"stub": &stubModel{}},
	})
	cases := []struct {
		name string
		req  serve.ClassifyRequest
	}{
		{"empty", serve.ClassifyRequest{}},
		{"both", serve.ClassifyRequest{Source: "int main() { return 0; }", Histogram: []float64{1}}},
		{"broken source", serve.ClassifyRequest{Source: "int main( {"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/classify", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("got %d, want 400: %s", resp.StatusCode, body)
			}
			var e serve.ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("400 without a JSON error body: %s", body)
			}
		})
	}
	// Asking for a model that is not loaded is a well-formed request for a
	// missing resource: 404, not 400.
	t.Run("unknown model", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/classify",
			serve.ClassifyRequest{Histogram: []float64{1}, Models: []string{"nope"}})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("got %d, want 404: %s", resp.StatusCode, body)
		}
		var e serve.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("404 without a JSON error body: %s", body)
		}
	})
}

func TestTransformRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models: map[string]ml.Model{"stub": &stubModel{}},
	})
	src := "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
	resp, body := postJSON(t, ts.URL+"/v1/transform",
		serve.TransformRequest{Source: src, Evader: "sub", Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transform got %d: %s", resp.StatusCode, body)
	}
	var out serve.TransformResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.IR == "" {
		t.Fatal("transform returned empty IR")
	}
	if _, ok := out.Verdicts["stub"]; !ok {
		t.Fatal("transform returned no verdict")
	}

	resp, body = postJSON(t, ts.URL+"/v1/transform",
		serve.TransformRequest{Source: src, Evader: "warp-drive", Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown evader got %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "warp-drive") {
		t.Fatalf("error does not name the bad evader: %s", body)
	}
}

// TestTransformExecute covers the execute=true path: the response must
// carry the transformed program's observable behaviour, computed on the
// configured engine — identical under tree and vm, since the engines are
// conformance-tested to agree bit-for-bit.
func TestTransformExecute(t *testing.T) {
	src := "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }"
	var execs []*core.ExecObs
	for _, engine := range []string{"tree", "vm"} {
		_, ts := newTestServer(t, serve.Config{
			Models: map[string]ml.Model{"stub": &stubModel{}},
			Engine: engine,
		})
		resp, body := postJSON(t, ts.URL+"/v1/transform",
			serve.TransformRequest{Source: src, Evader: "sub", Seed: 7, Execute: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %s: transform got %d: %s", engine, resp.StatusCode, body)
		}
		var out serve.TransformResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Exec == nil {
			t.Fatalf("engine %s: execute=true returned no exec observation", engine)
		}
		if out.Exec.Trap != "" {
			t.Fatalf("engine %s: unexpected trap: %s", engine, out.Exec.Trap)
		}
		if out.Exec.Ret != 45 {
			t.Errorf("engine %s: ret = %d, want 45", engine, out.Exec.Ret)
		}
		if out.Exec.Steps <= 0 {
			t.Errorf("engine %s: steps = %d, want > 0", engine, out.Exec.Steps)
		}
		execs = append(execs, out.Exec)
	}
	if *execs[0] != *execs[1] {
		t.Errorf("engines disagree over the wire: %+v vs %+v", execs[0], execs[1])
	}

	// Without execute, the observation stays absent.
	_, ts := newTestServer(t, serve.Config{
		Models: map[string]ml.Model{"stub": &stubModel{}},
	})
	resp, body := postJSON(t, ts.URL+"/v1/transform",
		serve.TransformRequest{Source: src, Evader: "sub", Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transform got %d: %s", resp.StatusCode, body)
	}
	var out serve.TransformResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Exec != nil {
		t.Fatalf("execute=false returned an exec observation: %+v", out.Exec)
	}
}

// TestBadEngineRejectedAtConstruction pins the fail-fast contract: a typo'd
// -engine must be an error when the server is built, not a 500 at request
// time.
func TestBadEngineRejectedAtConstruction(t *testing.T) {
	_, err := serve.New(serve.Config{
		Models: map[string]ml.Model{"stub": &stubModel{}},
		Engine: "warp-drive",
	})
	if err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("bad engine not rejected by name: %v", err)
	}
}

// TestConcurrentClassifyRace hammers /v1/classify with a real trained model
// from 8 goroutines; run under -race this is the data-race gate for the
// whole request path (admission, batcher, obs counters).
func TestConcurrentClassifyRace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d, classes = 8, 3
	X := make([][]float64, 60)
	y := make([]int, len(X))
	for i := range X {
		c := i % classes
		y[i] = c
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() + 3*float64(c)
		}
		X[i] = row
	}
	lr, err := ml.New("lr", rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.Fit(X, y, classes); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, serve.Config{
		Models:      map[string]ml.Model{"lr": lr},
		BatchWindow: time.Millisecond,
	})

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vec := X[(w*perWorker+i)%len(X)]
				resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: vec})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d req %d: %d: %s", w, i, resp.StatusCode, body)
					return
				}
				var out serve.ClassifyResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- err
					return
				}
				if got, want := out.Verdicts["lr"], lr.Predict(vec); got != want {
					errs <- fmt.Errorf("worker %d req %d: verdict %d, serial predict %d", w, i, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMetriczSurfacesFlatCacheCounters drives two source-bearing classify
// requests for the same program (first compiles it into the bounded
// untrusted tier, second reuses it) and checks /metricz reports the
// untrusted-tier counters and flatten timer — wire-originated compiles go
// through the LRU tier, not the pinned cache. A transform request with a
// mutating evader rides along so the thaw counters (a private module copy
// drawn off the cached flat view) are pinned on the wire too.
func TestMetriczSurfacesFlatCacheCounters(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Models: map[string]ml.Model{"stub": &stubModel{}},
	})
	src := "int main() { int i; int s; s = 0; for (i = 0; i < 9; i = i + 1) { s = s + i; } return s; }"
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d got %d: %s", i, resp.StatusCode, body)
		}
	}
	resp0, body0 := postJSON(t, ts.URL+"/v1/transform", serve.TransformRequest{Source: src, Evader: "sub", Seed: 1})
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("transform got %d: %s", resp0.StatusCode, body0)
	}
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64           `json:"counters"`
		Timers   map[string]json.RawMessage `json:"timers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["progcache.untrusted.misses"] < 1 {
		t.Fatalf("metricz missing progcache.untrusted.misses: %v", snap.Counters)
	}
	if snap.Counters["progcache.untrusted.hits"] < 1 {
		t.Fatalf("metricz missing progcache.untrusted.hits: %v", snap.Counters)
	}
	if _, ok := snap.Timers["progcache.flatten"]; !ok {
		t.Fatalf("metricz missing progcache.flatten timer: %v", snap.Timers)
	}
	if snap.Counters["progcache.thaw.hits"] < 1 {
		t.Fatalf("metricz missing progcache.thaw.hits: %v", snap.Counters)
	}
	if _, ok := snap.Timers["progcache.thaw"]; !ok {
		t.Fatalf("metricz missing progcache.thaw timer: %v", snap.Timers)
	}
}

// TestShutdownUnderLoadNoPanic is the regression hammer for the drain
// ordering race: 16 goroutines keep requests in flight through the raw
// Handler() path (which http.Server.Shutdown never sees) while Shutdown
// runs with an already-expired context, exactly the interleaving that used
// to close the batcher channel under live enqueuers and panic. Run under
// -race. Every response must be a deliberate status; a 500 means the
// handler's recover ate a send-on-closed-channel panic.
func TestShutdownUnderLoadNoPanic(t *testing.T) {
	s, err := serve.New(serve.Config{
		Models:      map[string]ml.Model{"stub": &stubModel{delay: 20 * time.Millisecond}},
		MaxBatch:    4,
		BatchWindow: time.Millisecond,
		MaxInFlight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 16
	stop := make(chan struct{})
	bad := make(chan string, workers*64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(serve.ClassifyRequest{Histogram: []float64{1, 0}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // connection churn during teardown is fine
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout,
					serve.StatusClientClosedRequest:
				default:
					select {
					case bad <- fmt.Sprintf("status %d", resp.StatusCode):
					default:
					}
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the hammer establish in-flight load

	// An already-expired context forces the worst ordering: Shutdown cannot
	// wait politely, yet the batcher still must not close under a live
	// enqueuer.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(expired)

	// The server is now draining; the hammer keeps firing for a beat to
	// catch enqueue-after-close, which must answer 503, never panic.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Errorf("request answered with unexpected %s during shutdown", msg)
	}
}

// TestModelHotSwap drives the PUT /v1/models/{name} path: train two
// opposing models, swap one in over the wire, and require the verdict to
// flip without a restart, the version to advance in /healthz, a garbage
// snapshot to bounce with 400, and a push under a fresh name to add a
// model rather than replace one.
func TestModelHotSwap(t *testing.T) {
	// Two single-feature lr models trained on opposite labelings: modelA
	// says class 0 for a high feature, modelB says class 1.
	train := func(flip bool) ml.Model {
		rng := rand.New(rand.NewSource(11))
		X := make([][]float64, 40)
		y := make([]int, len(X))
		for i := range X {
			c := i % 2
			X[i] = []float64{3*float64(c) + rng.NormFloat64()*0.1}
			if flip {
				y[i] = 1 - c
			} else {
				y[i] = c
			}
		}
		m, err := ml.New("lr", rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y, 2); err != nil {
			t.Fatal(err)
		}
		return m
	}
	modelA, modelB := train(false), train(true)
	probe := []float64{3}
	if modelA.Predict(probe) == modelB.Predict(probe) {
		t.Fatal("test models agree; they must disagree to witness the swap")
	}

	_, ts := newTestServer(t, serve.Config{
		Models:      map[string]ml.Model{"lr": modelA},
		BatchWindow: time.Millisecond,
	})

	classify := func() int {
		resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Histogram: probe})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify got %d: %s", resp.StatusCode, body)
		}
		var out serve.ClassifyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out.Verdicts["lr"]
	}
	put := func(name string, data []byte) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/"+name, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	if got, want := classify(), modelA.Predict(probe); got != want {
		t.Fatalf("pre-swap verdict %d, want %d", got, want)
	}

	var snapB bytes.Buffer
	if err := ml.Save(&snapB, modelB); err != nil {
		t.Fatal(err)
	}
	resp, body := put("lr", snapB.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot put got %d: %s", resp.StatusCode, body)
	}
	var putOut serve.ModelPutResponse
	if err := json.Unmarshal(body, &putOut); err != nil {
		t.Fatal(err)
	}
	if putOut.Model != "lr" || putOut.Version != 2 {
		t.Fatalf("put response %+v, want lr version 2", putOut)
	}
	if got, want := classify(), modelB.Predict(probe); got != want {
		t.Fatalf("post-swap verdict %d, want %d: the swap did not take", got, want)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health serve.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Versions["lr"] != 2 {
		t.Fatalf("healthz versions %v, want lr=2", health.Versions)
	}

	// Garbage bytes must bounce with 400 and leave the live model intact.
	resp, body = put("lr", []byte("not a snapshot"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage snapshot got %d, want 400: %s", resp.StatusCode, body)
	}
	if got, want := classify(), modelB.Predict(probe); got != want {
		t.Fatalf("verdict changed after rejected push: %d, want %d", got, want)
	}

	// A fresh name adds a model instead of replacing one.
	resp, body = put("lr2", snapB.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("new-name put got %d: %s", resp.StatusCode, body)
	}
	cresp, cbody := postJSON(t, ts.URL+"/v1/classify",
		serve.ClassifyRequest{Histogram: probe, Models: []string{"lr2"}})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify on pushed model got %d: %s", cresp.StatusCode, cbody)
	}
	var out serve.ClassifyResponse
	if err := json.Unmarshal(cbody, &out); err != nil {
		t.Fatal(err)
	}
	if got, want := out.Verdicts["lr2"], modelB.Predict(probe); got != want {
		t.Fatalf("pushed model verdict %d, want %d", got, want)
	}
}

// TestHealthzReportsLineage: the lineage stamped into a snapshot (boot
// config or PUT push) is traceable through /healthz and the PUT response.
func TestHealthzReportsLineage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X := make([][]float64, 40)
	y := make([]int, len(X))
	for i := range X {
		c := i % 2
		X[i] = []float64{3*float64(c) + rng.NormFloat64()*0.1}
		y[i] = c
	}
	m, err := ml.New("lr", rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, serve.Config{
		Models:  map[string]ml.Model{"lr": m},
		Lineage: map[string]ml.Lineage{"lr": {Generation: 1}},
	})

	healthz := func() serve.HealthResponse {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out serve.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := healthz().Lineage["lr"]; got != (ml.Lineage{Generation: 1}) {
		t.Fatalf("boot lineage %+v, want generation 1", got)
	}

	want := ml.Lineage{Generation: 5, Parent: 4}
	var snap bytes.Buffer
	if err := ml.SaveLineage(&snap, m, want); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/lr", bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var putOut serve.ModelPutResponse
	if err := json.NewDecoder(resp.Body).Decode(&putOut); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || putOut.Lineage != want {
		t.Fatalf("put answered %d lineage %+v, want 200 %+v", resp.StatusCode, putOut.Lineage, want)
	}
	if got := healthz().Lineage["lr"]; got != want {
		t.Fatalf("post-push lineage %+v, want %+v", got, want)
	}
}
