package serve

import (
	"context"
	"testing"
	"time"
)

// TestPaceHighQPSReleasesAllTicks is the regression test for the ticker
// pacer: time.Ticker drops ticks it cannot deliver, so at high QPS the old
// loop silently offered a fraction of the target. The absolute-time pacer
// must release every arrival — 25k requests at 50k QPS is 500ms of load;
// allow generous scheduler slop but fail on the old behaviour, which took
// multiples of the budget (or never finished the count).
func TestPaceHighQPSReleasesAllTicks(t *testing.T) {
	const qps, total = 50000, 25000
	released := 0
	sent, wall := pace(context.Background(), qps, total, func(int) { released++ })
	if sent != total || released != total {
		t.Fatalf("pace released %d/%d arrivals (reported %d)", released, total, sent)
	}
	ideal := time.Duration(float64(total) / float64(qps) * float64(time.Second))
	if wall < ideal-50*time.Millisecond {
		t.Fatalf("pace finished in %v, faster than the %v the schedule allows", wall, ideal)
	}
	if wall > 3*ideal+time.Second {
		t.Fatalf("pace took %v for an ideal %v: undershooting the offered rate", wall, ideal)
	}
}

// TestPaceCtxCancelStops pins that a canceled context stops the pacer
// mid-schedule instead of running out the full count.
func TestPaceCtxCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const qps, total = 10, 1000 // 100 seconds of schedule
	released := 0
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	sent, _ := pace(ctx, qps, total, func(int) { released++ })
	if sent >= total {
		t.Fatalf("pace sent all %d arrivals despite cancellation", sent)
	}
	if sent != released {
		t.Fatalf("pace reported %d but released %d", sent, released)
	}
}
