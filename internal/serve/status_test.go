package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestStatusForError pins the error-to-status contract the guard relies
// on: deadline expiry is the server's fault (504), a client hanging up is
// the client's (499), a typed status error carries its own code, a closed
// batcher is a drain-time 503, and anything else is a malformed request.
// The old code conflated all context errors into one bucket.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"wrapped deadline", fmt.Errorf("predict: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"canceled", context.Canceled, StatusClientClosedRequest},
		{"wrapped canceled", fmt.Errorf("enqueue: %w", context.Canceled), StatusClientClosedRequest},
		{"typed 404", &statusError{status: http.StatusNotFound, msg: "no such model"}, http.StatusNotFound},
		{"wrapped typed 404", fmt.Errorf("classify: %w", &statusError{status: http.StatusNotFound, msg: "x"}), http.StatusNotFound},
		{"batcher closed", errBatcherClosed, http.StatusServiceUnavailable},
		{"wrapped batcher closed", fmt.Errorf("model %q: %w", "lr", errBatcherClosed), http.StatusServiceUnavailable},
		{"plain", errors.New("histogram must not be empty"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusForError(tc.err); got != tc.want {
				t.Fatalf("statusForError(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}
