package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
)

// predictCall is one vector waiting for a verdict from one model's batcher.
// The caller blocks on done; the batcher fills class/batch/err before
// closing it.
type predictCall struct {
	vec   []float64
	done  chan struct{}
	class int
	batch int
	err   error
}

// batcher coalesces concurrent predict calls for one model into batched
// ml.PredictBatch passes: the first arrival opens a window, every call
// landing within it (up to maxBatch) shares one GEMM pass. A lone request
// still pays at most window of extra latency; under load the window never
// empties and batches fill to maxBatch back-to-back.
type batcher struct {
	name     string
	model    ml.Model
	in       chan *predictCall
	maxBatch int
	window   time.Duration
	stopped  chan struct{}

	batches   *obs.Counter
	coalesced *obs.Counter
}

func newBatcher(name string, model ml.Model, maxBatch int, window time.Duration) *batcher {
	b := &batcher{
		name:      name,
		model:     model,
		in:        make(chan *predictCall, maxBatch),
		maxBatch:  maxBatch,
		window:    window,
		stopped:   make(chan struct{}),
		batches:   obs.GetCounter("serve.batches"),
		coalesced: obs.GetCounter("serve.batched_requests"),
	}
	go b.run()
	return b
}

// enqueue hands call to the batcher without waiting for the verdict, so a
// multi-model classify fans out to every batcher before blocking; pair with
// wait. Fails fast if the request deadline expires while the queue is full.
func (b *batcher) enqueue(ctx context.Context, call *predictCall) error {
	select {
	case b.in <- call:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait blocks until the batcher has resolved call (or the deadline passes).
func (b *batcher) wait(ctx context.Context, call *predictCall) error {
	select {
	case <-call.done:
		return call.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the batcher after flushing everything already enqueued.
func (b *batcher) close() {
	close(b.in)
	<-b.stopped
}

func (b *batcher) run() {
	defer close(b.stopped)
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch := append(make([]*predictCall, 0, b.maxBatch), first)
		timer := time.NewTimer(b.window)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case call, ok := <-b.in:
				if !ok {
					break fill
				}
				batch = append(batch, call)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// flush runs one batched predict pass and wakes every caller. A panicking
// model (e.g. a dimension mismatch deep in a kernel) fails only this batch:
// the recover converts it into a per-call error and the batcher keeps
// serving.
func (b *batcher) flush(batch []*predictCall) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: %s predict panicked: %v", b.name, r)
			for _, call := range batch {
				call.err = err
				close(call.done)
			}
		}
	}()
	X := make([][]float64, len(batch))
	for i, call := range batch {
		X[i] = call.vec
	}
	out := make([]int, len(batch))
	ml.PredictBatch(b.model, X, out)
	b.batches.Add(1)
	b.coalesced.Add(int64(len(batch)))
	for i, call := range batch {
		call.class = out[i]
		call.batch = len(batch)
		close(call.done)
	}
}
