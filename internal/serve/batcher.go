package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
)

// errBatcherClosed is what enqueue returns once the batcher has begun
// closing: the request raced the drain and should be shed with a 503, never
// a panic.
var errBatcherClosed = &statusError{status: http.StatusServiceUnavailable, msg: "server is draining"}

// predictCall is one vector waiting for a verdict from one model's batcher.
// The caller blocks on done; the batcher fills class/batch/err before
// closing it.
type predictCall struct {
	vec   []float64
	done  chan struct{}
	class int
	batch int
	err   error
}

// modelBox wraps the model interface in a concrete type so atomic.Value
// accepts snapshots of different underlying model kinds (lr swapped for rf
// would otherwise panic Store's consistent-type check).
type modelBox struct{ m ml.Model }

// batcher coalesces concurrent predict calls for one model into batched
// ml.PredictBatch passes: the first arrival opens a window, every call
// landing within it (up to maxBatch) shares one GEMM pass. A lone request
// still pays at most window of extra latency; under load the window never
// empties and batches fill to maxBatch back-to-back.
//
// The model is held behind an atomic box so a snapshot push can hot-swap it
// while batches are in flight: each flush pins one model for its whole
// batch, so every caller gets a verdict from exactly one coherent snapshot.
type batcher struct {
	name     string
	model    atomic.Value // modelBox
	in       chan *predictCall
	maxBatch int
	window   time.Duration

	// closeMu holds every in-flight enqueue open against close: enqueue
	// sends under the read lock after checking closed, and close sets
	// closed under the write lock, so no send can land after close has
	// started observing the buffer. quit tells run to drain and stop;
	// stopped reports that it has.
	closeMu sync.RWMutex
	closed  bool
	quit    chan struct{}
	stopped chan struct{}

	batches   *obs.Counter
	coalesced *obs.Counter
	swaps     *obs.Counter
}

func newBatcher(name string, model ml.Model, maxBatch int, window time.Duration) *batcher {
	b := &batcher{
		name:      name,
		in:        make(chan *predictCall, maxBatch),
		maxBatch:  maxBatch,
		window:    window,
		quit:      make(chan struct{}),
		stopped:   make(chan struct{}),
		batches:   obs.GetCounter("serve.batches"),
		coalesced: obs.GetCounter("serve.batched_requests"),
		swaps:     obs.GetCounter("serve.model_swaps"),
	}
	b.model.Store(modelBox{model})
	go b.run()
	return b
}

// swap replaces the model serving this batcher's verdicts. Batches already
// collected keep the snapshot they loaded; no in-flight request is dropped.
func (b *batcher) swap(m ml.Model) {
	b.model.Store(modelBox{m})
	b.swaps.Add(1)
}

func (b *batcher) loadModel() ml.Model {
	return b.model.Load().(modelBox).m
}

// enqueue hands call to the batcher without waiting for the verdict, so a
// multi-model classify fans out to every batcher before blocking; pair with
// wait. Fails fast if the request deadline expires while the queue is full,
// and answers errBatcherClosed (503) — instead of panicking on a closed
// channel — when the request lost the race against shutdown.
func (b *batcher) enqueue(ctx context.Context, call *predictCall) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return errBatcherClosed
	}
	// The send happens under the read lock, so close (which needs the
	// write lock to set closed) cannot begin until it lands; run stays
	// alive to consume it until quit closes, which is strictly later.
	select {
	case b.in <- call:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait blocks until the batcher has resolved call (or the deadline passes).
func (b *batcher) wait(ctx context.Context, call *predictCall) error {
	select {
	case <-call.done:
		return call.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the batcher after flushing everything already enqueued. Safe
// against concurrent enqueues and repeated calls: the write lock waits out
// every enqueue already past the closed check, later enqueues fail with
// errBatcherClosed, and the run loop flushes whatever the last enqueues
// buffered before stopping.
func (b *batcher) close() {
	b.closeMu.Lock()
	alreadyClosed := b.closed
	b.closed = true
	b.closeMu.Unlock()
	if !alreadyClosed {
		close(b.quit)
	}
	<-b.stopped
}

func (b *batcher) run() {
	defer close(b.stopped)
	for {
		select {
		case first := <-b.in:
			b.collect(first)
		case <-b.quit:
			// closed is set before quit closes, so the buffer can only
			// shrink now: flush the stragglers and stop.
			for {
				select {
				case call := <-b.in:
					b.collect(call)
				default:
					return
				}
			}
		}
	}
}

// collect fills one batch starting from first — up to maxBatch calls or the
// window deadline, whichever comes first — and flushes it. A closing
// batcher cuts the window short so drain never waits out idle windows.
func (b *batcher) collect(first *predictCall) {
	batch := append(make([]*predictCall, 0, b.maxBatch), first)
	timer := time.NewTimer(b.window)
fill:
	for len(batch) < b.maxBatch {
		select {
		case call := <-b.in:
			batch = append(batch, call)
		case <-timer.C:
			break fill
		case <-b.quit:
			break fill
		}
	}
	timer.Stop()
	b.flush(batch)
}

// flush runs one batched predict pass and wakes every caller. A panicking
// model (e.g. a dimension mismatch deep in a kernel) fails only this batch:
// the recover converts it into a per-call error and the batcher keeps
// serving.
func (b *batcher) flush(batch []*predictCall) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: %s predict panicked: %v", b.name, r)
			for _, call := range batch {
				call.err = err
				close(call.done)
			}
		}
	}()
	model := b.loadModel()
	X := make([][]float64, len(batch))
	for i, call := range batch {
		X[i] = call.vec
	}
	out := make([]int, len(batch))
	ml.PredictBatch(model, X, out)
	b.batches.Add(1)
	b.coalesced.Add(int64(len(batch)))
	for i, call := range batch {
		call.class = out[i]
		call.batch = len(batch)
		close(call.done)
	}
}
