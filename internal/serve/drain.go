package serve

import (
	"context"
	"sync"
)

// DrainBarrier tracks in-flight HTTP handlers so a graceful shutdown can
// wait for them before tearing down the resources they use (the batchers).
// It exists because http.Server.Shutdown only waits for *connections* the
// server itself accepted: handlers reached through Handler() (httptest,
// embedding in another mux) are invisible to it, and an expired shutdown
// context returns early with handlers still running. Closing the batchers
// on either path used to panic the racing handlers' enqueues; the barrier
// makes the ordering explicit, and the batchers' own close-safety covers
// whatever the drain budget could not wait for.
//
// The gateway reuses the same discipline for its proxy handlers.
type DrainBarrier struct {
	mu         sync.Mutex
	inflight   int
	draining   bool
	idleClosed bool
	idle       chan struct{} // closed when draining and inflight hits zero
}

// NewDrainBarrier returns a barrier with no handlers in flight.
func NewDrainBarrier() *DrainBarrier {
	return &DrainBarrier{idle: make(chan struct{})}
}

// Enter registers one handler. It returns false once draining has begun;
// the caller must answer 503 and must not call Exit.
func (b *DrainBarrier) Enter() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return false
	}
	b.inflight++
	return true
}

// Exit unregisters a handler previously admitted by Enter.
func (b *DrainBarrier) Exit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inflight--
	if b.draining && b.inflight <= 0 {
		b.closeIdleLocked()
	}
}

// Draining reports whether BeginDrain or Drain has been called.
func (b *DrainBarrier) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// InFlight returns the number of handlers currently inside the barrier.
func (b *DrainBarrier) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inflight
}

// BeginDrain flips the barrier into draining mode: every subsequent Enter
// fails. Safe to call more than once.
func (b *DrainBarrier) BeginDrain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.draining = true
	if b.inflight <= 0 {
		b.closeIdleLocked()
	}
}

// Drain begins draining (if BeginDrain has not already) and waits until
// every admitted handler has exited or ctx expires, returning ctx's error
// in the latter case. Handlers that exit after an expired Drain still
// unblock any later Drain call.
func (b *DrainBarrier) Drain(ctx context.Context) error {
	b.BeginDrain()
	select {
	case <-b.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *DrainBarrier) closeIdleLocked() {
	if !b.idleClosed {
		b.idleClosed = true
		close(b.idle)
	}
}
