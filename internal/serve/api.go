// Package serve is the online front end over the game-arena stack: a
// long-lived HTTP/JSON classification service that loads trained model
// snapshots (ml.Save/ml.Load) and serves classify and transform verdicts
// with a production-shaped hot path — micro-batched GEMM prediction, a
// bounded admission semaphore (429 on overload), per-request deadlines,
// per-request panic isolation and graceful drain. The paper's framework
// casts classifier vs. evader as a repeated game; this package is the
// arena that lets an evader probe a standing classifier over the wire
// instead of re-training in-process per round.
//
// Endpoints:
//
//	POST /v1/classify       source or pre-embedded histogram in, per-model verdicts out
//	POST /v1/transform      evader pipeline in, transformed IR + verdicts out
//	PUT  /v1/models/{name}  hot-swap (or add) a model from a pushed snapshot
//	GET  /healthz           readiness (503 while draining) + model versions
//	GET  /metricz           JSON snapshot of the obs registry
package serve

import (
	"repro/internal/core"
	"repro/internal/ml"
)

// ClassifyRequest asks for per-model verdicts on one program, given either
// as MiniC source (compiled and embedded server-side through the shared
// progcache) or as a pre-embedded feature vector (the wire-friendly fast
// path that goes straight to the batched predictor).
type ClassifyRequest struct {
	Source    string    `json:"source,omitempty"`
	Histogram []float64 `json:"histogram,omitempty"`
	// Models selects a subset of the loaded models; empty means all.
	Models []string `json:"models,omitempty"`
}

// ClassifyResponse carries one verdict per consulted model.
type ClassifyResponse struct {
	Verdicts map[string]int `json:"verdicts"`
	// BatchSizes reports, per model, how many concurrent requests shared
	// the GEMM pass that produced this verdict — observability for the
	// micro-batching queue.
	BatchSizes map[string]int `json:"batch_sizes,omitempty"`
}

// TransformRequest runs an evader pipeline over source and classifies the
// result: the online version of one game-1 probe.
type TransformRequest struct {
	Source string `json:"source"`
	Evader string `json:"evader"`
	// Seed drives the stochastic evaders; the same seed replays the same
	// transformation.
	Seed   int64    `json:"seed"`
	Models []string `json:"models,omitempty"`
	// Execute additionally runs the transformed program on the server's
	// configured engine and returns its observable behaviour (return
	// value, output, dynamic step count, or trap).
	Execute bool `json:"execute,omitempty"`
}

// TransformResponse returns the transformed program's printed IR and the
// verdicts on its embedding. Exec is present iff the request asked for
// execution.
type TransformResponse struct {
	IR         string         `json:"ir"`
	Verdicts   map[string]int `json:"verdicts"`
	BatchSizes map[string]int `json:"batch_sizes,omitempty"`
	Exec       *core.ExecObs  `json:"exec,omitempty"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string   `json:"status"` // "ok" or "draining"
	Models []string `json:"models"`
	// Versions counts snapshot generations per model: 1 at boot, bumped by
	// every PUT /v1/models push. The gateway uses it to confirm a fleet
	// converged on one snapshot.
	Versions map[string]int64 `json:"versions,omitempty"`
	// Lineage reports, per model, the retraining ancestry stamped into the
	// snapshot it is serving (GOMLSNAP v2 frames; zero/absent for root or
	// pre-lineage snapshots). This is what makes a co-evolution checkpoint
	// pushed to a fleet traceable end to end.
	Lineage   map[string]ml.Lineage `json:"lineage,omitempty"`
	Embedding string                `json:"embedding"`
	InFlight  int64                 `json:"in_flight"`
}

// ModelPutResponse answers a snapshot push: the named model now serves
// generation Version, carrying the pushed snapshot's lineage stamp.
type ModelPutResponse struct {
	Model   string     `json:"model"`
	Version int64      `json:"version"`
	Lineage ml.Lineage `json:"lineage"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
