package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/interp"
	"repro/internal/ml"
	"repro/internal/obs"
)

// Config sizes a Server. Zero values take the defaults below.
type Config struct {
	// Models maps model name to a trained vector model; at least one is
	// required.
	Models map[string]ml.Model
	// Embedding is the vector embedding used to featurize source-bearing
	// requests (default "histogram"). Must match what the models were
	// trained on.
	Embedding string
	// Lineage optionally records where each boot model's snapshot sits in a
	// retraining chain (ml.LoadLineage); surfaced in /healthz so a fleet's
	// checkpoint ancestry is traceable. Missing entries read as the zero
	// (root) lineage.
	Lineage map[string]ml.Lineage
	// MaxInFlight bounds admitted requests; beyond it the server answers
	// 429 instead of queueing without limit.
	MaxInFlight int
	// MaxBatch and BatchWindow shape the micro-batching queue: a batch
	// closes when it reaches MaxBatch vectors or BatchWindow after its
	// first arrival, whichever comes first.
	MaxBatch    int
	BatchWindow time.Duration
	// RequestTimeout is the per-request deadline; work still pending when
	// it expires answers 504.
	RequestTimeout time.Duration
	// Engine executes /v1/transform requests that ask for execution:
	// "tree" (default) is the reference interpreter, "vm" the compiled
	// bytecode engine. Validated at construction so a typo fails fast.
	Engine string
}

const (
	defaultMaxInFlight    = 128
	defaultMaxBatch       = 32
	defaultBatchWindow    = 2 * time.Millisecond
	defaultRequestTimeout = 10 * time.Second
	maxBodyBytes          = 1 << 20
	// maxSnapshotBytes bounds a pushed model snapshot; trained forests are
	// far bigger than request bodies, so PUT /v1/models gets its own cap.
	maxSnapshotBytes = 64 << 20

	// StatusClientClosedRequest is nginx's 499: the client went away before
	// the answer was ready. Nobody receives it, but the access log and the
	// error counters should not claim a server-side timeout (504) for a
	// failure the client caused.
	StatusClientClosedRequest = 499
)

// statusError carries an explicit HTTP status through the handler error
// path, so guard does not have to guess one from the error text.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// statusForError maps a handler error to its HTTP status. Unlike the old
// mapping — which reported 504 whenever ctx.Err() was non-nil, even when
// the cause was a client disconnect or a plain bad request that happened to
// lose a race with the deadline — it inspects the error chain itself:
// explicit statusError first, then deadline-exceeded (504) vs canceled
// (499), and 400 only for genuine request errors.
func statusForError(err error) int {
	var se *statusError
	switch {
	case errors.As(err, &se):
		return se.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// Server serves classification and transformation verdicts over HTTP. The
// request path is: drain barrier (503 once shutdown begins) → admission
// semaphore (429 on overload) → per-request deadline and panic isolation →
// handler → per-model micro-batcher.
type Server struct {
	cfg     Config
	admit   chan struct{}
	barrier *DrainBarrier
	mux     *http.ServeMux
	httpSrv *http.Server

	// mu guards the model table: names (sorted), batchers and versions all
	// change together when a snapshot push hot-swaps or adds a model.
	mu       sync.RWMutex
	names    []string
	batchers map[string]*batcher
	versions map[string]int64
	lineage  map[string]ml.Lineage

	requests *obs.Counter
	rejected *obs.Counter
	errors   *obs.Counter
	inflight *obs.Gauge
	swaps    *obs.Counter
}

// New validates cfg, applies defaults and builds a Server with one batcher
// goroutine per model.
func New(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	if cfg.Embedding == "" {
		cfg.Embedding = "histogram"
	}
	emb, err := embed.Get(cfg.Embedding)
	if err != nil {
		return nil, err
	}
	if emb.Kind != embed.VectorKind {
		return nil, fmt.Errorf("serve: embedding %q is graph-shaped; the server takes vector embeddings", cfg.Embedding)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = defaultBatchWindow
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	if _, err := interp.EngineByName(cfg.Engine); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		batchers: make(map[string]*batcher, len(cfg.Models)),
		versions: make(map[string]int64, len(cfg.Models)),
		lineage:  make(map[string]ml.Lineage, len(cfg.Models)),
		admit:    make(chan struct{}, cfg.MaxInFlight),
		barrier:  NewDrainBarrier(),
		mux:      http.NewServeMux(),
		requests: obs.GetCounter("serve.requests"),
		rejected: obs.GetCounter("serve.rejected"),
		errors:   obs.GetCounter("serve.errors"),
		inflight: obs.GetGauge("serve.inflight"),
		swaps:    obs.GetCounter("serve.model_swaps"),
	}
	for name, m := range cfg.Models {
		if m == nil {
			return nil, fmt.Errorf("serve: model %q is nil", name)
		}
		s.names = append(s.names, name)
		s.batchers[name] = newBatcher(name, m, cfg.MaxBatch, cfg.BatchWindow)
		s.versions[name] = 1
		if lin, ok := cfg.Lineage[name]; ok {
			s.lineage[name] = lin
		}
	}
	sort.Strings(s.names)
	s.mux.Handle("POST /v1/classify", s.guard("classify", s.handleClassify))
	s.mux.Handle("POST /v1/transform", s.guard("transform", s.handleTransform))
	s.mux.Handle("PUT /v1/models/{model}", s.guard("model_put", s.handleModelPut))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	return s, nil
}

// Handler exposes the full route table (for tests via httptest and for
// embedding in other servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background,
// returning the bound address. Pair with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the server: new work is refused (healthz flips to 503,
// classify/transform answer 503), in-flight handlers run to completion
// within ctx's budget, and only then do the batchers flush and stop. The
// barrier — not httpSrv.Shutdown, which is a no-op on the Handler() path
// and returns early when ctx expires — is what orders batcher close after
// the handlers; any handler still running past the budget finds closed
// batchers that answer 503 instead of panicking.
func (s *Server) Shutdown(ctx context.Context) error {
	s.barrier.BeginDrain()
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	drainErr := s.barrier.Drain(ctx)
	s.mu.RLock()
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.mu.RUnlock()
	for _, b := range bs {
		b.close()
	}
	if err == nil {
		err = drainErr
	}
	return err
}

// guard wraps a handler with the shared request discipline: drain barrier,
// admission control, in-flight accounting, the per-request deadline,
// latency observation and panic isolation.
func (s *Server) guard(op string, h func(http.ResponseWriter, *http.Request) error) http.Handler {
	lat := obs.GetHistogram("serve.latency." + op)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if !s.barrier.Enter() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		defer s.barrier.Exit()
		select {
		case s.admit <- struct{}{}:
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		defer func() { <-s.admit }()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		defer func() { lat.Observe(time.Since(start)) }()
		defer func() {
			if rec := recover(); rec != nil {
				s.errors.Add(1)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("panic: %v", rec))
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := h(w, r.WithContext(ctx)); err != nil {
			s.errors.Add(1)
			writeError(w, statusForError(err), err.Error())
		}
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) error {
	var req ClassifyRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	var vec []float64
	switch {
	case req.Source != "" && req.Histogram != nil:
		return fmt.Errorf("request carries both source and histogram; send one")
	case req.Source != "":
		// Client-supplied sources go through the bounded untrusted cache
		// tier: arbitrary traffic must not grow the pinned process-wide
		// progcache without limit.
		v, err := core.EmbedSourceUntrusted(req.Source, s.cfg.Embedding)
		if err != nil {
			return err
		}
		vec = v
	case len(req.Histogram) > 0:
		vec = req.Histogram
	default:
		return fmt.Errorf("request needs source or histogram")
	}
	verdicts, batches, err := s.classify(r.Context(), vec, req.Models)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, ClassifyResponse{Verdicts: verdicts, BatchSizes: batches})
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) error {
	var req TransformRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.Source == "" {
		return fmt.Errorf("request needs source")
	}
	var (
		irText string
		vec    []float64
		exec   *core.ExecObs
		err    error
	)
	if req.Execute {
		irText, vec, exec, err = core.TransformEmbedRunUntrusted(req.Source, req.Evader, s.cfg.Embedding, req.Seed, s.cfg.Engine)
	} else {
		irText, vec, err = core.TransformEmbedUntrusted(req.Source, req.Evader, s.cfg.Embedding, req.Seed)
	}
	if err != nil {
		return err
	}
	verdicts, batches, err := s.classify(r.Context(), vec, req.Models)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, TransformResponse{IR: irText, Verdicts: verdicts, BatchSizes: batches, Exec: exec})
}

// handleModelPut hot-swaps (or adds) a model from a pushed snapshot without
// dropping in-flight requests: batches already collected finish on the old
// snapshot, everything after the swap predicts with the new one. The
// response carries the model's new version, monotonically increasing from 1
// at boot.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("model")
	if name == "" {
		return fmt.Errorf("model name missing from path")
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		return fmt.Errorf("read snapshot: %w", err)
	}
	m, lin, err := ml.LoadLineage(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("bad snapshot: %w", err)
	}
	s.mu.Lock()
	if b, ok := s.batchers[name]; ok {
		b.swap(m)
	} else {
		s.batchers[name] = newBatcher(name, m, s.cfg.MaxBatch, s.cfg.BatchWindow)
		s.names = append(s.names, name)
		sort.Strings(s.names)
	}
	s.versions[name]++
	s.lineage[name] = lin
	version := s.versions[name]
	s.mu.Unlock()
	s.swaps.Add(1)
	return writeJSON(w, http.StatusOK, ModelPutResponse{Model: name, Version: version, Lineage: lin})
}

// classify fans one vector out to the requested models' batchers (all
// enqueued before any wait, so the models batch concurrently) and collects
// the verdicts. Asking for a model that is not loaded is a 404, not a bad
// request: the request was well-formed, the resource does not exist here.
func (s *Server) classify(ctx context.Context, vec []float64, models []string) (map[string]int, map[string]int, error) {
	s.mu.RLock()
	if len(models) == 0 {
		models = append([]string(nil), s.names...)
	}
	bs := make([]*batcher, len(models))
	for i, name := range models {
		b, ok := s.batchers[name]
		if !ok {
			err := &statusError{
				status: http.StatusNotFound,
				msg:    fmt.Sprintf("model %q is not loaded (have %v)", name, s.names),
			}
			s.mu.RUnlock()
			return nil, nil, err
		}
		bs[i] = b
	}
	s.mu.RUnlock()
	calls := make([]*predictCall, len(models))
	for i := range models {
		calls[i] = &predictCall{vec: vec, done: make(chan struct{})}
		if err := bs[i].enqueue(ctx, calls[i]); err != nil {
			return nil, nil, err
		}
	}
	verdicts := make(map[string]int, len(models))
	batches := make(map[string]int, len(models))
	for i, name := range models {
		if err := bs[i].wait(ctx, calls[i]); err != nil {
			return nil, nil, err
		}
		verdicts[name] = calls[i].class
		batches[name] = calls[i].batch
	}
	return verdicts, batches, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := append([]string(nil), s.names...)
	versions := make(map[string]int64, len(s.versions))
	for k, v := range s.versions {
		versions[k] = v
	}
	var lineage map[string]ml.Lineage
	if len(s.lineage) > 0 {
		lineage = make(map[string]ml.Lineage, len(s.lineage))
		for k, v := range s.lineage {
			lineage[k] = v
		}
	}
	s.mu.RUnlock()
	resp := HealthResponse{
		Status:    "ok",
		Models:    names,
		Versions:  versions,
		Lineage:   lineage,
		Embedding: s.cfg.Embedding,
		InFlight:  s.inflight.Value(),
	}
	status := http.StatusOK
	if s.barrier.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	_ = writeJSON(w, status, resp)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, obs.Capture())
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	_, err = w.Write(buf)
	return err
}

func writeError(w http.ResponseWriter, status int, msg string) {
	_ = writeJSON(w, status, ErrorResponse{Error: msg})
}
