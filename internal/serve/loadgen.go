package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad against a running server or gateway.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the offered load, paced against absolute time (see pace).
	QPS         int
	Duration    time.Duration
	Concurrency int
	// OpenLoop switches from the closed worker pool to open-loop arrivals:
	// every due request gets its own goroutine regardless of how many are
	// still outstanding, so server slowness cannot throttle the offered
	// rate — the arrival process a latency-under-load curve needs.
	// MaxClientInFlight bounds the outstanding requests (default 1024);
	// arrivals past the bound are counted as Dropped rather than queued,
	// keeping the arrival process honest.
	OpenLoop          bool
	MaxClientInFlight int
	// Vectors are the pre-embedded payloads to classify; requests cycle
	// through them round-robin.
	Vectors [][]float64
	// Models optionally restricts each request to a model subset.
	Models []string
	// WaitReady bounds how long to poll /healthz before starting (0 skips
	// the wait).
	WaitReady time.Duration
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Sent     int
	OK       int
	Rejected int // 429: admission control shedding load
	Timeout  int // 504 or client-side deadline
	Dropped  int // open-loop arrivals shed client-side at MaxClientInFlight
	Errors   int // everything else
	Wall     time.Duration
	// TargetQPS and OfferWall record what the pacer was asked for and how
	// long releasing Sent ticks actually took, so OfferedQPS exposes pacer
	// undershoot instead of silently reporting fiction.
	TargetQPS int
	OfferWall time.Duration
	// LatencyMS holds one OK-request latency per element, unsorted.
	LatencyMS []float64
}

// Throughput is achieved OK requests per second over the wall clock.
func (r *LoadReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

// OfferedQPS is the arrival rate the pacer actually achieved. Compare with
// TargetQPS: a gap means the load generator, not the server, was the
// bottleneck (the old ticker-based pacer silently lost ticks past ~1k qps,
// making every high-QPS curve an undershoot).
func (r *LoadReport) OfferedQPS() float64 {
	if r.OfferWall <= 0 {
		return 0
	}
	return float64(r.Sent) / r.OfferWall.Seconds()
}

// Quantile returns the q-th latency quantile in milliseconds (q in [0,1]).
func (r *LoadReport) Quantile(q float64) float64 {
	if len(r.LatencyMS) == 0 {
		return 0
	}
	s := append([]float64(nil), r.LatencyMS...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// pace releases total ticks at qps, calling emit(i) for tick i from this
// goroutine. A time.Ticker undershoots badly here: at sub-millisecond
// intervals the runtime coalesces expirations and the dropped ticks are
// simply lost, capping offered load around the timer resolution no matter
// the configured rate. pace instead schedules against absolute time — on
// every wakeup it releases the whole backlog of ticks whose deadline has
// passed, then sleeps until the next absolute deadline — so the released
// count tracks elapsed*qps at any rate the host can generate. Returns the
// ticks released (total, unless ctx expired first) and the offering wall
// clock.
func pace(ctx context.Context, qps, total int, emit func(int)) (int, time.Duration) {
	start := time.Now()
	sent := 0
	for sent < total {
		if ctx.Err() != nil {
			break
		}
		due := int(time.Since(start).Seconds()*float64(qps)) + 1
		if due > total {
			due = total
		}
		for sent < due {
			emit(sent)
			sent++
		}
		if sent >= total {
			break
		}
		next := start.Add(time.Duration(float64(sent) / float64(qps) * float64(time.Second)))
		wait := time.Until(next)
		if wait <= 0 {
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
		}
	}
	return sent, time.Since(start)
}

// statusDropped marks an open-loop arrival shed client-side because
// MaxClientInFlight was reached.
const statusDropped = -2

// RunLoad offers cfg.QPS of classify traffic for cfg.Duration and reports
// what came back. Latencies also land in the process-wide
// "loadgen.latency" histogram so the obs manifest carries them.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 || len(cfg.Vectors) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs positive qps, duration and at least one vector")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.MaxClientInFlight <= 0 {
		cfg.MaxClientInFlight = 1024
	}
	if cfg.WaitReady > 0 {
		if err := WaitReady(ctx, cfg.BaseURL, cfg.WaitReady); err != nil {
			return nil, err
		}
	}

	type result struct {
		status int // HTTP status, or -1 transport/deadline, or statusDropped
		lat    time.Duration
	}
	total := int(float64(cfg.QPS) * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	results := make(chan result, total)
	hist := obs.GetHistogram("loadgen.latency")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration+30*time.Second)
	defer cancel()

	// Request bodies are marshaled once per distinct vector, not per
	// request: at 50k+ qps the JSON encoder would otherwise become the
	// generator's own bottleneck.
	bodies := make([][]byte, len(cfg.Vectors))
	for i, v := range cfg.Vectors {
		bodies[i], _ = json.Marshal(ClassifyRequest{Histogram: v, Models: cfg.Models})
	}
	doOne := func(i int) result {
		start := time.Now()
		status := doClassify(runCtx, client, cfg.BaseURL, bodies[i%len(bodies)])
		return result{status: status, lat: time.Since(start)}
	}

	var emit func(int)
	var ticks chan int
	if cfg.OpenLoop {
		sem := make(chan struct{}, cfg.MaxClientInFlight)
		emit = func(i int) {
			select {
			case sem <- struct{}{}:
				go func() {
					defer func() { <-sem }()
					results <- doOne(i)
				}()
			default:
				results <- result{status: statusDropped}
			}
		}
	} else {
		ticks = make(chan int, total)
		for w := 0; w < cfg.Concurrency; w++ {
			go func() {
				for i := range ticks {
					results <- doOne(i)
				}
			}()
		}
		emit = func(i int) { ticks <- i }
	}

	start := time.Now()
	sent, offerWall := pace(runCtx, cfg.QPS, total, emit)
	if ticks != nil {
		close(ticks)
	}

	rep := &LoadReport{Sent: sent, TargetQPS: cfg.QPS, OfferWall: offerWall}
	for i := 0; i < sent; i++ {
		res := <-results
		switch {
		case res.status == http.StatusOK:
			rep.OK++
			rep.LatencyMS = append(rep.LatencyMS, float64(res.lat)/float64(time.Millisecond))
			hist.Observe(res.lat)
		case res.status == statusDropped:
			rep.Dropped++
		case res.status == http.StatusTooManyRequests:
			rep.Rejected++
		case res.status == http.StatusGatewayTimeout || res.status == -1 && runCtx.Err() != nil:
			rep.Timeout++
		default:
			rep.Errors++
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

func doClassify(ctx context.Context, client *http.Client, baseURL string, body []byte) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return -1
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return -1
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// WaitReady polls /healthz until the server answers 200 or the budget runs
// out — the handshake `make serve-smoke`, `make gateway-smoke` and the
// gateway's replica spawner rely on.
func WaitReady(ctx context.Context, baseURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s not ready after %v", baseURL, budget)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
