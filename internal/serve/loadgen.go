package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad against a running server.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the offered load; Concurrency workers share one pacer so the
	// rate holds even when individual requests are slow.
	QPS         int
	Duration    time.Duration
	Concurrency int
	// Vectors are the pre-embedded payloads to classify; requests cycle
	// through them round-robin.
	Vectors [][]float64
	// Models optionally restricts each request to a model subset.
	Models []string
	// WaitReady bounds how long to poll /healthz before starting (0 skips
	// the wait).
	WaitReady time.Duration
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Sent     int
	OK       int
	Rejected int // 429: admission control shedding load
	Timeout  int // 504 or client-side deadline
	Errors   int // everything else
	Wall     time.Duration
	// LatencyMS holds one OK-request latency per element, unsorted.
	LatencyMS []float64
}

// Throughput is achieved OK requests per second over the wall clock.
func (r *LoadReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

// Quantile returns the q-th latency quantile in milliseconds (q in [0,1]).
func (r *LoadReport) Quantile(q float64) float64 {
	if len(r.LatencyMS) == 0 {
		return 0
	}
	s := append([]float64(nil), r.LatencyMS...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// RunLoad offers cfg.QPS of classify traffic for cfg.Duration and reports
// what came back. Latencies also land in the process-wide
// "loadgen.latency" histogram so the obs manifest carries them.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 || len(cfg.Vectors) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs positive qps, duration and at least one vector")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.WaitReady > 0 {
		if err := waitReady(ctx, cfg.BaseURL, cfg.WaitReady); err != nil {
			return nil, err
		}
	}

	type result struct {
		status int // HTTP status, or -1 for transport/deadline errors
		lat    time.Duration
	}
	total := int(float64(cfg.QPS) * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	ticks := make(chan struct{}, total)
	results := make(chan result, total)
	hist := obs.GetHistogram("loadgen.latency")
	client := &http.Client{}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration+30*time.Second)
	defer cancel()

	for w := 0; w < cfg.Concurrency; w++ {
		go func(w int) {
			i := w
			for range ticks {
				body, _ := json.Marshal(ClassifyRequest{
					Histogram: cfg.Vectors[i%len(cfg.Vectors)],
					Models:    cfg.Models,
				})
				i += cfg.Concurrency
				start := time.Now()
				status := doClassify(runCtx, client, cfg.BaseURL, body)
				results <- result{status: status, lat: time.Since(start)}
			}
		}(w)
	}

	// One pacer feeds all workers: QPS holds as offered load even when the
	// server is slow, which is what lets the overload path actually see 429s.
	start := time.Now()
	interval := time.Second / time.Duration(cfg.QPS)
	pacer := time.NewTicker(interval)
	sent := 0
pace:
	for sent < total {
		select {
		case <-pacer.C:
			ticks <- struct{}{}
			sent++
		case <-runCtx.Done():
			break pace
		}
	}
	pacer.Stop()
	close(ticks)

	rep := &LoadReport{Sent: sent}
	for i := 0; i < sent; i++ {
		res := <-results
		switch {
		case res.status == http.StatusOK:
			rep.OK++
			rep.LatencyMS = append(rep.LatencyMS, float64(res.lat)/float64(time.Millisecond))
			hist.Observe(res.lat)
		case res.status == http.StatusTooManyRequests:
			rep.Rejected++
		case res.status == http.StatusGatewayTimeout || res.status == -1 && runCtx.Err() != nil:
			rep.Timeout++
		default:
			rep.Errors++
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

func doClassify(ctx context.Context, client *http.Client, baseURL string, body []byte) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return -1
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return -1
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// waitReady polls /healthz until the server answers 200 or the budget runs
// out — the handshake `make serve-smoke` relies on.
func waitReady(ctx context.Context, baseURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s not ready after %v", baseURL, budget)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
