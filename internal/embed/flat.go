package embed

import (
	"sync"

	"repro/internal/ir"
)

// This file rebuilds every embedding on the struct-of-arrays ir.Flat view.
// Each builder is the flat twin of its pointer sibling in embed.go and
// produces byte-identical output (the flat_equiv_test suite pins this);
// the payoff is the allocation profile: node indices are instruction
// indices, so there is no per-call map[*ir.Instr]int, every slice is sized
// by an exact counting pass over the dense tables, and the few builders
// that need real scratch (programl's value-node tables, milepost's
// dominator arrays, ir2vec's per-type vector cache) draw it from
// sync.Pools.

// HistogramFlat is Histogram on the flat view: one pass over the dense
// opcode column.
func HistogramFlat(fl *ir.Flat) Vector {
	v := make(Vector, ir.NumOpcodes)
	for _, op := range fl.Ops {
		v[op]++
	}
	return v
}

// countControlEdges sizes the instruction-level control edge set:
// sequential flow inside blocks plus terminator-to-target-head edges.
func countControlEdges(fl *ir.Flat) int {
	n := 0
	for bi := range fl.Blocks {
		b := &fl.Blocks[bi]
		if b.Ins1 > b.Ins0 {
			n += int(b.Ins1-b.Ins0) - 1
		}
		for _, s := range fl.BlockSuccs(int32(bi)) {
			if fl.Blocks[s].Ins1 > fl.Blocks[s].Ins0 {
				n++
			}
		}
	}
	return n
}

// appendControlEdges is addControlEdges on the flat view: node index ==
// module-wide instruction index.
func appendControlEdges(g *Graph, fl *ir.Flat) {
	for bi := range fl.Blocks {
		b := &fl.Blocks[bi]
		for i := b.Ins0; i+1 < b.Ins1; i++ {
			g.addEdge(int(i), int(i+1), ControlEdge)
		}
		for _, s := range fl.BlockSuccs(int32(bi)) {
			sb := &fl.Blocks[s]
			if sb.Ins1 > sb.Ins0 {
				g.addEdge(int(b.Ins1-1), int(sb.Ins0), ControlEdge)
			}
		}
	}
}

// dataEdgeSource maps an operand to its def node, mirroring the pointer
// builders' `a.(*ir.Instr)` type switch: an in-module instruction is its
// own index; a detached instruction degrades to node 0 exactly like the
// pointer path's zero-value map lookup (out-of-contract IR only).
func dataEdgeSource(a ir.Operand) (int, bool) {
	switch a.Kind {
	case ir.OperInstr:
		return int(a.Idx), true
	case ir.OperBadInstr:
		return 0, true
	}
	return 0, false
}

// countDataEdges sizes the def-use edge set.
func countDataEdges(fl *ir.Flat) int {
	n := 0
	for _, a := range fl.Operands {
		if a.Kind == ir.OperInstr || a.Kind == ir.OperBadInstr {
			n++
		}
	}
	return n
}

// appendDataEdges is addDataEdges on the flat view.
func appendDataEdges(g *Graph, fl *ir.Flat) {
	n := int32(fl.NumInstrs())
	for i := int32(0); i < n; i++ {
		for _, a := range fl.Args(i) {
			if d, ok := dataEdgeSource(a); ok {
				g.addEdge(d, int(i), DataEdge)
			}
		}
	}
}

// newGraph allocates a graph with n feature rows of width dim and exact
// edge capacity ne.
func newGraph(n, dim, ne int) *Graph {
	return &Graph{
		NodeFeats: featRows(n, dim),
		Edges:     make([][2]int, 0, ne),
		EdgeTypes: make([]EdgeType, 0, ne),
	}
}

// CFGFlat is CFG on the flat view.
func CFGFlat(fl *ir.Flat) *Graph {
	n := fl.NumInstrs()
	g := newGraph(n, int(ir.NumOpcodes), countControlEdges(fl))
	for i := 0; i < n; i++ {
		g.NodeFeats[i][fl.Ops[i]] = 1
	}
	appendControlEdges(g, fl)
	return g
}

// blockFeats fills one opcode-histogram row per basic block.
func blockFeats(g *Graph, fl *ir.Flat) {
	for bi := range fl.Blocks {
		b := &fl.Blocks[bi]
		row := g.NodeFeats[bi]
		for i := b.Ins0; i < b.Ins1; i++ {
			row[fl.Ops[i]]++
		}
	}
}

// CFGCompactFlat is CFGCompact on the flat view: node index == module-wide
// block index (the same order the pointer builder assigns).
func CFGCompactFlat(fl *ir.Flat) *Graph {
	ne := 0
	for bi := range fl.Blocks {
		ne += len(fl.BlockSuccs(int32(bi)))
	}
	g := newGraph(len(fl.Blocks), int(ir.NumOpcodes), ne)
	blockFeats(g, fl)
	for bi := range fl.Blocks {
		for _, s := range fl.BlockSuccs(int32(bi)) {
			g.addEdge(bi, int(s), ControlEdge)
		}
	}
	return g
}

// CDFGFlat is CDFG on the flat view.
func CDFGFlat(fl *ir.Flat) *Graph {
	n := fl.NumInstrs()
	g := newGraph(n, int(ir.NumOpcodes), countControlEdges(fl)+countDataEdges(fl))
	for i := 0; i < n; i++ {
		g.NodeFeats[i][fl.Ops[i]] = 1
	}
	appendControlEdges(g, fl)
	appendDataEdges(g, fl)
	return g
}

// seenPool recycles the cross-block-edge dedup set of CDFGCompactFlat.
var seenPool = sync.Pool{
	New: func() any { return make(map[[2]int32]bool, 64) },
}

// CDFGCompactFlat is CDFGCompact on the flat view. The per-block edge
// interleaving (successor edges, then first-discovery cross-block data
// edges) matches the pointer builder exactly; the dedup set is pooled.
func CDFGCompactFlat(fl *ir.Flat) *Graph {
	seen := seenPool.Get().(map[[2]int32]bool)
	ne := 0
	for bi := range fl.Blocks {
		b := &fl.Blocks[bi]
		ne += len(fl.BlockSuccs(int32(bi)))
		for i := b.Ins0; i < b.Ins1; i++ {
			for _, a := range fl.Args(i) {
				if a.Kind != ir.OperInstr {
					continue
				}
				db := fl.Instrs[a.Idx].Blk
				if db == int32(bi) {
					continue
				}
				key := [2]int32{db, int32(bi)}
				if !seen[key] {
					seen[key] = true
					ne++
				}
			}
		}
	}
	clear(seen)

	g := newGraph(len(fl.Blocks), int(ir.NumOpcodes), ne)
	blockFeats(g, fl)
	for bi := range fl.Blocks {
		b := &fl.Blocks[bi]
		for _, s := range fl.BlockSuccs(int32(bi)) {
			g.addEdge(bi, int(s), ControlEdge)
		}
		for i := b.Ins0; i < b.Ins1; i++ {
			for _, a := range fl.Args(i) {
				if a.Kind != ir.OperInstr {
					continue
				}
				db := fl.Instrs[a.Idx].Blk
				if db == int32(bi) {
					continue
				}
				key := [2]int32{db, int32(bi)}
				if !seen[key] {
					seen[key] = true
					g.addEdge(int(db), bi, DataEdge)
				}
			}
		}
	}
	clear(seen)
	seenPool.Put(seen)
	return g
}

// callTarget resolves a call instruction's defined-callee entry head: the
// first instruction of the callee's entry block, or -1 when the callee is
// unknown, a declaration, or has an empty entry block.
func callTarget(fl *ir.Flat, i int32) int32 {
	aux := fl.Instrs[i].Aux
	if fl.Op(i) != ir.OpCall || aux < 0 {
		return -1
	}
	f := &fl.Funcs[aux]
	if f.IsDecl() {
		return -1
	}
	entry := &fl.Blocks[f.Blk0]
	if entry.Ins1 == entry.Ins0 {
		return -1
	}
	return entry.Ins0
}

// CDFGPlusFlat is CDFGPlus on the flat view.
func CDFGPlusFlat(fl *ir.Flat) *Graph {
	n := int32(fl.NumInstrs())
	ne := countControlEdges(fl) + countDataEdges(fl)
	for i := int32(0); i < n; i++ {
		if fl.Op(i) == ir.OpCall && fl.Instrs[i].Aux >= 0 && !fl.Funcs[fl.Instrs[i].Aux].IsDecl() {
			if callTarget(fl, i) >= 0 {
				ne++
			}
			f := &fl.Funcs[fl.Instrs[i].Aux]
			for r := f.Ins0; r < f.Ins1; r++ {
				if fl.Op(r) == ir.OpRet {
					ne++
				}
			}
		}
	}
	for i := int32(0); i < n; i++ {
		switch fl.Op(i) {
		case ir.OpLoad:
			if a := fl.Args(i); len(a) > 0 && a[0].Kind == ir.OperInstr && fl.Op(a[0].Idx) == ir.OpAlloca {
				ne++
			}
		case ir.OpStore:
			if a := fl.Args(i); len(a) > 1 && a[1].Kind == ir.OperInstr && fl.Op(a[1].Idx) == ir.OpAlloca {
				ne++
			}
		}
	}

	g := newGraph(int(n), int(ir.NumOpcodes), ne)
	for i := int32(0); i < n; i++ {
		g.NodeFeats[i][fl.Ops[i]] = 1
	}
	appendControlEdges(g, fl)
	appendDataEdges(g, fl)
	for i := int32(0); i < n; i++ {
		if fl.Op(i) == ir.OpCall && fl.Instrs[i].Aux >= 0 && !fl.Funcs[fl.Instrs[i].Aux].IsDecl() {
			if t := callTarget(fl, i); t >= 0 {
				g.addEdge(int(i), int(t), CallEdge)
			}
			f := &fl.Funcs[fl.Instrs[i].Aux]
			for r := f.Ins0; r < f.Ins1; r++ {
				if fl.Op(r) == ir.OpRet {
					g.addEdge(int(r), int(i), CallEdge)
				}
			}
		}
	}
	for i := int32(0); i < n; i++ {
		switch fl.Op(i) {
		case ir.OpLoad:
			if a := fl.Args(i); len(a) > 0 && a[0].Kind == ir.OperInstr && fl.Op(a[0].Idx) == ir.OpAlloca {
				g.addEdge(int(a[0].Idx), int(i), MemoryEdge)
			}
		case ir.OpStore:
			if a := fl.Args(i); len(a) > 1 && a[1].Kind == ir.OperInstr && fl.Op(a[1].Idx) == ir.OpAlloca {
				g.addEdge(int(i), int(a[1].Idx), MemoryEdge)
			}
		}
	}
	return g
}

// programlScratch holds the value-node id tables of ProGraMLFlat, indexed
// by const-alias, parameter, global and string-pool position. Entries
// store node id + 1 (0 = unassigned) so a zeroed table is empty.
type programlScratch struct {
	constNode    []int32
	paramNode    []int32
	globalNode   []int32
	badParamNode []int32
}

var programlPool = sync.Pool{New: func() any { return new(programlScratch) }}

// grabI32 returns buf resized to n entries, all set to fill, growing the
// backing array only when capacity is exceeded.
func grabI32(buf []int32, n int, fill int32) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
		if fill == 0 {
			return buf
		}
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// programlValueSlot maps an operand to its slot in the scratch tables, with
// the value-node category, mirroring the pointer builder's key scheme:
// constants merge by rendered form (ConstAlias), parameters are distinct
// per object, globals merge by name. Slot -1 means "no value node"
// (instruction operands, function references).
func programlValueSlot(fl *ir.Flat, sc *programlScratch, a ir.Operand) (table []int32, slot int32, cat int) {
	switch a.Kind {
	case ir.OperConst:
		return sc.constNode, fl.ConstAlias[a.Idx], 0
	case ir.OperParam:
		return sc.paramNode, a.Idx, 1
	case ir.OperBadParam:
		return sc.badParamNode, a.Idx, 1
	case ir.OperGlobal:
		return sc.globalNode, fl.Globals[a.Idx].NameAlias, 2
	}
	return nil, -1, 0
}

// ProGraMLFlat is ProGraML on the flat view. Two passes over the
// instruction table — one counting value nodes and edges, one assigning
// node ids in the same first-use order the pointer builder's lazy map
// produces — let every output slice be allocated exactly once.
func ProGraMLFlat(fl *ir.Flat) *Graph {
	n := int32(fl.NumInstrs())
	dim := int(ir.NumOpcodes) + 3
	sc := programlPool.Get().(*programlScratch)
	sc.constNode = grabI32(sc.constNode, len(fl.ConstAlias), 0)
	sc.paramNode = grabI32(sc.paramNode, len(fl.ParamNames), 0)
	sc.globalNode = grabI32(sc.globalNode, len(fl.Globals), 0)
	sc.badParamNode = grabI32(sc.badParamNode, len(fl.Strings), 0)

	nVal, nData, nCall := 0, 0, 0
	for i := int32(0); i < n; i++ {
		for _, a := range fl.Args(i) {
			if a.Kind == ir.OperInstr || a.Kind == ir.OperBadInstr {
				nData++
				continue
			}
			table, slot, _ := programlValueSlot(fl, sc, a)
			if table == nil {
				continue
			}
			nData++
			if table[slot] == 0 {
				table[slot] = 1
				nVal++
			}
		}
		if callTarget(fl, i) >= 0 {
			nCall++
		}
	}
	zeroI32(sc.constNode)
	zeroI32(sc.paramNode)
	zeroI32(sc.globalNode)
	zeroI32(sc.badParamNode)

	g := newGraph(int(n)+nVal, dim, countControlEdges(fl)+nData+nCall)
	for i := int32(0); i < n; i++ {
		g.NodeFeats[i][fl.Ops[i]] = 1
	}
	appendControlEdges(g, fl)
	next := n
	for i := int32(0); i < n; i++ {
		for _, a := range fl.Args(i) {
			if d, ok := dataEdgeSource(a); ok {
				g.addEdge(d, int(i), DataEdge)
				continue
			}
			table, slot, cat := programlValueSlot(fl, sc, a)
			if table == nil {
				continue
			}
			node := table[slot] - 1
			if node < 0 {
				node = next
				next++
				table[slot] = node + 1
				g.NodeFeats[node][int(ir.NumOpcodes)+cat] = 1
			}
			g.addEdge(int(node), int(i), DataEdge)
		}
		if t := callTarget(fl, i); t >= 0 {
			g.addEdge(int(i), int(t), CallEdge)
		}
	}
	programlPool.Put(sc)
	return g
}

func zeroI32(s []int32) {
	for i := range s {
		s[i] = 0
	}
}
