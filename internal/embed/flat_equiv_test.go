package embed_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progen"
)

// The flat builders must produce byte-identical output to the pointer
// builders for every embedding: identical node order, edge order, edge
// types and bit-for-bit identical feature values. These tests pin that over
// hand-written samples, shrunk fuzz crashers, a 200-program generated
// corpus, and optimized/obfuscated variants of a corpus subset.

func vecsIdentical(a, b embed.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func graphsIdentical(a, b *embed.Graph) bool {
	if len(a.NodeFeats) != len(b.NodeFeats) ||
		len(a.Edges) != len(b.Edges) || len(a.EdgeTypes) != len(b.EdgeTypes) {
		return false
	}
	for i := range a.NodeFeats {
		if !vecsIdentical(a.NodeFeats[i], b.NodeFeats[i]) {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.EdgeTypes[i] != b.EdgeTypes[i] {
			return false
		}
	}
	return true
}

// checkFlatEquiv runs every registered embedding both ways on m.
func checkFlatEquiv(t *testing.T, label string, m *ir.Module) {
	t.Helper()
	fl := ir.Flatten(m)
	for _, name := range embed.Names() {
		e, err := embed.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case embed.VectorKind:
			ref, got := e.Vec(m), e.VecFlat(fl)
			if !vecsIdentical(ref, got) {
				t.Errorf("%s: %s: flat vector differs from pointer vector", label, name)
			}
		case embed.GraphKind:
			ref, got := e.Graph(m), e.GraphFlat(fl)
			if !graphsIdentical(ref, got) {
				t.Errorf("%s: %s: flat graph differs from pointer graph (nodes %d/%d, edges %d/%d)",
					label, name, ref.NumNodes(), got.NumNodes(), len(ref.Edges), len(got.Edges))
			}
		}
	}
}

func TestFlatEquivalenceSamples(t *testing.T) {
	samples := map[string]string{
		"sample": sample,
		"loops": `int main() { int s=0; for (int i=0;i<9;i++) { for (int j=0;j<9;j++) s+=i*j; }
			while (s > 100) s /= 2; return s; }`,
		"floats_globals": `
			float g = 2.5;
			int arr[8];
			float fma(float a, float b, float c) { return a * b + c; }
			int main() { arr[3] = 7; g = fma(g, 3.0, 0.5); return arr[3] + (int)g; }`,
		"switch_calls": `
			int pick(int x) { switch (x) { case 0: return 10; case 1: return 20; case 7: return 70; default: return -1; } }
			int main() { int s = 0; for (int i = 0; i < 9; i++) s += pick(i); return s; }`,
		"structs_ptrs": `
			struct P { int x; int y; };
			int main() { struct P p; p.x = 3; p.y = 4; int *q = &p.x; *q = 5; return p.x * p.y; }`,
	}
	for label, src := range samples {
		checkFlatEquiv(t, label, mod(t, src))
	}
}

func TestFlatEquivalenceCrashers(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "crashers", "*"))
	n := 0
	for _, f := range files {
		if filepath.Ext(f) == ".md" {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m, err := minic.CompileSource(string(src), filepath.Base(f))
		if err != nil {
			continue // crashers may pin frontend errors
		}
		checkFlatEquiv(t, filepath.Base(f), m)
		n++
	}
	t.Logf("checked %d crasher programs", n)
}

func TestFlatEquivalenceProgenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("200-program corpus is not for -short")
	}
	for seed := int64(0); seed < 200; seed++ {
		src := progen.GenerateSeed(seed)
		m, err := minic.CompileSource(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		checkFlatEquiv(t, "progen-"+string(rune('0'+seed%10)), m)
	}
}

// A subset of the corpus additionally goes through the optimizer and the
// obfuscators, exercising flattening of transformed (non-frontend-shaped)
// IR: merged blocks, phis from mem2reg, flattened dispatch loops, opaque
// predicates.
func TestFlatEquivalenceTransformed(t *testing.T) {
	if testing.Short() {
		t.Skip("transformed corpus is not for -short")
	}
	for seed := int64(0); seed < 40; seed++ {
		src := progen.GenerateSeed(seed)
		for _, level := range []passes.Level{passes.O2, passes.O3} {
			m, err := minic.CompileSource(src, "gen")
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			if err := passes.Optimize(m, level); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, level, err)
			}
			checkFlatEquiv(t, level.String(), m)
		}
		for _, ob := range obfus.Names() {
			m, err := minic.CompileSource(src, "gen")
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			if err := obfus.Apply(m, ob, rand.New(rand.NewSource(seed))); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, ob, err)
			}
			checkFlatEquiv(t, ob, m)
		}
	}
}
