package embed_test

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
)

// benchModule compiles a mid-sized program once for the embedding benches.
func benchModule(b *testing.B) *ir.Module {
	b.Helper()
	const src = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	int s = 0;
	for (int i = 0; i < 20; i++) {
		if (i % 3 == 0) s += fib(i % 10);
		else if (i % 3 == 1) s ^= i * 7;
		else s -= i;
	}
	int a[16];
	for (int i = 0; i < 16; i++) a[i] = s + i;
	for (int i = 0; i < 16; i++) s += a[i] % 13;
	return s;
}`
	m, err := minic.CompileSource(src, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkGraphBuilders measures the graph embedding constructors; the
// interesting number is allocs/op, dominated (before the bulk feature-row
// allocation) by one one-hot slice per instruction node.
func BenchmarkGraphBuilders(b *testing.B) {
	m := benchModule(b)
	for _, name := range []string{"cfg", "cfg_compact", "cdfg", "cdfg_plus", "programl"} {
		emb, err := embed.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				emb.Graph(m)
			}
		})
	}
}

// BenchmarkHistogram covers the hot vector embedding used by most arena
// pipelines.
func BenchmarkHistogram(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		embed.Histogram(m)
	}
}

// BenchmarkIR2VecSerial is the single-goroutine baseline for the seed-vector
// cache.
func BenchmarkIR2VecSerial(b *testing.B) {
	m := benchModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		embed.IR2Vec(m)
	}
}

// BenchmarkIR2VecParallel exercises the seed-vector cache from all CPUs the
// way featurize workers do. Before the sync.Map fix, a global mutex held
// across the whole vector generation serialized every worker, so this bench
// barely scaled; with the lock-free read path it scales with GOMAXPROCS.
func BenchmarkIR2VecParallel(b *testing.B) {
	m := benchModule(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			embed.IR2Vec(m)
		}
	})
}
