package embed_test

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
)

// benchModule compiles a mid-sized program once for the embedding benches.
func benchModule(b *testing.B) *ir.Module {
	b.Helper()
	const src = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	int s = 0;
	for (int i = 0; i < 20; i++) {
		if (i % 3 == 0) s += fib(i % 10);
		else if (i % 3 == 1) s ^= i * 7;
		else s -= i;
	}
	int a[16];
	for (int i = 0; i < 16; i++) a[i] = s + i;
	for (int i = 0; i < 16; i++) s += a[i] % 13;
	return s;
}`
	m, err := minic.CompileSource(src, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

var graphBuilderNames = []string{"cfg", "cfg_compact", "cdfg", "cdfg_plus", "programl"}

// BenchmarkGraphBuilders measures the production graph-embedding path: the
// struct-of-arrays builders over a shared ir.Flat view (featurize obtains
// the view from progcache, so Flatten cost — measured separately by
// BenchmarkFlatten — is off the per-embed path). The builders allocate only
// their output: one backing array for all feature rows plus exact-sized
// edge slices.
func BenchmarkGraphBuilders(b *testing.B) {
	fl := ir.Flatten(benchModule(b))
	for _, name := range graphBuilderNames {
		emb, err := embed.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				emb.GraphFlat(fl)
			}
		})
	}
}

// BenchmarkGraphBuildersPointer is the legacy pointer-walking path, kept as
// the baseline the flat builders are measured against in BENCH_ir.json.
func BenchmarkGraphBuildersPointer(b *testing.B) {
	m := benchModule(b)
	for _, name := range graphBuilderNames {
		emb, err := embed.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				emb.Graph(m)
			}
		})
	}
}

// BenchmarkHistogram covers the hot vector embedding used by most arena
// pipelines, on its production (flat) path.
func BenchmarkHistogram(b *testing.B) {
	fl := ir.Flatten(benchModule(b))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		embed.HistogramFlat(fl)
	}
}

// BenchmarkHistogramPointer is the pointer-IR baseline for BenchmarkHistogram.
func BenchmarkHistogramPointer(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		embed.Histogram(m)
	}
}

// BenchmarkVectorBuilders measures the remaining flat vector embeddings
// (milepost's pooled dominator/loop analysis, ir2vec's precomputed vocab).
func BenchmarkVectorBuilders(b *testing.B) {
	m := benchModule(b)
	fl := ir.Flatten(m)
	b.Run("milepost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			embed.MilepostFlat(fl)
		}
	})
	b.Run("milepost_pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			embed.Milepost(m)
		}
	})
	b.Run("ir2vec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			embed.IR2VecFlat(fl)
		}
	})
	b.Run("ir2vec_pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			embed.IR2Vec(m)
		}
	})
}

// BenchmarkIR2VecParallel exercises the seed-vector cache from all CPUs the
// way featurize workers do. Before the sync.Map fix, a global mutex held
// across the whole vector generation serialized every worker, so this bench
// barely scaled; with the lock-free read path it scales with GOMAXPROCS.
func BenchmarkIR2VecParallel(b *testing.B) {
	m := benchModule(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			embed.IR2Vec(m)
		}
	})
}
