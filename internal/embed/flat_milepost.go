package embed

import (
	"sync"

	"repro/internal/ir"
)

// milepostScratch holds the per-function CFG analysis arrays of
// MilepostFlat: reverse postorder, dominators and natural-loop membership
// computed over int32 block indices instead of the map-based ir.DomTree.
// All slices are function-local (indexed by block position within the
// function) and recycled through milepostPool.
type milepostScratch struct {
	post    []int32 // postorder collection, reversed in place into RPO
	order   []int32 // block -> RPO position, -1 if unreachable
	idom    []int32 // block -> immediate dominator, -1 = none/entry
	predOff []int32 // counting-sort offsets into predList (len nb+1)
	predList []int32
	stack   []int32 // DFS / loop-body worklist
	frameB  []int32 // DFS frame: block
	frameI  []int32 // DFS frame: next successor ordinal
	backH   []int32 // back-edge headers, in discovery order
	backL   []int32 // back-edge latches, parallel to backH
	stamp   []int32 // block -> loop id of the loop body being built
	loopOf  []int32 // header block -> loop id, 0 = not a header
}

var milepostPool = sync.Pool{New: func() any { return new(milepostScratch) }}

// MilepostFlat is Milepost on the flat view: identical 56 features, with
// the dominator tree and natural loops computed on index arrays drawn from
// a sync.Pool instead of per-call maps.
func MilepostFlat(fl *ir.Flat) Vector {
	const dim = 56
	v := make(Vector, dim)
	set := func(i int, x float64) { v[i] += x }
	sc := milepostPool.Get().(*milepostScratch)
	totalBlocks, totalEdges := 0, 0
	for fi := range fl.Funcs {
		f := &fl.Funcs[fi]
		if f.IsDecl() {
			continue
		}
		set(0, 1) // number of functions
		set(1, float64(f.NumParams()))
		nb := int(f.Blk1 - f.Blk0)
		totalBlocks += nb
		set(2, float64(nb))

		// Per-edge predecessor counts (f.Preds lists a block once per
		// incoming edge, duplicate successors included).
		sc.predOff = grabI32(sc.predOff, nb+1, 0)
		npred := 0
		for lb := 0; lb < nb; lb++ {
			for _, s := range fl.BlockSuccs(f.Blk0 + int32(lb)) {
				sc.predOff[s-f.Blk0]++
				npred++
			}
		}
		for lb := 0; lb < nb; lb++ {
			b := &fl.Blocks[f.Blk0+int32(lb)]
			np := int(sc.predOff[lb])
			ns := len(fl.BlockSuccs(f.Blk0 + int32(lb)))
			totalEdges += ns
			set(3, float64(ns))
			switch {
			case np == 1:
				set(4, 1)
			case np == 2:
				set(5, 1)
			case np > 2:
				set(6, 1)
			}
			switch {
			case ns == 1:
				set(7, 1)
			case ns == 2:
				set(8, 1)
			case ns > 2:
				set(9, 1)
			}
			n := int(b.Ins1 - b.Ins0)
			switch {
			case n < 15:
				set(10, 1)
			case n <= 500:
				set(11, 1)
			default:
				set(12, 1)
			}
			for i := b.Ins0; i < b.Ins1; i++ {
				classifyInstrFlat(fl, i, set)
			}
		}

		nLoops, loopSizes := flatLoops(fl, f, sc, npred)
		set(13, float64(nLoops))
		for _, sz := range loopSizes {
			set(14, float64(sz))
			if sz > 8 {
				set(15, 1)
			}
		}
	}
	set(16, float64(len(fl.Mod.Globals)))
	if totalBlocks > 0 {
		set(17, float64(totalEdges)/float64(totalBlocks))
	}
	milepostPool.Put(sc)
	return v
}

// flatLoops computes the natural loops of f (the flat twin of
// ir.DomTree.NaturalLoops): back edges latch->header where the header
// dominates the latch, bodies collected by backward walks over reachable
// predecessors, loops merged by header in discovery order. It returns the
// loop count and the body size of each loop (all Milepost consumes).
// npred is the function's total CFG edge count, from the caller's
// pred-counting pass (sc.predOff holds the per-block counts on entry).
func flatLoops(fl *ir.Flat, f *ir.FlatFunc, sc *milepostScratch, npred int) (int, []int32) {
	nb := int(f.Blk1 - f.Blk0)
	if nb == 0 {
		return 0, nil
	}
	// Counting-sort the predecessor lists from the per-block counts.
	sc.predList = grabI32(sc.predList, npred, 0)
	off := 0
	for lb := 0; lb <= nb; lb++ {
		var c int32
		if lb < nb {
			c = sc.predOff[lb]
		}
		sc.predOff[lb] = int32(off)
		off += int(c)
	}
	for lb := 0; lb < nb; lb++ {
		for _, s := range fl.BlockSuccs(f.Blk0 + int32(lb)) {
			sl := s - f.Blk0
			sc.predList[sc.predOff[sl]] = int32(lb)
			sc.predOff[sl]++
		}
	}
	// predOff[lb] now ends lb's span; shift back to starts.
	for lb := nb; lb > 0; lb-- {
		sc.predOff[lb] = sc.predOff[lb-1]
	}
	sc.predOff[0] = 0

	// Reverse postorder via iterative DFS from the entry block.
	sc.order = grabI32(sc.order, nb, -1)
	sc.post = sc.post[:0]
	sc.frameB = append(sc.frameB[:0], 0)
	sc.frameI = append(sc.frameI[:0], 0)
	sc.order[0] = 0 // mark seen; real positions assigned after reversal
	for len(sc.frameB) > 0 {
		top := len(sc.frameB) - 1
		b := sc.frameB[top]
		succs := fl.BlockSuccs(f.Blk0 + b)
		if i := sc.frameI[top]; int(i) < len(succs) {
			sc.frameI[top]++
			s := succs[i] - f.Blk0
			if sc.order[s] == -1 {
				sc.order[s] = 0
				sc.frameB = append(sc.frameB, s)
				sc.frameI = append(sc.frameI, 0)
			}
			continue
		}
		sc.post = append(sc.post, b)
		sc.frameB = sc.frameB[:top]
		sc.frameI = sc.frameI[:top]
	}
	// Every block pushed during the DFS ends up in post, so each seen
	// block's 0 marker is replaced by its real RPO position here and
	// unreachable blocks keep -1.
	nr := len(sc.post) // reachable block count
	for i, b := range sc.post {
		sc.order[b] = int32(nr - 1 - i)
	}
	rpo := grabI32(sc.stack, nr, 0) // reuse stack's backing for rpo
	for i, b := range sc.post {
		rpo[nr-1-i] = b
	}

	// Cooper-Harvey-Kennedy iteration. idom[entry] = entry while
	// iterating (so entry terminates intersect walks), -1 afterwards.
	sc.idom = grabI32(sc.idom, nb, -1)
	sc.idom[0] = 0
	intersect := func(a, b int32) int32 {
		for a != b {
			for sc.order[a] > sc.order[b] {
				if sc.idom[a] == -1 {
					return b
				}
				a = sc.idom[a]
			}
			for sc.order[b] > sc.order[a] {
				if sc.idom[b] == -1 {
					return a
				}
				b = sc.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIDom := int32(-1)
			for _, p := range sc.predList[sc.predOff[b]:sc.predOff[b+1]] {
				if sc.idom[p] == -1 {
					continue
				}
				if newIDom == -1 {
					newIDom = p
				} else {
					newIDom = intersect(p, newIDom)
				}
			}
			if newIDom != -1 && sc.idom[b] != newIDom {
				sc.idom[b] = newIDom
				changed = true
			}
		}
	}
	sc.idom[0] = -1
	dominates := func(a, b int32) bool {
		for b != -1 {
			if a == b {
				return true
			}
			b = sc.idom[b]
		}
		return false
	}

	// Back edges in RPO-scan order (duplicate successors give duplicate
	// latch entries, matching the pointer version).
	sc.backH = sc.backH[:0]
	sc.backL = sc.backL[:0]
	for _, b := range rpo {
		for _, s := range fl.BlockSuccs(f.Blk0 + b) {
			sl := s - f.Blk0
			if dominates(sl, b) {
				sc.backH = append(sc.backH, sl)
				sc.backL = append(sc.backL, b)
			}
		}
	}
	if len(sc.backH) == 0 {
		sc.stack = rpo[:0]
		return 0, nil
	}

	// Group back edges by header (first-seen order) and build each loop
	// body with one stamp array: since each loop is completed before the
	// next begins, stamp value loopID+1 marks membership unambiguously.
	// The final body sets equal the pointer version's (set union over
	// backward walks is order-independent), and Milepost only consumes
	// their sizes.
	sc.stamp = grabI32(sc.stamp, nb, 0)
	sc.loopOf = grabI32(sc.loopOf, nb, 0)
	nLoops := 0
	for _, h := range sc.backH {
		if sc.loopOf[h] == 0 {
			nLoops++
			sc.loopOf[h] = int32(nLoops)
		}
	}
	sizes := sc.post[:0] // post is dead; reuse for the per-loop sizes
	for id := int32(1); id <= int32(nLoops); id++ {
		var header int32 = -1
		for _, h := range sc.backH {
			if sc.loopOf[h] == id {
				header = h
				break
			}
		}
		sc.stamp[header] = id
		size := int32(1)
		work := sc.frameB[:0]
		for k, h := range sc.backH {
			if h != header {
				continue
			}
			work = append(work, sc.backL[k])
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if sc.stamp[x] == id {
					continue
				}
				sc.stamp[x] = id
				size++
				for _, p := range sc.predList[sc.predOff[x]:sc.predOff[x+1]] {
					if sc.order[p] != -1 { // reachable predecessors only
						work = append(work, p)
					}
				}
			}
		}
		sc.frameB = work[:0]
		sizes = append(sizes, size)
	}
	sc.post = sizes
	sc.stack = rpo[:0]
	return nLoops, sizes
}

// classifyInstrFlat is classifyInstr on the flat view.
func classifyInstrFlat(fl *ir.Flat, i int32, set func(int, float64)) {
	set(18, 1) // total instructions
	op := fl.Op(i)
	row := &fl.Instrs[i]
	switch {
	case op == ir.OpAdd || op == ir.OpSub:
		set(19, 1)
	case op == ir.OpMul:
		set(20, 1)
	case op == ir.OpSDiv || op == ir.OpUDiv || op == ir.OpSRem || op == ir.OpURem:
		set(21, 1)
	case op == ir.OpShl || op == ir.OpLShr || op == ir.OpAShr:
		set(22, 1)
	case op == ir.OpAnd || op == ir.OpOr || op == ir.OpXor:
		set(23, 1)
	case op.IsFloatBinary():
		set(24, 1)
	case op == ir.OpLoad:
		set(25, 1)
	case op == ir.OpStore:
		set(26, 1)
	case op == ir.OpAlloca:
		set(27, 1)
	case op == ir.OpGEP:
		set(28, 1)
	case op == ir.OpPhi:
		set(29, 1)
		set(30, float64(len(fl.Args(i))))
	case op == ir.OpCall:
		set(31, 1)
		if row.Aux < 0 {
			set(32, 1) // external/builtin call
		}
		set(33, float64(len(fl.Args(i))))
	case op == ir.OpICmp:
		set(34, 1)
	case op == ir.OpFCmp:
		set(35, 1)
	case op == ir.OpSelect:
		set(36, 1)
	case op.IsCast():
		set(37, 1)
	case op == ir.OpRet:
		set(38, 1)
	case op == ir.OpBr:
		set(39, 1)
	case op == ir.OpCondBr:
		set(40, 1)
	case op == ir.OpSwitch:
		set(41, 1)
		set(42, float64(len(fl.InstrSwitchVals(i))))
	}
	// Operand census.
	for _, a := range fl.Args(i) {
		switch a.Kind {
		case ir.OperConst:
			set(43, 1)
			c := &fl.Consts[a.Idx]
			if !fl.Types[c.Ty].IsFloat() {
				switch c.I {
				case 0:
					set(44, 1)
				case 1:
					set(45, 1)
				}
			} else {
				set(46, 1)
			}
		case ir.OperParam, ir.OperBadParam:
			set(47, 1)
		case ir.OperGlobal:
			set(48, 1)
		case ir.OperInstr, ir.OperBadInstr:
			set(49, 1)
		}
	}
	ty := fl.Types[row.Ty]
	if ty.IsFloat() {
		set(50, 1)
	}
	if ty.IsPtr() {
		set(51, 1)
	}
	if ty.IsInt() && ty.Bits == 1 {
		set(52, 1)
	}
	if ty.IsInt() && ty.Bits == 8 {
		set(53, 1)
	}
	if ty.IsInt() && ty.Bits == 64 {
		set(54, 1)
	}
	if ty.IsVoid() {
		set(55, 1)
	}
}
