package embed_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
)

const sample = `
int helper(int x) { return x * 2 + 1; }
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) s += helper(i);
		else s -= i;
	}
	float f = 1.5 * s;
	return s + (int)f;
}`

func mod(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.CompileSource(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestHistogramDimensionAndCounts(t *testing.T) {
	m := mod(t, sample)
	h := embed.Histogram(m)
	if len(h) != int(ir.NumOpcodes) {
		t.Fatalf("histogram length %d, want %d", len(h), ir.NumOpcodes)
	}
	total := 0.0
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative histogram entry")
		}
		total += v
	}
	if int(total) != m.NumInstrs() {
		t.Fatalf("histogram sums to %v, module has %d instructions", total, m.NumInstrs())
	}
	if h[ir.OpCall] < 1 { // the helper call in the loop
		t.Fatalf("expected call opcodes counted, got %v", h[ir.OpCall])
	}
}

func TestAllEmbeddingsProduceOutput(t *testing.T) {
	m := mod(t, sample)
	for _, name := range embed.Names() {
		e, err := embed.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case embed.VectorKind:
			v := e.Vec(m)
			if len(v) == 0 {
				t.Errorf("%s: empty vector", name)
			}
			nonzero := false
			for _, x := range v {
				if x != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				t.Errorf("%s: all-zero vector", name)
			}
		case embed.GraphKind:
			g := e.Graph(m)
			if g.NumNodes() == 0 {
				t.Errorf("%s: empty graph", name)
			}
			if len(g.Edges) == 0 {
				t.Errorf("%s: no edges", name)
			}
			dim := g.FeatDim()
			for i, f := range g.NodeFeats {
				if len(f) != dim {
					t.Fatalf("%s: node %d feature dim %d != %d", name, i, len(f), dim)
				}
			}
			for i, e2 := range g.Edges {
				if e2[0] < 0 || e2[0] >= g.NumNodes() || e2[1] < 0 || e2[1] >= g.NumNodes() {
					t.Fatalf("%s: edge %d out of range: %v", name, i, e2)
				}
			}
			if len(g.EdgeTypes) != len(g.Edges) {
				t.Fatalf("%s: edge types not parallel to edges", name)
			}
		}
	}
}

func TestUnknownEmbedding(t *testing.T) {
	if _, err := embed.Get("word2vec"); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmbeddingsAreDeterministic(t *testing.T) {
	m := mod(t, sample)
	for _, name := range embed.VectorNames() {
		e, _ := embed.Get(name)
		a := e.Vec(m)
		b := e.Vec(m)
		if embed.Distance(a, b) != 0 {
			t.Errorf("%s: nondeterministic embedding", name)
		}
	}
}

func TestCFGCompactSmallerThanCFG(t *testing.T) {
	m := mod(t, sample)
	full := embed.CFG(m)
	compact := embed.CFGCompact(m)
	if compact.NumNodes() >= full.NumNodes() {
		t.Fatalf("compact (%d nodes) should be smaller than full (%d nodes)",
			compact.NumNodes(), full.NumNodes())
	}
}

func TestCDFGHasDataEdges(t *testing.T) {
	m := mod(t, sample)
	cfg := embed.CFG(m)
	cdfg := embed.CDFG(m)
	if len(cdfg.Edges) <= len(cfg.Edges) {
		t.Fatal("cdfg should add data edges over cfg")
	}
	hasData := false
	for _, et := range cdfg.EdgeTypes {
		if et == embed.DataEdge {
			hasData = true
		}
	}
	if !hasData {
		t.Fatal("cdfg has no data edges")
	}
}

func TestCDFGPlusHasCallEdges(t *testing.T) {
	m := mod(t, sample)
	g := embed.CDFGPlus(m)
	hasCall := false
	for _, et := range g.EdgeTypes {
		if et == embed.CallEdge {
			hasCall = true
		}
	}
	if !hasCall {
		t.Fatal("cdfg_plus has no call edges despite a direct call in the program")
	}
}

func TestProGraMLHasValueNodes(t *testing.T) {
	m := mod(t, sample)
	instrGraph := embed.CDFG(m)
	g := embed.ProGraML(m)
	if g.NumNodes() <= instrGraph.NumNodes() {
		t.Fatal("programl should add value nodes beyond instruction nodes")
	}
	if g.FeatDim() != int(ir.NumOpcodes)+3 {
		t.Fatalf("programl feature dim %d, want %d", g.FeatDim(), int(ir.NumOpcodes)+3)
	}
}

func TestObfuscationMovesHistogram(t *testing.T) {
	m1 := mod(t, sample)
	m2 := mod(t, sample)
	if err := obfus.Apply(m2, "ollvm", rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	d := embed.Distance(embed.Histogram(m1), embed.Histogram(m2))
	if d == 0 {
		t.Fatal("ollvm left the histogram unchanged")
	}
}

// Property: Distance is a metric-ish — symmetric, zero on identity,
// non-negative (checked with testing/quick on random vectors).
func TestDistanceProperties(t *testing.T) {
	symm := func(a, b []float64) bool {
		return embed.Distance(a, b) == embed.Distance(b, a)
	}
	if err := quick.Check(symm, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	selfZero := func(a []float64) bool {
		return embed.Distance(a, a) == 0
	}
	if err := quick.Check(selfZero, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	nonNeg := func(a, b []float64) bool {
		return embed.Distance(a, b) >= 0
	}
	if err := quick.Check(nonNeg, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceHandlesLengthMismatch(t *testing.T) {
	a := embed.Vector{3, 4}
	b := embed.Vector{3}
	if got := embed.Distance(a, b); got != 4 {
		t.Fatalf("distance = %v, want 4", got)
	}
}

func TestMilepostCapturesLoops(t *testing.T) {
	loopy := mod(t, `int main() { int s=0; for (int i=0;i<9;i++) for (int j=0;j<9;j++) s+=i*j; return s; }`)
	straight := mod(t, `int main() { return 1+2+3; }`)
	vl := embed.Milepost(loopy)
	vs := embed.Milepost(straight)
	if vl[13] <= vs[13] { // feature 13 = number of natural loops
		t.Fatalf("milepost loop count: loopy %v <= straight %v", vl[13], vs[13])
	}
}
