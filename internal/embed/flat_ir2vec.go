package embed

import (
	"sync"

	"repro/internal/ir"
)

// ir2vecVocab holds the seed vectors of every fixed vocabulary token —
// opcodes, comparison predicates and operand kinds — resolved once: the
// pointer builder re-concatenates and re-hashes the token strings on every
// instruction, which is most of its cost.
var ir2vecVocab struct {
	once sync.Once
	opc  [ir.NumOpcodes][]float64
	pred [10][]float64
	kind [8][]float64 // indexed by ir.OperandKind
}

func ir2vecVocabInit() {
	for op := ir.Opcode(0); op < ir.NumOpcodes; op++ {
		ir2vecVocab.opc[op] = seedVec("opc:" + op.String())
	}
	for p := range ir2vecVocab.pred {
		ir2vecVocab.pred[p] = seedVec("pred:" + ir.CmpPred(p).String())
	}
	// argKind buckets: instructions (and anything unrecognized) embed as
	// "ssa", exactly like the pointer builder's default case.
	ssa := seedVec("arg:ssa")
	param := seedVec("arg:param")
	ir2vecVocab.kind[ir.OperInstr] = ssa
	ir2vecVocab.kind[ir.OperBadInstr] = ssa
	ir2vecVocab.kind[ir.OperUnknown] = ssa
	ir2vecVocab.kind[ir.OperConst] = seedVec("arg:const")
	ir2vecVocab.kind[ir.OperParam] = param
	ir2vecVocab.kind[ir.OperBadParam] = param
	ir2vecVocab.kind[ir.OperGlobal] = seedVec("arg:global")
	ir2vecVocab.kind[ir.OperFunc] = seedVec("arg:func")
}

// ir2vecScratch caches the per-type seed vectors of one call, indexed by
// the flat view's type id (the type pool is tiny, so resolving each
// distinct type once per call costs a handful of seedVec cache hits).
type ir2vecScratch struct {
	tyVecs [][]float64
}

var ir2vecPool = sync.Pool{New: func() any { return new(ir2vecScratch) }}

// IR2VecFlat is IR2Vec on the flat view: the identical weighted sum in the
// identical accumulation order (bit-for-bit equal vectors), streaming the
// dense instruction table with no per-instruction string building.
func IR2VecFlat(fl *ir.Flat) Vector {
	ir2vecVocab.once.Do(ir2vecVocabInit)
	sc := ir2vecPool.Get().(*ir2vecScratch)
	if cap(sc.tyVecs) < len(fl.Types) {
		sc.tyVecs = make([][]float64, len(fl.Types))
	}
	sc.tyVecs = sc.tyVecs[:len(fl.Types)]
	for i := range sc.tyVecs {
		sc.tyVecs[i] = nil
	}

	v := make(Vector, ir2vecDim)
	n := int32(fl.NumInstrs())
	for i := int32(0); i < n; i++ {
		op := fl.Op(i)
		addScaled(v, ir2vecVocab.opc[op], 1.0)
		tid := fl.Instrs[i].Ty
		tv := sc.tyVecs[tid]
		if tv == nil {
			tv = seedVec("ty:" + fl.TypeStrs[tid])
			sc.tyVecs[tid] = tv
		}
		addScaled(v, tv, 0.5)
		for _, a := range fl.Args(i) {
			addScaled(v, ir2vecVocab.kind[a.Kind], 0.2)
		}
		if op == ir.OpICmp || op == ir.OpFCmp {
			addScaled(v, ir2vecVocab.pred[fl.Instrs[i].Pred], 0.3)
		}
	}
	ir2vecPool.Put(sc)
	return v
}
