// Package embed implements the nine program embeddings of the paper's
// classification arena (Figure 3): three vector embeddings — histogram,
// milepost and ir2vec — and six graph embeddings — cfg, cfg_compact, cdfg,
// cdfg_compact, cdfg_plus and programl. Vector embeddings feed all six
// stochastic models; graph embeddings feed the DGCNN.
package embed

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/ir"
)

// Vector is a fixed-length numeric program representation.
type Vector []float64

// Graph is an attributed directed graph program representation: node
// feature vectors (uniform dimension), typed edges.
type Graph struct {
	NodeFeats [][]float64
	Edges     [][2]int
	EdgeTypes []EdgeType
}

// EdgeType labels graph edges.
type EdgeType int

// Edge categories, following ProGraML's terminology.
const (
	ControlEdge EdgeType = iota
	DataEdge
	CallEdge
	MemoryEdge
)

// NumNodes returns the number of nodes in g.
func (g *Graph) NumNodes() int { return len(g.NodeFeats) }

// FeatDim returns the node feature dimensionality (0 for an empty graph).
func (g *Graph) FeatDim() int {
	if len(g.NodeFeats) == 0 {
		return 0
	}
	return len(g.NodeFeats[0])
}

// Kind discriminates vector from graph embeddings.
type Kind int

// Embedding output kinds.
const (
	VectorKind Kind = iota
	GraphKind
)

// Embedding is a named embedding function. Every embedding has two
// implementations producing identical output: one walking the pointer IR
// and one streaming the struct-of-arrays ir.Flat view. Callers holding a
// Flat (the progcache shared path, or any module flattened after its last
// mutation) should prefer VecFlat/GraphFlat — the flat builders allocate
// only their output.
type Embedding struct {
	Name string
	Kind Kind
	// Vec computes the vector form (VectorKind only).
	Vec func(*ir.Module) Vector
	// VecFlat computes the same vector from the flat view.
	VecFlat func(*ir.Flat) Vector
	// Graph computes the graph form (GraphKind only).
	Graph func(*ir.Module) *Graph
	// GraphFlat computes the same graph from the flat view.
	GraphFlat func(*ir.Flat) *Graph
}

// Names lists all embeddings in the paper's order (Figure 3).
func Names() []string {
	return []string{
		"cfg", "cfg_compact", "cdfg", "cdfg_compact", "cdfg_plus",
		"programl", "ir2vec", "milepost", "histogram",
	}
}

// VectorNames lists the vector embeddings (usable with all models).
func VectorNames() []string { return []string{"ir2vec", "milepost", "histogram"} }

// Get returns the embedding registered under name.
func Get(name string) (*Embedding, error) {
	switch name {
	case "histogram":
		return &Embedding{Name: name, Kind: VectorKind, Vec: Histogram, VecFlat: HistogramFlat}, nil
	case "milepost":
		return &Embedding{Name: name, Kind: VectorKind, Vec: Milepost, VecFlat: MilepostFlat}, nil
	case "ir2vec":
		return &Embedding{Name: name, Kind: VectorKind, Vec: IR2Vec, VecFlat: IR2VecFlat}, nil
	case "cfg":
		return &Embedding{Name: name, Kind: GraphKind, Graph: CFG, GraphFlat: CFGFlat}, nil
	case "cfg_compact":
		return &Embedding{Name: name, Kind: GraphKind, Graph: CFGCompact, GraphFlat: CFGCompactFlat}, nil
	case "cdfg":
		return &Embedding{Name: name, Kind: GraphKind, Graph: CDFG, GraphFlat: CDFGFlat}, nil
	case "cdfg_compact":
		return &Embedding{Name: name, Kind: GraphKind, Graph: CDFGCompact, GraphFlat: CDFGCompactFlat}, nil
	case "cdfg_plus":
		return &Embedding{Name: name, Kind: GraphKind, Graph: CDFGPlus, GraphFlat: CDFGPlusFlat}, nil
	case "programl":
		return &Embedding{Name: name, Kind: GraphKind, Graph: ProGraML, GraphFlat: ProGraMLFlat}, nil
	}
	return nil, fmt.Errorf("embed: unknown embedding %q", name)
}

// Histogram returns the 63-dimensional opcode histogram — "a vector of 63
// positions counting instruction opcodes". Despite its simplicity the paper
// finds it competitive with every learned representation.
func Histogram(m *ir.Module) Vector {
	v := make(Vector, ir.NumOpcodes)
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) { v[in.Op]++ })
	}
	return v
}

// blockHistogramInto accumulates b's opcode histogram into v.
func blockHistogramInto(v []float64, b *ir.Block) {
	for _, in := range b.Instrs {
		v[in.Op]++
	}
}

// featRows carves n zeroed feature rows of width dim out of one backing
// array: a single allocation instead of one per node, which dominates the
// graph builders' allocation profile on instruction-level embeddings.
func featRows(n, dim int) [][]float64 {
	backing := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

// moduleInstrs enumerates instructions of all defined functions in a
// deterministic order, assigning each a node index. Both containers are
// pre-sized by a counting pass.
func moduleInstrs(m *ir.Module) ([]*ir.Instr, map[*ir.Instr]int) {
	n := 0
	for _, f := range m.Functions {
		f.ForEachInstr(func(*ir.Instr) { n++ })
	}
	instrs := make([]*ir.Instr, 0, n)
	idx := make(map[*ir.Instr]int, n)
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			idx[in] = len(instrs)
			instrs = append(instrs, in)
		})
	}
	return instrs, idx
}

// addControlEdges appends instruction-level control-flow edges: sequential
// flow inside blocks plus terminator-to-target-head edges.
func addControlEdges(g *Graph, m *ir.Module, idx map[*ir.Instr]int) {
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for i := 0; i+1 < len(b.Instrs); i++ {
				g.addEdge(idx[b.Instrs[i]], idx[b.Instrs[i+1]], ControlEdge)
			}
			term := b.Term()
			if term == nil {
				continue
			}
			for _, s := range term.Succs() {
				if len(s.Instrs) > 0 {
					g.addEdge(idx[term], idx[s.Instrs[0]], ControlEdge)
				}
			}
		}
	}
}

func (g *Graph) addEdge(from, to int, t EdgeType) {
	g.Edges = append(g.Edges, [2]int{from, to})
	g.EdgeTypes = append(g.EdgeTypes, t)
}

// CFG is Brauckmann et al.'s control-flow graph: one node per instruction
// with a one-hot opcode feature, control-flow edges only.
func CFG(m *ir.Module) *Graph {
	instrs, idx := moduleInstrs(m)
	g := &Graph{NodeFeats: featRows(len(instrs), int(ir.NumOpcodes))}
	for i, in := range instrs {
		g.NodeFeats[i][in.Op] = 1
	}
	addControlEdges(g, m, idx)
	return g
}

// CFGCompact groups instructions into basic blocks: one node per block with
// an opcode-histogram feature, CFG edges between blocks.
func CFGCompact(m *ir.Module) *Graph {
	nb := 0
	for _, f := range m.Functions {
		nb += len(f.Blocks)
	}
	g := &Graph{NodeFeats: featRows(nb, int(ir.NumOpcodes))[:0]}
	bidx := make(map[*ir.Block]int, nb)
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			bidx[b] = len(g.NodeFeats)
			g.NodeFeats = g.NodeFeats[:len(g.NodeFeats)+1]
			blockHistogramInto(g.NodeFeats[len(g.NodeFeats)-1], b)
		}
	}
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				g.addEdge(bidx[b], bidx[s], ControlEdge)
			}
		}
	}
	return g
}

// addDataEdges appends def-use edges between instruction nodes.
func addDataEdges(g *Graph, m *ir.Module, idx map[*ir.Instr]int) {
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			for _, a := range in.Args {
				if d, ok := a.(*ir.Instr); ok {
					g.addEdge(idx[d], idx[in], DataEdge)
				}
			}
		})
	}
}

// CDFG adds data-flow (def-use) edges to CFG.
func CDFG(m *ir.Module) *Graph {
	instrs, idx := moduleInstrs(m)
	g := &Graph{NodeFeats: featRows(len(instrs), int(ir.NumOpcodes))}
	for i, in := range instrs {
		g.NodeFeats[i][in.Op] = 1
	}
	addControlEdges(g, m, idx)
	addDataEdges(g, m, idx)
	return g
}

// CDFGCompact is the block-level variant of CDFG: block nodes with
// histogram features, control edges, plus data edges between blocks that
// communicate through SSA values.
func CDFGCompact(m *ir.Module) *Graph {
	nb := 0
	for _, f := range m.Functions {
		nb += len(f.Blocks)
	}
	g := &Graph{NodeFeats: featRows(nb, int(ir.NumOpcodes))[:0]}
	bidx := make(map[*ir.Block]int, nb)
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			bidx[b] = len(g.NodeFeats)
			g.NodeFeats = g.NodeFeats[:len(g.NodeFeats)+1]
			blockHistogramInto(g.NodeFeats[len(g.NodeFeats)-1], b)
		}
	}
	seen := make(map[[2]int]bool)
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				g.addEdge(bidx[b], bidx[s], ControlEdge)
			}
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					if d, ok := a.(*ir.Instr); ok && d.Parent != b {
						key := [2]int{bidx[d.Parent], bidx[b]}
						if !seen[key] {
							seen[key] = true
							g.addEdge(key[0], key[1], DataEdge)
						}
					}
				}
			}
		}
	}
	return g
}

// CDFGPlus extends CDFG with call edges (call site to callee entry and
// callee returns back to the call site) and memory edges linking allocas to
// the loads and stores that touch them.
func CDFGPlus(m *ir.Module) *Graph {
	instrs, idx := moduleInstrs(m)
	g := &Graph{NodeFeats: featRows(len(instrs), int(ir.NumOpcodes))}
	for i, in := range instrs {
		g.NodeFeats[i][in.Op] = 1
	}
	addControlEdges(g, m, idx)
	addDataEdges(g, m, idx)
	for _, in := range instrs {
		if in.Op == ir.OpCall && in.Callee != nil && !in.Callee.IsDecl() {
			entry := in.Callee.Entry()
			if len(entry.Instrs) > 0 {
				g.addEdge(idx[in], idx[entry.Instrs[0]], CallEdge)
			}
			in.Callee.ForEachInstr(func(r *ir.Instr) {
				if r.Op == ir.OpRet {
					g.addEdge(idx[r], idx[in], CallEdge)
				}
			})
		}
	}
	// Memory edges: alloca/global accesses aliasing through the base.
	for _, in := range instrs {
		switch in.Op {
		case ir.OpLoad:
			if d, ok := in.Args[0].(*ir.Instr); ok && d.Op == ir.OpAlloca {
				g.addEdge(idx[d], idx[in], MemoryEdge)
			}
		case ir.OpStore:
			if d, ok := in.Args[1].(*ir.Instr); ok && d.Op == ir.OpAlloca {
				g.addEdge(idx[in], idx[d], MemoryEdge)
			}
		}
	}
	return g
}

// ProGraML builds the full program graph of Cummins et al.: instruction
// nodes plus distinct value nodes (constants, parameters, globals), with
// control, data and call edges. Node features are a one-hot over
// NumOpcodes+3 categories (instructions by opcode; constants, parameters
// and globals as three extra categories).
func ProGraML(m *ir.Module) *Graph {
	instrs, idx := moduleInstrs(m)
	dim := int(ir.NumOpcodes) + 3
	g := &Graph{NodeFeats: featRows(len(instrs), dim)}
	for i, in := range instrs {
		g.NodeFeats[i][in.Op] = 1
	}
	addControlEdges(g, m, idx)

	// Value nodes. Constants are deduplicated by (type,payload); params
	// and globals get one node each.
	valNode := make(map[string]int)
	nodeOf := func(v ir.Value) (int, bool) {
		var key string
		var cat int
		switch x := v.(type) {
		case *ir.Instr:
			return idx[x], true
		case *ir.Const:
			key = "c|" + x.Ty.String() + "|" + x.Ref()
			cat = 0
		case *ir.Param:
			key = fmt.Sprintf("p|%p", x)
			cat = 1
		case *ir.Global:
			key = "g|" + x.Name
			cat = 2
		default:
			return 0, false
		}
		if n, ok := valNode[key]; ok {
			return n, true
		}
		feat := make([]float64, dim)
		feat[int(ir.NumOpcodes)+cat] = 1
		g.NodeFeats = append(g.NodeFeats, feat)
		n := len(g.NodeFeats) - 1
		valNode[key] = n
		return n, true
	}
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			for _, a := range in.Args {
				if n, ok := nodeOf(a); ok {
					g.addEdge(n, idx[in], DataEdge)
				}
			}
			if in.Op == ir.OpCall && in.Callee != nil && !in.Callee.IsDecl() {
				entry := in.Callee.Entry()
				if len(entry.Instrs) > 0 {
					g.addEdge(idx[in], idx[entry.Instrs[0]], CallEdge)
				}
			}
		})
	}
	return g
}

// Milepost computes a Milepost-GCC-style vector of 56 static code features
// (instruction category counts, CFG shape, loop structure, memory traffic).
func Milepost(m *ir.Module) Vector {
	const dim = 56
	v := make(Vector, dim)
	set := func(i int, x float64) { v[i] += x }
	totalBlocks, totalEdges := 0, 0
	for _, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		set(0, 1) // number of functions
		set(1, float64(len(f.Params)))
		nb := len(f.Blocks)
		totalBlocks += nb
		set(2, float64(nb))
		preds := f.Preds()
		for _, b := range f.Blocks {
			np := len(preds[b])
			ns := len(b.Succs())
			totalEdges += ns
			set(3, float64(ns))
			switch {
			case np == 1:
				set(4, 1)
			case np == 2:
				set(5, 1)
			case np > 2:
				set(6, 1)
			}
			switch {
			case ns == 1:
				set(7, 1)
			case ns == 2:
				set(8, 1)
			case ns > 2:
				set(9, 1)
			}
			n := len(b.Instrs)
			switch {
			case n < 15:
				set(10, 1)
			case n <= 500:
				set(11, 1)
			default:
				set(12, 1)
			}
			for _, in := range b.Instrs {
				classifyInstr(in, set)
			}
		}
		dt := ir.NewDomTree(f)
		loops := dt.NaturalLoops()
		set(13, float64(len(loops)))
		for _, l := range loops {
			set(14, float64(len(l.Blocks)))
			if len(l.Blocks) > 8 {
				set(15, 1)
			}
		}
	}
	set(16, float64(len(m.Globals)))
	if totalBlocks > 0 {
		set(17, float64(totalEdges)/float64(totalBlocks))
	}
	return v
}

func classifyInstr(in *ir.Instr, set func(int, float64)) {
	set(18, 1) // total instructions
	switch {
	case in.Op == ir.OpAdd || in.Op == ir.OpSub:
		set(19, 1)
	case in.Op == ir.OpMul:
		set(20, 1)
	case in.Op == ir.OpSDiv || in.Op == ir.OpUDiv || in.Op == ir.OpSRem || in.Op == ir.OpURem:
		set(21, 1)
	case in.Op == ir.OpShl || in.Op == ir.OpLShr || in.Op == ir.OpAShr:
		set(22, 1)
	case in.Op == ir.OpAnd || in.Op == ir.OpOr || in.Op == ir.OpXor:
		set(23, 1)
	case in.Op.IsFloatBinary():
		set(24, 1)
	case in.Op == ir.OpLoad:
		set(25, 1)
	case in.Op == ir.OpStore:
		set(26, 1)
	case in.Op == ir.OpAlloca:
		set(27, 1)
	case in.Op == ir.OpGEP:
		set(28, 1)
	case in.Op == ir.OpPhi:
		set(29, 1)
		set(30, float64(len(in.Args)))
	case in.Op == ir.OpCall:
		set(31, 1)
		if in.Callee == nil {
			set(32, 1) // external/builtin call
		}
		set(33, float64(len(in.Args)))
	case in.Op == ir.OpICmp:
		set(34, 1)
	case in.Op == ir.OpFCmp:
		set(35, 1)
	case in.Op == ir.OpSelect:
		set(36, 1)
	case in.Op.IsCast():
		set(37, 1)
	case in.Op == ir.OpRet:
		set(38, 1)
	case in.Op == ir.OpBr:
		set(39, 1)
	case in.Op == ir.OpCondBr:
		set(40, 1)
	case in.Op == ir.OpSwitch:
		set(41, 1)
		set(42, float64(len(in.SwitchVals)))
	}
	// Operand census.
	for _, a := range in.Args {
		switch x := a.(type) {
		case *ir.Const:
			set(43, 1)
			if !x.Ty.IsFloat() {
				switch x.I {
				case 0:
					set(44, 1)
				case 1:
					set(45, 1)
				}
			} else {
				set(46, 1)
			}
		case *ir.Param:
			set(47, 1)
		case *ir.Global:
			set(48, 1)
		case *ir.Instr:
			set(49, 1)
		}
	}
	if in.Ty.IsFloat() {
		set(50, 1)
	}
	if in.Ty.IsPtr() {
		set(51, 1)
	}
	if in.Ty.IsInt() && in.Ty.Bits == 1 {
		set(52, 1)
	}
	if in.Ty.IsInt() && in.Ty.Bits == 8 {
		set(53, 1)
	}
	if in.Ty.IsInt() && in.Ty.Bits == 64 {
		set(54, 1)
	}
	if in.Ty.IsVoid() {
		set(55, 1)
	}
}

// ir2vecDim is the dimensionality of the IR2Vec-style embedding. The
// original uses 300; 64 keeps the from-scratch models cheap while
// preserving the construction (seed vocabulary + flow-weighted sums).
const ir2vecDim = 64

// IR2Vec implements the symbolic flavour of IR2Vec: every opcode, type and
// operand kind has a deterministic seed vector; an instruction embeds as a
// weighted sum (w_opc=1, w_type=0.5, w_arg=0.2); the program embedding is
// the sum over all instructions.
func IR2Vec(m *ir.Module) Vector {
	v := make(Vector, ir2vecDim)
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			acc := seedVec("opc:" + in.Op.String())
			addScaled(v, acc, 1.0)
			addScaled(v, seedVec("ty:"+in.Type().String()), 0.5)
			for _, a := range in.Args {
				addScaled(v, seedVec("arg:"+argKind(a)), 0.2)
			}
			if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
				addScaled(v, seedVec("pred:"+in.Pred.String()), 0.3)
			}
		})
	}
	return v
}

func argKind(a ir.Value) string {
	switch a.(type) {
	case *ir.Const:
		return "const"
	case *ir.Param:
		return "param"
	case *ir.Global:
		return "global"
	case *ir.Function:
		return "func"
	default:
		return "ssa"
	}
}

func addScaled(dst Vector, src []float64, w float64) {
	for i := range dst {
		dst[i] += w * src[i]
	}
}

// seedCache memoizes the deterministic seed vectors. A sync.Map keeps the
// hot path lock-free: the vocabulary is tiny (one entry per opcode, type
// and operand kind) and read-mostly, and holding a global mutex while
// generating the vector serialized every featurize worker.
var seedCache sync.Map // token string -> []float64

// seedVec derives a deterministic pseudo-random unit-scale vector from a
// token via an FNV-based SplitMix stream (the "seed embedding vocabulary").
// The derivation is a pure function of the token, so a racing duplicate
// computation is harmless — LoadOrStore keeps the first stored copy.
func seedVec(token string) []float64 {
	if v, ok := seedCache.Load(token); ok {
		return v.([]float64)
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(token); i++ {
		h ^= uint64(token[i])
		h *= 1099511628211
	}
	v := make([]float64, ir2vecDim)
	x := h
	for i := range v {
		// SplitMix64 step.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v[i] = float64(int64(z)) / float64(1<<63) * 0.5
	}
	stored, _ := seedCache.LoadOrStore(token, v)
	return stored.([]float64)
}

// Distance returns the Euclidean distance between two vectors (used for
// the Figure 10 histogram-distance analysis and by the evader strategies).
func Distance(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return math.Sqrt(s)
}
