package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/progcache"
	"repro/internal/stats"
)

// Per-phase span timers in the process-wide obs registry. Spans observed
// from concurrent rounds all accumulate, so totals are CPU-style time (the
// same convention the harness footer has always printed); run manifests
// and -debug-addr read them live.
var (
	phaseFeaturize = obs.GetTimer("phase.featurize")
	phaseEmbed     = obs.GetTimer("phase.embed")
	phaseFit       = obs.GetTimer("phase.fit")
	phasePredict   = obs.GetTimer("phase.predict")
	phaseTrain     = obs.GetTimer("phase.train")
	phaseExec      = obs.GetTimer("phase.exec")
	phaseRounds    = obs.GetCounter("phase.rounds")
)

// Pipeline is one classifier configuration: a program embedding, a
// stochastic model and (for Game 3) a code normalizer.
type Pipeline struct {
	Embedding  string
	Model      string
	Normalizer passes.Level // O0 = no normalization
}

// GameConfig configures one adversarial game (Definition 2.4 / Figure 1).
type GameConfig struct {
	// Game is 0..3.
	Game int
	// Evader is the transformation available to the evader (games 1-3);
	// ignored in Game 0.
	Evader string
	// Pipeline is the classifier.
	Pipeline Pipeline
	// TrainFrac is the training split (the paper uses 375/500 = 0.75).
	// Zero means "use the default 0.75"; any other value outside (0, 1)
	// is rejected.
	TrainFrac float64
	// Seed drives the split, the evader and the model initialization.
	Seed int64
}

// GameResult is the outcome of one game round.
type GameResult struct {
	Accuracy    float64
	F1          float64
	NumTrain    int
	NumTest     int
	ModelMemory int64
	// FeaturizeTime and TrainTime are the wall-clock phase timings of the
	// round (compile+transform+embed vs. model fit+predict), surfaced so
	// harnesses can report where the time goes.
	FeaturizeTime time.Duration
	TrainTime     time.Duration
}

// featurized holds one sample's embedding (vector or graph).
type featurized struct {
	vec   embed.Vector
	graph *embed.Graph
	label int
	err   error
}

// RunGame plays one round of the configured game over the dataset.
func RunGame(set *dataset.Set, cfg GameConfig) (*GameResult, error) {
	if cfg.Game < 0 || cfg.Game > 3 {
		return nil, fmt.Errorf("core: game must be 0..3, got %d", cfg.Game)
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.75
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("core: TrainFrac must be in (0, 1), got %v", cfg.TrainFrac)
	}
	if cfg.Game >= 1 {
		if err := ValidateEvader(cfg.Evader); err != nil {
			return nil, err
		}
	}
	emb, err := embed.Get(cfg.Pipeline.Embedding)
	if err != nil {
		return nil, err
	}
	if emb.Kind == embed.GraphKind && cfg.Pipeline.Model != "dgcnn" {
		return nil, fmt.Errorf("core: graph embedding %q requires the dgcnn model", emb.Name)
	}
	if emb.Kind == embed.VectorKind && cfg.Pipeline.Model == "dgcnn" {
		return nil, fmt.Errorf("core: dgcnn requires a graph embedding, %q is a vector", emb.Name)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	train, test := set.Split(cfg.TrainFrac, rng)

	// Decide the transformation each side sees (Figure 1).
	trainTransform, testTransform := "none", "none"
	normalizeTrain, normalizeTest := false, false
	switch cfg.Game {
	case 0:
		// passive evader, untouched training set
	case 1:
		testTransform = cfg.Evader
	case 2:
		trainTransform = cfg.Evader
		testTransform = cfg.Evader
	case 3:
		testTransform = cfg.Evader
		normalizeTrain = cfg.Pipeline.Normalizer != passes.O0
		normalizeTest = normalizeTrain
	}

	featStart := time.Now()
	trainFeats, err := featurize(train, trainTransform, normalizeTrain, cfg.Pipeline.Normalizer, emb, rng)
	if err != nil {
		return nil, err
	}
	testFeats, err := featurize(test, testTransform, normalizeTest, cfg.Pipeline.Normalizer, emb, rng)
	if err != nil {
		return nil, err
	}

	res := &GameResult{NumTrain: len(train), NumTest: len(test)}
	res.FeaturizeTime = time.Since(featStart)
	phaseFeaturize.Observe(res.FeaturizeTime)
	trainStart := time.Now()
	truth := make([]int, len(testFeats))
	pred := make([]int, len(testFeats))
	for i, f := range testFeats {
		truth[i] = f.label
	}

	if emb.Kind == embed.GraphKind {
		model := ml.NewDGCNN(rand.New(rand.NewSource(rng.Int63())))
		gs := make([]*embed.Graph, len(trainFeats))
		ys := make([]int, len(trainFeats))
		for i, f := range trainFeats {
			gs[i] = f.graph
			ys[i] = f.label
		}
		fitDone := phaseFit.Start()
		if err := model.FitGraphs(gs, ys, set.NumClasses); err != nil {
			return nil, err
		}
		fitDone()
		predictDone := phasePredict.Start()
		predictAll(len(testFeats), func(i int) {
			pred[i] = model.PredictGraph(testFeats[i].graph)
		})
		predictDone()
		res.ModelMemory = model.MemoryBytes()
	} else {
		model, err := ml.New(cfg.Pipeline.Model, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		X := make([][]float64, len(trainFeats))
		ys := make([]int, len(trainFeats))
		for i, f := range trainFeats {
			X[i] = f.vec
			ys[i] = f.label
		}
		fitDone := phaseFit.Start()
		if err := model.Fit(X, ys, set.NumClasses); err != nil {
			return nil, err
		}
		fitDone()
		predictDone := phasePredict.Start()
		predictAll(len(testFeats), func(i int) {
			pred[i] = model.Predict(testFeats[i].vec)
		})
		predictDone()
		res.ModelMemory = model.MemoryBytes()
	}
	res.TrainTime = time.Since(trainStart)
	phaseTrain.Observe(res.TrainTime)
	phaseRounds.Inc()
	res.Accuracy, err = stats.Accuracy(pred, truth)
	if err != nil {
		return nil, fmt.Errorf("core: scoring game %d: %w", cfg.Game, err)
	}
	res.F1 = stats.MacroF1(pred, truth, set.NumClasses)
	return res, nil
}

// ClampWorkers bounds a requested worker count to the n units of work
// available: non-positive requests mean GOMAXPROCS, and the result is
// always in [1, n] — except n <= 0, which returns 0 (no work, spawn
// nothing). Every parallel site in the harness (featurize, predictAll,
// RunRoundsN, the arena's experiment cells) sizes its pool through this
// one function so the edge cases stay uniform.
func ClampWorkers(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// predictAll evaluates fn(i) for every test index across all CPUs. Trained
// models are read-only at prediction time and each call writes only its own
// pred slot, so the output is identical to the serial loop.
func predictAll(n int, fn func(i int)) {
	workers := ClampWorkers(0, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// featurize compiles, transforms, optionally normalizes and embeds every
// sample, in parallel, with per-sample deterministic randomness.
func featurize(samples []dataset.Sample, transform string, normalize bool,
	norm passes.Level, emb *embed.Embedding, rng *rand.Rand) ([]featurized, error) {

	seeds := make([]int64, len(samples))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	out := make([]featurized, len(samples))
	workers := ClampWorkers(0, len(samples))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = featurizeOne(samples[i], transform, normalize, norm, emb, seeds[i])
			}
		}()
	}
	for i := range samples {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range out {
		if out[i].err != nil {
			return nil, fmt.Errorf("core: sample %d: %w", i, out[i].err)
		}
	}
	return out, nil
}

func featurizeOne(s dataset.Sample, transform string, normalize bool,
	norm passes.Level, emb *embed.Embedding, seed int64) featurized {

	f := featurized{label: s.Class}
	var fl *ir.Flat
	if !normalize && (transform == "" || transform == "none" || transform == "O0") {
		// The passive evader with no normalizer leaves the module exactly
		// as compiled, and embeddings only read it — so every round and
		// every worker can share the one cached flat view, skipping the
		// front end, the clone and the flatten.
		var err error
		fl, err = progcache.CompileFlat(s.Source, "prog")
		if err != nil {
			f.err = err
			return f
		}
	} else {
		m, err := Transform(s.Source, transform, rand.New(rand.NewSource(seed)))
		if err != nil {
			f.err = err
			return f
		}
		if normalize {
			if err := Normalize(m, norm); err != nil {
				f.err = err
				return f
			}
		}
		fl = ir.Flatten(m)
	}
	embedStart := time.Now()
	if emb.Kind == embed.GraphKind {
		f.graph = emb.GraphFlat(fl)
	} else {
		f.vec = emb.VecFlat(fl)
	}
	phaseEmbed.Observe(time.Since(embedStart))
	return f
}

// RunRounds repeats the game the given number of rounds (the paper uses
// ten), varying the seed, and returns the per-round results plus accuracy
// summary. Rounds run in parallel across all available CPUs; see RunRoundsN
// to pick the worker count.
func RunRounds(set *dataset.Set, cfg GameConfig, rounds int) ([]GameResult, stats.Summary, error) {
	return RunRoundsN(set, cfg, rounds, 0)
}

// RunRoundsN is RunRounds with an explicit worker count (0 or negative
// means GOMAXPROCS). Each round derives its seed from the round index —
// cfg.Seed + r*7919, byte-identical to the historical serial derivation —
// so the results do not depend on the worker count or completion order.
func RunRoundsN(set *dataset.Set, cfg GameConfig, rounds int, workers int) ([]GameResult, stats.Summary, error) {
	if rounds < 1 {
		return nil, stats.Summary{}, fmt.Errorf("core: rounds must be >= 1, got %d", rounds)
	}
	workers = ClampWorkers(workers, rounds)
	results := make([]GameResult, rounds)
	errs := make([]error, rounds)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				c := cfg
				c.Seed = cfg.Seed + int64(r)*7919
				res, err := RunGame(set, c)
				if err != nil {
					errs[r] = err
					continue
				}
				results[r] = *res
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats.Summary{}, err
		}
	}
	accs := make([]float64, rounds)
	for r := range results {
		accs[r] = results[r].Accuracy
	}
	return results, stats.Summarize(accs), nil
}
