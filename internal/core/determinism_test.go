package core_test

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/progcache"
	"repro/internal/stats"
)

// TestRunGameCacheInvariant is the clone-before-mutate regression guard:
// with a fixed seed, RunGame must return bit-identical Accuracy/F1 whether
// the compile cache is enabled or not, and under GOMAXPROCS=1 vs. many.
// A cached master leaking mutations (a missing clone, a shallow field in
// ir.Clone) shows up here as a divergence between the configurations.
func TestRunGameCacheInvariant(t *testing.T) {
	set := smallSet(t, 5, 8, 31)
	cfgs := []core.GameConfig{
		{Game: 0, Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"}, Seed: 7},
		{Game: 1, Evader: "ollvm", Pipeline: core.Pipeline{Embedding: "histogram", Model: "knn"}, Seed: 7},
		{Game: 2, Evader: "sub", Pipeline: core.Pipeline{Embedding: "ir2vec", Model: "lr"}, Seed: 7},
	}
	type outcome struct{ acc, f1 float64 }
	run := func(cfg core.GameConfig) outcome {
		t.Helper()
		res, err := core.RunGame(set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{res.Accuracy, res.F1}
	}
	for _, cfg := range cfgs {
		progcache.SetEnabled(true)
		cachedCold := run(cfg) // may populate the cache
		cachedWarm := run(cfg) // served from the cache
		progcache.SetEnabled(false)
		uncached := run(cfg)
		progcache.SetEnabled(true)

		old := runtime.GOMAXPROCS(1)
		serial := run(cfg)
		runtime.GOMAXPROCS(old)

		if cachedCold != cachedWarm || cachedWarm != uncached || uncached != serial {
			t.Fatalf("game %d: results depend on cache/parallelism: cold=%v warm=%v uncached=%v serial=%v",
				cfg.Game, cachedCold, cachedWarm, uncached, serial)
		}
	}
}

// TestRunRoundsWorkerInvariance checks that the parallel round scheduler
// preserves the historical per-round seed derivation: any worker count must
// produce the same per-round results in the same order.
func TestRunRoundsWorkerInvariance(t *testing.T) {
	set := smallSet(t, 4, 8, 32)
	cfg := core.GameConfig{
		Game:     1,
		Evader:   "sub",
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
		Seed:     5,
	}
	const rounds = 4
	ref, refSum, err := core.RunRoundsN(set, cfg, rounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, rounds, 16} {
		got, gotSum, err := core.RunRoundsN(set, cfg, rounds, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d rounds, want %d", workers, len(got), len(ref))
		}
		for r := range ref {
			if got[r].Accuracy != ref[r].Accuracy || got[r].F1 != ref[r].F1 {
				t.Fatalf("workers=%d round %d: got %.6f/%.6f want %.6f/%.6f",
					workers, r, got[r].Accuracy, got[r].F1, ref[r].Accuracy, ref[r].F1)
			}
		}
		if gotSum != refSum {
			t.Fatalf("workers=%d: summary %+v != %+v", workers, gotSum, refSum)
		}
	}
}

// TestRunRoundsThawCloneInvariance is the round-level half of the thaw
// equivalence contract: with a fixed seed, RunRoundsN must produce
// bit-identical per-round results and summaries whether the transform
// pipeline draws its private module copies from ir.Thaw (the default) or
// from the deep-clone fallback (SetThaw(false)) — at 1, 4 and 8 workers.
func TestRunRoundsThawCloneInvariance(t *testing.T) {
	defer progcache.SetThaw(true)
	set := smallSet(t, 4, 8, 36)
	cfg := core.GameConfig{
		Game:     1,
		Evader:   "ollvm",
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
		Seed:     9,
	}
	const rounds = 3
	type run struct {
		res []core.GameResult
		sum stats.Summary
	}
	runAt := func(workers int, thaw bool) run {
		t.Helper()
		progcache.SetThaw(thaw)
		res, sum, err := core.RunRoundsN(set, cfg, rounds, workers)
		if err != nil {
			t.Fatal(err)
		}
		// Wall-clock cells are run-dependent by nature; everything else must
		// be bit-identical.
		for i := range res {
			res[i].FeaturizeTime = 0
			res[i].TrainTime = 0
		}
		return run{res, sum}
	}
	ref := runAt(1, true)
	for _, workers := range []int{1, 4, 8} {
		for _, thaw := range []bool{true, false} {
			got := runAt(workers, thaw)
			if !reflect.DeepEqual(got.res, ref.res) || got.sum != ref.sum {
				t.Fatalf("workers=%d thaw=%v diverged from the thaw-backed serial run:\n  got:  %+v %+v\n  want: %+v %+v",
					workers, thaw, got.res, got.sum, ref.res, ref.sum)
			}
		}
	}
}

// TestTrainParallelInvariance checks the end-to-end guarantee of the
// data-parallel training + parallel evaluation path: a full game round —
// sharded model fit, worker-pool test-set prediction — must be
// byte-identical whether ml uses 1, 4 or 8 training workers.
func TestTrainParallelInvariance(t *testing.T) {
	defer ml.SetTrainWorkers(0)
	set := smallSet(t, 4, 8, 35)
	cfgs := []core.GameConfig{
		{Game: 0, Pipeline: core.Pipeline{Embedding: "histogram", Model: "mlp"}, Seed: 11},
		{Game: 1, Evader: "sub", Pipeline: core.Pipeline{Embedding: "cfg", Model: "dgcnn"}, Seed: 11},
	}
	for _, cfg := range cfgs {
		type outcome struct{ acc, f1 float64 }
		var ref outcome
		for i, workers := range []int{1, 4, 8} {
			ml.SetTrainWorkers(workers)
			res, err := core.RunGame(set, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := outcome{res.Accuracy, res.F1}
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Fatalf("%s/%s: workers=%d diverges: %v != %v (serial)",
					cfg.Pipeline.Embedding, cfg.Pipeline.Model, workers, got, ref)
			}
		}
	}
}

func TestTrainFracValidation(t *testing.T) {
	set := smallSet(t, 4, 6, 33)
	base := core.GameConfig{Game: 0, Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"}, Seed: 1}
	for _, frac := range []float64{-0.5, 1.0, 1.5} {
		cfg := base
		cfg.TrainFrac = frac
		if _, err := core.RunGame(set, cfg); err == nil {
			t.Fatalf("TrainFrac=%v: invalid split accepted instead of rejected", frac)
		}
	}
	// The zero value still means "use the paper's 0.75 default".
	if _, err := core.RunGame(set, base); err != nil {
		t.Fatalf("zero TrainFrac should default, got %v", err)
	}
}

func TestEvaderValidatedUpFront(t *testing.T) {
	set := smallSet(t, 4, 6, 34)
	for _, game := range []int{1, 2, 3} {
		cfg := core.GameConfig{
			Game:     game,
			Evader:   "olvm", // typo for ollvm
			Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
			Seed:     1,
		}
		_, err := core.RunGame(set, cfg)
		if err == nil {
			t.Fatalf("game %d accepted unknown evader", game)
		}
		if !strings.Contains(err.Error(), "unknown evader") {
			t.Fatalf("game %d: want an up-front evader error, got the late form: %v", game, err)
		}
		if strings.Contains(err.Error(), "sample") {
			t.Fatalf("game %d: evader error still surfaces from a worker: %v", game, err)
		}
	}
	// Game 0 ignores the evader entirely — even a bogus one.
	cfg := core.GameConfig{Game: 0, Evader: "olvm",
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"}, Seed: 1}
	if _, err := core.RunGame(set, cfg); err != nil {
		t.Fatalf("game 0 should ignore the evader, got %v", err)
	}
	// Every registered transformation must pass validation.
	for _, name := range core.TransformNames() {
		if err := core.ValidateEvader(name); err != nil {
			t.Fatalf("registered evader %q rejected: %v", name, err)
		}
	}
}
