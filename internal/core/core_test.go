package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/passes"
)

// smallSet builds a reduced POJ-like dataset shared across tests.
func smallSet(t *testing.T, classes, perClass int, seed int64) *dataset.Set {
	t.Helper()
	set, err := dataset.Generate(classes, perClass, seed)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func runGame(t *testing.T, set *dataset.Set, game int, evader, embedding, model string, norm passes.Level) *core.GameResult {
	t.Helper()
	res, err := core.RunGame(set, core.GameConfig{
		Game:   game,
		Evader: evader,
		Pipeline: core.Pipeline{
			Embedding:  embedding,
			Model:      model,
			Normalizer: norm,
		},
		TrainFrac: 0.75,
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("game %d (%s/%s/%s): %v", game, evader, embedding, model, err)
	}
	return res
}

func TestGame0HistogramRF(t *testing.T) {
	set := smallSet(t, 8, 16, 1)
	res := runGame(t, set, 0, "", "histogram", "rf", passes.O0)
	if res.Accuracy < 0.7 {
		t.Fatalf("Game0 accuracy %.2f — histogram+rf should classify 8 easy classes well", res.Accuracy)
	}
	if res.NumTrain != 8*12 || res.NumTest != 8*4 {
		t.Fatalf("split %d/%d", res.NumTrain, res.NumTest)
	}
	// On balanced sets accuracy and F1 track each other (Figure 12).
	if diff := res.Accuracy - res.F1; diff > 0.15 || diff < -0.15 {
		t.Fatalf("accuracy %.2f and F1 %.2f diverge too much for a balanced set", res.Accuracy, res.F1)
	}
}

func TestGame1EvasionHurtsAndGame2Recovers(t *testing.T) {
	set := smallSet(t, 8, 16, 2)
	g0 := runGame(t, set, 0, "", "histogram", "rf", passes.O0)
	g1 := runGame(t, set, 1, "ollvm", "histogram", "rf", passes.O0)
	g2 := runGame(t, set, 2, "ollvm", "histogram", "rf", passes.O0)
	// RQ3: the full O-LLVM pipeline must hurt an unaware classifier...
	if g1.Accuracy >= g0.Accuracy-0.1 {
		t.Fatalf("Game1/ollvm did not reduce accuracy: G0=%.2f G1=%.2f", g0.Accuracy, g1.Accuracy)
	}
	// ...and knowledge of the obfuscator must restore most of it.
	if g2.Accuracy <= g1.Accuracy {
		t.Fatalf("Game2 did not recover: G1=%.2f G2=%.2f", g1.Accuracy, g2.Accuracy)
	}
}

func TestGame1FlaBarelyMovesHistogram(t *testing.T) {
	// RQ3's observation: "flattening barely changes the histogram of
	// instructions" — fla alone should hurt much less than ollvm.
	set := smallSet(t, 8, 16, 3)
	g0 := runGame(t, set, 0, "", "histogram", "rf", passes.O0)
	gFla := runGame(t, set, 1, "fla", "histogram", "rf", passes.O0)
	gOllvm := runGame(t, set, 1, "ollvm", "histogram", "rf", passes.O0)
	if gFla.Accuracy <= gOllvm.Accuracy {
		t.Fatalf("fla (%.2f) should evade less than ollvm (%.2f) against histograms",
			gFla.Accuracy, gOllvm.Accuracy)
	}
	_ = g0
}

func TestGame3NormalizationRevertsSourceObfuscation(t *testing.T) {
	// RQ4: -O3 normalization neutralizes Zhang-style source transforms.
	set := smallSet(t, 6, 14, 4)
	g1 := runGame(t, set, 1, "rs", "histogram", "rf", passes.O0)
	g3 := runGame(t, set, 3, "rs", "histogram", "rf", passes.O3)
	if g3.Accuracy < g1.Accuracy-0.05 {
		t.Fatalf("normalization should not hurt against rs: G1=%.2f G3=%.2f", g1.Accuracy, g3.Accuracy)
	}
}

func TestGameValidation(t *testing.T) {
	set := smallSet(t, 4, 6, 5)
	if _, err := core.RunGame(set, core.GameConfig{Game: 9,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"}}); err == nil {
		t.Fatal("accepted invalid game number")
	}
	if _, err := core.RunGame(set, core.GameConfig{Game: 0,
		Pipeline: core.Pipeline{Embedding: "cfg", Model: "rf"}}); err == nil {
		t.Fatal("accepted graph embedding with a vector model")
	}
	if _, err := core.RunGame(set, core.GameConfig{Game: 0,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "dgcnn"}}); err == nil {
		t.Fatal("accepted vector embedding with dgcnn")
	}
	if _, err := core.RunGame(set, core.GameConfig{Game: 0,
		Pipeline: core.Pipeline{Embedding: "nope", Model: "rf"}}); err == nil {
		t.Fatal("accepted unknown embedding")
	}
}

func TestGraphGameWithDGCNN(t *testing.T) {
	set := smallSet(t, 4, 12, 6)
	res := runGame(t, set, 0, "", "cfg_compact", "dgcnn", passes.O0)
	// Small data, small model: just require clearly-better-than-random.
	if res.Accuracy < 0.4 {
		t.Fatalf("dgcnn/cfg_compact accuracy %.2f vs random 0.25", res.Accuracy)
	}
}

func TestRunRoundsSummary(t *testing.T) {
	set := smallSet(t, 5, 10, 7)
	results, sum, err := core.RunRounds(set, core.GameConfig{
		Game:     0,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "knn"},
		Seed:     9,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || sum.N != 3 {
		t.Fatalf("rounds not executed: %d results", len(results))
	}
	if sum.Mean < 0 || sum.Mean > 1 {
		t.Fatalf("bad summary %v", sum)
	}
}

func TestTransformRegistry(t *testing.T) {
	src := "int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }"
	for _, tr := range []string{"none", "O1", "O2", "O3", "mem2reg", "bcf", "fla", "sub", "ollvm", "rs", "mcmc", "drlsg", "ga"} {
		m, err := core.Transform(src, tr, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if m.Func("main") == nil {
			t.Fatalf("%s: lost main", tr)
		}
	}
	if _, err := core.Transform(src, "unknown", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted unknown transformation")
	}
}

func TestDistanceAnalysisOrdering(t *testing.T) {
	set := smallSet(t, 5, 4, 8)
	res, err := core.DistanceAnalysis(set.Samples, []string{"none", "fla", "ollvm", "O3"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range res {
		byName[r.Transform] = r.Summary.Mean
	}
	if byName["none"] != 0 {
		t.Fatalf("identity transformation moved the histogram: %v", byName["none"])
	}
	// Figure 10: O-LLVM and -O3 are the strongest movers; fla is mild.
	if byName["ollvm"] <= byName["fla"] {
		t.Fatalf("ollvm (%.1f) should move further than fla (%.1f)", byName["ollvm"], byName["fla"])
	}
	if byName["O3"] <= 0 {
		t.Fatal("O3 should move the histogram")
	}
}

func TestSpeedupShapes(t *testing.T) {
	rep, err := core.Speedup(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(rep.Rows))
	}
	// Figure 13's shape: O3 speeds up on (geometric) average, O-LLVM slows
	// every program down.
	if rep.GeoO3Speedup <= 1.0 {
		t.Fatalf("geo O3 speedup %.2f, want > 1", rep.GeoO3Speedup)
	}
	if rep.GeoOllvmSlowdown <= 1.5 {
		t.Fatalf("geo ollvm slowdown %.2f, want substantial", rep.GeoOllvmSlowdown)
	}
	for _, row := range rep.Rows {
		if row.OllvmSlowdown <= 1.0 {
			t.Errorf("%s: O-LLVM did not slow down (%.2fx)", row.Name, row.OllvmSlowdown)
		}
	}
}

func TestDiscoverSpuriousDataset3(t *testing.T) {
	cfg := core.DiscoverConfig{PerTransformer: 20, Model: "rf", Seed: 5}
	cfg.Dataset = 1
	r1, err := core.Discover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dataset = 3
	r3, err := core.Discover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's RQ7 finding: with one problem per transformer the
	// classifier "discovers" the problem, not the obfuscator, so dataset3
	// scores far higher than dataset1.
	if r3.Accuracy <= r1.Accuracy {
		t.Fatalf("dataset3 (%.2f) should beat dataset1 (%.2f) spuriously", r3.Accuracy, r1.Accuracy)
	}
	// And dataset1 is still above random guessing.
	if r1.Accuracy <= r1.RandomHit {
		t.Fatalf("dataset1 accuracy %.2f at or below random %.2f", r1.Accuracy, r1.RandomHit)
	}
}

func TestMalwareStudyImprovesWithTraining(t *testing.T) {
	res, err := core.MalwareStudy(core.MalwareConfig{
		TrainPos: 10, Challenge: 5, Models: []string{"rf"}, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := res.Acc["rf"]
	if len(accs) != 7 {
		t.Fatalf("%d training sizes, want 7", len(accs))
	}
	first, last := accs[0], accs[len(accs)-1]
	if last < first {
		t.Fatalf("accuracy did not improve with training growth: %.2f -> %.2f", first, last)
	}
	if last < 0.85 {
		t.Fatalf("full training suite should nearly solve the task, got %.2f", last)
	}
	if res.TrainSizes[6] != 7*res.TrainSizes[0] {
		t.Fatalf("train sizes %v should grow 7x", res.TrainSizes)
	}
}

func TestAntivirusBelowSpecialisedRF(t *testing.T) {
	rows, err := core.AntivirusComparison(core.MalwareConfig{
		TrainPos: 10, Challenge: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	avg := 0.0
	for _, r := range rows {
		avg += r.AVDetect
	}
	avg /= float64(len(rows))
	// Figure 16's shape: the generic scanner does useful work on the raw
	// family but loses to the specialised classifier overall.
	if avg <= 0.5 {
		t.Fatalf("signature scanner no better than chance: %.2f", avg)
	}
	if rows[0].RFDetect < avg-0.05 {
		t.Fatalf("specialised rf (%.2f) should not lose to the scanner (%.2f)", rows[0].RFDetect, avg)
	}
}

func TestRunGameDeterministic(t *testing.T) {
	set := smallSet(t, 5, 10, 77)
	cfg := core.GameConfig{
		Game:     1,
		Evader:   "sub",
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "rf"},
		Seed:     123,
	}
	a, err := core.RunGame(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.RunGame(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.F1 != b.F1 {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	cfg.Seed = 124
	c, err := core.RunGame(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A different seed changes the split; results need not differ, but the
	// run must still succeed and stay in range.
	if c.Accuracy < 0 || c.Accuracy > 1 {
		t.Fatalf("accuracy out of range: %v", c.Accuracy)
	}
}
