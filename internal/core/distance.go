package core

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/progcache"
	"repro/internal/stats"
)

// DistanceResult is one row of the Figure-10 analysis: how far a
// transformation moves programs in 63-dimensional histogram space.
type DistanceResult struct {
	Transform string
	Summary   stats.Summary
}

// DistanceAnalysis measures, for each transformation, the Euclidean
// distance between the opcode histograms of original and transformed
// programs over the given sample set — the paper's explanation for which
// evaders deceive which classifiers (Figure 10).
func DistanceAnalysis(samples []dataset.Sample, transforms []string, seed int64) ([]DistanceResult, error) {
	rng := rand.New(rand.NewSource(seed))
	results := make([]DistanceResult, 0, len(transforms))
	for _, tr := range transforms {
		dists := make([]float64, 0, len(samples))
		for _, s := range samples {
			// The baseline histogram only reads opcodes; share the cached
			// flat view so the compile and flatten happen once across all
			// transforms and the scan streams the dense opcode column.
			orig, err := progcache.CompileFlat(s.Source, "orig")
			if err != nil {
				return nil, err
			}
			h0 := embed.HistogramFlat(orig)
			m, err := Transform(s.Source, tr, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return nil, err
			}
			dists = append(dists, embed.Distance(h0, embed.Histogram(m)))
		}
		results = append(results, DistanceResult{Transform: tr, Summary: stats.Summarize(dists)})
	}
	return results, nil
}
