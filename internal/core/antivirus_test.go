package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/minic"
)

func malwareBenignSources(t *testing.T, n int, seed int64) (pos, neg []string) {
	t.Helper()
	set, err := dataset.MalwareSet(n, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range set.Samples {
		if s.Class == 1 {
			pos = append(pos, s.Source)
		} else {
			neg = append(neg, s.Source)
		}
	}
	return pos, neg
}

func TestSignatureScannerSeparatesTraining(t *testing.T) {
	pos, neg := malwareBenignSources(t, 10, 31)
	sc, err := core.TrainSignatureScanner(pos[:8], neg[:8], 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSignatures() == 0 {
		t.Fatal("no signatures harvested")
	}
	// Held-out family members must be flagged; held-out benign must not.
	for _, src := range pos[8:] {
		m, err := minic.CompileSource(src, "m")
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Scan(m) {
			t.Fatal("held-out family member not detected")
		}
	}
	for _, src := range neg[8:] {
		m, err := minic.CompileSource(src, "m")
		if err != nil {
			t.Fatal(err)
		}
		if sc.Scan(m) {
			t.Fatal("benign program flagged")
		}
	}
}

func TestSignatureScannerRejectsUselessTraining(t *testing.T) {
	// Identical corpora on both sides leave no discriminating n-grams.
	pos, _ := malwareBenignSources(t, 4, 17)
	if _, err := core.TrainSignatureScanner(pos, pos, 4, 0.5); err == nil {
		t.Fatal("expected error when malware and benign corpora coincide")
	}
}

func TestAVEnsembleRates(t *testing.T) {
	pos, neg := malwareBenignSources(t, 10, 5)
	ens, err := core.TrainAVEnsemble(pos[:8], neg[:8])
	if err != nil {
		t.Fatal(err)
	}
	raw, err := minic.CompileSource(pos[9], "m")
	if err != nil {
		t.Fatal(err)
	}
	if rate := ens.DetectionRate(raw); rate < 0.9 {
		t.Fatalf("raw family member detection rate %.2f", rate)
	}
	benign, err := minic.CompileSource(neg[9], "m")
	if err != nil {
		t.Fatal(err)
	}
	if rate := ens.DetectionRate(benign); rate > 0.1 {
		t.Fatalf("benign false-positive rate %.2f", rate)
	}
	// Optimization must reduce (not eliminate) detection — the Figure 16
	// asymmetry.
	opt, err := core.Transform(pos[9], "O3", rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	optRate := ens.DetectionRate(opt)
	if optRate >= ens.DetectionRate(raw) {
		t.Fatalf("optimization did not degrade the scanner: %.2f vs %.2f",
			optRate, ens.DetectionRate(raw))
	}
	if optRate == 0 {
		t.Fatal("optimization fully blinded the ensemble — too brittle for Figure 16's shape")
	}
}
