// Package core implements the paper's primary contribution: the system of
// four adversarial games matching program classifiers against evaders, plus
// the experiment harnesses that regenerate every figure of the evaluation
// (embedding comparisons, model comparisons, evasion measurement,
// normalization, class-count sweeps, performance, obfuscator detection and
// the malware case study).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progcache"
	"repro/internal/srcobf"
)

// EvaderNames lists the nine evaders of Figure 4, in the paper's order:
// O-LLVM passes, the combined ollvm, clang -O3, Zhang et al.'s source
// strategies, and the passive evader ("none").
func EvaderNames() []string {
	return []string{"bcf", "fla", "sub", "ollvm", "O3", "rs", "mcmc", "drlsg", "none"}
}

// TransformNames lists every transformation Transform accepts: the nine
// evaders plus the remaining optimization levels and the genetic strategy.
func TransformNames() []string {
	return append(EvaderNames(), "O0", "O1", "O2", "mem2reg", "ga")
}

// ValidateEvader checks name against the transformation registry up front,
// so a typo fails with a clear error instead of surfacing as a per-sample
// failure from deep inside a featurize worker. The empty string is allowed
// (it means the passive evader).
func ValidateEvader(name string) error {
	if name == "" {
		return nil
	}
	valid := TransformNames()
	for _, v := range valid {
		if name == v {
			return nil
		}
	}
	sort.Strings(valid)
	return fmt.Errorf("core: unknown evader %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Transform compiles source code and applies the named evader
// transformation, returning the transformed module:
//
//	none                   identity (Game 0's passive evader)
//	O0/O1/O2/O3            compiler optimization pipelines
//	mem2reg                SSA promotion only
//	bcf/fla/sub/ollvm      O-LLVM-style IR obfuscations
//	rs/mcmc/drlsg/ga       Zhang-style source-level strategies
//
// The O0 compile of src is served from the process-wide progcache; every
// branch that mutates the module works on a private copy thawed from the
// cached flat view (progcache.CompileThaw — falling back to the deep clone
// when the thaw path is toggled off), so repeated transforms of the same
// source skip both the front end and the pointer-graph copy.
func Transform(src, name string, rng *rand.Rand) (*ir.Module, error) {
	return transformFrom(progcache.CompileThaw, src, name, rng)
}

// TransformUntrusted is Transform with the O0 compile drawn from
// progcache's bounded untrusted tier — the variant for client-supplied
// sources on the serving path, which must not pin entries in the
// process-wide cache.
func TransformUntrusted(src, name string, rng *rand.Rand) (*ir.Module, error) {
	return transformFrom(progcache.CompileThawUntrusted, src, name, rng)
}

func transformFrom(compile func(src, name string) (*ir.Module, error), src, name string, rng *rand.Rand) (*ir.Module, error) {
	switch name {
	case "none", "", "O0":
		return compile(src, "prog")
	case "O1", "O2", "O3":
		m, err := compile(src, "prog")
		if err != nil {
			return nil, err
		}
		lvl, _ := passes.ParseLevel(name)
		if err := passes.Optimize(m, lvl); err != nil {
			return nil, err
		}
		return m, nil
	case "mem2reg":
		m, err := compile(src, "prog")
		if err != nil {
			return nil, err
		}
		if _, err := passes.RunPass(m, "mem2reg"); err != nil {
			return nil, err
		}
		return m, nil
	case "bcf", "fla", "sub", "ollvm":
		m, err := compile(src, "prog")
		if err != nil {
			return nil, err
		}
		if err := obfus.Apply(m, name, rng); err != nil {
			return nil, err
		}
		return m, nil
	case "rs", "mcmc", "drlsg", "ga":
		out, err := srcobf.TransformSource(src, name, rng)
		if err != nil {
			return nil, err
		}
		// The strategy output is seed-dependent and essentially unique, so
		// caching it would only grow the cache; compile it directly.
		return minic.CompileSource(out, "prog")
	}
	return nil, fmt.Errorf("core: unknown transformation %q", name)
}

// Normalize applies the classifier-side code normalizer of Game 3 (the
// paper evaluates clang -O3 and -O0).
func Normalize(m *ir.Module, level passes.Level) error {
	return passes.Optimize(m, level)
}
