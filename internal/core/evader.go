// Package core implements the paper's primary contribution: the system of
// four adversarial games matching program classifiers against evaders, plus
// the experiment harnesses that regenerate every figure of the evaluation
// (embedding comparisons, model comparisons, evasion measurement,
// normalization, class-count sweeps, performance, obfuscator detection and
// the malware case study).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/srcobf"
)

// EvaderNames lists the nine evaders of Figure 4, in the paper's order:
// O-LLVM passes, the combined ollvm, clang -O3, Zhang et al.'s source
// strategies, and the passive evader ("none").
func EvaderNames() []string {
	return []string{"bcf", "fla", "sub", "ollvm", "O3", "rs", "mcmc", "drlsg", "none"}
}

// Transform compiles source code and applies the named evader
// transformation, returning the transformed module:
//
//	none                   identity (Game 0's passive evader)
//	O0/O1/O2/O3            compiler optimization pipelines
//	mem2reg                SSA promotion only
//	bcf/fla/sub/ollvm      O-LLVM-style IR obfuscations
//	rs/mcmc/drlsg/ga       Zhang-style source-level strategies
func Transform(src, name string, rng *rand.Rand) (*ir.Module, error) {
	switch name {
	case "none", "", "O0":
		return minic.CompileSource(src, "prog")
	case "O1", "O2", "O3":
		m, err := minic.CompileSource(src, "prog")
		if err != nil {
			return nil, err
		}
		lvl, _ := passes.ParseLevel(name)
		if err := passes.Optimize(m, lvl); err != nil {
			return nil, err
		}
		return m, nil
	case "mem2reg":
		m, err := minic.CompileSource(src, "prog")
		if err != nil {
			return nil, err
		}
		if _, err := passes.RunPass(m, "mem2reg"); err != nil {
			return nil, err
		}
		return m, nil
	case "bcf", "fla", "sub", "ollvm":
		m, err := minic.CompileSource(src, "prog")
		if err != nil {
			return nil, err
		}
		if err := obfus.Apply(m, name, rng); err != nil {
			return nil, err
		}
		return m, nil
	case "rs", "mcmc", "drlsg", "ga":
		out, err := srcobf.TransformSource(src, name, rng)
		if err != nil {
			return nil, err
		}
		return minic.CompileSource(out, "prog")
	}
	return nil, fmt.Errorf("core: unknown transformation %q", name)
}

// Normalize applies the classifier-side code normalizer of Game 3 (the
// paper evaluates clang -O3 and -O0).
func Normalize(m *ir.Module, level passes.Level) error {
	return passes.Optimize(m, level)
}
