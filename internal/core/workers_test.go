package core

import (
	"runtime"
	"testing"

	"repro/internal/stats"
)

func TestClampWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name       string
		workers, n int
		want       int
	}{
		{"no work", 8, 0, 0},
		{"negative work", 8, -1, 0},
		{"no work no workers", 0, 0, 0},
		{"default workers clamp to n", 0, 2, min(maxprocs, 2)},
		{"negative workers clamp to n", -3, 2, min(maxprocs, 2)},
		{"more workers than work", 10, 3, 3},
		{"exact fit", 4, 4, 4},
		{"fewer workers than work", 2, 9, 2},
		{"single worker", 1, 100, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClampWorkers(tc.workers, tc.n); got != tc.want {
				t.Fatalf("ClampWorkers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
			}
		})
	}
	// The GOMAXPROCS default must still be clamped by n on big machines and
	// stay >= 1 on any machine.
	if got := ClampWorkers(0, 1); got != 1 {
		t.Fatalf("ClampWorkers(0, 1) = %d, want 1", got)
	}
}

// predictAll over an empty batch must not spawn workers or call the model.
func TestPredictAllEmpty(t *testing.T) {
	predictAll(0, func(i int) {
		t.Fatalf("predict called for empty batch (i=%d)", i)
	})
}

// RunRoundsN must reject rounds < 1 up front instead of indexing into an
// empty result slice (the old `arena game0 -rounds 0` panic).
func TestRunRoundsNRejectsZeroRounds(t *testing.T) {
	for _, rounds := range []int{0, -1} {
		_, sum, err := RunRoundsN(nil, GameConfig{}, rounds, 4)
		if err == nil {
			t.Fatalf("RunRoundsN(rounds=%d) did not error", rounds)
		}
		if sum != (stats.Summary{}) {
			t.Fatalf("RunRoundsN(rounds=%d) returned a non-zero summary on error", rounds)
		}
	}
}
