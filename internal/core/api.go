package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ml"
	"repro/internal/passes"
	"repro/internal/progcache"
)

// This file is the serving surface of the game engine: the entry points
// internal/serve uses to embed, transform and train outside of a game
// round. They reuse the same progcache / embed / ml stack as RunGame, so a
// served verdict is exactly what the batch harness would have computed.

// vectorEmbedding resolves a vector-kind embedding, rejecting graph ones
// with an actionable error (the serve API only ships flat feature vectors).
func vectorEmbedding(name string) (*embed.Embedding, error) {
	emb, err := embed.Get(name)
	if err != nil {
		return nil, err
	}
	if emb.Kind != embed.VectorKind {
		return nil, fmt.Errorf("core: embedding %q is graph-shaped; the serve API takes vector embeddings (%s)",
			name, strings.Join(embed.VectorNames(), ", "))
	}
	return emb, nil
}

// EmbedSource compiles src through the shared compile-once cache and
// returns its vector embedding. Read-only on the cached module: concurrent
// callers share one compiled master.
func EmbedSource(src, embedding string) (embed.Vector, error) {
	return embedSource(progcache.CompileFlat, src, embedding)
}

// EmbedSourceUntrusted is EmbedSource for sources arriving over the wire:
// the compile goes through progcache's bounded untrusted tier, so arbitrary
// client traffic cannot grow the pinned process-wide cache without limit.
func EmbedSourceUntrusted(src, embedding string) (embed.Vector, error) {
	return embedSource(progcache.CompileFlatUntrusted, src, embedding)
}

func embedSource(compileFlat func(src, name string) (*ir.Flat, error), src, embedding string) (embed.Vector, error) {
	emb, err := vectorEmbedding(embedding)
	if err != nil {
		return nil, err
	}
	fl, err := compileFlat(src, "prog")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	v := emb.VecFlat(fl)
	phaseEmbed.Observe(time.Since(start))
	return v, nil
}

// TransformEmbed runs the named evader pipeline over src (seeded, so the
// stochastic evaders replay) and returns the transformed module's printed
// IR together with its vector embedding — the payload a classifier-side
// verdict on the evaded program needs.
func TransformEmbed(src, evader, embedding string, seed int64) (string, embed.Vector, error) {
	m, v, err := transformEmbedModule(Transform, src, evader, embedding, seed)
	if err != nil {
		return "", nil, err
	}
	return m.String(), v, nil
}

// TransformEmbedUntrusted is TransformEmbed over the bounded untrusted
// compile tier — the serve-path variant for client-supplied sources.
func TransformEmbedUntrusted(src, evader, embedding string, seed int64) (string, embed.Vector, error) {
	m, v, err := transformEmbedModule(TransformUntrusted, src, evader, embedding, seed)
	if err != nil {
		return "", nil, err
	}
	return m.String(), v, nil
}

func transformEmbedModule(transform func(src, name string, rng *rand.Rand) (*ir.Module, error), src, evader, embedding string, seed int64) (*ir.Module, embed.Vector, error) {
	emb, err := vectorEmbedding(embedding)
	if err != nil {
		return nil, nil, err
	}
	if err := ValidateEvader(evader); err != nil {
		return nil, nil, err
	}
	m, err := transform(src, evader, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	v := emb.VecFlat(ir.Flatten(m))
	phaseEmbed.Observe(time.Since(start))
	return m, v, nil
}

// ExecObs is the observable outcome of executing a transformed program:
// return value, stdout and the dynamic instruction count, or the trap
// message when execution failed. Steps is engine-independent (the engines
// are conformance-tested to agree bit-for-bit), so it is directly
// comparable with the Figure-13 cost numbers.
type ExecObs struct {
	Ret    int64  `json:"ret"`
	Output string `json:"output"`
	Steps  int64  `json:"steps"`
	Trap   string `json:"trap,omitempty"`
}

// ExecMaxSteps bounds served executions; a transformed program that spins
// past it reports a budget trap instead of stalling the server.
const ExecMaxSteps = 16 << 20

// TransformEmbedRun is TransformEmbed plus execution of the transformed
// module on the named engine ("" = tree interpreter, "vm" = compiled
// bytecode). Traps are reported in the observation, not as an error: a
// trapping evaded program is still a servable result.
func TransformEmbedRun(src, evader, embedding string, seed int64, engine string) (string, embed.Vector, *ExecObs, error) {
	return transformEmbedRun(Transform, src, evader, embedding, seed, engine)
}

// TransformEmbedRunUntrusted is TransformEmbedRun over the bounded
// untrusted compile tier — the serve-path variant for client-supplied
// sources.
func TransformEmbedRunUntrusted(src, evader, embedding string, seed int64, engine string) (string, embed.Vector, *ExecObs, error) {
	return transformEmbedRun(TransformUntrusted, src, evader, embedding, seed, engine)
}

func transformEmbedRun(transform func(src, name string, rng *rand.Rand) (*ir.Module, error), src, evader, embedding string, seed int64, engine string) (string, embed.Vector, *ExecObs, error) {
	eng, err := interp.EngineByName(engine)
	if err != nil {
		return "", nil, nil, err
	}
	m, v, err := transformEmbedModule(transform, src, evader, embedding, seed)
	if err != nil {
		return "", nil, nil, err
	}
	start := time.Now()
	res, rerr := eng.Run(m, interp.Options{MaxSteps: ExecMaxSteps})
	phaseExec.Observe(time.Since(start))
	ob := &ExecObs{}
	if rerr != nil {
		ob.Trap = rerr.Error()
	} else {
		ob.Ret, ob.Output, ob.Steps = res.Ret, res.Output, res.Steps
	}
	return m.String(), v, ob, nil
}

// TrainVectorModels featurizes every sample of set with a vector embedding
// and fits the named models on the full set — the snapshot-producing path
// behind `arena serve` (a server classifies unseen programs, so there is
// no held-out split here). Deterministic for a fixed seed: each model
// draws its init from its own sub-seed in the given name order.
func TrainVectorModels(set *dataset.Set, embedding string, names []string, seed int64) (map[string]ml.Model, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no models to train")
	}
	emb, err := vectorEmbedding(embedding)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	feats, err := featurize(set.Samples, "none", false, passes.O0, emb, rng)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(feats))
	y := make([]int, len(feats))
	for i, f := range feats {
		X[i] = f.vec
		y[i] = f.label
	}
	out := make(map[string]ml.Model, len(names))
	for _, name := range names {
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("core: model %q requested twice", name)
		}
		model, err := ml.New(name, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		fitDone := phaseFit.Start()
		if err := model.Fit(X, y, set.NumClasses); err != nil {
			return nil, fmt.Errorf("core: fit %s: %w", name, err)
		}
		fitDone()
		out[name] = model
	}
	return out, nil
}
