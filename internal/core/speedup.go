package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progcache"
	"repro/internal/stats"

	// Register the compiled bytecode engine: everything that executes
	// programs (difftest, serve, cmd/arena) imports core, so the "vm"
	// -engine value is always resolvable.
	_ "repro/internal/vm"
)

// SpeedupRow is one kernel of the Figure-13 performance experiment:
// dynamic instruction counts relative to clang -O0.
type SpeedupRow struct {
	Name string
	// Steps at each configuration.
	O0Steps, O3Steps, OllvmSteps int64
	// O3Speedup is O0/O3 (>1 is faster); OllvmSlowdown is ollvm/O0
	// (>1 is slower).
	O3Speedup     float64
	OllvmSlowdown float64
}

// SpeedupReport aggregates the sixteen kernels.
type SpeedupReport struct {
	Rows []SpeedupRow
	// Geometric means, the aggregate the paper reports (8.33x slowdown for
	// O-LLVM, 2.32x speedup for -O3 on real hardware).
	GeoO3Speedup     float64
	GeoOllvmSlowdown float64
}

// Speedup runs the RQ6 experiment: each Benchmark-Game kernel is executed
// at O0, at O3 and under the combined O-LLVM obfuscation, with dynamic
// instruction count standing in for wall-clock time.
func Speedup(seed int64) (*SpeedupReport, error) {
	return SpeedupEngine(seed, "")
}

// SpeedupEngine is Speedup on a selectable execution engine ("" or "tree"
// = the tree interpreter, "vm" = compiled bytecode). Step counts are
// engine-independent by the engines' conformance contract, so the report
// is identical either way — the engine only changes how long it takes to
// produce.
func SpeedupEngine(seed int64, engine string) (*SpeedupReport, error) {
	eng, err := interp.EngineByName(engine)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &SpeedupReport{}
	var o3s, slows []float64
	for _, p := range dataset.BenchGame() {
		row := SpeedupRow{Name: p.Name}
		steps := func(transform string) (int64, error) {
			// Each configuration mutates the module (passes, obfuscation),
			// so thaw a private copy off the one cached O0 compile.
			m, err := progcache.CompileThaw(p.Source, p.Name)
			if err != nil {
				return 0, err
			}
			switch transform {
			case "O3":
				if err := passes.Optimize(m, passes.O3); err != nil {
					return 0, err
				}
			case "ollvm":
				if err := obfus.Apply(m, "ollvm", rand.New(rand.NewSource(rng.Int63()))); err != nil {
					return 0, err
				}
			}
			res, err := eng.Run(m, interp.Options{MaxSteps: 2_000_000_000})
			if err != nil {
				return 0, fmt.Errorf("%s/%s: %w", p.Name, transform, err)
			}
			return res.Steps, nil
		}
		var err error
		if row.O0Steps, err = steps("O0"); err != nil {
			return nil, err
		}
		if row.O3Steps, err = steps("O3"); err != nil {
			return nil, err
		}
		if row.OllvmSteps, err = steps("ollvm"); err != nil {
			return nil, err
		}
		row.O3Speedup = float64(row.O0Steps) / float64(row.O3Steps)
		row.OllvmSlowdown = float64(row.OllvmSteps) / float64(row.O0Steps)
		o3s = append(o3s, row.O3Speedup)
		slows = append(slows, row.OllvmSlowdown)
		rep.Rows = append(rep.Rows, row)
	}
	rep.GeoO3Speedup = stats.GeoMean(o3s)
	rep.GeoOllvmSlowdown = stats.GeoMean(slows)
	return rep, nil
}
