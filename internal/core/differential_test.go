package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/minic"
)

// TestDifferentialTransformations is the repository's broadest property
// test: programs drawn from the real dataset generators must behave
// identically under every transformation the games can apply. Each sampled
// program is executed at -O0 and compared against every evader and
// optimizer configuration (including stacked obfuscation + normalization),
// catching miscompiles anywhere in the front end, the passes, the
// obfuscators or the interpreter.
func TestDifferentialTransformations(t *testing.T) {
	nPrograms := 48
	if testing.Short() {
		nPrograms = 6
	}
	rng := rand.New(rand.NewSource(20240207))
	probs := dataset.Problems()
	transforms := []string{"O1", "O2", "O3", "mem2reg", "sub", "bcf", "fla", "ollvm", "rs"}

	for trial := 0; trial < nPrograms; trial++ {
		p := probs[rng.Intn(len(probs))]
		srcs, err := dataset.GenerateFor(p, 1, rng.Int63())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		src := srcs[0]
		base, err := minic.CompileSource(src, p.Name)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		want, err := interp.Run(base, interp.Options{MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("%s: baseline run: %v\n%s", p.Name, err, src)
		}
		for _, tr := range transforms {
			m, err := core.Transform(src, tr, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, tr, err)
			}
			got, err := interp.Run(m, interp.Options{MaxSteps: 400_000_000})
			if err != nil {
				t.Fatalf("%s/%s: run: %v\n%s", p.Name, tr, err, src)
			}
			if got.Ret != want.Ret || got.Output != want.Output {
				t.Fatalf("%s/%s MISCOMPILE: ret %d->%d out %q->%q\nsource:\n%s",
					p.Name, tr, want.Ret, got.Ret, want.Output, got.Output, src)
			}
		}
		// Stacked: obfuscate then normalize (the Game-3 path).
		for _, obf := range []string{"sub", "bcf", "fla", "ollvm"} {
			m, err := core.Transform(src, obf, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, obf, err)
			}
			if err := core.Normalize(m, 3); err != nil {
				t.Fatalf("%s/%s+O3: %v", p.Name, obf, err)
			}
			got, err := interp.Run(m, interp.Options{MaxSteps: 400_000_000})
			if err != nil {
				t.Fatalf("%s/%s+O3: run: %v", p.Name, obf, err)
			}
			if got.Ret != want.Ret || got.Output != want.Output {
				t.Fatalf("%s/%s+O3 MISCOMPILE: ret %d->%d\nsource:\n%s",
					p.Name, obf, want.Ret, got.Ret, src)
			}
		}
	}
}
