package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/ir"
	"repro/internal/progcache"
)

// SignatureScanner is the stand-in for the paper's VirusTotal comparison
// (Figure 16). Industrial anti-virus engines rely heavily on signatures:
// byte or instruction patterns harvested from known family members. This
// scanner extracts opcode n-grams that are common in the family's training
// samples but absent from benign training code, and flags a program when
// enough signatures match. It is engineered "for any binary" — nothing
// about it is specific to the family — which reproduces the asymmetry the
// paper observes: decent detection on untransformed samples, visible decay
// under transformation, always below the specialised rf classifier.
type SignatureScanner struct {
	n          int
	signatures map[string]bool
	threshold  int
}

// TrainSignatureScanner harvests length-n opcode n-grams present in at
// least minSupport of the malware samples and in none of the benign ones.
func TrainSignatureScanner(malware, benign []string, n int, minSupport float64) (*SignatureScanner, error) {
	if n < 2 {
		n = 4
	}
	counts := make(map[string]int)
	for _, src := range malware {
		// n-gram extraction only reads opcodes, so the cached flat view is
		// enough — the ensemble trains ten engines over the same corpora and
		// now compiles and flattens each source once instead of ten times,
		// streaming the dense opcode column instead of walking instructions.
		fl, err := progcache.CompileFlat(src, "sig")
		if err != nil {
			return nil, fmt.Errorf("core: signature training: %w", err)
		}
		for gram := range ngramsFlat(fl, n) {
			counts[gram]++
		}
	}
	benignGrams := make(map[string]bool)
	for _, src := range benign {
		fl, err := progcache.CompileFlat(src, "sig")
		if err != nil {
			return nil, fmt.Errorf("core: signature training: %w", err)
		}
		for gram := range ngramsFlat(fl, n) {
			benignGrams[gram] = true
		}
	}
	min := int(minSupport * float64(len(malware)))
	if min < 1 {
		min = 1
	}
	// The default threshold suits a single mid-strictness engine; the
	// ensemble overrides it per engine.
	sc := &SignatureScanner{n: n, signatures: make(map[string]bool), threshold: 6}
	for gram, c := range counts {
		if c >= min && !benignGrams[gram] {
			sc.signatures[gram] = true
		}
	}
	if len(sc.signatures) == 0 {
		return nil, fmt.Errorf("core: no discriminating signatures found")
	}
	return sc, nil
}

// NumSignatures reports the size of the signature database.
func (sc *SignatureScanner) NumSignatures() int { return len(sc.signatures) }

// Scan reports whether the module matches the family (>= threshold
// signature hits).
func (sc *SignatureScanner) Scan(m *ir.Module) bool {
	return sc.scanGrams(ngrams(m, sc.n))
}

// ScanFlat is Scan over a flat view.
func (sc *SignatureScanner) ScanFlat(fl *ir.Flat) bool {
	return sc.scanGrams(ngramsFlat(fl, sc.n))
}

func (sc *SignatureScanner) scanGrams(grams map[string]bool) bool {
	hits := 0
	for gram := range grams {
		if sc.signatures[gram] {
			hits++
			if hits >= sc.threshold {
				return true
			}
		}
	}
	return false
}

// ngrams extracts the set of opcode n-grams along basic blocks.
func ngrams(m *ir.Module, n int) map[string]bool {
	out := make(map[string]bool)
	buf := make([]byte, n)
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for i := 0; i+n <= len(b.Instrs); i++ {
				for k := 0; k < n; k++ {
					buf[k] = byte(b.Instrs[i+k].Op)
				}
				out[string(buf)] = true
			}
		}
	}
	return out
}

// ngramsFlat is ngrams over a flat view. Block instruction spans are
// contiguous in the dense opcode column, so each n-gram is a direct
// substring of fl.Ops — same windows, same keys, no per-instruction walk.
func ngramsFlat(fl *ir.Flat, n int) map[string]bool {
	out := make(map[string]bool)
	for bi := range fl.Blocks {
		ops := fl.Ops[fl.Blocks[bi].Ins0:fl.Blocks[bi].Ins1]
		for i := 0; i+n <= len(ops); i++ {
			out[string(ops[i:i+n])] = true
		}
	}
	return out
}

// AVEnsemble aggregates several signature engines of varying strictness,
// the way VirusTotal aggregates ~70 anti-virus products. Its detection rate
// for a program is the fraction of engines that flag it — the same
// quantity the paper's Figure 16 reports per transformation.
type AVEnsemble struct {
	engines []*SignatureScanner
}

// TrainAVEnsemble builds the engine grid: n-gram lengths 3..5 crossed with
// a spread of alert thresholds, all sharing the same training corpora.
func TrainAVEnsemble(malware, benign []string) (*AVEnsemble, error) {
	grid := []struct{ n, threshold int }{
		{3, 5}, {3, 8}, {3, 11},
		{4, 6}, {4, 8}, {4, 12},
		{5, 2}, {5, 3}, {5, 8}, {5, 16},
	}
	e := &AVEnsemble{}
	for _, g := range grid {
		sc, err := TrainSignatureScanner(malware, benign, g.n, 0.5)
		if err != nil {
			return nil, err
		}
		sc.threshold = g.threshold
		e.engines = append(e.engines, sc)
	}
	return e, nil
}

// DetectionRate returns the fraction of engines flagging m. The module is
// flattened once and all engines stream the same opcode column, instead of
// each engine re-walking the pointer IR.
func (e *AVEnsemble) DetectionRate(m *ir.Module) float64 {
	fl := ir.Flatten(m)
	flags := 0
	for _, sc := range e.engines {
		if sc.ScanFlat(fl) {
			flags++
		}
	}
	return float64(flags) / float64(len(e.engines))
}

// AntivirusRow is one column of Figure 16: detection rates per transformer.
type AntivirusRow struct {
	Transformer string
	// AVDetect is the ensemble's expected accuracy over the challenges: for
	// malware samples the fraction of engines that flag them, for benign
	// samples the fraction that stay silent (mirroring how the paper reads
	// VirusTotal percentages). RFDetect is the rf(504)-style classifier's
	// accuracy.
	AVDetect float64
	RFDetect float64
}

// AntivirusComparison reruns the Figure-16 comparison: the generic
// signature scanner versus the best specialised classifier, per
// transformation.
func AntivirusComparison(cfg MalwareConfig) ([]AntivirusRow, error) {
	if cfg.TrainPos <= 0 {
		cfg.TrainPos = 36
	}
	if cfg.Challenge <= 0 {
		cfg.Challenge = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	set, err := dataset.MalwareSet(cfg.TrainPos+cfg.Challenge, cfg.TrainPos+cfg.Challenge, rng.Int63())
	if err != nil {
		return nil, err
	}
	var pos, neg []dataset.Sample
	for _, s := range set.Samples {
		if s.Class == 1 {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	var posSrc, negSrc []string
	for _, s := range pos[:cfg.TrainPos] {
		posSrc = append(posSrc, s.Source)
	}
	for _, s := range neg[:cfg.TrainPos] {
		negSrc = append(negSrc, s.Source)
	}
	scanner, err := TrainAVEnsemble(posSrc, negSrc)
	if err != nil {
		return nil, err
	}

	// The specialised classifier: rf trained on the full 7-transformer
	// suite, as in Figure 15.
	mres, err := MalwareStudy(MalwareConfig{
		TrainPos: cfg.TrainPos, Challenge: cfg.Challenge,
		Models: []string{"rf"}, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rfFull := mres.Acc["rf"][len(mres.Acc["rf"])-1]

	challenges := append(append([]dataset.Sample(nil), pos[cfg.TrainPos:]...), neg[cfg.TrainPos:]...)
	var rows []AntivirusRow
	for _, tr := range MalwareTransformers() {
		score, total := 0.0, 0
		for _, s := range challenges {
			m, err := Transform(s.Source, tr, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return nil, err
			}
			rate := scanner.DetectionRate(m)
			if s.Class == 1 {
				score += rate
			} else {
				score += 1 - rate
			}
			total++
		}
		rows = append(rows, AntivirusRow{
			Transformer: tr,
			AVDetect:    score / float64(total),
			RFDetect:    rfFull,
		})
	}
	return rows, nil
}

// CountHits reports how many distinct signatures match m (diagnostics and
// threshold calibration).
func (sc *SignatureScanner) CountHits(m *ir.Module) int {
	hits := 0
	for gram := range ngrams(m, sc.n) {
		if sc.signatures[gram] {
			hits++
		}
	}
	return hits
}
