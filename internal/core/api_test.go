package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ir"
)

const apiTestSrc = `int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }`

func TestEmbedSource(t *testing.T) {
	v, err := EmbedSource(apiTestSrc, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != int(ir.NumOpcodes) {
		t.Fatalf("histogram has %d dims, want %d", len(v), ir.NumOpcodes)
	}
	total := 0.0
	for _, x := range v {
		total += x
	}
	if total == 0 {
		t.Fatal("histogram of a non-empty program is all zeros")
	}

	if _, err := EmbedSource(apiTestSrc, "nope"); err == nil {
		t.Fatal("unknown embedding accepted")
	}
	if _, err := EmbedSource(apiTestSrc, "cfg"); err == nil ||
		!strings.Contains(err.Error(), "graph-shaped") {
		t.Fatalf("graph embedding should be rejected with guidance, got %v", err)
	}
	if _, err := EmbedSource("int main( {", "histogram"); err == nil {
		t.Fatal("broken source compiled")
	}
}

func TestTransformEmbed(t *testing.T) {
	irText, v, err := TransformEmbed(apiTestSrc, "sub", "histogram", 7)
	if err != nil {
		t.Fatal(err)
	}
	if irText == "" {
		t.Fatal("empty transformed IR")
	}
	if len(v) != int(ir.NumOpcodes) {
		t.Fatalf("embedding has %d dims, want %d", len(v), ir.NumOpcodes)
	}
	// Same seed replays identically.
	ir2, v2, err := TransformEmbed(apiTestSrc, "sub", "histogram", 7)
	if err != nil {
		t.Fatal(err)
	}
	if irText != ir2 {
		t.Fatal("same-seed transform is not deterministic")
	}
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("same-seed embedding differs")
		}
	}

	if _, _, err := TransformEmbed(apiTestSrc, "warp-drive", "histogram", 1); err == nil {
		t.Fatal("unknown evader accepted")
	}
}

func TestTrainVectorModels(t *testing.T) {
	set, err := dataset.Generate(3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	models, err := TrainVectorModels(set, "histogram", []string{"rf", "lr"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("trained %d models, want 2", len(models))
	}
	// The models must at least beat random on their own training set.
	for name, m := range models {
		hits := 0
		for _, s := range set.Samples {
			v, err := EmbedSource(s.Source, "histogram")
			if err != nil {
				t.Fatal(err)
			}
			if m.Predict(v) == s.Class {
				hits++
			}
		}
		acc := float64(hits) / float64(len(set.Samples))
		if acc < 0.5 {
			t.Errorf("%s: train accuracy %.2f, want >= 0.5", name, acc)
		}
	}

	if _, err := TrainVectorModels(set, "histogram", nil, 1); err == nil {
		t.Fatal("empty model list accepted")
	}
	if _, err := TrainVectorModels(set, "histogram", []string{"rf", "rf"}, 1); err == nil {
		t.Fatal("duplicate model accepted")
	}
	if _, err := TrainVectorModels(set, "histogram", []string{"dgcnn"}, 1); err == nil {
		t.Fatal("dgcnn accepted as a vector model")
	}
}
