package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/stats"
)

// DiscoverTransformers are the ten code-transformer classes of the RQ7
// experiment (Figure 14), in the paper's order.
func DiscoverTransformers() []string {
	return []string{"O0", "mem2reg", "O3", "bcf", "fla", "sub", "drlsg", "mcmc", "rs", "ga"}
}

// DiscoverConfig configures the obfuscator-detection experiment.
type DiscoverConfig struct {
	// Dataset selects the construction 1..4 (see the paper's Section 4.7):
	//  1: the same solutions of ONE problem given to every transformer
	//  2: the same solutions of many problems given to every transformer
	//  3: each transformer gets solutions of its OWN problem (the spurious
	//     high-accuracy setup the paper warns about)
	//  4: each transformer gets different solutions of many problems
	Dataset int
	// PerTransformer is the number of programs per transformer class (the
	// paper uses 500, split 400/100).
	PerTransformer int
	// Model is the vector model used (the paper's histogram classifier).
	Model string
	Seed  int64
}

// DiscoverResult is the outcome of one obfuscator-detection run.
type DiscoverResult struct {
	Accuracy  float64
	F1        float64
	RandomHit float64 // expected accuracy of a random guesser (0.1)
}

// Discover runs the RQ7 experiment: can a classifier identify WHICH
// transformer produced a program? Programs are labelled by transformer, not
// by algorithm.
func Discover(cfg DiscoverConfig) (*DiscoverResult, error) {
	if cfg.PerTransformer < 5 {
		return nil, fmt.Errorf("core: need at least 5 programs per transformer")
	}
	if cfg.Model == "" {
		cfg.Model = "rf"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	transformers := DiscoverTransformers()

	// Build the base program pools according to the dataset construction.
	pools, err := discoverPools(cfg, rng, len(transformers))
	if err != nil {
		return nil, err
	}

	type labelled struct {
		vec   embed.Vector
		label int
	}
	var all []labelled
	for t, name := range transformers {
		for _, src := range pools[t] {
			m, err := Transform(src, name, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return nil, fmt.Errorf("core: discover %s: %w", name, err)
			}
			all = append(all, labelled{vec: embed.Histogram(m), label: t})
		}
	}
	// Stratified 80/20 split, like the paper's 400/100.
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	byClass := make(map[int][]labelled)
	for _, s := range all {
		byClass[s.label] = append(byClass[s.label], s)
	}
	var trX [][]float64
	var trY []int
	var teX [][]float64
	var teY []int
	for c := 0; c < len(transformers); c++ {
		group := byClass[c]
		cut := len(group) * 4 / 5
		for i, s := range group {
			if i < cut {
				trX = append(trX, s.vec)
				trY = append(trY, s.label)
			} else {
				teX = append(teX, s.vec)
				teY = append(teY, s.label)
			}
		}
	}
	model, err := ml.New(cfg.Model, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return nil, err
	}
	if err := model.Fit(trX, trY, len(transformers)); err != nil {
		return nil, err
	}
	pred := make([]int, len(teX))
	for i, x := range teX {
		pred[i] = model.Predict(x)
	}
	acc, err := stats.Accuracy(pred, teY)
	if err != nil {
		return nil, fmt.Errorf("core: scoring discover dataset %d: %w", cfg.Dataset, err)
	}
	return &DiscoverResult{
		Accuracy:  acc,
		F1:        stats.MacroF1(pred, teY, len(transformers)),
		RandomHit: 1.0 / float64(len(transformers)),
	}, nil
}

// discoverPools builds the per-transformer base program pools.
func discoverPools(cfg DiscoverConfig, rng *rand.Rand, nTransformers int) ([][]string, error) {
	probs := dataset.Problems()
	pools := make([][]string, nTransformers)
	solutionsOf := func(pIdx, n int) ([]string, error) {
		out := make([]string, 0, n)
		for k := 0; k < n; k++ {
			src, err := sampleProblem(probs[pIdx], rng)
			if err != nil {
				return nil, err
			}
			out = append(out, src)
		}
		return out, nil
	}

	switch cfg.Dataset {
	case 1:
		// One random problem; the SAME solutions for every transformer.
		p := rng.Intn(len(probs))
		base, err := solutionsOf(p, cfg.PerTransformer)
		if err != nil {
			return nil, err
		}
		for t := range pools {
			pools[t] = base
		}
	case 2:
		// Same solutions drawn across many problems for every transformer.
		var base []string
		for len(base) < cfg.PerTransformer {
			p := rng.Intn(len(probs))
			ss, err := solutionsOf(p, 1)
			if err != nil {
				return nil, err
			}
			base = append(base, ss...)
		}
		for t := range pools {
			pools[t] = base
		}
	case 3:
		// Each transformer gets its own problem: the spurious setup.
		perm := rng.Perm(len(probs))
		for t := range pools {
			ss, err := solutionsOf(perm[t], cfg.PerTransformer)
			if err != nil {
				return nil, err
			}
			pools[t] = ss
		}
	case 4:
		// Each transformer gets different solutions of many problems.
		for t := range pools {
			var ss []string
			for len(ss) < cfg.PerTransformer {
				p := rng.Intn(len(probs))
				one, err := solutionsOf(p, 1)
				if err != nil {
					return nil, err
				}
				ss = append(ss, one...)
			}
			pools[t] = ss
		}
	default:
		return nil, fmt.Errorf("core: discover dataset must be 1..4, got %d", cfg.Dataset)
	}
	return pools, nil
}

// sampleProblem draws one compile-checked solution of p.
func sampleProblem(p dataset.Problem, rng *rand.Rand) (string, error) {
	set, err := dataset.GenerateFor(p, 1, rng.Int63())
	if err != nil {
		return "", err
	}
	return set[0], nil
}
