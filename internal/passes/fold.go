package passes

import (
	"math"

	"repro/internal/ir"
)

// foldInstr attempts to evaluate an instruction whose operands are all
// constants, returning the folded constant or nil. Division by zero and
// other trapping cases return nil so the instruction stays put.
func foldInstr(in *ir.Instr) *ir.Const {
	switch {
	case in.Op.IsIntBinary():
		a, ok1 := constOf(in.Args[0])
		b, ok2 := constOf(in.Args[1])
		if !ok1 || !ok2 {
			return nil
		}
		return foldIntBinary(in.Op, in.Ty, a.I, b.I)
	case in.Op.IsFloatBinary():
		a, ok1 := constOf(in.Args[0])
		b, ok2 := constOf(in.Args[1])
		if !ok1 || !ok2 {
			return nil
		}
		return foldFloatBinary(in.Op, a.F, b.F)
	}
	switch in.Op {
	case ir.OpFNeg:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstFloat(-a.F)
		}
	case ir.OpICmp:
		a, ok1 := constOf(in.Args[0])
		b, ok2 := constOf(in.Args[1])
		if ok1 && ok2 {
			return ir.ConstBool(evalICmp(in.Pred, a.I, b.I))
		}
	case ir.OpFCmp:
		a, ok1 := constOf(in.Args[0])
		b, ok2 := constOf(in.Args[1])
		if ok1 && ok2 {
			return ir.ConstBool(evalFCmp(in.Pred, a.F, b.F))
		}
	case ir.OpSelect:
		if c, ok := constOf(in.Args[0]); ok {
			pick := in.Args[2]
			if c.I != 0 {
				pick = in.Args[1]
			}
			if cv, ok := constOf(pick); ok {
				return cv
			}
		}
	case ir.OpTrunc:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstInt(in.Ty, a.I)
		}
	case ir.OpZExt:
		if a, ok := constOf(in.Args[0]); ok {
			from := in.Args[0].Type()
			v := a.I
			if from.IsInt() && from.Bits < 64 {
				v &= int64(1)<<uint(from.Bits) - 1
			}
			return ir.ConstInt(in.Ty, v)
		}
	case ir.OpSExt:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstInt(in.Ty, a.I)
		}
	case ir.OpSIToFP:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstFloat(float64(a.I))
		}
	case ir.OpUIToFP:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstFloat(float64(uint64(a.I)))
		}
	case ir.OpFPToSI:
		if a, ok := constOf(in.Args[0]); ok {
			if math.IsNaN(a.F) || math.IsInf(a.F, 0) {
				return ir.ConstInt(in.Ty, 0)
			}
			return ir.ConstInt(in.Ty, int64(a.F))
		}
	case ir.OpFPTrunc, ir.OpFPExt:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstFloat(a.F)
		}
	case ir.OpFreeze:
		if a, ok := constOf(in.Args[0]); ok {
			return a
		}
	}
	return nil
}

func constOf(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

func foldIntBinary(op ir.Opcode, ty *ir.Type, a, b int64) *ir.Const {
	var r int64
	switch op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpSDiv:
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return nil
		}
		r = a / b
	case ir.OpUDiv:
		if b == 0 {
			return nil
		}
		r = int64(uint64(a) / uint64(b))
	case ir.OpSRem:
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return nil
		}
		r = a % b
	case ir.OpURem:
		if b == 0 {
			return nil
		}
		r = int64(uint64(a) % uint64(b))
	case ir.OpShl:
		r = a << (uint64(b) & 63)
	case ir.OpLShr:
		width := uint(64)
		if ty.IsInt() && ty.Bits < 64 {
			width = uint(ty.Bits)
		}
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<width - 1
		}
		r = int64((uint64(a) & mask) >> (uint64(b) & 63))
	case ir.OpAShr:
		r = a >> (uint64(b) & 63)
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	default:
		return nil
	}
	return ir.ConstInt(ty, r)
}

func foldFloatBinary(op ir.Opcode, a, b float64) *ir.Const {
	switch op {
	case ir.OpFAdd:
		return ir.ConstFloat(a + b)
	case ir.OpFSub:
		return ir.ConstFloat(a - b)
	case ir.OpFMul:
		return ir.ConstFloat(a * b)
	case ir.OpFDiv:
		return ir.ConstFloat(a / b)
	case ir.OpFRem:
		return ir.ConstFloat(math.Mod(a, b))
	}
	return nil
}

func evalICmp(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpSLT:
		return a < b
	case ir.CmpSLE:
		return a <= b
	case ir.CmpSGT:
		return a > b
	case ir.CmpSGE:
		return a >= b
	case ir.CmpULT:
		return uint64(a) < uint64(b)
	case ir.CmpULE:
		return uint64(a) <= uint64(b)
	case ir.CmpUGT:
		return uint64(a) > uint64(b)
	case ir.CmpUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

func evalFCmp(p ir.CmpPred, a, b float64) bool {
	switch p {
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	case ir.CmpSLT, ir.CmpULT:
		return a < b
	case ir.CmpSLE, ir.CmpULE:
		return a <= b
	case ir.CmpSGT, ir.CmpUGT:
		return a > b
	case ir.CmpSGE, ir.CmpUGE:
		return a >= b
	}
	return false
}
