package passes

import "repro/internal/ir"

// SimplifyCFG tidies control flow to a fixpoint: it folds constant
// branches, removes unreachable blocks, merges straight-line block chains,
// forwards empty blocks, and collapses conditional branches whose targets
// coincide.
func SimplifyCFG(f *ir.Function) bool {
	changed := false
	for {
		did := false
		if f.RemoveUnreachable() > 0 {
			did = true
		}
		if foldConstBranches(f) {
			did = true
		}
		if collapseSameTarget(f) {
			did = true
		}
		if mergeChains(f) {
			did = true
		}
		if forwardEmptyBlocks(f) {
			did = true
		}
		if prunePhis(f) {
			did = true
		}
		if !did {
			return changed
		}
		changed = true
	}
}

// foldConstBranches turns condbr/switch on constants into plain branches.
func foldConstBranches(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil {
			continue
		}
		switch term.Op {
		case ir.OpCondBr:
			c, ok := term.Args[0].(*ir.Const)
			if !ok {
				continue
			}
			keep, drop := term.Blocks[0], term.Blocks[1]
			if c.I == 0 {
				keep, drop = drop, keep
			}
			if drop != keep {
				for _, phi := range drop.Phis() {
					phi.RemovePhiIncoming(b)
				}
			}
			term.Op = ir.OpBr
			term.Args = nil
			term.Blocks = []*ir.Block{keep}
			changed = true
		case ir.OpSwitch:
			c, ok := term.Args[0].(*ir.Const)
			if !ok {
				continue
			}
			target := term.Blocks[0]
			for i, sv := range term.SwitchVals {
				if sv == c.I {
					target = term.Blocks[i+1]
					break
				}
			}
			for _, t := range term.Blocks {
				if t != target {
					for _, phi := range t.Phis() {
						phi.RemovePhiIncoming(b)
					}
				}
			}
			term.Op = ir.OpBr
			term.Args = nil
			term.Blocks = []*ir.Block{target}
			term.SwitchVals = nil
			changed = true
		}
	}
	return changed
}

// collapseSameTarget rewrites `condbr %c, %t, %t` into `br %t`.
func collapseSameTarget(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		if term.Blocks[0] == term.Blocks[1] {
			term.Op = ir.OpBr
			term.Args = nil
			term.Blocks = term.Blocks[:1]
			changed = true
		}
	}
	return changed
}

// mergeChains merges a block into its unique successor when that successor
// has no other predecessors (classic straight-line merging).
func mergeChains(f *ir.Function) bool {
	changed := false
	for {
		preds := f.Preds()
		merged := false
		for _, b := range f.Blocks {
			term := b.Term()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			s := term.Blocks[0]
			if s == b || s == f.Entry() || len(preds[s]) != 1 {
				continue
			}
			// Absorb s into b. Phis in s have a single incoming value.
			for _, phi := range s.Phis() {
				f.ReplaceUses(phi, phi.Args[0])
			}
			body := s.Instrs[s.FirstNonPhi():]
			b.Remove(term)
			for _, in := range body {
				in.Parent = b
				b.Instrs = append(b.Instrs, in)
			}
			// Successor phis that referenced s now come from b.
			for _, ss := range b.Succs() {
				for _, phi := range ss.Phis() {
					for i, blk := range phi.Blocks {
						if blk == s {
							phi.Blocks[i] = b
						}
					}
				}
			}
			f.RemoveBlock(s)
			merged, changed = true, true
			break // preds map is stale; recompute
		}
		if !merged {
			return changed
		}
	}
}

// forwardEmptyBlocks removes blocks that contain only an unconditional
// branch, rerouting predecessors straight to the target.
func forwardEmptyBlocks(f *ir.Function) bool {
	changed := false
	for {
		preds := f.Preds()
		did := false
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 1 {
				continue
			}
			term := b.Term()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			target := term.Blocks[0]
			if target == b {
				continue
			}
			// If the target has phis, rerouting is only safe when each
			// predecessor of b can carry b's phi value unambiguously —
			// i.e. the predecessor is not already a predecessor of target.
			tPhis := target.Phis()
			ok := true
			if len(tPhis) > 0 {
				already := make(map[*ir.Block]bool)
				for _, tp := range preds[target] {
					if tp != b {
						already[tp] = true
					}
				}
				for _, p := range preds[b] {
					if already[p] {
						ok = false
						break
					}
				}
			}
			if !ok || len(preds[b]) == 0 {
				continue
			}
			for _, phi := range tPhis {
				v := phi.PhiIncoming(b)
				phi.RemovePhiIncoming(b)
				for _, p := range preds[b] {
					phi.SetPhiIncoming(p, v)
				}
			}
			for _, p := range preds[b] {
				p.Term().RedirectTarget(b, target)
			}
			f.RemoveBlock(b)
			did, changed = true, true
			break
		}
		if !did {
			return changed
		}
	}
}
