package passes

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// GVN performs dominator-scoped global value numbering: a pure instruction
// computing the same expression as one that dominates it is replaced by the
// earlier result. Memory operations and calls are left alone (no alias
// analysis).
func GVN(f *ir.Function) bool {
	f.RemoveUnreachable()
	dt := ir.NewDomTree(f)
	changed := false

	// id assigns stable numbers to values for hashing.
	ids := make(map[ir.Value]int)
	nextID := 0
	idOf := func(v ir.Value) string {
		if c, ok := v.(*ir.Const); ok {
			if c.Ty.IsFloat() {
				return fmt.Sprintf("f%v", c.F)
			}
			return fmt.Sprintf("c%d:%s", c.I, c.Ty)
		}
		id, ok := ids[v]
		if !ok {
			nextID++
			id = nextID
			ids[v] = id
		}
		return fmt.Sprintf("v%d", id)
	}

	type scope struct {
		table map[string]*ir.Instr
		prev  *scope
	}
	find := func(s *scope, key string) *ir.Instr {
		for ; s != nil; s = s.prev {
			if in, ok := s.table[key]; ok {
				return in
			}
		}
		return nil
	}

	var walk func(b *ir.Block, sc *scope)
	walk = func(b *ir.Block, sc *scope) {
		local := &scope{table: make(map[string]*ir.Instr), prev: sc}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			key, ok := gvnKey(in, idOf)
			if !ok {
				kept = append(kept, in)
				continue
			}
			if prev := find(local, key); prev != nil {
				f.ReplaceUses(in, prev)
				changed = true
				continue // drop the duplicate
			}
			local.table[key] = in
			kept = append(kept, in)
		}
		b.Instrs = kept
		for _, c := range dt.Children[b] {
			walk(c, local)
		}
	}
	if f.Entry() != nil {
		walk(f.Entry(), nil)
	}
	return changed
}

// gvnKey builds a hash key for pure instructions; ok is false for
// instructions GVN must not touch.
func gvnKey(in *ir.Instr, idOf func(ir.Value) string) (string, bool) {
	switch {
	case in.Op.IsIntBinary(), in.Op.IsFloatBinary():
		a, b := idOf(in.Args[0]), idOf(in.Args[1])
		if in.Op.IsCommutative() && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("%d|%s|%s|%s", in.Op, in.Ty, a, b), true
	case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
		return fmt.Sprintf("%d|%d|%s|%s", in.Op, in.Pred, idOf(in.Args[0]), idOf(in.Args[1])), true
	case in.Op == ir.OpSelect, in.Op == ir.OpFNeg, in.Op == ir.OpGEP:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d|%s", in.Op, in.Ty)
		for _, a := range in.Args {
			sb.WriteByte('|')
			sb.WriteString(idOf(a))
		}
		return sb.String(), true
	case in.Op.IsCast():
		return fmt.Sprintf("%d|%s|%s", in.Op, in.Ty, idOf(in.Args[0])), true
	}
	return "", false
}
