package passes

import "repro/internal/ir"

// LICM hoists loop-invariant pure computations into a preheader block.
// Trapping instructions (divisions by non-constant divisors) and memory
// operations stay put.
func LICM(f *ir.Function) bool {
	f.RemoveUnreachable()
	dt := ir.NewDomTree(f)
	loops := dt.NaturalLoops()
	if len(loops) == 0 {
		return false
	}
	preds := f.Preds()
	changed := false
	for _, loop := range loops {
		pre := findOrCreatePreheader(f, loop, preds, loops)
		if pre == nil {
			continue
		}
		// Iterate: hoisting one instruction can make another invariant.
		for {
			hoisted := false
			for _, b := range f.Blocks {
				if !loop.Blocks[b] {
					continue
				}
				for _, in := range b.Instrs {
					if !hoistable(in, loop) {
						continue
					}
					b.Remove(in)
					pre.InsertBeforeTerm(in)
					hoisted, changed = true, true
					break
				}
				if hoisted {
					break
				}
			}
			if !hoisted {
				break
			}
		}
		// Preheader insertion invalidated the cached predecessor map.
		preds = f.Preds()
	}
	return changed
}

// hoistable reports whether in is pure, non-trapping and all of its
// operands are defined outside the loop.
func hoistable(in *ir.Instr, loop *ir.Loop) bool {
	switch {
	case in.Op.IsIntBinary():
		switch in.Op {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
			// Only safe when the divisor is a non-zero constant: the loop
			// body may never execute.
			c, ok := in.Args[1].(*ir.Const)
			if !ok || c.I == 0 {
				return false
			}
		}
	case in.Op.IsFloatBinary(), in.Op == ir.OpFNeg, in.Op == ir.OpSelect,
		in.Op == ir.OpICmp, in.Op == ir.OpFCmp, in.Op.IsCast(), in.Op == ir.OpGEP:
		// pure
	default:
		return false
	}
	for _, a := range in.Args {
		if d, ok := a.(*ir.Instr); ok && loop.Blocks[d.Parent] {
			return false
		}
	}
	return true
}

// findOrCreatePreheader returns a block that is the unique out-of-loop
// predecessor of the loop header, creating one when needed. A newly created
// preheader is registered in the body set of every *enclosing* loop in
// loops: those sets were computed before the block existed, and treating an
// inner preheader as "outside" an outer loop would let LICM hoist a use of
// its values above their definition.
func findOrCreatePreheader(f *ir.Function, loop *ir.Loop, preds map[*ir.Block][]*ir.Block, loops []*ir.Loop) *ir.Block {
	var outside []*ir.Block
	for _, p := range preds[loop.Header] {
		if !loop.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return nil // dead loop
	}
	if len(outside) == 1 {
		p := outside[0]
		if t := p.Term(); t != nil && t.Op == ir.OpBr {
			return p
		}
	}
	// Build a dedicated preheader: outside preds branch to it, it branches
	// to the header, and header phis split their incoming edges.
	pre := f.InsertBlockAfter(outside[0], loop.Header.Name+".pre")
	ir.NewBuilder(pre).Br(loop.Header)
	for _, phi := range loop.Header.Phis() {
		// Merge the outside incoming values into a phi in the preheader.
		nphi := &ir.Instr{Op: ir.OpPhi, Ty: phi.Ty, Parent: pre}
		pre.InsertBefore(0, nphi)
		for _, p := range outside {
			v := phi.PhiIncoming(p)
			phi.RemovePhiIncoming(p)
			nphi.SetPhiIncoming(p, v)
		}
		phi.SetPhiIncoming(pre, nphi)
	}
	for _, p := range outside {
		p.Term().RedirectTarget(loop.Header, pre)
	}
	// pre sits on the outside-preds -> header edges. It belongs to an
	// enclosing loop exactly when both endpoints of those edges do: then
	// every path through pre stays inside that loop's body.
	for _, other := range loops {
		if other == loop || !other.Blocks[loop.Header] {
			continue
		}
		inOther := true
		for _, p := range outside {
			if !other.Blocks[p] {
				inOther = false
				break
			}
		}
		if inOther {
			other.Blocks[pre] = true
		}
	}
	return pre
}
