package passes

import "repro/internal/ir"

// Inline replaces calls to small, non-recursive functions with the callee's
// body. maxSize bounds the callee instruction count. It returns whether any
// call was inlined.
func Inline(m *ir.Module, maxSize int) bool {
	recursive := findRecursive(m)
	changed := false
	for _, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		// Bound the work: inlining exposes more calls; loop a few times.
		for round := 0; round < 3; round++ {
			call := findInlinableCall(f, maxSize, recursive)
			if call == nil {
				break
			}
			inlineCall(f, call)
			changed = true
		}
	}
	return changed
}

func findRecursive(m *ir.Module) map[*ir.Function]bool {
	// A function is considered recursive when it can reach itself in the
	// static call graph.
	callees := make(map[*ir.Function][]*ir.Function)
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.OpCall && in.Callee != nil {
				callees[f] = append(callees[f], in.Callee)
			}
		})
	}
	rec := make(map[*ir.Function]bool)
	for _, f := range m.Functions {
		seen := map[*ir.Function]bool{}
		stack := append([]*ir.Function(nil), callees[f]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if g == f {
				rec[f] = true
				break
			}
			if seen[g] {
				continue
			}
			seen[g] = true
			stack = append(stack, callees[g]...)
		}
	}
	return rec
}

func findInlinableCall(f *ir.Function, maxSize int, recursive map[*ir.Function]bool) *ir.Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall || in.Callee == nil {
				continue
			}
			c := in.Callee
			if c == f || c.IsDecl() || recursive[c] || c.NumInstrs() > maxSize {
				continue
			}
			return in
		}
	}
	return nil
}

// inlineCall splices the callee body in place of the call instruction.
func inlineCall(f *ir.Function, call *ir.Instr) {
	callee := call.Callee
	b := call.Parent

	// Split b at the call: b keeps the prefix, cont gets the suffix.
	idx := -1
	for i, in := range b.Instrs {
		if in == call {
			idx = i
			break
		}
	}
	cont := f.InsertBlockAfter(b, b.Label()+".cont")
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)
	for _, in := range cont.Instrs {
		in.Parent = cont
	}
	b.Instrs = b.Instrs[:idx]

	// Successor phis of b's old terminator now see cont.
	for _, s := range cont.Succs() {
		for _, phi := range s.Phis() {
			for i, blk := range phi.Blocks {
				if blk == b {
					phi.Blocks[i] = cont
				}
			}
		}
	}

	// Clone the callee body into f.
	body := ir.CloneFunction(callee)
	bmap := make(map[*ir.Block]*ir.Block, len(body.Blocks))
	for _, cb := range body.Blocks {
		nb := f.InsertBlockAfter(b, callee.Name+"."+cb.Label())
		bmap[cb] = nb
	}
	// Map callee params to call arguments.
	var retVals []ir.Value
	var retBlocks []*ir.Block
	for _, cb := range body.Blocks {
		nb := bmap[cb]
		for _, in := range cb.Instrs {
			for i, a := range in.Args {
				if p, ok := a.(*ir.Param); ok {
					in.Args[i] = call.Args[p.Index]
				}
			}
			for i, tb := range in.Blocks {
				in.Blocks[i] = bmap[tb]
			}
			if in.Op == ir.OpRet {
				if len(in.Args) == 1 {
					retVals = append(retVals, in.Args[0])
					retBlocks = append(retBlocks, nb)
				}
				br := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Blocks: []*ir.Block{cont}}
				nb.Append(br)
				continue
			}
			in.Parent = nb
			in.ID = 0
			nb.Append(in)
		}
	}
	// Hoist inlined allocas to the caller's entry block so that a call
	// site inside a loop does not allocate a fresh slot per iteration
	// (LLVM does the same when inlining static allocas).
	entry := f.Entry()
	for _, cb := range body.Blocks {
		nb := bmap[cb]
		kept := nb.Instrs[:0]
		for _, in := range nb.Instrs {
			if in.Op == ir.OpAlloca {
				in.Parent = entry
				entry.InsertBefore(0, in)
				continue
			}
			kept = append(kept, in)
		}
		nb.Instrs = kept
	}

	// Branch from b into the inlined entry.
	ir.NewBuilder(b).Br(bmap[body.Entry()])

	// Replace the call's value with the merged return value.
	if call.HasResult() {
		var repl ir.Value
		switch len(retVals) {
		case 0:
			repl = zeroValue(call.Type())
		case 1:
			repl = retVals[0]
		default:
			phi := &ir.Instr{Op: ir.OpPhi, Ty: call.Type(), Parent: cont}
			cont.InsertBefore(0, phi)
			for i, v := range retVals {
				phi.SetPhiIncoming(retBlocks[i], v)
			}
			repl = phi
		}
		f.ReplaceUses(call, repl)
	}
	f.RemoveUnreachable()
}
