package passes

import "repro/internal/ir"

// InstCombine is the peephole simplifier. Besides classic algebraic
// identities (x+0, x*1, x^x, ...), it knows how to invert the
// mixed-boolean-arithmetic identities that O-LLVM's instruction
// substitution emits — (a|b)+(a&b) back to a+b, a-(-b) back to a+b, and so
// on — which is what lets the Game-3 normalizer partially undo `sub`.
func InstCombine(f *ir.Function) bool {
	changed := false
	for {
		did := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				v, ch := simplify(in)
				if ch {
					did, changed = true, true
				}
				if v != nil {
					// Everything simplify replaces is pure, so the
					// superseded instruction can be dropped on the spot.
					f.ReplaceUses(in, v)
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !did {
			if changed {
				DCE(f)
			}
			return changed
		}
	}
}

// simplify tries to simplify in. It returns (replacement, true) when the
// instruction's value should be replaced, (nil, true) when the instruction
// was rewritten in place, and (nil, false) when no rule applied.
func simplify(in *ir.Instr) (ir.Value, bool) {
	if c := foldInstr(in); c != nil {
		return c, true
	}
	// Canonicalize constants to the right of commutative operators so the
	// rules below only look on one side.
	if in.Op.IsCommutative() && len(in.Args) == 2 {
		if _, lc := in.Args[0].(*ir.Const); lc {
			if _, rc := in.Args[1].(*ir.Const); !rc {
				in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
			}
		}
	}
	switch in.Op {
	case ir.OpAdd:
		return simplifyAdd(in)
	case ir.OpSub:
		return simplifySub(in)
	case ir.OpMul:
		return simplifyMul(in)
	case ir.OpSDiv, ir.OpUDiv:
		if isIntConst(in.Args[1], 1) {
			return in.Args[0], true
		}
	case ir.OpSRem, ir.OpURem:
		if isIntConst(in.Args[1], 1) {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if isIntConst(in.Args[1], 0) {
			return in.Args[0], true
		}
		if isIntConst(in.Args[0], 0) {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpAnd:
		return simplifyAnd(in)
	case ir.OpOr:
		return simplifyOr(in)
	case ir.OpXor:
		return simplifyXor(in)
	case ir.OpICmp:
		return simplifyICmp(in)
	case ir.OpSelect:
		if in.Args[1] == in.Args[2] {
			return in.Args[1], true
		}
	case ir.OpFAdd, ir.OpFSub:
		if fc, ok := in.Args[1].(*ir.Const); ok && fc.F == 0 {
			return in.Args[0], true
		}
	case ir.OpFNeg:
		if n := asInstr(in.Args[0], ir.OpFNeg); n != nil {
			return n.Args[0], true
		}
	case ir.OpZExt, ir.OpSExt, ir.OpBitcast:
		if in.Args[0].Type().Equal(in.Ty) {
			return in.Args[0], true
		}
	case ir.OpTrunc:
		if in.Args[0].Type().Equal(in.Ty) {
			return in.Args[0], true
		}
		// trunc(zext/sext(x)) -> x when the widths round-trip.
		if src, ok := in.Args[0].(*ir.Instr); ok && (src.Op == ir.OpZExt || src.Op == ir.OpSExt) {
			if src.Args[0].Type().Equal(in.Ty) {
				return src.Args[0], true
			}
		}
	case ir.OpFreeze:
		return in.Args[0], true
	}
	return nil, false
}

func isIntConst(v ir.Value, want int64) bool {
	c, ok := v.(*ir.Const)
	return ok && !c.Ty.IsFloat() && c.I == want
}

func asInstr(v ir.Value, op ir.Opcode) *ir.Instr {
	in, ok := v.(*ir.Instr)
	if ok && in.Op == op {
		return in
	}
	return nil
}

// isNeg reports whether v is 0-x, returning x.
func isNeg(v ir.Value) (ir.Value, bool) {
	s := asInstr(v, ir.OpSub)
	if s != nil && isIntConst(s.Args[0], 0) {
		return s.Args[1], true
	}
	return nil, false
}

func simplifyAdd(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if isIntConst(b, 0) {
		return a, true
	}
	// a + (0-b) -> a - b (in place; undoes O-LLVM's add-via-neg encoding).
	if x, ok := isNeg(b); ok {
		in.Op = ir.OpSub
		in.Args = []ir.Value{a, x}
		return nil, true
	}
	if x, ok := isNeg(a); ok {
		in.Op = ir.OpSub
		in.Args = []ir.Value{b, x}
		return nil, true
	}
	// (x - c) + c -> x ; (x - y) + y -> x
	if s := asInstr(a, ir.OpSub); s != nil {
		if sameValue(s.Args[1], b) {
			return s.Args[0], true
		}
	}
	if s := asInstr(b, ir.OpSub); s != nil {
		if sameValue(s.Args[1], a) {
			return s.Args[0], true
		}
	}
	// (x + c1) + c2 -> x + (c1+c2)
	if c2, ok := b.(*ir.Const); ok && !c2.Ty.IsFloat() {
		if s := asInstr(a, ir.OpAdd); s != nil {
			if c1, ok := s.Args[1].(*ir.Const); ok && !c1.Ty.IsFloat() {
				in.Args = []ir.Value{s.Args[0], ir.ConstInt(in.Ty, c1.I+c2.I)}
				return nil, true
			}
		}
	}
	// MBA inversions (O-LLVM sub pass):
	//   (a ^ b) + 2*(a & b) -> a + b
	//   (a | b) + (a & b)   -> a + b
	if x, y, ok := matchMBAAdd(a, b); ok {
		in.Args = []ir.Value{x, y}
		return nil, true
	}
	if x, y, ok := matchMBAAdd(b, a); ok {
		in.Args = []ir.Value{x, y}
		return nil, true
	}
	return nil, false
}

// sameValue compares two operands, treating equal constants as the same.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	return ok1 && ok2 && constEq(ca, cb)
}

// matchMBAAdd recognizes the two MBA encodings of addition; on success it
// returns the real summands.
func matchMBAAdd(u, v ir.Value) (ir.Value, ir.Value, bool) {
	if xor := asInstr(u, ir.OpXor); xor != nil {
		var and *ir.Instr
		if shl := asInstr(v, ir.OpShl); shl != nil && isIntConst(shl.Args[1], 1) {
			and = asInstr(shl.Args[0], ir.OpAnd)
		} else if mul := asInstr(v, ir.OpMul); mul != nil && isIntConst(mul.Args[1], 2) {
			and = asInstr(mul.Args[0], ir.OpAnd)
		}
		if and != nil && sameOperands(xor, and) {
			return xor.Args[0], xor.Args[1], true
		}
	}
	or := asInstr(u, ir.OpOr)
	and := asInstr(v, ir.OpAnd)
	if or != nil && and != nil && sameOperands(or, and) {
		return or.Args[0], or.Args[1], true
	}
	return nil, nil, false
}

func sameOperands(a, b *ir.Instr) bool {
	return (a.Args[0] == b.Args[0] && a.Args[1] == b.Args[1]) ||
		(a.Args[0] == b.Args[1] && a.Args[1] == b.Args[0])
}

func simplifySub(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if isIntConst(b, 0) {
		return a, true
	}
	if a == b {
		return ir.ConstInt(in.Ty, 0), true
	}
	// a - (0 - b) -> a + b (but keep the canonical negation 0-x alone).
	if x, ok := isNeg(b); ok && !isIntConst(a, 0) {
		in.Op = ir.OpAdd
		in.Args = []ir.Value{a, x}
		return nil, true
	}
	// 0 - (0 - x) -> x
	if isIntConst(a, 0) {
		if x, ok := isNeg(b); ok {
			return x, true
		}
	}
	// (x + y) - y -> x ; (x + y) - x -> y
	if s := asInstr(a, ir.OpAdd); s != nil {
		if sameValue(s.Args[1], b) {
			return s.Args[0], true
		}
		if sameValue(s.Args[0], b) {
			return s.Args[1], true
		}
	}
	// (x - c1) - c2 -> x - (c1+c2)
	if c2, ok := b.(*ir.Const); ok && !c2.Ty.IsFloat() {
		if s := asInstr(a, ir.OpSub); s != nil {
			if c1, ok := s.Args[1].(*ir.Const); ok && !c1.Ty.IsFloat() {
				in.Args = []ir.Value{s.Args[0], ir.ConstInt(in.Ty, c1.I+c2.I)}
				return nil, true
			}
		}
	}
	return nil, false
}

func simplifyMul(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if isIntConst(b, 1) {
		return a, true
	}
	if isIntConst(b, 0) {
		return ir.ConstInt(in.Ty, 0), true
	}
	// x * 2^k -> x << k for k >= 2 (k == 1 is kept: the MBA matcher wants
	// to see both mul-by-2 and shl-by-1 forms, and either canonicalization
	// is fine as long as it is stable).
	if c, ok := b.(*ir.Const); ok && !c.Ty.IsFloat() && c.I > 2 && c.I&(c.I-1) == 0 {
		k := int64(0)
		for v := c.I; v > 1; v >>= 1 {
			k++
		}
		in.Op = ir.OpShl
		in.Args = []ir.Value{a, ir.ConstInt(in.Ty, k)}
		return nil, true
	}
	return nil, false
}

func simplifyAnd(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if a == b {
		return a, true
	}
	if isIntConst(b, 0) {
		return ir.ConstInt(in.Ty, 0), true
	}
	if isIntConst(b, -1) {
		return a, true
	}
	// (a ^ ~b) & a -> a & b  (O-LLVM and-substitution)
	try := func(x, other ir.Value) (ir.Value, bool) {
		xor := asInstr(x, ir.OpXor)
		if xor == nil {
			return nil, false
		}
		if xor.Args[0] == other {
			if nb, ok := isNot(xor.Args[1]); ok {
				in.Args = []ir.Value{other, nb}
				return nil, true
			}
		}
		if xor.Args[1] == other {
			if na, ok := isNot(xor.Args[0]); ok {
				in.Args = []ir.Value{other, na}
				return nil, true
			}
		}
		return nil, false
	}
	if v, ok := try(a, b); ok {
		return v, true
	}
	if v, ok := try(b, a); ok {
		return v, true
	}
	return nil, false
}

// isNot reports whether v is x ^ -1 (bitwise not), returning x.
func isNot(v ir.Value) (ir.Value, bool) {
	x := asInstr(v, ir.OpXor)
	if x == nil {
		return nil, false
	}
	if isIntConst(x.Args[1], -1) {
		return x.Args[0], true
	}
	if isIntConst(x.Args[0], -1) {
		return x.Args[1], true
	}
	return nil, false
}

func simplifyOr(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if a == b {
		return a, true
	}
	if isIntConst(b, 0) {
		return a, true
	}
	if isIntConst(b, -1) {
		return ir.ConstInt(in.Ty, -1), true
	}
	// (a & b) | (a ^ b) -> a | b  (O-LLVM or-substitution)
	and := asInstr(a, ir.OpAnd)
	xor := asInstr(b, ir.OpXor)
	if and == nil || xor == nil {
		and = asInstr(b, ir.OpAnd)
		xor = asInstr(a, ir.OpXor)
	}
	if and != nil && xor != nil && sameOperands(and, xor) {
		in.Args = []ir.Value{and.Args[0], and.Args[1]}
		return nil, true
	}
	// (~a & b) | (a & ~b) -> a ^ b  (O-LLVM xor-substitution)
	l := asInstr(a, ir.OpAnd)
	r := asInstr(b, ir.OpAnd)
	if l != nil && r != nil {
		if x, y, ok := matchXorHalves(l, r); ok {
			in.Op = ir.OpXor
			in.Args = []ir.Value{x, y}
			return nil, true
		}
	}
	return nil, false
}

// matchXorHalves matches {~x & y, x & ~y} in either order, returning (x, y).
func matchXorHalves(l, r *ir.Instr) (ir.Value, ir.Value, bool) {
	type half struct{ plain, notted ir.Value }
	decode := func(in *ir.Instr) (half, bool) {
		if n, ok := isNot(in.Args[0]); ok {
			return half{plain: in.Args[1], notted: n}, true
		}
		if n, ok := isNot(in.Args[1]); ok {
			return half{plain: in.Args[0], notted: n}, true
		}
		return half{}, false
	}
	hl, ok1 := decode(l)
	hr, ok2 := decode(r)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	if hl.notted == hr.plain && hl.plain == hr.notted {
		return hl.notted, hl.plain, true
	}
	return nil, nil, false
}

func simplifyXor(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if a == b {
		return ir.ConstInt(in.Ty, 0), true
	}
	if isIntConst(b, 0) {
		return a, true
	}
	// ~(~x) -> x: this xor is n ^ -1 where n is itself m ^ -1.
	if isIntConst(b, -1) {
		if x, ok := isNot(a); ok {
			return x, true
		}
	}
	// (x ^ c1) ^ c2 -> x ^ (c1^c2), but never collapse a double-not here
	// (handled above) or degenerate to x^0 (the fold pass finishes it).
	if c2, ok := b.(*ir.Const); ok && !c2.Ty.IsFloat() {
		if s := asInstr(a, ir.OpXor); s != nil {
			if c1, ok := s.Args[1].(*ir.Const); ok && !c1.Ty.IsFloat() {
				in.Args = []ir.Value{s.Args[0], ir.ConstInt(in.Ty, c1.I^c2.I)}
				return nil, true
			}
		}
	}
	return nil, false
}

func simplifyICmp(in *ir.Instr) (ir.Value, bool) {
	a, b := in.Args[0], in.Args[1]
	if a == b {
		switch in.Pred {
		case ir.CmpEQ, ir.CmpSLE, ir.CmpSGE, ir.CmpULE, ir.CmpUGE:
			return ir.ConstBool(true), true
		case ir.CmpNE, ir.CmpSLT, ir.CmpSGT, ir.CmpULT, ir.CmpUGT:
			return ir.ConstBool(false), true
		}
	}
	return nil, false
}
