// Package passes implements the optimizer of the arena: classic scalar
// optimizations over the SSA IR (mem2reg, SCCP, DCE, SimplifyCFG,
// InstCombine, GVN, LICM, inlining) arranged into clang-like -O0/-O1/-O2/-O3
// pipelines. In the paper's games the optimizer plays two roles: an evader
// (clang -O3 hides programs about as well as O-LLVM) and a normalizer (the
// Game-3 classifier optimizes challenges to undo naive obfuscation).
package passes

import (
	"fmt"

	"repro/internal/ir"
)

// FuncPass is a transformation over one function. Run reports whether it
// changed anything.
type FuncPass struct {
	Name string
	Run  func(*ir.Function) bool
}

// Level selects an optimization pipeline.
type Level int

// Optimization levels mirroring clang's.
const (
	O0 Level = iota
	O1
	O2
	O3
)

// ParseLevel converts "O0".."O3" (or "-O0".."-O3") to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "O0", "-O0", "0":
		return O0, nil
	case "O1", "-O1", "1":
		return O1, nil
	case "O2", "-O2", "2":
		return O2, nil
	case "O3", "-O3", "3":
		return O3, nil
	}
	return O0, fmt.Errorf("unknown optimization level %q", s)
}

func (l Level) String() string { return [...]string{"O0", "O1", "O2", "O3"}[l] }

// scalarPasses is the per-function cleanup sequence shared by O1..O3.
func scalarPasses() []FuncPass {
	return []FuncPass{
		{"mem2reg", Mem2Reg},
		{"instcombine", InstCombine},
		{"simplifycfg", SimplifyCFG},
		{"sccp", SCCP},
		{"dce", DCE},
		{"simplifycfg", SimplifyCFG},
	}
}

// Optimize runs the pipeline for the given level over the module, mutating
// it in place. The input module is expected to be verified; the output is
// re-verified and any violation is reported as an error (it would be a bug
// in a pass).
func Optimize(m *ir.Module, level Level) error {
	switch level {
	case O0:
		return nil
	case O1:
		runFuncPasses(m, scalarPasses())
	case O2:
		runFuncPasses(m, scalarPasses())
		runFuncPasses(m, []FuncPass{
			{"gvn", GVN},
			{"instcombine", InstCombine},
			{"dce", DCE},
			{"simplifycfg", SimplifyCFG},
		})
	case O3:
		Inline(m, 60)
		runFuncPasses(m, scalarPasses())
		runFuncPasses(m, []FuncPass{
			{"gvn", GVN},
			{"licm", LICM},
			{"instcombine", InstCombine},
			{"unroll", UnrollLoops},
			{"gvn", GVN},
			{"sccp", SCCP},
			{"dce", DCE},
			{"simplifycfg", SimplifyCFG},
			{"instcombine", InstCombine},
			{"dce", DCE},
			{"simplifycfg", SimplifyCFG},
		})
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("passes: %s pipeline produced invalid IR: %w", level, err)
	}
	return nil
}

// Debug, when set, re-verifies the function after every individual pass and
// panics with the offending pass's name on the first violation. It turns a
// late "pipeline produced invalid IR" error into a precise culprit; tests
// for new passes should flip it on.
var Debug = false

func runFuncPasses(m *ir.Module, pipeline []FuncPass) {
	for _, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		for _, p := range pipeline {
			p.Run(f)
			if Debug {
				if err := f.Verify(); err != nil {
					panic(fmt.Sprintf("passes: %s broke @%s: %v\n%s", p.Name, f.Name, err, f.String()))
				}
			}
		}
	}
}

// RunPass runs a single named pass over every function (used by tests and
// the CLI's -passes flag). Known names: mem2reg, instcombine, simplifycfg,
// sccp, dce, gvn, licm.
func RunPass(m *ir.Module, name string) (bool, error) {
	var fn func(*ir.Function) bool
	switch name {
	case "mem2reg":
		fn = Mem2Reg
	case "instcombine":
		fn = InstCombine
	case "simplifycfg":
		fn = SimplifyCFG
	case "sccp":
		fn = SCCP
	case "dce":
		fn = DCE
	case "gvn":
		fn = GVN
	case "licm":
		fn = LICM
	case "unroll":
		fn = UnrollLoops
	case "inline":
		return Inline(m, 60), nil
	default:
		return false, fmt.Errorf("unknown pass %q", name)
	}
	changed := false
	for _, f := range m.Functions {
		if !f.IsDecl() && fn(f) {
			changed = true
		}
	}
	return changed, nil
}
