package passes

import "repro/internal/ir"

// latKind is the SCCP lattice state of a value.
type latKind int

const (
	latUnknown latKind = iota // top: no evidence yet
	latConst                  // a single constant value
	latOver                   // bottom: varies at runtime
)

type latVal struct {
	kind latKind
	c    *ir.Const
}

// SCCP performs sparse conditional constant propagation (Wegman-Zadeck):
// it simultaneously tracks which CFG edges are executable and which SSA
// values are constant, so constants propagate through branches that are
// themselves decided by constants. Afterwards, constant values replace
// their instructions, always-taken branches become unconditional and the
// dead blocks are removed. This is the pass that dismantles obfuscation
// built on transparent predicates (and the reason bcf uses opaque ones).
func SCCP(f *ir.Function) bool {
	f.RemoveUnreachable()
	if len(f.Blocks) == 0 {
		return false
	}
	vals := make(map[*ir.Instr]latVal)
	execEdge := make(map[[2]*ir.Block]bool)
	execBlock := make(map[*ir.Block]bool)

	var instrWork []*ir.Instr
	var blockWork []*ir.Block

	lookup := func(v ir.Value) latVal {
		switch x := v.(type) {
		case *ir.Const:
			return latVal{latConst, x}
		case *ir.Instr:
			return vals[x]
		default:
			// Params, globals, functions: runtime values.
			return latVal{kind: latOver}
		}
	}
	users := make(map[*ir.Instr][]*ir.Instr)
	f.ForEachInstr(func(in *ir.Instr) {
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok {
				users[d] = append(users[d], in)
			}
		}
	})
	setVal := func(in *ir.Instr, nv latVal) {
		old := vals[in]
		if old.kind == nv.kind && (nv.kind != latConst || constEq(old.c, nv.c)) {
			return
		}
		// Lattice only descends: unknown -> const -> overdefined.
		if old.kind == latOver {
			return
		}
		if old.kind == latConst && nv.kind == latConst && !constEq(old.c, nv.c) {
			nv = latVal{kind: latOver}
		}
		vals[in] = nv
		instrWork = append(instrWork, users[in]...)
	}
	markEdge := func(from, to *ir.Block) {
		key := [2]*ir.Block{from, to}
		if execEdge[key] {
			// The edge was already executable, but phis in `to` still need
			// re-evaluation when a new edge to the same block appears.
			return
		}
		execEdge[key] = true
		if !execBlock[to] {
			execBlock[to] = true
			blockWork = append(blockWork, to)
		} else {
			// Re-visit phis: a new incoming edge can change their meet.
			instrWork = append(instrWork, to.Phis()...)
		}
	}

	visitInstr := func(in *ir.Instr) {
		if !execBlock[in.Parent] {
			return
		}
		switch {
		case in.Op == ir.OpPhi:
			nv := latVal{kind: latUnknown}
			for i, inc := range in.Args {
				if !execEdge[[2]*ir.Block{in.Blocks[i], in.Parent}] {
					continue
				}
				lv := lookup(inc)
				switch lv.kind {
				case latUnknown:
					// no evidence
				case latOver:
					nv = latVal{kind: latOver}
				case latConst:
					switch nv.kind {
					case latUnknown:
						nv = lv
					case latConst:
						if !constEq(nv.c, lv.c) {
							nv = latVal{kind: latOver}
						}
					}
				}
				if nv.kind == latOver {
					break
				}
			}
			setVal(in, nv)
		case in.Op == ir.OpCondBr:
			cv := lookup(in.Args[0])
			switch cv.kind {
			case latConst:
				if cv.c.I != 0 {
					markEdge(in.Parent, in.Blocks[0])
				} else {
					markEdge(in.Parent, in.Blocks[1])
				}
			case latOver:
				markEdge(in.Parent, in.Blocks[0])
				markEdge(in.Parent, in.Blocks[1])
			}
		case in.Op == ir.OpSwitch:
			cv := lookup(in.Args[0])
			switch cv.kind {
			case latConst:
				target := in.Blocks[0]
				for i, sv := range in.SwitchVals {
					if sv == cv.c.I {
						target = in.Blocks[i+1]
						break
					}
				}
				markEdge(in.Parent, target)
			case latOver:
				for _, t := range in.Blocks {
					markEdge(in.Parent, t)
				}
			}
		case in.Op == ir.OpBr:
			markEdge(in.Parent, in.Blocks[0])
		case in.Op == ir.OpRet, in.Op == ir.OpUnreachable:
			// nothing
		case !in.HasResult():
			// stores etc.: nothing to track
		case in.Op == ir.OpSelect:
			cv := lookup(in.Args[0])
			switch cv.kind {
			case latConst:
				pick := in.Args[2]
				if cv.c.I != 0 {
					pick = in.Args[1]
				}
				setVal(in, lookup(pick))
			case latOver:
				a, b := lookup(in.Args[1]), lookup(in.Args[2])
				switch {
				case a.kind == latConst && b.kind == latConst && constEq(a.c, b.c):
					setVal(in, a)
				case a.kind == latUnknown || b.kind == latUnknown:
					// Wait: an unknown arm may still become the same const.
				default:
					// Overdefined cond with differing (or overdefined) arms.
					setVal(in, latVal{kind: latOver})
				}
			}
		default:
			// Pure ops fold when all operands are constant; loads, calls
			// and allocas are always overdefined.
			switch in.Op {
			case ir.OpLoad, ir.OpCall, ir.OpAlloca, ir.OpGEP, ir.OpVAArg:
				setVal(in, latVal{kind: latOver})
				return
			}
			anyUnknown := false
			for _, a := range in.Args {
				switch lookup(a).kind {
				case latUnknown:
					anyUnknown = true
				case latOver:
					setVal(in, latVal{kind: latOver})
					return
				}
			}
			if anyUnknown {
				return
			}
			// All operands constant: try folding with a shallow copy whose
			// args are the lattice constants.
			tmp := *in
			tmp.Args = make([]ir.Value, len(in.Args))
			for i, a := range in.Args {
				lv := lookup(a)
				tmp.Args[i] = lv.c
			}
			if c := foldInstr(&tmp); c != nil {
				setVal(in, latVal{latConst, c})
			} else {
				setVal(in, latVal{kind: latOver})
			}
		}
	}

	execBlock[f.Entry()] = true
	blockWork = append(blockWork, f.Entry())
	for len(blockWork) > 0 || len(instrWork) > 0 {
		if len(blockWork) > 0 {
			b := blockWork[len(blockWork)-1]
			blockWork = blockWork[:len(blockWork)-1]
			for _, in := range b.Instrs {
				visitInstr(in)
			}
			continue
		}
		in := instrWork[len(instrWork)-1]
		instrWork = instrWork[:len(instrWork)-1]
		visitInstr(in)
	}

	// Rewrite: replace constant instructions, fix constant branches.
	changed := false
	for _, b := range f.Blocks {
		if !execBlock[b] {
			continue
		}
		for _, in := range b.Instrs {
			lv := vals[in]
			if lv.kind == latConst && in.HasResult() && !in.Op.HasSideEffects() {
				f.ReplaceUses(in, lv.c)
				changed = true
			}
		}
		term := b.Term()
		switch term.Op {
		case ir.OpCondBr:
			cv := lookup(term.Args[0])
			if cv.kind == latConst {
				keep := term.Blocks[1]
				drop := term.Blocks[0]
				if cv.c.I != 0 {
					keep, drop = drop, keep
				}
				if drop != keep {
					for _, phi := range drop.Phis() {
						phi.RemovePhiIncoming(b)
					}
				}
				term.Op = ir.OpBr
				term.Args = nil
				term.Blocks = []*ir.Block{keep}
				changed = true
			}
		case ir.OpSwitch:
			cv := lookup(term.Args[0])
			if cv.kind == latConst {
				target := term.Blocks[0]
				for i, sv := range term.SwitchVals {
					if sv == cv.c.I {
						target = term.Blocks[i+1]
						break
					}
				}
				for _, t := range term.Blocks {
					if t != target {
						for _, phi := range t.Phis() {
							phi.RemovePhiIncoming(b)
						}
					}
				}
				term.Op = ir.OpBr
				term.Args = nil
				term.Blocks = []*ir.Block{target}
				term.SwitchVals = nil
				changed = true
			}
		}
	}
	if f.RemoveUnreachable() > 0 {
		changed = true
	}
	if changed {
		DCE(f)
		prunePhis(f)
	}
	return changed
}

func constEq(a, b *ir.Const) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Ty.IsFloat() != b.Ty.IsFloat() {
		return false
	}
	if a.Ty.IsFloat() {
		return a.F == b.F
	}
	return a.I == b.I
}
