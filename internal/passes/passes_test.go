package passes_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/passes"
)

// compile builds a module from source.
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.CompileSource(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// runMod executes a module and returns (ret, output).
func runMod(t *testing.T, m *ir.Module) (int64, string) {
	t.Helper()
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, m.String())
	}
	return res.Ret, res.Output
}

// mustVerify fails the test when a transform has left the module malformed.
// Every test that applies a pass must call this (or verify inline): shape
// assertions alone let dominance and terminator bugs slip through.
func mustVerify(t *testing.T, m *ir.Module) {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR after transform: %v\n%s", err, m.String())
	}
}

// checkSemanticsPreserved optimizes a copy at every level and verifies the
// observable behaviour is identical.
func checkSemanticsPreserved(t *testing.T, src string) {
	t.Helper()
	base := compile(t, src)
	wantRet, wantOut := runMod(t, base)
	for _, lvl := range []passes.Level{passes.O1, passes.O2, passes.O3} {
		m := compile(t, src)
		if err := passes.Optimize(m, lvl); err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: invalid IR: %v\n%s", lvl, err, m.String())
		}
		got, out := runMod(t, m)
		if got != wantRet || out != wantOut {
			t.Fatalf("%s changed behaviour: ret %d->%d, out %q->%q\nIR:\n%s",
				lvl, wantRet, got, wantOut, out, m.String())
		}
	}
}

var semanticPrograms = []struct {
	name string
	src  string
}{
	{"sum_loop", `int main() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }`},
	{"fib_rec", `int fib(int n) { if (n < 2) return n; return fib(n-1)+fib(n-2); }
		int main() { return fib(15); }`},
	{"array_sort", `int main() {
		int a[10] = {9, 3, 7, 1, 8, 2, 6, 0, 5, 4};
		for (int i = 0; i < 10; i++)
			for (int j = 0; j + 1 < 10 - i; j++)
				if (a[j] > a[j+1]) { int t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
		int code = 0;
		for (int i = 0; i < 10; i++) code = code * 10 + a[i];
		return code % 1000000007;
	}`},
	{"nested_branches", `int main() {
		int r = 0;
		for (int i = 0; i < 30; i++) {
			if (i % 3 == 0) r += 1;
			else if (i % 3 == 1) r += 10;
			else r += 100;
		}
		return r;
	}`},
	{"switch_machine", `int main() {
		int state = 0; int steps = 0;
		while (steps < 20) {
			switch (state) {
			case 0: state = 1; break;
			case 1: state = 2; break;
			case 2: state = 0; steps += 2; break;
			default: state = 0;
			}
			steps++;
		}
		return state * 100 + steps;
	}`},
	{"floats", `int main() {
		float acc = 0.0;
		for (int i = 1; i <= 20; i++) acc += 1.0 / (i * i);
		return (int)(acc * 100000.0);
	}`},
	{"pointers_swap", `
	void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
	int main() {
		int x = 3; int y = 9;
		for (int i = 0; i < 5; i++) swap(&x, &y);
		return x * 10 + y;
	}`},
	{"globals", `
	int g = 7;
	int bump(int d) { g += d; return g; }
	int main() { int a = bump(1); int b = bump(2); return g * 100 + a * 10 + b % 10; }`},
	{"shortcircuit", `
	int calls = 0;
	int check(int v) { calls++; return v; }
	int main() {
		int r = 0;
		if (check(0) && check(1)) r += 1;
		if (check(1) || check(1)) r += 2;
		return calls * 10 + r;
	}`},
	{"strings", `int main() {
		char buf[16];
		int n = 0;
		buf[n++] = 'o'; buf[n++] = 'k'; buf[n] = 0;
		int sum = 0;
		for (int i = 0; buf[i]; i++) sum += buf[i];
		return sum;
	}`},
	{"do_while_break", `int main() {
		int n = 0; int i = 0;
		do {
			i++;
			if (i > 7) break;
			if (i % 2) continue;
			n += i;
		} while (i < 100);
		return n * 100 + i;
	}`},
	{"matrix", `int main() {
		int a[4][4]; int b[4][4]; int c[4][4];
		for (int i = 0; i < 4; i++)
			for (int j = 0; j < 4; j++) { a[i][j] = i + j; b[i][j] = i - j; c[i][j] = 0; }
		for (int i = 0; i < 4; i++)
			for (int j = 0; j < 4; j++)
				for (int k = 0; k < 4; k++)
					c[i][j] += a[i][k] * b[k][j];
		int tr = 0;
		for (int i = 0; i < 4; i++) tr += c[i][i];
		return tr + 1000;
	}`},
	{"ternary_chain", `int main() {
		int s = 0;
		for (int i = 0; i < 16; i++)
			s += i < 4 ? 1 : i < 8 ? 2 : i < 12 ? 3 : 4;
		return s;
	}`},
	{"char_arith", `int main() {
		char c = 'a';
		int s = 0;
		for (int i = 0; i < 26; i++) s += c + i;
		return s;
	}`},
	{"early_return", `
	int f(int x) {
		if (x < 0) return -1;
		if (x == 0) return 0;
		return 1;
	}
	int main() { return f(-5)*100 + f(0)*10 + f(5) + 111; }`},
}

func TestSemanticsPreservedAcrossLevels(t *testing.T) {
	for _, tc := range semanticPrograms {
		t.Run(tc.name, func(t *testing.T) { checkSemanticsPreserved(t, tc.src) })
	}
}

func countOp(m *ir.Module, op ir.Opcode) int {
	n := 0
	for _, f := range m.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == op {
				n++
			}
		})
	}
	return n
}

func TestMem2RegRemovesScalarTraffic(t *testing.T) {
	m := compile(t, `int main() {
		int a = 1; int b = 2; int c;
		c = a + b;
		for (int i = 0; i < 10; i++) c += i;
		return c;
	}`)
	before := countOp(m, ir.OpLoad) + countOp(m, ir.OpStore)
	if before == 0 {
		t.Fatal("O0 code should contain loads/stores")
	}
	if _, err := passes.RunPass(m, "mem2reg"); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR after mem2reg: %v\n%s", err, m.String())
	}
	after := countOp(m, ir.OpLoad) + countOp(m, ir.OpStore)
	if after != 0 {
		t.Fatalf("mem2reg left %d memory ops (had %d):\n%s", after, before, m.String())
	}
	if countOp(m, ir.OpPhi) == 0 {
		t.Fatal("expected phi nodes for the loop-carried variable")
	}
	ret, _ := runMod(t, m)
	if ret != 48 {
		t.Fatalf("ret = %d, want 48", ret)
	}
}

func TestMem2RegSkipsEscapedAllocas(t *testing.T) {
	m := compile(t, `
	void set(int *p) { *p = 9; }
	int main() { int x = 1; set(&x); return x; }`)
	if _, err := passes.RunPass(m, "mem2reg"); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	ret, _ := runMod(t, m)
	if ret != 9 {
		t.Fatalf("escaped alloca mispromoted: ret = %d, want 9", ret)
	}
}

func TestSCCPFoldsConstantBranches(t *testing.T) {
	m := compile(t, `int main() {
		int x = 3;
		if (x * 2 == 6) return 10;
		return 20;
	}`)
	if _, err := passes.RunPass(m, "mem2reg"); err != nil {
		t.Fatal(err)
	}
	if _, err := passes.RunPass(m, "sccp"); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	if got := countOp(m, ir.OpCondBr); got != 0 {
		t.Fatalf("sccp left %d conditional branches:\n%s", got, m.String())
	}
	ret, _ := runMod(t, m)
	if ret != 10 {
		t.Fatalf("ret = %d, want 10", ret)
	}
}

func TestSCCPThroughPhis(t *testing.T) {
	// Both arms assign the same constant, so the phi is constant and the
	// comparison below folds.
	m := compile(t, `int main() {
		int x;
		if (input()) x = 5; else x = 5;
		if (x == 5) return 1;
		return 2;
	}`)
	if _, err := passes.RunPass(m, "mem2reg"); err != nil {
		t.Fatal(err)
	}
	if _, err := passes.RunPass(m, "sccp"); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m)
	res, err := interp.Run(m, interp.Options{Input: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1 {
		t.Fatalf("ret = %d, want 1", res.Ret)
	}
	// The x == 5 comparison must be gone even though input() is unknown;
	// the icmp that remains is the truthiness test on input() itself.
	found := false
	m.Func("main").ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpICmp && in.Pred == ir.CmpEQ {
			found = true
		}
	})
	if found {
		t.Fatalf("comparison against constant phi not folded:\n%s", m.String())
	}
}

func TestDCERemovesDeadChains(t *testing.T) {
	m := ir.NewModule("dce")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"x"}, []*ir.Type{ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	d1 := bd.Add(f.Params[0], ir.ConstInt(ir.I64, 1))
	bd.Mul(d1, d1) // dead chain
	live := bd.Add(f.Params[0], ir.ConstInt(ir.I64, 2))
	bd.Ret(live)
	if !passes.DCE(f) {
		t.Fatal("DCE found nothing")
	}
	mustVerify(t, m)
	if f.NumInstrs() != 2 {
		t.Fatalf("expected 2 instructions left, have %d:\n%s", f.NumInstrs(), f.String())
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := compile(t, `int main() { print(7); return 0; }`)
	passes.DCE(m.Func("main"))
	mustVerify(t, m)
	_, out := runMod(t, m)
	if out != "7\n" {
		t.Fatalf("DCE removed a call with side effects; output %q", out)
	}
}

func TestInstCombineIdentities(t *testing.T) {
	m := ir.NewModule("ic")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"x"}, []*ir.Type{ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	v := bd.Add(f.Params[0], ir.ConstInt(ir.I64, 0)) // x + 0
	v2 := bd.Mul(v, ir.ConstInt(ir.I64, 1))          // x * 1
	v3 := bd.Sub(v2, f.Params[0])                    // x - x = 0
	v4 := bd.Add(v3, f.Params[0])                    // 0 + x
	bd.Ret(v4)
	passes.InstCombine(f)
	passes.DCE(f)
	mustVerify(t, m)
	if f.NumInstrs() != 1 {
		t.Fatalf("expected only ret left:\n%s", f.String())
	}
	ret := f.Entry().Term()
	if ret.Args[0] != ir.Value(f.Params[0]) {
		t.Fatalf("f(x) should reduce to x:\n%s", f.String())
	}
}

// TestInstCombineUndoesMBA verifies the inverse rules for O-LLVM's
// instruction substitution identities.
func TestInstCombineUndoesMBA(t *testing.T) {
	build := func(emit func(bd *ir.Builder, a, b ir.Value) ir.Value) *ir.Function {
		m := ir.NewModule("mba")
		f := m.Add(ir.NewFunction("f", ir.I64, []string{"a", "b"}, []*ir.Type{ir.I64, ir.I64}))
		blk := f.NewBlock("entry")
		bd := ir.NewBuilder(blk)
		bd.Ret(emit(bd, f.Params[0], f.Params[1]))
		return f
	}
	cases := []struct {
		name string
		emit func(bd *ir.Builder, a, b ir.Value) ir.Value
		want ir.Opcode
	}{
		{"xor_plus_2and", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			x := bd.Xor(a, b)
			n := bd.And(a, b)
			s := bd.Binary(ir.OpShl, n, ir.ConstInt(ir.I64, 1))
			return bd.Add(x, s)
		}, ir.OpAdd},
		{"or_plus_and", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			o := bd.Or(a, b)
			n := bd.And(a, b)
			return bd.Add(o, n)
		}, ir.OpAdd},
		{"sub_via_neg", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			neg := bd.Sub(ir.ConstInt(ir.I64, 0), b)
			return bd.Add(a, neg)
		}, ir.OpSub},
		{"and_via_xornot", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			nb := bd.Xor(b, ir.ConstInt(ir.I64, -1))
			x := bd.Xor(a, nb)
			return bd.And(x, a)
		}, ir.OpAnd},
		{"or_via_and_xor", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			n := bd.And(a, b)
			x := bd.Xor(a, b)
			return bd.Or(n, x)
		}, ir.OpOr},
		{"xor_via_nots", func(bd *ir.Builder, a, b ir.Value) ir.Value {
			na := bd.Xor(a, ir.ConstInt(ir.I64, -1))
			nb := bd.Xor(b, ir.ConstInt(ir.I64, -1))
			l := bd.And(na, b)
			r := bd.And(a, nb)
			return bd.Or(l, r)
		}, ir.OpXor},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := build(tc.emit)
			passes.InstCombine(f)
			passes.DCE(f)
			mustVerify(t, f.Mod)
			if f.NumInstrs() != 2 {
				t.Fatalf("expected [op, ret], got:\n%s", f.String())
			}
			op := f.Entry().Instrs[0].Op
			if op != tc.want {
				t.Fatalf("reduced to %s, want %s:\n%s", op, tc.want, f.String())
			}
			// Verify semantics on sample inputs.
			mach, err := interp.NewMachine(f.Mod, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, pair := range [][2]int64{{3, 5}, {-7, 11}, {0, 0}, {123456, -987654}} {
				got, err := mach.Call("f", interp.Val{I: pair[0]}, interp.Val{I: pair[1]})
				if err != nil {
					t.Fatal(err)
				}
				var want int64
				switch tc.want {
				case ir.OpAdd:
					want = pair[0] + pair[1]
				case ir.OpSub:
					want = pair[0] - pair[1]
				case ir.OpAnd:
					want = pair[0] & pair[1]
				case ir.OpOr:
					want = pair[0] | pair[1]
				case ir.OpXor:
					want = pair[0] ^ pair[1]
				}
				if got.I != want {
					t.Fatalf("f(%d,%d) = %d, want %d", pair[0], pair[1], got.I, want)
				}
			}
		})
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	m := compile(t, `int main() {
		int x = input();
		int r;
		if (x > 0) { r = 1; } else { r = 2; }
		return r;
	}`)
	passes.Mem2Reg(m.Func("main"))
	passes.SimplifyCFG(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid after simplifycfg: %v", err)
	}
	// Diamond should remain (condition is runtime), but each arm is just a
	// jump, so the function should have collapsed to at most 4 blocks.
	if n := len(m.Func("main").Blocks); n > 4 {
		t.Fatalf("too many blocks after simplifycfg: %d\n%s", n, m.String())
	}
	res, err := interp.Run(m, interp.Options{Input: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 1 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestGVNEliminatesRedundancy(t *testing.T) {
	m := ir.NewModule("gvn")
	f := m.Add(ir.NewFunction("f", ir.I64, []string{"a", "b"}, []*ir.Type{ir.I64, ir.I64}))
	b := f.NewBlock("entry")
	bd := ir.NewBuilder(b)
	x := bd.Add(f.Params[0], f.Params[1])
	y := bd.Add(f.Params[1], f.Params[0]) // commuted duplicate
	z := bd.Mul(x, y)
	bd.Ret(z)
	passes.GVN(f)
	mustVerify(t, m)
	if f.NumInstrs() != 3 {
		t.Fatalf("commuted add not value-numbered:\n%s", f.String())
	}
	mul := f.Entry().Instrs[1]
	if mul.Args[0] != mul.Args[1] {
		t.Fatalf("mul operands should be the same value:\n%s", f.String())
	}
}

func TestGVNRespectsDominance(t *testing.T) {
	// The same expression in two sibling branches must NOT be unified.
	m := compile(t, `int main() {
		int x = input();
		int r;
		if (x > 0) r = x * 3; else r = x * 3 + 1;
		return r;
	}`)
	passes.Mem2Reg(m.Func("main"))
	passes.GVN(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("GVN broke dominance: %v\n%s", err, m.String())
	}
	res, err := interp.Run(m, interp.Options{Input: []int64{-2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != -5 {
		t.Fatalf("ret = %d, want -5", res.Ret)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	m := compile(t, `int main() {
		int n = input();
		int s = 0;
		for (int i = 0; i < 100; i++) {
			s += n * n;
		}
		return s;
	}`)
	f := m.Func("main")
	passes.Mem2Reg(f)
	passes.LICM(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("LICM broke IR: %v\n%s", err, m.String())
	}
	// n*n must now be outside the loop: check the mul is not in any loop.
	dt := ir.NewDomTree(f)
	loops := dt.NaturalLoops()
	for _, l := range loops {
		for b := range l.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMul {
					t.Fatalf("mul still inside loop:\n%s", f.String())
				}
			}
		}
	}
	res, err := interp.Run(m, interp.Options{Input: []int64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 900 {
		t.Fatalf("ret = %d, want 900", res.Ret)
	}
}

func TestInlineSmallFunctions(t *testing.T) {
	m := compile(t, `
	int sq(int x) { return x * x; }
	int main() { return sq(3) + sq(4); }`)
	if !passes.Inline(m, 60) {
		t.Fatal("nothing inlined")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("inline broke IR: %v\n%s", err, m.String())
	}
	calls := countOp(m, ir.OpCall)
	if calls != 0 {
		t.Fatalf("%d calls remain after inlining:\n%s", calls, m.String())
	}
	ret, _ := runMod(t, m)
	if ret != 25 {
		t.Fatalf("ret = %d, want 25", ret)
	}
}

func TestInlineSkipsRecursive(t *testing.T) {
	m := compile(t, `
	int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
	int main() { return fact(5); }`)
	passes.Inline(m, 1000)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ret, _ := runMod(t, m)
	if ret != 120 {
		t.Fatalf("ret = %d, want 120", ret)
	}
	if countOp(m, ir.OpCall) == 0 {
		t.Fatal("recursive function should not be fully inlined")
	}
}

func TestO3ShrinksDynamicInstructionCount(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 200; i++) {
			int a = i * 2;
			int b = i * 2;
			s += a + b - a;
		}
		return s % 1000;
	}`
	m0 := compile(t, src)
	r0, err := interp.Run(m0, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m3 := compile(t, src)
	if err := passes.Optimize(m3, passes.O3); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, m3)
	r3, err := interp.Run(m3, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Ret != r0.Ret {
		t.Fatalf("O3 changed result: %d vs %d", r3.Ret, r0.Ret)
	}
	if r3.Steps >= r0.Steps {
		t.Fatalf("O3 did not speed up: %d -> %d steps", r0.Steps, r3.Steps)
	}
	if float64(r3.Steps) > 0.7*float64(r0.Steps) {
		t.Fatalf("O3 speedup too small: %d -> %d steps", r0.Steps, r3.Steps)
	}
}

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"O0", "O1", "O2", "O3", "-O2", "3"} {
		if _, err := passes.ParseLevel(s); err != nil {
			t.Errorf("ParseLevel(%q): %v", s, err)
		}
	}
	if _, err := passes.ParseLevel("O9"); err == nil {
		t.Error("ParseLevel(O9) should fail")
	}
}

// TestRandomProgramsPreserved is a lightweight property test: random
// straight-line+loop programs must behave identically at every level.
func TestRandomProgramsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 30; trial++ {
		src := randomProgram(rng)
		base := compile(t, src)
		want, err := interp.Run(base, interp.Options{})
		if err != nil {
			t.Fatalf("trial %d: base run: %v\n%s", trial, err, src)
		}
		for _, lvl := range []passes.Level{passes.O1, passes.O2, passes.O3} {
			m := compile(t, src)
			if err := passes.Optimize(m, lvl); err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, lvl, err, src)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("trial %d %s: invalid IR: %v\nsource:\n%s", trial, lvl, err, src)
			}
			got, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d %s run: %v\n%s", trial, lvl, err, src)
			}
			if got.Ret != want.Ret {
				t.Fatalf("trial %d %s: ret %d, want %d\nsource:\n%s\nIR:\n%s",
					trial, lvl, got.Ret, want.Ret, src, m.String())
			}
		}
	}
}

// randomProgram emits a small random MiniC program using int arithmetic,
// branches and bounded loops.
func randomProgram(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	vars := []string{"a", "b", "c"}
	for i, v := range vars {
		fmt.Fprintf(&sb, "  int %s = %d;\n", v, rng.Intn(21)-10+i)
	}
	nstmt := 4 + rng.Intn(5)
	for i := 0; i < nstmt; i++ {
		v := vars[rng.Intn(len(vars))]
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "  %s = %s %s %d;\n", v, vars[rng.Intn(len(vars))],
				[]string{"+", "-", "*", "^", "&", "|"}[rng.Intn(6)], rng.Intn(9)+1)
		case 1:
			fmt.Fprintf(&sb, "  if (%s %s %d) { %s += %d; } else { %s -= %d; }\n",
				vars[rng.Intn(len(vars))], []string{"<", ">", "==", "!="}[rng.Intn(4)],
				rng.Intn(10), v, rng.Intn(5), v, rng.Intn(5))
		case 2:
			fmt.Fprintf(&sb, "  for (int i%d = 0; i%d < %d; i%d++) { %s += i%d; }\n",
				i, i, rng.Intn(8)+1, i, v, i)
		case 3:
			fmt.Fprintf(&sb, "  %s = (%s * %d + %s) %% 1000;\n", v,
				vars[rng.Intn(len(vars))], rng.Intn(7)+1, vars[rng.Intn(len(vars))])
		}
	}
	sb.WriteString("  int r = (a ^ b) + c;\n  return r % 100000;\n}\n")
	return sb.String()
}

// TestDebugModePinpointsPassBreakage runs the full pipeline with per-pass
// verification enabled over a battery of programs; any pass that emits
// invalid IR panics with its own name.
func TestDebugModePinpointsPassBreakage(t *testing.T) {
	passes.Debug = true
	defer func() { passes.Debug = false }()
	for _, tc := range semanticPrograms {
		m := compile(t, tc.src)
		if err := passes.Optimize(m, passes.O3); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestTortureProgram drives every language feature through every
// optimization level at once.
func TestTortureProgram(t *testing.T) {
	checkSemanticsPreserved(t, `
	struct Stats { int n; float mean; };
	int fibs[16];
	int fib(int n) {
		if (n < 2) return n;
		if (fibs[n]) return fibs[n];
		fibs[n] = fib(n - 1) + fib(n - 2);
		return fibs[n];
	}
	void observe(struct Stats *s, float x) {
		s->n++;
		s->mean += (x - s->mean) / s->n;
	}
	int main() {
		struct Stats st;
		st.n = 0;
		st.mean = 0.0;
		char tag[4];
		tag[0] = 'o'; tag[1] = 'k'; tag[2] = 0;
		int acc = 0;
		for (int i = 0; i < 14; i++) {
			observe(&st, fib(i) * 1.0);
			switch (i % 4) {
			case 0: acc += fib(i); break;
			case 1: acc ^= i << 2; break;
			case 2: acc -= tag[i % 2]; break;
			default: acc = acc * 3 % 10007;
			}
		}
		int code = st.n * 1000 + (int)st.mean;
		return (acc + code) % 1000000007;
	}`)
}
