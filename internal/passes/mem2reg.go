package passes

import (
	"repro/internal/ir"
)

// Mem2Reg promotes allocas whose address never escapes into SSA values,
// inserting phi nodes at iterated dominance frontiers — the standard
// SSA-construction algorithm. This is the single most consequential
// normalization in the arena: it erases the load/store traffic that both
// clang -O0 output and source-level obfuscation (Zhang et al.'s transforms)
// rely on, which is why the paper finds those evaders dissolve under
// optimization.
func Mem2Reg(f *ir.Function) bool {
	// Unreachable blocks would be skipped by the dominator-tree walk and
	// leave stale loads behind; drop them first.
	f.RemoveUnreachable()
	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return false
	}
	dt := ir.NewDomTree(f)
	df := dt.Frontiers()
	preds := f.Preds()

	// Insert phis at the iterated dominance frontier of each alloca's
	// store blocks.
	phiFor := make(map[*ir.Instr]*ir.Instr) // phi -> alloca
	for _, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1] == a {
					defBlocks[b] = true
				}
			}
		}
		placed := make(map[*ir.Block]bool)
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		// Deterministic order.
		sortBlocks(work, dt)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: a.AllocaTy, Parent: fb}
				fb.InsertBefore(0, phi)
				phiFor[phi] = a
				if !defBlocks[fb] {
					defBlocks[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Rename along the dominator tree.
	isAlloca := make(map[*ir.Instr]bool, len(allocas))
	for _, a := range allocas {
		isAlloca[a] = true
	}
	var rename func(b *ir.Block, incoming map[*ir.Instr]ir.Value)
	rename = func(b *ir.Block, incoming map[*ir.Instr]ir.Value) {
		local := incoming
		// Copy-on-write: only clone the map when this block writes.
		cloned := false
		ensure := func() {
			if !cloned {
				nm := make(map[*ir.Instr]ir.Value, len(local))
				for k, v := range local {
					nm[k] = v
				}
				local = nm
				cloned = true
			}
		}
		var dead []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				if a, ok := phiFor[in]; ok {
					ensure()
					local[a] = in
				}
			case ir.OpLoad:
				if a, ok := in.Args[0].(*ir.Instr); ok && isAlloca[a] {
					v := local[a]
					if v == nil {
						v = zeroValue(a.AllocaTy)
					}
					f.ReplaceUses(in, v)
					// Phi operands of other blocks may still reference the
					// load; the ReplaceUses above covers the whole function.
					dead = append(dead, in)
				}
			case ir.OpStore:
				if a, ok := in.Args[1].(*ir.Instr); ok && isAlloca[a] {
					ensure()
					local[a] = in.Args[0]
					dead = append(dead, in)
				}
			}
		}
		// Fill in phi operands of successors.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				a, ok := phiFor[phi]
				if !ok {
					continue
				}
				v := local[a]
				if v == nil {
					v = zeroValue(a.AllocaTy)
				}
				// One incoming entry per CFG edge from b.
				for _, p := range preds[s] {
					if p == b {
						phi.Blocks = append(phi.Blocks, b)
						phi.Args = append(phi.Args, v)
					}
				}
			}
		}
		for _, child := range dt.Children[b] {
			rename(child, local)
		}
		for _, in := range dead {
			b.Remove(in)
		}
	}
	rename(f.Entry(), make(map[*ir.Instr]ir.Value))

	// Remove the allocas themselves.
	for _, a := range allocas {
		if !f.HasUses(a) {
			a.Parent.Remove(a)
		}
	}
	// Prune trivial phis (single unique incoming value), which the IDF
	// placement can over-approximate.
	prunePhis(f)
	return true
}

func sortBlocks(bs []*ir.Block, dt *ir.DomTree) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && dt.Order[bs[j]] < dt.Order[bs[j-1]]; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// promotableAllocas returns allocas of scalar type whose address is used
// only by loads and by stores that write *through* it (never stores of the
// pointer itself, casts, GEPs or calls).
func promotableAllocas(f *ir.Function) []*ir.Instr {
	var out []*ir.Instr
	var cands []*ir.Instr
	bad := make(map[*ir.Instr]bool)
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca && !in.AllocaTy.IsArray() && !in.AllocaTy.IsStruct() {
			cands = append(cands, in)
		}
	})
	if len(cands) == 0 {
		return nil
	}
	isCand := make(map[*ir.Instr]bool, len(cands))
	for _, a := range cands {
		isCand[a] = true
	}
	f.ForEachInstr(func(in *ir.Instr) {
		for i, arg := range in.Args {
			a, ok := arg.(*ir.Instr)
			if !ok || !isCand[a] {
				continue
			}
			switch {
			case in.Op == ir.OpLoad:
				// ok
			case in.Op == ir.OpStore && i == 1:
				// Storing through the alloca: ok. Storing the alloca's
				// address somewhere (i == 0) escapes it.
			default:
				bad[a] = true
			}
		}
	})
	for _, a := range cands {
		if !bad[a] {
			out = append(out, a)
		}
	}
	return out
}

func zeroValue(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return ir.ConstFloat(0)
	case t.IsPtr():
		return ir.ConstNull(t)
	default:
		return ir.ConstInt(t, 0)
	}
}

// prunePhis removes phi nodes that are trivial: all incoming values equal
// (or equal to the phi itself). Iterates to a fixpoint since removing one
// phi can make another trivial.
func prunePhis(f *ir.Function) bool {
	changed := false
	for {
		again := false
		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				var uniq ir.Value
				trivial := true
				for _, v := range phi.Args {
					if v == phi {
						continue
					}
					if uniq == nil {
						uniq = v
					} else if uniq != v {
						trivial = false
						break
					}
				}
				if !trivial || uniq == nil {
					continue
				}
				f.ReplaceUses(phi, uniq)
				b.Remove(phi)
				again, changed = true, true
			}
		}
		if !again {
			return changed
		}
	}
}
