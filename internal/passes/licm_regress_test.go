package passes_test

import (
	"testing"

	"repro/internal/minic"
	"repro/internal/passes"
)

// Found by the differential fuzzer (difftest seed 5069): LICM created a
// preheader for the inner do-while loop, but the outer for loop's body set
// predated that block, so a computation using the inner preheader's sext
// was treated as outer-loop-invariant and hoisted into the entry block,
// above its operand's definition. The nested-loop shape below reproduces
// the dominance violation byte-for-byte.
const licmNestedPreheaderSrc = `int ga2[5];
int main() {
  int v5 = 4;
  char c7 = 'm';
  c7 ^= ga2[3];
  for (int i8 = 0; (i8 < 10); i8++)
  {
    int d9 = 0;
    do
    {
      v5 = (c7 ^ v5);
      d9++;
    }
    while (d9);
    if ((c7 + 1))
    {
      print(i8);
    }
  }
}
`

func TestLICMNestedPreheaderDominance(t *testing.T) {
	m, err := minic.CompileSource(licmNestedPreheaderSrc, "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m, passes.O3); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// The same shape through LICM alone (after mem2reg exposes the registers),
// pinning the pass-level fix rather than the pipeline symptom.
func TestLICMNestedPreheaderDominanceSolo(t *testing.T) {
	m, err := minic.CompileSource(licmNestedPreheaderSrc, "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"mem2reg", "gvn", "licm"} {
		if _, err := passes.RunPass(m, p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("after %s: %v", p, err)
		}
	}
	var ok bool
	for _, f := range m.Functions {
		if f.Name == "main" && len(f.Blocks) > 1 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("main lost its control flow")
	}
}
