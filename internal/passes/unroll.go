package passes

import "repro/internal/ir"

// unrollBudget bounds the total instructions materialized per loop.
const unrollBudget = 600

// maxTripSim bounds the trip-count simulation.
const maxTripSim = 4096

// UnrollLoops fully unrolls small counted loops of the canonical two-block
// shape produced by mem2reg + SimplifyCFG:
//
//	P:  ... br H                      (unique predecessor outside the loop)
//	H:  %i = phi [init, P], [%next, B] ; ... ; %c = icmp pred %i, K ; condbr %c, ...
//	B:  ...body... ; %next = add %i, step ; br H
//
// When the trip count is a small compile-time constant, the loop becomes a
// straight line: n copies of (header tail + body), one final header tail
// (the failing check — headers run trip+1 times), and a jump to the exit.
// Constant-input loops then collapse entirely under SCCP; variable-input
// loops still shed their per-iteration compare/branch/phi overhead — a
// large share of the dynamic-instruction savings the paper attributes to
// clang -O3.
func UnrollLoops(f *ir.Function) bool {
	changed := false
	for {
		f.RemoveUnreachable()
		dt := ir.NewDomTree(f)
		loops := dt.NaturalLoops()
		done := true
		for _, l := range loops {
			if tryUnroll(f, l, dt) {
				changed = true
				done = false
				break // CFG changed; recompute analyses
			}
		}
		if done {
			return changed
		}
	}
}

// loopShape is the decoded canonical loop.
type loopShape struct {
	pre      *ir.Block // unique outside predecessor
	header   *ir.Block
	body     *ir.Block
	exit     *ir.Block
	iv       *ir.Instr // induction phi
	ivNext   *ir.Instr // add/sub in body
	step     int64
	init     int64
	bound    int64
	pred     ir.CmpPred
	bodyTrue bool // condbr's true edge goes to the body
	trip     int
}

func tryUnroll(f *ir.Function, l *ir.Loop, dt *ir.DomTree) bool {
	sh, ok := matchLoop(f, l)
	if !ok {
		return false
	}
	size := len(sh.header.Instrs) + len(sh.body.Instrs)
	if sh.trip*size > unrollBudget {
		return false
	}
	// Bail out when a body-defined value is used outside the loop: such a
	// use could only be reached through the header phis anyway, and
	// rejecting keeps the rewrite logic simple and obviously safe.
	inLoop := map[*ir.Block]bool{sh.header: true, sh.body: true}
	bodyDefs := map[*ir.Instr]bool{}
	for _, in := range sh.body.Instrs {
		bodyDefs[in] = true
	}
	escaped := false
	f.ForEachInstr(func(u *ir.Instr) {
		if inLoop[u.Parent] {
			return
		}
		for _, a := range u.Args {
			if d, ok := a.(*ir.Instr); ok && bodyDefs[d] {
				escaped = true
			}
		}
	})
	if escaped {
		return false
	}

	phis := sh.header.Phis()
	// Current value of each header phi, starting at the preheader inputs.
	cur := make(map[*ir.Instr]ir.Value, len(phis))
	for _, phi := range phis {
		cur[phi] = phi.PhiIncoming(sh.pre)
		if cur[phi] == nil {
			return false
		}
	}

	u := f.InsertBlockAfter(sh.pre, sh.header.Label()+".unroll")
	headerTail := sh.header.Instrs[sh.header.FirstNonPhi():]
	headerTail = headerTail[:len(headerTail)-1] // drop the condbr
	bodyInstrs := sh.body.Instrs[:len(sh.body.Instrs)-1]

	// mapVal resolves an operand through the per-iteration clone map and
	// the running phi values.
	cloneSeq := func(src []*ir.Instr, m map[*ir.Instr]ir.Value) {
		for _, in := range src {
			ni := &ir.Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred, Callee: in.Callee,
				Builtin: in.Builtin, AllocaTy: in.AllocaTy,
			}
			for _, a := range in.Args {
				if d, ok := a.(*ir.Instr); ok {
					if v, ok := m[d]; ok {
						ni.Args = append(ni.Args, v)
						continue
					}
				}
				ni.Args = append(ni.Args, a)
			}
			u.Append(ni)
			m[in] = ni
		}
	}

	var lastHeaderMap map[*ir.Instr]ir.Value
	for iter := 0; iter < sh.trip; iter++ {
		m := make(map[*ir.Instr]ir.Value, size)
		for phi, v := range cur {
			m[phi] = v
		}
		cloneSeq(headerTail, m)
		cloneSeq(bodyInstrs, m)
		// Advance the phis using the latch-edge operands.
		next := make(map[*ir.Instr]ir.Value, len(phis))
		for _, phi := range phis {
			inc := phi.PhiIncoming(sh.body)
			if d, ok := inc.(*ir.Instr); ok {
				if v, ok := m[d]; ok {
					next[phi] = v
					continue
				}
			}
			next[phi] = inc
		}
		cur = next
	}
	// The final header execution (check fails, loop exits).
	lastHeaderMap = make(map[*ir.Instr]ir.Value, len(headerTail)+len(phis))
	for phi, v := range cur {
		lastHeaderMap[phi] = v
	}
	cloneSeq(headerTail, lastHeaderMap)
	ir.NewBuilder(u).Br(sh.exit)

	// Rewire: the preheader enters the unrolled block.
	sh.pre.Term().RedirectTarget(sh.header, u)
	// The exit's phis now come from u, with values mapped through the
	// final header clone.
	for _, phi := range sh.exit.Phis() {
		for i, blk := range phi.Blocks {
			if blk != sh.header {
				continue
			}
			phi.Blocks[i] = u
			if d, ok := phi.Args[i].(*ir.Instr); ok {
				if v, ok := lastHeaderMap[d]; ok {
					phi.Args[i] = v
				}
			}
		}
	}
	// Outside uses of header-defined values: phis take their final value,
	// header-tail instructions their final clone.
	f.ForEachInstr(func(usr *ir.Instr) {
		if usr.Parent == sh.header || usr.Parent == sh.body {
			return
		}
		for i, a := range usr.Args {
			d, ok := a.(*ir.Instr)
			if !ok || d.Parent != sh.header {
				continue
			}
			if v, ok := lastHeaderMap[d]; ok {
				usr.Args[i] = v
			}
		}
	})
	// Drop the old loop.
	f.RemoveUnreachable()
	return true
}

// matchLoop decodes the canonical counted-loop shape, or fails.
func matchLoop(f *ir.Function, l *ir.Loop) (loopShape, bool) {
	var sh loopShape
	if len(l.Blocks) != 2 || len(l.Latches) != 1 {
		return sh, false
	}
	sh.header = l.Header
	sh.body = l.Latches[0]
	if sh.body == sh.header || !l.Blocks[sh.body] {
		return sh, false
	}
	bt := sh.body.Term()
	if bt == nil || bt.Op != ir.OpBr || bt.Blocks[0] != sh.header {
		return sh, false
	}
	ht := sh.header.Term()
	if ht == nil || ht.Op != ir.OpCondBr {
		return sh, false
	}
	switch {
	case ht.Blocks[0] == sh.body && !l.Blocks[ht.Blocks[1]]:
		sh.bodyTrue, sh.exit = true, ht.Blocks[1]
	case ht.Blocks[1] == sh.body && !l.Blocks[ht.Blocks[0]]:
		sh.bodyTrue, sh.exit = false, ht.Blocks[0]
	default:
		return sh, false
	}
	// Unique outside predecessor of the header.
	preds := f.Preds()
	var outside []*ir.Block
	for _, p := range preds[sh.header] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		return sh, false
	}
	sh.pre = outside[0]
	// The exit must not have the body as another predecessor, and the
	// header must be its only in-loop predecessor (true by construction
	// here since the body only branches to the header).

	// Decode the exit condition: icmp(iv, const) in the header.
	cmp, ok := ht.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.Parent != sh.header {
		return sh, false
	}
	ivPhi, cok := cmp.Args[0].(*ir.Instr)
	boundC, bok := cmp.Args[1].(*ir.Const)
	pred := cmp.Pred
	if !cok || !bok {
		// Try the swapped orientation: const on the left.
		boundC, bok = cmp.Args[0].(*ir.Const)
		ivPhi, cok = cmp.Args[1].(*ir.Instr)
		if !cok || !bok {
			return sh, false
		}
		pred = pred.Swapped()
	}
	if ivPhi.Op != ir.OpPhi || ivPhi.Parent != sh.header || boundC.Ty.IsFloat() {
		return sh, false
	}
	sh.iv, sh.bound, sh.pred = ivPhi, boundC.I, pred

	initV := ivPhi.PhiIncoming(sh.pre)
	initC, ok := initV.(*ir.Const)
	if !ok || initC.Ty.IsFloat() {
		return sh, false
	}
	sh.init = initC.I
	nextV := ivPhi.PhiIncoming(sh.body)
	next, ok := nextV.(*ir.Instr)
	if !ok || next.Parent != sh.body {
		return sh, false
	}
	stepC, ok := stepOf(next, ivPhi)
	if !ok {
		return sh, false
	}
	sh.ivNext, sh.step = next, stepC

	// Simulate the trip count.
	k := sh.init
	trip := 0
	for {
		taken := evalICmp(sh.pred, k, sh.bound)
		if taken != sh.bodyTrue {
			break
		}
		trip++
		if trip > maxTripSim {
			return sh, false
		}
		k += sh.step
	}
	if trip == 0 {
		// Folding a never-entered loop is SimplifyCFG's job.
		return sh, false
	}
	sh.trip = trip
	return sh, true
}

// stepOf decodes next = iv + c or next = iv - c.
func stepOf(next *ir.Instr, iv *ir.Instr) (int64, bool) {
	if next.Op != ir.OpAdd && next.Op != ir.OpSub {
		return 0, false
	}
	if next.Args[0] != ir.Value(iv) {
		if next.Op == ir.OpAdd && next.Args[1] == ir.Value(iv) {
			if c, ok := next.Args[0].(*ir.Const); ok && !c.Ty.IsFloat() {
				return c.I, true
			}
		}
		return 0, false
	}
	c, ok := next.Args[1].(*ir.Const)
	if !ok || c.Ty.IsFloat() {
		return 0, false
	}
	if next.Op == ir.OpSub {
		return -c.I, true
	}
	return c.I, true
}
