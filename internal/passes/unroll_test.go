package passes_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/passes"
)

func prepUnroll(t *testing.T, src string) *ir.Module {
	t.Helper()
	m := compile(t, src)
	// Canonicalize into the two-block loop shape first.
	for _, p := range []string{"mem2reg", "instcombine", "simplifycfg"} {
		if _, err := passes.RunPass(m, p); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestUnrollConstantLoopFoldsAway(t *testing.T) {
	m := prepUnroll(t, `int main() {
		int s = 0;
		for (int i = 0; i < 10; i++) s += i;
		return s;
	}`)
	if !passes.UnrollLoops(m.Func("main")) {
		t.Fatalf("loop not unrolled:\n%s", m.String())
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR after unroll: %v\n%s", err, m.String())
	}
	// No loop left.
	if loops := ir.NewDomTree(m.Func("main")).NaturalLoops(); len(loops) != 0 {
		t.Fatalf("loop survives unrolling:\n%s", m.String())
	}
	ret, _ := runMod(t, m)
	if ret != 45 {
		t.Fatalf("ret = %d, want 45", ret)
	}
	// With SCCP + cleanup the whole computation becomes the constant 45.
	if _, err := passes.RunPass(m, "sccp"); err != nil {
		t.Fatal(err)
	}
	passes.DCE(m.Func("main"))
	passes.SimplifyCFG(m.Func("main"))
	if n := m.Func("main").NumInstrs(); n > 2 {
		t.Fatalf("constant loop did not collapse (%d instrs):\n%s", n, m.String())
	}
}

func TestUnrollVariableBody(t *testing.T) {
	// The loop bound is constant but the body folds nothing (depends on
	// input); unrolling must still preserve semantics.
	src := `int main() {
		int x = input();
		int s = 0;
		for (int i = 0; i < 8; i++) s = s * 2 + x + i;
		return s % 1000003;
	}`
	m := prepUnroll(t, src)
	if !passes.UnrollLoops(m.Func("main")) {
		t.Fatalf("loop not unrolled:\n%s", m.String())
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, m.String())
	}
	res, err := interp.Run(m, interp.Options{Input: []int64{7}})
	if err != nil {
		t.Fatal(err)
	}
	base := compile(t, src)
	want, err := interp.Run(base, interp.Options{Input: []int64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want.Ret {
		t.Fatalf("ret = %d, want %d", res.Ret, want.Ret)
	}
	if res.Steps >= want.Steps {
		t.Fatalf("unrolled code not faster: %d vs %d steps", res.Steps, want.Steps)
	}
}

func TestUnrollSkipsLargeLoops(t *testing.T) {
	m := prepUnroll(t, `int main() {
		int s = 0;
		for (int i = 0; i < 100000; i++) s += i;
		return s % 1000003;
	}`)
	f := m.Func("main")
	before := f.NumInstrs()
	passes.UnrollLoops(f)
	mustVerify(t, m)
	if f.NumInstrs() > before*4 {
		t.Fatalf("oversized loop was unrolled: %d -> %d instrs", before, f.NumInstrs())
	}
	ret, _ := runMod(t, m)
	if ret != 4999950000%1000003 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestUnrollSkipsDynamicBound(t *testing.T) {
	m := prepUnroll(t, `int main() {
		int n = input();
		int s = 0;
		for (int i = 0; i < n; i++) s += i;
		return s;
	}`)
	f := m.Func("main")
	if passes.UnrollLoops(f) {
		t.Fatalf("dynamic-bound loop unrolled:\n%s", f.String())
	}
	mustVerify(t, m)
	res, err := interp.Run(m, interp.Options{Input: []int64{6}})
	if err != nil || res.Ret != 15 {
		t.Fatalf("ret=%v err=%v", res, err)
	}
}

func TestUnrollWithCalls(t *testing.T) {
	// Calls in the body have side effects; the unrolled sequence must
	// replay them the exact number of times, in order.
	src := `
	int g = 0;
	int bump(int v) { g = g * 10 + v; return g; }
	int main() {
		for (int i = 1; i <= 4; i++) bump(i);
		return g;
	}`
	m := prepUnroll(t, src)
	passes.UnrollLoops(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	ret, _ := runMod(t, m)
	if ret != 1234 {
		t.Fatalf("ret = %d, want 1234 (calls reordered or dropped)", ret)
	}
}

func TestUnrollNestedInner(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 0; i < 6; i++)
			for (int j = 0; j < 5; j++)
				s += i * j;
		return s;
	}`
	m := prepUnroll(t, src)
	passes.UnrollLoops(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, m.String())
	}
	ret, _ := runMod(t, m)
	if ret != 150 {
		t.Fatalf("ret = %d, want 150", ret)
	}
}

func TestUnrollDownwardLoop(t *testing.T) {
	src := `int main() {
		int s = 0;
		for (int i = 9; i > 0; i--) s = s * 10 + i % 10;
		return s % 1000000007;
	}`
	m := prepUnroll(t, src)
	passes.UnrollLoops(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	want, _ := runMod(t, compile(t, src))
	got, _ := runMod(t, m)
	if got != want {
		t.Fatalf("ret = %d, want %d", got, want)
	}
}

func TestUnrollPreservesArraySemantics(t *testing.T) {
	src := `int main() {
		int a[6];
		for (int i = 0; i < 6; i++) a[i] = i * i + 1;
		int s = 0;
		for (int i = 0; i < 6; i++) s = s * 7 + a[i];
		return s % 1000000007;
	}`
	m := prepUnroll(t, src)
	passes.UnrollLoops(m.Func("main"))
	if err := m.Verify(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	want, _ := runMod(t, compile(t, src))
	got, _ := runMod(t, m)
	if got != want {
		t.Fatalf("ret = %d, want %d", got, want)
	}
}
