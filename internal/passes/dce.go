package passes

import "repro/internal/ir"

// DCE removes instructions whose results are unused and which have no side
// effects, iterating with a worklist so chains of dead code disappear in
// one call. Dead allocas with only store users are removed too (the stores
// become dead once the alloca is only written, never read).
func DCE(f *ir.Function) bool {
	changed := false
	for {
		uses := make(map[ir.Value]int)
		f.ForEachInstr(func(in *ir.Instr) {
			for _, a := range in.Args {
				uses[a]++
			}
		})
		removed := false
		// Write-only allocas found during the sweep. Their stores are
		// removed only after the sweep: removeStoresTo compacts b.Instrs
		// in place, and doing that while the loop below is mid-compaction
		// of the same backing array scrambles instruction order.
		var writeOnly []*ir.Instr
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead, dropStores := classify(in, uses, f)
				if dead {
					removed, changed = true, true
					continue
				}
				if dropStores {
					writeOnly = append(writeOnly, in)
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		for _, a := range writeOnly {
			removeStoresTo(f, a)
			// The alloca itself goes next round, once use-less.
			removed, changed = true, true
		}
		if !removed {
			return changed
		}
	}
}

// classify reports whether in is dead, and — for live write-only allocas —
// whether its stores should be dropped after the current sweep.
func classify(in *ir.Instr, uses map[ir.Value]int, f *ir.Function) (dead, dropStores bool) {
	if in.Op.HasSideEffects() || in.IsTerminator() {
		return false, false
	}
	if in.Op == ir.OpAlloca {
		// An alloca whose only uses are stores *into* it is write-only.
		onlyStores := true
		f.ForEachInstr(func(u *ir.Instr) {
			for i, a := range u.Args {
				if a != ir.Value(in) {
					continue
				}
				if !(u.Op == ir.OpStore && i == 1) {
					onlyStores = false
				}
			}
		})
		if !onlyStores {
			return false, false
		}
		if uses[in] > 0 {
			return false, true
		}
		return true, false
	}
	return uses[in] == 0, false
}

func removeStoresTo(f *ir.Function, a *ir.Instr) {
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.Args[1] == ir.Value(a) {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}
