package passes

import "repro/internal/ir"

// DCE removes instructions whose results are unused and which have no side
// effects, iterating with a worklist so chains of dead code disappear in
// one call. Dead allocas with only store users are removed too (the stores
// become dead once the alloca is only written, never read).
func DCE(f *ir.Function) bool {
	changed := false
	for {
		uses := make(map[ir.Value]int)
		f.ForEachInstr(func(in *ir.Instr) {
			for _, a := range in.Args {
				uses[a]++
			}
		})
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if isDead(in, uses, f) {
					removed, changed = true, true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removed {
			return changed
		}
	}
}

func isDead(in *ir.Instr, uses map[ir.Value]int, f *ir.Function) bool {
	if in.Op.HasSideEffects() || in.IsTerminator() {
		return false
	}
	if in.Op == ir.OpAlloca {
		// An alloca whose only uses are stores *into* it is write-only.
		onlyStores := true
		f.ForEachInstr(func(u *ir.Instr) {
			for i, a := range u.Args {
				if a != ir.Value(in) {
					continue
				}
				if !(u.Op == ir.OpStore && i == 1) {
					onlyStores = false
				}
			}
		})
		if !onlyStores {
			return false
		}
		if uses[in] > 0 {
			// Remove the dead stores first; the alloca goes next round.
			removeStoresTo(f, in)
			return false
		}
		return true
	}
	return uses[in] == 0
}

func removeStoresTo(f *ir.Function, a *ir.Instr) {
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.Args[1] == ir.Value(a) {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}
