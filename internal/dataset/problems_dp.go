package dataset

import "fmt"

// dpGraphProblems: dynamic programming and graph tasks (15 problems).
func dpGraphProblems() []Problem {
	return []Problem{
		{Name: "lcs_length", Gen: func(g *gen) string {
			n := g.size(8, 16)
			a, b, dp := g.v("arr"), g.v("arr"), g.v("arr")
			i, j := g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s[20][20];
for (int %s = 0; %s <= %d; %s++) { %s[%s][0] = 0; %s[0][%s] = 0; }
%s`,
				g.fillString(a, n, g.seed()),
				g.fillString(b, n, g.seed()+7),
				dp,
				i, i, n, i, dp, i, dp, i,
				g.loopFrom(i, "1", fmt.Sprintf("%d + 1", n),
					g.loopFrom(j, "1", fmt.Sprintf("%d + 1", n), fmt.Sprintf(
						`if (%s[%s - 1] == %s[%s - 1]) %s[%s][%s] = %s[%s - 1][%s - 1] + 1;
else %s[%s][%s] = %s[%s - 1][%s] > %s[%s][%s - 1] ? %s[%s - 1][%s] : %s[%s][%s - 1];`,
						a, i, b, j, dp, i, j, dp, i, j,
						dp, i, j, dp, i, j, dp, i, j, dp, i, j, dp, i, j))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d][%d] * 9 + 1", dp, n, n))
		}},
		{Name: "edit_distance", Gen: func(g *gen) string {
			n := g.size(8, 14)
			a, b, dp := g.v("arr"), g.v("arr"), g.v("arr")
			i, j, c := g.v("idx"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
%s
int %s[18][18];
for (int %s = 0; %s <= %d; %s++) { %s[%s][0] = %s; %s[0][%s] = %s; }
%s`,
				g.fillString(a, n, g.seed()),
				g.fillString(b, n, g.seed()+13),
				dp,
				i, i, n, i, dp, i, i, dp, i, i,
				g.loopFrom(i, "1", fmt.Sprintf("%d + 1", n),
					g.loopFrom(j, "1", fmt.Sprintf("%d + 1", n), fmt.Sprintf(
						`int %s = 1;
if (%s[%s - 1] == %s[%s - 1]) %s = 0;
int best = %s[%s - 1][%s - 1] + %s;
if (%s[%s - 1][%s] + 1 < best) best = %s[%s - 1][%s] + 1;
if (%s[%s][%s - 1] + 1 < best) best = %s[%s][%s - 1] + 1;
%s[%s][%s] = best;`,
						c, a, i, b, j, c,
						dp, i, j, c,
						dp, i, j, dp, i, j,
						dp, i, j, dp, i, j,
						dp, i, j))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d][%d] * 11 + 5", dp, n, n))
		}},
		{Name: "knapsack01", Gen: func(g *gen) string {
			n := g.size(6, 12)
			cap := g.size(20, 50)
			w, v, dp := g.v("arr"), g.v("arr"), g.v("arr")
			i, c := g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s[64];
%s
%s`,
				g.fillArray(w, n, g.seed()),
				g.fillArray(v, n, g.seed()+9),
				dp,
				func() string {
					z := g.v("idx")
					return g.loop(z, "64", fmt.Sprintf("%s[%s] = 0;", dp, z))
				}(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					`for (int %s = %s; %s >= %s[%s] %% 20 + 1; %s--) {
int take = %s[%s - (%s[%s] %% 20 + 1)] + %s[%s];
if (take > %s[%s]) %s[%s] = take;
}`,
					c, g.num(int64(cap)), c, w, i, c,
					dp, c, w, i, v, i,
					dp, c, dp, c)))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", dp, cap))
		}},
		{Name: "coin_change_ways", Gen: func(g *gen) string {
			amount := g.size(15, 40)
			dp, c := g.v("arr"), g.v("idx")
			coins := []int{1, 2, 5}
			if g.r.Intn(2) == 0 {
				coins = []int{1, 3, 4}
			}
			// Iterate coins outer, amounts inner: counts combinations.
			k, a := g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[64];
%s
%s[0] = 1;
int %s[3];
%s[0] = %d; %s[1] = %d; %s[2] = %d;
%s`,
				dp,
				func() string {
					z := g.v("idx")
					return g.loop(z, "64", fmt.Sprintf("if (%s > 0) %s[%s] = 0;", z, dp, z))
				}(),
				dp,
				c, c, coins[0], c, coins[1], c, coins[2],
				g.loop(k, "3",
					g.loopFrom(a, c+"["+k+"]", fmt.Sprintf("%d + 1", amount),
						fmt.Sprintf("%s[%s] += %s[%s - %s[%s]];", dp, a, dp, a, c, k))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", dp, amount))
		}},
		{Name: "lis_length", Gen: func(g *gen) string {
			n := g.size(12, 28)
			arr, dp, i, j, best, k := g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[%d];
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				dp, n,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s[%s] = 1;\n%s",
					dp, i,
					g.loop(j, i, fmt.Sprintf(
						"if (%s[%s] < %s[%s] && %s[%s] + 1 > %s[%s]) %s[%s] = %s[%s] + 1;",
						arr, j, arr, i, dp, j, dp, i, dp, i, dp, j)))),
				best,
				g.loop(k, g.num(int64(n)), fmt.Sprintf("if (%s[%s] > %s) %s = %s[%s];", dp, k, best, best, dp, k)))
			return g.wrapMain("", body, best+" * 23")
		}},
		{Name: "rod_cutting", Gen: func(g *gen) string {
			n := g.size(8, 20)
			price, dp, i, j := g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[%d];
%s[0] = 0;
%s`,
				g.fillArray(price, n, g.seed()),
				dp, n+1, dp,
				g.loopFrom(i, "1", fmt.Sprintf("%d + 1", n), fmt.Sprintf(
					"%s[%s] = 0;\n%s",
					dp, i,
					g.loop(j, i, fmt.Sprintf(
						"if (%s[%s] + %s[%s - 1 - %s] > %s[%s]) %s[%s] = %s[%s] + %s[%s - 1 - %s];",
						dp, j, price, i, j, dp, i, dp, i, dp, j, price, i, j)))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", dp, n))
		}},
		{Name: "grid_paths", Gen: func(g *gen) string {
			n := g.size(5, 12)
			dp, i, j := g.v("arr"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[16][16];
%s`,
				dp,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"if (%s == 0 || %s == 0) %s[%s][%s] = 1; else %s[%s][%s] = %s[%s - 1][%s] + %s[%s][%s - 1];",
						i, j, dp, i, j, dp, i, j, dp, i, j, dp, i, j))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d][%d] %% 99991", dp, n-1, n-1))
		}},
		{Name: "min_path_sum", Gen: func(g *gen) string {
			n := g.size(5, 10)
			gr, dp, i, j, sv := g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp")
			fi, fj := g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[12][12];
int %s = %d;
%s
int %s[12][12];
%s`,
				gr, sv, g.seed(),
				g.loop(fi, g.num(int64(n)),
					g.loop(fj, g.num(int64(n)), fmt.Sprintf(
						"%s = (%s * 1103515245 + 12345) %% 2147483648;\n%s[%s][%s] = %s %% 50;",
						sv, sv, gr, fi, fj, sv))),
				dp,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						`if (%s == 0 && %s == 0) %s[0][0] = %s[0][0];
else if (%s == 0) %s[%s][%s] = %s[%s][%s - 1] + %s[%s][%s];
else if (%s == 0) %s[%s][%s] = %s[%s - 1][%s] + %s[%s][%s];
else %s[%s][%s] = (%s[%s - 1][%s] < %s[%s][%s - 1] ? %s[%s - 1][%s] : %s[%s][%s - 1]) + %s[%s][%s];`,
						i, j, dp, gr,
						i, dp, i, j, dp, i, j, gr, i, j,
						j, dp, i, j, dp, i, j, gr, i, j,
						dp, i, j, dp, i, j, dp, i, j, dp, i, j, dp, i, j, gr, i, j))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d][%d]", dp, n-1, n-1))
		}},
		{Name: "subset_sum", Gen: func(g *gen) string {
			n := g.size(6, 12)
			target := g.size(20, 60)
			arr, dp, i, c := g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[70];
%s
%s[0] = 1;
%s`,
				g.fillArray(arr, n, g.seed()),
				dp,
				func() string {
					z := g.v("idx")
					return g.loop(z, "70", fmt.Sprintf("%s[%s] = 0;", dp, z))
				}(),
				dp,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"for (int %s = %d; %s >= %s[%s] %% 25; %s--) if (%s[%s - %s[%s] %% 25]) %s[%s] = 1;",
					c, target, c, arr, i, c, dp, c, arr, i, dp, c)))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d] * 61 + 9", dp, target))
		}},
		{Name: "climb_stairs", Gen: func(g *gen) string {
			n := g.size(10, 30)
			if g.r.Intn(3) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int n) {
if (n <= 2) return n;
return %s(n - 1) + %s(n - 2);
}
int main() { return %s(%s) %% 1000000007; }
`, fn, fn, fn, fn, g.num(int64(n%24+2)))
			}
			dp, i := g.v("arr"), g.v("idx")
			body := fmt.Sprintf(`int %s[40];
%s[0] = 1;
%s[1] = 1;
%s`,
				dp, dp, dp,
				g.loopFrom(i, "2", fmt.Sprintf("%d + 1", n),
					fmt.Sprintf("%s[%s] = (%s[%s - 1] + %s[%s - 2]) %% 1000000007;", dp, i, dp, i, dp, i)))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", dp, n))
		}},
		{Name: "house_robber", Gen: func(g *gen) string {
			n := g.size(10, 25)
			arr, take, skip, i, t := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
int %s = 0;
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()), take, skip,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = %s > %s ? %s : %s;\n%s = %s + %s[%s];\n%s = %s;",
					t, take, skip, take, skip, take, skip, arr, i, skip, t)))
			return g.wrapMain("", body, fmt.Sprintf("(%s > %s ? %s : %s)", take, skip, take, skip))
		}},
		{Name: "bfs_reachable", Gen: func(g *gen) string {
			n := g.size(6, 12)
			adj, vis, queue := g.v("arr"), g.v("arr"), g.v("arr")
			head, tail, i, j := g.v("tmp"), g.v("tmp"), g.v("idx"), g.v("idx")
			fi, fj, sv := g.v("idx"), g.v("idx"), g.v("tmp")
			acc, k := g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`int %s[14][14];
int %s = %d;
%s
int %s[14];
%s
int %s[200];
int %s = 0;
int %s = 0;
%s[%s] = 0;
%s;
%s[0] = 1;
while (%s < %s) {
int cur = %s[%s];
%s;
%s
}
int %s = 0;
%s`,
				adj, sv, g.seed(),
				g.loop(fi, g.num(int64(n)),
					g.loop(fj, g.num(int64(n)), fmt.Sprintf(
						"%s = (%s * 1103515245 + 12345) %% 2147483648;\nif (%s %% 3 == 0 && %s != %s) %s[%s][%s] = 1; else %s[%s][%s] = 0;",
						sv, sv, sv, fi, fj, adj, fi, fj, adj, fi, fj))),
				vis,
				func() string {
					z := g.v("idx")
					return g.loop(z, g.num(int64(n)), fmt.Sprintf("%s[%s] = 0;", vis, z))
				}(),
				queue, head, tail,
				queue, tail, g.inc(tail),
				vis,
				head, tail,
				queue, head, g.inc(head),
				g.loop(j, g.num(int64(n)), fmt.Sprintf(
					"if (%s[cur][%s] && %s[%s] == 0) { %s[%s] = 1; %s[%s] = %s; %s; }",
					adj, j, vis, j, vis, j, queue, tail, j, g.inc(tail))),
				acc,
				g.loop(k, g.num(int64(n)), fmt.Sprintf("%s += %s[%s];", acc, vis, k)))
			_ = i
			return g.wrapMain("", body, acc+" * 17 + 1")
		}},
		{Name: "floyd_shortest", Gen: func(g *gen) string {
			n := g.size(5, 9)
			d := g.v("arr")
			i, j, k := g.v("idx"), g.v("idx"), g.v("idx")
			fi, fj, sv := g.v("idx"), g.v("idx"), g.v("tmp")
			acc, p, q := g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[10][10];
int %s = %d;
%s
%s
int %s = 0;
%s`,
				d, sv, g.seed(),
				g.loop(fi, g.num(int64(n)),
					g.loop(fj, g.num(int64(n)), fmt.Sprintf(
						"%s = (%s * 1103515245 + 12345) %% 2147483648;\nif (%s == %s) %s[%s][%s] = 0; else %s[%s][%s] = %s %% 30 + 1;",
						sv, sv, fi, fj, d, fi, fj, d, fi, fj, sv))),
				g.loop(k, g.num(int64(n)),
					g.loop(i, g.num(int64(n)),
						g.loop(j, g.num(int64(n)), fmt.Sprintf(
							"if (%s[%s][%s] + %s[%s][%s] < %s[%s][%s]) %s[%s][%s] = %s[%s][%s] + %s[%s][%s];",
							d, i, k, d, k, j, d, i, j, d, i, j, d, i, k, d, k, j)))),
				acc,
				g.loop(p, g.num(int64(n)),
					g.loop(q, g.num(int64(n)), fmt.Sprintf("%s += %s[%s][%s];", acc, d, p, q))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "tree_height", Gen: func(g *gen) string {
			n := g.size(10, 30)
			// Implicit binary heap layout: height of node i computed
			// iteratively by walking parents.
			best, i, h, x := g.v("acc"), g.v("idx"), g.v("tmp"), g.v("tmp")
			body := fmt.Sprintf(`int %s = 0;
%s`, best,
				g.loopFrom(i, "1", fmt.Sprintf("%d + 1", n), fmt.Sprintf(
					`int %s = 0;
int %s = %s;
while (%s > 1) { %s /= 2; %s; }
if (%s > %s) %s = %s;`,
					h, x, i, x, x, g.inc(h), h, best, best, h)))
			return g.wrapMain("", body, best+" * 71 + 3")
		}},
		{Name: "matrix_chain_cost", Gen: func(g *gen) string {
			n := g.size(4, 7) // number of matrices
			dims, dp := g.v("arr"), g.v("arr")
			l, i, k := g.v("idx"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[9][9];
%s
%s`,
				g.fillArray(dims, n+1, g.seed()),
				dp,
				func() string {
					z := g.v("idx")
					return g.loop(z, fmt.Sprintf("%d", n), fmt.Sprintf("%s[%s][%s] = 0;", dp, z, z))
				}(),
				g.loopFrom(l, "2", fmt.Sprintf("%d + 1", n), fmt.Sprintf(
					`for (int %s = 0; %s + %s - 1 < %d; %s++) {
int jj = %s + %s - 1;
%s[%s][jj] = 100000000;
%s
}`,
					i, i, l, n, i,
					i, l,
					dp, i,
					g.loopFrom(k, i, i+" + "+l+" - 1", fmt.Sprintf(
						`int cost = %s[%s][%s] + %s[%s + 1][jj] + (%s[%s] %% 9 + 1) * (%s[%s + 1] %% 9 + 1) * (%s[jj + 1] %% 9 + 1);
if (cost < %s[%s][jj]) %s[%s][jj] = cost;`,
						dp, i, k, dp, k, dims, i, dims, k, dims,
						dp, i, dp, i)))))
			return g.wrapMain("", body, fmt.Sprintf("%s[0][%d - 1]", dp, n))
		}},
	}
}
