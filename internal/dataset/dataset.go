package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/progcache"
)

// Problem is one programming problem of the benchmark: a named class plus
// a generator that emits structurally randomized MiniC solutions.
type Problem struct {
	ID   int
	Name string
	Gen  func(g *gen) string
}

// Sample is one labelled program.
type Sample struct {
	Class  int
	Source string
}

// Set is a balanced labelled corpus.
type Set struct {
	NumClasses int
	Samples    []Sample
}

// Problems returns the full 104-problem registry (the POJ-104 stand-in).
func Problems() []Problem {
	groups := [][]Problem{
		arrayProblems(),
		mathProblems(),
		sortSearchProblems(),
		stringProblems(),
		matrixProblems(),
		dpGraphProblems(),
		miscProblems(),
	}
	var all []Problem
	for _, grp := range groups {
		all = append(all, grp...)
	}
	for i := range all {
		all[i].ID = i
	}
	return all
}

// Generate builds a balanced dataset of perClass solutions for each of the
// first numClasses problems (numClasses <= 104). Every emitted program is
// compile-checked; the generator retries with fresh randomness on the rare
// occasion a variation fails to compile.
func Generate(numClasses, perClass int, seed int64) (*Set, error) {
	all := Problems()
	if numClasses <= 0 || numClasses > len(all) {
		return nil, fmt.Errorf("dataset: numClasses must be in [1,%d], got %d", len(all), numClasses)
	}
	rng := rand.New(rand.NewSource(seed))
	// Match the paper's RQ1 setup: when fewer classes are requested, take
	// a random subset of the 104 problems.
	idxs := rng.Perm(len(all))[:numClasses]
	set := &Set{NumClasses: numClasses}
	for ci, pi := range idxs {
		p := all[pi]
		for k := 0; k < perClass; k++ {
			src, err := emitChecked(p, rng)
			if err != nil {
				return nil, fmt.Errorf("dataset: problem %s: %w", p.Name, err)
			}
			set.Samples = append(set.Samples, Sample{Class: ci, Source: src})
		}
	}
	return set, nil
}

// compileCheck verifies that src is a valid MiniC program. The check goes
// through the progcache, so a successful check also primes the cache with
// the module every downstream experiment will ask for.
func compileCheck(src string) error {
	if _, err := progcache.CompileShared(src, "check"); err != nil {
		return fmt.Errorf("generated program does not compile: %w\n%s", err, src)
	}
	return nil
}

func emitChecked(p Problem, rng *rand.Rand) (string, error) {
	var lastErr error
	for try := 0; try < 5; try++ {
		src := p.Gen(newGen(rand.New(rand.NewSource(rng.Int63()))))
		if _, err := progcache.CompileShared(src, p.Name); err != nil {
			lastErr = fmt.Errorf("generated solution does not compile: %w\n%s", err, src)
			continue
		}
		return src, nil
	}
	return "", lastErr
}

// GenerateFor draws n compile-checked solutions of a single problem.
func GenerateFor(p Problem, n int, seed int64) ([]string, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for k := 0; k < n; k++ {
		src, err := emitChecked(p, rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: problem %s: %w", p.Name, err)
		}
		out = append(out, src)
	}
	return out, nil
}

// Split partitions the set into train and test subsets per class with the
// given training fraction (the paper uses 375/125 = 0.75).
func (s *Set) Split(trainFrac float64, rng *rand.Rand) (train, test []Sample) {
	byClass := make(map[int][]Sample)
	for _, smp := range s.Samples {
		byClass[smp.Class] = append(byClass[smp.Class], smp)
	}
	for c := 0; c < s.NumClasses; c++ {
		group := byClass[c]
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		cut := int(float64(len(group)) * trainFrac)
		train = append(train, group[:cut]...)
		test = append(test, group[cut:]...)
	}
	return train, test
}
