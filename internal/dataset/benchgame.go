package dataset

// BenchProgram is one kernel of the performance experiment (RQ6). The
// sixteen programs mirror the C entries of "The Benchmark Game" / the
// classic Doug Bagley shootout the paper draws from (ary3 and matrix are
// named explicitly in the paper). Workload constants are sized so that the
// IR interpreter finishes each O0 build in a few million dynamic
// instructions.
type BenchProgram struct {
	Name   string
	Source string
}

// BenchGame returns the sixteen kernels.
func BenchGame() []BenchProgram {
	return []BenchProgram{
		{"ackermann", `
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	return ack(2, 6);
}`},
		{"ary3", `
int main() {
	int n = 3000;
	int x[3000];
	int y[3000];
	for (int i = 0; i < n; i++) {
		x[i] = i + 1;
		y[i] = 0;
	}
	for (int k = 0; k < 40; k++)
		for (int i = n - 1; i >= 0; i--)
			y[i] += x[i];
	return (y[0] + y[n - 1]) % 1000000007;
}`},
		{"binarytrees", `
int left[4096];
int right[4096];
int nodes = 0;
int build(int depth) {
	int id = nodes;
	nodes++;
	if (depth <= 0) { left[id] = -1; right[id] = -1; return id; }
	left[id] = build(depth - 1);
	right[id] = build(depth - 1);
	return id;
}
int check(int id) {
	if (left[id] < 0) return 1;
	return 1 + check(left[id]) + check(right[id]);
}
int main() {
	int total = 0;
	for (int d = 2; d <= 10; d++) {
		nodes = 0;
		int root = build(d);
		total += check(root);
	}
	return total % 1000000007;
}`},
		{"fannkuch", `
int main() {
	int n = 7;
	int perm[16];
	int perm1[16];
	int count[16];
	int maxFlips = 0;
	for (int i = 0; i < n; i++) perm1[i] = i;
	int r = n;
	int checksum = 0;
	int sign = 1;
	while (1) {
		while (r != 1) { count[r - 1] = r; r--; }
		for (int i = 0; i < n; i++) perm[i] = perm1[i];
		int flips = 0;
		int k = perm[0];
		while (k != 0) {
			int i = 0;
			int j = k;
			while (i < j) {
				int t = perm[i]; perm[i] = perm[j]; perm[j] = t;
				i++;
				j--;
			}
			flips++;
			k = perm[0];
		}
		if (flips > maxFlips) maxFlips = flips;
		checksum += sign * flips;
		sign = -sign;
		while (1) {
			if (r == n) return (maxFlips * 1000 + checksum + 100000) % 1000000007;
			int p0 = perm1[0];
			for (int i = 0; i < r; i++) perm1[i] = perm1[i + 1];
			perm1[r] = p0;
			count[r] = count[r] - 1;
			if (count[r] > 0) break;
			r++;
		}
	}
}`},
		{"fibo", `
int fib(int n) {
	if (n < 2) return 1;
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(20); }`},
		{"hash", `
int keys[4096];
int vals[4096];
int used[4096];
int insert(int k, int v) {
	int h = (k * 2654435761) % 4096;
	if (h < 0) h += 4096;
	while (used[h] && keys[h] != k) h = (h + 1) % 4096;
	keys[h] = k;
	vals[h] = v;
	used[h] = 1;
	return h;
}
int lookup(int k) {
	int h = (k * 2654435761) % 4096;
	if (h < 0) h += 4096;
	while (used[h]) {
		if (keys[h] == k) return vals[h];
		h = (h + 1) % 4096;
	}
	return -1;
}
int main() {
	for (int i = 0; i < 2000; i++) insert(i * 17, i);
	int found = 0;
	for (int i = 0; i < 2000; i++)
		if (lookup(i * 17) == i) found++;
	return found;
}`},
		{"heapsort", `
int main() {
	int n = 1500;
	int a[1501];
	int seed = 42;
	for (int i = 1; i <= n; i++) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		a[i] = seed % 100000;
	}
	int k = n / 2 + 1;
	int ir = n;
	int rra;
	while (1) {
		if (k > 1) { k--; rra = a[k]; }
		else {
			rra = a[ir];
			a[ir] = a[1];
			ir--;
			if (ir == 1) { a[1] = rra; break; }
		}
		int i = k;
		int j = k * 2;
		while (j <= ir) {
			if (j < ir && a[j] < a[j + 1]) j++;
			if (rra < a[j]) { a[i] = a[j]; i = j; j = j * 2; }
			else j = ir + 1;
		}
		a[i] = rra;
	}
	return (a[1] * 7 + a[n]) % 1000000007;
}`},
		{"mandelbrot", `
int main() {
	int w = 40;
	int inside = 0;
	for (int y = 0; y < w; y++) {
		for (int x = 0; x < w; x++) {
			float cr = 2.0 * x / w - 1.5;
			float ci = 2.0 * y / w - 1.0;
			float zr = 0.0;
			float zi = 0.0;
			int it = 0;
			while (it < 50 && zr * zr + zi * zi < 4.0) {
				float t = zr * zr - zi * zi + cr;
				zi = 2.0 * zr * zi + ci;
				zr = t;
				it++;
			}
			if (it == 50) inside++;
		}
	}
	return inside;
}`},
		{"matrix", `
int main() {
	int n = 30;
	int a[30][30];
	int b[30][30];
	int c[30][30];
	for (int i = 0; i < n; i++)
		for (int j = 0; j < n; j++) {
			a[i][j] = i * n + j;
			b[i][j] = (i * n + j) % 7;
		}
	for (int rep = 0; rep < 10; rep++) {
		for (int i = 0; i < n; i++)
			for (int j = 0; j < n; j++) {
				int s = 0;
				for (int k = 0; k < n; k++) s += a[i][k] * b[k][j];
				c[i][j] = s % 65536;
			}
		for (int i = 0; i < n; i++)
			for (int j = 0; j < n; j++) a[i][j] = c[i][j];
	}
	return (c[0][0] + c[n - 1][n - 1] + c[n / 2][n / 2]) % 1000000007;
}`},
		{"nbody", `
float px[5];
float py[5];
float pz[5];
float vx[5];
float vy[5];
float vz[5];
float mass[5];
void advance(float dt) {
	for (int i = 0; i < 5; i++) {
		for (int j = i + 1; j < 5; j++) {
			float dx = px[i] - px[j];
			float dy = py[i] - py[j];
			float dz = pz[i] - pz[j];
			float d2 = dx * dx + dy * dy + dz * dz;
			float mag = dt / (d2 * sqrt(d2));
			vx[i] -= dx * mass[j] * mag;
			vy[i] -= dy * mass[j] * mag;
			vz[i] -= dz * mass[j] * mag;
			vx[j] += dx * mass[i] * mag;
			vy[j] += dy * mass[i] * mag;
			vz[j] += dz * mass[i] * mag;
		}
	}
	for (int i = 0; i < 5; i++) {
		px[i] += dt * vx[i];
		py[i] += dt * vy[i];
		pz[i] += dt * vz[i];
	}
}
int main() {
	for (int i = 0; i < 5; i++) {
		px[i] = i * 1.5 - 3.0;
		py[i] = i * 0.5;
		pz[i] = 1.0 - i * 0.25;
		vx[i] = 0.01 * i;
		vy[i] = -0.005 * i;
		vz[i] = 0.002;
		mass[i] = 1.0 + 0.1 * i;
	}
	for (int step = 0; step < 2000; step++) advance(0.01);
	float e = 0.0;
	for (int i = 0; i < 5; i++)
		e += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
	return (int)(e * 1000.0);
}`},
		{"nestedloop", `
int main() {
	int n = 14;
	int x = 0;
	for (int a = 0; a < n; a++)
		for (int b = 0; b < n; b++)
			for (int c = 0; c < n; c++)
				for (int d = 0; d < n; d++)
					for (int e = 0; e < n; e++)
						x++;
	return x % 1000000007;
}`},
		{"random", `
int main() {
	int last = 42;
	float result = 0.0;
	for (int i = 0; i < 400000; i++) {
		last = (last * 3877 + 29573) % 139968;
		result = 100.0 * last / 139968;
	}
	return (int)(result * 1000.0);
}`},
		{"sieve", `
int main() {
	int flags[8193];
	int count = 0;
	for (int iter = 0; iter < 10; iter++) {
		count = 0;
		for (int i = 2; i <= 8192; i++) flags[i] = 1;
		for (int i = 2; i <= 8192; i++) {
			if (flags[i]) {
				for (int k = i + i; k <= 8192; k += i) flags[k] = 0;
				count++;
			}
		}
	}
	return count;
}`},
		{"spectralnorm", `
float evalA(int i, int j) {
	return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
int main() {
	int n = 60;
	float u[60];
	float v[60];
	float tmp[60];
	for (int i = 0; i < n; i++) u[i] = 1.0;
	for (int it = 0; it < 6; it++) {
		for (int i = 0; i < n; i++) {
			tmp[i] = 0.0;
			for (int j = 0; j < n; j++) tmp[i] += evalA(i, j) * u[j];
		}
		for (int i = 0; i < n; i++) {
			v[i] = 0.0;
			for (int j = 0; j < n; j++) v[i] += evalA(j, i) * tmp[j];
		}
		for (int i = 0; i < n; i++) u[i] = v[i];
	}
	float vBv = 0.0;
	float vv = 0.0;
	for (int i = 0; i < n; i++) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
	return (int)(sqrt(vBv / vv) * 1000000.0);
}`},
		{"strcat", `
int main() {
	char buf[60000];
	int len = 0;
	for (int i = 0; i < 9000; i++) {
		buf[len] = 'h'; len++;
		buf[len] = 'e'; len++;
		buf[len] = 'l'; len++;
		buf[len] = 'l'; len++;
		buf[len] = 'o'; len++;
		buf[len] = '\n'; len++;
	}
	buf[len] = 0;
	int sum = 0;
	for (int i = 0; i < len; i++) sum += buf[i];
	return (len + sum) % 1000000007;
}`},
		{"sumcol", `
int main() {
	int seed = 7;
	int sum = 0;
	for (int i = 0; i < 200000; i++) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		int v = seed % 1000 - 500;
		sum += v;
	}
	return (sum + 2000000000) % 1000000007;
}`},
	}
}
