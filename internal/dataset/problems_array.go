package dataset

import "fmt"

// arrayProblems: one-dimensional array manipulation tasks (20 problems).
func arrayProblems() []Problem {
	return []Problem{
		{Name: "array_sum", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s%s",
				g.fillArray(arr, n, g.seed()),
				acc,
				g.deadNoise(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s += %s[%s];", acc, arr, i)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "array_max", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			upd := fmt.Sprintf("if (%s[%s] > %s) %s = %s[%s];", arr, i, acc, acc, arr, i)
			if g.r.Intn(2) == 0 {
				upd = fmt.Sprintf("%s = %s[%s] > %s ? %s[%s] : %s;", acc, arr, i, acc, arr, i, acc)
			}
			body := fmt.Sprintf("%s\nint %s = %s[0];\n%s",
				g.fillArray(arr, n, g.seed()), acc, arr,
				g.loopFrom(i, "1", g.num(int64(n)), upd))
			return g.wrapMain("", body, acc+" + 500")
		}},
		{Name: "array_min", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = %s[0];\n%s",
				g.fillArray(arr, n, g.seed()), acc, arr,
				g.loopFrom(i, "1", g.num(int64(n)),
					fmt.Sprintf("if (%s) %s = %s[%s];", g.lt(arr+"["+i+"]", acc), acc, arr, i)))
			return g.wrapMain("", body, acc+" + 500")
		}},
		{Name: "array_reverse_checksum", Gen: func(g *gen) string {
			n := g.size(16, 48)
			arr, i, t := g.v("arr"), g.v("idx"), g.v("tmp")
			acc, j := g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loop(i, fmt.Sprintf("%d", n/2), fmt.Sprintf(
					"int %s = %s[%s];\n%s[%s] = %s[%d - 1 - %s];\n%s[%d - 1 - %s] = %s;",
					t, arr, i, arr, i, arr, n, i, arr, n, i, t)),
				acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s = %s * 3 + %s[%s];", acc, acc, arr, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "count_evens", Gen: func(g *gen) string {
			n := g.size(25, 70)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			cond := fmt.Sprintf("%s[%s] %% 2 == 0", arr, i)
			if g.r.Intn(2) == 0 {
				cond = fmt.Sprintf("(%s[%s] & 1) == 0", arr, i)
			}
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("if (%s) %s;", cond, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "second_largest", Gen: func(g *gen) string {
			n := g.size(20, 50)
			arr, a, b, i := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = -1000000;
int %s = -1000000;
%s`,
				g.fillArray(arr, n, g.seed()), a, b,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s] > %s) { %s = %s; %s = %s[%s]; } else if (%s[%s] > %s && %s[%s] != %s) %s = %s[%s];",
					arr, i, a, b, a, a, arr, i, arr, i, b, arr, i, a, b, arr, i)))
			return g.wrapMain("", body, a+" * 1000 + "+b+" + 2000000")
		}},
		{Name: "rotate_left", Gen: func(g *gen) string {
			n := g.size(16, 40)
			k := g.size(1, 7)
			arr, acc, i, r := g.v("arr"), g.v("acc"), g.v("idx"), g.v("tmp")
			rot := g.loop(r, g.num(int64(k)), fmt.Sprintf(
				"int f = %s[0];\n%s\n%s[%d] = f;",
				arr,
				g.loop(i, fmt.Sprintf("%d", n-1), fmt.Sprintf("%s[%s] = %s[%s + 1];", arr, i, arr, i)),
				arr, n-1))
			j := g.v("idx")
			body := fmt.Sprintf("%s\n%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), rot, acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s = %s * 7 + %s[%s];", acc, acc, arr, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "prefix_sums", Gen: func(g *gen) string {
			n := g.size(20, 50)
			arr, ps, i, acc := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc")
			body := fmt.Sprintf(`%s
int %s[%d];
%s[0] = %s[0];
%s
int %s = %s[%d - 1] + %s[%d / 2];`,
				g.fillArray(arr, n, g.seed()),
				ps, n, ps, arr,
				g.loopFrom(i, "1", g.num(int64(n)),
					fmt.Sprintf("%s[%s] = %s[%s - 1] + %s[%s];", ps, i, ps, i, arr, i)),
				acc, ps, n, ps, n)
			return g.wrapMain("", body, acc)
		}},
		{Name: "equilibrium_index", Gen: func(g *gen) string {
			n := g.size(15, 40)
			arr, tot, left, i, ans := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx"), g.v("acc")
			j := g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
%s
int %s = 0;
int %s = -1;
%s`,
				g.fillArray(arr, n, g.seed()),
				tot,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s += %s[%s];", tot, arr, i)),
				left, ans,
				g.loop(j, g.num(int64(n)), fmt.Sprintf(
					"if (%s - %s[%s] - %s == %s && %s < 0) %s = %s;\n%s += %s[%s];",
					tot, arr, j, left, left, ans, ans, j, left, arr, j)))
			return g.wrapMain("", body, ans+" + 100")
		}},
		{Name: "count_pairs_with_sum", Gen: func(g *gen) string {
			n := g.size(12, 30)
			target := g.size(50, 150)
			arr, acc, i, j := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					g.loopFrom(j, i+" + 1", g.num(int64(n)),
						fmt.Sprintf("if (%s[%s] + %s[%s] == %s) %s;", arr, i, arr, j, g.num(int64(target)), g.inc(acc)))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "dedup_count", Gen: func(g *gen) string {
			n := g.size(15, 40)
			arr, acc, i, j, f := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = 0;\n%s\nif (%s == 0) %s;",
					f,
					g.loop(j, i, fmt.Sprintf("if (%s[%s] == %s[%s]) %s = 1;", arr, j, arr, i, f)),
					f, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "dot_product", Gen: func(g *gen) string {
			n := g.size(20, 50)
			a, b, acc, i := g.v("arr"), g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\n%s\nint %s = 0;\n%s",
				g.fillArray(a, n, g.seed()), g.fillArray(b, n, g.seed()+3), acc,
				g.loop(i, g.num(int64(n)),
					fmt.Sprintf("%s += %s[%s] * %s[%s];", acc, a, i, b, i)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "max_subarray", Gen: func(g *gen) string {
			n := g.size(20, 50)
			arr, best, cur, i := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx")
			// Values are centred by subtracting 99, so Kadane sees both
			// signs and the running sum resets matter.
			body := fmt.Sprintf(`%s
int %s = -1000000;
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				best, cur,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s += %s[%s] - 99;\nif (%s > %s) %s = %s;\nif (%s < 0) %s = 0;",
					cur, arr, i, cur, best, best, cur, cur, cur)))
			return g.wrapMain("", body, best+" + 1000000")
		}},
		{Name: "alternating_sum", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			upd := fmt.Sprintf("if (%s %% 2 == 0) %s += %s[%s]; else %s -= %s[%s];", i, acc, arr, i, acc, arr, i)
			if g.r.Intn(2) == 0 {
				sg := g.v("tmp")
				upd = fmt.Sprintf("%s += %s * %s[%s];\n%s = -%s;", acc, sg, arr, i, sg, sg)
				body := fmt.Sprintf("%s\nint %s = 0;\nint %s = 1;\n%s",
					g.fillArray(arr, n, g.seed()), acc, sg,
					g.loop(i, g.num(int64(n)), upd))
				return g.wrapMain("", body, acc+" + 100000")
			}
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)), upd))
			return g.wrapMain("", body, acc+" + 100000")
		}},
		{Name: "range_sum_queries", Gen: func(g *gen) string {
			n := g.size(20, 40)
			q := g.size(5, 12)
			arr, ps, i, acc, k := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			lo, hi := g.v("tmp"), g.v("tmp")
			body := fmt.Sprintf(`%s
int %s[%d];
%s[0] = 0;
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				ps, n+1, ps,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s + 1] = %s[%s] + %s[%s];", ps, i, ps, i, arr, i)),
				acc,
				g.loop(k, g.num(int64(q)), fmt.Sprintf(
					"int %s = (%s * 13) %% %d;\nint %s = %s + (%s * 7) %% (%d - %s);\n%s += %s[%s + 1] - %s[%s];",
					lo, k, n/2, hi, lo, k, n/2, lo, acc, ps, hi, ps, lo)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "count_greater_than_prev", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loopFrom(i, "1", g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] > %s[%s - 1]) %s;", arr, i, arr, i, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "zero_crossings", Gen: func(g *gen) string {
			n := g.size(20, 50)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				acc,
				g.loopFrom(i, "1", g.num(int64(n)), fmt.Sprintf(
					"if ((%s[%s] - 99) * (%s[%s - 1] - 99) < 0) %s;", arr, i, arr, i, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "partition_evens_first", Gen: func(g *gen) string {
			n := g.size(16, 40)
			arr, w, i, acc, j, t := g.v("arr"), g.v("tmp"), g.v("idx"), g.v("acc"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
int %s = 0;
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				w,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s] %% 2 == 0) { int %s = %s[%s]; %s[%s] = %s[%s]; %s[%s] = %s; %s; }",
					arr, i, t, arr, w, arr, w, arr, i, arr, i, t, g.inc(w))),
				acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s = %s * 5 + %s[%s];", acc, acc, arr, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "weighted_sum", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					fmt.Sprintf("%s += (%s + 1) * %s[%s];", acc, i, arr, i)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "longest_plateau", Gen: func(g *gen) string {
			n := g.size(20, 50)
			arr, best, cur, i := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
int %s = 1;
%s`,
				g.fillArray(arr, n, g.seed()), best, cur,
				g.loopFrom(i, "1", g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s] == %s[%s - 1]) { %s; if (%s > %s) %s = %s; } else %s = 1;",
					arr, i, arr, i, g.inc(cur), cur, best, best, cur, cur)))
			return g.wrapMain("", body, best+" * 17")
		}},
	}
}
