package dataset

import "fmt"

// miscProblems: simulation, bit manipulation and floating-point tasks
// (10 problems). Together with the other groups the registry reaches the
// paper's 104 problem classes.
func miscProblems() []Problem {
	return []Problem{
		{Name: "stack_machine", Gen: func(g *gen) string {
			n := g.size(20, 50)
			// Half the solutions model the stack as a struct — the kind of
			// surface variation human POJ-104 submissions show.
			if g.r.Intn(2) == 0 {
				sv, i := g.v("tmp"), g.v("idx")
				return fmt.Sprintf(`struct Stack { int data[128]; int top; };
struct Stack st;
int main() {
st.top = 0;
int %s = %d;
%s
return (st.data[0] * 100 + st.top) %% 1000000007;
}
`,
					sv, g.seed(),
					g.loop(i, g.num(int64(n)), fmt.Sprintf(
						`%s = (%s * 1103515245 + 12345) %% 2147483648;
int op = %s %% 3;
if (op == 0 || st.top < 2) { st.data[st.top] = %s %% 50; st.top++; }
else if (op == 1) { st.data[st.top - 2] = st.data[st.top - 2] + st.data[st.top - 1]; st.top--; }
else { st.data[st.top - 2] = st.data[st.top - 2] * st.data[st.top - 1] %% 10007; st.top--; }`,
						sv, sv, sv, sv)))
			}
			st, sp, i, sv := g.v("arr"), g.v("tmp"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`int %s[128];
int %s = 0;
int %s = %d;
%s`,
				st, sp, sv, g.seed(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					`%s = (%s * 1103515245 + 12345) %% 2147483648;
int op = %s %% 3;
if (op == 0 || %s < 2) { %s[%s] = %s %% 50; %s; }
else if (op == 1) { %s[%s - 2] = %s[%s - 2] + %s[%s - 1]; %s--; }
else { %s[%s - 2] = %s[%s - 2] * %s[%s - 1] %% 10007; %s--; }`,
					sv, sv, sv, sp, st, sp, sv, g.inc(sp),
					st, sp, st, sp, st, sp, sp,
					st, sp, st, sp, st, sp, sp)))
			return g.wrapMain("", body, fmt.Sprintf("%s[0] * 100 + %s", st, sp))
		}},
		{Name: "queue_rotate", Gen: func(g *gen) string {
			n := g.size(10, 24)
			rounds := g.size(5, 20)
			q, head, tail, i, acc := g.v("arr"), g.v("tmp"), g.v("tmp"), g.v("idx"), g.v("acc")
			body := fmt.Sprintf(`int %s[256];
int %s = 0;
int %s = 0;
%s
%s
int %s = 0;
while (%s < %s) { %s += %s[%s]; %s; }`,
				q, head, tail,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s] = %s; %s;", q, tail, i, g.inc(tail))),
				g.loop(g.v("idx"), g.num(int64(rounds)), fmt.Sprintf(
					"int f = %s[%s]; %s; %s[%s] = f * 2 %% 97; %s;", q, head, g.inc(head), q, tail, g.inc(tail))),
				acc,
				head, tail, acc, q, head, g.inc(head))
			return g.wrapMain("", body, acc)
		}},
		{Name: "hanoi_moves", Gen: func(g *gen) string {
			n := g.size(5, 16)
			if g.r.Intn(2) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int n) {
if (n == 0) return 0;
return 2 * %s(n - 1) + 1;
}
int main() { return %s(%s) %% 1000000007; }
`, fn, fn, fn, g.num(int64(n)))
			}
			acc, i := g.v("acc"), g.v("idx")
			body := fmt.Sprintf("int %s = 0;\n%s", acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s = 2 * %s + 1;", acc, acc)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "josephus", Gen: func(g *gen) string {
			n := g.size(8, 30)
			k := g.size(2, 7)
			res, i := g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`int %s = 0;
%s`, res,
				g.loopFrom(i, "2", fmt.Sprintf("%d + 1", n),
					fmt.Sprintf("%s = (%s + %s) %% %s;", res, res, g.num(int64(k)), i)))
			return g.wrapMain("", body, res+" + 1")
		}},
		{Name: "lcg_checksum", Gen: func(g *gen) string {
			n := g.size(50, 200)
			x, acc, i := g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`int %s = %d;
int %s = 0;
%s`,
				x, g.seed(), acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s = (%s * 16807) %% 2147483647;\n%s = (%s + %s %% 1000) %% 999983;",
					x, x, acc, acc, x)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "popcount_range", Gen: func(g *gen) string {
			n := g.size(30, 120)
			acc, i, x, c := g.v("acc"), g.v("idx"), g.v("tmp"), g.v("tmp")
			inner := fmt.Sprintf(
				"int %s = %s;\nint %s = 0;\nwhile (%s > 0) { %s += %s & 1; %s >>= 1; }\n%s += %s;",
				x, i, c, x, c, x, x, acc, c)
			if g.r.Intn(2) == 0 {
				inner = fmt.Sprintf(
					"int %s = %s;\nwhile (%s > 0) { %s = %s & (%s - 1); %s; }",
					x, i, x, x, x, x, g.inc(acc))
			}
			body := fmt.Sprintf("int %s = 0;\n%s", acc, g.loop(i, g.num(int64(n)), inner))
			return g.wrapMain("", body, acc)
		}},
		{Name: "swap_nibbles", Gen: func(g *gen) string {
			n := g.size(20, 80)
			acc, i, b := g.v("acc"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`int %s = 0;
%s`, acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = %s & 255;\n%s += ((%s << 4) | (%s >> 4)) & 255;",
					b, i, acc, b, b)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "parity_stream", Gen: func(g *gen) string {
			n := g.size(40, 150)
			acc, i, sv := g.v("acc"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`int %s = 0;
int %s = %d;
%s`,
				acc, sv, g.seed(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s = (%s * 1103515245 + 12345) %% 2147483648;\n%s ^= %s %% 256;",
					sv, sv, acc, sv)))
			return g.wrapMain("", body, acc+" + 512")
		}},
		{Name: "newton_sqrt_float", Gen: func(g *gen) string {
			n := g.size(50, 5000)
			x, i := g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`float %s = %s;
%s`,
				x, g.num(int64(n))+".0",
				g.loop(i, g.num(20), fmt.Sprintf(
					"%s = 0.5 * (%s + %s / %s);", x, x, g.num(int64(n))+".0", x)))
			return g.wrapMain("", body, fmt.Sprintf("(int)(%s * 100.0)", x))
		}},
		{Name: "numeric_series", Gen: func(g *gen) string {
			n := g.size(10, 60)
			acc, i := g.v("acc"), g.v("idx")
			variant := g.r.Intn(3)
			var upd string
			switch variant {
			case 0:
				upd = fmt.Sprintf("%s += 1.0 / (%s + 1);", acc, i)
			case 1:
				upd = fmt.Sprintf("%s += 1.0 / ((%s + 1) * (%s + 1));", acc, i, i)
			default:
				upd = fmt.Sprintf("if (%s %% 2 == 0) %s += 1.0 / (2 * %s + 1); else %s -= 1.0 / (2 * %s + 1);", i, acc, i, acc, i)
			}
			body := fmt.Sprintf("float %s = 0.0;\n%s", acc, g.loop(i, g.num(int64(n)), upd))
			return g.wrapMain("", body, fmt.Sprintf("(int)(%s * 100000.0)", acc))
		}},
	}
}
