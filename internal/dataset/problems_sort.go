package dataset

import "fmt"

// sortSearchProblems: sorting and searching tasks (12 problems).
func sortSearchProblems() []Problem {
	return []Problem{
		{Name: "bubble_sort", Gen: func(g *gen) string {
			n := g.size(14, 36)
			arr, i, j, t, acc, k := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loop(i, g.num(int64(n)),
					g.loop(j, fmt.Sprintf("%d - 1 - %s", n, i), fmt.Sprintf(
						"if (%s[%s] > %s[%s + 1]) { int %s = %s[%s]; %s[%s] = %s[%s + 1]; %s[%s + 1] = %s; }",
						arr, j, arr, j, t, arr, j, arr, j, arr, j, arr, j, t))),
				acc,
				g.loop(k, g.num(int64(n)), fmt.Sprintf("%s = %s * 3 + %s[%s];", acc, acc, arr, k)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "selection_sort", Gen: func(g *gen) string {
			n := g.size(14, 36)
			arr, i, j, mi, t, acc, k := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp"), g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = %s;\n%s\nint %s = %s[%s]; %s[%s] = %s[%s]; %s[%s] = %s;",
					mi, i,
					g.loopFrom(j, i+" + 1", g.num(int64(n)),
						fmt.Sprintf("if (%s[%s] < %s[%s]) %s = %s;", arr, j, arr, mi, mi, j)),
					t, arr, i, arr, i, arr, mi, arr, mi, t)),
				acc,
				g.loop(k, g.num(int64(n)), fmt.Sprintf("%s = %s * 3 + %s[%s];", acc, acc, arr, k)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "insertion_sort", Gen: func(g *gen) string {
			n := g.size(14, 36)
			arr, i, j, key, acc, k := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loopFrom(i, "1", g.num(int64(n)), fmt.Sprintf(
					"int %s = %s[%s];\nint %s = %s - 1;\nwhile (%s >= 0 && %s[%s] > %s) { %s[%s + 1] = %s[%s]; %s--; }\n%s[%s + 1] = %s;",
					key, arr, i, j, i, j, arr, j, key, arr, j, arr, j, j, arr, j, key)),
				acc,
				g.loop(k, g.num(int64(n)), fmt.Sprintf("%s = %s * 3 + %s[%s];", acc, acc, arr, k)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "merge_sorted", Gen: func(g *gen) string {
			n := g.size(10, 22)
			a, b, out, i, j, k := g.v("arr"), g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx"), g.v("idx")
			acc, q, fill := g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[%d];
int %s[%d];
%s
int %s[%d];
int %s = 0;
int %s = 0;
int %s = 0;
while (%s < %d && %s < %d) {
if (%s[%s] <= %s[%s]) { %s[%s] = %s[%s]; %s; } else { %s[%s] = %s[%s]; %s; }
%s;
}
while (%s < %d) { %s[%s] = %s[%s]; %s; %s; }
while (%s < %d) { %s[%s] = %s[%s]; %s; %s; }
int %s = 0;
%s`,
				a, n, b, n,
				g.loop(fill, g.num(int64(n)), fmt.Sprintf(
					"%s[%s] = %s * %d + 1;\n%s[%s] = %s * %d + 2;",
					a, fill, fill, g.size(2, 5), b, fill, fill, g.size(2, 5))),
				out, 2*n, i, j, k,
				i, n, j, n,
				a, i, b, j, out, k, a, i, g.inc(i), out, k, b, j, g.inc(j),
				g.inc(k),
				i, n, out, k, a, i, g.inc(i), g.inc(k),
				j, n, out, k, b, j, g.inc(j), g.inc(k),
				acc,
				g.loop(q, fmt.Sprintf("%d", 2*n), fmt.Sprintf("%s = %s * 3 + %s[%s];", acc, acc, out, q)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "binary_search", Gen: func(g *gen) string {
			n := g.size(20, 60)
			step := g.size(2, 6)
			target := g.size(3, n*step-1)
			arr, lo, hi, mid, ans, i := g.v("arr"), g.v("tmp"), g.v("tmp"), g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`int %s[%d];
%s
int %s = 0;
int %s = %d - 1;
int %s = -1;
while (%s <= %s) {
int %s = (%s + %s) / 2;
if (%s[%s] == %s) { %s = %s; break; }
if (%s[%s] < %s) %s = %s + 1;
else %s = %s - 1;
}`,
				arr, n,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s] = %s * %d;", arr, i, i, step)),
				lo, hi, n, ans,
				lo, hi,
				mid, lo, hi,
				arr, mid, g.num(int64(target)), ans, mid,
				arr, mid, g.num(int64(target)), lo, mid,
				hi, mid)
			return g.wrapMain("", body, ans+" + 50")
		}},
		{Name: "count_occurrences", Gen: func(g *gen) string {
			n := g.size(25, 70)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			tv := g.size(0, 198)
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] == %s) %s;", arr, i, g.num(int64(tv)), g.inc(acc))))
			return g.wrapMain("", body, acc+" * 13 + 7")
		}},
		{Name: "kth_smallest", Gen: func(g *gen) string {
			n := g.size(12, 30)
			k := g.size(2, 8)
			arr, i, j, mi, t := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp"), g.v("tmp")
			body := fmt.Sprintf(`%s
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loop(i, g.num(int64(k)), fmt.Sprintf(
					"int %s = %s;\n%s\nint %s = %s[%s]; %s[%s] = %s[%s]; %s[%s] = %s;",
					mi, i,
					g.loopFrom(j, i+" + 1", g.num(int64(n)),
						fmt.Sprintf("if (%s[%s] < %s[%s]) %s = %s;", arr, j, arr, mi, mi, j)),
					t, arr, i, arr, i, arr, mi, arr, mi, t)))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d - 1] * 11 + 3", arr, k))
		}},
		{Name: "median", Gen: func(g *gen) string {
			n := g.size(11, 31) | 1 // odd
			arr, i, j, t := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
%s`,
				g.fillArray(arr, n, g.seed()),
				g.loop(i, g.num(int64(n)),
					g.loop(j, fmt.Sprintf("%d - 1", n), fmt.Sprintf(
						"if (%s[%s] > %s[%s + 1]) { int %s = %s[%s]; %s[%s] = %s[%s + 1]; %s[%s + 1] = %s; }",
						arr, j, arr, j, t, arr, j, arr, j, arr, j, arr, j, t))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d] * 7 + 1", arr, n/2))
		}},
		{Name: "is_sorted", Gen: func(g *gen) string {
			n := g.size(20, 60)
			arr, ok, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
%s`,
				g.fillArray(arr, n, g.seed()), ok,
				g.loopFrom(i, "1", g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] < %s[%s - 1]) %s = 0;", arr, i, arr, i, ok)))
			return g.wrapMain("", body, ok+" * 999 + 1")
		}},
		{Name: "last_index_of", Gen: func(g *gen) string {
			n := g.size(25, 60)
			arr, ans, i := g.v("arr"), g.v("acc"), g.v("idx")
			tv := g.size(0, 198)
			body := fmt.Sprintf(`%s
int %s = -1;
%s`,
				g.fillArray(arr, n, g.seed()), ans,
				g.loop(i, g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] == %s) %s = %s;", arr, i, g.num(int64(tv)), ans, i)))
			return g.wrapMain("", body, ans+" + 10")
		}},
		{Name: "partition_point", Gen: func(g *gen) string {
			n := g.size(20, 50)
			pivot := g.size(40, 160)
			arr, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				g.fillArray(arr, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] < %s) %s;", arr, i, g.num(int64(pivot)), g.inc(acc))))
			return g.wrapMain("", body, acc+" * 21")
		}},
		{Name: "min_diff_pair", Gen: func(g *gen) string {
			n := g.size(12, 28)
			arr, best, i, j, d := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
int %s = 1000000;
%s`,
				g.fillArray(arr, n, g.seed()), best,
				g.loop(i, g.num(int64(n)),
					g.loopFrom(j, i+" + 1", g.num(int64(n)), fmt.Sprintf(
						"int %s = %s[%s] - %s[%s];\nif (%s < 0) %s = -%s;\nif (%s < %s) %s = %s;",
						d, arr, i, arr, j, d, d, d, d, best, best, d))))
			return g.wrapMain("", body, best+" * 3 + 11")
		}},
	}
}
