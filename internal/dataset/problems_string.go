package dataset

import "fmt"

// stringProblems: character-array tasks (15 problems).
func stringProblems() []Problem {
	return []Problem{
		{Name: "strlen", Gen: func(g *gen) string {
			n := g.size(20, 80)
			s, acc := g.v("arr"), g.v("acc")
			body := fmt.Sprintf(`%s
int %s = 0;
while (%s[%s]) %s;`,
				g.fillString(s, n, g.seed()), acc, s, acc, g.inc(acc))
			return g.wrapMain("", body, acc+" * 9 + 4")
		}},
		{Name: "string_reverse", Gen: func(g *gen) string {
			n := g.size(16, 50)
			s, i, t, acc, j := g.v("arr"), g.v("idx"), g.v("tmp"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()),
				g.loop(i, fmt.Sprintf("%d", n/2), fmt.Sprintf(
					"char %s = %s[%s];\n%s[%s] = %s[%d - 1 - %s];\n%s[%d - 1 - %s] = %s;",
					t, s, i, s, i, s, n, i, s, n, i, t)),
				acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s = %s * 2 + %s[%s];", acc, acc, s, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "is_palindrome_str", Gen: func(g *gen) string {
			n := g.size(10, 30)
			s, ok, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
%s`,
				g.fillString(s, n, g.seed()), ok,
				g.loop(i, fmt.Sprintf("%d", n/2),
					fmt.Sprintf("if (%s[%s] != %s[%d - 1 - %s]) %s = 0;", s, i, s, n, i, ok)))
			return g.wrapMain("", body, ok+" * 55 + 3")
		}},
		{Name: "count_vowels", Gen: func(g *gen) string {
			n := g.size(25, 80)
			s, acc, i, c := g.v("arr"), g.v("acc"), g.v("idx"), g.v("tmp")
			test := fmt.Sprintf("%s == 'a' || %s == 'e' || %s == 'i' || %s == 'o' || %s == 'u'", c, c, c, c, c)
			if g.r.Intn(2) == 0 {
				body := fmt.Sprintf(`%s
int %s = 0;
%s`,
					g.fillString(s, n, g.seed()), acc,
					g.loop(i, g.num(int64(n)), fmt.Sprintf(
						"char %s = %s[%s];\nif (%s) %s;", c, s, i, test, g.inc(acc))))
				return g.wrapMain("", body, acc)
			}
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					`char %s = %s[%s];
switch (%s) {
case 'a': case 'e': case 'i': case 'o': case 'u': %s; break;
default: break;
}`, c, s, i, c, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "most_frequent_char", Gen: func(g *gen) string {
			n := g.size(30, 90)
			s, freq, i, best, j := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[26];
%s
%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()),
				freq,
				func() string { z := g.v("idx"); return g.loop(z, "26", fmt.Sprintf("%s[%s] = 0;", freq, z)) }(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s[%s] - 'a'] += 1;", freq, s, i)),
				best,
				g.loop(j, "26", fmt.Sprintf("if (%s[%s] > %s) %s = %s[%s];", freq, j, best, best, freq, j)))
			return g.wrapMain("", body, best+" * 31")
		}},
		{Name: "caesar_cipher", Gen: func(g *gen) string {
			n := g.size(20, 60)
			shift := g.size(1, 25)
			s, i, acc, j := g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s[%s] = 'a' + (%s[%s] - 'a' + %s) %% 26;", s, i, s, i, g.num(int64(shift)))),
				acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s = %s * 2 + %s[%s];", acc, acc, s, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "run_length", Gen: func(g *gen) string {
			n := g.size(25, 70)
			s, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
%s`,
				g.fillString(s, n, g.seed()), acc,
				g.loopFrom(i, "1", g.num(int64(n)),
					fmt.Sprintf("if (%s[%s] != %s[%s - 1]) %s;", s, i, s, i, g.inc(acc))))
			return g.wrapMain("", body, acc+" * 6 + 2")
		}},
		{Name: "count_words", Gen: func(g *gen) string {
			n := g.size(30, 80)
			s, acc, i, inw := g.v("arr"), g.v("acc"), g.v("idx"), g.v("tmp")
			// Sprinkle spaces deterministically, then count words.
			body := fmt.Sprintf(`%s
%s
int %s = 0;
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()),
				func() string {
					z := g.v("idx")
					return g.loop(z, g.num(int64(n)), fmt.Sprintf(
						"if (%s %% 7 == 3) %s[%s] = ' ';", z, s, z))
				}(),
				acc, inw,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s] == ' ') %s = 0; else { if (%s == 0) %s; %s = 1; }",
					s, i, inw, inw, g.inc(acc), inw)))
			return g.wrapMain("", body, acc+" * 4")
		}},
		{Name: "to_upper_checksum", Gen: func(g *gen) string {
			n := g.size(20, 70)
			s, i, acc, j := g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s[%s] = %s[%s] - 'a' + 'A';", s, i, s, i)),
				acc,
				g.loop(j, g.num(int64(n)), fmt.Sprintf("%s += %s[%s];", acc, s, j)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "anagram_check", Gen: func(g *gen) string {
			n := g.size(15, 40)
			a, b, fa, i, ok, j := g.v("arr"), g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s[26];
%s
%s
int %s = 1;
%s`,
				g.fillString(a, n, g.seed()),
				g.fillString(b, n, g.seed()),
				fa,
				func() string { z := g.v("idx"); return g.loop(z, "26", fmt.Sprintf("%s[%s] = 0;", fa, z)) }(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s[%s[%s] - 'a'] += 1;\n%s[%s[%s] - 'a'] -= 1;", fa, a, i, fa, b, i)),
				ok,
				g.loop(j, "26", fmt.Sprintf("if (%s[%s] != 0) %s = 0;", fa, j, ok)))
			return g.wrapMain("", body, ok+" * 123 + 7")
		}},
		{Name: "longest_char_run", Gen: func(g *gen) string {
			n := g.size(25, 70)
			s, best, cur, i := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
int %s = 1;
%s`,
				g.fillString(s, n, g.seed()), best, cur,
				g.loopFrom(i, "1", g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s] == %s[%s - 1]) { %s; if (%s > %s) %s = %s; } else %s = 1;",
					s, i, s, i, g.inc(cur), cur, best, best, cur, cur)))
			return g.wrapMain("", body, best+" * 19 + 1")
		}},
		{Name: "substring_count", Gen: func(g *gen) string {
			n := g.size(25, 60)
			s, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			c1 := 'a' + byte(g.r.Intn(5))
			c2 := 'a' + byte(g.r.Intn(5))
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				g.fillString(s, n, g.seed()), acc,
				g.loop(i, fmt.Sprintf("%d - 1", n), fmt.Sprintf(
					"if (%s[%s] == '%c' && %s[%s + 1] == '%c') %s;", s, i, c1, s, i, c2, g.inc(acc))))
			return g.wrapMain("", body, acc+" * 29 + 3")
		}},
		{Name: "compare_strings", Gen: func(g *gen) string {
			n := g.size(15, 40)
			a, b, i, res := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
{ int %s = 0;
while (%s < %d) {
if (%s[%s] != %s[%s]) { %s = %s[%s] - %s[%s]; break; }
%s;
} }`,
				g.fillString(a, n, g.seed()),
				g.fillString(b, n, g.seed()+1),
				res, i, i, n, a, i, b, i, res, a, i, b, i, g.inc(i))
			return g.wrapMain("", body, res+" + 200")
		}},
		{Name: "first_unique_char", Gen: func(g *gen) string {
			n := g.size(15, 45)
			s, freq, i, ans, j := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[26];
%s
%s
int %s = -1;
%s`,
				g.fillString(s, n, g.seed()),
				freq,
				func() string { z := g.v("idx"); return g.loop(z, "26", fmt.Sprintf("%s[%s] = 0;", freq, z)) }(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s[%s] - 'a'] += 1;", freq, s, i)),
				ans,
				g.loop(j, g.num(int64(n)), fmt.Sprintf(
					"if (%s[%s[%s] - 'a'] == 1 && %s < 0) %s = %s;", freq, s, j, ans, ans, j)))
			return g.wrapMain("", body, ans+" + 30")
		}},
		{Name: "char_histogram_spread", Gen: func(g *gen) string {
			n := g.size(30, 90)
			s, freq, i, mx, mn, j := g.v("arr"), g.v("arr"), g.v("idx"), g.v("acc"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[26];
%s
%s
int %s = 0;
int %s = 1000;
%s`,
				g.fillString(s, n, g.seed()),
				freq,
				func() string { z := g.v("idx"); return g.loop(z, "26", fmt.Sprintf("%s[%s] = 0;", freq, z)) }(),
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s[%s[%s] - 'a'] += 1;", freq, s, i)),
				mx, mn,
				g.loop(j, "26", fmt.Sprintf(
					"if (%s[%s] > %s) %s = %s[%s];\nif (%s[%s] < %s) %s = %s[%s];",
					freq, j, mx, mx, freq, j, freq, j, mn, mn, freq, j)))
			return g.wrapMain("", body, mx+" * 100 + "+mn)
		}},
	}
}
