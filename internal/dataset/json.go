package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonSet is the serialized form of a Set: a versioned envelope so future
// layouts stay loadable.
type jsonSet struct {
	Version    int          `json:"version"`
	NumClasses int          `json:"num_classes"`
	Samples    []jsonSample `json:"samples"`
}

type jsonSample struct {
	Class  int    `json:"class"`
	Source string `json:"source"`
}

const jsonVersion = 1

// WriteJSON serializes the set.
func (s *Set) WriteJSON(w io.Writer) error {
	js := jsonSet{Version: jsonVersion, NumClasses: s.NumClasses}
	for _, smp := range s.Samples {
		js.Samples = append(js.Samples, jsonSample{Class: smp.Class, Source: smp.Source})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(js)
}

// ReadJSON deserializes a set and revalidates every sample (the file may
// have been edited by hand).
func ReadJSON(r io.Reader) (*Set, error) {
	var js jsonSet
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if js.Version != jsonVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", js.Version)
	}
	if js.NumClasses < 1 {
		return nil, fmt.Errorf("dataset: bad class count %d", js.NumClasses)
	}
	set := &Set{NumClasses: js.NumClasses}
	for i, smp := range js.Samples {
		if smp.Class < 0 || smp.Class >= js.NumClasses {
			return nil, fmt.Errorf("dataset: sample %d has label %d outside [0,%d)",
				i, smp.Class, js.NumClasses)
		}
		if err := compileCheck(smp.Source); err != nil {
			return nil, fmt.Errorf("dataset: sample %d: %w", i, err)
		}
		set.Samples = append(set.Samples, Sample{Class: smp.Class, Source: smp.Source})
	}
	if len(set.Samples) == 0 {
		return nil, fmt.Errorf("dataset: empty sample list")
	}
	return set, nil
}

// SaveFile writes the set to path.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteJSON(f)
}

// LoadFile reads a set from path.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
