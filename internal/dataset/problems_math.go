package dataset

import "fmt"

// mathProblems: number-theoretic and arithmetic tasks (22 problems).
func mathProblems() []Problem {
	return []Problem{
		{Name: "factorial", Gen: func(g *gen) string {
			n := g.size(8, 15)
			if g.r.Intn(2) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int n) {
if (n <= 1) return 1;
return n * %s(n - 1);
}
int main() { return %s(%s) %% 1000000007; }
`, fn, fn, fn, g.num(int64(n)))
			}
			acc, i := g.v("acc"), g.v("idx")
			body := fmt.Sprintf("int %s = 1;\n%s", acc,
				g.loopFrom(i, "1", g.num(int64(n+1)), fmt.Sprintf("%s *= %s;", acc, i)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "fibonacci", Gen: func(g *gen) string {
			n := g.size(12, 24)
			if g.r.Intn(3) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int n) {
if (n < 2) return n;
return %s(n - 1) + %s(n - 2);
}
int main() { return %s(%s) %% 1000000007; }
`, fn, fn, fn, fn, g.num(int64(n)))
			}
			a, b, i, t := g.v("acc"), g.v("tmp"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf("int %s = 0;\nint %s = 1;\n%s", a, b,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = %s + %s;\n%s = %s;\n%s = %s;", t, a, b, a, b, b, t)))
			return g.wrapMain("", body, a)
		}},
		{Name: "gcd", Gen: func(g *gen) string {
			a := g.size(200, 5000)
			b := g.size(30, 900)
			if g.r.Intn(2) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int a, int b) {
if (b == 0) return a;
return %s(b, a %% b);
}
int main() { return %s(%s, %s); }
`, fn, fn, fn, g.num(int64(a)), g.num(int64(b)))
			}
			x, y, t := g.v("tmp"), g.v("tmp"), g.v("tmp")
			body := fmt.Sprintf(`int %s = %s;
int %s = %s;
while (%s != 0) {
int %s = %s %% %s;
%s = %s;
%s = %s;
}`, x, g.num(int64(a)), y, g.num(int64(b)), y, t, x, y, x, y, y, t)
			return g.wrapMain("", body, x)
		}},
		{Name: "lcm", Gen: func(g *gen) string {
			a, b := g.size(6, 40), g.size(4, 28)
			x, y, t, res := g.v("tmp"), g.v("tmp"), g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = %s;
int %s = %s;
int %s = %s;
while (%s != 0) { int q = %s %% %s; %s = %s; %s = q; }
%s = %s / %s * %s;`,
				x, g.num(int64(a)), y, g.num(int64(b)),
				res, "0", t, y,
				t, x, t, x, t, t,
				res, g.num(int64(a)), x, g.num(int64(b)))
			return g.wrapMain("", body, res)
		}},
		{Name: "is_prime", Gen: func(g *gen) string {
			n := g.size(90, 700)
			p, d := g.v("acc"), g.v("idx")
			cond := fmt.Sprintf("%s * %s <= %s", d, d, g.num(int64(n)))
			body := fmt.Sprintf(`int %s = 1;
if (%s < 2) %s = 0;
{ int %s = 2; while (%s) {
if (%s %% %s == 0) { %s = 0; break; }
%s;
} }`, p, g.num(int64(n)), p, d, cond, g.num(int64(n)), d, p, g.inc(d))
			return g.wrapMain("", body, p+" * 37 + 5")
		}},
		{Name: "nth_prime", Gen: func(g *gen) string {
			n := g.size(10, 40)
			cnt, cand, last, d, isp := g.v("acc"), g.v("tmp"), g.v("acc"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`int %s = 0;
int %s = 1;
int %s = 2;
while (%s < %s) {
%s;
int %s = 1;
for (int %s = 2; %s * %s <= %s; %s++) {
if (%s %% %s == 0) { %s = 0; break; }
}
if (%s) { %s; %s = %s; }
}`, cnt, cand, last, cnt, g.num(int64(n)),
				g.inc(cand), isp, d, d, d, cand, d, cand, d, isp, isp, g.inc(cnt), last, cand)
			return g.wrapMain("", body, last)
		}},
		{Name: "digit_sum", Gen: func(g *gen) string {
			n := g.size(10000, 99999999)
			x, acc := g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = 0;
while (%s > 0) {
%s += %s %% 10;
%s /= 10;
}`, x, g.num(int64(n)), acc, x, acc, x, x)
			return g.wrapMain("", body, acc)
		}},
		{Name: "reverse_digits", Gen: func(g *gen) string {
			n := g.size(1234, 987654321)
			x, acc := g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = 0;
while (%s != 0) {
%s = %s * 10 + %s %% 10;
%s = %s / 10;
}`, x, g.num(int64(n)), acc, x, acc, acc, x, x, x)
			return g.wrapMain("", body, acc)
		}},
		{Name: "palindrome_number", Gen: func(g *gen) string {
			n := g.size(1000, 999999)
			x, rev, orig := g.v("tmp"), g.v("acc"), g.v("tmp")
			body := fmt.Sprintf(`int %s = %s;
int %s = %s;
int %s = 0;
while (%s > 0) { %s = %s * 10 + %s %% 10; %s /= 10; }`,
				orig, g.num(int64(n)), x, orig, rev, x, rev, rev, x, x)
			return g.wrapMain("", body, fmt.Sprintf("(%s == %s ? 77 : 31)", rev, orig))
		}},
		{Name: "modpow", Gen: func(g *gen) string {
			b := g.size(2, 12)
			e := g.size(10, 40)
			m := 1000000007
			base, ex, res := g.v("tmp"), g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = %s;
int %s = 1;
while (%s > 0) {
if (%s %% 2 == 1) %s = %s * %s %% %d;
%s = %s * %s %% %d;
%s /= 2;
}`, base, g.num(int64(b)), ex, g.num(int64(e)), res,
				ex, ex, res, res, base, m, base, base, base, m, ex)
			return g.wrapMain("", body, res)
		}},
		{Name: "collatz_steps", Gen: func(g *gen) string {
			n := g.size(7, 97)
			x, acc := g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = 0;
while (%s != 1) {
if (%s %% 2 == 0) %s /= 2;
else %s = 3 * %s + 1;
%s;
}`, x, g.num(int64(n)), acc, x, x, x, x, x, g.inc(acc))
			return g.wrapMain("", body, acc)
		}},
		{Name: "perfect_number", Gen: func(g *gen) string {
			n := g.size(6, 600)
			acc, d := g.v("acc"), g.v("idx")
			body := fmt.Sprintf(`int %s = 0;
%s`, acc, g.loopFrom(d, "1", g.num(int64(n)),
				fmt.Sprintf("if (%s %% %s == 0) %s += %s;", g.num(int64(n)), d, acc, d)))
			return g.wrapMain("", body,
				fmt.Sprintf("(%s == %s ? 41 : %s)", acc, g.num(int64(n)), acc))
		}},
		{Name: "armstrong", Gen: func(g *gen) string {
			n := g.size(100, 999)
			x, acc, d := g.v("tmp"), g.v("acc"), g.v("tmp")
			body := fmt.Sprintf(`int %s = %s;
int %s = 0;
while (%s > 0) {
int %s = %s %% 10;
%s += %s * %s * %s;
%s /= 10;
}`, x, g.num(int64(n)), acc, x, d, x, acc, d, d, d, x)
			return g.wrapMain("", body,
				fmt.Sprintf("(%s == %s ? 9 : %s)", acc, g.num(int64(n)), acc))
		}},
		{Name: "binomial", Gen: func(g *gen) string {
			n := g.size(10, 24)
			k := g.size(2, 8)
			if g.r.Intn(2) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int n, int k) {
if (k == 0 || k == n) return 1;
return %s(n - 1, k - 1) + %s(n - 1, k);
}
int main() { return %s(%s, %s) %% 1000000007; }
`, fn, fn, fn, fn, g.num(int64(n)), g.num(int64(k)))
			}
			c, i, j := g.v("arr"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[32];
%s[0] = 1;
for (int %s = 1; %s < 32; %s++) %s[%s] = 0;
%s`,
				c, c, i, i, i, c, i,
				g.loopFrom(j, "1", g.num(int64(n+1)), fmt.Sprintf(
					"for (int t = %d; t >= 1; t--) %s[t] = %s[t] + %s[t - 1];", k, c, c, c)))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", c, k))
		}},
		{Name: "catalan", Gen: func(g *gen) string {
			n := g.size(6, 14)
			c, i, j := g.v("arr"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`int %s[20];
%s[0] = 1;
%s`, c, c,
				g.loopFrom(i, "1", g.num(int64(n+1)), fmt.Sprintf(
					"%s[%s] = 0;\n%s",
					c, i,
					g.loop(j, i, fmt.Sprintf("%s[%s] += %s[%s] * %s[%s - 1 - %s];", c, i, c, j, c, i, j)))))
			return g.wrapMain("", body, fmt.Sprintf("%s[%d]", c, n))
		}},
		{Name: "digital_root", Gen: func(g *gen) string {
			n := g.size(12345, 999999999)
			x, s := g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
while (%s >= 10) {
int %s = 0;
while (%s > 0) { %s += %s %% 10; %s /= 10; }
%s = %s;
}`, x, g.num(int64(n)), x, s, x, s, x, x, x, s)
			return g.wrapMain("", body, x)
		}},
		{Name: "count_divisors", Gen: func(g *gen) string {
			n := g.size(60, 5040)
			acc, d := g.v("acc"), g.v("idx")
			body := fmt.Sprintf("int %s = 0;\n%s", acc,
				g.loopFrom(d, "1", g.num(int64(n+1)),
					fmt.Sprintf("if (%s %% %s == 0) %s;", g.num(int64(n)), d, g.inc(acc))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "integer_sqrt", Gen: func(g *gen) string {
			n := g.size(100, 100000)
			r := g.v("acc")
			if g.r.Intn(2) == 0 {
				body := fmt.Sprintf(`int %s = 0;
while ((%s + 1) * (%s + 1) <= %s) %s;`, r, r, r, g.num(int64(n)), g.inc(r))
				return g.wrapMain("", body, r)
			}
			lo, hi, mid := g.v("tmp"), g.v("tmp"), g.v("tmp")
			body := fmt.Sprintf(`int %s = 0;
int %s = %s;
int %s = 0;
while (%s <= %s) {
int %s = (%s + %s) / 2;
if (%s * %s <= %s) { %s = %s; %s = %s + 1; }
else %s = %s - 1;
}`, lo, hi, g.num(int64(n)), r, lo, hi, mid, lo, hi, mid, mid, g.num(int64(n)), r, mid, lo, mid, hi, mid)
			return g.wrapMain("", body, r)
		}},
		{Name: "fast_power", Gen: func(g *gen) string {
			b := g.size(2, 6)
			e := g.size(8, 20)
			if g.r.Intn(2) == 0 {
				fn := g.v("fn")
				return fmt.Sprintf(`int %s(int b, int e) {
if (e == 0) return 1;
int h = %s(b, e / 2);
if (e %% 2 == 0) return h * h;
return h * h * b;
}
int main() { return %s(%s, %s) %% 1000000007; }
`, fn, fn, fn, g.num(int64(b)), g.num(int64(e)))
			}
			acc, i := g.v("acc"), g.v("idx")
			body := fmt.Sprintf("int %s = 1;\n%s", acc,
				g.loop(i, g.num(int64(e)), fmt.Sprintf("%s = %s * %s %% 1000000007;", acc, acc, g.num(int64(b)))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "happy_number", Gen: func(g *gen) string {
			n := g.size(10, 99)
			x, it, s, d := g.v("tmp"), g.v("idx"), g.v("acc"), g.v("tmp")
			body := fmt.Sprintf(`int %s = %s;
%s`, x, g.num(int64(n)),
				g.loop(it, g.num(20), fmt.Sprintf(
					"int %s = 0;\nwhile (%s > 0) { int %s = %s %% 10; %s += %s * %s; %s /= 10; }\n%s = %s;",
					s, x, d, x, s, d, d, x, x, s)))
			return g.wrapMain("", body, fmt.Sprintf("(%s == 1 ? 88 : %s)", x, x))
		}},
		{Name: "base_convert_sum", Gen: func(g *gen) string {
			n := g.size(500, 90000)
			base := g.size(2, 9)
			x, acc := g.v("tmp"), g.v("acc")
			body := fmt.Sprintf(`int %s = %s;
int %s = 0;
while (%s > 0) {
%s += %s %% %s;
%s /= %s;
}`, x, g.num(int64(n)), acc, x, acc, x, g.num(int64(base)), x, g.num(int64(base)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "triangular_sum", Gen: func(g *gen) string {
			n := g.size(10, 60)
			acc, i, j := g.v("acc"), g.v("idx"), g.v("idx")
			if g.r.Intn(2) == 0 {
				body := fmt.Sprintf("int %s = 0;\n%s", acc,
					g.loopFrom(i, "1", g.num(int64(n+1)),
						fmt.Sprintf("%s += %s * (%s + 1) / 2;", acc, i, i)))
				return g.wrapMain("", body, acc)
			}
			body := fmt.Sprintf("int %s = 0;\n%s", acc,
				g.loopFrom(i, "1", g.num(int64(n+1)),
					g.loopFrom(j, "1", i+" + 1", fmt.Sprintf("%s += %s;", acc, j))))
			return g.wrapMain("", body, acc)
		}},
	}
}
