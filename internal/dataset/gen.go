// Package dataset synthesizes the corpora of the paper's evaluation: a
// balanced POJ-104-like benchmark of 104 programming problems with
// arbitrarily many structurally distinct MiniC solutions per problem, a
// Mirai-like malware family with benign counterparts (RQ8), and the sixteen
// "Benchmark Game" kernels used by the performance experiment (RQ6).
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// gen provides the structural-variation toolkit shared by all problem
// generators: randomized identifier names, loop styles, increment styles,
// comparison direction, constant spelling and harmless statement noise.
// Two solutions to the same problem differ in all of these axes while
// implementing the same algorithm — mirroring how 500 different humans
// solved each POJ-104 problem.
type gen struct {
	r     *rand.Rand
	used  map[string]bool
	noise bool // whether this sample sprinkles dead statements
}

func newGen(r *rand.Rand) *gen {
	return &gen{r: r, used: map[string]bool{}, noise: r.Intn(3) == 0}
}

var namePools = map[string][]string{
	"idx": {"i", "j", "k", "n", "p", "q", "t", "pos", "ii", "c1"},
	"arr": {"a", "arr", "data", "v", "buf", "vec", "nums", "xs", "tab"},
	"acc": {"s", "sum", "acc", "total", "res", "r", "out", "ans", "agg"},
	"tmp": {"t", "tmp", "aux", "x", "y", "z", "w", "h", "m"},
	"fn":  {"solve", "work", "calc", "run", "process", "compute", "doit"},
}

// v returns a fresh identifier drawn from the named pool.
func (g *gen) v(pool string) string {
	candidates := namePools[pool]
	for tries := 0; tries < 20; tries++ {
		n := candidates[g.r.Intn(len(candidates))]
		if !g.used[n] {
			g.used[n] = true
			return n
		}
	}
	// Pool exhausted: make a numbered name.
	for i := 0; ; i++ {
		n := fmt.Sprintf("%s%d", candidates[0], i)
		if !g.used[n] {
			g.used[n] = true
			return n
		}
	}
}

// num renders an integer literal, occasionally as a tiny expression.
func (g *gen) num(v int64) string {
	if g.r.Intn(4) != 0 || v < 2 || v > 1000 {
		return fmt.Sprintf("%d", v)
	}
	k := int64(g.r.Intn(int(v))) + 1
	switch g.r.Intn(2) {
	case 0:
		return fmt.Sprintf("(%d + %d)", v-k, k)
	default:
		return fmt.Sprintf("(%d - %d)", v+k, k)
	}
}

// inc renders an increment statement for variable v.
func (g *gen) inc(v string) string {
	switch g.r.Intn(3) {
	case 0:
		return v + "++"
	case 1:
		return v + " += 1"
	default:
		return v + " = " + v + " + 1"
	}
}

// lt renders "a < b" in a random direction.
func (g *gen) lt(a, b string) string {
	if g.r.Intn(2) == 0 {
		return a + " < " + b
	}
	return b + " > " + a
}

// loop renders a counted loop from 0 to limit (exclusive) with the given
// body, choosing among for/while styles. iv must be a fresh name.
func (g *gen) loop(iv, limit, body string) string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("for (int %s = 0; %s; %s) {\n%s\n}", iv, g.lt(iv, limit), g.inc(iv), body)
	case 1:
		return fmt.Sprintf("{ int %s = 0; while (%s) {\n%s\n%s;\n} }", iv, g.lt(iv, limit), body, g.inc(iv))
	default:
		return fmt.Sprintf("for (int %s = 0; %s; %s = %s + 1) {\n%s\n}", iv, g.lt(iv, limit), iv, iv, body)
	}
}

// loopFrom renders a counted loop over [from, to).
func (g *gen) loopFrom(iv, from, to, body string) string {
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("for (int %s = %s; %s; %s) {\n%s\n}", iv, from, g.lt(iv, to), g.inc(iv), body)
	}
	return fmt.Sprintf("{ int %s = %s; while (%s) {\n%s\n%s;\n} }", iv, from, g.lt(iv, to), body, g.inc(iv))
}

// deadNoise returns an occasional harmless statement.
func (g *gen) deadNoise() string {
	if !g.noise || g.r.Intn(2) == 0 {
		return ""
	}
	t := g.v("tmp")
	return fmt.Sprintf("int %s = %d; %s = %s + %d;\n", t, g.r.Intn(50), t, t, g.r.Intn(9)+1)
}

// fillArray emits code declaring an int array of length n filled with a
// deterministic pseudo-random sequence derived from seed — either as a
// brace initializer or as an LCG fill loop (two very different shapes for
// the same data distribution).
func (g *gen) fillArray(name string, n int, seed int64) string {
	if n <= 16 && g.r.Intn(2) == 0 {
		vals := make([]string, n)
		x := seed
		for i := range vals {
			x = (x*1103515245 + 12345) % 2147483648
			vals[i] = fmt.Sprintf("%d", x%199)
		}
		return fmt.Sprintf("int %s[%d] = {%s};", name, n, strings.Join(vals, ", "))
	}
	iv := g.v("idx")
	sv := g.v("tmp")
	return fmt.Sprintf(
		"int %s[%d];\nint %s = %d;\n%s",
		name, n, sv, seed,
		g.loop(iv, fmt.Sprintf("%d", n),
			fmt.Sprintf("%s = (%s * 1103515245 + 12345) %% 2147483648;\n%s[%s] = %s %% 199;",
				sv, sv, name, iv, sv)))
}

// fillFloatArray is the floating-point analogue of fillArray.
func (g *gen) fillFloatArray(name string, n int, seed int64) string {
	iv := g.v("idx")
	sv := g.v("tmp")
	return fmt.Sprintf(
		"float %s[%d];\nint %s = %d;\n%s",
		name, n, sv, seed,
		g.loop(iv, fmt.Sprintf("%d", n),
			fmt.Sprintf("%s = (%s * 1103515245 + 12345) %% 2147483648;\n%s[%s] = (%s %% 997) / 31.0;",
				sv, sv, name, iv, sv)))
}

// fillString emits a char array of length n+1 holding a deterministic
// lowercase string plus NUL.
func (g *gen) fillString(name string, n int, seed int64) string {
	iv := g.v("idx")
	sv := g.v("tmp")
	return fmt.Sprintf(
		"char %s[%d];\nint %s = %d;\n%s\n%s[%d] = 0;",
		name, n+1, sv, seed,
		g.loop(iv, fmt.Sprintf("%d", n),
			fmt.Sprintf("%s = (%s * 131 + 7) %% 65536;\n%s[%s] = 'a' + %s %% 26;",
				sv, sv, name, iv, sv)),
		name, n)
}

// wrapMain builds a complete program whose main computes `body` into result
// variable res and returns it (modulo a large prime to keep outputs small).
// Some samples route the computation through a helper function instead —
// the "helper decomposition" variation axis.
func (g *gen) wrapMain(decls, body, result string) string {
	ret := fmt.Sprintf("return %s %% 1000000007;", result)
	if g.r.Intn(3) == 0 {
		fn := g.v("fn")
		return fmt.Sprintf("%s\nint %s() {\n%s\n%s\n}\nint main() {\nreturn %s();\n}\n",
			"", fn, body, ret, fn)
	}
	_ = decls
	return fmt.Sprintf("int main() {\n%s\n%s\n}\n", body, ret)
}

// size picks a problem-size constant in [lo, hi], varying per sample.
func (g *gen) size(lo, hi int) int {
	return lo + g.r.Intn(hi-lo+1)
}

// seed returns a per-sample data seed.
func (g *gen) seed() int64 { return int64(g.r.Intn(9000) + 11) }
