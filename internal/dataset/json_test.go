package dataset_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestJSONRoundTrip(t *testing.T) {
	set, err := dataset.Generate(6, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses != set.NumClasses || len(got.Samples) != len(set.Samples) {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			got.NumClasses, len(got.Samples), set.NumClasses, len(set.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != set.Samples[i] {
			t.Fatalf("sample %d changed", i)
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	set, err := dataset.Generate(3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 9 {
		t.Fatalf("loaded %d samples", len(got.Samples))
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"version": 99, "num_classes": 2, "samples": []}`,
		`{"version": 1, "num_classes": 0, "samples": []}`,
		`{"version": 1, "num_classes": 2, "samples": []}`,
		`{"version": 1, "num_classes": 2, "samples": [{"class": 7, "source": "int main() { return 0; }"}]}`,
		`{"version": 1, "num_classes": 2, "samples": [{"class": 0, "source": "not a program"}]}`,
	}
	for _, c := range cases {
		if _, err := dataset.ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
