package dataset_test

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/passes"
)

func TestRegistryHas104Problems(t *testing.T) {
	probs := dataset.Problems()
	if len(probs) != 104 {
		t.Fatalf("registry has %d problems, the paper's POJ-104 has 104", len(probs))
	}
	seen := map[string]bool{}
	for i, p := range probs {
		if p.Name == "" || p.Gen == nil {
			t.Fatalf("problem %d is incomplete", i)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate problem name %q", p.Name)
		}
		seen[p.Name] = true
		if p.ID != i {
			t.Fatalf("problem %q has ID %d, want %d", p.Name, p.ID, i)
		}
	}
}

// TestEverySolutionCompilesAndRuns draws several samples from every problem
// and checks they compile, run without traps, and terminate.
func TestEverySolutionCompilesAndRuns(t *testing.T) {
	set, err := dataset.Generate(104, 3, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 104*3 {
		t.Fatalf("got %d samples, want %d", len(set.Samples), 104*3)
	}
	for _, smp := range set.Samples {
		m, err := minic.CompileSource(smp.Source, "s")
		if err != nil {
			t.Fatalf("class %d: compile: %v\n%s", smp.Class, err, smp.Source)
		}
		if _, err := interp.Run(m, interp.Options{MaxSteps: 5_000_000}); err != nil {
			t.Fatalf("class %d: run: %v\n%s", smp.Class, err, smp.Source)
		}
	}
}

// TestSolutionsVaryStructurally: two samples of the same class should
// (almost always) differ textually.
func TestSolutionsVaryStructurally(t *testing.T) {
	set, err := dataset.Generate(104, 2, 999)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for c := 0; c < 104; c++ {
		a := set.Samples[c*2].Source
		b := set.Samples[c*2+1].Source
		if a == b {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d/104 classes produced identical solution pairs", same)
	}
}

// TestSolutionsSurviveO3: dataset programs must stay semantically intact
// under the full optimizer (they are the substrate of every game).
func TestSolutionsSurviveO3(t *testing.T) {
	set, err := dataset.Generate(30, 1, 777)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range set.Samples {
		m0, err := minic.CompileSource(smp.Source, "s")
		if err != nil {
			t.Fatal(err)
		}
		r0, err := interp.Run(m0, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("O0 run: %v\n%s", err, smp.Source)
		}
		m3, _ := minic.CompileSource(smp.Source, "s")
		if err := passes.Optimize(m3, passes.O3); err != nil {
			t.Fatalf("optimize: %v\n%s", err, smp.Source)
		}
		r3, err := interp.Run(m3, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("O3 run: %v\n%s", err, smp.Source)
		}
		if r0.Ret != r3.Ret {
			t.Fatalf("class %d: O3 changed result %d -> %d\n%s", smp.Class, r0.Ret, r3.Ret, smp.Source)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := dataset.Generate(10, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.Generate(10, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].Source != b.Samples[i].Source {
			t.Fatal("same seed produced different datasets")
		}
	}
	c, err := dataset.Generate(10, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Samples {
		if a.Samples[i].Source != c.Samples[i].Source {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := dataset.Generate(0, 5, 1); err == nil {
		t.Fatal("accepted zero classes")
	}
	if _, err := dataset.Generate(500, 5, 1); err == nil {
		t.Fatal("accepted too many classes")
	}
}

func TestSplitBalanced(t *testing.T) {
	set, err := dataset.Generate(8, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	train, test := set.Split(0.75, rand.New(rand.NewSource(1)))
	if len(train) != 8*6 || len(test) != 8*2 {
		t.Fatalf("split sizes %d/%d, want 48/16", len(train), len(test))
	}
	counts := map[int]int{}
	for _, s := range train {
		counts[s.Class]++
	}
	for c, n := range counts {
		if n != 6 {
			t.Fatalf("class %d has %d training samples, want 6", c, n)
		}
	}
}
