package dataset

import "fmt"

// matrixProblems: two-dimensional array tasks (10 problems).
func matrixProblems() []Problem {
	// fillMatrix emits an n x n int matrix with LCG contents.
	fillMatrix := func(g *gen, name string, n int, seed int64) string {
		i, j, sv := g.v("idx"), g.v("idx"), g.v("tmp")
		return fmt.Sprintf(`int %s[%d][%d];
int %s = %d;
%s`,
			name, n, n, sv, seed,
			g.loop(i, fmt.Sprintf("%d", n),
				g.loop(j, fmt.Sprintf("%d", n), fmt.Sprintf(
					"%s = (%s * 1103515245 + 12345) %% 2147483648;\n%s[%s][%s] = %s %% 97;",
					sv, sv, name, i, j, sv))))
	}
	return []Problem{
		{Name: "matrix_trace", Gen: func(g *gen) string {
			n := g.size(5, 12)
			m, acc, i := g.v("arr"), g.v("acc"), g.v("idx")
			body := fmt.Sprintf("%s\nint %s = 0;\n%s",
				fillMatrix(g, m, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)), fmt.Sprintf("%s += %s[%s][%s];", acc, m, i, i)))
			return g.wrapMain("", body, acc)
		}},
		{Name: "matrix_transpose_checksum", Gen: func(g *gen) string {
			n := g.size(5, 10)
			m, i, j, t, acc, p, q := g.v("arr"), g.v("idx"), g.v("idx"), g.v("tmp"), g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s = 0;
%s`,
				fillMatrix(g, m, n, g.seed()),
				g.loop(i, g.num(int64(n)),
					g.loopFrom(j, i+" + 1", g.num(int64(n)), fmt.Sprintf(
						"int %s = %s[%s][%s]; %s[%s][%s] = %s[%s][%s]; %s[%s][%s] = %s;",
						t, m, i, j, m, i, j, m, j, i, m, j, i, t))),
				acc,
				g.loop(p, g.num(int64(n)),
					g.loop(q, g.num(int64(n)), fmt.Sprintf("%s = %s * 3 + %s[%s][%s];", acc, acc, m, p, q))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "matrix_multiply", Gen: func(g *gen) string {
			n := g.size(4, 8)
			a, b, c := g.v("arr"), g.v("arr"), g.v("arr")
			i, j, k := g.v("idx"), g.v("idx"), g.v("idx")
			acc, p, q := g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
%s
int %s[%d][%d];
%s
int %s = 0;
%s`,
				fillMatrix(g, a, n, g.seed()),
				fillMatrix(g, b, n, g.seed()+5),
				c, n, n,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"%s[%s][%s] = 0;\n%s",
						c, i, j,
						g.loop(k, g.num(int64(n)),
							fmt.Sprintf("%s[%s][%s] += %s[%s][%s] * %s[%s][%s];", c, i, j, a, i, k, b, k, j))))),
				acc,
				g.loop(p, g.num(int64(n)),
					g.loop(q, g.num(int64(n)), fmt.Sprintf("%s = (%s * 7 + %s[%s][%s]) %% 1000003;", acc, acc, c, p, q))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "is_identity", Gen: func(g *gen) string {
			n := g.size(4, 9)
			m, ok, i, j := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx")
			fill := g.v("idx")
			fill2 := g.v("idx")
			body := fmt.Sprintf(`int %s[%d][%d];
%s
int %s = 1;
%s`,
				m, n, n,
				g.loop(fill, g.num(int64(n)),
					g.loop(fill2, g.num(int64(n)), fmt.Sprintf(
						"if (%s == %s) %s[%s][%s] = 1; else %s[%s][%s] = 0;",
						fill, fill2, m, fill, fill2, m, fill, fill2))),
				ok,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"if (%s == %s) { if (%s[%s][%s] != 1) %s = 0; } else if (%s[%s][%s] != 0) %s = 0;",
						i, j, m, i, j, ok, m, i, j, ok))))
			return g.wrapMain("", body, ok+" * 777 + 1")
		}},
		{Name: "is_symmetric", Gen: func(g *gen) string {
			n := g.size(4, 9)
			m, ok, i, j := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 1;
%s`,
				fillMatrix(g, m, n, g.seed()), ok,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"if (%s[%s][%s] != %s[%s][%s]) %s = 0;", m, i, j, m, j, i, ok))))
			return g.wrapMain("", body, ok+" * 345 + 6")
		}},
		{Name: "max_row_sum", Gen: func(g *gen) string {
			n := g.size(5, 11)
			m, best, i, j, rs := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx"), g.v("tmp")
			body := fmt.Sprintf(`%s
int %s = -1;
%s`,
				fillMatrix(g, m, n, g.seed()), best,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"int %s = 0;\n%s\nif (%s > %s) %s = %s;",
					rs,
					g.loop(j, g.num(int64(n)), fmt.Sprintf("%s += %s[%s][%s];", rs, m, i, j)),
					rs, best, best, rs)))
			return g.wrapMain("", body, best)
		}},
		{Name: "diagonal_difference", Gen: func(g *gen) string {
			n := g.size(5, 12)
			m, a, b, i := g.v("arr"), g.v("acc"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
int %s = 0;
%s`,
				fillMatrix(g, m, n, g.seed()), a, b,
				g.loop(i, g.num(int64(n)), fmt.Sprintf(
					"%s += %s[%s][%s];\n%s += %s[%s][%d - 1 - %s];", a, m, i, i, b, m, i, n, i)))
			return g.wrapMain("", body, fmt.Sprintf("(%s > %s ? %s - %s : %s - %s) * 3", a, b, a, b, b, a))
		}},
		{Name: "rotate90_checksum", Gen: func(g *gen) string {
			n := g.size(4, 8)
			m, r, i, j, acc, p, q := g.v("arr"), g.v("arr"), g.v("idx"), g.v("idx"), g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s[%d][%d];
%s
int %s = 0;
%s`,
				fillMatrix(g, m, n, g.seed()),
				r, n, n,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"%s[%s][%d - 1 - %s] = %s[%s][%s];", r, j, n, i, m, i, j))),
				acc,
				g.loop(p, g.num(int64(n)),
					g.loop(q, g.num(int64(n)), fmt.Sprintf("%s = %s * 5 + %s[%s][%s];", acc, acc, r, p, q))))
			return g.wrapMain("", body, acc)
		}},
		{Name: "saddle_points", Gen: func(g *gen) string {
			n := g.size(4, 8)
			m, acc, i, j := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx")
			rmin, cmax, k := g.v("tmp"), g.v("tmp"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				fillMatrix(g, m, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						`int %s = 1;
int %s = 1;
%s
if (%s && %s) %s;`,
						rmin, cmax,
						g.loop(k, g.num(int64(n)), fmt.Sprintf(
							"if (%s[%s][%s] > %s[%s][%s]) %s = 0;\nif (%s[%s][%s] < %s[%s][%s]) %s = 0;",
							m, i, k, m, i, j, rmin, m, k, j, m, i, j, cmax)),
						rmin, cmax, g.inc(acc)))))
			return g.wrapMain("", body, acc+" * 13 + 2")
		}},
		{Name: "border_sum", Gen: func(g *gen) string {
			n := g.size(5, 12)
			m, acc, i, j := g.v("arr"), g.v("acc"), g.v("idx"), g.v("idx")
			body := fmt.Sprintf(`%s
int %s = 0;
%s`,
				fillMatrix(g, m, n, g.seed()), acc,
				g.loop(i, g.num(int64(n)),
					g.loop(j, g.num(int64(n)), fmt.Sprintf(
						"if (%s == 0 || %s == %d - 1 || %s == 0 || %s == %d - 1) %s += %s[%s][%s];",
						i, i, n, j, j, n, acc, m, i, j))))
			return g.wrapMain("", body, acc)
		}},
	}
}
