package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs:
//
//	entry -> then/els -> join(phi) -> ret
func buildDiamond(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("test")
	f := m.Add(NewFunction("max", I64, []string{"a", "b"}, []*Type{I64, I64}))
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")

	bd := NewBuilder(entry)
	cmp := bd.ICmp(CmpSGT, f.Params[0], f.Params[1])
	bd.CondBr(cmp, then, els)

	bd.SetBlock(then)
	bd.Br(join)
	bd.SetBlock(els)
	bd.Br(join)

	bd.SetBlock(join)
	phi := bd.Phi(I64)
	phi.SetPhiIncoming(then, f.Params[0])
	phi.SetPhiIncoming(els, f.Params[1])
	bd.Ret(phi)
	return m, f
}

func TestVerifyDiamond(t *testing.T) {
	m, _ := buildDiamond(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.Add(NewFunction("f", Void, nil, nil))
	b := f.NewBlock("entry")
	NewBuilder(b).Add(ConstInt(I64, 1), ConstInt(I64, 2))
	if err := m.Verify(); err == nil {
		t.Fatal("expected error for unterminated block")
	}
}

func TestVerifyCatchesBadPhi(t *testing.T) {
	m, f := buildDiamond(t)
	join := f.Blocks[3]
	phi := join.Phis()[0]
	phi.RemovePhiIncoming(f.Blocks[1]) // drop "then" edge
	if err := m.Verify(); err == nil {
		t.Fatal("expected error for phi missing a predecessor edge")
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	m := NewModule("bad")
	f := m.Add(NewFunction("f", I64, nil, nil))
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	a := bd.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	c := bd.Add(a, ConstInt(I64, 3))
	bd.Ret(c)
	// Swap so c precedes a.
	b.Instrs[0], b.Instrs[1] = b.Instrs[1], b.Instrs[0]
	if err := m.Verify(); err == nil {
		t.Fatal("expected dominance error")
	}
}

func TestDomTreeDiamond(t *testing.T) {
	_, f := buildDiamond(t)
	dt := NewDomTree(f)
	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if dt.IDom[then] != entry || dt.IDom[els] != entry || dt.IDom[join] != entry {
		t.Fatalf("wrong idoms: %v %v %v", dt.IDom[then], dt.IDom[els], dt.IDom[join])
	}
	if !dt.Dominates(entry, join) {
		t.Fatal("entry must dominate join")
	}
	if dt.Dominates(then, join) {
		t.Fatal("then must not dominate join")
	}
	df := dt.Frontiers()
	if len(df[then]) != 1 || df[then][0] != join {
		t.Fatalf("DF(then) = %v, want [join]", df[then])
	}
}

func TestNaturalLoops(t *testing.T) {
	m := NewModule("loop")
	f := m.Add(NewFunction("f", I64, []string{"n"}, []*Type{I64}))
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	bd := NewBuilder(entry)
	iv := bd.Alloca(I64)
	bd.Store(ConstInt(I64, 0), iv)
	bd.Br(head)

	bd.SetBlock(head)
	i := bd.Load(iv)
	cmp := bd.ICmp(CmpSLT, i, f.Params[0])
	bd.CondBr(cmp, body, exit)

	bd.SetBlock(body)
	i2 := bd.Load(iv)
	bd.Store(bd.Add(i2, ConstInt(I64, 1)), iv)
	bd.Br(head)

	bd.SetBlock(exit)
	bd.Ret(bd.Load(iv))

	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	loops := NewDomTree(f).NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != head {
		t.Fatalf("header = %s", l.Header.Label())
	}
	if !l.Blocks[body] || l.Blocks[entry] || l.Blocks[exit] {
		t.Fatalf("wrong loop body: %v", l.Blocks)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	m, f := buildDiamond(t)
	dead := f.NewBlock("dead")
	NewBuilder(dead).Br(f.Blocks[3]) // dead -> join
	join := f.Blocks[3]
	phi := join.Phis()[0]
	phi.SetPhiIncoming(dead, ConstInt(I64, 0))
	if n := f.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if len(phi.Args) != 2 {
		t.Fatalf("phi edge from dead block not removed: %v", phi.Args)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after removal: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, f := buildDiamond(t)
	c := m.Clone()
	cf := c.Func("max")
	if cf == nil || cf == f {
		t.Fatal("clone did not produce a distinct function")
	}
	if cf.NumInstrs() != f.NumInstrs() {
		t.Fatalf("clone has %d instrs, original %d", cf.NumInstrs(), f.NumInstrs())
	}
	// Mutating the clone must not affect the original.
	cf.Blocks[0].Instrs = nil
	if f.NumInstrs() == cf.NumInstrs() {
		t.Fatal("clone shares instruction storage with original")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("original damaged by clone mutation: %v", err)
	}
}

func TestConstNormalization(t *testing.T) {
	c := ConstInt(I8, 300)
	if c.I != 44 {
		t.Fatalf("i8 300 = %d, want 44", c.I)
	}
	c = ConstInt(I8, -1)
	if c.I != -1 {
		t.Fatalf("i8 -1 = %d, want -1", c.I)
	}
	c = ConstInt(I1, 3)
	if c.I != 1 { // i1 canonicalizes to 0/1, matching ConstBool
		t.Fatalf("i1 3 = %d, want 1", c.I)
	}
}

func TestOpcodeCount(t *testing.T) {
	if NumOpcodes != 63 {
		t.Fatalf("NumOpcodes = %d, want 63 (histogram dimensionality)", NumOpcodes)
	}
	seen := map[string]bool{}
	for op := Opcode(0); op < NumOpcodes; op++ {
		name := op.String()
		if name == "" || name == "badop" {
			t.Fatalf("opcode %d has no name", op)
		}
		if seen[name] {
			t.Fatalf("duplicate opcode name %q", name)
		}
		seen[name] = true
	}
}

func TestPredInverseSwap(t *testing.T) {
	for p := CmpEQ; p <= CmpUGE; p++ {
		if p.Inverse().Inverse() != p {
			t.Fatalf("inverse not involutive for %s", p)
		}
		if p.Swapped().Swapped() != p {
			t.Fatalf("swap not involutive for %s", p)
		}
	}
}

func TestPrinterSmoke(t *testing.T) {
	m, _ := buildDiamond(t)
	s := m.String()
	for _, want := range []string{"define i64 @max", "icmp sgt", "phi i64", "ret i64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		want int
	}{
		{I1, 1}, {I8, 1}, {I32, 4}, {I64, 8}, {F64, 8},
		{PtrTo(I64), 8}, {ArrayOf(I32, 10), 40}, {ArrayOf(ArrayOf(I64, 2), 3), 48},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.want {
			t.Errorf("size(%s) = %d, want %d", c.ty, got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PtrTo(I64).Equal(PtrTo(I64)) {
		t.Fatal("structurally equal pointers differ")
	}
	if PtrTo(I64).Equal(PtrTo(I32)) {
		t.Fatal("i64* equals i32*")
	}
	if !FuncOf(I64, I64, F64).Equal(FuncOf(I64, I64, F64)) {
		t.Fatal("equal function types differ")
	}
	if FuncOf(I64, I64).Equal(FuncOf(I64, I64, I64)) {
		t.Fatal("different arity equal")
	}
}

func TestReplaceUses(t *testing.T) {
	m := NewModule("r")
	f := m.Add(NewFunction("f", I64, []string{"x"}, []*Type{I64}))
	b := f.NewBlock("entry")
	bd := NewBuilder(b)
	a := bd.Add(f.Params[0], ConstInt(I64, 1))
	s := bd.Mul(a, a)
	bd.Ret(s)
	n := f.ReplaceUses(a, f.Params[0])
	if n != 2 {
		t.Fatalf("replaced %d uses, want 2", n)
	}
	if s.Args[0] != f.Params[0] || s.Args[1] != f.Params[0] {
		t.Fatal("operands not rewritten")
	}
}
