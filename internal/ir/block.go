package ir

// Block is a basic block: a maximal straight-line sequence of instructions
// ending in exactly one terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Function
	// ID is a function-unique number; printing uses Name when set, else bID.
	ID int
}

// Label returns the printable label of the block.
func (b *Block) Label() string {
	if b.Name != "" {
		return b.Name
	}
	return "b" + itoa(b.ID)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Term returns the block's terminator, or nil if the block is not yet
// terminated (legal only mid-construction).
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Succs returns the successor blocks of b.
func (b *Block) Succs() []*Block {
	if t := b.Term(); t != nil {
		return t.Succs()
	}
	return nil
}

// Append adds an instruction to the end of the block and sets its parent.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	in.ID = b.Fn.nextID()
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts instruction in immediately before position idx.
func (b *Block) InsertBefore(idx int, in *Instr) {
	in.Parent = b
	if in.ID == 0 {
		in.ID = b.Fn.nextID()
	}
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// InsertBeforeTerm inserts in immediately before the block's terminator; if
// the block has no terminator it appends.
func (b *Block) InsertBeforeTerm(in *Instr) {
	if b.Term() == nil {
		b.Append(in)
		return
	}
	b.InsertBefore(len(b.Instrs)-1, in)
}

// RemoveAt deletes the instruction at index idx.
func (b *Block) RemoveAt(idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}

// Remove deletes instruction in from the block, if present.
func (b *Block) Remove(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.RemoveAt(i)
			return
		}
	}
}

// Phis returns the phi instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	var out []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Instrs {
		if in.Op != OpPhi {
			return i
		}
	}
	return len(b.Instrs)
}
