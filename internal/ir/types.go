// Package ir implements a static single assignment (SSA) intermediate
// representation modelled on the LLVM IR. It is the substrate shared by the
// front end (internal/minic), the optimizer (internal/passes), the
// obfuscators (internal/obfus), the interpreter (internal/interp) and the
// program embeddings (internal/embed).
//
// The instruction set has exactly 63 opcodes, matching the dimensionality of
// the opcode-histogram embedding used throughout the paper ("a vector of 63
// positions counting instruction opcodes").
package ir

import (
	"fmt"
	"strings"
)

// TypeKind discriminates the kinds of IR types.
type TypeKind int

// The kinds of types supported by the IR.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PtrKind
	ArrayKind
	StructKind
	FuncKind
)

// Type describes an IR type. Types are structural: two types are
// interchangeable whenever Equal reports true. The exported singletons
// (Void, I1, ... F64) should be used for scalar types.
type Type struct {
	Kind   TypeKind
	Bits   int     // IntKind: bit width (1, 8, 32 or 64)
	Elem   *Type   // PtrKind: pointee; ArrayKind: element
	Len    int     // ArrayKind: number of elements
	Fields []*Type // StructKind: field types (packed layout, no padding)
	Params []*Type // FuncKind: parameter types
	Ret    *Type   // FuncKind: return type
}

// Scalar type singletons.
var (
	Void = &Type{Kind: VoidKind}
	I1   = &Type{Kind: IntKind, Bits: 1}
	I8   = &Type{Kind: IntKind, Bits: 8}
	I32  = &Type{Kind: IntKind, Bits: 32}
	I64  = &Type{Kind: IntKind, Bits: 64}
	F64  = &Type{Kind: FloatKind}
)

// PtrTo returns the pointer type with pointee elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: PtrKind, Elem: elem} }

// ArrayOf returns the array type [n x elem].
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: ArrayKind, Elem: elem, Len: n}
}

// FuncOf returns the function type with the given parameters and return type.
func FuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: FuncKind, Ret: ret, Params: params}
}

// StructOf returns the packed struct type with the given field types.
func StructOf(fields ...*Type) *Type {
	return &Type{Kind: StructKind, Fields: fields}
}

// IsStruct reports whether t is a struct type.
func (t *Type) IsStruct() bool { return t != nil && t.Kind == StructKind }

// FieldOffset returns the byte offset of field i in a packed struct.
func (t *Type) FieldOffset(i int) int {
	off := 0
	for k := 0; k < i && k < len(t.Fields); k++ {
		off += t.Fields[k].Size()
	}
	return off
}

// IsInt reports whether t is an integer type of any width.
func (t *Type) IsInt() bool { return t != nil && t.Kind == IntKind }

// IsFloat reports whether t is the floating-point type.
func (t *Type) IsFloat() bool { return t != nil && t.Kind == FloatKind }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == PtrKind }

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t == nil || t.Kind == VoidKind }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t != nil && t.Kind == ArrayKind }

// Equal reports whether t and u denote the same type structurally.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case VoidKind, FloatKind:
		return true
	case IntKind:
		return t.Bits == u.Bits
	case PtrKind:
		return t.Elem.Equal(u.Elem)
	case ArrayKind:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case StructKind:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(u.Fields[i]) {
				return false
			}
		}
		return true
	case FuncKind:
		if !t.Ret.Equal(u.Ret) || len(t.Params) != len(u.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Size returns the size of a value of type t in bytes, using the memory
// layout of the IR interpreter (pointers are 8 bytes; i1 and i8 occupy one
// byte; arrays are densely packed).
func (t *Type) Size() int {
	switch t.Kind {
	case IntKind:
		switch {
		case t.Bits <= 8:
			return 1
		case t.Bits <= 32:
			return 4
		default:
			return 8
		}
	case FloatKind, PtrKind:
		return 8
	case ArrayKind:
		return t.Len * t.Elem.Size()
	case StructKind:
		n := 0
		for _, f := range t.Fields {
			n += f.Size()
		}
		return n
	default:
		return 0
	}
}

// String renders t in an LLVM-flavoured syntax.
func (t *Type) String() string {
	if t == nil {
		return "void"
	}
	switch t.Kind {
	case VoidKind:
		return "void"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case FloatKind:
		return "double"
	case PtrKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case StructKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case FuncKind:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s (%s)", t.Ret, strings.Join(parts, ", "))
	}
	return "?"
}
