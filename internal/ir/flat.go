package ir

import (
	"fmt"
	"math"
)

// Flat is a struct-of-arrays view of a verified Module: every instruction,
// block and function becomes a row in an index-based table, operands become
// (kind, index) pairs in one shared operand array addressed by spans, and
// types, constants and strings are interned into per-module pools. The view
// is built once by Flatten and is strictly read-only afterwards, so any
// number of goroutines may share it — the embedding pipeline, the bytecode
// compiler and the n-gram scanners all walk the same cached Flat with no
// cloning, no pointer chasing and no per-call map[*Instr]int index.
//
// Layout invariants (the flat/pointer equivalence suite pins all of them):
//
//   - Instruction, block and operand rows appear in the module's canonical
//     traversal order: functions in declaration order, blocks in layout
//     order, instructions in block order, operands in argument order. An
//     instruction's module-wide index therefore doubles as its graph node
//     index in the instruction-level embeddings.
//   - Operand, block-argument and switch-value spans are contiguous in that
//     same order, so only the span starts are stored; the end of row i is
//     the start of row i+1. Instrs carries one trailing sentinel row holding
//     the final pool lengths to keep the i+1 access in bounds.
//   - Types[0] is Void, so Ty == 0 means "produces no value" without a
//     lookup. Types are interned structurally (by Type.String(), which fully
//     determines a type), collapsing structurally-equal duplicates that are
//     distinct pointers in the source module.
//   - Consts are interned by (type id, integer payload, float bit pattern)
//     in first-use order. Distinct NaN payloads stay distinct, exactly like
//     the bytecode compiler's constant pool.
//   - Globals[0:len(Mod.Globals)] mirror the module's global table in order;
//     operands referencing globals unknown to the module append trailing
//     rows with Known=false (the VM traps on them, like the pointer path).
//
// Flatten assumes IR that passes Verify. Out-of-contract shapes (operands
// referencing detached instructions or foreign parameters) are preserved
// well enough for the VM to raise the interpreter's trap messages, but the
// embedding builders only promise byte-identical output for verified IR.
type Flat struct {
	Mod *Module

	// Funcs holds one row per module function, in declaration order, plus
	// trailing declaration rows for any foreign call targets encountered in
	// operands. A function with an empty block span is a declaration.
	Funcs []FlatFunc
	// Blocks holds one row per basic block, grouped by function.
	Blocks []FlatBlock
	// Ops is the opcode column, indexed by instruction: one byte per
	// instruction so histogram-style walks stream a dense array.
	Ops []uint8
	// Instrs holds the remaining per-instruction columns plus one sentinel
	// row; spans of row i end where row i+1's spans begin.
	Instrs []FlatInstr
	// Operands is the shared value-operand pool, addressed by Arg spans.
	Operands []Operand
	// BlockArgs is the shared block-operand pool (branch targets, phi
	// incoming blocks) holding module-wide block indices.
	BlockArgs []int32
	// SwitchVals is the shared switch-case-value pool.
	SwitchVals []int64

	// Types is the interned type pool; TypeStrs caches String() per type
	// (computed anyway for interning, and hot in the ir2vec embedding).
	Types    []*Type
	TypeStrs []string
	// Consts is the interned constant pool in first-use order.
	Consts []FlatConst
	// ConstAlias[i] is the first pool index rendering identically to
	// constant i (same type string, same printed payload — Const.Ref()).
	// The pool itself interns by exact bits, which is finer: e.g. distinct
	// NaN payloads stay distinct for the VM but print alike. ProGraML
	// merges value nodes by rendered form, so its builder keys on the
	// alias; precomputing it here keeps the graph build map-free.
	ConstAlias []int32
	// Globals is the global table (module globals first, see above).
	Globals []FlatGlobal
	// Strings pools block labels, builtin names and diagnostic refs.
	Strings []string
	// ParamNames / ParamTypes hold every function's parameters back to
	// back; FlatFunc.Par0/Par1 span them. A parameter operand's Idx points
	// here, so it identifies the parameter object module-wide.
	ParamNames []string
	ParamTypes []int32

	// NumModFuncs is the number of module functions: Funcs[:NumModFuncs]
	// mirror Mod.Functions in order, trailing rows are foreign call targets.
	// Thaw rebuilds the former and shares the latter, exactly like Clone.
	NumModFuncs int32

	// MainIdx is the index of the module's "main" function, or -1.
	MainIdx int32
}

// FlatFunc is one function row. Ins/Blk/Par fields are [start, end) spans
// into Flat.Instrs (and Ops), Flat.Blocks and Flat.ParamNames/ParamTypes.
// Sig and F point into the source module (signatures are immutable and
// shared by Clone too; F lets Thaw share foreign call targets the way Clone
// does, and is never followed for module functions' bodies). NID snapshots
// the function's ID counter so instructions appended to a thawed copy get
// fresh, non-colliding %t numbers.
type FlatFunc struct {
	Name string
	Sig  *Type
	F    *Function
	NID  int32
	Blk0 int32
	Blk1 int32
	Ins0 int32
	Ins1 int32
	Par0 int32
	Par1 int32
}

// IsDecl reports whether the function has no body.
func (f *FlatFunc) IsDecl() bool { return f.Blk0 == f.Blk1 }

// NumParams returns the declared parameter count.
func (f *FlatFunc) NumParams() int { return int(f.Par1 - f.Par0) }

// FlatBlock is one basic-block row: owning function, instruction span and
// the interned label (used verbatim in VM trap messages). Name is the
// Strings index of the block's explicit name, or -1 for unnamed blocks
// whose label derives from ID — Label collapses the two, but Thaw needs the
// split to rebuild a print-identical block.
type FlatBlock struct {
	Fn    int32
	Ins0  int32
	Ins1  int32
	Label int32
	Name  int32
	ID    int32
}

// FlatInstr is one instruction row (minus the opcode, which lives in the
// dense Flat.Ops column). Arg0/BArg0/Sw0 are span starts; the span ends are
// the next row's starts.
type FlatInstr struct {
	Ty    int32 // result type id; 0 = Void = no result
	Blk   int32 // owning block index
	ID    int32 // printing id (%t<ID>)
	Arg0  int32 // operand span start in Flat.Operands
	BArg0 int32 // block-operand span start in Flat.BlockArgs
	Sw0   int32 // switch-value span start in Flat.SwitchVals
	// Aux carries the opcode-specific extra: for OpCall the callee function
	// index, or -2-strID of the builtin name when there is no direct callee
	// (so Aux < 0 means "no direct callee", mirroring Callee == nil); for
	// OpAlloca the allocated element type id; -1 otherwise.
	Aux  int32
	Pred uint8 // icmp/fcmp predicate
}

// OperandKind discriminates the value kinds an operand row can reference.
type OperandKind uint8

// Operand kinds. The two Bad kinds preserve enough of an out-of-contract
// operand (detached instruction, foreign parameter) for the VM to raise the
// interpreter's exact trap message; verified IR never produces them.
const (
	OperInstr    OperandKind = iota // Idx: module-wide instruction index
	OperConst                       // Idx: Flat.Consts index
	OperParam                       // Idx: Flat.ParamNames/ParamTypes index
	OperGlobal                      // Idx: Flat.Globals index
	OperFunc                        // Idx: Flat.Funcs index
	OperBadInstr                    // Idx: Strings index of the value's %t ref
	OperBadParam                    // Idx: Strings index of the parameter name
	OperUnknown                     // unrecognized Value implementation
)

// Operand is one (kind, index) value-operand row.
type Operand struct {
	Kind OperandKind
	Idx  int32
}

// FlatConst is one interned constant: type id plus both payloads (like
// Const, only one of I/F is meaningful per type).
type FlatConst struct {
	Ty int32
	I  int64
	F  float64
}

// FlatGlobal is one global row. Known marks globals registered in the
// module; NameAlias is the index of the first row with the same name (the
// ProGraML builder merges value nodes by global name, like the pointer
// builder's "g|name" key).
type FlatGlobal struct {
	G         *Global
	Elem      int32 // type id of the pointee
	NameAlias int32
	Known     bool
}

// NumInstrs returns the instruction count (the sentinel row excluded).
func (fl *Flat) NumInstrs() int { return len(fl.Instrs) - 1 }

// Op returns the opcode of instruction i.
func (fl *Flat) Op(i int32) Opcode { return Opcode(fl.Ops[i]) }

// Args returns the value operands of instruction i.
func (fl *Flat) Args(i int32) []Operand {
	return fl.Operands[fl.Instrs[i].Arg0:fl.Instrs[i+1].Arg0]
}

// InstrBlockArgs returns the block operands of instruction i (branch
// targets in operand order; phi incoming blocks parallel to Args).
func (fl *Flat) InstrBlockArgs(i int32) []int32 {
	return fl.BlockArgs[fl.Instrs[i].BArg0:fl.Instrs[i+1].BArg0]
}

// InstrSwitchVals returns the switch case values of instruction i.
func (fl *Flat) InstrSwitchVals(i int32) []int64 {
	return fl.SwitchVals[fl.Instrs[i].Sw0:fl.Instrs[i+1].Sw0]
}

// HasResult reports whether instruction i produces an SSA value.
func (fl *Flat) HasResult(i int32) bool { return fl.Instrs[i].Ty != 0 }

// InstrType returns the result type of instruction i.
func (fl *Flat) InstrType(i int32) *Type { return fl.Types[fl.Instrs[i].Ty] }

// BlockHasTerm reports whether block b ends in a terminator.
func (fl *Flat) BlockHasTerm(b int32) bool {
	blk := &fl.Blocks[b]
	return blk.Ins1 > blk.Ins0 && fl.Op(blk.Ins1-1).IsTerminator()
}

// BlockSuccs returns the successor block indices of block b (the block
// operands of its terminator), or nil.
func (fl *Flat) BlockSuccs(b int32) []int32 {
	if !fl.BlockHasTerm(b) {
		return nil
	}
	return fl.InstrBlockArgs(fl.Blocks[b].Ins1 - 1)
}

// FirstNonPhi returns the instruction index of the first non-phi
// instruction of block b (Ins1 when the block is all phis).
func (fl *Flat) FirstNonPhi(b int32) int32 {
	blk := &fl.Blocks[b]
	for i := blk.Ins0; i < blk.Ins1; i++ {
		if fl.Op(i) != OpPhi {
			return i
		}
	}
	return blk.Ins1
}

// flattener carries the interning state of one Flatten run. All maps are
// build-time only; the finished Flat is map-free.
type flattener struct {
	fl        *Flat
	instrIdx  map[*Instr]int32
	blockIdx  map[*Block]int32
	fnIdx     map[*Function]int32
	globalIdx map[*Global]int32
	gNameIdx  map[string]int32
	typeByPtr map[*Type]int32
	typeByStr map[string]int32
	constIdx  map[constKey]int32
	strIdx    map[string]int32
}

// constKey interns constants by type and exact payload bits; +0.0/-0.0 and
// distinct NaNs stay distinct (the VM constant pool depends on it).
type constKey struct {
	ty int32
	i  int64
	f  uint64
}

func (ft *flattener) typeID(t *Type) int32 {
	if t == nil {
		return 0
	}
	if id, ok := ft.typeByPtr[t]; ok {
		return id
	}
	s := t.String()
	id, ok := ft.typeByStr[s]
	if !ok {
		id = int32(len(ft.fl.Types))
		ft.fl.Types = append(ft.fl.Types, t)
		ft.fl.TypeStrs = append(ft.fl.TypeStrs, s)
		ft.typeByStr[s] = id
	}
	ft.typeByPtr[t] = id
	return id
}

func (ft *flattener) constID(c *Const) int32 {
	k := constKey{ty: ft.typeID(c.Ty), i: c.I, f: math.Float64bits(c.F)}
	if id, ok := ft.constIdx[k]; ok {
		return id
	}
	id := int32(len(ft.fl.Consts))
	ft.fl.Consts = append(ft.fl.Consts, FlatConst{Ty: k.ty, I: c.I, F: c.F})
	ft.constIdx[k] = id
	return id
}

func (ft *flattener) strID(s string) int32 {
	if id, ok := ft.strIdx[s]; ok {
		return id
	}
	id := int32(len(ft.fl.Strings))
	ft.fl.Strings = append(ft.fl.Strings, s)
	ft.strIdx[s] = id
	return id
}

func (ft *flattener) globalID(g *Global) int32 {
	if id, ok := ft.globalIdx[g]; ok {
		return id
	}
	// A global not registered in the module: record it so the operand stays
	// addressable, unknown to the VM (which traps on use, like the pointer
	// compiler's identity-keyed address table).
	id := int32(len(ft.fl.Globals))
	alias, seen := ft.gNameIdx[g.Name]
	if !seen {
		alias = id
		ft.gNameIdx[g.Name] = id
	}
	ft.fl.Globals = append(ft.fl.Globals, FlatGlobal{G: g, Elem: ft.typeID(g.Elem), NameAlias: alias})
	ft.globalIdx[g] = id
	return id
}

func (ft *flattener) funcID(f *Function) int32 {
	if id, ok := ft.fnIdx[f]; ok {
		return id
	}
	// A call target not registered in the module behaves like a declaration
	// (the interpreter reports "call to declaration @name").
	id := int32(len(ft.fl.Funcs))
	ft.fl.Funcs = append(ft.fl.Funcs, FlatFunc{Name: f.Name, Sig: f.Sig, F: f})
	ft.fnIdx[f] = id
	return id
}

func (ft *flattener) operand(fn *Function, ff *FlatFunc, v Value) Operand {
	switch x := v.(type) {
	case *Instr:
		if i, ok := ft.instrIdx[x]; ok {
			return Operand{Kind: OperInstr, Idx: i}
		}
		return Operand{Kind: OperBadInstr, Idx: ft.strID(x.Ref())}
	case *Const:
		return Operand{Kind: OperConst, Idx: ft.constID(x)}
	case *Param:
		if x.Index >= 0 && x.Index < len(fn.Params) && fn.Params[x.Index] == x {
			return Operand{Kind: OperParam, Idx: ff.Par0 + int32(x.Index)}
		}
		return Operand{Kind: OperBadParam, Idx: ft.strID(x.Name)}
	case *Global:
		return Operand{Kind: OperGlobal, Idx: ft.globalID(x)}
	case *Function:
		return Operand{Kind: OperFunc, Idx: ft.funcID(x)}
	}
	return Operand{Kind: OperUnknown}
}

// Flatten builds the struct-of-arrays view of m. The module must not be
// mutated afterwards while the Flat is in use (progcache guarantees this
// for cached masters; transformed modules are flattened after their final
// mutation).
func Flatten(m *Module) *Flat {
	// Counting pass: size every pool exactly once.
	nInstr, nOper, nBArg, nSw, nBlocks, nParams := 0, 0, 0, 0, 0, 0
	for _, f := range m.Functions {
		nParams += len(f.Params)
		nBlocks += len(f.Blocks)
		for _, b := range f.Blocks {
			nInstr += len(b.Instrs)
			for _, in := range b.Instrs {
				nOper += len(in.Args)
				nBArg += len(in.Blocks)
				nSw += len(in.SwitchVals)
			}
		}
	}

	fl := &Flat{
		Mod:        m,
		Funcs:      make([]FlatFunc, len(m.Functions)),
		Blocks:     make([]FlatBlock, 0, nBlocks),
		Ops:        make([]uint8, 0, nInstr),
		Instrs:     make([]FlatInstr, 0, nInstr+1),
		Operands:   make([]Operand, 0, nOper),
		BlockArgs:  make([]int32, 0, nBArg),
		SwitchVals: make([]int64, 0, nSw),
		ParamNames:  make([]string, 0, nParams),
		ParamTypes:  make([]int32, 0, nParams),
		NumModFuncs: int32(len(m.Functions)),
		MainIdx:     -1,
	}
	ft := &flattener{
		fl:        fl,
		instrIdx:  make(map[*Instr]int32, nInstr),
		blockIdx:  make(map[*Block]int32, nBlocks),
		fnIdx:     make(map[*Function]int32, len(m.Functions)),
		globalIdx: make(map[*Global]int32, len(m.Globals)),
		gNameIdx:  make(map[string]int32, len(m.Globals)),
		typeByPtr: make(map[*Type]int32, 16),
		typeByStr: make(map[string]int32, 16),
		constIdx:  make(map[constKey]int32, 32),
		strIdx:    make(map[string]int32, nBlocks),
	}
	ft.typeID(Void) // pin Void at type id 0

	fl.Globals = make([]FlatGlobal, 0, len(m.Globals))
	for i, g := range m.Globals {
		alias, seen := ft.gNameIdx[g.Name]
		if !seen {
			alias = int32(i)
			ft.gNameIdx[g.Name] = alias
		}
		ft.globalIdx[g] = int32(i)
		fl.Globals = append(fl.Globals, FlatGlobal{G: g, Elem: ft.typeID(g.Elem), NameAlias: alias, Known: true})
	}

	// Index pass: assign every function, block, instruction and parameter
	// its table row before any operand is resolved (operands reference
	// forward instructions and blocks).
	for fi, f := range m.Functions {
		ft.fnIdx[f] = int32(fi)
		ff := &fl.Funcs[fi]
		ff.Name = f.Name
		ff.Sig = f.Sig
		ff.F = f
		ff.NID = int32(f.nid)
		ff.Blk0 = int32(len(fl.Blocks))
		ff.Ins0 = int32(len(fl.Ops))
		ff.Par0 = int32(len(fl.ParamNames))
		for _, p := range f.Params {
			fl.ParamNames = append(fl.ParamNames, p.Name)
			fl.ParamTypes = append(fl.ParamTypes, ft.typeID(p.Ty))
		}
		ff.Par1 = int32(len(fl.ParamNames))
		for _, b := range f.Blocks {
			bi := int32(len(fl.Blocks))
			ft.blockIdx[b] = bi
			ins0 := int32(len(fl.Ops))
			for _, in := range b.Instrs {
				ft.instrIdx[in] = int32(len(fl.Ops))
				fl.Ops = append(fl.Ops, uint8(in.Op))
			}
			nameID := int32(-1)
			if b.Name != "" {
				nameID = ft.strID(b.Name)
			}
			fl.Blocks = append(fl.Blocks, FlatBlock{
				Fn: int32(fi), Ins0: ins0, Ins1: int32(len(fl.Ops)),
				Label: ft.strID(b.Label()),
				Name:  nameID, ID: int32(b.ID),
			})
		}
		ff.Blk1 = int32(len(fl.Blocks))
		ff.Ins1 = int32(len(fl.Ops))
	}
	if mf := m.Func("main"); mf != nil {
		fl.MainIdx = ft.fnIdx[mf]
	}

	// Fill pass: one row per instruction, pools appended in traversal order
	// so every span is contiguous.
	for fi := range m.Functions {
		f := m.Functions[fi]
		ff := &fl.Funcs[fi]
		for _, b := range f.Blocks {
			bi := ft.blockIdx[b]
			for _, in := range b.Instrs {
				row := FlatInstr{
					Ty:    ft.typeID(in.Ty),
					Blk:   bi,
					ID:    int32(in.ID),
					Arg0:  int32(len(fl.Operands)),
					BArg0: int32(len(fl.BlockArgs)),
					Sw0:   int32(len(fl.SwitchVals)),
					Aux:   -1,
					Pred:  uint8(in.Pred),
				}
				for _, a := range in.Args {
					fl.Operands = append(fl.Operands, ft.operand(f, ff, a))
				}
				for _, tb := range in.Blocks {
					fl.BlockArgs = append(fl.BlockArgs, ft.blockIdx[tb])
				}
				fl.SwitchVals = append(fl.SwitchVals, in.SwitchVals...)
				switch in.Op {
				case OpCall:
					if in.Callee != nil {
						row.Aux = ft.funcID(in.Callee)
					} else {
						row.Aux = -2 - ft.strID(in.Builtin)
					}
				case OpAlloca:
					row.Aux = ft.typeID(in.AllocaTy)
				}
				fl.Instrs = append(fl.Instrs, row)
			}
		}
	}
	// Sentinel row: closes the last spans.
	fl.Instrs = append(fl.Instrs, FlatInstr{
		Arg0:  int32(len(fl.Operands)),
		BArg0: int32(len(fl.BlockArgs)),
		Sw0:   int32(len(fl.SwitchVals)),
	})

	fl.ConstAlias = make([]int32, len(fl.Consts))
	byRef := make(map[string]int32, len(fl.Consts))
	for i := range fl.Consts {
		key := fl.TypeStrs[fl.Consts[i].Ty] + "|" + fl.ConstRef(int32(i))
		if first, ok := byRef[key]; ok {
			fl.ConstAlias[i] = first
		} else {
			byRef[key] = int32(i)
			fl.ConstAlias[i] = int32(i)
		}
	}
	return fl
}

// ConstRef renders constant c exactly like Const.Ref.
func (fl *Flat) ConstRef(c int32) string {
	fc := &fl.Consts[c]
	ty := fl.Types[fc.Ty]
	switch {
	case ty.IsFloat():
		if fc.F == math.Trunc(fc.F) && math.Abs(fc.F) < 1e15 {
			return fmt.Sprintf("%.1f", fc.F)
		}
		return fmt.Sprintf("%g", fc.F)
	case ty.IsPtr():
		return "null"
	default:
		return fmt.Sprintf("%d", fc.I)
	}
}
