package ir

// Function is an IR function: a signature plus a list of basic blocks. The
// first block is the entry block.
type Function struct {
	Name   string
	Sig    *Type // FuncKind
	Params []*Param
	Blocks []*Block
	Mod    *Module
	nid    int
}

// NewFunction creates a function with the given name, return type and
// parameter names/types, and registers it in no module (use Module.Add).
func NewFunction(name string, ret *Type, paramNames []string, paramTypes []*Type) *Function {
	f := &Function{Name: name, Sig: FuncOf(ret, paramTypes...)}
	for i, pn := range paramNames {
		f.Params = append(f.Params, &Param{Name: pn, Ty: paramTypes[i], Index: i})
	}
	return f
}

// Type returns the function's type (used when a function appears as a call
// operand or function pointer).
func (f *Function) Type() *Type { return PtrTo(f.Sig) }

// Ref returns "@name".
func (f *Function) Ref() string { return "@" + f.Name }

// RetType returns the declared return type.
func (f *Function) RetType() *Type { return f.Sig.Ret }

// Entry returns the entry block, or nil for a declaration.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// IsDecl reports whether the function has no body.
func (f *Function) IsDecl() bool { return len(f.Blocks) == 0 }

// NewBlock appends a fresh empty block with the given name hint.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, Fn: f, ID: f.nextID()}
	f.Blocks = append(f.Blocks, b)
	return b
}

// InsertBlockAfter inserts a fresh block immediately after block pos.
func (f *Function) InsertBlockAfter(pos *Block, name string) *Block {
	b := &Block{Name: name, Fn: f, ID: f.nextID()}
	for i, blk := range f.Blocks {
		if blk == pos {
			f.Blocks = append(f.Blocks, nil)
			copy(f.Blocks[i+2:], f.Blocks[i+1:])
			f.Blocks[i+1] = b
			return b
		}
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RemoveBlock deletes block b from the function (it must be unreferenced).
func (f *Function) RemoveBlock(b *Block) {
	for i, blk := range f.Blocks {
		if blk == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

func (f *Function) nextID() int {
	f.nid++
	return f.nid
}

// Preds returns a map from each block to its predecessor blocks, in
// deterministic block order. A block appearing twice as a successor (e.g.
// both switch cases target it) is listed once per edge.
func (f *Function) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// NumInstrs returns the total instruction count of the function.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInstr calls fn for every instruction in block order.
func (f *Function) ForEachInstr(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// ReplaceUses rewrites every use of old with new across the whole function.
func (f *Function) ReplaceUses(old, new Value) int {
	n := 0
	f.ForEachInstr(func(in *Instr) { n += in.ReplaceUses(old, new) })
	return n
}

// Users returns the instructions that use v as an operand.
func (f *Function) Users(v Value) []*Instr {
	var out []*Instr
	f.ForEachInstr(func(in *Instr) {
		for _, a := range in.Args {
			if a == v {
				out = append(out, in)
				return
			}
		}
	})
	return out
}

// HasUses reports whether any instruction uses v.
func (f *Function) HasUses(v Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

// Reachable returns the set of blocks reachable from the entry block.
func (f *Function) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return seen
	}
	stack := []*Block{f.Blocks[0]}
	seen[f.Blocks[0]] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes blocks not reachable from the entry, fixing up
// phi nodes in the survivors. It returns the number of removed blocks.
func (f *Function) RemoveUnreachable() int {
	reach := f.Reachable()
	if len(reach) == len(f.Blocks) {
		return 0
	}
	var dead []*Block
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			dead = append(dead, b)
		}
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			for _, d := range dead {
				phi.RemovePhiIncoming(d)
			}
		}
	}
	return len(dead)
}

// Module is a translation unit: globals plus functions.
type Module struct {
	Name      string
	Globals   []*Global
	Functions []*Function
	fnByName  map[string]*Function
	gByName   map[string]*Global
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:     name,
		fnByName: make(map[string]*Function),
		gByName:  make(map[string]*Global),
	}
}

// Add registers function f in the module.
func (m *Module) Add(f *Function) *Function {
	f.Mod = m
	m.Functions = append(m.Functions, f)
	m.fnByName[f.Name] = f
	return f
}

// AddGlobal registers global g in the module.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	m.gByName[g.Name] = g
	return g
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Function { return m.fnByName[name] }

// Global returns the global named name, or nil.
func (m *Module) Global(name string) *Global { return m.gByName[name] }

// NumInstrs returns the total instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Functions {
		n += f.NumInstrs()
	}
	return n
}
