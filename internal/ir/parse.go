package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual form produced by Module.String back into a
// module, enabling golden tests and hand-authored IR. The accepted grammar
// is exactly the printer's output language (an LLVM-flavoured subset), plus
// blank lines and ';' comments.
func ParseModule(text string) (*Module, error) {
	p := &irParser{lines: splitLines(text), mod: NewModule("parsed")}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.mod.Verify(); err != nil {
		return nil, fmt.Errorf("ir: parsed module is invalid: %w", err)
	}
	return p.mod, nil
}

func splitLines(text string) []string {
	raw := strings.Split(text, "\n")
	out := make([]string, len(raw))
	for i, l := range raw {
		if idx := strings.Index(l, ";"); idx >= 0 {
			l = l[:idx]
		}
		out[i] = strings.TrimSpace(l)
	}
	return out
}

type irParser struct {
	lines []string
	pos   int
	mod   *Module
}

func (p *irParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ir: line %d: "+format, append([]interface{}{p.pos + 1}, args...)...)
}

func (p *irParser) parse() error {
	// First pass: register function signatures and globals so calls and
	// global references resolve in any order.
	for i, l := range p.lines {
		switch {
		case strings.HasPrefix(l, "@"):
			if err := p.parseGlobal(l, i); err != nil {
				return err
			}
		case strings.HasPrefix(l, "define ") || strings.HasPrefix(l, "declare "):
			if err := p.parseSignature(l, i); err != nil {
				return err
			}
		}
	}
	// Second pass: function bodies.
	for p.pos = 0; p.pos < len(p.lines); p.pos++ {
		l := p.lines[p.pos]
		if strings.HasPrefix(l, "define ") {
			if err := p.parseBody(); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseGlobal handles "@name = global|constant <ty> <init>".
func (p *irParser) parseGlobal(l string, lineNo int) error {
	p.pos = lineNo
	rest, ok := cutPrefix(l, "@")
	if !ok {
		return p.errf("bad global")
	}
	name, rest, ok := cut(rest, " = ")
	if !ok {
		return p.errf("global %q missing ' = '", l)
	}
	isConst := false
	switch {
	case strings.HasPrefix(rest, "global "):
		rest = rest[len("global "):]
	case strings.HasPrefix(rest, "constant "):
		rest = rest[len("constant "):]
		isConst = true
	default:
		return p.errf("global %s: expected 'global' or 'constant'", name)
	}
	ty, rest, err := parseTypePrefix(rest)
	if err != nil {
		return p.errf("global %s: %v", name, err)
	}
	g := &Global{Name: name, Elem: ty, Const: isConst}
	init := strings.TrimSpace(rest)
	switch {
	case init == "zeroinitializer" || init == "":
		// zero
	case strings.HasPrefix(init, "["):
		items := strings.Split(strings.Trim(init, "[]"), ",")
		for _, it := range items {
			it = strings.TrimSpace(it)
			if it == "" {
				continue
			}
			if ty.Elem != nil && ty.Elem.IsFloat() {
				f, err := strconv.ParseFloat(it, 64)
				if err != nil {
					return p.errf("global %s: bad float %q", name, it)
				}
				g.InitF = append(g.InitF, f)
			} else {
				v, err := strconv.ParseInt(it, 10, 64)
				if err != nil {
					return p.errf("global %s: bad int %q", name, it)
				}
				g.InitI = append(g.InitI, v)
			}
		}
	default:
		if ty.IsFloat() {
			f, err := strconv.ParseFloat(init, 64)
			if err != nil {
				return p.errf("global %s: bad float %q", name, init)
			}
			g.InitF = []float64{f}
		} else {
			v, err := strconv.ParseInt(init, 10, 64)
			if err != nil {
				return p.errf("global %s: bad int %q", name, init)
			}
			g.InitI = []int64{v}
		}
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseSignature handles "define RET @name(params) {" and "declare ...".
func (p *irParser) parseSignature(l string, lineNo int) error {
	p.pos = lineNo
	l = strings.TrimSuffix(strings.TrimSpace(l), "{")
	l = strings.TrimSpace(l)
	l = strings.TrimPrefix(strings.TrimPrefix(l, "define "), "declare ")
	open := strings.IndexByte(l, '(')
	close := strings.LastIndexByte(l, ')')
	if open < 0 || close < open {
		return p.errf("bad function signature %q", l)
	}
	head := strings.TrimSpace(l[:open])
	at := strings.LastIndexByte(head, '@')
	if at < 0 {
		return p.errf("signature missing @name")
	}
	retTy, _, err := parseTypePrefix(strings.TrimSpace(head[:at]))
	if err != nil {
		return p.errf("bad return type: %v", err)
	}
	name := strings.TrimSpace(head[at+1:])
	var pnames []string
	var ptypes []*Type
	params := strings.TrimSpace(l[open+1 : close])
	if params != "" {
		for _, ps := range strings.Split(params, ",") {
			ps = strings.TrimSpace(ps)
			ty, rest, err := parseTypePrefix(ps)
			if err != nil {
				return p.errf("bad parameter %q: %v", ps, err)
			}
			rest = strings.TrimSpace(rest)
			if !strings.HasPrefix(rest, "%") {
				return p.errf("parameter %q missing %%name", ps)
			}
			pnames = append(pnames, rest[1:])
			ptypes = append(ptypes, ty)
		}
	}
	p.mod.Add(NewFunction(name, retTy, pnames, ptypes))
	return nil
}

// parseBody consumes the body of the define at p.pos.
func (p *irParser) parseBody() error {
	header := p.lines[p.pos]
	at := strings.IndexByte(header, '@')
	open := strings.IndexByte(header, '(')
	if at < 0 || open < at {
		return p.errf("bad define")
	}
	f := p.mod.Func(header[at+1 : open])
	if f == nil {
		return p.errf("unknown function in define")
	}
	params := make(map[string]Value, len(f.Params))
	for _, prm := range f.Params {
		params["%"+prm.Name] = prm
	}

	// Collect raw block lines up to the closing brace.
	type rawInstr struct {
		line int
		text string
	}
	type rawBlock struct {
		label  string
		instrs []rawInstr
	}
	var blocks []rawBlock
	p.pos++
	for ; p.pos < len(p.lines); p.pos++ {
		l := p.lines[p.pos]
		switch {
		case l == "":
			continue
		case l == "}":
			goto done
		case strings.HasSuffix(l, ":"):
			blocks = append(blocks, rawBlock{label: strings.TrimSuffix(l, ":")})
		default:
			if len(blocks) == 0 {
				return p.errf("instruction before first label")
			}
			blocks[len(blocks)-1].instrs = append(blocks[len(blocks)-1].instrs,
				rawInstr{p.pos, l})
		}
	}
	return p.errf("unterminated function body")
done:
	blockOf := make(map[string]*Block, len(blocks))
	for _, rb := range blocks {
		b := f.NewBlock(rb.label)
		blockOf[rb.label] = b
	}
	// Create instruction shells so %tN forward references resolve.
	instrOf := make(map[string]*Instr)
	type pending struct {
		in  *Instr
		raw rawInstr
		b   *Block
	}
	var work []pending
	for bi, rb := range blocks {
		b := f.Blocks[len(f.Blocks)-len(blocks)+bi]
		for _, ri := range rb.instrs {
			in := &Instr{Parent: b}
			if name, _, ok := cut(ri.text, " = "); ok && strings.HasPrefix(name, "%") {
				instrOf[name] = in
			}
			b.Append(in)
			work = append(work, pending{in, ri, b})
		}
	}
	resolve := func(tok string, ty *Type) (Value, error) {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "null":
			return ConstNull(ty), nil
		case strings.HasPrefix(tok, "%"):
			if v, ok := instrOf[tok]; ok {
				return v, nil
			}
			if v, ok := params[tok]; ok {
				return v, nil
			}
			return nil, fmt.Errorf("unknown value %s", tok)
		case strings.HasPrefix(tok, "@"):
			if g := p.mod.Global(tok[1:]); g != nil {
				return g, nil
			}
			if fn := p.mod.Func(tok[1:]); fn != nil {
				return fn, nil
			}
			return nil, fmt.Errorf("unknown symbol %s", tok)
		default:
			if ty != nil && ty.IsFloat() {
				fv, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("bad float %q", tok)
				}
				return ConstFloat(fv), nil
			}
			iv, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad constant %q", tok)
			}
			if ty == nil {
				ty = I64
			}
			return ConstInt(ty, iv), nil
		}
	}
	for _, w := range work {
		p.pos = w.raw.line
		if err := p.parseInstr(w.in, w.raw.text, blockOf, resolve); err != nil {
			return err
		}
	}
	return nil
}

// typedRef parses "<ty> <ref>" returning the value.
func parseTypedRef(s string, resolve func(string, *Type) (Value, error)) (Value, *Type, error) {
	ty, rest, err := parseTypePrefix(strings.TrimSpace(s))
	if err != nil {
		return nil, nil, err
	}
	v, err := resolve(rest, ty)
	return v, ty, err
}

// parseInstr fills the pre-created shell from one printed instruction line.
func (p *irParser) parseInstr(in *Instr, text string,
	blockOf map[string]*Block, resolve func(string, *Type) (Value, error)) error {

	// Split "%tN = rest".
	body := text
	if lhs, rhs, ok := cut(text, " = "); ok && strings.HasPrefix(lhs, "%") {
		body = rhs
	}
	op, rest, _ := cut(body, " ")
	label := func(tok string) (*Block, error) {
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "label ")
		tok = strings.TrimPrefix(strings.TrimSpace(tok), "%")
		b, ok := blockOf[tok]
		if !ok {
			return nil, p.errf("unknown label %q", tok)
		}
		return b, nil
	}

	switch op {
	case "ret":
		in.Op, in.Ty = OpRet, Void
		if strings.TrimSpace(rest) != "void" {
			v, _, err := parseTypedRef(rest, resolve)
			if err != nil {
				return p.errf("%v", err)
			}
			in.Args = []Value{v}
		}
		return nil
	case "br":
		if strings.HasPrefix(rest, "label ") {
			in.Op, in.Ty = OpBr, Void
			b, err := label(rest)
			if err != nil {
				return err
			}
			in.Blocks = []*Block{b}
			return nil
		}
		in.Op, in.Ty = OpCondBr, Void
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return p.errf("bad condbr %q", text)
		}
		cond, _, err := parseTypedRef(parts[0], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		t1, err := label(parts[1])
		if err != nil {
			return err
		}
		t2, err := label(parts[2])
		if err != nil {
			return err
		}
		in.Args = []Value{cond}
		in.Blocks = []*Block{t1, t2}
		return nil
	case "switch":
		in.Op, in.Ty = OpSwitch, Void
		head, cases, ok := cut(rest, "[")
		if !ok {
			return p.errf("bad switch %q", text)
		}
		hp := strings.Split(head, ",")
		if len(hp) != 2 {
			return p.errf("bad switch head %q", head)
		}
		tag, _, err := parseTypedRef(hp[0], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		def, err := label(hp[1])
		if err != nil {
			return err
		}
		in.Args = []Value{tag}
		in.Blocks = []*Block{def}
		cases = strings.TrimSuffix(strings.TrimSpace(cases), "]")
		for _, c := range strings.Split(cases, " ") {
			c = strings.TrimSpace(c)
			if c == "" || c == "label" {
				continue
			}
			if strings.HasSuffix(c, ":") {
				v, err := strconv.ParseInt(strings.TrimSuffix(c, ":"), 10, 64)
				if err != nil {
					return p.errf("bad case value %q", c)
				}
				in.SwitchVals = append(in.SwitchVals, v)
				continue
			}
			b, err := label(c)
			if err != nil {
				return err
			}
			in.Blocks = append(in.Blocks, b)
		}
		if len(in.Blocks) != len(in.SwitchVals)+1 {
			return p.errf("switch case/target mismatch in %q", text)
		}
		return nil
	case "unreachable":
		in.Op, in.Ty = OpUnreachable, Void
		return nil
	case "alloca":
		ty, _, err := parseTypePrefix(strings.TrimSpace(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.AllocaTy, in.Ty = OpAlloca, ty, PtrTo(ty)
		return nil
	case "load":
		// load <ty>, <ty*> <ref>
		lparts := splitTopLevel(rest, ',')
		if len(lparts) != 2 {
			return p.errf("bad load %q", text)
		}
		ptrPart := lparts[1]
		ptr, pty, err := parseTypedRef(ptrPart, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		if !pty.IsPtr() {
			return p.errf("load from non-pointer")
		}
		in.Op, in.Ty, in.Args = OpLoad, pty.Elem, []Value{ptr}
		return nil
	case "store":
		sparts := splitTopLevel(rest, ',')
		if len(sparts) != 2 {
			return p.errf("bad store %q", text)
		}
		a, b := sparts[0], sparts[1]
		val, _, err := parseTypedRef(a, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		ptr, _, err := parseTypedRef(b, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.Ty, in.Args = OpStore, Void, []Value{val, ptr}
		return nil
	case "getelementptr":
		parts := splitTopLevel(rest, ',')
		if len(parts) < 2 {
			return p.errf("bad gep %q", text)
		}
		base, bty, err := parseTypedRef(parts[0], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op = OpGEP
		in.Args = []Value{base}
		elem := bty.Elem
		for i, ip := range parts[1:] {
			idx, _, err := parseTypedRef(ip, resolve)
			if err != nil {
				return p.errf("%v", err)
			}
			in.Args = append(in.Args, idx)
			if i > 0 {
				switch {
				case elem != nil && elem.IsArray():
					elem = elem.Elem
				case elem != nil && elem.IsStruct():
					c, ok := idx.(*Const)
					if !ok || c.I < 0 || int(c.I) >= len(elem.Fields) {
						return p.errf("gep struct index out of range")
					}
					elem = elem.Fields[c.I]
				default:
					return p.errf("gep steps into non-aggregate")
				}
			}
		}
		in.Ty = PtrTo(elem)
		return nil
	case "icmp", "fcmp":
		predTok, rest2, ok := cut(rest, " ")
		if !ok {
			return p.errf("bad cmp %q", text)
		}
		pred, err := parsePred(predTok)
		if err != nil {
			return p.errf("%v", err)
		}
		a, b, ok := cut(rest2, ", ")
		if !ok {
			return p.errf("bad cmp operands %q", rest2)
		}
		lhs, lty, err := parseTypedRef(a, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		rhs, err := resolve(b, lty)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op = OpICmp
		if op == "fcmp" {
			in.Op = OpFCmp
		}
		in.Ty, in.Pred, in.Args = I1, pred, []Value{lhs, rhs}
		return nil
	case "phi":
		ty, rest2, err := parseTypePrefix(strings.TrimSpace(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.Ty = OpPhi, ty
		for _, edge := range strings.Split(rest2, "],") {
			edge = strings.Trim(strings.TrimSpace(edge), "[]")
			if edge == "" {
				continue
			}
			vp, bp, ok := cut(edge, ",")
			if !ok {
				return p.errf("bad phi edge %q", edge)
			}
			v, err := resolve(vp, ty)
			if err != nil {
				return p.errf("%v", err)
			}
			b, err := label(bp)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, v)
			in.Blocks = append(in.Blocks, b)
		}
		// Move the phi to the block head, keeping phi order.
		blk := in.Parent
		blk.Remove(in)
		blk.InsertBefore(blk.FirstNonPhi(), in)
		return nil
	case "select":
		parts := splitTopLevel(rest, ',')
		if len(parts) != 3 {
			return p.errf("bad select %q", text)
		}
		cond, _, err := parseTypedRef(parts[0], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		a, aty, err := parseTypedRef(parts[1], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		b, _, err := parseTypedRef(parts[2], resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.Ty, in.Args = OpSelect, aty, []Value{cond, a, b}
		return nil
	case "call":
		ty, rest2, err := parseTypePrefix(strings.TrimSpace(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		open := strings.IndexByte(rest2, '(')
		closeIdx := strings.LastIndexByte(rest2, ')')
		if open < 0 || closeIdx < open {
			return p.errf("bad call %q", text)
		}
		name := strings.TrimSpace(rest2[:open])
		name = strings.TrimPrefix(name, "@")
		in.Op, in.Ty = OpCall, ty
		if fn := p.mod.Func(name); fn != nil {
			in.Callee = fn
		} else {
			in.Builtin = name
		}
		args := strings.TrimSpace(rest2[open+1 : closeIdx])
		if args != "" {
			for _, ap := range splitTopLevel(args, ',') {
				v, _, err := parseTypedRef(ap, resolve)
				if err != nil {
					return p.errf("%v", err)
				}
				in.Args = append(in.Args, v)
			}
		}
		return nil
	case "fneg", "freeze":
		v, ty, err := parseTypedRef(rest, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op = OpFNeg
		if op == "freeze" {
			in.Op = OpFreeze
		}
		in.Ty, in.Args = ty, []Value{v}
		return nil
	}

	// Casts: "<op> <ty> <ref> to <ty>".
	if castOp, ok := castOps[op]; ok {
		fromPart, toPart, found := cut(rest, " to ")
		if !found {
			return p.errf("bad cast %q", text)
		}
		v, _, err := parseTypedRef(fromPart, resolve)
		if err != nil {
			return p.errf("%v", err)
		}
		to, _, err := parseTypePrefix(strings.TrimSpace(toPart))
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.Ty, in.Args = castOp, to, []Value{v}
		return nil
	}

	// Binary ops: "<op> <ty> <ref>, <ref>".
	if binOp, ok := binaryOps[op]; ok {
		ty, rest2, err := parseTypePrefix(strings.TrimSpace(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		a, b, found := cut(rest2, ", ")
		if !found {
			return p.errf("bad binary %q", text)
		}
		lhs, err := resolve(a, ty)
		if err != nil {
			return p.errf("%v", err)
		}
		rhs, err := resolve(b, ty)
		if err != nil {
			return p.errf("%v", err)
		}
		in.Op, in.Ty, in.Args = binOp, ty, []Value{lhs, rhs}
		return nil
	}
	return p.errf("unknown instruction %q", text)
}

var binaryOps = func() map[string]Opcode {
	m := map[string]Opcode{}
	for op := OpAdd; op <= OpXor; op++ {
		m[op.String()] = op
	}
	for op := OpFAdd; op <= OpFRem; op++ {
		m[op.String()] = op
	}
	return m
}()

var castOps = func() map[string]Opcode {
	m := map[string]Opcode{}
	for op := OpTrunc; op <= OpAddrSpaceCast; op++ {
		m[op.String()] = op
	}
	return m
}()

func parsePred(s string) (CmpPred, error) {
	for p, n := range predNames {
		if n == s {
			return CmpPred(p), nil
		}
	}
	return 0, fmt.Errorf("unknown predicate %q", s)
}

// parseTypePrefix parses a leading type and returns the remainder.
func parseTypePrefix(s string) (*Type, string, error) {
	s = strings.TrimSpace(s)
	var base *Type
	switch {
	case strings.HasPrefix(s, "void"):
		base, s = Void, s[4:]
	case strings.HasPrefix(s, "double"):
		base, s = F64, s[6:]
	case strings.HasPrefix(s, "i1") && !strings.HasPrefix(s, "i16"):
		base, s = I1, s[2:]
	case strings.HasPrefix(s, "i8"):
		base, s = I8, s[2:]
	case strings.HasPrefix(s, "i32"):
		base, s = I32, s[3:]
	case strings.HasPrefix(s, "i64"):
		base, s = I64, s[3:]
	case strings.HasPrefix(s, "["):
		closeIdx := matchBracket(s, '[', ']')
		if closeIdx < 0 {
			return nil, s, fmt.Errorf("unbalanced array type in %q", s)
		}
		inner := s[1:closeIdx]
		np, ep, ok := cut(inner, " x ")
		if !ok {
			return nil, s, fmt.Errorf("bad array type %q", inner)
		}
		n, err := strconv.Atoi(strings.TrimSpace(np))
		if err != nil {
			return nil, s, fmt.Errorf("bad array length %q", np)
		}
		elem, rest, err := parseTypePrefix(ep)
		if err != nil {
			return nil, s, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, s, fmt.Errorf("junk after array element type: %q", rest)
		}
		base, s = ArrayOf(elem, n), s[closeIdx+1:]
	case strings.HasPrefix(s, "{"):
		closeIdx := matchBracket(s, '{', '}')
		if closeIdx < 0 {
			return nil, s, fmt.Errorf("unbalanced struct type in %q", s)
		}
		inner := strings.TrimSpace(s[1:closeIdx])
		var fields []*Type
		for _, fp := range splitTopLevel(inner, ',') {
			fp = strings.TrimSpace(fp)
			if fp == "" {
				continue
			}
			ft, rest, err := parseTypePrefix(fp)
			if err != nil {
				return nil, s, err
			}
			if strings.TrimSpace(rest) != "" {
				return nil, s, fmt.Errorf("junk after struct field type: %q", rest)
			}
			fields = append(fields, ft)
		}
		base, s = StructOf(fields...), s[closeIdx+1:]
	default:
		return nil, s, fmt.Errorf("unknown type in %q", s)
	}
	for strings.HasPrefix(s, "*") {
		base, s = PtrTo(base), s[1:]
	}
	return base, strings.TrimSpace(s), nil
}

// matchBracket returns the index of the close rune matching s[0]==open.
func matchBracket(s string, open, close byte) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTopLevel splits s on sep occurrences not nested in brackets/braces.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func cut(s, sep string) (string, string, bool) {
	idx := strings.Index(s, sep)
	if idx < 0 {
		return s, "", false
	}
	return s[:idx], s[idx+len(sep):], true
}

func cutPrefix(s, prefix string) (string, bool) {
	if strings.HasPrefix(s, prefix) {
		return s[len(prefix):], true
	}
	return s, false
}
