package ir_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

// thawMaster compiles the shared clone stress sample and flattens it.
func thawMaster(t *testing.T) (*ir.Module, *ir.Flat) {
	t.Helper()
	master, err := minic.CompileSource(cloneSample, "clone")
	if err != nil {
		t.Fatal(err)
	}
	return master, ir.Flatten(master)
}

// TestThawRoundTrip is the core proof obligation of the thaw path: a thawed
// module must verify, print byte-identically to the master, and re-flatten
// to byte-identical flat tables.
func TestThawRoundTrip(t *testing.T) {
	master, fl := thawMaster(t)
	before := master.String()

	th := ir.Thaw(fl)
	if err := th.Verify(); err != nil {
		t.Fatalf("thawed module fails verification: %v", err)
	}
	if got := th.String(); got != before {
		t.Fatalf("thawed module prints differently from master:\n--- master ---\n%s\n--- thawed ---\n%s", before, got)
	}
	if d := ir.FlatDiff(fl, ir.Flatten(th)); d != "" {
		t.Fatalf("Flatten(Thaw(fl)) diverges from fl: %s", d)
	}

	// The optimized shape exercises phis, merged blocks and renumbered IDs.
	opt := master.Clone()
	if err := passes.Optimize(opt, passes.O3); err != nil {
		t.Fatal(err)
	}
	ofl := ir.Flatten(opt)
	oth := ir.Thaw(ofl)
	if err := oth.Verify(); err != nil {
		t.Fatalf("thawed optimized module fails verification: %v", err)
	}
	if got, want := oth.String(), opt.String(); got != want {
		t.Fatalf("thawed optimized module prints differently:\n--- master ---\n%s\n--- thawed ---\n%s", want, got)
	}
	if d := ir.FlatDiff(ofl, ir.Flatten(oth)); d != "" {
		t.Fatalf("optimized round-trip diverges: %s", d)
	}
}

// TestThawIsReparseable pushes the thawed module through the parser's
// normalization, like TestCloneIsReparseable does for clones.
func TestThawIsReparseable(t *testing.T) {
	master, fl := thawMaster(t)
	mNorm := roundTrip(t, master).String()
	tNorm := roundTrip(t, ir.Thaw(fl)).String()
	if mNorm != tNorm {
		t.Fatalf("normalized thaw diverged from normalized master:\n--- master ---\n%s\n--- thawed ---\n%s", mNorm, tNorm)
	}
}

// TestThawMutationIsolation hammers a thawed copy with every mutating
// consumer and checks that neither the master module nor the flat view it
// was thawed from moved — the same invariant TestCloneRoundTrip pins for
// clones.
func TestThawMutationIsolation(t *testing.T) {
	master, fl := thawMaster(t)
	before := master.String()

	th := ir.Thaw(fl)
	if err := passes.Optimize(th, passes.O3); err != nil {
		t.Fatal(err)
	}
	if err := obfus.Apply(th, "ollvm", rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := th.Verify(); err != nil {
		t.Fatalf("mutated thaw fails verification: %v", err)
	}
	if got := master.String(); got != before {
		t.Fatalf("mutating a thawed copy changed the master:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
	if d := ir.FlatDiff(fl, ir.Flatten(master)); d != "" {
		t.Fatalf("mutating a thawed copy changed the flat view: %s", d)
	}
	// A fresh thaw of the untouched flat still matches the master.
	if got := ir.Thaw(fl).String(); got != before {
		t.Fatal("re-thaw after mutation of a sibling thaw diverged from the master")
	}
}

// TestThawSharingInvariants pins what is shared with the master (immutable
// types and signatures) versus rebuilt (functions, blocks, instructions,
// globals), and that constants materialize one object per operand use so
// pointer-identity pass rules fire exactly as they do on a clone.
func TestThawSharingInvariants(t *testing.T) {
	master, fl := thawMaster(t)
	th := ir.Thaw(fl)

	for i, mf := range master.Functions {
		tf := th.Functions[i]
		if tf == mf {
			t.Fatalf("function %q shared with master", mf.Name)
		}
		if tf.Sig != mf.Sig {
			t.Fatalf("function %q signature not shared with master", mf.Name)
		}
		for j, mb := range mf.Blocks {
			if tf.Blocks[j] == mb {
				t.Fatalf("block %s of %q shared with master", mb.Label(), mf.Name)
			}
			for k, mi := range mb.Instrs {
				if tf.Blocks[j].Instrs[k] == mi {
					t.Fatalf("instr %s of %q shared with master", mi.Ref(), mf.Name)
				}
			}
		}
	}
	for i, mg := range master.Globals {
		tg := th.Globals[i]
		if tg == mg {
			t.Fatalf("global %q shared with master", mg.Name)
		}
		if tg.Elem != mg.Elem {
			t.Fatalf("global %q element type not shared", mg.Name)
		}
	}

	// No *Const object may appear in two operand slots: the front end
	// allocates per use, and instcombine folds on operand pointer equality.
	seen := make(map[*ir.Const]string)
	for _, f := range th.Functions {
		f.ForEachInstr(func(in *ir.Instr) {
			for j, a := range in.Args {
				c, ok := a.(*ir.Const)
				if !ok {
					continue
				}
				at := fmt.Sprintf("%s arg %d", in.Ref(), j)
				if prev, dup := seen[c]; dup {
					t.Fatalf("constant object shared between %s and %s", prev, at)
				}
				seen[c] = at
			}
		})
	}
}

// TestThawArenaSpans checks the len==cap sub-slice discipline: appending to
// any instruction's Args, Blocks or SwitchVals must reallocate out of the
// arena instead of stomping the next instruction's span.
func TestThawArenaSpans(t *testing.T) {
	_, fl := thawMaster(t)
	th := ir.Thaw(fl)
	ref := ir.Thaw(fl)

	var thIns, refIns []*ir.Instr
	for _, f := range th.Functions {
		f.ForEachInstr(func(in *ir.Instr) { thIns = append(thIns, in) })
	}
	for _, f := range ref.Functions {
		f.ForEachInstr(func(in *ir.Instr) { refIns = append(refIns, in) })
	}
	if len(thIns) != len(refIns) {
		t.Fatalf("thaw size mismatch: %d vs %d", len(thIns), len(refIns))
	}

	// Append to every span, in order, before checking anything: if spans
	// leaked capacity over their neighbours, earlier appends would overwrite
	// later instructions' first slots.
	junkBlock := &ir.Block{Name: "junk"}
	for _, in := range thIns {
		in.Args = append(in.Args, ir.ConstBool(true))
		in.Blocks = append(in.Blocks, junkBlock)
		in.SwitchVals = append(in.SwitchVals, -777)
	}
	for i, in := range thIns {
		want := refIns[i]
		if len(in.Args) != len(want.Args)+1 || len(in.Blocks) != len(want.Blocks)+1 ||
			len(in.SwitchVals) != len(want.SwitchVals)+1 {
			t.Fatalf("instr %d: appended lengths off", i)
		}
		for j, a := range want.Args {
			if in.Args[j] == nil || a == nil {
				t.Fatalf("instr %d arg %d: nil operand", i, j)
			}
			if in.Args[j].Ref() != a.Ref() {
				t.Fatalf("instr %d arg %d stomped: %q vs %q", i, j, in.Args[j].Ref(), a.Ref())
			}
		}
		for j, b := range want.Blocks {
			if in.Blocks[j].Label() != b.Label() {
				t.Fatalf("instr %d block %d stomped: %q vs %q", i, j, in.Blocks[j].Label(), b.Label())
			}
		}
		for j, v := range want.SwitchVals {
			if in.SwitchVals[j] != v {
				t.Fatalf("instr %d switch val %d stomped", i, j)
			}
		}
	}

	// Same discipline for block instruction lists and function block lists.
	th2 := ir.Thaw(fl)
	for _, f := range th2.Functions {
		for _, b := range f.Blocks {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpUnreachable})
		}
		f.Blocks = append(f.Blocks, junkBlock)
	}
	for fi, f := range th2.Functions {
		want := ref.Functions[fi]
		if len(f.Blocks) != len(want.Blocks)+1 {
			t.Fatalf("function %q block list stomped", f.Name)
		}
		for bi, b := range want.Blocks {
			got := f.Blocks[bi]
			if got.Label() != b.Label() || len(got.Instrs) != len(b.Instrs)+1 {
				t.Fatalf("function %q block %d stomped", f.Name, bi)
			}
			for k, in := range b.Instrs {
				if got.Instrs[k].Op != in.Op {
					t.Fatalf("function %q block %d instr %d stomped", f.Name, bi, k)
				}
			}
		}
	}
}

// TestThawMatchesCloneUnderTransforms runs identical seeded transform
// pipelines over a cloned and a thawed copy and requires byte-identical
// results — the in-package smoke version of difftest's campaign-scale
// clone-vs-thaw equivalence run.
func TestThawMatchesCloneUnderTransforms(t *testing.T) {
	master, fl := thawMaster(t)
	for _, tc := range []struct {
		name  string
		apply func(*ir.Module, *rand.Rand) error
	}{
		{"O1", func(m *ir.Module, _ *rand.Rand) error { return passes.Optimize(m, passes.O1) }},
		{"O2", func(m *ir.Module, _ *rand.Rand) error { return passes.Optimize(m, passes.O2) }},
		{"O3", func(m *ir.Module, _ *rand.Rand) error { return passes.Optimize(m, passes.O3) }},
		{"bcf", func(m *ir.Module, rng *rand.Rand) error { return obfus.Apply(m, "bcf", rng) }},
		{"fla", func(m *ir.Module, rng *rand.Rand) error { return obfus.Apply(m, "fla", rng) }},
		{"sub", func(m *ir.Module, rng *rand.Rand) error { return obfus.Apply(m, "sub", rng) }},
		{"ollvm", func(m *ir.Module, rng *rand.Rand) error { return obfus.Apply(m, "ollvm", rng) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl := master.Clone()
			if err := tc.apply(cl, rand.New(rand.NewSource(7))); err != nil {
				t.Fatal(err)
			}
			th := ir.Thaw(fl)
			if err := tc.apply(th, rand.New(rand.NewSource(7))); err != nil {
				t.Fatal(err)
			}
			if cl.String() != th.String() {
				t.Fatalf("clone and thaw diverge under %s:\n--- clone ---\n%s\n--- thaw ---\n%s", tc.name, cl.String(), th.String())
			}
			if d := ir.FlatDiff(ir.Flatten(cl), ir.Flatten(th)); d != "" {
				t.Fatalf("flat tables diverge under %s: %s", tc.name, d)
			}
		})
	}
}
