package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func TestFunctionDOT(t *testing.T) {
	m, err := minic.CompileSource(`int main() {
		int x = input();
		switch (x) {
		case 1: return 10;
		case 2: return 20;
		}
		if (x > 5) return 1;
		return 0;
	}`, "dot")
	if err != nil {
		t.Fatal(err)
	}
	dot := m.Func("main").DOT()
	for _, want := range []string{
		"digraph", "entry", "->",
		"label=\"T\"",       // condbr true edge
		"label=\"default\"", // switch default edge
		"label=\"1\"",       // switch case edge
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Every block appears as a node.
	for _, b := range m.Func("main").Blocks {
		if !strings.Contains(dot, "\""+b.Label()+"\"") {
			t.Fatalf("block %s not rendered", b.Label())
		}
	}
}

func TestModuleDOT(t *testing.T) {
	m, err := minic.CompileSource(`
	int helper(int v) { return v * 2; }
	int main() { return helper(21); }`, "dot")
	if err != nil {
		t.Fatal(err)
	}
	dot := m.DOT()
	if !strings.Contains(dot, "cluster_") {
		t.Fatal("module DOT missing function clusters")
	}
	if !strings.Contains(dot, "@helper") || !strings.Contains(dot, "@main") {
		t.Fatalf("module DOT missing function labels:\n%s", dot)
	}
	// Quotes in instruction text must be escaped.
	if strings.Contains(dot, "label=\"\"") {
		t.Fatal("empty label generated")
	}
}

func TestDOTEscaping(t *testing.T) {
	// String literals introduce quotes inside instruction text.
	m, err := minic.CompileSource(`int main() { prints("say \"hi\""); return 0; }`, "dot")
	if err != nil {
		t.Fatal(err)
	}
	dot := m.Func("main").DOT()
	if strings.Contains(dot, `say "hi"`) {
		t.Fatal("unescaped quotes in dot output")
	}
	if !strings.Contains(dot, "digraph") {
		t.Fatal("no digraph emitted")
	}
}

func TestGlobalDefPrinting(t *testing.T) {
	m, err := minic.CompileSource(`
	float fg = 1.25;
	float fa[2] = {0.5, 2.75};
	int ig = 7;
	int ia[3] = {1, 2, 3};
	const int c = 5;
	int main() { return ig + c + (int)fg + ia[0] + (int)fa[1]; }`, "g")
	if err != nil {
		t.Fatal(err)
	}
	text := m.String()
	for _, want := range []string{
		"@fg = global double 1.25",
		"@fa = global [2 x double] [0.5, 2.75]",
		"@ig = global i64 7",
		"@ia = global [3 x i64] [1, 2, 3]",
		"@c = constant i64 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("module printout missing %q:\n%s", want, text)
		}
	}
	// The printed module with float globals must parse back.
	if _, err := ir.ParseModule(text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}
