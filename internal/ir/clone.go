package ir

// Clone returns a deep copy of the module. Functions, blocks and
// instructions are duplicated; globals are duplicated too so that
// transformations on the clone never touch the original.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Elem: g.Elem, Const: g.Const}
		ng.InitI = append([]int64(nil), g.InitI...)
		ng.InitF = append([]float64(nil), g.InitF...)
		nm.AddGlobal(ng)
		gmap[g] = ng
	}
	fmap := make(map[*Function]*Function, len(m.Functions))
	for _, f := range m.Functions {
		nf := &Function{Name: f.Name, Sig: f.Sig, nid: f.nid}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{Name: p.Name, Ty: p.Ty, Index: p.Index})
		}
		nm.Add(nf)
		fmap[f] = nf
	}
	for _, f := range m.Functions {
		cloneBody(f, fmap[f], fmap, gmap)
	}
	return nm
}

// CloneFunctionInto copies the body of src into dst (which must be a
// declaration with a matching signature), remapping function references via
// fmap and global references via gmap. Maps may be nil for identity.
func cloneBody(src, dst *Function, fmap map[*Function]*Function, gmap map[*Global]*Global) {
	bmap := make(map[*Block]*Block, len(src.Blocks))
	imap := make(map[*Instr]*Instr, 16)
	for _, b := range src.Blocks {
		nb := &Block{Name: b.Name, Fn: dst, ID: b.ID}
		dst.Blocks = append(dst.Blocks, nb)
		bmap[b] = nb
	}
	mapVal := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			if ni, ok := imap[x]; ok {
				return ni
			}
			// Detached instruction (not in any cloned block): share it, like
			// foreign globals and callees, so the clone prints and traps
			// with the same %t ref instead of carrying a nil operand.
			return x
		case *Param:
			if x.Index >= 0 && x.Index < len(src.Params) && src.Params[x.Index] == x {
				return dst.Params[x.Index]
			}
			// Foreign parameter (belongs to some other function): share it.
			return x
		case *Global:
			if gmap != nil {
				if ng, ok := gmap[x]; ok {
					return ng
				}
			}
			return x
		case *Function:
			if fmap != nil {
				if nf, ok := fmap[x]; ok {
					return nf
				}
			}
			return x
		default:
			return v
		}
	}
	// First pass: create instruction shells so that forward references
	// (phis) can be resolved in the second pass.
	for _, b := range src.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred, Builtin: in.Builtin,
				AllocaTy: in.AllocaTy, Parent: nb, ID: in.ID,
			}
			ni.SwitchVals = append([]int64(nil), in.SwitchVals...)
			if in.Callee != nil {
				ni.Callee = in.Callee
				if fmap != nil {
					if nf, ok := fmap[in.Callee]; ok {
						ni.Callee = nf
					}
				}
			}
			nb.Instrs = append(nb.Instrs, ni)
			imap[in] = ni
		}
	}
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			for _, a := range in.Args {
				ni.Args = append(ni.Args, mapVal(a))
			}
			for _, tb := range in.Blocks {
				ni.Blocks = append(ni.Blocks, bmap[tb])
			}
		}
	}
}

// CloneFunction returns a deep copy of function f inside the same module
// context (globals and callees are shared, not copied). The clone is not
// registered in any module.
func CloneFunction(f *Function) *Function {
	nf := &Function{Name: f.Name, Sig: f.Sig, Mod: f.Mod, nid: f.nid}
	for _, p := range f.Params {
		nf.Params = append(nf.Params, &Param{Name: p.Name, Ty: p.Ty, Index: p.Index})
	}
	cloneBody(f, nf, nil, nil)
	return nf
}
