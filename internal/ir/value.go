package ir

import (
	"fmt"
	"math"
)

// Value is anything that may appear as an instruction operand: constants,
// globals, function parameters, functions (as call targets or function
// pointers) and instructions themselves.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ref returns the textual reference form of the value (e.g. "%t3",
	// "@main", "42") used by the printer.
	Ref() string
}

// Const is a constant scalar value: an integer (of any width), a float, or
// the null pointer.
type Const struct {
	Ty *Type
	// I holds the integer payload for integer and pointer constants;
	// integer constants are stored sign-extended to 64 bits.
	I int64
	// F holds the payload of floating-point constants.
	F float64
}

// ConstInt returns the integer constant v of type ty, truncated/normalized
// to the width of ty.
func ConstInt(ty *Type, v int64) *Const {
	return &Const{Ty: ty, I: normalizeInt(ty, v)}
}

// ConstFloat returns the floating-point constant v.
func ConstFloat(v float64) *Const { return &Const{Ty: F64, F: v} }

// ConstNull returns the null constant of pointer type ty.
func ConstNull(ty *Type) *Const { return &Const{Ty: ty} }

// ConstBool returns the i1 constant for b.
func ConstBool(b bool) *Const {
	if b {
		return &Const{Ty: I1, I: 1}
	}
	return &Const{Ty: I1, I: 0}
}

// normalizeInt truncates v to the width of ty and sign-extends back to 64
// bits, so that all integer constants have a canonical representation.
// i1 canonicalizes to 0/1 (matching ConstBool).
func normalizeInt(ty *Type, v int64) int64 {
	if !ty.IsInt() || ty.Bits >= 64 {
		return v
	}
	if ty.Bits == 1 {
		return v & 1
	}
	shift := 64 - uint(ty.Bits)
	return v << shift >> shift
}

// Type returns the type of the constant.
func (c *Const) Type() *Type { return c.Ty }

// IsZero reports whether the constant is the additive identity of its type.
func (c *Const) IsZero() bool {
	if c.Ty.IsFloat() {
		return c.F == 0
	}
	return c.I == 0
}

// Ref renders the constant's payload.
func (c *Const) Ref() string {
	switch {
	case c.Ty.IsFloat():
		if c.F == math.Trunc(c.F) && math.Abs(c.F) < 1e15 {
			return fmt.Sprintf("%.1f", c.F)
		}
		return fmt.Sprintf("%g", c.F)
	case c.Ty.IsPtr():
		return "null"
	default:
		return fmt.Sprintf("%d", c.I)
	}
}

// Param is a formal parameter of a function.
type Param struct {
	Name string
	Ty   *Type
	// Index is the position of the parameter in the function signature.
	Index int
}

// Type returns the declared type of the parameter.
func (p *Param) Type() *Type { return p.Ty }

// Ref returns "%name".
func (p *Param) Ref() string { return "%" + p.Name }

// Global is a module-level variable. Its value (as an operand) is a pointer
// to the storage, mirroring LLVM semantics.
type Global struct {
	Name string
	// Elem is the pointee type of the global.
	Elem *Type
	// InitI holds the integer initializer words (one per element for array
	// globals, a single entry for scalars). Nil means zero-initialized.
	InitI []int64
	// InitF holds the float initializer values for float globals.
	InitF []float64
	// Const marks read-only globals (e.g. string literals).
	Const bool
}

// Type returns the pointer-to-Elem type of the global.
func (g *Global) Type() *Type { return PtrTo(g.Elem) }

// Ref returns "@name".
func (g *Global) Ref() string { return "@" + g.Name }
