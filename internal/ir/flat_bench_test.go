package ir_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/progcache"
)

// The flat-IR benchmarks behind `make bench-ir`: what a flat-view miss pays
// (Flatten), what the old read-only path paid per consumer (Clone), and what
// a progcache flat hit costs once the view is built (share, no copy). The
// same mid-sized program as the embed builder benches keeps the numbers
// comparable across BENCH_ir.json and BENCH_ml.json.
const benchSrc = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() {
	int s = 0;
	for (int i = 0; i < 20; i++) {
		if (i % 3 == 0) s += fib(i % 10);
		else if (i % 3 == 1) s ^= i * 7;
		else s -= i;
	}
	int a[16];
	for (int i = 0; i < 16; i++) a[i] = s + i;
	for (int i = 0; i < 16; i++) s += a[i] % 13;
	return s;
}`

func benchModule(b *testing.B) *ir.Module {
	b.Helper()
	m, err := minic.CompileSource(benchSrc, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFlatten is the one-time cost of building the struct-of-arrays
// view — paid once per cached source, amortized over every read-only
// consumer that follows.
func BenchmarkFlatten(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ir.Flatten(m)
	}
}

// BenchmarkClone is the per-consumer cost the read-only paths paid before
// the flat view existed: a full deep copy of the pointer IR.
func BenchmarkClone(b *testing.B) {
	m := benchModule(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Clone()
	}
}

// BenchmarkFlatShare is a progcache flat hit: after the first CompileFlat
// the view is shared, so a hit is a cache lookup and nothing else. Contrast
// with BenchmarkCompileClone, the mutating-consumer path that still deep
// copies.
func BenchmarkFlatShare(b *testing.B) {
	progcache.Reset()
	if _, err := progcache.CompileFlat(benchSrc, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progcache.CompileFlat(benchSrc, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThaw is the new per-mutator cost: rebuilding a pointer module
// from the flat tables with arena allocation. Compare against
// BenchmarkClone — the acceptance bar is ≥2x on time and ≥5x on allocs.
func BenchmarkThaw(b *testing.B) {
	fl := ir.Flatten(benchModule(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.Thaw(fl)
	}
}

// BenchmarkCompileThaw is a progcache hit on the thaw path: cached flat
// view plus an arena thaw, what Transform and the coevo loop now pay per
// mutable copy.
func BenchmarkCompileThaw(b *testing.B) {
	progcache.Reset()
	if _, err := progcache.CompileThaw(benchSrc, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progcache.CompileThaw(benchSrc, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileClone is a progcache hit on the mutating path: the cached
// master plus the deep clone handed to passes and obfuscators.
func BenchmarkCompileClone(b *testing.B) {
	progcache.Reset()
	if _, err := progcache.Compile(benchSrc, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progcache.Compile(benchSrc, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
