package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Thaw reconstructs a mutable pointer module from a flat snapshot. It is
// the write-side counterpart of Flatten: where Clone walks the pointer
// graph and allocates every node individually (~one allocation per
// instruction, block, operand slice and map entry), Thaw sizes a handful of
// arenas straight from the flat tables and carves every node and operand
// span out of them, so a thawed copy costs a near-constant number of
// allocations regardless of program size.
//
// Sharing invariants (the clone-vs-thaw equivalence suite pins these):
//
//   - Shared with the master, exactly like Clone: types (immutable,
//     including Function.Sig and Global.Elem), foreign call targets and
//     unknown globals (Funcs/Globals rows past the module tables), and
//     interned strings. No pass mutates any of them.
//   - Rebuilt fresh: functions, blocks, instructions, parameters, module
//     globals (with copied initializers) — everything a transform mutates.
//   - Constants are materialized one object per operand use, not one per
//     interned pool entry. The flat pool interns by payload, but passes
//     compare operands by pointer identity (e.g. instcombine's a == b
//     rules), and the front end allocates a fresh *Const per operand — so
//     per-use materialization reproduces the master's aliasing structure
//     exactly, keeping thawed and cloned transforms step-identical.
//
// Every variable-length field (Args, Blocks, SwitchVals, Block.Instrs,
// Function.Blocks, Function.Params) is a len==cap sub-slice of a pooled
// arena: in-place mutation stays inside the span it owns, and any append
// that would outgrow a span reallocates instead of stomping its neighbour.
//
// Thaw reads fl and the shared master objects only; it never writes
// through fl, so any number of goroutines may thaw one Flat concurrently.
func Thaw(fl *Flat) *Module {
	nInstr := fl.NumInstrs()
	nFuncs := int(fl.NumModFuncs)

	// One counting pass over the operand pool (dense, cache-friendly) sizes
	// the per-use constant arena.
	nConstUses := 0
	for i := range fl.Operands {
		if fl.Operands[i].Kind == OperConst {
			nConstUses++
		}
	}
	nKnown, nInitI, nInitF := 0, 0, 0
	for i := range fl.Globals {
		if fl.Globals[i].Known {
			nKnown++
			nInitI += len(fl.Globals[i].G.InitI)
			nInitF += len(fl.Globals[i].G.InitF)
		}
	}

	instrs := make([]Instr, nInstr)
	blocks := make([]Block, len(fl.Blocks))
	fns := make([]Function, nFuncs)
	params := make([]Param, len(fl.ParamNames))
	consts := make([]Const, nConstUses)
	args := make([]Value, len(fl.Operands))
	instrPtrs := make([]*Instr, nInstr)
	paramPtrs := make([]*Param, len(fl.ParamNames))
	// blkPtrs serves both instruction block-operand spans (the BlockArgs
	// prefix, addressed by the BArg spans) and function block lists (the
	// tail, carved off sequentially).
	blkPtrs := make([]*Block, len(fl.BlockArgs)+len(fl.Blocks))
	swVals := append([]int64(nil), fl.SwitchVals...)
	fnPtrs := make([]*Function, len(fl.Funcs))
	gPtrs := make([]*Global, len(fl.Globals))

	m := &Module{
		Name:      fl.Mod.Name,
		Functions: make([]*Function, 0, nFuncs),
		Globals:   make([]*Global, 0, nKnown),
		fnByName:  make(map[string]*Function, nFuncs),
		gByName:   make(map[string]*Global, nKnown),
	}

	// Module globals are rebuilt with copied initializers (a transform may
	// rewrite them in place); unknown globals are shared, like Clone.
	gArena := make([]Global, nKnown)
	var initI []int64
	var initF []float64
	if nInitI > 0 {
		initI = make([]int64, 0, nInitI)
	}
	if nInitF > 0 {
		initF = make([]float64, 0, nInitF)
	}
	gi := 0
	for i := range fl.Globals {
		row := &fl.Globals[i]
		if !row.Known {
			gPtrs[i] = row.G
			continue
		}
		src := row.G
		g := &gArena[gi]
		gi++
		g.Name, g.Elem, g.Const = src.Name, src.Elem, src.Const
		if n := len(src.InitI); n > 0 {
			p := len(initI)
			initI = append(initI, src.InitI...)
			g.InitI = initI[p : p+n : p+n]
		}
		if n := len(src.InitF); n > 0 {
			p := len(initF)
			initF = append(initF, src.InitF...)
			g.InitF = initF[p : p+n : p+n]
		}
		m.AddGlobal(g)
		gPtrs[i] = g
	}

	// Function shells first, so calls and function-pointer operands can
	// resolve forward. Foreign rows (past NumModFuncs) share the master's
	// object, exactly like Clone leaves unmapped callees alone.
	for fi := 0; fi < nFuncs; fi++ {
		row := &fl.Funcs[fi]
		f := &fns[fi]
		f.Name, f.Sig, f.nid = row.Name, row.Sig, int(row.NID)
		if row.Par1 > row.Par0 {
			pp := paramPtrs[row.Par0:row.Par1:row.Par1]
			for j := range pp {
				p := &params[int(row.Par0)+j]
				p.Name = fl.ParamNames[int(row.Par0)+j]
				p.Ty = fl.Types[fl.ParamTypes[int(row.Par0)+j]]
				p.Index = j
				pp[j] = p
			}
			f.Params = pp
		}
		m.Add(f)
		fnPtrs[fi] = f
	}
	for fi := nFuncs; fi < len(fl.Funcs); fi++ {
		fnPtrs[fi] = fl.Funcs[fi].F
	}

	for bi := range fl.Blocks {
		row := &fl.Blocks[bi]
		b := &blocks[bi]
		if row.Name >= 0 {
			b.Name = fl.Strings[row.Name]
		}
		b.ID = int(row.ID)
		b.Fn = &fns[row.Fn]
		ip := instrPtrs[row.Ins0:row.Ins1:row.Ins1]
		for j := range ip {
			ip[j] = &instrs[int(row.Ins0)+j]
		}
		b.Instrs = ip
	}
	cur := len(fl.BlockArgs)
	for fi := 0; fi < nFuncs; fi++ {
		row := &fl.Funcs[fi]
		nb := int(row.Blk1 - row.Blk0)
		fb := blkPtrs[cur : cur+nb : cur+nb]
		for j := range fb {
			fb[j] = &blocks[int(row.Blk0)+j]
		}
		fns[fi].Blocks = fb
		cur += nb
	}

	ci := 0
	for i := 0; i < nInstr; i++ {
		row := &fl.Instrs[i]
		next := &fl.Instrs[i+1]
		in := &instrs[i]
		in.Op = Opcode(fl.Ops[i])
		in.Ty = fl.Types[row.Ty]
		in.Pred = CmpPred(row.Pred)
		in.ID = int(row.ID)
		in.Parent = &blocks[row.Blk]
		if next.Arg0 > row.Arg0 {
			as := args[row.Arg0:next.Arg0:next.Arg0]
			for j := range as {
				op := fl.Operands[int(row.Arg0)+j]
				switch op.Kind {
				case OperInstr:
					as[j] = &instrs[op.Idx]
				case OperConst:
					fc := &fl.Consts[op.Idx]
					c := &consts[ci]
					ci++
					c.Ty, c.I, c.F = fl.Types[fc.Ty], fc.I, fc.F
					as[j] = c
				case OperParam:
					as[j] = &params[op.Idx]
				case OperGlobal:
					as[j] = gPtrs[op.Idx]
				case OperFunc:
					as[j] = fnPtrs[op.Idx]
				case OperBadInstr:
					// Detached instruction: synthesize a stand-in with the
					// same %t ref so printing and re-flattening agree.
					as[j] = &Instr{ID: badRefID(fl.Strings[op.Idx])}
				case OperBadParam:
					as[j] = &Param{Name: fl.Strings[op.Idx], Index: -1}
				default:
					// OperUnknown: the flat view never captured the value;
					// leave a nil operand (re-flattens to OperUnknown).
				}
			}
			in.Args = as
		}
		if next.BArg0 > row.BArg0 {
			bs := blkPtrs[row.BArg0:next.BArg0:next.BArg0]
			for j := range bs {
				bs[j] = &blocks[fl.BlockArgs[int(row.BArg0)+j]]
			}
			in.Blocks = bs
		}
		if next.Sw0 > row.Sw0 {
			in.SwitchVals = swVals[row.Sw0:next.Sw0:next.Sw0]
		}
		switch in.Op {
		case OpCall:
			if row.Aux >= 0 {
				in.Callee = fnPtrs[row.Aux]
			} else {
				in.Builtin = fl.Strings[-2-row.Aux]
			}
		case OpAlloca:
			if row.Aux >= 0 {
				in.AllocaTy = fl.Types[row.Aux]
			}
		}
	}
	return m
}

// badRefID recovers the numeric ID from a "%tN" reference string.
func badRefID(ref string) int {
	if len(ref) > 2 && ref[0] == '%' && ref[1] == 't' {
		if n, err := strconv.Atoi(ref[2:]); err == nil {
			return n
		}
	}
	return -1
}

// FlatDiff structurally compares two flat views, ignoring embedded master
// pointers (Mod, FlatFunc.Sig/F, FlatGlobal.G, the Types pool — types and
// signatures compare by rendered string, globals by name). It returns ""
// when the tables are identical, else a description of the first
// difference. The Flatten→Thaw→Flatten round-trip suite and the opcode
// coverage sweep assert emptiness.
func FlatDiff(a, b *Flat) string {
	if a.NumModFuncs != b.NumModFuncs {
		return fmt.Sprintf("NumModFuncs: %d vs %d", a.NumModFuncs, b.NumModFuncs)
	}
	if a.MainIdx != b.MainIdx {
		return fmt.Sprintf("MainIdx: %d vs %d", a.MainIdx, b.MainIdx)
	}
	if len(a.Funcs) != len(b.Funcs) {
		return fmt.Sprintf("len(Funcs): %d vs %d", len(a.Funcs), len(b.Funcs))
	}
	for i := range a.Funcs {
		fa, fb := &a.Funcs[i], &b.Funcs[i]
		if fa.Name != fb.Name || fa.NID != fb.NID ||
			fa.Blk0 != fb.Blk0 || fa.Blk1 != fb.Blk1 ||
			fa.Ins0 != fb.Ins0 || fa.Ins1 != fb.Ins1 ||
			fa.Par0 != fb.Par0 || fa.Par1 != fb.Par1 {
			return fmt.Sprintf("Funcs[%d]: %+v vs %+v", i, *fa, *fb)
		}
		if fa.Sig.String() != fb.Sig.String() {
			return fmt.Sprintf("Funcs[%d].Sig: %s vs %s", i, fa.Sig, fb.Sig)
		}
	}
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Sprintf("len(Blocks): %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			return fmt.Sprintf("Blocks[%d]: %+v vs %+v", i, a.Blocks[i], b.Blocks[i])
		}
	}
	if len(a.Ops) != len(b.Ops) {
		return fmt.Sprintf("len(Ops): %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			return fmt.Sprintf("Ops[%d]: %v vs %v", i, Opcode(a.Ops[i]), Opcode(b.Ops[i]))
		}
	}
	if len(a.Instrs) != len(b.Instrs) {
		return fmt.Sprintf("len(Instrs): %d vs %d", len(a.Instrs), len(b.Instrs))
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			return fmt.Sprintf("Instrs[%d]: %+v vs %+v", i, a.Instrs[i], b.Instrs[i])
		}
	}
	if len(a.Operands) != len(b.Operands) {
		return fmt.Sprintf("len(Operands): %d vs %d", len(a.Operands), len(b.Operands))
	}
	for i := range a.Operands {
		if a.Operands[i] != b.Operands[i] {
			return fmt.Sprintf("Operands[%d]: %+v vs %+v", i, a.Operands[i], b.Operands[i])
		}
	}
	if len(a.BlockArgs) != len(b.BlockArgs) {
		return fmt.Sprintf("len(BlockArgs): %d vs %d", len(a.BlockArgs), len(b.BlockArgs))
	}
	for i := range a.BlockArgs {
		if a.BlockArgs[i] != b.BlockArgs[i] {
			return fmt.Sprintf("BlockArgs[%d]: %d vs %d", i, a.BlockArgs[i], b.BlockArgs[i])
		}
	}
	if len(a.SwitchVals) != len(b.SwitchVals) {
		return fmt.Sprintf("len(SwitchVals): %d vs %d", len(a.SwitchVals), len(b.SwitchVals))
	}
	for i := range a.SwitchVals {
		if a.SwitchVals[i] != b.SwitchVals[i] {
			return fmt.Sprintf("SwitchVals[%d]: %d vs %d", i, a.SwitchVals[i], b.SwitchVals[i])
		}
	}
	if len(a.TypeStrs) != len(b.TypeStrs) {
		return fmt.Sprintf("len(Types): %d vs %d", len(a.TypeStrs), len(b.TypeStrs))
	}
	for i := range a.TypeStrs {
		if a.TypeStrs[i] != b.TypeStrs[i] {
			return fmt.Sprintf("TypeStrs[%d]: %q vs %q", i, a.TypeStrs[i], b.TypeStrs[i])
		}
	}
	if len(a.Consts) != len(b.Consts) {
		return fmt.Sprintf("len(Consts): %d vs %d", len(a.Consts), len(b.Consts))
	}
	for i := range a.Consts {
		ca, cb := &a.Consts[i], &b.Consts[i]
		// Floats compare by bit pattern: distinct NaN payloads are distinct
		// pool entries and must stay that way through a thaw.
		if ca.Ty != cb.Ty || ca.I != cb.I ||
			math.Float64bits(ca.F) != math.Float64bits(cb.F) {
			return fmt.Sprintf("Consts[%d]: %+v vs %+v", i, *ca, *cb)
		}
	}
	if len(a.ConstAlias) != len(b.ConstAlias) {
		return fmt.Sprintf("len(ConstAlias): %d vs %d", len(a.ConstAlias), len(b.ConstAlias))
	}
	for i := range a.ConstAlias {
		if a.ConstAlias[i] != b.ConstAlias[i] {
			return fmt.Sprintf("ConstAlias[%d]: %d vs %d", i, a.ConstAlias[i], b.ConstAlias[i])
		}
	}
	if len(a.Globals) != len(b.Globals) {
		return fmt.Sprintf("len(Globals): %d vs %d", len(a.Globals), len(b.Globals))
	}
	for i := range a.Globals {
		ga, gb := &a.Globals[i], &b.Globals[i]
		if ga.G.Name != gb.G.Name || ga.Elem != gb.Elem ||
			ga.NameAlias != gb.NameAlias || ga.Known != gb.Known {
			return fmt.Sprintf("Globals[%d]: %+v vs %+v", i, *ga, *gb)
		}
	}
	if len(a.Strings) != len(b.Strings) {
		return fmt.Sprintf("len(Strings): %d vs %d", len(a.Strings), len(b.Strings))
	}
	for i := range a.Strings {
		if a.Strings[i] != b.Strings[i] {
			return fmt.Sprintf("Strings[%d]: %q vs %q", i, a.Strings[i], b.Strings[i])
		}
	}
	if len(a.ParamNames) != len(b.ParamNames) {
		return fmt.Sprintf("len(ParamNames): %d vs %d", len(a.ParamNames), len(b.ParamNames))
	}
	for i := range a.ParamNames {
		if a.ParamNames[i] != b.ParamNames[i] {
			return fmt.Sprintf("ParamNames[%d]: %q vs %q", i, a.ParamNames[i], b.ParamNames[i])
		}
	}
	if len(a.ParamTypes) != len(b.ParamTypes) {
		return fmt.Sprintf("len(ParamTypes): %d vs %d", len(a.ParamTypes), len(b.ParamTypes))
	}
	for i := range a.ParamTypes {
		if a.ParamTypes[i] != b.ParamTypes[i] {
			return fmt.Sprintf("ParamTypes[%d]: %d vs %d", i, a.ParamTypes[i], b.ParamTypes[i])
		}
	}
	return ""
}
