package ir

import "fmt"

// Instr is a single IR instruction. One struct represents all 63 opcodes;
// the auxiliary fields (Pred, Blocks, SwitchVals, Callee, Builtin, AllocaTy)
// are meaningful only for the opcodes that use them.
type Instr struct {
	Op Opcode
	// Ty is the result type; Void for instructions that produce no value.
	Ty *Type
	// Args are the value operands. Their layout per opcode:
	//   ret:    [] or [v]
	//   condbr: [cond]
	//   switch: [v]
	//   binary: [lhs, rhs]
	//   fneg:   [v]
	//   load:   [ptr]
	//   store:  [val, ptr]
	//   gep:    [base, idx...]
	//   cast:   [v]
	//   icmp:   [lhs, rhs]
	//   phi:    incoming values (parallel to Blocks)
	//   select: [cond, then, else]
	//   call:   arguments
	Args []Value
	// Blocks are the block operands:
	//   br:     [target]
	//   condbr: [then, else]
	//   switch: [default, case0, case1, ...]
	//   phi:    incoming blocks (parallel to Args)
	Blocks []*Block
	// SwitchVals are the case values of a switch, parallel to Blocks[1:].
	SwitchVals []int64
	// Pred is the comparison predicate of icmp/fcmp.
	Pred CmpPred
	// Callee is the direct call target; nil for builtin calls.
	Callee *Function
	// Builtin is the name of the runtime builtin invoked when Callee is nil.
	Builtin string
	// AllocaTy is the element type allocated by an alloca; the result type
	// is a pointer to it.
	AllocaTy *Type

	// Parent is the block containing the instruction.
	Parent *Block
	// ID is a function-unique number used for printing (%t<ID>).
	ID int
}

// Type returns the result type of the instruction.
func (in *Instr) Type() *Type {
	if in.Ty == nil {
		return Void
	}
	return in.Ty
}

// Ref returns the SSA name of the instruction's result.
func (in *Instr) Ref() string { return fmt.Sprintf("%%t%d", in.ID) }

// HasResult reports whether the instruction produces an SSA value.
func (in *Instr) HasResult() bool { return !in.Type().IsVoid() }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// Succs returns the successor blocks of a terminator, in operand order.
// It returns nil for non-terminators and for ret/unreachable.
func (in *Instr) Succs() []*Block {
	if !in.IsTerminator() {
		return nil
	}
	return in.Blocks
}

// ReplaceUses rewrites every occurrence of old in the instruction's value
// operands with new. It returns the number of replacements.
func (in *Instr) ReplaceUses(old, new Value) int {
	n := 0
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
			n++
		}
	}
	return n
}

// PhiIncoming returns the incoming value for the given predecessor block of
// a phi instruction, or nil if b is not an incoming block.
func (in *Instr) PhiIncoming(b *Block) Value {
	for i, blk := range in.Blocks {
		if blk == b {
			return in.Args[i]
		}
	}
	return nil
}

// SetPhiIncoming sets the incoming value for predecessor b, appending a new
// edge if none exists yet.
func (in *Instr) SetPhiIncoming(b *Block, v Value) {
	for i, blk := range in.Blocks {
		if blk == b {
			in.Args[i] = v
			return
		}
	}
	in.Blocks = append(in.Blocks, b)
	in.Args = append(in.Args, v)
}

// RemovePhiIncoming deletes the phi edge coming from block b, if present.
func (in *Instr) RemovePhiIncoming(b *Block) {
	for i, blk := range in.Blocks {
		if blk == b {
			in.Blocks = append(in.Blocks[:i], in.Blocks[i+1:]...)
			in.Args = append(in.Args[:i], in.Args[i+1:]...)
			return
		}
	}
}

// RedirectTarget rewrites every occurrence of block from in the terminator's
// targets to block to.
func (in *Instr) RedirectTarget(from, to *Block) {
	for i, b := range in.Blocks {
		if b == from {
			in.Blocks[i] = to
		}
	}
}
