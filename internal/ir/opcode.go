package ir

// Opcode identifies the operation an instruction performs. The set mirrors
// the LLVM instruction set and contains exactly NumOpcodes = 63 entries; the
// histogram embedding is indexed by Opcode, so this count is load-bearing.
type Opcode int

// The 63 opcodes of the IR. The block of "exotic" opcodes at the end
// (vectors, exceptions, atomics) exists so that the opcode space matches the
// 63-dimensional histogram of the paper; the front end and the transformation
// passes in this repository never emit them, exactly as the paper's C subset
// of POJ-104 rarely exercises them.
const (
	// Terminators.
	OpRet Opcode = iota
	OpBr
	OpCondBr
	OpSwitch
	OpUnreachable

	// Integer arithmetic and bitwise logic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFRem
	OpFNeg

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// Conversions.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpFPToUI
	OpSIToFP
	OpUIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitcast
	OpAddrSpaceCast

	// Other.
	OpICmp
	OpFCmp
	OpPhi
	OpSelect
	OpCall
	OpFreeze
	OpVAArg

	// Aggregates and vectors (never emitted by the MiniC front end).
	OpExtractValue
	OpInsertValue
	OpExtractElement
	OpInsertElement
	OpShuffleVector

	// Atomics and fences (never emitted).
	OpFence
	OpCmpXchg
	OpAtomicRMW

	// Exception handling and exotic control flow (never emitted).
	OpIndirectBr
	OpInvoke
	OpCallBr
	OpResume
	OpLandingPad
	OpCatchPad
	OpCleanupPad

	// NumOpcodes is the number of distinct opcodes; it is the dimension of
	// the opcode-histogram program embedding.
	NumOpcodes
)

var opcodeNames = [NumOpcodes]string{
	OpRet: "ret", OpBr: "br", OpCondBr: "condbr", OpSwitch: "switch",
	OpUnreachable: "unreachable",
	OpAdd:         "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFRem: "frem", OpFNeg: "fneg",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext", OpFPTrunc: "fptrunc",
	OpFPExt: "fpext", OpFPToSI: "fptosi", OpFPToUI: "fptoui",
	OpSIToFP: "sitofp", OpUIToFP: "uitofp", OpPtrToInt: "ptrtoint",
	OpIntToPtr: "inttoptr", OpBitcast: "bitcast", OpAddrSpaceCast: "addrspacecast",
	OpICmp: "icmp", OpFCmp: "fcmp", OpPhi: "phi", OpSelect: "select",
	OpCall: "call", OpFreeze: "freeze", OpVAArg: "va_arg",
	OpExtractValue: "extractvalue", OpInsertValue: "insertvalue",
	OpExtractElement: "extractelement", OpInsertElement: "insertelement",
	OpShuffleVector: "shufflevector",
	OpFence:         "fence", OpCmpXchg: "cmpxchg", OpAtomicRMW: "atomicrmw",
	OpIndirectBr: "indirectbr", OpInvoke: "invoke", OpCallBr: "callbr",
	OpResume: "resume", OpLandingPad: "landingpad", OpCatchPad: "catchpad",
	OpCleanupPad: "cleanuppad",
}

// String returns the LLVM-style mnemonic of the opcode.
func (op Opcode) String() string {
	if op < 0 || op >= NumOpcodes {
		return "badop"
	}
	return opcodeNames[op]
}

// IsTerminator reports whether op terminates a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpRet, OpBr, OpCondBr, OpSwitch, OpUnreachable, OpIndirectBr,
		OpInvoke, OpCallBr, OpResume:
		return true
	}
	return false
}

// IsIntBinary reports whether op is a two-operand integer arithmetic or
// bitwise instruction.
func (op Opcode) IsIntBinary() bool { return op >= OpAdd && op <= OpXor }

// IsFloatBinary reports whether op is a two-operand floating-point
// arithmetic instruction.
func (op Opcode) IsFloatBinary() bool { return op >= OpFAdd && op <= OpFRem }

// IsCast reports whether op is a conversion instruction.
func (op Opcode) IsCast() bool { return op >= OpTrunc && op <= OpAddrSpaceCast }

// IsCommutative reports whether the operands of op may be swapped without
// changing the result.
func (op Opcode) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpFAdd, OpFMul:
		return true
	}
	return false
}

// HasSideEffects reports whether an instruction with this opcode may write
// memory, perform I/O or alter control flow, and therefore must not be
// removed by dead-code elimination even when its result is unused. Calls are
// treated conservatively.
func (op Opcode) HasSideEffects() bool {
	switch op {
	case OpStore, OpCall, OpFence, OpCmpXchg, OpAtomicRMW, OpVAArg:
		return true
	}
	return op.IsTerminator()
}

// CmpPred is the predicate of an icmp or fcmp instruction.
type CmpPred int

// Integer predicates (signed and unsigned) followed by ordered
// floating-point predicates.
const (
	CmpEQ CmpPred = iota
	CmpNE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
)

var predNames = [...]string{
	CmpEQ: "eq", CmpNE: "ne", CmpSLT: "slt", CmpSLE: "sle", CmpSGT: "sgt",
	CmpSGE: "sge", CmpULT: "ult", CmpULE: "ule", CmpUGT: "ugt", CmpUGE: "uge",
}

// String returns the LLVM-style spelling of the predicate.
func (p CmpPred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "badpred"
}

// Inverse returns the predicate that is true exactly when p is false.
func (p CmpPred) Inverse() CmpPred {
	switch p {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpSLT:
		return CmpSGE
	case CmpSLE:
		return CmpSGT
	case CmpSGT:
		return CmpSLE
	case CmpSGE:
		return CmpSLT
	case CmpULT:
		return CmpUGE
	case CmpULE:
		return CmpUGT
	case CmpUGT:
		return CmpULE
	case CmpUGE:
		return CmpULT
	}
	return p
}

// Swapped returns the predicate that gives the same result when the two
// comparison operands are exchanged.
func (p CmpPred) Swapped() CmpPred {
	switch p {
	case CmpSLT:
		return CmpSGT
	case CmpSLE:
		return CmpSGE
	case CmpSGT:
		return CmpSLT
	case CmpSGE:
		return CmpSLE
	case CmpULT:
		return CmpUGT
	case CmpULE:
		return CmpUGE
	case CmpUGT:
		return CmpULT
	case CmpUGE:
		return CmpULE
	}
	return p
}
