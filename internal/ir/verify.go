package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of every function in the module
// and returns the first problem found, or nil.
func (m *Module) Verify() error {
	for _, f := range m.Functions {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("function @%s: %w", f.Name, err)
		}
	}
	return nil
}

// Verify checks that the function is structurally well-formed:
//   - every block ends in exactly one terminator, with no terminator mid-block;
//   - phi nodes appear only at block heads and their incoming blocks match
//     the block's predecessors exactly;
//   - operand counts and basic operand types are consistent with opcodes;
//   - every instruction-operand is defined in this function and (for
//     reachable code) its definition dominates the use.
func (f *Function) Verify() error {
	if f.IsDecl() {
		return nil
	}
	defined := make(map[*Instr]bool)
	f.ForEachInstr(func(in *Instr) { defined[in] = true })

	preds := f.Preds()
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Label())
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("block %s does not end in a terminator", b.Label())
				}
				return fmt.Errorf("block %s has terminator %s mid-block", b.Label(), in.Op)
			}
			if in.Parent != b {
				return fmt.Errorf("instruction %s in %s has wrong parent", in.Op, b.Label())
			}
			if err := checkOperands(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Label(), in, err)
			}
			if in.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return fmt.Errorf("block %s: phi not at block head", b.Label())
				}
				if err := checkPhi(in, preds[b]); err != nil {
					return fmt.Errorf("block %s: %w", b.Label(), err)
				}
			}
			for _, a := range in.Args {
				if ai, ok := a.(*Instr); ok && !defined[ai] {
					return fmt.Errorf("block %s: %s uses instruction from another function", b.Label(), in.Op)
				}
				if p, ok := a.(*Param); ok {
					if p.Index >= len(f.Params) || f.Params[p.Index] != p {
						return fmt.Errorf("block %s: %s uses foreign parameter %%%s", b.Label(), in.Op, p.Name)
					}
				}
			}
		}
	}
	return f.verifyDominance()
}

func checkPhi(in *Instr, preds []*Block) error {
	if len(in.Args) != len(in.Blocks) {
		return errors.New("phi has mismatched values/blocks")
	}
	want := make(map[*Block]int)
	for _, p := range preds {
		want[p]++
	}
	have := make(map[*Block]int)
	for _, b := range in.Blocks {
		have[b]++
	}
	for p := range want {
		if have[p] == 0 {
			return fmt.Errorf("phi %s missing incoming edge from %s", in.Ref(), p.Label())
		}
	}
	for b := range have {
		if want[b] == 0 {
			return fmt.Errorf("phi %s has edge from non-predecessor %s", in.Ref(), b.Label())
		}
	}
	return nil
}

func checkOperands(in *Instr) error {
	nargs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	switch {
	case in.Op == OpRet:
		if len(in.Args) > 1 {
			return errors.New("ret with multiple values")
		}
		return nil
	case in.Op == OpBr:
		if len(in.Blocks) != 1 {
			return errors.New("br needs one target")
		}
		return nil
	case in.Op == OpCondBr:
		if err := nargs(1); err != nil {
			return err
		}
		if !in.Args[0].Type().Equal(I1) {
			return fmt.Errorf("condbr condition is %s, want i1", in.Args[0].Type())
		}
		if len(in.Blocks) != 2 {
			return errors.New("condbr needs two targets")
		}
		return nil
	case in.Op == OpSwitch:
		if err := nargs(1); err != nil {
			return err
		}
		if len(in.Blocks) != len(in.SwitchVals)+1 {
			return errors.New("switch case/target mismatch")
		}
		return nil
	case in.Op.IsIntBinary():
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsInt() || !in.Args[1].Type().IsInt() {
			return fmt.Errorf("integer op on %s, %s", in.Args[0].Type(), in.Args[1].Type())
		}
		return nil
	case in.Op.IsFloatBinary():
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsFloat() || !in.Args[1].Type().IsFloat() {
			return fmt.Errorf("float op on %s, %s", in.Args[0].Type(), in.Args[1].Type())
		}
		return nil
	case in.Op == OpFNeg:
		return nargs(1)
	case in.Op == OpAlloca:
		if in.AllocaTy == nil {
			return errors.New("alloca without element type")
		}
		return nil
	case in.Op == OpLoad:
		if err := nargs(1); err != nil {
			return err
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("load from %s", in.Args[0].Type())
		}
		return nil
	case in.Op == OpStore:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Args[1].Type().IsPtr() {
			return fmt.Errorf("store to %s", in.Args[1].Type())
		}
		return nil
	case in.Op == OpGEP:
		if len(in.Args) < 2 {
			return errors.New("gep needs base and index")
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("gep base is %s", in.Args[0].Type())
		}
		return nil
	case in.Op == OpICmp, in.Op == OpFCmp:
		return nargs(2)
	case in.Op == OpSelect:
		return nargs(3)
	case in.Op == OpCall:
		if in.Callee == nil && in.Builtin == "" {
			return errors.New("call without target")
		}
		if in.Callee != nil && len(in.Args) != len(in.Callee.Sig.Params) {
			return fmt.Errorf("call @%s with %d args, want %d",
				in.Callee.Name, len(in.Args), len(in.Callee.Sig.Params))
		}
		return nil
	case in.Op.IsCast(), in.Op == OpFreeze:
		return nargs(1)
	}
	return nil
}

// verifyDominance checks that in reachable code every instruction operand's
// definition dominates its use (phi uses are checked at the incoming edge).
func (f *Function) verifyDominance() error {
	dt := NewDomTree(f)
	defBlock := make(map[*Instr]*Block)
	defIdx := make(map[*Instr]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			defBlock[in] = b
			defIdx[in] = i
		}
	}
	for _, b := range dt.RPO {
		for i, in := range b.Instrs {
			for ai, a := range in.Args {
				d, ok := a.(*Instr)
				if !ok {
					continue
				}
				db := defBlock[d]
				if _, reachable := dt.Order[db]; !reachable {
					return fmt.Errorf("%s in %s uses value defined in unreachable block", in.Op, b.Label())
				}
				if in.Op == OpPhi {
					edge := in.Blocks[ai]
					if _, reachable := dt.Order[edge]; !reachable {
						continue
					}
					if !dt.Dominates(db, edge) {
						return fmt.Errorf("phi %s in %s: incoming %s does not dominate edge %s",
							in.Ref(), b.Label(), d.Ref(), edge.Label())
					}
					continue
				}
				if db == b {
					if defIdx[d] >= i {
						return fmt.Errorf("%s in %s uses %s before definition", in.Op, b.Label(), d.Ref())
					}
				} else if !dt.Dominates(db, b) {
					return fmt.Errorf("%s in %s: operand %s defined in %s does not dominate use",
						in.Op, b.Label(), d.Ref(), db.Label())
				}
			}
		}
	}
	return nil
}
