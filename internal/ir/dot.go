package ir

import (
	"fmt"
	"strings"
)

// DOT renders the function's control-flow graph in Graphviz dot syntax,
// one record-shaped node per basic block with its instructions listed.
// Useful for inspecting what obfuscation does to a CFG:
//
//	minicc -obf fla -emit-dot prog.c | dot -Tsvg > cfg.svg
func (f *Function) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for _, b := range f.Blocks {
		var body strings.Builder
		fmt.Fprintf(&body, "%s:\\l", b.Label())
		for _, in := range b.Instrs {
			body.WriteString("  " + dotEscape(in.String()) + "\\l")
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\"];\n", b.Label(), body.String())
	}
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil {
			continue
		}
		for i, s := range term.Succs() {
			attr := ""
			switch term.Op {
			case OpCondBr:
				if i == 0 {
					attr = " [label=\"T\", color=darkgreen]"
				} else {
					attr = " [label=\"F\", color=red3]"
				}
			case OpSwitch:
				if i == 0 {
					attr = " [label=\"default\", style=dashed]"
				} else {
					attr = fmt.Sprintf(" [label=\"%d\"]", term.SwitchVals[i-1])
				}
			}
			fmt.Fprintf(&sb, "  %q -> %q%s;\n", b.Label(), s.Label(), attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DOT renders every defined function of the module as a cluster in one
// digraph.
func (m *Module) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph module {\n")
	sb.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for fi, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", fi, "@"+f.Name)
		qual := func(b *Block) string { return f.Name + "." + b.Label() }
		for _, b := range f.Blocks {
			var body strings.Builder
			fmt.Fprintf(&body, "%s:\\l", b.Label())
			for _, in := range b.Instrs {
				body.WriteString("  " + dotEscape(in.String()) + "\\l")
			}
			fmt.Fprintf(&sb, "    %q [label=\"%s\"];\n", qual(b), body.String())
		}
		for _, b := range f.Blocks {
			if term := b.Term(); term != nil {
				for _, s := range term.Succs() {
					fmt.Fprintf(&sb, "    %q -> %q;\n", qual(b), qual(s))
				}
			}
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
