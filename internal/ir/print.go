package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-flavoured textual syntax. The output
// is intended for debugging and golden tests, not for re-parsing.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		sb.WriteString(g.Def())
		sb.WriteByte('\n')
	}
	for _, f := range m.Functions {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Def renders the global's definition line.
func (g *Global) Def() string {
	kind := "global"
	if g.Const {
		kind = "constant"
	}
	init := "zeroinitializer"
	switch {
	case len(g.InitF) == 1:
		init = fmt.Sprintf("%g", g.InitF[0])
	case len(g.InitF) > 1:
		parts := make([]string, len(g.InitF))
		for i, v := range g.InitF {
			parts[i] = fmt.Sprintf("%g", v)
		}
		init = "[" + strings.Join(parts, ", ") + "]"
	case len(g.InitI) == 1:
		init = fmt.Sprintf("%d", g.InitI[0])
	case len(g.InitI) > 1:
		parts := make([]string, len(g.InitI))
		for i, v := range g.InitI {
			parts[i] = fmt.Sprintf("%d", v)
		}
		init = "[" + strings.Join(parts, ", ") + "]"
	}
	return fmt.Sprintf("@%s = %s %s %s", g.Name, kind, g.Elem, init)
}

// String renders the function with its blocks and instructions.
func (f *Function) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Ty, p.Name)
	}
	if f.IsDecl() {
		fmt.Fprintf(&sb, "declare %s @%s(%s)\n", f.RetType(), f.Name, strings.Join(params, ", "))
		return sb.String()
	}
	fmt.Fprintf(&sb, "define %s @%s(%s) {\n", f.RetType(), f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label())
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders a single instruction.
func (in *Instr) String() string {
	ref := func(v Value) string {
		if v == nil {
			return "<nil>"
		}
		return fmt.Sprintf("%s %s", v.Type(), v.Ref())
	}
	switch in.Op {
	case OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return "ret " + ref(in.Args[0])
	case OpBr:
		return "br label %" + in.Blocks[0].Label()
	case OpCondBr:
		return fmt.Sprintf("br %s, label %%%s, label %%%s",
			ref(in.Args[0]), in.Blocks[0].Label(), in.Blocks[1].Label())
	case OpSwitch:
		var sb strings.Builder
		fmt.Fprintf(&sb, "switch %s, label %%%s [", ref(in.Args[0]), in.Blocks[0].Label())
		for i, v := range in.SwitchVals {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d: label %%%s", v, in.Blocks[i+1].Label())
		}
		sb.WriteByte(']')
		return sb.String()
	case OpUnreachable:
		return "unreachable"
	case OpAlloca:
		return fmt.Sprintf("%s = alloca %s", in.Ref(), in.AllocaTy)
	case OpLoad:
		return fmt.Sprintf("%s = load %s, %s", in.Ref(), in.Ty, ref(in.Args[0]))
	case OpStore:
		return fmt.Sprintf("store %s, %s", ref(in.Args[0]), ref(in.Args[1]))
	case OpGEP:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = ref(a)
		}
		return fmt.Sprintf("%s = getelementptr %s", in.Ref(), strings.Join(parts, ", "))
	case OpICmp, OpFCmp:
		return fmt.Sprintf("%s = %s %s %s, %s", in.Ref(), in.Op, in.Pred,
			ref(in.Args[0]), in.Args[1].Ref())
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = fmt.Sprintf("[ %s, %%%s ]", a.Ref(), in.Blocks[i].Label())
		}
		return fmt.Sprintf("%s = phi %s %s", in.Ref(), in.Ty, strings.Join(parts, ", "))
	case OpSelect:
		return fmt.Sprintf("%s = select %s, %s, %s", in.Ref(),
			ref(in.Args[0]), ref(in.Args[1]), ref(in.Args[2]))
	case OpCall:
		name := in.Builtin
		if in.Callee != nil {
			name = in.Callee.Name
		}
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = ref(a)
		}
		call := fmt.Sprintf("call %s @%s(%s)", in.Ty, name, strings.Join(parts, ", "))
		if in.HasResult() {
			return in.Ref() + " = " + call
		}
		return call
	case OpFNeg, OpFreeze:
		return fmt.Sprintf("%s = %s %s", in.Ref(), in.Op, ref(in.Args[0]))
	default:
		if in.Op.IsCast() {
			return fmt.Sprintf("%s = %s %s to %s", in.Ref(), in.Op, ref(in.Args[0]), in.Ty)
		}
		if len(in.Args) == 2 {
			return fmt.Sprintf("%s = %s %s %s, %s", in.Ref(), in.Op, in.Ty,
				in.Args[0].Ref(), in.Args[1].Ref())
		}
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = ref(a)
		}
		return fmt.Sprintf("%s = %s %s", in.Ref(), in.Op, strings.Join(parts, ", "))
	}
}
