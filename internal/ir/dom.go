package ir

// DomTree is the dominator tree of a function, computed with the
// Cooper-Harvey-Kennedy iterative algorithm. Unreachable blocks are absent
// from all maps.
type DomTree struct {
	Fn *Function
	// IDom maps each block (except the entry) to its immediate dominator.
	IDom map[*Block]*Block
	// Children maps each block to the blocks it immediately dominates.
	Children map[*Block][]*Block
	// Order is a reverse-postorder numbering of the reachable blocks.
	Order map[*Block]int
	// RPO is the reachable blocks in reverse postorder.
	RPO []*Block
	// preds caches the predecessor map used during construction.
	preds map[*Block][]*Block
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *Function) *DomTree {
	t := &DomTree{
		Fn:       f,
		IDom:     make(map[*Block]*Block),
		Children: make(map[*Block][]*Block),
		Order:    make(map[*Block]int),
		preds:    f.Preds(),
	}
	if len(f.Blocks) == 0 {
		return t
	}
	// Reverse postorder via iterative DFS.
	seen := make(map[*Block]bool)
	var post []*Block
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{f.Entry(), 0}}
	seen[f.Entry()] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := fr.b.Succs()
		if fr.i < len(succs) {
			s := succs[fr.i]
			fr.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	t.RPO = make([]*Block, len(post))
	for i := range post {
		t.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range t.RPO {
		t.Order[b] = i
	}

	entry := f.Entry()
	t.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range t.RPO[1:] {
			var newIDom *Block
			for _, p := range t.preds[b] {
				if t.IDom[p] == nil {
					continue
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = t.intersect(p, newIDom)
				}
			}
			if newIDom != nil && t.IDom[b] != newIDom {
				t.IDom[b] = newIDom
				changed = true
			}
		}
	}
	delete(t.IDom, entry)
	t.IDom[entry] = nil
	for b, d := range t.IDom {
		if d != nil {
			t.Children[d] = append(t.Children[d], b)
		}
	}
	// Deterministic child order.
	for _, kids := range t.Children {
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && t.Order[kids[j]] < t.Order[kids[j-1]]; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.Order[a] > t.Order[b] {
			if t.IDom[a] == nil {
				return b
			}
			a = t.IDom[a]
		}
		for t.Order[b] > t.Order[a] {
			if t.IDom[b] == nil {
				return a
			}
			b = t.IDom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.IDom[b]
	}
	return false
}

// Frontiers computes the dominance frontier of every reachable block.
func (t *DomTree) Frontiers() map[*Block][]*Block {
	df := make(map[*Block][]*Block, len(t.RPO))
	for _, b := range t.RPO {
		preds := t.preds[b]
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if _, ok := t.Order[p]; !ok {
				continue // unreachable predecessor
			}
			runner := p
			for runner != nil && runner != t.IDom[b] {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				runner = t.IDom[runner]
			}
		}
	}
	return df
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header *Block
	// Blocks is the loop body including the header.
	Blocks map[*Block]bool
	// Latches are the blocks with a back edge to the header.
	Latches []*Block
}

// NaturalLoops finds the natural loops of f using the dominator tree:
// every edge latch→header where header dominates latch defines a loop.
// Loops sharing a header are merged.
func (t *DomTree) NaturalLoops() []*Loop {
	byHeader := make(map[*Block]*Loop)
	var order []*Block
	for _, b := range t.RPO {
		for _, s := range b.Succs() {
			if t.Dominates(s, b) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latches = append(l.Latches, b)
				// Walk backwards from the latch collecting the body.
				stack := []*Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					for _, p := range t.preds[x] {
						if _, ok := t.Order[p]; ok {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}
