package ir

import "fmt"

// Builder appends instructions to a current block, inferring result types.
// It is the construction API used by the front end and by the
// transformation passes when they synthesize new code.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewBuilder returns a builder positioned at block b.
func NewBuilder(b *Block) *Builder { return &Builder{Fn: b.Fn, Cur: b} }

// SetBlock repositions the builder at block b.
func (bd *Builder) SetBlock(b *Block) { bd.Cur = b }

func (bd *Builder) emit(in *Instr) *Instr { return bd.Cur.Append(in) }

// Binary emits a two-operand arithmetic/bitwise instruction. The result
// type is the type of the left operand.
func (bd *Builder) Binary(op Opcode, lhs, rhs Value) *Instr {
	return bd.emit(&Instr{Op: op, Ty: lhs.Type(), Args: []Value{lhs, rhs}})
}

// Add emits an integer add.
func (bd *Builder) Add(a, b Value) *Instr { return bd.Binary(OpAdd, a, b) }

// Sub emits an integer sub.
func (bd *Builder) Sub(a, b Value) *Instr { return bd.Binary(OpSub, a, b) }

// Mul emits an integer mul.
func (bd *Builder) Mul(a, b Value) *Instr { return bd.Binary(OpMul, a, b) }

// And emits a bitwise and.
func (bd *Builder) And(a, b Value) *Instr { return bd.Binary(OpAnd, a, b) }

// Or emits a bitwise or.
func (bd *Builder) Or(a, b Value) *Instr { return bd.Binary(OpOr, a, b) }

// Xor emits a bitwise xor.
func (bd *Builder) Xor(a, b Value) *Instr { return bd.Binary(OpXor, a, b) }

// FNeg emits a floating-point negation.
func (bd *Builder) FNeg(v Value) *Instr {
	return bd.emit(&Instr{Op: OpFNeg, Ty: v.Type(), Args: []Value{v}})
}

// ICmp emits an integer comparison producing an i1.
func (bd *Builder) ICmp(pred CmpPred, a, b Value) *Instr {
	return bd.emit(&Instr{Op: OpICmp, Ty: I1, Pred: pred, Args: []Value{a, b}})
}

// FCmp emits a floating-point comparison producing an i1.
func (bd *Builder) FCmp(pred CmpPred, a, b Value) *Instr {
	return bd.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: pred, Args: []Value{a, b}})
}

// Alloca emits a stack allocation of elem, producing an elem*.
func (bd *Builder) Alloca(elem *Type) *Instr {
	return bd.emit(&Instr{Op: OpAlloca, Ty: PtrTo(elem), AllocaTy: elem})
}

// Load emits a load through ptr.
func (bd *Builder) Load(ptr Value) *Instr {
	et := ptr.Type().Elem
	if et == nil {
		panic(fmt.Sprintf("ir: load from non-pointer %s", ptr.Type()))
	}
	return bd.emit(&Instr{Op: OpLoad, Ty: et, Args: []Value{ptr}})
}

// Store emits a store of val through ptr.
func (bd *Builder) Store(val, ptr Value) *Instr {
	return bd.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{val, ptr}})
}

// GEP emits an address computation. Semantics follow LLVM: the first index
// scales by the size of the pointee; each further index steps into an array
// element or (with a constant index) a struct field. The result type is a
// pointer to the indexed element.
func (bd *Builder) GEP(base Value, idxs ...Value) *Instr {
	ty := base.Type()
	if !ty.IsPtr() {
		panic(fmt.Sprintf("ir: gep on non-pointer %s", ty))
	}
	elem := ty.Elem
	for _, idx := range idxs[1:] {
		switch {
		case elem.IsArray():
			elem = elem.Elem
		case elem.IsStruct():
			c, ok := idx.(*Const)
			if !ok || c.I < 0 || int(c.I) >= len(elem.Fields) {
				panic(fmt.Sprintf("ir: gep struct index must be a constant in range, got %v into %s", idx, elem))
			}
			elem = elem.Fields[c.I]
		default:
			panic(fmt.Sprintf("ir: gep steps into non-aggregate %s", elem))
		}
	}
	args := append([]Value{base}, idxs...)
	return bd.emit(&Instr{Op: OpGEP, Ty: PtrTo(elem), Args: args})
}

// Cast emits a conversion of v to type to using opcode op.
func (bd *Builder) Cast(op Opcode, v Value, to *Type) *Instr {
	return bd.emit(&Instr{Op: op, Ty: to, Args: []Value{v}})
}

// Select emits cond ? a : b.
func (bd *Builder) Select(cond, a, b Value) *Instr {
	return bd.emit(&Instr{Op: OpSelect, Ty: a.Type(), Args: []Value{cond, a, b}})
}

// Phi emits an empty phi of type ty at the head of the current block;
// incoming edges are added with SetPhiIncoming.
func (bd *Builder) Phi(ty *Type) *Instr {
	in := &Instr{Op: OpPhi, Ty: ty}
	in.Parent = bd.Cur
	in.ID = bd.Fn.nextID()
	bd.Cur.InsertBefore(bd.Cur.FirstNonPhi(), in)
	return in
}

// Call emits a direct call to callee.
func (bd *Builder) Call(callee *Function, args ...Value) *Instr {
	return bd.emit(&Instr{Op: OpCall, Ty: callee.RetType(), Callee: callee, Args: args})
}

// CallBuiltin emits a call to a named runtime builtin with result type ret.
func (bd *Builder) CallBuiltin(name string, ret *Type, args ...Value) *Instr {
	return bd.emit(&Instr{Op: OpCall, Ty: ret, Builtin: name, Args: args})
}

// Br emits an unconditional branch to target.
func (bd *Builder) Br(target *Block) *Instr {
	return bd.emit(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{target}})
}

// CondBr emits a conditional branch on cond.
func (bd *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return bd.emit(&Instr{Op: OpCondBr, Ty: Void, Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Switch emits a switch on v with the given default and cases.
func (bd *Builder) Switch(v Value, def *Block, vals []int64, dests []*Block) *Instr {
	blocks := append([]*Block{def}, dests...)
	return bd.emit(&Instr{Op: OpSwitch, Ty: Void, Args: []Value{v}, Blocks: blocks, SwitchVals: vals})
}

// Ret emits a return; v may be nil for void functions.
func (bd *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bd.emit(in)
}

// Unreachable emits an unreachable terminator.
func (bd *Builder) Unreachable() *Instr {
	return bd.emit(&Instr{Op: OpUnreachable, Ty: Void})
}
