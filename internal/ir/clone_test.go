package ir_test

import (
	"math/rand"
	"testing"

	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

// cloneSample stresses every construct Clone must remap: globals with
// initializers, calls (direct and recursive), switches, floats, pointers,
// arrays, structs and phi-producing control flow once optimized.
const cloneSample = `
int g_counter;
double scale(double x) { return x * 2.5; }
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int pick(int k) {
	switch (k % 4) {
	case 0: return 1;
	case 1: return fib(k % 10);
	case 2: return k * 3;
	default: return -k;
	}
}
int main() {
	int a[8];
	int s = 0;
	for (int i = 0; i < 8; i++) a[i] = pick(i);
	for (int i = 0; i < 8; i++) {
		if (a[i] % 2 == 0) s += a[i];
		else s -= a[i];
	}
	g_counter = s;
	double d = scale(s);
	return s + (int)d;
}`

// TestCloneRoundTrip guards the clone-before-mutate invariant the progcache
// relies on: a clone must print byte-identically to its master, and
// mutating the clone (passes, obfuscations) must leave the master's printed
// form untouched.
func TestCloneRoundTrip(t *testing.T) {
	master, err := minic.CompileSource(cloneSample, "clone")
	if err != nil {
		t.Fatal(err)
	}
	before := master.String()

	clone := master.Clone()
	if got := clone.String(); got != before {
		t.Fatalf("clone prints differently from master:\n--- master ---\n%s\n--- clone ---\n%s", before, got)
	}
	if err := clone.Verify(); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}

	// Hammer the clone with every mutating consumer the cache serves.
	if err := passes.Optimize(clone, passes.O3); err != nil {
		t.Fatal(err)
	}
	if err := obfus.Apply(clone, "ollvm", rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if got := master.String(); got != before {
		t.Fatalf("mutating the clone changed the master:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}

	// A second clone of the untouched master must still match it.
	if got := master.Clone().String(); got != before {
		t.Fatal("re-clone after mutation of a sibling clone diverged from the master")
	}
}

// TestCloneIsReparseable checks the clone against the parser as well: the
// printed clone must parse cleanly, and after the parser's normalization
// (module renaming, ID renumbering) master and clone must still agree.
func TestCloneIsReparseable(t *testing.T) {
	master, err := minic.CompileSource(cloneSample, "clone")
	if err != nil {
		t.Fatal(err)
	}
	mNorm := roundTrip(t, master).String()
	cNorm := roundTrip(t, master.Clone()).String()
	if mNorm != cNorm {
		t.Fatalf("normalized clone diverged from normalized master:\n--- master ---\n%s\n--- clone ---\n%s", mNorm, cNorm)
	}
}
