package ir_test

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

// cloneSample stresses every construct Clone must remap: globals with
// initializers, calls (direct and recursive), switches, floats, pointers,
// arrays, structs and phi-producing control flow once optimized.
const cloneSample = `
int g_counter;
double scale(double x) { return x * 2.5; }
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int pick(int k) {
	switch (k % 4) {
	case 0: return 1;
	case 1: return fib(k % 10);
	case 2: return k * 3;
	default: return -k;
	}
}
int main() {
	int a[8];
	int s = 0;
	for (int i = 0; i < 8; i++) a[i] = pick(i);
	for (int i = 0; i < 8; i++) {
		if (a[i] % 2 == 0) s += a[i];
		else s -= a[i];
	}
	g_counter = s;
	double d = scale(s);
	return s + (int)d;
}`

// TestCloneRoundTrip guards the clone-before-mutate invariant the progcache
// relies on: a clone must print byte-identically to its master, and
// mutating the clone (passes, obfuscations) must leave the master's printed
// form untouched.
func TestCloneRoundTrip(t *testing.T) {
	master, err := minic.CompileSource(cloneSample, "clone")
	if err != nil {
		t.Fatal(err)
	}
	before := master.String()

	clone := master.Clone()
	if got := clone.String(); got != before {
		t.Fatalf("clone prints differently from master:\n--- master ---\n%s\n--- clone ---\n%s", before, got)
	}
	if err := clone.Verify(); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}

	// Hammer the clone with every mutating consumer the cache serves.
	if err := passes.Optimize(clone, passes.O3); err != nil {
		t.Fatal(err)
	}
	if err := obfus.Apply(clone, "ollvm", rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if got := master.String(); got != before {
		t.Fatalf("mutating the clone changed the master:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}

	// A second clone of the untouched master must still match it.
	if got := master.Clone().String(); got != before {
		t.Fatal("re-clone after mutation of a sibling clone diverged from the master")
	}
}

// TestCloneIsReparseable checks the clone against the parser as well: the
// printed clone must parse cleanly, and after the parser's normalization
// (module renaming, ID renumbering) master and clone must still agree.
func TestCloneIsReparseable(t *testing.T) {
	master, err := minic.CompileSource(cloneSample, "clone")
	if err != nil {
		t.Fatal(err)
	}
	mNorm := roundTrip(t, master).String()
	cNorm := roundTrip(t, master.Clone()).String()
	if mNorm != cNorm {
		t.Fatalf("normalized clone diverged from normalized master:\n--- master ---\n%s\n--- clone ---\n%s", mNorm, cNorm)
	}
}

// TestCloneAndThawOutOfContract holds Clone and Thaw to the same fidelity
// bar on the out-of-contract shapes flat.go models explicitly: detached
// instruction operands, foreign parameters, foreign call targets and
// unknown globals. Both copies must print byte-identically to the master
// and re-flatten to byte-identical tables (the VM relies on the preserved
// refs for its trap messages).
func TestCloneAndThawOutOfContract(t *testing.T) {
	detached := &ir.Instr{Op: ir.OpAdd, Ty: ir.I64, ID: 42}
	ghostParam := &ir.Param{Name: "ghost", Ty: ir.I64, Index: 3}
	foreign := ir.NewFunction("ext", ir.I64, []string{"x"}, []*ir.Type{ir.I64})
	unknown := &ir.Global{Name: "mystery", Elem: ir.I64}

	cases := []struct {
		name  string
		build func(b *ir.Block) *ir.Instr
	}{
		{"detached-instr", func(b *ir.Block) *ir.Instr {
			return b.Append(&ir.Instr{Op: ir.OpAdd, Ty: ir.I64, Args: []ir.Value{detached, detached}})
		}},
		{"foreign-param", func(b *ir.Block) *ir.Instr {
			return b.Append(&ir.Instr{Op: ir.OpSub, Ty: ir.I64, Args: []ir.Value{ghostParam, ghostParam}})
		}},
		{"foreign-callee", func(b *ir.Block) *ir.Instr {
			return b.Append(&ir.Instr{Op: ir.OpCall, Ty: ir.I64, Callee: foreign,
				Args: []ir.Value{ir.ConstInt(ir.I64, 1)}})
		}},
		{"unknown-global", func(b *ir.Block) *ir.Instr {
			return b.Append(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Args: []ir.Value{unknown}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.NewModule("weird")
			f := ir.NewFunction("main", ir.I64, nil, nil)
			m.Add(f)
			b := f.NewBlock("entry")
			in := tc.build(b)
			b.Append(&ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{in}})
			want := m.String()

			cl := m.Clone()
			if got := cl.String(); got != want {
				t.Fatalf("clone print diverged:\n--- master ---\n%s\n--- clone ---\n%s", want, got)
			}
			fl := ir.Flatten(m)
			th := ir.Thaw(fl)
			if got := th.String(); got != want {
				t.Fatalf("thaw print diverged:\n--- master ---\n%s\n--- thaw ---\n%s", want, got)
			}
			if d := ir.FlatDiff(fl, ir.Flatten(cl)); d != "" {
				t.Fatalf("clone re-flatten diverged: %s", d)
			}
			if d := ir.FlatDiff(fl, ir.Flatten(th)); d != "" {
				t.Fatalf("thaw re-flatten diverged: %s", d)
			}
		})
	}

	// The shared-or-synthesized split: Clone shares the out-of-contract
	// objects verbatim; Thaw shares only what the flat view retains a
	// pointer to (foreign callees, unknown globals) and synthesizes
	// ref-faithful stand-ins for the rest.
	m := ir.NewModule("weird")
	f := ir.NewFunction("main", ir.I64, nil, nil)
	m.Add(f)
	b := f.NewBlock("entry")
	call := b.Append(&ir.Instr{Op: ir.OpCall, Ty: ir.I64, Callee: foreign,
		Args: []ir.Value{detached, ghostParam, unknown}})
	b.Append(&ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{call}})

	clIn := m.Clone().Func("main").Entry().Instrs[0]
	if clIn.Args[0] != ir.Value(detached) || clIn.Args[1] != ir.Value(ghostParam) ||
		clIn.Args[2] != ir.Value(unknown) || clIn.Callee != foreign {
		t.Fatal("clone must share detached/foreign operands with the master")
	}
	thIn := ir.Thaw(ir.Flatten(m)).Func("main").Entry().Instrs[0]
	if thIn.Callee != foreign || thIn.Args[2] != ir.Value(unknown) {
		t.Fatal("thaw must share foreign callees and unknown globals")
	}
	if thIn.Args[0] == ir.Value(detached) || thIn.Args[1] == ir.Value(ghostParam) {
		t.Fatal("thaw must synthesize detached-instr and foreign-param stand-ins")
	}
	if thIn.Args[0].Ref() != detached.Ref() || thIn.Args[1].Ref() != ghostParam.Ref() {
		t.Fatalf("thaw stand-ins must keep the master refs: got %s, %s",
			thIn.Args[0].Ref(), thIn.Args[1].Ref())
	}
}
