package ir_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

// roundTrip prints m and parses it back, failing on error.
func roundTrip(t *testing.T, m *ir.Module) *ir.Module {
	t.Helper()
	text := m.String()
	parsed, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	return parsed
}

func TestParseHandwritten(t *testing.T) {
	text := `
; module hand
@g = global i64 5
@tab = constant [3 x i64] [10, 20, 30]
define i64 @main() {
entry:
  %t1 = load i64, i64* @g
  %t2 = getelementptr [3 x i64]* @tab, i64 0, i64 1
  %t3 = load i64, i64* %t2
  %t4 = add i64 %t1, %t3
  %t5 = icmp sgt i64 %t4, 20
  br i1 %t5, label %big, label %small
big:
  ret i64 %t4
small:
  %t6 = sub i64 0, %t4
  ret i64 %t6
}
`
	m, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 25 {
		t.Fatalf("ret = %d, want 25", res.Ret)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"define i64 @f() {\nentry:\n  frobnicate i64 1, 2\n}",            // unknown op
		"define i64 @f() {\nentry:\n  br label %nowhere\n}",              // unknown label
		"define i64 @f() {\nentry:\n  ret i64 %undefined\n}",             // unknown value
		"define i64 @f() {\nentry:\n  ret i64 1",                         // unterminated
		"define qux @f() {\nentry:\n  ret i64 1\n}",                      // bad type
		"define i64 @f() {\nentry:\n  %t1 = add i64 1\n  ret i64 %t1\n}", // missing operand
	}
	for _, text := range bad {
		if _, err := ir.ParseModule(text); err == nil {
			t.Errorf("no error for:\n%s", text)
		}
	}
}

// TestPrintParseRoundTripPrograms round-trips real compiled programs,
// including optimized and obfuscated forms, checking behaviour equality.
func TestPrintParseRoundTripPrograms(t *testing.T) {
	sources := []string{
		`int main() { int s = 0; for (int i = 0; i < 20; i++) s += i * 3; return s; }`,
		`int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
		 int main() { return fib(12); }`,
		`int g[4] = {9, 8, 7, 6};
		 float h = 2.5;
		 int main() {
			int acc = (int)(h * 4.0);
			for (int i = 0; i < 4; i++) acc += g[i];
			switch (acc % 3) {
			case 0: return acc;
			case 1: return acc + 1;
			default: return acc - 1;
			}
		 }`,
		`int main() {
			char s[8];
			s[0] = 'h'; s[1] = 'i'; s[2] = 0;
			int n = 0;
			while (s[n]) n++;
			prints("ok");
			return n;
		 }`,
	}
	variants := []struct {
		name  string
		apply func(m *ir.Module) error
	}{
		{"O0", func(m *ir.Module) error { return nil }},
		{"O2", func(m *ir.Module) error { return passes.Optimize(m, passes.O2) }},
		{"fla", func(m *ir.Module) error { return obfus.Apply(m, "fla", rand.New(rand.NewSource(5))) }},
		{"bcf", func(m *ir.Module) error { return obfus.Apply(m, "bcf", rand.New(rand.NewSource(5))) }},
	}
	for si, src := range sources {
		for _, v := range variants {
			m, err := minic.CompileSource(src, "rt")
			if err != nil {
				t.Fatal(err)
			}
			if err := v.apply(m); err != nil {
				t.Fatalf("source %d %s: %v", si, v.name, err)
			}
			want, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Fatalf("source %d %s: run original: %v", si, v.name, err)
			}
			parsed := roundTrip(t, m)
			got, err := interp.Run(parsed, interp.Options{})
			if err != nil {
				t.Fatalf("source %d %s: run reparsed: %v", si, v.name, err)
			}
			if got.Ret != want.Ret || got.Output != want.Output {
				t.Fatalf("source %d %s: round trip changed behaviour: %d/%q vs %d/%q",
					si, v.name, want.Ret, want.Output, got.Ret, got.Output)
			}
		}
	}
}

// TestPrintParsePrintFixpoint: print(parse(print(m))) == print(m).
func TestPrintParsePrintFixpoint(t *testing.T) {
	src := `
	int helper(int a, int b) { return a * b + a - b; }
	int main() {
		int x = 3;
		int acc = 0;
		for (int i = 0; i < 5; i++) acc += helper(i, x);
		return acc;
	}`
	m, err := minic.CompileSource(src, "fix")
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m, passes.O1); err != nil {
		t.Fatal(err)
	}
	p1 := m.String()
	parsed, err := ir.ParseModule(p1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, p1)
	}
	p2 := parsed.String()
	// Value numbering differs (fresh IDs), so compare shape: same number
	// of lines, same opcodes per line position.
	l1 := strings.Split(p1, "\n")
	l2 := strings.Split(p2, "\n")
	if len(l1) != len(l2) {
		t.Fatalf("line counts differ: %d vs %d\n--- p1 ---\n%s\n--- p2 ---\n%s",
			len(l1), len(l2), p1, p2)
	}
	for i := range l1 {
		if opOf(l1[i]) != opOf(l2[i]) {
			t.Fatalf("line %d differs: %q vs %q", i, l1[i], l2[i])
		}
	}
}

// opOf extracts the mnemonic of a printed instruction line.
func opOf(line string) string {
	line = strings.TrimSpace(line)
	if idx := strings.Index(line, " = "); idx >= 0 {
		line = line[idx+3:]
	}
	if idx := strings.IndexByte(line, ' '); idx >= 0 {
		return line[:idx]
	}
	return line
}

func TestParseTypeForms(t *testing.T) {
	text := `
define void @f(i64* %p, [4 x [2 x i8]]* %m, double %d, i1 %b, i32 %w) {
entry:
  %t1 = getelementptr [4 x [2 x i8]]* %m, i64 0, i64 1, i64 1
  %t2 = load i8, i8* %t1
  %t3 = sext i8 %t2 to i64
  store i64 %t3, i64* %p
  %t4 = fptosi double %d to i64
  store i64 %t4, i64* %p
  ret void
}
`
	m, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := m.Func("f")
	if f == nil || len(f.Params) != 5 {
		t.Fatal("parameters not parsed")
	}
	if !f.Params[1].Ty.Equal(ir.PtrTo(ir.ArrayOf(ir.ArrayOf(ir.I8, 2), 4))) {
		t.Fatalf("nested array type parsed as %s", f.Params[1].Ty)
	}
}
