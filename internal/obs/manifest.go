package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/stats"
)

// ManifestSchema is bumped whenever the manifest layout changes
// incompatibly; `arena report` refuses to diff across schemas.
const ManifestSchema = 1

// HostInfo records the environment a run executed in. Accuracy numbers are
// deterministic per machine (kernel selection depends on the host CPU), so
// a manifest diff that disagrees should first be checked for a host diff.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SIMD reports whether the linalg AVX2+FMA kernels were active; set by
	// the caller (obs cannot import linalg, which publishes metrics here).
	SIMD bool `json:"simd"`
}

// Cell is one experiment cell of a run: a named configuration with its
// per-round metric values (usually accuracies) and their summary. Cells
// are the deterministic heart of a manifest — for a fixed seed and host
// they must be byte-identical run over run.
type Cell struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// Values holds the per-round measurements; it may be empty for cells
	// that only carry a pre-computed Summary (e.g. distance histograms).
	Values  []float64     `json:"values,omitempty"`
	F1      []float64     `json:"f1,omitempty"`
	Summary stats.Summary `json:"summary"`
	// Volatile marks a cell whose values legitimately vary run over run —
	// wall-clock measurements like retrain times. Volatile cells are shown
	// in diffs but excluded from the Canonical block and from the
	// MaxAbsDelta/Identical regression gates, so a `report -tol 0` golden
	// check can coexist with timing cells in one manifest.
	Volatile bool `json:"volatile,omitempty"`
}

// Manifest is the machine-readable record of one arena command: everything
// needed to audit, diff, or regenerate the run. The Start and WallNS
// fields plus Host and Metrics are volatile by nature; Canonical strips
// them for byte-stability checks.
type Manifest struct {
	Schema  int               `json:"schema"`
	Command string            `json:"command"`
	Config  map[string]string `json:"config"`
	Seed    int64             `json:"seed"`
	Host    HostInfo          `json:"host"`
	Start   string            `json:"start"`
	WallNS  int64             `json:"wall_ns"`
	Cells   []Cell            `json:"cells,omitempty"`
	// Metrics is the registry delta attributed to this run: phase timers,
	// progcache counters, linalg dispatch counters.
	Metrics Snapshot `json:"metrics"`
}

// NewManifest starts a manifest for the named command with its resolved
// flag configuration and master seed, stamping the current host and time.
func NewManifest(command string, config map[string]string, seed int64) *Manifest {
	return &Manifest{
		Schema:  ManifestSchema,
		Command: command,
		Config:  config,
		Seed:    seed,
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Start: time.Now().UTC().Format(time.RFC3339),
	}
}

// AddCell appends a cell whose summary is computed from values, and
// returns it for optional F1 decoration.
func (m *Manifest) AddCell(name, metric string, values []float64) *Cell {
	m.Cells = append(m.Cells, Cell{
		Name:    name,
		Metric:  metric,
		Values:  append([]float64(nil), values...),
		Summary: stats.Summarize(values),
	})
	return &m.Cells[len(m.Cells)-1]
}

// AddSummaryCell appends a cell that carries only a pre-computed summary
// (no raw per-round values).
func (m *Manifest) AddSummaryCell(name, metric string, sum stats.Summary) {
	m.Cells = append(m.Cells, Cell{Name: name, Metric: metric, Summary: sum})
}

// AddVolatileCell appends a cell for a measurement that is expected to
// differ between otherwise-identical runs (timings, throughput). It is
// reported but never gates a diff.
func (m *Manifest) AddVolatileCell(name, metric string, values []float64) *Cell {
	c := m.AddCell(name, metric, values)
	c.Volatile = true
	return c
}

// canonical is the deterministic subset of a manifest: for a fixed seed,
// dataset and host CPU it must not change run over run, whatever the
// worker counts or wall clock did.
type canonical struct {
	Schema  int    `json:"schema"`
	Command string `json:"command"`
	Seed    int64  `json:"seed"`
	Cells   []Cell `json:"cells,omitempty"`
}

// Canonical renders the deterministic accuracy block of the manifest as
// indented JSON — volatile cells are dropped. Two fixed-seed runs of the
// same command must produce byte-identical Canonical output; the golden
// test pins this.
func (m *Manifest) Canonical() ([]byte, error) {
	cells := make([]Cell, 0, len(m.Cells))
	for _, c := range m.Cells {
		if !c.Volatile {
			cells = append(cells, c)
		}
	}
	return json.MarshalIndent(canonical{
		Schema: m.Schema, Command: m.Command, Seed: m.Seed, Cells: cells,
	}, "", "  ")
}

// WriteFile finalizes the manifest (wall time since start is the caller's
// business via WallNS) and writes it as indented JSON, creating parent
// directories as needed.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: manifest dir: %w", err)
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// Load reads a manifest back and checks its schema.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest %s has schema %d, this binary speaks %d",
			path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
