package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden manifest")

// game0Canonical plays a tiny fixed-seed game 0 and returns the canonical
// accuracy block of its manifest, exactly as `arena game0 -out` records it.
func game0Canonical(t *testing.T, workers int) []byte {
	t.Helper()
	set, err := dataset.Generate(6, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// knn on a tiny set leaves imperfect, nontrivial float accuracies — a
	// stronger byte-stability probe than a saturated 1.0 column.
	cfg := core.GameConfig{
		Game:     0,
		Pipeline: core.Pipeline{Embedding: "histogram", Model: "knn"},
		Seed:     1,
	}
	results, _, err := core.RunRoundsN(set, cfg, 3, workers)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest("game0", map[string]string{"classes": "6", "per": "4"}, 1)
	accs := make([]float64, len(results))
	f1s := make([]float64, len(results))
	for i, r := range results {
		accs[i] = r.Accuracy
		f1s[i] = r.F1
	}
	m.AddCell("game0/histogram/knn", "accuracy", accs).F1 = f1s
	data, err := m.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGame0ManifestByteStable pins the reproducibility claim the manifest
// layer exists for: a fixed-seed game0 run yields a byte-identical
// canonical accuracy block regardless of worker count, and (on hosts with
// the SIMD kernels, where float summation order is pinned to the golden's)
// identical to the committed golden file.
func TestGame0ManifestByteStable(t *testing.T) {
	first := game0Canonical(t, 1)
	again := game0Canonical(t, 4)
	if string(first) != string(again) {
		t.Fatalf("fixed-seed manifests differ across runs/worker counts:\n%s\nvs\n%s", first, again)
	}

	golden := filepath.Join("testdata", "game0_canonical.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	if !linalg.SIMDEnabled() {
		// Accuracy bits are deterministic per kernel path; the golden file
		// was produced with the SIMD kernels active.
		t.Skip("golden file pins the SIMD kernel path; portable host")
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(want) {
		t.Fatalf("canonical manifest drifted from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", first, want)
	}
}
