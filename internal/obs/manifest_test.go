package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	m := NewManifest("game0", map[string]string{"classes": "4", "per": "8"}, 1)
	m.AddCell("game0/histogram/rf", "accuracy", []float64{0.9, 1.0, 0.95}).
		F1 = []float64{0.89, 1.0, 0.94}
	m.AddCell("game0/histogram/cnn", "accuracy", []float64{0.8, 0.85, 0.8})
	m.WallNS = 12345
	m.Metrics = Snapshot{
		Counters: map[string]int64{"progcache.hits": 42},
		Timers:   map[string]TimerStat{"phase.fit": {Count: 3, TotalNS: 9e6}},
	}
	return m
}

// TestManifestRoundTrip is the emit → load → diff-to-zero loop the
// acceptance criteria pin: a manifest diffed against its own file must be
// identical in every cell.
func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	path := filepath.Join(t.TempDir(), "runs", "game0.json") // exercises MkdirAll
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffManifests(m, loaded)
	if !d.Identical {
		t.Fatalf("round-tripped manifest differs: %+v", d)
	}
	if d.MaxAbsDelta != 0 {
		t.Fatalf("round-trip max delta = %v, want 0", d.MaxAbsDelta)
	}
	if len(d.Cells) != 2 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatalf("cell matching broken: %+v", d)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Cells[0].Values[1] = 0.7 // accuracy drop in one round
	b.Cells[0].Summary.Mean = 0.85
	d := DiffManifests(a, b)
	if d.Identical {
		t.Fatal("diff missed a changed accuracy value")
	}
	if d.Cells[0].Identical {
		t.Fatal("cell diff missed the changed round")
	}
	if d.MaxAbsDelta <= 0 {
		t.Fatalf("max delta = %v, want > 0", d.MaxAbsDelta)
	}
	var out strings.Builder
	d.WriteText(&out)
	if !strings.Contains(out.String(), "accuracy blocks: differ") {
		t.Fatalf("report text did not flag the difference:\n%s", out.String())
	}
}

func TestDiffDetectsMissingCells(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Cells = b.Cells[:1]
	b.AddCell("game0/histogram/svm", "accuracy", []float64{0.5})
	d := DiffManifests(a, b)
	if d.Identical {
		t.Fatal("diff missed mismatched cell sets")
	}
	if len(d.OnlyA) != 1 || d.OnlyA[0] != "game0/histogram/cnn" {
		t.Fatalf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != "game0/histogram/svm" {
		t.Fatalf("OnlyB = %v", d.OnlyB)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	m := testManifest()
	m.Schema = ManifestSchema + 1
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a manifest from a different schema")
	}
}

// Canonical must strip every volatile field (host, times, metrics) and be
// insensitive to when or where the run happened.
func TestCanonicalStripsVolatileFields(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Start = "1999-01-01T00:00:00Z"
	b.WallNS = 999999
	b.Host.GOMAXPROCS = 128
	b.Metrics = Snapshot{}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical blocks differ on volatile-only changes:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "gomaxprocs") || strings.Contains(string(ca), "wall_ns") {
		t.Fatalf("canonical block leaks volatile fields:\n%s", ca)
	}
}

// TestVolatileCellsDoNotGate: timing cells may differ arbitrarily between
// two runs without breaking a tol-0 diff or the Canonical block; real cell
// regressions still gate.
func TestVolatileCellsDoNotGate(t *testing.T) {
	mk := func(ms float64) *Manifest {
		m := testManifest()
		m.AddVolatileCell("coevo/gen000/retrain_ms", "ms", []float64{ms})
		return m
	}
	a, b := mk(12.5), mk(980.0)
	d := DiffManifests(a, b)
	if !d.Identical || d.MaxAbsDelta != 0 {
		t.Fatalf("volatile delta gated the diff: identical=%v max=%v", d.Identical, d.MaxAbsDelta)
	}
	var vd *CellDiff
	for i := range d.Cells {
		if d.Cells[i].Name == "coevo/gen000/retrain_ms" {
			vd = &d.Cells[i]
		}
	}
	if vd == nil || !vd.Volatile {
		t.Fatal("volatile cell missing from the diff report")
	}
	// Canonical strips it, so fixed-seed runs stay byte-identical.
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatal("volatile cell leaked into the Canonical block")
	}
	if strings.Contains(string(ca), "retrain_ms") {
		t.Fatal("Canonical still names the volatile cell")
	}
	// A volatile cell present on one side only is reported but not gating.
	c := testManifest()
	d = DiffManifests(a, c)
	if !d.Identical {
		t.Fatal("one-sided volatile cell broke Identical")
	}
	if len(d.OnlyA) != 1 {
		t.Fatalf("one-sided volatile cell not reported: %v", d.OnlyA)
	}
	// Non-volatile regressions still gate as before.
	reg := testManifest()
	reg.Cells[1].Summary.Mean += 0.5
	if d := DiffManifests(a, reg); d.Identical || d.MaxAbsDelta == 0 {
		t.Fatal("real regression slipped past the gate")
	}
}
