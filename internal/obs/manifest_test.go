package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	m := NewManifest("game0", map[string]string{"classes": "4", "per": "8"}, 1)
	m.AddCell("game0/histogram/rf", "accuracy", []float64{0.9, 1.0, 0.95}).
		F1 = []float64{0.89, 1.0, 0.94}
	m.AddCell("game0/histogram/cnn", "accuracy", []float64{0.8, 0.85, 0.8})
	m.WallNS = 12345
	m.Metrics = Snapshot{
		Counters: map[string]int64{"progcache.hits": 42},
		Timers:   map[string]TimerStat{"phase.fit": {Count: 3, TotalNS: 9e6}},
	}
	return m
}

// TestManifestRoundTrip is the emit → load → diff-to-zero loop the
// acceptance criteria pin: a manifest diffed against its own file must be
// identical in every cell.
func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	path := filepath.Join(t.TempDir(), "runs", "game0.json") // exercises MkdirAll
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d := DiffManifests(m, loaded)
	if !d.Identical {
		t.Fatalf("round-tripped manifest differs: %+v", d)
	}
	if d.MaxAbsDelta != 0 {
		t.Fatalf("round-trip max delta = %v, want 0", d.MaxAbsDelta)
	}
	if len(d.Cells) != 2 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatalf("cell matching broken: %+v", d)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Cells[0].Values[1] = 0.7 // accuracy drop in one round
	b.Cells[0].Summary.Mean = 0.85
	d := DiffManifests(a, b)
	if d.Identical {
		t.Fatal("diff missed a changed accuracy value")
	}
	if d.Cells[0].Identical {
		t.Fatal("cell diff missed the changed round")
	}
	if d.MaxAbsDelta <= 0 {
		t.Fatalf("max delta = %v, want > 0", d.MaxAbsDelta)
	}
	var out strings.Builder
	d.WriteText(&out)
	if !strings.Contains(out.String(), "accuracy blocks: differ") {
		t.Fatalf("report text did not flag the difference:\n%s", out.String())
	}
}

func TestDiffDetectsMissingCells(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Cells = b.Cells[:1]
	b.AddCell("game0/histogram/svm", "accuracy", []float64{0.5})
	d := DiffManifests(a, b)
	if d.Identical {
		t.Fatal("diff missed mismatched cell sets")
	}
	if len(d.OnlyA) != 1 || d.OnlyA[0] != "game0/histogram/cnn" {
		t.Fatalf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != "game0/histogram/svm" {
		t.Fatalf("OnlyB = %v", d.OnlyB)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	m := testManifest()
	m.Schema = ManifestSchema + 1
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a manifest from a different schema")
	}
}

// Canonical must strip every volatile field (host, times, metrics) and be
// insensitive to when or where the run happened.
func TestCanonicalStripsVolatileFields(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.Start = "1999-01-01T00:00:00Z"
	b.WallNS = 999999
	b.Host.GOMAXPROCS = 128
	b.Metrics = Snapshot{}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical blocks differ on volatile-only changes:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "gomaxprocs") || strings.Contains(string(ca), "wall_ns") {
		t.Fatalf("canonical block leaks volatile fields:\n%s", ca)
	}
}
