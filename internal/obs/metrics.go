// Package obs is the harness's observability layer: a process-wide
// registry of atomic counters, gauges and span timers; JSON run manifests
// that record everything needed to regenerate a results/ number
// bit-for-bit (resolved config, seed, host, per-cell accuracies, per-phase
// timings, cache and kernel-dispatch counters); a manifest differ backing
// the `arena report` regression check; and an expvar + pprof debug server
// for watching long runs live. The package is standard-library only and
// sits below every other internal package, so any layer — the compile
// cache, the linalg kernels, the game engine — can publish metrics
// without import cycles.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically growing atomic count (cache hits, kernel
// dispatches, rounds played). Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (cache entries, active workers).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// Timer accumulates span durations: total nanoseconds and span count.
// Observing is two atomic adds, cheap enough for per-sample phases.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one span of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Start begins a span and returns the function that ends it:
//
//	defer timer.Start()()
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observed spans.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the summed duration of all observed spans. Spans observed
// on concurrent goroutines all accumulate, so for a parallel phase this is
// CPU-style time, not wall clock.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// Reset zeroes the timer.
func (t *Timer) Reset() {
	t.count.Store(0)
	t.nanos.Store(0)
}

// Registry holds named metrics. Lookups take a mutex; hot packages resolve
// their metrics once at init and keep the pointers, so steady-state
// recording never touches the registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Default is the process-wide registry every harness layer publishes into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every registered metric without dropping registrations
// (outstanding pointers held by other packages stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, t := range r.timers {
		t.Reset()
	}
}

// TimerStat is the serializable state of one Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Total returns the stat's summed duration.
func (t TimerStat) Total() time.Duration { return time.Duration(t.TotalNS) }

// Snapshot is a point-in-time copy of a registry, or (via Sub) the delta
// between two captures. Zero-valued metrics are dropped so snapshots of a
// long-lived process stay small.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
}

// Capture copies the registry's current values.
func (r *Registry) Capture() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Timers:   make(map[string]TimerStat),
	}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			s.Gauges[name] = v
		}
	}
	for name, t := range r.timers {
		if n := t.Count(); n != 0 {
			s.Timers[name] = TimerStat{Count: n, TotalNS: int64(t.Total())}
		}
	}
	return s
}

// Sub returns the delta snapshot s - prev: what happened between the two
// captures. Gauges are instantaneous, so the later value wins.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Timers:   make(map[string]TimerStat),
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, t := range s.Timers {
		p := prev.Timers[name]
		if dc := t.Count - p.Count; dc != 0 {
			d.Timers[name] = TimerStat{Count: dc, TotalNS: t.TotalNS - p.TotalNS}
		}
	}
	return d
}

// Names returns every metric name in the snapshot, sorted, for stable
// rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Timers))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package-level accessors against the Default registry.

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetTimer returns the named timer from the default registry.
func GetTimer(name string) *Timer { return Default.Timer(name) }

// Capture snapshots the default registry.
func Capture() Snapshot { return Default.Capture() }

// Reset zeroes every metric in the default registry.
func Reset() { Default.Reset() }
