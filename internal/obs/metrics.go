// Package obs is the harness's observability layer: a process-wide
// registry of atomic counters, gauges and span timers; JSON run manifests
// that record everything needed to regenerate a results/ number
// bit-for-bit (resolved config, seed, host, per-cell accuracies, per-phase
// timings, cache and kernel-dispatch counters); a manifest differ backing
// the `arena report` regression check; and an expvar + pprof debug server
// for watching long runs live. The package is standard-library only and
// sits below every other internal package, so any layer — the compile
// cache, the linalg kernels, the game engine — can publish metrics
// without import cycles.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically growing atomic count (cache hits, kernel
// dispatches, rounds played). Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (cache entries, active workers).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// Timer accumulates span durations: total nanoseconds and span count.
// Observing is two atomic adds, cheap enough for per-sample phases.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one span of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Start begins a span and returns the function that ends it:
//
//	defer timer.Start()()
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observed spans.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the summed duration of all observed spans. Spans observed
// on concurrent goroutines all accumulate, so for a parallel phase this is
// CPU-style time, not wall clock.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// Reset zeroes the timer.
func (t *Timer) Reset() {
	t.count.Store(0)
	t.nanos.Store(0)
}

// HistNumBuckets is the fixed bucket count of every Histogram: bucket i
// counts spans in [1µs·2^(i-1), 1µs·2^i), bucket 0 everything under 1µs and
// the last bucket everything at or above ~1µs·2^(HistNumBuckets-2) (≈67s).
// Exponential bounds keep quantile error proportional, which is what
// latency reporting wants.
const HistNumBuckets = 28

// Histogram accumulates span durations into fixed exponential buckets so
// latency quantiles (p50/p90/p99) survive aggregation — unlike a Timer,
// which only keeps count and total. Observing is three atomic adds, cheap
// enough for per-request hot paths.
type Histogram struct {
	count   atomic.Int64
	nanos   atomic.Int64
	buckets [HistNumBuckets]atomic.Int64
}

// histBucketOf maps a duration to its bucket index.
func histBucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	// bits.Len semantics without the import: index of the highest set bit,
	// plus one; 0 for d < 1µs.
	i := 0
	for us > 0 {
		us >>= 1
		i++
	}
	if i >= HistNumBuckets {
		i = HistNumBuckets - 1
	}
	return i
}

// histBucketBound returns the upper duration bound of bucket i.
func histBucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// Observe records one span of duration d.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.nanos.Add(int64(d))
	h.buckets[histBucketOf(d)].Add(1)
}

// Count returns the number of observed spans.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Total returns the summed duration of all observed spans.
func (h *Histogram) Total() time.Duration { return time.Duration(h.nanos.Load()) }

// Quantile estimates the q-th latency quantile (q in [0, 1]) from the
// bucket counts; the estimate is exact up to the bucket resolution (a
// factor of two). Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.stat().Quantile(q)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.nanos.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

func (h *Histogram) stat() HistStat {
	s := HistStat{
		Count:   h.count.Load(),
		TotalNS: h.nanos.Load(),
		Buckets: make([]int64, HistNumBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistStat is the serializable state of one Histogram (or the delta of
// two). Buckets always has HistNumBuckets entries.
type HistStat struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	Buckets []int64 `json:"buckets"`
}

// Total returns the stat's summed duration.
func (s HistStat) Total() time.Duration { return time.Duration(s.TotalNS) }

// Mean returns the average observed duration.
func (s HistStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNS / s.Count)
}

// Quantile estimates the q-th quantile from the bucket counts, linearly
// interpolating within the winning bucket.
func (s HistStat) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = histBucketBound(i - 1)
			}
			hi := histBucketBound(i)
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return histBucketBound(len(s.Buckets) - 1)
}

// Registry holds named metrics. Lookups take a mutex; hot packages resolve
// their metrics once at init and keep the pointers, so steady-state
// recording never touches the registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every harness layer publishes into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric without dropping registrations
// (outstanding pointers held by other packages stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, t := range r.timers {
		t.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// TimerStat is the serializable state of one Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// Total returns the stat's summed duration.
func (t TimerStat) Total() time.Duration { return time.Duration(t.TotalNS) }

// Snapshot is a point-in-time copy of a registry, or (via Sub) the delta
// between two captures. Zero-valued metrics are dropped so snapshots of a
// long-lived process stay small.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Timers     map[string]TimerStat `json:"timers,omitempty"`
	Histograms map[string]HistStat  `json:"histograms,omitempty"`
}

// Capture copies the registry's current values.
func (r *Registry) Capture() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Timers:     make(map[string]TimerStat),
		Histograms: make(map[string]HistStat),
	}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			s.Gauges[name] = v
		}
	}
	for name, t := range r.timers {
		if n := t.Count(); n != 0 {
			s.Timers[name] = TimerStat{Count: n, TotalNS: int64(t.Total())}
		}
	}
	for name, h := range r.histograms {
		if h.Count() != 0 {
			s.Histograms[name] = h.stat()
		}
	}
	return s
}

// Sub returns the delta snapshot s - prev: what happened between the two
// captures. Gauges are instantaneous, so the later value wins.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Timers:     make(map[string]TimerStat),
		Histograms: make(map[string]HistStat),
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, t := range s.Timers {
		p := prev.Timers[name]
		if dc := t.Count - p.Count; dc != 0 {
			d.Timers[name] = TimerStat{Count: dc, TotalNS: t.TotalNS - p.TotalNS}
		}
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		if dc := h.Count - p.Count; dc != 0 {
			dh := HistStat{
				Count:   dc,
				TotalNS: h.TotalNS - p.TotalNS,
				Buckets: make([]int64, len(h.Buckets)),
			}
			for i := range h.Buckets {
				dh.Buckets[i] = h.Buckets[i]
				if i < len(p.Buckets) {
					dh.Buckets[i] -= p.Buckets[i]
				}
			}
			d.Histograms[name] = dh
		}
	}
	return d
}

// Names returns every metric name in the snapshot, sorted, for stable
// rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Timers)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Timers {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package-level accessors against the Default registry.

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetTimer returns the named timer from the default registry.
func GetTimer(name string) *Timer { return Default.Timer(name) }

// GetHistogram returns the named histogram from the default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Capture snapshots the default registry.
func Capture() Snapshot { return Default.Capture() }

// Reset zeroes every metric in the default registry.
func Reset() { Default.Reset() }
