package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines — the
// make race target runs this under the race detector; it is the guard for
// every harness layer that publishes metrics from worker pools.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(g))
				r.Timer("t").Observe(time.Microsecond)
				if i%10 == 0 {
					_ = r.Capture()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("t").Count(); got != goroutines*perG {
		t.Fatalf("timer count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("t").Total(); got != goroutines*perG*time.Microsecond {
		t.Fatalf("timer total = %v", got)
	}
}

func TestRegistryGetReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("two lookups of one counter name returned different metrics")
	}
	if r.Timer("x") != r.Timer("x") {
		t.Fatal("two lookups of one timer name returned different metrics")
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(10)
	r.Timer("phase").Observe(3 * time.Second)
	before := r.Capture()
	r.Counter("hits").Add(5)
	r.Counter("fresh").Add(2)
	r.Timer("phase").Observe(time.Second)
	r.Gauge("depth").Set(7)
	d := r.Capture().Sub(before)
	if d.Counters["hits"] != 5 || d.Counters["fresh"] != 2 {
		t.Fatalf("counter deltas = %+v", d.Counters)
	}
	if d.Timers["phase"].Count != 1 || d.Timers["phase"].Total() != time.Second {
		t.Fatalf("timer delta = %+v", d.Timers["phase"])
	}
	if d.Gauges["depth"] != 7 {
		t.Fatalf("gauge delta = %+v", d.Gauges)
	}
	// Unchanged metrics drop out of the delta entirely.
	r2 := r.Capture()
	empty := r2.Sub(r2)
	if len(empty.Counters) != 0 || len(empty.Timers) != 0 {
		t.Fatalf("self-delta should be empty, got %+v", empty)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(4)
	tm := r.Timer("t")
	tm.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Fatal("Reset left metric state behind")
	}
	// The registration survives: the same pointer keeps recording.
	c.Inc()
	if r.Counter("n").Value() != 1 {
		t.Fatal("pointer held across Reset stopped recording")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast spans around 1ms, 10 slow around 512ms: p50 must land in the
	// fast band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(512 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < 500*time.Microsecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 256*time.Millisecond || p99 > 2*time.Second {
		t.Fatalf("p99 = %v, want ~512ms", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(time.Millisecond)
	before := r.Capture()
	h.Observe(8 * time.Millisecond)
	h.Observe(8 * time.Millisecond)
	d := r.Capture().Sub(before)
	hs, ok := d.Histograms["lat"]
	if !ok {
		t.Fatal("histogram missing from delta snapshot")
	}
	if hs.Count != 2 {
		t.Fatalf("delta count = %d, want 2", hs.Count)
	}
	if hs.Total() != 16*time.Millisecond {
		t.Fatalf("delta total = %v, want 16ms", hs.Total())
	}
	// The delta's quantile must see only the two 8ms spans.
	if q := hs.Quantile(0.5); q < 4*time.Millisecond || q > 16*time.Millisecond {
		t.Fatalf("delta p50 = %v, want ~8ms", q)
	}
	found := false
	for _, n := range d.Names() {
		if n == "lat" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() does not include the histogram")
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not zero the histogram")
	}
}
