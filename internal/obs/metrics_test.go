package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines — the
// make race target runs this under the race detector; it is the guard for
// every harness layer that publishes metrics from worker pools.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(g))
				r.Timer("t").Observe(time.Microsecond)
				if i%10 == 0 {
					_ = r.Capture()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("t").Count(); got != goroutines*perG {
		t.Fatalf("timer count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("t").Total(); got != goroutines*perG*time.Microsecond {
		t.Fatalf("timer total = %v", got)
	}
}

func TestRegistryGetReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("two lookups of one counter name returned different metrics")
	}
	if r.Timer("x") != r.Timer("x") {
		t.Fatal("two lookups of one timer name returned different metrics")
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(10)
	r.Timer("phase").Observe(3 * time.Second)
	before := r.Capture()
	r.Counter("hits").Add(5)
	r.Counter("fresh").Add(2)
	r.Timer("phase").Observe(time.Second)
	r.Gauge("depth").Set(7)
	d := r.Capture().Sub(before)
	if d.Counters["hits"] != 5 || d.Counters["fresh"] != 2 {
		t.Fatalf("counter deltas = %+v", d.Counters)
	}
	if d.Timers["phase"].Count != 1 || d.Timers["phase"].Total() != time.Second {
		t.Fatalf("timer delta = %+v", d.Timers["phase"])
	}
	if d.Gauges["depth"] != 7 {
		t.Fatalf("gauge delta = %+v", d.Gauges)
	}
	// Unchanged metrics drop out of the delta entirely.
	r2 := r.Capture()
	empty := r2.Sub(r2)
	if len(empty.Counters) != 0 || len(empty.Timers) != 0 {
		t.Fatalf("self-delta should be empty, got %+v", empty)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	c.Add(4)
	tm := r.Timer("t")
	tm.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Fatal("Reset left metric state behind")
	}
	// The registration survives: the same pointer keeps recording.
	c.Inc()
	if r.Counter("n").Value() != 1 {
		t.Fatal("pointer held across Reset stopped recording")
	}
}
