package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"
)

// CellDiff compares one experiment cell across two manifests.
type CellDiff struct {
	Name         string
	MeanA, MeanB float64
	Delta        float64
	// Identical reports that the raw per-round values (and F1s) match
	// exactly, not just the means.
	Identical bool
	// Volatile marks a cell that is informational only (timings): its delta
	// is shown but excluded from the diff's regression gates.
	Volatile bool
}

// Diff is the comparison of two manifests: the regression check behind
// `arena report`.
type Diff struct {
	A, B  *Manifest
	Cells []CellDiff
	// OnlyA and OnlyB list cell names present in just one manifest.
	OnlyA, OnlyB []string
	// ConfigDiffs lists flag keys whose resolved values differ, rendered
	// "key: a -> b".
	ConfigDiffs []string
	// MaxAbsDelta is the largest |mean delta| across matched cells.
	MaxAbsDelta float64
	// Identical reports that both manifests matched on every cell's raw
	// values with none missing.
	Identical bool
}

// DiffManifests compares b against a (a is the baseline). Cells are
// matched by name, in a's order.
func DiffManifests(a, b *Manifest) *Diff {
	d := &Diff{A: a, B: b, Identical: true}
	bCells := make(map[string]*Cell, len(b.Cells))
	for i := range b.Cells {
		bCells[b.Cells[i].Name] = &b.Cells[i]
	}
	seen := make(map[string]bool, len(a.Cells))
	for i := range a.Cells {
		ca := &a.Cells[i]
		seen[ca.Name] = true
		cb, ok := bCells[ca.Name]
		if !ok {
			d.OnlyA = append(d.OnlyA, ca.Name)
			if !ca.Volatile {
				d.Identical = false
			}
			continue
		}
		cd := CellDiff{
			Name:     ca.Name,
			MeanA:    ca.Summary.Mean,
			MeanB:    cb.Summary.Mean,
			Delta:    cb.Summary.Mean - ca.Summary.Mean,
			Volatile: ca.Volatile || cb.Volatile,
			Identical: floatsEqual(ca.Values, cb.Values) &&
				floatsEqual(ca.F1, cb.F1) && ca.Summary == cb.Summary,
		}
		// Volatile cells (timings) are reported but never gate: they neither
		// break Identical nor feed MaxAbsDelta.
		if !cd.Volatile {
			if !cd.Identical {
				d.Identical = false
			}
			if abs := math.Abs(cd.Delta); abs > d.MaxAbsDelta {
				d.MaxAbsDelta = abs
			}
		}
		d.Cells = append(d.Cells, cd)
	}
	for i := range b.Cells {
		if !seen[b.Cells[i].Name] {
			d.OnlyB = append(d.OnlyB, b.Cells[i].Name)
			if !b.Cells[i].Volatile {
				d.Identical = false
			}
		}
	}
	for _, k := range sortedKeys(a.Config, b.Config) {
		if a.Config[k] != b.Config[k] {
			d.ConfigDiffs = append(d.ConfigDiffs,
				fmt.Sprintf("%s: %q -> %q", k, a.Config[k], b.Config[k]))
		}
	}
	return d
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(ms ...map[string]string) []string {
	set := make(map[string]bool)
	for _, m := range ms {
		for k := range m {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the diff as the human-readable report the arena
// prints: per-cell accuracy deltas, then timing and counter deltas.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "baseline: %s %s (seed %d)\n", d.A.Command, d.A.Start, d.A.Seed)
	fmt.Fprintf(w, "candidate: %s %s (seed %d)\n", d.B.Command, d.B.Start, d.B.Seed)
	if len(d.ConfigDiffs) > 0 {
		fmt.Fprintln(w, "config differences:")
		for _, c := range d.ConfigDiffs {
			fmt.Fprintf(w, "  %s\n", c)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cell\tmean A\tmean B\tdelta\tidentical\n")
	for _, c := range d.Cells {
		id := fmt.Sprintf("%v", c.Identical)
		if c.Volatile {
			id = "volatile"
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.4f\t%s\n", c.Name, c.MeanA, c.MeanB, c.Delta, id)
	}
	tw.Flush()
	for _, n := range d.OnlyA {
		fmt.Fprintf(w, "cell only in baseline: %s\n", n)
	}
	for _, n := range d.OnlyB {
		fmt.Fprintf(w, "cell only in candidate: %s\n", n)
	}
	d.writeMetricDeltas(w)
	if d.Identical {
		fmt.Fprintln(w, "accuracy blocks: identical")
	} else {
		fmt.Fprintf(w, "accuracy blocks: differ (max |mean delta| %.4f)\n", d.MaxAbsDelta)
	}
}

func (d *Diff) writeMetricDeltas(w io.Writer) {
	names := make(map[string]bool)
	for n := range d.A.Metrics.Timers {
		names[n] = true
	}
	for n := range d.B.Metrics.Timers {
		names[n] = true
	}
	if len(names) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "timer\ttotal A\ttotal B\tdelta\n")
		for _, n := range sortedSet(names) {
			ta, tb := d.A.Metrics.Timers[n].Total(), d.B.Metrics.Timers[n].Total()
			fmt.Fprintf(tw, "%s\t%v\t%v\t%+v\n", n,
				ta.Round(time.Millisecond), tb.Round(time.Millisecond),
				(tb - ta).Round(time.Millisecond))
		}
		tw.Flush()
	}
	names = make(map[string]bool)
	for n := range d.A.Metrics.Counters {
		names[n] = true
	}
	for n := range d.B.Metrics.Counters {
		names[n] = true
	}
	if len(names) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "counter\tA\tB\tdelta\n")
		for _, n := range sortedSet(names) {
			ca, cb := d.A.Metrics.Counters[n], d.B.Metrics.Counters[n]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%+d\n", n, ca, cb, cb-ca)
		}
		tw.Flush()
	}
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
