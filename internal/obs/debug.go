package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// StartDebug serves expvar (/debug/vars, including the live default
// metrics registry under "arena") and pprof (/debug/pprof/) on addr, for
// watching and profiling long `all`/`scale` runs without stopping them.
// It returns the bound address (useful with ":0") and never blocks; the
// server lives until the process exits.
func StartDebug(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("arena", expvar.Func(func() any { return Capture() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}
