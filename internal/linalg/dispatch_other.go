//go:build !amd64

package linalg

// simd is false off amd64: every kernel runs its portable Go path. The
// stubs below are never reached; they satisfy the shared call sites, which
// the compiler eliminates behind the constant.
const simd = false

func dotv(a, b, out *float64, n int)             { panic("linalg: no simd") }
func dot4(a, b0, b1, b2, b3, out *float64, n int) { panic("linalg: no simd") }
func saxpy4(ci, b0, b1, b2, b3, coef *float64, n int) {
	panic("linalg: no simd")
}
func axpyv(y, x *float64, alpha float64, n int) { panic("linalg: no simd") }
func addv(dst, src *float64, n int)             { panic("linalg: no simd") }
