//go:build !amd64

package linalg

import "unsafe"

// simd is false off amd64: every public entry point guards on this
// constant, so the compiler strips the SIMD drivers and the micro-kernel
// stubs below from non-amd64 builds. The stubs are nevertheless real
// portable implementations (delegating to the scalar kernels, which run
// their portable path because simd is constant-false): if a future
// dispatch change ever routes here, the build degrades to slow-but-correct
// instead of panicking mid-run. make check cross-compiles GOARCH=arm64 and
// GOARCH=386 to keep this file honest.
const simd = false

func dotv(a, b, out *float64, n int) {
	*out = Dot(unsafe.Slice(a, n), unsafe.Slice(b, n))
}

func dot4(a, b0, b1, b2, b3, out *float64, n int) {
	av := unsafe.Slice(a, n)
	o := unsafe.Slice(out, 4)
	o[0] = Dot(av, unsafe.Slice(b0, n))
	o[1] = Dot(av, unsafe.Slice(b1, n))
	o[2] = Dot(av, unsafe.Slice(b2, n))
	o[3] = Dot(av, unsafe.Slice(b3, n))
}

func saxpy4(ci, b0, b1, b2, b3, coef *float64, n int) {
	c := unsafe.Slice(coef, 4)
	dst := unsafe.Slice(ci, n)
	v0, v1 := unsafe.Slice(b0, n), unsafe.Slice(b1, n)
	v2, v3 := unsafe.Slice(b2, n), unsafe.Slice(b3, n)
	for j := 0; j < n; j++ {
		dst[j] += (c[0]*v0[j] + c[1]*v1[j]) + (c[2]*v2[j] + c[3]*v3[j])
	}
}

func axpyv(y, x *float64, alpha float64, n int) {
	Axpy(alpha, unsafe.Slice(x, n), unsafe.Slice(y, n))
}

func addv(dst, src *float64, n int) {
	Add(unsafe.Slice(dst, n), unsafe.Slice(src, n))
}
