package linalg_test

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// naiveGemmNT is the unblocked triple loop the blocked kernel replaces.
func naiveGemmNT(C, A, B []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += A[i*k+l] * B[j*k+l]
			}
			C[i*n+j] += s
		}
	}
}

// The benchmark shape matches the MLP hidden layer over one minibatch:
// 32 samples × 63 features against 100 hidden units.
const bm, bn, bk = 32, 100, 63

func benchMats(b *testing.B) (C, A, B2 []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	A = make([]float64, bm*bk)
	B2 = make([]float64, bn*bk)
	C = make([]float64, bm*bn)
	for i := range A {
		A[i] = rng.NormFloat64()
	}
	for i := range B2 {
		B2[i] = rng.NormFloat64()
	}
	return
}

func BenchmarkGemmNTBlocked(b *testing.B) {
	C, A, B2 := benchMats(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.GemmNT(C, A, B2, bm, bn, bk)
	}
}

func BenchmarkGemmNTNaive(b *testing.B) {
	C, A, B2 := benchMats(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveGemmNT(C, A, B2, bm, bn, bk)
	}
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += linalg.Dot(x, y)
	}
	_ = sink
}

func BenchmarkArenaGrabDrop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := linalg.Grab(512)
		linalg.Drop(buf)
	}
}
