// Package linalg provides the dense numeric kernels the ml package trains
// on: fused dot/axpy primitives with fixed summation order, register-blocked
// GEMM variants for packed row-major matrices, batched softmax/ReLU
// activations, and a sync.Pool-backed scratch-buffer arena.
//
// Every kernel is deterministic: for a given input shape the floating-point
// summation order is fixed by the implementation and never depends on
// GOMAXPROCS, callers' goroutines, or previous calls. That property is what
// lets the ml package run data-parallel training whose results are
// byte-identical to the serial path (the parallel scheme only splits work
// between kernel calls, never inside one).
package linalg

import "math"

// Dot returns the inner product of a and b. b must be at least as long as
// a. The reduction order is fixed per length: the AVX2 kernel (when
// available) runs lane-striped accumulators with a fixed combine tree, the
// portable path four interleaved partial sums combined as
// ((s0+s1)+(s2+s3))+tail. Which path runs depends only on the length and
// the host CPU — never on the caller — so results are deterministic.
func Dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	if simd && n >= 8 {
		var s float64
		dotv(&a[0], &b[0], &s, n)
		return s
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x elementwise over len(x); y must be at least as
// long as x.
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	if simd && n >= 8 {
		axpyv(&y[0], &x[0], alpha, n)
		return
	}
	i := 0
	for ; i+3 < n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Add computes dst += src elementwise over len(src).
func Add(dst, src []float64) {
	n := len(src)
	dst = dst[:n]
	if simd && n >= 8 {
		addv(&dst[0], &src[0], n)
		return
	}
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// AddScaled computes dst += w*src, the historical name used by the
// embedding code; it is Axpy with the argument order of that call site.
func AddScaled(dst, src []float64, w float64) { Axpy(w, src, dst) }

// Scale computes x *= alpha elementwise.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// GemmNT computes C += A·Bᵀ for packed row-major matrices: A is m×k, B is
// n×k, C is m×n. This is the inner-product form used for layer forwards
// (activations × weightsᵀ). The kernel is register-blocked 4×4 — four rows
// of A against four rows of B per pass — which reuses each loaded element
// sixteen times; every C element still accumulates its k-products in
// ascending order, so the result is independent of the blocking.
func GemmNT(C, A, B []float64, m, n, k int) {
	if k == 0 {
		return
	}
	if simd && k >= 8 {
		cGemmNTSIMD.Inc()
		gemmNTSIMD(C, A, B, m, n, k)
		return
	}
	cGemmNTPortable.Inc()
	i := 0
	for ; i+3 < m; i += 4 {
		a0 := A[i*k : i*k+k]
		a1 := A[(i+1)*k : (i+1)*k+k]
		a2 := A[(i+2)*k : (i+2)*k+k]
		a3 := A[(i+3)*k : (i+3)*k+k]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := B[j*k : j*k+k]
			b1 := B[(j+1)*k : (j+1)*k+k]
			b2 := B[(j+2)*k : (j+2)*k+k]
			b3 := B[(j+3)*k : (j+3)*k+k]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for l := 0; l < k; l++ {
				bv0, bv1, bv2, bv3 := b0[l], b1[l], b2[l], b3[l]
				av := a0[l]
				c00 += av * bv0
				c01 += av * bv1
				c02 += av * bv2
				c03 += av * bv3
				av = a1[l]
				c10 += av * bv0
				c11 += av * bv1
				c12 += av * bv2
				c13 += av * bv3
				av = a2[l]
				c20 += av * bv0
				c21 += av * bv1
				c22 += av * bv2
				c23 += av * bv3
				av = a3[l]
				c30 += av * bv0
				c31 += av * bv1
				c32 += av * bv2
				c33 += av * bv3
			}
			C[i*n+j] += c00
			C[i*n+j+1] += c01
			C[i*n+j+2] += c02
			C[i*n+j+3] += c03
			C[(i+1)*n+j] += c10
			C[(i+1)*n+j+1] += c11
			C[(i+1)*n+j+2] += c12
			C[(i+1)*n+j+3] += c13
			C[(i+2)*n+j] += c20
			C[(i+2)*n+j+1] += c21
			C[(i+2)*n+j+2] += c22
			C[(i+2)*n+j+3] += c23
			C[(i+3)*n+j] += c30
			C[(i+3)*n+j+1] += c31
			C[(i+3)*n+j+2] += c32
			C[(i+3)*n+j+3] += c33
		}
		for ; j < n; j++ {
			br := B[j*k : j*k+k]
			C[i*n+j] += Dot(a0, br)
			C[(i+1)*n+j] += Dot(a1, br)
			C[(i+2)*n+j] += Dot(a2, br)
			C[(i+3)*n+j] += Dot(a3, br)
		}
	}
	for ; i < m; i++ {
		ar := A[i*k : i*k+k]
		ci := C[i*n : i*n+n]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := B[j*k : j*k+k]
			b1 := B[(j+1)*k : (j+1)*k+k]
			b2 := B[(j+2)*k : (j+2)*k+k]
			b3 := B[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float64
			for l := 0; l < k; l++ {
				av := ar[l]
				s0 += av * b0[l]
				s1 += av * b1[l]
				s2 += av * b2[l]
				s3 += av * b3[l]
			}
			ci[j] += s0
			ci[j+1] += s1
			ci[j+2] += s2
			ci[j+3] += s3
		}
		for ; j < n; j++ {
			ci[j] += Dot(ar, B[j*k:j*k+k])
		}
	}
}

// GemmNN computes C += A·B for packed row-major matrices: A is m×k, B is
// k×n, C is m×n. Runs in saxpy form with four B rows fused per pass, so
// each C row is loaded and stored once per four k-steps instead of once per
// step; each C element still accumulates in ascending-l order (groups of
// four combined as (a0·b0 + a1·b1) + (a2·b2 + a3·b3)), a fixed order.
// All-zero groups of A coefficients are skipped, which matters for the
// sparse one-hot node features feeding the first GCN layer.
func GemmNN(C, A, B []float64, m, n, k int) {
	if simd && n >= 8 {
		cGemmNNSIMD.Inc()
		gemmNNSIMD(C, A, B, m, n, k)
		return
	}
	cGemmNNPortable.Inc()
	for i := 0; i < m; i++ {
		ci := C[i*n : i*n+n]
		ai := A[i*k : i*k+k]
		l := 0
		for ; l+3 < k; l += 4 {
			a0, a1, a2, a3 := ai[l], ai[l+1], ai[l+2], ai[l+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := B[l*n : l*n+n]
			b1 := B[(l+1)*n : (l+2)*n]
			b2 := B[(l+2)*n : (l+3)*n]
			b3 := B[(l+3)*n : (l+4)*n]
			for j := range ci {
				ci[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
			}
		}
		for ; l < k; l++ {
			if a := ai[l]; a != 0 {
				Axpy(a, B[l*n:l*n+n], ci)
			}
		}
	}
}

// GemmTN computes C += Aᵀ·B for packed row-major matrices: A is k×m, B is
// k×n, C is m×n. This is the gradient-accumulation form (activationsᵀ ×
// deltas); it runs as rank-1 updates in ascending-l order, fused four at a
// time (combined (a0·b0 + a1·b1) + (a2·b2 + a3·b3) per C element) so each C
// row is loaded once per four updates.
func GemmTN(C, A, B []float64, m, n, k int) {
	if simd && n >= 8 {
		cGemmTNSIMD.Inc()
		gemmTNSIMD(C, A, B, m, n, k)
		return
	}
	cGemmTNPortable.Inc()
	l := 0
	for ; l+3 < k; l += 4 {
		b0 := B[l*n : l*n+n]
		b1 := B[(l+1)*n : (l+2)*n]
		b2 := B[(l+2)*n : (l+3)*n]
		b3 := B[(l+3)*n : (l+4)*n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := A[l*m+i], A[(l+1)*m+i], A[(l+2)*m+i], A[(l+3)*m+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			ci := C[i*n : i*n+n]
			for j := range ci {
				ci[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
			}
		}
	}
	for ; l < k; l++ {
		br := B[l*n : l*n+n]
		for i := 0; i < m; i++ {
			if a := A[l*m+i]; a != 0 {
				Axpy(a, br, C[i*n:i*n+n])
			}
		}
	}
}

// MatVec computes y += A·x for a packed row-major m×k matrix, the
// single-sample inference form.
func MatVec(y, A, x []float64, m, k int) {
	cMatVec.Inc()
	for i := 0; i < m; i++ {
		y[i] += Dot(A[i*k:i*k+k], x)
	}
}

// ReLU clamps x to max(x, 0) elementwise in place. Branchless: on random
// activations a conditional store mispredicts about half the time.
func ReLU(x []float64) {
	for i, v := range x {
		x[i] = max(v, 0)
	}
}

// Softmax converts one row of logits to probabilities in place, with the
// usual max-subtraction for stability.
func Softmax(z []float64) {
	if len(z) == 0 {
		return
	}
	mx := z[0]
	for _, v := range z[1:] {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for i := range z {
		z[i] = math.Exp(z[i] - mx)
		sum += z[i]
	}
	inv := 1 / sum
	for i := range z {
		z[i] *= inv
	}
}

// SoftmaxRows applies Softmax to each of the rows×cols packed rows of z.
func SoftmaxRows(z []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		Softmax(z[r*cols : (r+1)*cols])
	}
}
