package linalg

import (
	"math/bits"
	"sync"
)

// The scratch arena hands out zeroed []float64 buffers and recycles them
// through size-classed sync.Pools (one pool per power-of-two capacity).
// Training and inference hot loops grab activation/gradient scratch here
// instead of allocating per sample, which keeps steady-state allocations
// flat regardless of epochs × batches × samples.

const arenaMaxClass = 26 // largest pooled buffer: 2^26 floats = 512 MiB

var arenaPools [arenaMaxClass + 1]sync.Pool

func arenaClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Grab returns a zeroed []float64 of length n from the arena. Buffers above
// the largest size class are plainly allocated.
func Grab(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := arenaClass(n)
	if c > arenaMaxClass {
		return make([]float64, n)
	}
	if v := arenaPools[c].Get(); v != nil {
		buf := v.([]float64)[:n]
		Zero(buf)
		return buf
	}
	return make([]float64, n, 1<<c)
}

// Drop returns a buffer obtained from Grab to the arena. Dropping nil or a
// foreign slice of off-class capacity is harmless (the buffer is simply not
// pooled).
func Drop(buf []float64) {
	c := arenaClass(cap(buf))
	if cap(buf) == 0 || c > arenaMaxClass || cap(buf) != 1<<c {
		return
	}
	//nolint:staticcheck // pooling the backing array, value type is fine here
	arenaPools[c].Put(buf[:cap(buf)])
}

// GrabInts is Grab for []int scratch (pool-backed, zeroed).
func GrabInts(n int) []int {
	if n == 0 {
		return nil
	}
	c := arenaClass(n)
	if c > arenaMaxClass {
		return make([]int, n)
	}
	if v := intPools[c].Get(); v != nil {
		buf := v.([]int)[:n]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]int, n, 1<<c)
}

// DropInts returns a GrabInts buffer to the arena.
func DropInts(buf []int) {
	c := arenaClass(cap(buf))
	if cap(buf) == 0 || c > arenaMaxClass || cap(buf) != 1<<c {
		return
	}
	intPools[c].Put(buf[:cap(buf)])
}

var intPools [arenaMaxClass + 1]sync.Pool
