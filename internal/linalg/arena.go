package linalg

import (
	"math/bits"
	"sync"
)

// The scratch arena hands out zeroed []float64 buffers and recycles them
// through size-classed sync.Pools (one pool per power-of-two capacity).
// Training and inference hot loops grab activation/gradient scratch here
// instead of allocating per sample, which keeps steady-state allocations
// flat regardless of epochs × batches × samples.

const arenaMaxClass = 26 // largest pooled buffer: 2^26 floats = 512 MiB

// Buffers travel through the pools as *[]float64 / *[]int: a pointer fits in
// an interface word, so neither Put nor Get allocates. Storing the slice by
// value instead would box its 24-byte header on every Put — one heap
// allocation per Drop, which on the serial Predict fallback used to dominate
// the per-row allocation count. The emptied header boxes are recycled
// through their own pools.
var (
	arenaPools [arenaMaxClass + 1]sync.Pool
	intPools   [arenaMaxClass + 1]sync.Pool

	floatHdrPool = sync.Pool{New: func() any { return new([]float64) }}
	intHdrPool   = sync.Pool{New: func() any { return new([]int) }}
)

func arenaClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Grab returns a zeroed []float64 of length n from the arena. Buffers above
// the largest size class are plainly allocated.
func Grab(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := arenaClass(n)
	if c > arenaMaxClass {
		return make([]float64, n)
	}
	if v := arenaPools[c].Get(); v != nil {
		h := v.(*[]float64)
		buf := (*h)[:n]
		*h = nil
		floatHdrPool.Put(h)
		Zero(buf)
		return buf
	}
	return make([]float64, n, 1<<c)
}

// Drop returns a buffer obtained from Grab to the arena. Dropping nil or a
// foreign slice of off-class capacity is harmless (the buffer is simply not
// pooled).
func Drop(buf []float64) {
	c := arenaClass(cap(buf))
	if cap(buf) == 0 || c > arenaMaxClass || cap(buf) != 1<<c {
		return
	}
	h := floatHdrPool.Get().(*[]float64)
	*h = buf[:cap(buf)]
	arenaPools[c].Put(h)
}

// GrabInts is Grab for []int scratch (pool-backed, zeroed).
func GrabInts(n int) []int {
	if n == 0 {
		return nil
	}
	c := arenaClass(n)
	if c > arenaMaxClass {
		return make([]int, n)
	}
	if v := intPools[c].Get(); v != nil {
		h := v.(*[]int)
		buf := (*h)[:n]
		*h = nil
		intHdrPool.Put(h)
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]int, n, 1<<c)
}

// DropInts returns a GrabInts buffer to the arena.
func DropInts(buf []int) {
	c := arenaClass(cap(buf))
	if cap(buf) == 0 || c > arenaMaxClass || cap(buf) != 1<<c {
		return
	}
	h := intHdrPool.Get().(*[]int)
	*h = buf[:cap(buf)]
	intPools[c].Put(h)
}
