package linalg

import "repro/internal/obs"

// Kernel-dispatch counters. Each GEMM/MatVec entry point bumps exactly one
// counter per call (never per element), so run manifests can attribute a
// result to the kernel path that produced it — accuracy bits are
// deterministic per path, and a simd/portable flip is the first thing to
// rule out when two manifests disagree. The pointers are resolved once at
// package init; recording is a single atomic add.
var (
	cGemmNTSIMD     = obs.GetCounter("linalg.gemm_nt.simd")
	cGemmNTPortable = obs.GetCounter("linalg.gemm_nt.portable")
	cGemmNNSIMD     = obs.GetCounter("linalg.gemm_nn.simd")
	cGemmNNPortable = obs.GetCounter("linalg.gemm_nn.portable")
	cGemmTNSIMD     = obs.GetCounter("linalg.gemm_tn.simd")
	cGemmTNPortable = obs.GetCounter("linalg.gemm_tn.portable")
	cMatVec         = obs.GetCounter("linalg.matvec")
)

func init() {
	if simd {
		obs.GetGauge("linalg.simd").Set(1)
	}
}

// SIMDEnabled reports whether the AVX2+FMA assembly kernels are active on
// this host. Fixed for the life of the process; run manifests record it
// because float summation details — and therefore trained-model bits —
// are only comparable between runs on the same answer.
func SIMDEnabled() bool { return simd }
