//go:build amd64

package linalg

// simd reports whether the AVX2+FMA assembly kernels are usable. It is
// fixed for the life of the process, so kernel selection — and therefore
// float summation order — depends only on operand shapes, never on which
// goroutine calls: the deterministic-training guarantee is per machine.
var simd = cpuHasAVX2FMA()

func cpuHasAVX2FMA() bool

//go:noescape
func dotv(a, b, out *float64, n int)

//go:noescape
func dot4(a, b0, b1, b2, b3, out *float64, n int)

//go:noescape
func saxpy4(ci, b0, b1, b2, b3, coef *float64, n int)

//go:noescape
func axpyv(y, x *float64, alpha float64, n int)

//go:noescape
func addv(dst, src *float64, n int)
