package linalg_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// naive reference kernels (textbook triple loops).

func refGemmNT(C, A, B []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += A[i*k+l] * B[j*k+l]
			}
			C[i*n+j] += s
		}
	}
}

func refGemmNN(C, A, B []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += A[i*k+l] * B[l*n+j]
			}
			C[i*n+j] += s
		}
	}
}

func refGemmTN(C, A, B []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += A[l*m+i] * B[l*n+j]
			}
			C[i*n+j] += s
		}
	}
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestGemmVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 7, 9}, {8, 100, 63},
		{3, 5, 1}, {16, 16, 97}, {6, 2, 33}, {9, 13, 8}, {32, 64, 50},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		bNT := randSlice(rng, n*k)
		bNN := randSlice(rng, k*n)
		aTN := randSlice(rng, k*m)
		seed := randSlice(rng, m*n)

		got, want := append([]float64(nil), seed...), append([]float64(nil), seed...)
		linalg.GemmNT(got, a, bNT, m, n, k)
		refGemmNT(want, a, bNT, m, n, k)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("GemmNT %v: max diff %g", sh, d)
		}

		got, want = append([]float64(nil), seed...), append([]float64(nil), seed...)
		linalg.GemmNN(got, a, bNN, m, n, k)
		refGemmNN(want, a, bNN, m, n, k)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("GemmNN %v: max diff %g", sh, d)
		}

		got, want = append([]float64(nil), seed...), append([]float64(nil), seed...)
		linalg.GemmTN(got, aTN, bNN, m, n, k)
		refGemmTN(want, aTN, bNN, m, n, k)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("GemmTN %v: max diff %g", sh, d)
		}
	}
}

// TestGemmDeterminism: repeated calls on the same inputs are byte-identical
// — the property the ml package's sharded training relies on.
func TestGemmDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 7, 31, 63
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k)
	first := make([]float64, m*n)
	linalg.GemmNT(first, a, b, m, n, k)
	for rep := 0; rep < 5; rep++ {
		got := make([]float64, m*n)
		linalg.GemmNT(got, a, b, m, n, k)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("rep %d: element %d differs: %v != %v", rep, i, got[i], first[i])
			}
		}
	}
}

func TestDotAxpyAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 63, 100} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		if got := linalg.Dot(a, b); math.Abs(got-want) > 1e-12 {
			t.Errorf("Dot n=%d: %v != %v", n, got, want)
		}
		y := append([]float64(nil), b...)
		linalg.Axpy(0.5, a, y)
		for i := range y {
			if w := b[i] + 0.5*a[i]; math.Abs(y[i]-w) > 1e-15 {
				t.Errorf("Axpy n=%d i=%d: %v != %v", n, i, y[i], w)
			}
		}
		d := append([]float64(nil), b...)
		linalg.Add(d, a)
		for i := range d {
			if w := b[i] + a[i]; d[i] != w {
				t.Errorf("Add n=%d i=%d: %v != %v", n, i, d[i], w)
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, k := 9, 17
	a := randSlice(rng, m*k)
	x := randSlice(rng, k)
	y := make([]float64, m)
	linalg.MatVec(y, a, x, m, k)
	for i := 0; i < m; i++ {
		want := 0.0
		for l := 0; l < k; l++ {
			want += a[i*k+l] * x[l]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Errorf("row %d: %v != %v", i, y[i], want)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	z := []float64{1, 2, 3, 1000, 1000, 1000, -5, 0, 5}
	linalg.SoftmaxRows(z, 3, 3)
	for r := 0; r < 3; r++ {
		sum := z[r*3] + z[r*3+1] + z[r*3+2]
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", r, sum)
		}
		for c := 0; c < 3; c++ {
			if z[r*3+c] < 0 || math.IsNaN(z[r*3+c]) || math.IsInf(z[r*3+c], 0) {
				t.Errorf("row %d col %d: bad probability %v", r, c, z[r*3+c])
			}
		}
	}
}

func TestReLU(t *testing.T) {
	x := []float64{-1, 0, 2, -0.5, 3}
	linalg.ReLU(x)
	want := []float64{0, 0, 2, 0, 3}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ReLU[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestArenaGrabIsZeroed(t *testing.T) {
	for rep := 0; rep < 3; rep++ {
		for _, n := range []int{1, 7, 64, 1000} {
			buf := linalg.Grab(n)
			if len(buf) != n {
				t.Fatalf("Grab(%d) returned len %d", n, len(buf))
			}
			for i := range buf {
				if buf[i] != 0 {
					t.Fatalf("Grab(%d)[%d] = %v, want 0", n, i, buf[i])
				}
				buf[i] = 1 // dirty it before recycling
			}
			linalg.Drop(buf)
		}
		ib := linalg.GrabInts(33)
		for i := range ib {
			if ib[i] != 0 {
				t.Fatalf("GrabInts not zeroed at %d", i)
			}
			ib[i] = 7
		}
		linalg.DropInts(ib)
	}
	// Foreign and nil buffers must be safe to Drop.
	linalg.Drop(nil)
	linalg.Drop(make([]float64, 3, 5))
}
