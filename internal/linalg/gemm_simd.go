package linalg

// SIMD drivers for the three GEMM variants. They walk the same ascending-k
// accumulation order per C element as the portable kernels' structure, with
// the inner stride handled by the AVX2 micro-kernels in kernels_amd64.s.
// Guarded by `simd`; on other platforms these are dead code.

// gemmNTSIMD: C += A·Bᵀ. Four B rows per pass share each streamed A value
// (dot4); the j-block outer loop keeps the active B panel hot across all m
// rows of A.
func gemmNTSIMD(C, A, B []float64, m, n, k int) {
	var out [4]float64
	j := 0
	for ; j+3 < n; j += 4 {
		b0, b1, b2, b3 := &B[j*k], &B[(j+1)*k], &B[(j+2)*k], &B[(j+3)*k]
		for i := 0; i < m; i++ {
			dot4(&A[i*k], b0, b1, b2, b3, &out[0], k)
			ci := C[i*n+j : i*n+j+4]
			ci[0] += out[0]
			ci[1] += out[1]
			ci[2] += out[2]
			ci[3] += out[3]
		}
	}
	for ; j < n; j++ {
		bj := &B[j*k]
		for i := 0; i < m; i++ {
			var s float64
			dotv(&A[i*k], bj, &s, k)
			C[i*n+j] += s
		}
	}
}

// gemmNNSIMD: C += A·B in saxpy form, four B rows fused per pass. All-zero
// coefficient groups are skipped (sparse one-hot node features).
func gemmNNSIMD(C, A, B []float64, m, n, k int) {
	var coef [4]float64
	for i := 0; i < m; i++ {
		ci := C[i*n : i*n+n]
		ai := A[i*k : i*k+k]
		l := 0
		for ; l+3 < k; l += 4 {
			a0, a1, a2, a3 := ai[l], ai[l+1], ai[l+2], ai[l+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			coef[0], coef[1], coef[2], coef[3] = a0, a1, a2, a3
			saxpy4(&ci[0], &B[l*n], &B[(l+1)*n], &B[(l+2)*n], &B[(l+3)*n], &coef[0], n)
		}
		for ; l < k; l++ {
			if a := ai[l]; a != 0 {
				axpyv(&ci[0], &B[l*n], a, n)
			}
		}
	}
}

// gemmTNSIMD: C += Aᵀ·B as rank-1 updates, four per pass.
func gemmTNSIMD(C, A, B []float64, m, n, k int) {
	var coef [4]float64
	l := 0
	for ; l+3 < k; l += 4 {
		b0, b1, b2, b3 := &B[l*n], &B[(l+1)*n], &B[(l+2)*n], &B[(l+3)*n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := A[l*m+i], A[(l+1)*m+i], A[(l+2)*m+i], A[(l+3)*m+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			coef[0], coef[1], coef[2], coef[3] = a0, a1, a2, a3
			saxpy4(&C[i*n], b0, b1, b2, b3, &coef[0], n)
		}
	}
	for ; l < k; l++ {
		bl := &B[l*n]
		for i := 0; i < m; i++ {
			if a := A[l*m+i]; a != 0 {
				axpyv(&C[i*n], bl, a, n)
			}
		}
	}
}
