// AVX2+FMA micro-kernels behind the runtime dispatch in dispatch_amd64.go.
// Every kernel runs a fixed instruction sequence for a given length, so the
// float summation order is a pure function of the shape — the property the
// ml package's deterministic data-parallel training relies on.

#include "textflag.h"

// func cpuHasAVX2FMA() bool
// CPUID leaf 1: FMA (ECX bit 12), OSXSAVE (27), AVX (28); XGETBV XCR0 must
// have SSE+AVX state (bits 1,2) OS-enabled; CPUID leaf 7: AVX2 (EBX bit 5).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1 << 5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func dotv(a, b, out *float64, n int)
// *out = Σ a[i]*b[i]: two 4-lane FMA accumulators over 8-element steps,
// combined (acc0+acc1), lanes ((l0+l2)+(l1+l3)), then the scalar tail.
TEXT ·dotv(SB), NOSPLIT, $0-32
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), R8
	MOVQ   out+16(FP), DI
	MOVQ   n+24(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   CX, DX
	SHRQ   $3, DX
	JZ     dvmid

dvloop:
	VMOVUPD     (SI), Y4
	VFMADD231PD (R8), Y4, Y0
	VMOVUPD     32(SI), Y5
	VFMADD231PD 32(R8), Y5, Y1
	ADDQ        $64, SI
	ADDQ        $64, R8
	DECQ        DX
	JNZ         dvloop

dvmid:
	TESTQ       $4, CX
	JZ          dvreduce
	VMOVUPD     (SI), Y4
	VFMADD231PD (R8), Y4, Y0
	ADDQ        $32, SI
	ADDQ        $32, R8

dvreduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VUNPCKHPD    X0, X0, X4
	VADDSD       X4, X0, X0
	ANDQ         $3, CX
	JZ           dvstore

dvtail:
	VMOVSD      (SI), X8
	VFMADD231SD (R8), X8, X0
	ADDQ        $8, SI
	ADDQ        $8, R8
	DECQ        CX
	JNZ         dvtail

dvstore:
	VMOVSD     X0, (DI)
	VZEROUPPER
	RET

// func dot4(a, b0, b1, b2, b3, out *float64, n int)
// out[j] = Σ a[i]*bj[i] for four B rows sharing one A row: each a load is
// reused by four FMA accumulators.
TEXT ·dot4(SB), NOSPLIT, $0-56
	MOVQ   a+0(FP), SI
	MOVQ   b0+8(FP), R8
	MOVQ   b1+16(FP), R9
	MOVQ   b2+24(FP), R10
	MOVQ   b3+32(FP), R11
	MOVQ   out+40(FP), DI
	MOVQ   n+48(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     d4reduce

d4loop:
	VMOVUPD     (SI), Y4
	VFMADD231PD (R8), Y4, Y0
	VFMADD231PD (R9), Y4, Y1
	VFMADD231PD (R10), Y4, Y2
	VFMADD231PD (R11), Y4, Y3
	ADDQ        $32, SI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	DECQ        DX
	JNZ         d4loop

d4reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPD       X4, X0, X0
	VUNPCKHPD    X0, X0, X4
	VADDSD       X4, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPD       X5, X1, X1
	VUNPCKHPD    X1, X1, X5
	VADDSD       X5, X1, X1
	VEXTRACTF128 $1, Y2, X6
	VADDPD       X6, X2, X2
	VUNPCKHPD    X2, X2, X6
	VADDSD       X6, X2, X2
	VEXTRACTF128 $1, Y3, X7
	VADDPD       X7, X3, X3
	VUNPCKHPD    X3, X3, X7
	VADDSD       X7, X3, X3
	ANDQ         $3, CX
	JZ           d4store

d4tail:
	VMOVSD      (SI), X8
	VFMADD231SD (R8), X8, X0
	VFMADD231SD (R9), X8, X1
	VFMADD231SD (R10), X8, X2
	VFMADD231SD (R11), X8, X3
	ADDQ        $8, SI
	ADDQ        $8, R8
	ADDQ        $8, R9
	ADDQ        $8, R10
	ADDQ        $8, R11
	DECQ        CX
	JNZ         d4tail

d4store:
	VMOVSD     X0, (DI)
	VMOVSD     X1, 8(DI)
	VMOVSD     X2, 16(DI)
	VMOVSD     X3, 24(DI)
	VZEROUPPER
	RET

// func saxpy4(ci, b0, b1, b2, b3, coef *float64, n int)
// ci[j] += coef[0]*b0[j] + coef[1]*b1[j] + coef[2]*b2[j] + coef[3]*b3[j],
// each element accumulating its four fused products in ascending order.
TEXT ·saxpy4(SB), NOSPLIT, $0-56
	MOVQ         ci+0(FP), DI
	MOVQ         b0+8(FP), R8
	MOVQ         b1+16(FP), R9
	MOVQ         b2+24(FP), R10
	MOVQ         b3+32(FP), R11
	MOVQ         coef+40(FP), AX
	MOVQ         n+48(FP), CX
	VBROADCASTSD (AX), Y4
	VBROADCASTSD 8(AX), Y5
	VBROADCASTSD 16(AX), Y6
	VBROADCASTSD 24(AX), Y7
	MOVQ         CX, DX
	SHRQ         $2, DX
	JZ           s4tail

s4loop:
	VMOVUPD     (DI), Y0
	VFMADD231PD (R8), Y4, Y0
	VFMADD231PD (R9), Y5, Y0
	VFMADD231PD (R10), Y6, Y0
	VFMADD231PD (R11), Y7, Y0
	VMOVUPD     Y0, (DI)
	ADDQ        $32, DI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	DECQ        DX
	JNZ         s4loop

s4tail:
	ANDQ $3, CX
	JZ   s4done

s4tailloop:
	VMOVSD      (DI), X0
	VFMADD231SD (R8), X4, X0
	VFMADD231SD (R9), X5, X0
	VFMADD231SD (R10), X6, X0
	VFMADD231SD (R11), X7, X0
	VMOVSD      X0, (DI)
	ADDQ        $8, DI
	ADDQ        $8, R8
	ADDQ        $8, R9
	ADDQ        $8, R10
	ADDQ        $8, R11
	DECQ        CX
	JNZ         s4tailloop

s4done:
	VZEROUPPER
	RET

// func axpyv(y, x *float64, alpha float64, n int)
// y[i] += alpha*x[i], fused.
TEXT ·axpyv(SB), NOSPLIT, $0-32
	MOVQ         y+0(FP), DI
	MOVQ         x+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y4
	MOVQ         n+24(FP), CX
	MOVQ         CX, DX
	SHRQ         $2, DX
	JZ           avtail

avloop:
	VMOVUPD     (DI), Y0
	VFMADD231PD (SI), Y4, Y0
	VMOVUPD     Y0, (DI)
	ADDQ        $32, DI
	ADDQ        $32, SI
	DECQ        DX
	JNZ         avloop

avtail:
	ANDQ $3, CX
	JZ   avdone

avtailloop:
	VMOVSD      (DI), X0
	VFMADD231SD (SI), X4, X0
	VMOVSD      X0, (DI)
	ADDQ        $8, DI
	ADDQ        $8, SI
	DECQ        CX
	JNZ         avtailloop

avdone:
	VZEROUPPER
	RET

// func addv(dst, src *float64, n int)
// dst[i] += src[i].
TEXT ·addv(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   adtail

adloop:
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    DX
	JNZ     adloop

adtail:
	ANDQ $3, CX
	JZ   addone

adtailloop:
	VMOVSD (DI), X0
	VADDSD (SI), X0, X0
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, SI
	DECQ   CX
	JNZ    adtailloop

addone:
	VZEROUPPER
	RET
