package vm

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// This file preserves the original pointer-walking bytecode compiler,
// verbatim except for ref* renames and the gepRef residue (which carries the
// same two facts gepSlow used to read through the *ir.Instr). It exists only
// as the equivalence oracle: TestCompileFlatEquivalence pins that the flat
// compiler in compile.go emits bit-identical programs.

// refCompile lowers every function of m into bytecode by walking the pointer
// IR, exactly like vm.Compile before the flat retarget.
func refCompile(m *ir.Module) (*Program, error) {
	p := &Program{mod: m, main: -1}
	fnIndex := make(map[*ir.Function]int32)

	gaddr := make(map[*ir.Global]int64, len(m.Globals))
	sp := int64(16)
	for _, g := range m.Globals {
		size := (int64(g.Elem.Size()) + 7) &^ 7
		gaddr[g] = sp
		sp += size
	}

	for _, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		fnIndex[f] = int32(len(p.funcs))
		p.funcs = append(p.funcs, nil) // reserve the index before bodies compile
	}
	for _, f := range m.Functions {
		if f.IsDecl() {
			continue
		}
		fc, err := refCompileFunc(f, fnIndex, gaddr, false)
		if err != nil {
			return nil, err
		}
		p.funcs[fnIndex[f]] = fc
	}
	if mf := m.Func("main"); mf != nil {
		idx, defined := fnIndex[mf]
		switch {
		case !defined:
			p.mainDecl = true
		case len(mf.Params) == 0:
			p.main = idx
			p.entry = p.funcs[idx]
		default:
			p.main = idx
			fc, err := refCompileFunc(mf, fnIndex, gaddr, true)
			if err != nil {
				return nil, err
			}
			p.entry = fc
		}
	}
	return p, nil
}

type refFnCompiler struct {
	f       *ir.Function
	fc      *funcCode
	fnIndex map[*ir.Function]int32
	gaddr   map[*ir.Global]int64
	noArgs  bool

	slots  map[*ir.Instr]int32
	cpool  map[ckey]int32
	temp   int32
	nconst int32

	blockStart map[*ir.Block]int32
	fixups     []refFixup
	edgePC     map[refEdgeKey]int32
	msgIdx     map[string]int32
}

type refEdgeKey struct{ pred, succ *ir.Block }

type refFixup struct {
	pc    int32
	field uint8 // 0 = dst, 1 = b, 2 = swPCs[swIdx]
	swIdx int32
	pred  *ir.Block
	succ  *ir.Block
}

func refCompileFunc(f *ir.Function, fnIndex map[*ir.Function]int32, gaddr map[*ir.Global]int64, noArgs bool) (*funcCode, error) {
	c := &refFnCompiler{
		f:          f,
		fc:         &funcCode{name: f.Name, nparams: len(f.Params)},
		fnIndex:    fnIndex,
		gaddr:      gaddr,
		noArgs:     noArgs,
		slots:      make(map[*ir.Instr]int32),
		cpool:      make(map[ckey]int32),
		blockStart: make(map[*ir.Block]int32, len(f.Blocks)),
		edgePC:     make(map[refEdgeKey]int32),
		msgIdx:     make(map[string]int32),
	}

	next := int32(len(f.Params))
	f.ForEachInstr(func(in *ir.Instr) {
		if in.HasResult() {
			c.slots[in] = next
			next++
		}
	})
	c.temp = next
	c.fc.constBase = int(next) + 1

	for _, b := range f.Blocks {
		c.blockStart[b] = int32(len(c.fc.code))
		c.compileBlock(b)
	}
	c.resolveEdges()
	c.patch()

	c.fc.frameSize = c.fc.constBase + len(c.fc.consts)
	if c.fc.frameSize > math.MaxInt32/2 {
		return nil, fmt.Errorf("vm: function @%s needs %d frame slots", f.Name, c.fc.frameSize)
	}
	return c.fc, nil
}

func (c *refFnCompiler) constSlot(v val) int32 {
	k := ckey{i: v.i, f: math.Float64bits(v.f)}
	if s, ok := c.cpool[k]; ok {
		return s
	}
	s := int32(c.fc.constBase) + c.nconst
	c.cpool[k] = s
	c.nconst++
	c.fc.consts = append(c.fc.consts, v)
	return s
}

func (c *refFnCompiler) slotOf(v ir.Value) (int32, string) {
	switch x := v.(type) {
	case *ir.Const:
		if x.Ty.IsFloat() {
			return c.constSlot(val{f: x.F}), ""
		}
		return c.constSlot(val{i: x.I}), ""
	case *ir.Param:
		if c.noArgs || x.Index >= len(c.f.Params) {
			return 0, "missing argument " + x.Name
		}
		return int32(x.Index), ""
	case *ir.Instr:
		if s, ok := c.slots[x]; ok {
			return s, ""
		}
		return 0, "use of undefined value " + x.Ref() + " in @" + c.f.Name
	case *ir.Global:
		addr, ok := c.gaddr[x]
		if !ok {
			return 0, "use of unknown global @" + x.Name + " in @" + c.f.Name
		}
		return c.constSlot(val{i: addr}), ""
	case *ir.Function:
		return 0, "function pointers are not supported"
	}
	return 0, "unknown value kind"
}

func (c *refFnCompiler) trapMsg(msg string) int32 {
	if i, ok := c.msgIdx[msg]; ok {
		return i
	}
	i := int32(len(c.fc.msgs))
	c.msgIdx[msg] = i
	c.fc.msgs = append(c.fc.msgs, msg)
	return i
}

func (c *refFnCompiler) emit(in inst) int32 {
	pc := int32(len(c.fc.code))
	c.fc.code = append(c.fc.code, in)
	return pc
}

func (c *refFnCompiler) emitTrap(msg string, cost uint8) {
	c.emit(inst{op: opTrap, cost: cost, a: c.trapMsg(msg)})
}

func (c *refFnCompiler) branchTo(pc int32, field uint8, swIdx int32, pred, succ *ir.Block) {
	c.fixups = append(c.fixups, refFixup{pc: pc, field: field, swIdx: swIdx, pred: pred, succ: succ})
}

func (c *refFnCompiler) compileBlock(b *ir.Block) {
	instrs := b.Instrs[b.FirstNonPhi():] // phis compile into edge stubs
	for _, in := range instrs {
		c.compileInstr(b, in)
	}
	if b.Term() == nil {
		c.emitTrap("block "+b.Label()+" fell through without terminator", 0)
	}
}

func (c *refFnCompiler) operands(in *ir.Instr, vs ...ir.Value) ([]int32, bool) {
	slots := make([]int32, len(vs))
	for i, v := range vs {
		s, msg := c.slotOf(v)
		if msg != "" {
			c.emitTrap(msg, 1)
			return nil, false
		}
		slots[i] = s
	}
	return slots, true
}

func (c *refFnCompiler) compileInstr(b *ir.Block, in *ir.Instr) {
	dst := int32(-1)
	if s, ok := c.slots[in]; ok {
		dst = s
	}

	switch {
	case in.Op.IsIntBinary():
		s, ok := c.operands(in, in.Args[0], in.Args[1])
		if !ok {
			return
		}
		c.emit(inst{op: opAdd + op(in.Op-ir.OpAdd), cost: 1, sh: shOf(in.Ty), dst: dst, a: s[0], b: s[1]})
		return
	case in.Op.IsFloatBinary():
		s, ok := c.operands(in, in.Args[0], in.Args[1])
		if !ok {
			return
		}
		c.emit(inst{op: opFAdd + op(in.Op-ir.OpFAdd), cost: 1, dst: dst, a: s[0], b: s[1]})
		return
	}

	switch in.Op {
	case ir.OpRet:
		if len(in.Args) == 0 {
			c.emit(inst{op: opRetVoid, cost: 1})
			return
		}
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opRet, cost: 1, a: s[0]})

	case ir.OpBr:
		pc := c.emit(inst{op: opJmp, cost: 1})
		c.branchTo(pc, 0, 0, b, in.Blocks[0])

	case ir.OpCondBr:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		pc := c.emit(inst{op: opCondBr, cost: 1, a: s[0]})
		c.branchTo(pc, 0, 0, b, in.Blocks[0])
		c.branchTo(pc, 1, 0, b, in.Blocks[1])

	case ir.OpSwitch:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		base := int32(len(c.fc.swVals))
		pc := c.emit(inst{op: opSwitch, cost: 1, a: s[0], b: base, c: int32(len(in.SwitchVals))})
		c.branchTo(pc, 0, 0, b, in.Blocks[0]) // default
		for i, sv := range in.SwitchVals {
			c.fc.swVals = append(c.fc.swVals, sv)
			c.fc.swPCs = append(c.fc.swPCs, 0)
			c.branchTo(pc, 2, base+int32(i), b, in.Blocks[i+1])
		}

	case ir.OpUnreachable:
		c.emitTrap("reached unreachable in @"+c.f.Name, 1)

	case ir.OpFNeg:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opFNeg, cost: 1, dst: dst, a: s[0]})

	case ir.OpAlloca:
		size := in.AllocaTy.Size()
		if size >= 0 && size <= math.MaxInt32 {
			c.emit(inst{op: opAlloca, cost: 1, dst: dst, c: int32(size)})
			return
		}
		pi := int32(len(c.fc.ipool))
		c.fc.ipool = append(c.fc.ipool, int64(size))
		c.emit(inst{op: opAllocaP, cost: 1, dst: dst, c: pi})

	case ir.OpLoad:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: loadOp(in.Ty), cost: 1, dst: dst, a: s[0], c: int32(in.Ty.Size())})

	case ir.OpStore:
		s, ok := c.operands(in, in.Args[0], in.Args[1])
		if !ok {
			return
		}
		vt := in.Args[0].Type()
		c.emit(inst{op: storeOp(vt), cost: 1, a: s[0], b: s[1], c: int32(vt.Size())})

	case ir.OpGEP:
		c.compileGEP(in, dst)

	case ir.OpICmp:
		s, ok := c.operands(in, in.Args[0], in.Args[1])
		if !ok {
			return
		}
		c.emit(inst{op: opIEq + op(in.Pred), cost: 1, dst: dst, a: s[0], b: s[1]})

	case ir.OpFCmp:
		s, ok := c.operands(in, in.Args[0], in.Args[1])
		if !ok {
			return
		}
		c.emit(inst{op: fcmpOp(in.Pred), cost: 1, dst: dst, a: s[0], b: s[1]})

	case ir.OpSelect:
		s, ok := c.operands(in, in.Args[0], in.Args[1], in.Args[2])
		if !ok {
			return
		}
		base := int32(len(c.fc.extra))
		c.fc.extra = append(c.fc.extra, s[1], s[2])
		c.emit(inst{op: opSelect, cost: 1, dst: dst, a: s[0], b: base})

	case ir.OpCall:
		c.compileCall(in, dst)

	case ir.OpTrunc:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		if sh := shOf(in.Ty); sh != 0 {
			c.emit(inst{op: opTrunc, cost: 1, sh: sh, dst: dst, a: s[0]})
		} else {
			c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})
		}

	case ir.OpZExt:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		if from := in.Args[0].Type(); from.Bits < 64 {
			c.emit(inst{op: opZExt, cost: 1, sh: uint8(from.Bits), dst: dst, a: s[0]})
		} else {
			c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})
		}

	case ir.OpFPToSI, ir.OpFPToUI:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opFPToI, cost: 1, sh: shOf(in.Ty), dst: dst, a: s[0]})

	case ir.OpSIToFP:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opSIToFP, cost: 1, dst: dst, a: s[0]})

	case ir.OpUIToFP:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opUIToFP, cost: 1, dst: dst, a: s[0]})

	case ir.OpSExt, ir.OpFPTrunc, ir.OpFPExt, ir.OpPtrToInt, ir.OpIntToPtr,
		ir.OpBitcast, ir.OpAddrSpaceCast, ir.OpFreeze:
		s, ok := c.operands(in, in.Args[0])
		if !ok {
			return
		}
		c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})

	default:
		c.emitTrap("unimplemented opcode "+in.Op.String(), 1)
	}
}

func refPlanGEP(elem *ir.Type, idxs []ir.Value) ([]gepStep, bool) {
	if elem == nil {
		return nil, false
	}
	var plan []gepStep
	for i, ix := range idxs {
		switch {
		case elem.IsArray():
			elem = elem.Elem
			if elem == nil {
				return nil, false
			}
			plan = append(plan, gepStep{scale: int64(elem.Size()), argIdx: i})
		case elem.IsStruct():
			cst, isConst := ix.(*ir.Const)
			if !isConst || cst.Ty.IsFloat() {
				return nil, false
			}
			fi := cst.I
			if fi < 0 || int(fi) >= len(elem.Fields) {
				return nil, false
			}
			plan = append(plan, gepStep{isOff: true, off: int64(elem.FieldOffset(int(fi)))})
			elem = elem.Fields[fi]
		default:
			return nil, false
		}
	}
	return plan, true
}

func (c *refFnCompiler) compileGEP(in *ir.Instr, dst int32) {
	s, ok := c.operands(in, in.Args...)
	if !ok {
		return
	}
	elem := in.Args[0].Type().Elem
	plan, fast := refPlanGEP(elem, in.Args[2:])
	if !fast {
		gi := int32(len(c.fc.geps))
		c.fc.geps = append(c.fc.geps, gepRef{elem: elem, n: int32(len(in.Args))})
		base := int32(len(c.fc.extra))
		c.fc.extra = append(c.fc.extra, s...)
		c.emit(inst{op: opGEPSlow, cost: 1, dst: dst, a: base, c: gi})
		return
	}
	c.emitScaleAdd(dst, s[0], s[1], int64(elem.Size()), 1)
	for _, st := range plan {
		if st.isOff {
			c.emitAddImm(dst, dst, st.off, 0)
		} else {
			c.emitScaleAdd(dst, dst, s[2+st.argIdx], st.scale, 0)
		}
	}
}

func (c *refFnCompiler) emitScaleAdd(dst, base, idx int32, scale int64, cost uint8) {
	if scale >= 0 && scale <= math.MaxInt32 {
		c.emit(inst{op: opScaleAdd, cost: cost, dst: dst, a: base, b: idx, c: int32(scale)})
		return
	}
	pi := int32(len(c.fc.ipool))
	c.fc.ipool = append(c.fc.ipool, scale)
	c.emit(inst{op: opScaleAddP, cost: cost, dst: dst, a: base, b: idx, c: pi})
}

func (c *refFnCompiler) emitAddImm(dst, base int32, off int64, cost uint8) {
	if off >= 0 && off <= math.MaxInt32 {
		c.emit(inst{op: opAddImm, cost: cost, dst: dst, a: base, c: int32(off)})
		return
	}
	pi := int32(len(c.fc.ipool))
	c.fc.ipool = append(c.fc.ipool, off)
	c.emit(inst{op: opAddImmP, cost: cost, dst: dst, a: base, c: pi})
}

func (c *refFnCompiler) compileCall(in *ir.Instr, dst int32) {
	s, ok := c.operands(in, in.Args...)
	if !ok {
		return
	}
	base := int32(len(c.fc.extra))
	c.fc.extra = append(c.fc.extra, s...)
	if in.Callee != nil {
		idx, defined := c.fnIndex[in.Callee]
		if !defined {
			c.emit(inst{op: opTrapErr, cost: 1, a: c.trapMsg("call to declaration @" + in.Callee.Name)})
			return
		}
		c.emit(inst{op: opCall, cost: 1, dst: dst, a: idx, b: base, c: int32(len(s))})
		return
	}
	bi, known := builtinIndex[in.Builtin]
	if !known {
		c.emitTrap("unknown builtin "+in.Builtin, 1)
		return
	}
	c.emit(inst{op: opCallB, cost: 1, dst: dst, a: bi, b: base, c: int32(len(s))})
}

func (c *refFnCompiler) resolveEdges() {
	for _, fx := range c.fixups {
		key := refEdgeKey{fx.pred, fx.succ}
		if _, done := c.edgePC[key]; done {
			continue
		}
		phis := fx.succ.Phis()
		if len(phis) == 0 {
			c.edgePC[key] = c.blockStart[fx.succ]
			continue
		}
		c.edgePC[key] = c.emitEdgeStub(fx.pred, fx.succ, phis)
	}
}

func (c *refFnCompiler) emitEdgeStub(pred, succ *ir.Block, phis []*ir.Instr) int32 {
	start := int32(len(c.fc.code))
	moves := make([]move, 0, len(phis))
	for _, phi := range phis {
		inc := phi.PhiIncoming(pred)
		if inc == nil {
			c.emitTrap("phi has no incoming value for edge "+pred.Label()+"->"+succ.Label(), 0)
			return start
		}
		src, msg := c.slotOf(inc)
		if msg != "" {
			c.emitTrap(msg, 0)
			return start
		}
		if d := c.slots[phi]; d != src {
			moves = append(moves, move{dst: d, src: src})
		}
	}
	c.scheduleMoves(moves)
	c.emit(inst{op: opStepN, c: int32(len(phis))})
	c.emit(inst{op: opJmp, dst: c.blockStart[succ]})
	return start
}

func (c *refFnCompiler) scheduleMoves(pending []move) {
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			mv := pending[i]
			blocked := false
			for j := range pending {
				if j != i && pending[j].src == mv.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			c.emit(inst{op: opMov, dst: mv.dst, a: mv.src})
			pending = append(pending[:i], pending[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			d := pending[0].dst
			c.emit(inst{op: opMov, dst: c.temp, a: d})
			for j := range pending {
				if pending[j].src == d {
					pending[j].src = c.temp
				}
			}
		}
	}
}

func (c *refFnCompiler) patch() {
	for _, fx := range c.fixups {
		target := c.edgePC[refEdgeKey{fx.pred, fx.succ}]
		switch fx.field {
		case 0:
			c.fc.code[fx.pc].dst = target
		case 1:
			c.fc.code[fx.pc].b = target
		default:
			c.fc.swPCs[fx.swIdx] = target
		}
	}
}
