package vm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progen"
)

// The flat compiler must emit bit-identical bytecode to the pointer-walking
// compiler it replaced (preserved as refCompile in compile_ref_test.go):
// same instruction stream, same frame layout, same constant pools, same trap
// messages. These tests pin that over hand-written samples and a generated
// corpus, including optimized and obfuscated variants.

func typesEqual(a, b *ir.Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

func funcCodesIdentical(t *testing.T, label string, a, b *funcCode) {
	t.Helper()
	if a.name != b.name || a.nparams != b.nparams ||
		a.frameSize != b.frameSize || a.constBase != b.constBase {
		t.Errorf("%s: @%s: header differs: %+v vs %+v", label, a.name,
			[4]int{len(a.code), a.nparams, a.frameSize, a.constBase},
			[4]int{len(b.code), b.nparams, b.frameSize, b.constBase})
		return
	}
	if len(a.code) != len(b.code) {
		t.Errorf("%s: @%s: code length %d vs %d", label, a.name, len(a.code), len(b.code))
		return
	}
	for i := range a.code {
		if a.code[i] != b.code[i] {
			t.Errorf("%s: @%s: inst %d differs: %+v vs %+v", label, a.name, i, a.code[i], b.code[i])
			return
		}
	}
	if len(a.consts) != len(b.consts) {
		t.Errorf("%s: @%s: const pool %d vs %d", label, a.name, len(a.consts), len(b.consts))
		return
	}
	for i := range a.consts {
		if a.consts[i].i != b.consts[i].i ||
			math.Float64bits(a.consts[i].f) != math.Float64bits(b.consts[i].f) {
			t.Errorf("%s: @%s: const %d differs: %+v vs %+v", label, a.name, i, a.consts[i], b.consts[i])
			return
		}
	}
	for name, pair := range map[string][2]int{
		"extra":  {len(a.extra), len(b.extra)},
		"swVals": {len(a.swVals), len(b.swVals)},
		"swPCs":  {len(a.swPCs), len(b.swPCs)},
		"ipool":  {len(a.ipool), len(b.ipool)},
		"msgs":   {len(a.msgs), len(b.msgs)},
		"geps":   {len(a.geps), len(b.geps)},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: @%s: %s length %d vs %d", label, a.name, name, pair[0], pair[1])
			return
		}
	}
	for i := range a.extra {
		if a.extra[i] != b.extra[i] {
			t.Errorf("%s: @%s: extra[%d] %d vs %d", label, a.name, i, a.extra[i], b.extra[i])
			return
		}
	}
	for i := range a.swVals {
		if a.swVals[i] != b.swVals[i] || a.swPCs[i] != b.swPCs[i] {
			t.Errorf("%s: @%s: switch entry %d differs", label, a.name, i)
			return
		}
	}
	for i := range a.ipool {
		if a.ipool[i] != b.ipool[i] {
			t.Errorf("%s: @%s: ipool[%d] %d vs %d", label, a.name, i, a.ipool[i], b.ipool[i])
			return
		}
	}
	for i := range a.msgs {
		if a.msgs[i] != b.msgs[i] {
			t.Errorf("%s: @%s: msg %d %q vs %q", label, a.name, i, a.msgs[i], b.msgs[i])
			return
		}
	}
	// The flat compiler resolves GEP element types through the interned type
	// pool, so compare them structurally, not by pointer.
	for i := range a.geps {
		if a.geps[i].n != b.geps[i].n || !typesEqual(a.geps[i].elem, b.geps[i].elem) {
			t.Errorf("%s: @%s: gep %d differs", label, a.name, i)
			return
		}
	}
}

// checkCompileEquiv compiles m with the pointer oracle and the flat compiler
// and requires identical programs.
func checkCompileEquiv(t *testing.T, label string, m *ir.Module) {
	t.Helper()
	ref, refErr := refCompile(m)
	got, gotErr := Compile(m)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: ref %v, flat %v", label, refErr, gotErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text: ref %q, flat %q", label, refErr, gotErr)
		}
		return
	}
	if len(ref.funcs) != len(got.funcs) {
		t.Fatalf("%s: func count %d vs %d", label, len(ref.funcs), len(got.funcs))
	}
	for i := range ref.funcs {
		funcCodesIdentical(t, label, ref.funcs[i], got.funcs[i])
	}
	if ref.main != got.main || ref.mainDecl != got.mainDecl {
		t.Fatalf("%s: main %d/%v vs %d/%v", label, ref.main, ref.mainDecl, got.main, got.mainDecl)
	}
	if (ref.entry == nil) != (got.entry == nil) {
		t.Fatalf("%s: entry nil mismatch", label)
	}
	if ref.entry != nil {
		funcCodesIdentical(t, label+" (entry)", ref.entry, got.entry)
	}
}

func compileEquivMod(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.CompileSource(src, "equiv")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileFlatEquivalenceSamples(t *testing.T) {
	samples := map[string]string{
		"scalar": `int main() { int a = 3; int b = 4; return a * b + 1; }`,
		"control": `int main() { int s = 0;
			for (int i = 0; i < 30; i++) { if (i % 2 == 0) s += i; else s -= 1; }
			while (s > 10) s /= 3;
			return s; }`,
		"calls_builtins": `
			float mix(float a, float b) { return a * 0.5 + b; }
			int main() { float x = mix(2.5, 3.0); print(x); print((int)x); return (int)(x * sqrt(4.0)); }`,
		"switch": `int main() { int s = 0;
			for (int i = 0; i < 10; i++) { switch (i % 5) { case 0: s += 1; break; case 3: s += 7; break; default: s -= 1; } }
			return s; }`,
		"memory": `
			struct P { int x; float y; int a[4]; };
			int g[8];
			int main() { struct P p; p.x = 2; p.y = 1.5;
				for (int i = 0; i < 4; i++) p.a[i] = i * p.x;
				for (int i = 0; i < 8; i++) g[i] = p.a[i % 4];
				int *q = &g[3]; *q += 100;
				return g[3] + p.a[2] + (int)p.y; }`,
		// main with parameters: forces the no-args entry variant, whose every
		// parameter use compiles to a "missing argument" trap.
		"main_with_params": `int main(int argc) { if (argc > 0) return argc; return 7; }`,
		"recursion": `
			int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
			int main() { return fib(12); }`,
		"floats": `int main() { float a = -0.0; float b = 1e-3; float c = a - b;
			if (c < 0.0) return (int)(b * 1e6); return 0; }`,
	}
	for label, src := range samples {
		checkCompileEquiv(t, label, compileEquivMod(t, src))
	}
}

func TestCompileFlatEquivalenceProgenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("200-program corpus is not for -short")
	}
	for seed := int64(0); seed < 200; seed++ {
		src := progen.GenerateSeed(seed)
		m, err := minic.CompileSource(src, "gen")
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		checkCompileEquiv(t, "progen", m)
	}
}

// Optimized and obfuscated variants exercise compilation of transformed IR:
// phi-heavy blocks from mem2reg (edge-stub scheduling), flattened dispatch
// switches, opaque predicates over globals.
func TestCompileFlatEquivalenceTransformed(t *testing.T) {
	if testing.Short() {
		t.Skip("transformed corpus is not for -short")
	}
	for seed := int64(0); seed < 40; seed++ {
		src := progen.GenerateSeed(seed)
		for _, level := range []passes.Level{passes.O2, passes.O3} {
			m, err := minic.CompileSource(src, "gen")
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			if err := passes.Optimize(m, level); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, level, err)
			}
			checkCompileEquiv(t, level.String(), m)
		}
		for _, ob := range obfus.Names() {
			m, err := minic.CompileSource(src, "gen")
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			if err := obfus.Apply(m, ob, rand.New(rand.NewSource(seed))); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, ob, err)
			}
			checkCompileEquiv(t, ob, m)
		}
	}
}
