package vm_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/vm"
)

// benchOpts gives the kernels ample budget; wall-clock per executed step is
// what the benchmark measures, so both engines run the same step counts.
var benchOpts = interp.Options{MaxSteps: 2_000_000_000}

func benchModules(b *testing.B) map[string]*ir.Module {
	mods := make(map[string]*ir.Module)
	for _, p := range dataset.BenchGame() {
		m, err := minic.CompileSource(p.Source, p.Name)
		if err != nil {
			b.Fatalf("%s: %v", p.Name, err)
		}
		mods[p.Name] = m
	}
	return mods
}

// steps/op is reported so BENCH_interp.json captures throughput
// (steps per second = steps/op ÷ ns/op × 1e9) alongside raw latency.
func reportSteps(b *testing.B, steps int64) {
	b.ReportMetric(float64(steps), "steps/op")
}

// BenchmarkInterp measures the tree-walking interpreter on every
// Benchmark-Game kernel (the Figure-13 workload).
func BenchmarkInterp(b *testing.B) {
	for name, m := range benchModules(b) {
		b.Run(name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := interp.Run(m, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			reportSteps(b, steps)
		})
	}
}

// BenchmarkVM measures the compiled bytecode engine on the same kernels,
// compiling once and reusing the Program — the intended usage for repeated
// execution (speedup game, serving).
func BenchmarkVM(b *testing.B) {
	for name, m := range benchModules(b) {
		b.Run(name, func(b *testing.B) {
			p, err := vm.Compile(m)
			if err != nil {
				b.Fatal(err)
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := p.Run(benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
			reportSteps(b, steps)
		})
	}
}

// BenchmarkVMCompile isolates the bytecode compiler itself, so the
// fixed cost of Compile-per-Run usage (the Engine interface path) is
// visible next to the execution numbers.
func BenchmarkVMCompile(b *testing.B) {
	for name, m := range benchModules(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vm.Compile(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
