package vm

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// Engine is the compiled bytecode engine, registered as "vm". It compiles
// the module on every Run; callers that execute the same module many times
// (benchmarks, the speedup game) should Compile once and reuse the Program.
type Engine struct{}

// Name implements interp.Engine.
func (Engine) Name() string { return "vm" }

// Run implements interp.Engine: compile, then execute @main.
func (Engine) Run(m *ir.Module, opts interp.Options) (*interp.Result, error) {
	p, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return p.Run(opts)
}

// Run compiles and executes m in one shot, like interp.Run.
func Run(m *ir.Module, opts interp.Options) (*interp.Result, error) {
	return Engine{}.Run(m, opts)
}

func init() { interp.RegisterEngine(Engine{}) }

// BrokenEngine returns an engine with a deliberately miscompiled bytecode
// op — every integer add executes as a subtract. It exists so the
// differential harness can prove it detects (and shrinks) real codegen
// bugs; it is never registered in the engine registry.
func BrokenEngine() interp.Engine { return brokenEngine{} }

type brokenEngine struct{}

func (brokenEngine) Name() string { return "vm-broken" }

func (brokenEngine) Run(m *ir.Module, opts interp.Options) (*interp.Result, error) {
	p, err := Compile(m)
	if err != nil {
		return nil, err
	}
	seen := map[*funcCode]bool{}
	for _, fc := range append(p.funcs, p.entry) {
		if fc == nil || seen[fc] {
			continue
		}
		seen[fc] = true
		for i := range fc.code {
			if fc.code[i].op == opAdd {
				fc.code[i].op = opSub
			}
		}
	}
	return p.Run(opts)
}
