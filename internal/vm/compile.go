package vm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/ir"
)

// Compile lowers every function of m into bytecode. The module is flattened
// first (see ir.Flatten); callers holding a cached flat view should use
// CompileFlat directly and skip the re-flatten.
func Compile(m *ir.Module) (*Program, error) {
	return CompileFlat(ir.Flatten(m))
}

// CompileFlat lowers a flattened module into bytecode. The flat view's
// operand spans map directly onto register operands, so compilation runs
// over dense index tables — no per-function map[*ir.Instr]int32 slot table,
// no pointer-keyed global or callee lookups. The Program keeps a reference
// to the underlying module only for global initialization and diagnostics;
// the view and module may be shared concurrently afterwards as long as
// nothing mutates them.
func CompileFlat(fl *ir.Flat) (*Program, error) {
	p := &Program{mod: fl.Mod, main: -1}

	// Globals land at compile-time-known addresses because the machine
	// allocates them exactly like interp.NewMachine: bump pointer from 16,
	// module order, 8-byte aligned. exec.go re-derives the same addresses
	// at machine init. Rows appended by Flatten for globals unknown to the
	// module get address -1 and trap on use.
	gaddr := make([]int64, len(fl.Globals))
	sp := int64(16)
	for i := range fl.Globals {
		if !fl.Globals[i].Known {
			gaddr[i] = -1
			continue
		}
		size := (int64(fl.Types[fl.Globals[i].Elem].Size()) + 7) &^ 7
		gaddr[i] = sp
		sp += size
	}

	// defIdx maps flat function index -> Program func index; -1 for
	// declarations (including the trailing foreign-callee rows).
	defIdx := make([]int32, len(fl.Funcs))
	for i := range fl.Funcs {
		if fl.Funcs[i].IsDecl() {
			defIdx[i] = -1
			continue
		}
		defIdx[i] = int32(len(p.funcs))
		p.funcs = append(p.funcs, nil) // reserve the index before bodies compile
	}
	for i := range fl.Funcs {
		if defIdx[i] < 0 {
			continue
		}
		fc, err := compileFunc(fl, int32(i), defIdx, gaddr, false)
		if err != nil {
			return nil, err
		}
		p.funcs[defIdx[i]] = fc
	}
	if fl.MainIdx >= 0 {
		mi := fl.MainIdx
		switch {
		case defIdx[mi] < 0:
			p.mainDecl = true
		case fl.Funcs[mi].NumParams() == 0:
			p.main = defIdx[mi]
			p.entry = p.funcs[p.main]
		default:
			// The top-level call passes no arguments, so any parameter use
			// must trap "missing argument" — recursive calls to main from
			// inside the program still use the normal variant.
			p.main = defIdx[mi]
			fc, err := compileFunc(fl, mi, defIdx, gaddr, true)
			if err != nil {
				return nil, err
			}
			p.entry = fc
		}
	}
	return p, nil
}

type fnCompiler struct {
	fl     *ir.Flat
	f      *ir.FlatFunc
	fc     *funcCode
	defIdx []int32
	gaddr  []int64
	noArgs bool // entry-variant: every parameter use traps "missing argument"

	slots  []int32 // frame slot per instruction, indexed by i - f.Ins0; -1 = no result
	cpool  map[ckey]int32
	temp   int32 // phi-cycle scratch slot
	nconst int32

	blockStart []int32 // code offset per block, indexed by b - f.Blk0
	fixups     []fixup
	edgePC     map[edgeKey]int32
	msgIdx     map[string]int32
}

// ckey identifies a constant frame slot by payload. Floats key on their bit
// pattern so +0.0 and -0.0 (and distinct NaNs) stay distinct.
type ckey struct {
	i int64
	f uint64
}

// edgeKey is a (pred, succ) pair of module-wide block indices.
type edgeKey struct{ pred, succ int32 }

// fixup is a branch operand awaiting edge resolution: after all blocks and
// edge stubs are emitted, the named field of code[pc] is patched with the
// entry point of the (pred, succ) edge.
type fixup struct {
	pc    int32
	field uint8 // 0 = dst, 1 = b, 2 = swPCs[swIdx]
	swIdx int32
	pred  int32
	succ  int32
}

func compileFunc(fl *ir.Flat, fi int32, defIdx []int32, gaddr []int64, noArgs bool) (*funcCode, error) {
	f := &fl.Funcs[fi]
	c := &fnCompiler{
		fl:     fl,
		f:      f,
		fc:     &funcCode{name: f.Name, nparams: f.NumParams()},
		defIdx: defIdx,
		gaddr:  gaddr,
		noArgs: noArgs,
		slots:  make([]int32, f.Ins1-f.Ins0),
		cpool:  make(map[ckey]int32),
		edgePC: make(map[edgeKey]int32),
		msgIdx: make(map[string]int32),
	}

	// Slot assignment: params, then every value-producing instruction, then
	// one scratch slot for phi-cycle breaking, then the constant region.
	next := int32(f.NumParams())
	for i := f.Ins0; i < f.Ins1; i++ {
		if fl.HasResult(i) {
			c.slots[i-f.Ins0] = next
			next++
		} else {
			c.slots[i-f.Ins0] = -1
		}
	}
	c.temp = next
	c.fc.constBase = int(next) + 1

	c.blockStart = make([]int32, f.Blk1-f.Blk0)
	for b := f.Blk0; b < f.Blk1; b++ {
		c.blockStart[b-f.Blk0] = int32(len(c.fc.code))
		c.compileBlock(b)
	}
	c.resolveEdges()
	c.patch()

	c.fc.frameSize = c.fc.constBase + len(c.fc.consts)
	if c.fc.frameSize > math.MaxInt32/2 {
		return nil, fmt.Errorf("vm: function @%s needs %d frame slots", f.Name, c.fc.frameSize)
	}
	return c.fc, nil
}

// constSlot interns v in the constant pool and returns its frame slot.
func (c *fnCompiler) constSlot(v val) int32 {
	k := ckey{i: v.i, f: math.Float64bits(v.f)}
	if s, ok := c.cpool[k]; ok {
		return s
	}
	s := int32(c.fc.constBase) + c.nconst
	c.cpool[k] = s
	c.nconst++
	c.fc.consts = append(c.fc.consts, v)
	return s
}

// slotOf resolves a value operand to a frame slot. A non-empty second
// return is the trap message the interpreter would raise when evaluating
// this operand; the caller compiles the whole instruction to opTrap so the
// trap still fires at the same execution point.
func (c *fnCompiler) slotOf(a ir.Operand) (int32, string) {
	fl := c.fl
	switch a.Kind {
	case ir.OperConst:
		k := &fl.Consts[a.Idx]
		if fl.Types[k.Ty].IsFloat() {
			return c.constSlot(val{f: k.F}), ""
		}
		return c.constSlot(val{i: k.I}), ""
	case ir.OperParam:
		if c.noArgs || a.Idx < c.f.Par0 || a.Idx >= c.f.Par1 {
			return 0, "missing argument " + fl.ParamNames[a.Idx]
		}
		return a.Idx - c.f.Par0, ""
	case ir.OperInstr:
		if a.Idx >= c.f.Ins0 && a.Idx < c.f.Ins1 {
			if s := c.slots[a.Idx-c.f.Ins0]; s >= 0 {
				return s, ""
			}
		}
		return 0, "use of undefined value %t" + strconv.Itoa(int(fl.Instrs[a.Idx].ID)) + " in @" + c.f.Name
	case ir.OperGlobal:
		if addr := c.gaddr[a.Idx]; addr >= 0 {
			return c.constSlot(val{i: addr}), ""
		}
		return 0, "use of unknown global @" + fl.Globals[a.Idx].G.Name + " in @" + c.f.Name
	case ir.OperFunc:
		return 0, "function pointers are not supported"
	case ir.OperBadInstr:
		return 0, "use of undefined value " + fl.Strings[a.Idx] + " in @" + c.f.Name
	case ir.OperBadParam:
		return 0, "missing argument " + fl.Strings[a.Idx]
	}
	return 0, "unknown value kind"
}

// operandType returns the IR type of an operand. It is only called for
// operands slotOf resolved, which excludes the Bad/Func/Unknown kinds.
func (c *fnCompiler) operandType(a ir.Operand) *ir.Type {
	fl := c.fl
	switch a.Kind {
	case ir.OperConst:
		return fl.Types[fl.Consts[a.Idx].Ty]
	case ir.OperParam:
		return fl.Types[fl.ParamTypes[a.Idx]]
	case ir.OperGlobal:
		return fl.Globals[a.Idx].G.Type()
	default:
		return fl.Types[fl.Instrs[a.Idx].Ty]
	}
}

// operandElem returns the pointee type of a pointer-typed operand (nil when
// the operand is not a pointer), without materializing the pointer type.
func (c *fnCompiler) operandElem(a ir.Operand) *ir.Type {
	fl := c.fl
	switch a.Kind {
	case ir.OperConst:
		return fl.Types[fl.Consts[a.Idx].Ty].Elem
	case ir.OperParam:
		return fl.Types[fl.ParamTypes[a.Idx]].Elem
	case ir.OperGlobal:
		return fl.Types[fl.Globals[a.Idx].Elem]
	default:
		return fl.Types[fl.Instrs[a.Idx].Ty].Elem
	}
}

func (c *fnCompiler) blockLabel(b int32) string {
	return c.fl.Strings[c.fl.Blocks[b].Label]
}

func (c *fnCompiler) trapMsg(msg string) int32 {
	if i, ok := c.msgIdx[msg]; ok {
		return i
	}
	i := int32(len(c.fc.msgs))
	c.msgIdx[msg] = i
	c.fc.msgs = append(c.fc.msgs, msg)
	return i
}

func (c *fnCompiler) emit(in inst) int32 {
	pc := int32(len(c.fc.code))
	c.fc.code = append(c.fc.code, in)
	return pc
}

func (c *fnCompiler) emitTrap(msg string, cost uint8) {
	c.emit(inst{op: opTrap, cost: cost, a: c.trapMsg(msg)})
}

// branchTo records a pending edge target to be patched after stubs exist.
func (c *fnCompiler) branchTo(pc int32, field uint8, swIdx int32, pred, succ int32) {
	c.fixups = append(c.fixups, fixup{pc: pc, field: field, swIdx: swIdx, pred: pred, succ: succ})
}

// shOf returns the sign-extension shift reproducing interp's truncInt for
// results of type t: 64 - bits for sub-64-bit integers, else 0.
func shOf(t *ir.Type) uint8 {
	if t.IsInt() && t.Bits < 64 {
		return uint8(64 - t.Bits)
	}
	return 0
}

func (c *fnCompiler) compileBlock(b int32) {
	blk := &c.fl.Blocks[b]
	for i := c.fl.FirstNonPhi(b); i < blk.Ins1; i++ { // phis compile into edge stubs
		c.compileInstr(b, i)
	}
	if !c.fl.BlockHasTerm(b) {
		c.emitTrap("block "+c.blockLabel(b)+" fell through without terminator", 0)
	}
}

// operands resolves value operands to slots, compiling the instruction to
// a trap (and reporting false) if any operand cannot be evaluated — the
// same point at which the interpreter would trap.
func (c *fnCompiler) operands(args []ir.Operand) ([]int32, bool) {
	slots := make([]int32, len(args))
	for i, a := range args {
		s, msg := c.slotOf(a)
		if msg != "" {
			c.emitTrap(msg, 1)
			return nil, false
		}
		slots[i] = s
	}
	return slots, true
}

func (c *fnCompiler) compileInstr(b, i int32) {
	fl := c.fl
	irOp := fl.Op(i)
	row := &fl.Instrs[i]
	args := fl.Args(i)
	dst := c.slots[i-c.f.Ins0]

	switch {
	case irOp.IsIntBinary():
		s, ok := c.operands(args[:2])
		if !ok {
			return
		}
		c.emit(inst{op: opAdd + op(irOp-ir.OpAdd), cost: 1, sh: shOf(fl.Types[row.Ty]), dst: dst, a: s[0], b: s[1]})
		return
	case irOp.IsFloatBinary():
		s, ok := c.operands(args[:2])
		if !ok {
			return
		}
		c.emit(inst{op: opFAdd + op(irOp-ir.OpFAdd), cost: 1, dst: dst, a: s[0], b: s[1]})
		return
	}

	switch irOp {
	case ir.OpRet:
		if len(args) == 0 {
			c.emit(inst{op: opRetVoid, cost: 1})
			return
		}
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opRet, cost: 1, a: s[0]})

	case ir.OpBr:
		blocks := fl.InstrBlockArgs(i)
		pc := c.emit(inst{op: opJmp, cost: 1})
		c.branchTo(pc, 0, 0, b, blocks[0])

	case ir.OpCondBr:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		blocks := fl.InstrBlockArgs(i)
		pc := c.emit(inst{op: opCondBr, cost: 1, a: s[0]})
		c.branchTo(pc, 0, 0, b, blocks[0])
		c.branchTo(pc, 1, 0, b, blocks[1])

	case ir.OpSwitch:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		blocks := fl.InstrBlockArgs(i)
		swVals := fl.InstrSwitchVals(i)
		base := int32(len(c.fc.swVals))
		pc := c.emit(inst{op: opSwitch, cost: 1, a: s[0], b: base, c: int32(len(swVals))})
		c.branchTo(pc, 0, 0, b, blocks[0]) // default
		for k, sv := range swVals {
			c.fc.swVals = append(c.fc.swVals, sv)
			c.fc.swPCs = append(c.fc.swPCs, 0)
			c.branchTo(pc, 2, base+int32(k), b, blocks[k+1])
		}

	case ir.OpUnreachable:
		c.emitTrap("reached unreachable in @"+c.f.Name, 1)

	case ir.OpFNeg:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opFNeg, cost: 1, dst: dst, a: s[0]})

	case ir.OpAlloca:
		size := fl.Types[row.Aux].Size()
		if size >= 0 && size <= math.MaxInt32 {
			c.emit(inst{op: opAlloca, cost: 1, dst: dst, c: int32(size)})
			return
		}
		pi := int32(len(c.fc.ipool))
		c.fc.ipool = append(c.fc.ipool, int64(size))
		c.emit(inst{op: opAllocaP, cost: 1, dst: dst, c: pi})

	case ir.OpLoad:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		ty := fl.Types[row.Ty]
		c.emit(inst{op: loadOp(ty), cost: 1, dst: dst, a: s[0], c: int32(ty.Size())})

	case ir.OpStore:
		s, ok := c.operands(args[:2])
		if !ok {
			return
		}
		vt := c.operandType(args[0])
		c.emit(inst{op: storeOp(vt), cost: 1, a: s[0], b: s[1], c: int32(vt.Size())})

	case ir.OpGEP:
		c.compileGEP(args, dst)

	case ir.OpICmp:
		s, ok := c.operands(args[:2])
		if !ok {
			return
		}
		c.emit(inst{op: opIEq + op(row.Pred), cost: 1, dst: dst, a: s[0], b: s[1]})

	case ir.OpFCmp:
		s, ok := c.operands(args[:2])
		if !ok {
			return
		}
		c.emit(inst{op: fcmpOp(ir.CmpPred(row.Pred)), cost: 1, dst: dst, a: s[0], b: s[1]})

	case ir.OpSelect:
		s, ok := c.operands(args[:3])
		if !ok {
			return
		}
		base := int32(len(c.fc.extra))
		c.fc.extra = append(c.fc.extra, s[1], s[2])
		c.emit(inst{op: opSelect, cost: 1, dst: dst, a: s[0], b: base})

	case ir.OpCall:
		c.compileCall(row, args, dst)

	case ir.OpTrunc:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		if sh := shOf(fl.Types[row.Ty]); sh != 0 {
			c.emit(inst{op: opTrunc, cost: 1, sh: sh, dst: dst, a: s[0]})
		} else {
			c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})
		}

	case ir.OpZExt:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		// The interpreter masks whenever from.Bits < 64, including the
		// degenerate zext-from-pointer (Bits 0, so the result is 0).
		if from := c.operandType(args[0]); from.Bits < 64 {
			c.emit(inst{op: opZExt, cost: 1, sh: uint8(from.Bits), dst: dst, a: s[0]})
		} else {
			c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})
		}

	case ir.OpFPToSI, ir.OpFPToUI:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opFPToI, cost: 1, sh: shOf(fl.Types[row.Ty]), dst: dst, a: s[0]})

	case ir.OpSIToFP:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opSIToFP, cost: 1, dst: dst, a: s[0]})

	case ir.OpUIToFP:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opUIToFP, cost: 1, dst: dst, a: s[0]})

	// SExt operands are stored sign-extended already; the pointer and float
	// width casts are value-preserving in this memory model.
	case ir.OpSExt, ir.OpFPTrunc, ir.OpFPExt, ir.OpPtrToInt, ir.OpIntToPtr,
		ir.OpBitcast, ir.OpAddrSpaceCast, ir.OpFreeze:
		s, ok := c.operands(args[:1])
		if !ok {
			return
		}
		c.emit(inst{op: opMov, cost: 1, dst: dst, a: s[0]})

	default:
		// The exotic tail (vectors, atomics, exception handling) traps at
		// execution time exactly like the interpreter's default case.
		c.emitTrap("unimplemented opcode "+irOp.String(), 1)
	}
}

func loadOp(t *ir.Type) op {
	switch {
	case t.IsFloat():
		return opLoadF
	case t.IsInt() && t.Bits == 1:
		return opLoad1
	case t.Size() == 1:
		return opLoad8
	case t.Size() == 4:
		return opLoad32
	default:
		return opLoad64
	}
}

func storeOp(t *ir.Type) op {
	switch {
	case t.IsFloat():
		return opStoreF
	case t.Size() == 1:
		return opStore8
	case t.Size() == 4:
		return opStore32
	default:
		return opStore64
	}
}

func fcmpOp(p ir.CmpPred) op {
	switch p {
	case ir.CmpEQ:
		return opFEq
	case ir.CmpNE:
		return opFNe
	case ir.CmpSLT, ir.CmpULT:
		return opFLt
	case ir.CmpSLE, ir.CmpULE:
		return opFLe
	case ir.CmpSGT, ir.CmpUGT:
		return opFGt
	default: // SGE, UGE
		return opFGe
	}
}

// gepStep is one pre-resolved index step of a fast-path GEP: either a
// constant byte offset (struct field) or a scaled dynamic index (array).
type gepStep struct {
	isOff  bool
	off    int64 // struct field offset
	scale  int64 // array element size
	argIdx int   // index into args[2:] for the dynamic case
}

// planGEP walks the element-type chain at compile time. It succeeds only
// when every step is statically decidable: arrays with any index, structs
// with an in-bounds integer-constant index. Everything else — dynamic or
// out-of-range field indices, non-aggregate element types, malformed
// types — reports !ok and the whole instruction compiles to opGEPSlow,
// which re-runs the interpreter's walk (and raises its traps) at run time.
func (c *fnCompiler) planGEP(elem *ir.Type, idxs []ir.Operand) ([]gepStep, bool) {
	if elem == nil {
		return nil, false
	}
	var plan []gepStep
	for i, ix := range idxs {
		switch {
		case elem.IsArray():
			elem = elem.Elem
			if elem == nil {
				return nil, false
			}
			plan = append(plan, gepStep{scale: int64(elem.Size()), argIdx: i})
		case elem.IsStruct():
			if ix.Kind != ir.OperConst {
				return nil, false
			}
			cst := &c.fl.Consts[ix.Idx]
			if c.fl.Types[cst.Ty].IsFloat() {
				return nil, false
			}
			fi := cst.I
			if fi < 0 || int(fi) >= len(elem.Fields) {
				return nil, false
			}
			plan = append(plan, gepStep{isOff: true, off: int64(elem.FieldOffset(int(fi)))})
			elem = elem.Fields[fi]
		default:
			return nil, false
		}
	}
	return plan, true
}

// compileGEP decomposes address computation into scale-add steps that
// accumulate directly into the destination slot (safe: SSA operands are
// defined before the GEP, so the destination never aliases a source).
// Only the first step charges the IR instruction's step.
func (c *fnCompiler) compileGEP(args []ir.Operand, dst int32) {
	s, ok := c.operands(args)
	if !ok {
		return
	}
	elem := c.operandElem(args[0])
	plan, fast := c.planGEP(elem, args[2:])
	if !fast {
		gi := int32(len(c.fc.geps))
		c.fc.geps = append(c.fc.geps, gepRef{elem: elem, n: int32(len(args))})
		base := int32(len(c.fc.extra))
		c.fc.extra = append(c.fc.extra, s...)
		c.emit(inst{op: opGEPSlow, cost: 1, dst: dst, a: base, c: gi})
		return
	}
	c.emitScaleAdd(dst, s[0], s[1], int64(elem.Size()), 1)
	for _, st := range plan {
		if st.isOff {
			c.emitAddImm(dst, dst, st.off, 0)
		} else {
			c.emitScaleAdd(dst, dst, s[2+st.argIdx], st.scale, 0)
		}
	}
}

func (c *fnCompiler) emitScaleAdd(dst, base, idx int32, scale int64, cost uint8) {
	if scale >= 0 && scale <= math.MaxInt32 {
		c.emit(inst{op: opScaleAdd, cost: cost, dst: dst, a: base, b: idx, c: int32(scale)})
		return
	}
	pi := int32(len(c.fc.ipool))
	c.fc.ipool = append(c.fc.ipool, scale)
	c.emit(inst{op: opScaleAddP, cost: cost, dst: dst, a: base, b: idx, c: pi})
}

func (c *fnCompiler) emitAddImm(dst, base int32, off int64, cost uint8) {
	if off >= 0 && off <= math.MaxInt32 {
		c.emit(inst{op: opAddImm, cost: cost, dst: dst, a: base, c: int32(off)})
		return
	}
	pi := int32(len(c.fc.ipool))
	c.fc.ipool = append(c.fc.ipool, off)
	c.emit(inst{op: opAddImmP, cost: cost, dst: dst, a: base, c: pi})
}

func (c *fnCompiler) compileCall(row *ir.FlatInstr, args []ir.Operand, dst int32) {
	s, ok := c.operands(args)
	if !ok {
		return
	}
	base := int32(len(c.fc.extra))
	c.fc.extra = append(c.fc.extra, s...)
	if row.Aux >= 0 { // direct callee (Aux < 0 means builtin, like Callee == nil)
		if idx := c.defIdx[row.Aux]; idx >= 0 {
			c.emit(inst{op: opCall, cost: 1, dst: dst, a: idx, b: base, c: int32(len(s))})
			return
		}
		// interp surfaces this as a plain returned error, not a
		// "trap:"-prefixed panic; opTrapErr preserves that shape.
		c.emit(inst{op: opTrapErr, cost: 1, a: c.trapMsg("call to declaration @" + c.fl.Funcs[row.Aux].Name)})
		return
	}
	name := c.fl.Strings[-2-row.Aux]
	bi, known := builtinIndex[name]
	if !known {
		c.emitTrap("unknown builtin "+name, 1)
		return
	}
	c.emit(inst{op: opCallB, cost: 1, dst: dst, a: bi, b: base, c: int32(len(s))})
}

// resolveEdges materializes one entry point per CFG edge: the successor's
// start when it has no phis, otherwise an out-of-line stub holding the
// edge's scheduled phi moves (cost 0), the bulk step charge, and the jump
// into the block body. Scheduling treats the moves as a parallel copy —
// every source is read before any conflicting destination is written —
// breaking cycles through the function's scratch slot, which matches the
// interpreter's evaluate-all-then-assign phi semantics with at most one
// extra (free) move per cycle.
func (c *fnCompiler) resolveEdges() {
	for _, fx := range c.fixups {
		key := edgeKey{fx.pred, fx.succ}
		if _, done := c.edgePC[key]; done {
			continue
		}
		phiEnd := c.fl.FirstNonPhi(fx.succ)
		if phiEnd == c.fl.Blocks[fx.succ].Ins0 {
			c.edgePC[key] = c.blockStart[fx.succ-c.f.Blk0]
			continue
		}
		c.edgePC[key] = c.emitEdgeStub(fx.pred, fx.succ, phiEnd)
	}
}

type move struct{ dst, src int32 }

// phiIncoming returns the incoming operand of phi p for predecessor pred.
func (c *fnCompiler) phiIncoming(p, pred int32) (ir.Operand, bool) {
	args := c.fl.Args(p)
	for k, blk := range c.fl.InstrBlockArgs(p) {
		if blk == pred && k < len(args) {
			return args[k], true
		}
	}
	return ir.Operand{}, false
}

func (c *fnCompiler) emitEdgeStub(pred, succ, phiEnd int32) int32 {
	start := int32(len(c.fc.code))
	phi0 := c.fl.Blocks[succ].Ins0
	moves := make([]move, 0, phiEnd-phi0)
	for p := phi0; p < phiEnd; p++ {
		inc, ok := c.phiIncoming(p, pred)
		if !ok {
			c.emitTrap("phi has no incoming value for edge "+c.blockLabel(pred)+"->"+c.blockLabel(succ), 0)
			return start
		}
		src, msg := c.slotOf(inc)
		if msg != "" {
			c.emitTrap(msg, 0)
			return start
		}
		d := c.slots[p-c.f.Ins0]
		if d < 0 {
			d = 0 // a result-less phi, kept only for out-of-contract IR parity
		}
		if d != src {
			moves = append(moves, move{dst: d, src: src})
		}
	}
	c.scheduleMoves(moves)
	c.emit(inst{op: opStepN, c: phiEnd - phi0})
	c.emit(inst{op: opJmp, dst: c.blockStart[succ-c.f.Blk0]})
	return start
}

// scheduleMoves sequentializes a parallel copy. Destinations are distinct
// (one per phi); sources may repeat. A move is safe once no pending move
// still reads its destination; cycles are broken by parking one
// destination's current value in the scratch slot.
func (c *fnCompiler) scheduleMoves(pending []move) {
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			mv := pending[i]
			blocked := false
			for j := range pending {
				if j != i && pending[j].src == mv.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			c.emit(inst{op: opMov, dst: mv.dst, a: mv.src})
			pending = append(pending[:i], pending[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			d := pending[0].dst
			c.emit(inst{op: opMov, dst: c.temp, a: d})
			for j := range pending {
				if pending[j].src == d {
					pending[j].src = c.temp
				}
			}
		}
	}
}

func (c *fnCompiler) patch() {
	for _, fx := range c.fixups {
		target := c.edgePC[edgeKey{fx.pred, fx.succ}]
		switch fx.field {
		case 0:
			c.fc.code[fx.pc].dst = target
		case 1:
			c.fc.code[fx.pc].b = target
		default:
			c.fc.swPCs[fx.swIdx] = target
		}
	}
}
