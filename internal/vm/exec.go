package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

// errTrap mirrors the interpreter's trap panic; Run recovers it into a
// "vm: trap: ..." error. Conditions the interpreter surfaces as plain
// returned errors (alloc failures, declaration calls) stay plain errors
// here too.
type errTrap struct{ msg string }

func (e errTrap) Error() string { return e.msg }

// machine executes one compiled Program once. Frames live on a single
// high-water val stack (regs); the byte arena and all limits replicate
// interp.Machine exactly.
type machine struct {
	prog *Program
	mem  []byte
	sp   int
	opts interp.Options

	inI, inF  int
	out       strings.Builder
	steps     int64
	maxSteps  int64
	callDepth int

	regs []val
}

func newMachine(p *Program, opts interp.Options) (*machine, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxMem == 0 {
		opts.MaxMem = 64 << 20
	}
	m := &machine{
		prog:     p,
		mem:      make([]byte, 1<<16),
		sp:       16, // address 0 stays invalid (null)
		opts:     opts,
		maxSteps: opts.MaxSteps,
	}
	for _, g := range p.mod.Globals {
		addr, err := m.alloc(g.Elem.Size())
		if err != nil {
			return nil, err
		}
		m.initGlobal(g, addr)
	}
	return m, nil
}

func (m *machine) initGlobal(g *ir.Global, addr int64) {
	elem := g.Elem
	switch {
	case elem.IsArray():
		sz := elem.Elem.Size()
		for i, v := range g.InitI {
			m.storeScalar(addr+int64(i*sz), elem.Elem, val{i: v})
		}
		for i, v := range g.InitF {
			m.storeScalar(addr+int64(i*sz), elem.Elem, val{f: v})
		}
	default:
		if len(g.InitI) > 0 {
			m.storeScalar(addr, elem, val{i: g.InitI[0]})
		}
		if len(g.InitF) > 0 {
			m.storeScalar(addr, elem, val{f: g.InitF[0]})
		}
	}
}

func (m *machine) alloc(size int) (int64, error) {
	if size < 0 {
		return 0, errors.New("negative allocation")
	}
	size = (size + 7) &^ 7
	if m.sp+size > m.opts.MaxMem {
		return 0, errors.New("out of memory")
	}
	if need := m.sp + size; need > len(m.mem) {
		newLen := len(m.mem)
		for newLen < need {
			newLen *= 2
		}
		if newLen > m.opts.MaxMem {
			newLen = m.opts.MaxMem
		}
		grown := make([]byte, newLen)
		copy(grown, m.mem)
		m.mem = grown
	}
	addr := int64(m.sp)
	m.sp += size
	return addr, nil
}

func (m *machine) checkAddr(addr int64, size int) {
	if addr < 16 || addr+int64(size) > int64(m.sp) || addr+int64(size) > int64(len(m.mem)) {
		panic(errTrap{fmt.Sprintf("invalid memory access at %d (size %d, break %d)", addr, size, m.sp)})
	}
}

func (m *machine) storeScalar(addr int64, t *ir.Type, v val) {
	sz := t.Size()
	m.checkAddr(addr, sz)
	switch {
	case t.IsFloat():
		binary.LittleEndian.PutUint64(m.mem[addr:], math.Float64bits(v.f))
	case sz == 1:
		m.mem[addr] = byte(v.i)
	case sz == 4:
		binary.LittleEndian.PutUint32(m.mem[addr:], uint32(v.i))
	default:
		binary.LittleEndian.PutUint64(m.mem[addr:], uint64(v.i))
	}
}

// Run executes the program's main with a fresh machine, mirroring
// interp.Run: plain errors for machine-construction and declaration
// failures, "vm: trap: ..." for everything the interpreter panics on, and
// a bit-identical Result on success.
func (p *Program) Run(opts interp.Options) (*interp.Result, error) {
	m, err := newMachine(p, opts)
	if err != nil {
		return nil, err
	}
	if p.mainDecl {
		return nil, errors.New("call to declaration @main")
	}
	if p.entry == nil {
		return nil, fmt.Errorf("vm: module has no main")
	}
	return m.runEntry(p.entry)
}

func (m *machine) runEntry(entry *funcCode) (res *interp.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(errTrap); ok {
				err = fmt.Errorf("vm: trap: %s", t.msg)
				return
			}
			panic(r)
		}
	}()
	m.regs = make([]val, entry.frameSize+256)
	v, err := m.exec(entry, 0)
	if err != nil {
		return nil, err
	}
	return &interp.Result{Ret: v.i, Output: m.out.String(), Steps: m.steps}, nil
}

func (m *machine) ensureRegs(n int) {
	if n <= len(m.regs) {
		return
	}
	newLen := 2 * len(m.regs)
	if newLen < n {
		newLen = n
	}
	grown := make([]val, newLen)
	copy(grown, m.regs)
	m.regs = grown
}

func (m *machine) budget() {
	if m.steps > m.maxSteps {
		panic(errTrap{"instruction budget exhausted (" + strconv.FormatInt(m.maxSteps, 10) + ")"})
	}
}

// exec runs one function activation whose frame starts at base. The caller
// has already written the argument slots; exec copies the constant region
// and dispatches until a return or error.
func (m *machine) exec(fc *funcCode, base int) (val, error) {
	m.callDepth++
	if m.callDepth > 10000 {
		panic(errTrap{"call stack overflow"})
	}
	savedSp := m.sp
	defer func() {
		m.sp = savedSp // free this frame's allocas
		m.callDepth--
	}()

	rs := m.regs[base : base+fc.frameSize]
	copy(rs[fc.constBase:], fc.consts)
	code := fc.code
	pc := 0
	for {
		in := code[pc]
		pc++
		if in.cost != 0 {
			m.steps++
			m.budget()
		}
		switch in.op {
		case opMov:
			rs[in.dst] = rs[in.a]

		// Control flow.
		case opJmp:
			pc = int(in.dst)
		case opCondBr:
			if rs[in.a].i != 0 {
				pc = int(in.dst)
			} else {
				pc = int(in.b)
			}
		case opSwitch:
			v := rs[in.a].i
			pc = int(in.dst)
			for k := in.b; k < in.b+in.c; k++ {
				if fc.swVals[k] == v {
					pc = int(fc.swPCs[k])
					break
				}
			}
		case opRet:
			return rs[in.a], nil
		case opRetVoid:
			return val{}, nil
		case opStepN:
			m.steps += int64(in.c)
			m.budget()
		case opTrap:
			panic(errTrap{fc.msgs[in.a]})
		case opTrapErr:
			return val{}, errors.New(fc.msgs[in.a])

		// Integer arithmetic. sh re-creates truncInt: results of sub-64-bit
		// types are stored sign-extended.
		case opAdd:
			r := rs[in.a].i + rs[in.b].i
			rs[in.dst].i = r << in.sh >> in.sh
		case opSub:
			r := rs[in.a].i - rs[in.b].i
			rs[in.dst].i = r << in.sh >> in.sh
		case opMul:
			r := rs[in.a].i * rs[in.b].i
			rs[in.dst].i = r << in.sh >> in.sh
		case opSDiv:
			a, b := rs[in.a].i, rs[in.b].i
			if b == 0 {
				panic(errTrap{"division by zero in @" + fc.name})
			}
			r := a
			if a != math.MinInt64 || b != -1 {
				r = a / b
			}
			rs[in.dst].i = r << in.sh >> in.sh
		case opUDiv:
			b := rs[in.b].i
			if b == 0 {
				panic(errTrap{"division by zero in @" + fc.name})
			}
			r := int64(uint64(rs[in.a].i) / uint64(b))
			rs[in.dst].i = r << in.sh >> in.sh
		case opSRem:
			a, b := rs[in.a].i, rs[in.b].i
			if b == 0 {
				panic(errTrap{"division by zero in @" + fc.name})
			}
			var r int64
			if a != math.MinInt64 || b != -1 {
				r = a % b
			}
			rs[in.dst].i = r << in.sh >> in.sh
		case opURem:
			b := rs[in.b].i
			if b == 0 {
				panic(errTrap{"division by zero in @" + fc.name})
			}
			r := int64(uint64(rs[in.a].i) % uint64(b))
			rs[in.dst].i = r << in.sh >> in.sh
		case opShl:
			r := rs[in.a].i << (uint64(rs[in.b].i) & 63)
			rs[in.dst].i = r << in.sh >> in.sh
		case opLShr:
			mask := ^uint64(0) >> in.sh
			r := int64((uint64(rs[in.a].i) & mask) >> (uint64(rs[in.b].i) & 63))
			rs[in.dst].i = r << in.sh >> in.sh
		case opAShr:
			r := rs[in.a].i >> (uint64(rs[in.b].i) & 63)
			rs[in.dst].i = r << in.sh >> in.sh
		case opAnd:
			rs[in.dst].i = rs[in.a].i & rs[in.b].i
		case opOr:
			rs[in.dst].i = rs[in.a].i | rs[in.b].i
		case opXor:
			r := rs[in.a].i ^ rs[in.b].i
			rs[in.dst].i = r << in.sh >> in.sh

		// Float arithmetic.
		case opFAdd:
			rs[in.dst].f = rs[in.a].f + rs[in.b].f
		case opFSub:
			rs[in.dst].f = rs[in.a].f - rs[in.b].f
		case opFMul:
			rs[in.dst].f = rs[in.a].f * rs[in.b].f
		case opFDiv:
			rs[in.dst].f = rs[in.a].f / rs[in.b].f
		case opFRem:
			rs[in.dst].f = math.Mod(rs[in.a].f, rs[in.b].f)
		case opFNeg:
			rs[in.dst].f = -rs[in.a].f

		// Comparisons.
		case opIEq:
			rs[in.dst].i = b2i(rs[in.a].i == rs[in.b].i)
		case opINe:
			rs[in.dst].i = b2i(rs[in.a].i != rs[in.b].i)
		case opISlt:
			rs[in.dst].i = b2i(rs[in.a].i < rs[in.b].i)
		case opISle:
			rs[in.dst].i = b2i(rs[in.a].i <= rs[in.b].i)
		case opISgt:
			rs[in.dst].i = b2i(rs[in.a].i > rs[in.b].i)
		case opISge:
			rs[in.dst].i = b2i(rs[in.a].i >= rs[in.b].i)
		case opIUlt:
			rs[in.dst].i = b2i(uint64(rs[in.a].i) < uint64(rs[in.b].i))
		case opIUle:
			rs[in.dst].i = b2i(uint64(rs[in.a].i) <= uint64(rs[in.b].i))
		case opIUgt:
			rs[in.dst].i = b2i(uint64(rs[in.a].i) > uint64(rs[in.b].i))
		case opIUge:
			rs[in.dst].i = b2i(uint64(rs[in.a].i) >= uint64(rs[in.b].i))
		case opFEq:
			rs[in.dst].i = b2i(rs[in.a].f == rs[in.b].f)
		case opFNe:
			rs[in.dst].i = b2i(rs[in.a].f != rs[in.b].f)
		case opFLt:
			rs[in.dst].i = b2i(rs[in.a].f < rs[in.b].f)
		case opFLe:
			rs[in.dst].i = b2i(rs[in.a].f <= rs[in.b].f)
		case opFGt:
			rs[in.dst].i = b2i(rs[in.a].f > rs[in.b].f)
		case opFGe:
			rs[in.dst].i = b2i(rs[in.a].f >= rs[in.b].f)

		// Memory.
		case opAlloca:
			addr, err := m.alloc(int(in.c))
			if err != nil {
				return val{}, err
			}
			rs[in.dst].i = addr
		case opAllocaP:
			addr, err := m.alloc(int(fc.ipool[in.c]))
			if err != nil {
				return val{}, err
			}
			rs[in.dst].i = addr
		case opLoad1:
			addr := rs[in.a].i
			m.checkAddr(addr, int(in.c))
			rs[in.dst].i = int64(int8(m.mem[addr])) & 1
		case opLoad8:
			addr := rs[in.a].i
			m.checkAddr(addr, int(in.c))
			rs[in.dst].i = int64(int8(m.mem[addr]))
		case opLoad32:
			addr := rs[in.a].i
			m.checkAddr(addr, int(in.c))
			rs[in.dst].i = int64(int32(binary.LittleEndian.Uint32(m.mem[addr:])))
		case opLoad64:
			addr := rs[in.a].i
			m.checkAddr(addr, int(in.c))
			rs[in.dst].i = int64(binary.LittleEndian.Uint64(m.mem[addr:]))
		case opLoadF:
			addr := rs[in.a].i
			m.checkAddr(addr, int(in.c))
			rs[in.dst].f = math.Float64frombits(binary.LittleEndian.Uint64(m.mem[addr:]))
		case opStore8:
			addr := rs[in.b].i
			m.checkAddr(addr, int(in.c))
			m.mem[addr] = byte(rs[in.a].i)
		case opStore32:
			addr := rs[in.b].i
			m.checkAddr(addr, int(in.c))
			binary.LittleEndian.PutUint32(m.mem[addr:], uint32(rs[in.a].i))
		case opStore64:
			addr := rs[in.b].i
			m.checkAddr(addr, int(in.c))
			binary.LittleEndian.PutUint64(m.mem[addr:], uint64(rs[in.a].i))
		case opStoreF:
			addr := rs[in.b].i
			m.checkAddr(addr, int(in.c))
			binary.LittleEndian.PutUint64(m.mem[addr:], math.Float64bits(rs[in.a].f))

		// Address arithmetic.
		case opScaleAdd:
			rs[in.dst].i = rs[in.a].i + rs[in.b].i*int64(in.c)
		case opScaleAddP:
			rs[in.dst].i = rs[in.a].i + rs[in.b].i*fc.ipool[in.c]
		case opAddImm:
			rs[in.dst].i = rs[in.a].i + int64(in.c)
		case opAddImmP:
			rs[in.dst].i = rs[in.a].i + fc.ipool[in.c]
		case opGEPSlow:
			rs[in.dst].i = m.gepSlow(fc, rs, in)

		// Conversions.
		case opTrunc:
			rs[in.dst].i = rs[in.a].i << in.sh >> in.sh
		case opZExt:
			rs[in.dst].i = rs[in.a].i & (int64(1)<<in.sh - 1)
		case opFPToI:
			r := interp.FPToInt64(rs[in.a].f)
			rs[in.dst].i = r << in.sh >> in.sh
		case opSIToFP:
			rs[in.dst].f = float64(rs[in.a].i)
		case opUIToFP:
			rs[in.dst].f = float64(uint64(rs[in.a].i))

		case opSelect:
			k := in.b
			if rs[in.a].i == 0 {
				k++
			}
			rs[in.dst] = rs[fc.extra[k]]

		case opCall:
			callee := m.prog.funcs[in.a]
			nbase := base + fc.frameSize
			m.ensureRegs(nbase + callee.frameSize)
			args := fc.extra[in.b : in.b+in.c]
			for k, s := range args {
				m.regs[nbase+k] = m.regs[base+int(s)]
			}
			ret, err := m.exec(callee, nbase)
			if err != nil {
				return val{}, err
			}
			// ensureRegs (directly or in nested calls) may have moved the
			// backing array; re-derive our frame before touching it.
			rs = m.regs[base : base+fc.frameSize]
			if in.dst >= 0 {
				rs[in.dst] = ret
			}

		case opCallB:
			args := fc.extra[in.b : in.b+in.c]
			ret, err := m.builtin(in.a, rs, args)
			if err != nil {
				return val{}, err
			}
			if in.dst >= 0 {
				rs[in.dst] = ret
			}

		case opNop:
			// unused; keeps the zero inst harmless

		default:
			panic(errTrap{"vm: bad opcode " + strconv.Itoa(int(in.op))})
		}
	}
}

// gepSlow re-runs the interpreter's GEP walk for the shapes the compiler
// could not pre-resolve (dynamic struct indices, degenerate types),
// including its exact traps.
func (m *machine) gepSlow(fc *funcCode, rs []val, in inst) int64 {
	g := fc.geps[in.c]
	slots := fc.extra[in.a : in.a+g.n]
	elem := g.elem
	addr := rs[slots[0]].i + rs[slots[1]].i*int64(elem.Size())
	for k := 0; k < int(g.n)-2; k++ {
		switch {
		case elem.IsArray():
			elem = elem.Elem
			addr += rs[slots[2+k]].i * int64(elem.Size())
		case elem.IsStruct():
			fi := rs[slots[2+k]].i
			if fi < 0 || int(fi) >= len(elem.Fields) {
				panic(errTrap{"gep struct field index out of range"})
			}
			addr += int64(elem.FieldOffset(int(fi)))
			elem = elem.Fields[fi]
		default:
			panic(errTrap{"gep into non-aggregate"})
		}
	}
	return addr
}

func (m *machine) builtin(which int32, rs []val, args []int32) (val, error) {
	switch which {
	case bPrintI64:
		fmt.Fprintf(&m.out, "%d\n", rs[args[0]].i)
	case bPrintF64:
		fmt.Fprintf(&m.out, "%.6f\n", rs[args[0]].f)
	case bPrintI8:
		m.out.WriteByte(byte(rs[args[0]].i))
	case bPrintStr:
		addr := rs[args[0]].i
		for {
			m.checkAddr(addr, 1)
			ch := m.mem[addr]
			if ch == 0 {
				break
			}
			m.out.WriteByte(ch)
			addr++
		}
	case bInputI64:
		if m.inI < len(m.opts.Input) {
			v := m.opts.Input[m.inI]
			m.inI++
			return val{i: v}, nil
		}
		return val{}, nil
	case bInputF64:
		if m.inF < len(m.opts.FloatInput) {
			v := m.opts.FloatInput[m.inF]
			m.inF++
			return val{f: v}, nil
		}
		return val{}, nil
	case bSqrt:
		return val{f: math.Sqrt(rs[args[0]].f)}, nil
	case bFabs:
		return val{f: math.Abs(rs[args[0]].f)}, nil
	case bSin:
		return val{f: math.Sin(rs[args[0]].f)}, nil
	case bCos:
		return val{f: math.Cos(rs[args[0]].f)}, nil
	case bExp:
		return val{f: math.Exp(rs[args[0]].f)}, nil
	case bLog:
		return val{f: math.Log(rs[args[0]].f)}, nil
	case bFloor:
		return val{f: math.Floor(rs[args[0]].f)}, nil
	case bPow:
		return val{f: math.Pow(rs[args[0]].f, rs[args[1]].f)}, nil
	case bAbsI64:
		v := rs[args[0]].i
		if v < 0 {
			v = -v
		}
		return val{i: v}, nil
	}
	return val{}, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
