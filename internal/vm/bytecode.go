// Package vm is the compiled execution engine for the IR: a compiler that
// lowers ir.Functions into a compact register-based bytecode and a
// dispatch-loop virtual machine that executes it. It reproduces the
// observable semantics of the tree-walking interpreter (internal/interp)
// bit-for-bit — same Result (Ret, Output, Steps), same trap classes and
// messages, same byte-arena memory model — while replacing the
// interpreter's per-operand map[*ir.Instr]Val lookups with flat frame
// arrays indexed by precomputed slots.
//
// # Bytecode format
//
// Each function compiles to a dense []inst. Every operand is a slot: an
// index into the function's flat frame array, whose layout is
//
//	[ params | instruction results | phi-cycle temp | constant pool ]
//
// The constant pool region is memcpy'd into the frame at call entry, so
// constants, global addresses and SSA values are all read with the same
// unconditional frame[slot] access — the dispatch loop never branches on
// operand kind. Branch targets are pre-resolved instruction indices, and
// every CFG edge into a block with phis jumps through an out-of-line edge
// stub holding that edge's scheduled phi moves (see compile.go).
//
// # Step accounting
//
// The interpreter charges one step per executed IR instruction, before
// executing it, and one step per phi on block entry. The VM mirrors this
// exactly: each inst carries a cost flag (1 on the first inst of the group
// an IR instruction compiled to, 0 on helpers such as extra GEP index
// arithmetic or phi moves), and edge stubs charge their phi count in bulk
// with an opStepN inst. Budget traps therefore fire at the same IR
// instruction under any MaxSteps, and completed runs report bit-identical
// Steps.
package vm

import "repro/internal/ir"

// op is a VM opcode. The set is wider than ir.Opcode because opcodes are
// specialized at compile time: comparison predicates, load/store widths and
// cast shapes each get their own dispatch entry, so the hot loop does no
// secondary switching.
type op uint8

const (
	opNop op = iota

	// Control flow. Jump targets are absolute instruction indices.
	opJmp     // pc = dst
	opCondBr  // pc = regs[a].i != 0 ? dst : b
	opSwitch  // linear scan of swVals[b:b+c]; match i -> swPCs[b+i], else dst
	opRet     // return regs[a]
	opRetVoid // return zero val
	opStepN   // steps += c (the phi charge of one edge stub)
	opTrap    // trap with message msgs[a] ("vm: trap: " prefixed, like interp panics)
	opTrapErr // fail with plain error msgs[a] (interp returns these unprefixed,
	// e.g. "call to declaration @f")

	opMov // regs[dst] = regs[a]

	// Integer binary ops: regs[dst].i = regs[a].i OP regs[b].i, with the
	// result sign-extended through sh (64 - result bits; 0 for i64).
	opAdd
	opSub
	opMul
	opSDiv
	opUDiv
	opSRem
	opURem
	opShl
	opLShr // sh doubles as the operand width mask: mask = ^uint64(0) >> sh
	opAShr
	opAnd
	opOr
	opXor

	// Float ops.
	opFAdd
	opFSub
	opFMul
	opFDiv
	opFRem
	opFNeg

	// Integer comparisons, one per predicate (order matches ir.CmpPred).
	opIEq
	opINe
	opISlt
	opISle
	opISgt
	opISge
	opIUlt
	opIUle
	opIUgt
	opIUge

	// Float comparisons (signed/unsigned predicates fold together).
	opFEq
	opFNe
	opFLt
	opFLe
	opFGt
	opFGe

	// Memory. Loads sign-extend like the interpreter's loadScalar; stores
	// truncate like storeScalar. The bounds check (and its trap message)
	// uses the IR type's size in c, which for aggregate-typed accesses is
	// wider than the 8 bytes actually moved — exactly like checkAddr.
	opAlloca  // regs[dst].i = alloc(c)
	opAllocaP // same, size in ipool[c] (> MaxInt32 allocas)
	opLoad1   // i1: byte, sign-extend, & 1
	opLoad8   // i8: sign-extend
	opLoad32  // i32: sign-extend
	opLoad64  // i64, pointers and aggregates
	opLoadF   // f64
	opStore8  // store byte(regs[a].i) at regs[b].i
	opStore32 // store uint32 at regs[b].i
	opStore64 // store uint64 at regs[b].i
	opStoreF  // store float bits at regs[b].i

	// Address arithmetic (GEP decomposes into these when every struct
	// index is a constant; otherwise opGEPSlow interprets the whole
	// instruction, because a dynamic field index decides the element type
	// of every later step at run time).
	opScaleAdd  // regs[dst].i = regs[a].i + regs[b].i * c
	opScaleAddP // same, scale in ipool[c] (> MaxInt32 element sizes)
	opAddImm    // regs[dst].i = regs[a].i + c
	opAddImmP   // same, offset in ipool[c]
	opGEPSlow   // interpret geps[c] with operand slots extra[a:]

	// Conversions.
	opTrunc  // regs[dst].i = regs[a].i << sh >> sh
	opZExt   // regs[dst].i = regs[a].i & ((1 << sh) - 1); sh = source bits
	opFPToI  // regs[dst].i = truncSh(FPToInt64(regs[a].f)) — fptosi and fptoui
	opSIToFP // regs[dst].f = float64(regs[a].i)
	opUIToFP // regs[dst].f = float64(uint64(regs[a].i))

	opSelect // regs[dst] = regs[extra[b + (regs[a].i == 0)]]

	opCall  // callee funcs[a], arg slots extra[b:b+c], result into dst (dst < 0: void)
	opCallB // builtin a, arg slots extra[b:b+c], result into dst (dst < 0: void)
)

// inst is one bytecode instruction: 20 bytes, laid out densely so the
// dispatch loop streams through cache lines.
type inst struct {
	op   op
	cost uint8 // IR steps charged before executing this inst (0 or 1)
	sh   uint8 // width shift / source bits, per-op (see opcode comments)
	dst  int32 // result slot, or jump target for control ops; -1 = none
	a    int32
	b    int32
	c    int32
}

// Builtin indices for opCallB (operand a).
const (
	bPrintI64 = iota
	bPrintF64
	bPrintI8
	bPrintStr
	bInputI64
	bInputF64
	bSqrt
	bFabs
	bSin
	bCos
	bExp
	bLog
	bFloor
	bPow
	bAbsI64
)

var builtinIndex = map[string]int32{
	"print_i64": bPrintI64, "print_f64": bPrintF64, "print_i8": bPrintI8,
	"print_str": bPrintStr, "input_i64": bInputI64, "input_f64": bInputF64,
	"sqrt": bSqrt, "fabs": bFabs, "sin": bSin, "cos": bCos, "exp": bExp,
	"log": bLog, "floor": bFloor, "pow": bPow, "abs_i64": bAbsI64,
}

// val is one frame slot: integers and pointers in i, floats in f, exactly
// like interp.Val.
type val struct {
	i int64
	f float64
}

// gepRef is the compile-time residue of one slow-path GEP: the element type
// of the base pointer and the instruction's operand count. gepSlow re-walks
// the type chain from these plus the operand slots in extra, so no pointer
// back into the IR instruction is needed.
type gepRef struct {
	elem *ir.Type
	n    int32
}

// funcCode is one compiled function.
type funcCode struct {
	name      string
	code      []inst
	nparams   int
	frameSize int   // total slots, constant region included
	constBase int   // offset of the constant region within the frame
	consts    []val // copied into frame[constBase:] at call entry

	extra  []int32  // call-argument, select and slow-GEP slot pool
	swVals []int64  // switch case values
	swPCs  []int32  // switch case targets, parallel to swVals
	ipool  []int64  // immediates too wide for an inst field
	msgs   []string // trap messages
	geps   []gepRef // GEPs interpreted by opGEPSlow
}

// Program is a compiled module, reusable across runs: Compile once, then
// Run any number of times (each Run gets a fresh memory arena and output).
type Program struct {
	mod   *ir.Module
	funcs []*funcCode
	main  int32 // index into funcs, -1 if main is missing or a declaration
	// entry is the funcCode executed for the top-level main call. When main
	// has parameters it is a variant compiled with every parameter use
	// trapping "missing argument", because the top-level call passes no
	// arguments (interp.RunMain calls main with nil args and traps lazily
	// on first use, not eagerly).
	entry    *funcCode
	mainDecl bool // main exists but is a declaration: Run fails like interp
}
