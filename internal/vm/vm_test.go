package vm_test

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
	"repro/internal/progen"
	"repro/internal/vm"
)

// normTrap strips the engine prefix so trap messages compare exactly:
// "interp: trap: X" and "vm: trap: X" both reduce to "X". Plain errors
// (alloc failures, declaration calls) pass through untouched in both
// engines.
func normTrap(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "interp: trap: ")
	msg = strings.TrimPrefix(msg, "vm: trap: ")
	return msg
}

// checkSame runs m under both engines and demands bit-identical behaviour:
// same Result (Ret, Output, Steps) on success, same trap message (modulo
// engine prefix) on failure.
func checkSame(t *testing.T, m *ir.Module, opts interp.Options, label string) {
	t.Helper()
	want, werr := interp.Run(m, opts)
	got, gerr := vm.Run(m, opts)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%s: engines disagree on trapping: interp=%v vm=%v", label, werr, gerr)
	}
	if werr != nil {
		if normTrap(werr) != normTrap(gerr) {
			t.Fatalf("%s: trap messages differ: interp=%q vm=%q", label, werr, gerr)
		}
		return
	}
	if got.Ret != want.Ret || got.Output != want.Output || got.Steps != want.Steps {
		t.Fatalf("%s: results differ:\ninterp: ret=%d steps=%d out=%q\nvm:     ret=%d steps=%d out=%q",
			label, want.Ret, want.Steps, want.Output, got.Ret, got.Steps, got.Output)
	}
}

// TestVMMatchesInterpCorpus sweeps generated programs through the front
// end, the optimizer pipelines and the obfuscators, and requires the VM to
// reproduce the interpreter bit-for-bit on every module — including the
// exact step count, which the budget game and Figure 13 depend on.
func TestVMMatchesInterpCorpus(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	opts := interp.Options{MaxSteps: 16 << 20}
	for seed := int64(0); seed < seeds; seed++ {
		src := progen.GenerateSeed(seed)

		m, err := minic.CompileSource(src, "vmdiff")
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		checkSame(t, m, opts, "O0 seed "+itoa(seed))

		for _, lvl := range []passes.Level{passes.O1, passes.O2, passes.O3} {
			m2, _ := minic.CompileSource(src, "vmdiff")
			if err := passes.Optimize(m2, lvl); err != nil {
				t.Fatalf("seed %d: optimize: %v", seed, err)
			}
			checkSame(t, m2, opts, "opt seed "+itoa(seed))
		}

		for _, ob := range []string{"bcf", "fla", "sub", "ollvm"} {
			m3, _ := minic.CompileSource(src, "vmdiff")
			if err := obfus.Apply(m3, ob, rand.New(rand.NewSource(seed))); err != nil {
				t.Fatalf("seed %d: obfus %s: %v", seed, ob, err)
			}
			checkSame(t, m3, opts, ob+" seed "+itoa(seed))
		}
	}
}

// TestVMBudgetTrapParity truncates the step budget mid-program and checks
// both engines trap the budget at the same point with the same message and
// identical partial output.
func TestVMBudgetTrapParity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := progen.GenerateSeed(seed)
		m, err := minic.CompileSource(src, "vmbudget")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, err := interp.Run(m, interp.Options{MaxSteps: 16 << 20})
		if err != nil {
			continue // trapping programs are covered by the corpus test
		}
		for _, frac := range []int64{2, 3, 7} {
			budget := full.Steps / frac
			if budget == 0 {
				continue
			}
			checkSame(t, m, interp.Options{MaxSteps: budget}, "budget seed "+itoa(seed))
		}
	}
}

// TestVMInputBuiltins checks the input streams are consumed identically.
func TestVMInputBuiltins(t *testing.T) {
	src := `
int main() {
  int a = input();
  int b = input();
  int c = input(); // past the end: yields 0
  print(a + 2*b + c);
  print(inputf());
  return a - b;
}`
	m, err := minic.CompileSource(src, "vminput")
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, m, interp.Options{Input: []int64{7, 9}, FloatInput: []float64{2.5}}, "inputs")
}

// TestVMBrokenEngineDiverges proves the harness would catch a real
// miscompile: BrokenEngine executes integer adds as subtracts, and the
// differential check must see it.
func TestVMBrokenEngineDiverges(t *testing.T) {
	// Straight-line on purpose: sabotaged adds in a loop counter would
	// just spin out the budget; here they flip the printed value. input()
	// blocks the front end from constant-folding the addition away.
	src := "int main() { int a = input(); print(a + 5); return 0; }"
	m, err := minic.CompileSource(src, "vmbroken")
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.BrokenEngine().Run(m, interp.Options{})
	if err != nil {
		t.Fatalf("broken engine should still run: %v", err)
	}
	if got.Ret == want.Ret && got.Output == want.Output {
		t.Fatalf("broken engine agreed with interp (ret=%d out=%q); sabotage ineffective", got.Ret, got.Output)
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }
