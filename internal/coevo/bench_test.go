package coevo

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// BenchmarkCoevoGeneration times one full arena round — evolve, verdict,
// Elo, retrain, checkpoint — at the smoke-test scale.
func BenchmarkCoevoGeneration(b *testing.B) {
	set, err := dataset.Generate(2, 8, 11)
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	cfg := testConfig(set, 0)
	a, err := newArena(&cfg)
	if err != nil {
		b.Fatalf("newArena: %v", err)
	}
	master := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.generation(i+1, master); err != nil {
			b.Fatalf("generation: %v", err)
		}
	}
}

// BenchmarkRetrainWarmVsCold isolates the defender's per-generation retrain
// cost: the warm path reuses the frozen standardizer and existing weights,
// the cold path refits from scratch on the same pool.
func BenchmarkRetrainWarmVsCold(b *testing.B) {
	set, err := dataset.Generate(2, 10, 11)
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	cfg := Config{Set: set, Seed: 42}
	a, err := newArena(&cfg)
	if err != nil {
		b.Fatalf("newArena: %v", err)
	}
	X, y := a.trainX, a.trainY
	nc := set.NumClasses

	b.Run("warm", func(b *testing.B) {
		m, _ := ml.New("lr", rand.New(rand.NewSource(1)))
		if err := m.Fit(X, y, nc); err != nil {
			b.Fatal(err)
		}
		wf := m.(ml.WarmFitter)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := wf.FitWarm(X, y, nc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		m, _ := ml.New("lr", rand.New(rand.NewSource(1)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Fit(X, y, nc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
