// Package coevo is the online adversarial arena: persistent evader
// populations (srcobf.Population) co-evolve against a defending classifier
// that is incrementally retrained, each generation, on the evasions it
// failed to catch. The paper's games are batch — train once, evade once,
// tally the matrix; this package makes the game streaming, so the Red
// Queen question (does the dynamic converge or cycle?) becomes runnable.
//
// One generation:
//
//  1. every attacker population Evolves under an objective that rewards
//     both moving away from the original program's embedding and flipping
//     the CURRENT defender's verdict,
//  2. the defender classifies every member; misclassified members are the
//     generation's evasions,
//  3. both sides' Elo ratings absorb the generation as one rating block
//     (an evasion is an attacker win, a catch a defender win),
//  4. the defender warm-start retrains on the cumulative pool (base
//     training set + all distinct evasions so far) and is checkpointed
//     via the GOMLSNAP lineage codec — if the retrain regresses on a
//     held-out set beyond Tolerance, the previous checkpoint is rolled
//     back (the pool keeps the evasions; only the weights revert),
//  5. the accepted snapshot is optionally pushed to a serving fleet over
//     the PUT /v1/models hot-swap path.
//
// The loop is deterministic for a fixed seed at any worker count: all
// per-population randomness is pre-derived sequentially from the master
// RNG before any parallel fan-out, and results merge in population order.
// Only the RetrainNS timings vary run over run (reported as volatile).
package coevo

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/srcobf"
	"repro/internal/stats"
)

// evadedBonus dominates any histogram distance, so the objective is
// lexicographic: evading the live defender first, moving far second.
const evadedBonus = 1e6

// Pusher delivers an accepted generation snapshot to a serving fleet.
// Implementations live with the caller (cmd/arena pushes over HTTP).
type Pusher interface {
	Push(model string, snapshot []byte, gen int64) error
}

// Config parameterizes one arena run. Zero values take the defaults noted.
type Config struct {
	// Set is the labelled corpus; split into defender training set, holdout
	// (rollback gate) and attack pool (population seeds).
	Set *dataset.Set
	// Embedding is the vector embedding both sides fight in (default
	// "histogram").
	Embedding string
	// Model names the defending classifier (default "lr"). Models
	// implementing ml.WarmFitter retrain incrementally; others re-fit cold
	// on the cumulative pool.
	Model string
	// Strategy names the evader strategy every population runs (one of
	// srcobf.StrategyNames; default "ga").
	Strategy string
	// Attackers is the number of evader populations, each rooted at one
	// attack-pool program (default 4, clamped to the pool).
	Attackers int
	// PopSize is the member count per population (default 4).
	PopSize int
	// Generations is the number of arena rounds (default 5).
	Generations int
	// TrainFrac is the defender's training split (default 0.5; the rest is
	// halved into holdout and attack pool).
	TrainFrac float64
	// Tolerance is how much holdout accuracy a retrain may lose before the
	// generation's checkpoint is rolled back (default 0.02).
	Tolerance float64
	// EloK is the rating gain per block update (default stats.EloK).
	EloK float64
	// Seed drives everything; fixed seed => identical run at any Workers.
	Seed int64
	// Workers bounds the parallel fan-outs (0 = GOMAXPROCS).
	Workers int
	// Push, when non-nil, receives every accepted generation snapshot.
	Push Pusher
	// SnapshotDir, when set, receives per-generation checkpoint files
	// (<model>.gen<N>.snap).
	SnapshotDir string
}

// GenerationResult is the manifest-facing record of one arena round.
type GenerationResult struct {
	Gen         int     // 1-based generation number
	EvasionRate float64 // evaded members / total members
	AttackerElo float64 // rating after this generation's block update
	DefenderElo float64
	HoldoutAcc  float64 // post-retrain holdout accuracy (pre-rollback value)
	Diversity   float64 // mean pairwise member distance, averaged over populations
	NewEvasions int     // distinct new evasions absorbed into the pool
	RolledBack  bool    // retrain regressed beyond Tolerance and was reverted
	Version     int64   // snapshot generation the defender serves after this round
	RetrainNS   int64   // wall time of the retrain (volatile; 0 when skipped)
}

// Result is a finished arena run.
type Result struct {
	BaselineAcc float64 // holdout accuracy of the generation-0 defender
	Generations []GenerationResult
	// FinalSnapshot is the last accepted checkpoint (lineage-stamped).
	FinalSnapshot []byte
	FinalVersion  int64
}

// attacker is one population plus the fixed facts about its root program.
type attacker struct {
	pop       *srcobf.Population
	trueClass int
	origVec   embed.Vector // root program's embedding (objective reference)
}

// arena carries the mutable run state between generations.
type arena struct {
	cfg   Config
	emb   *embed.Embedding
	model ml.Model

	trainX [][]float64
	trainY []int
	holdX  [][]float64
	holdY  []int

	attackers []*attacker

	poolX [][]float64 // cumulative evasion pool appended to trainX
	poolY []int
	seen  map[string]bool // dedupe key over evasion vectors

	version  int64  // accepted snapshot generation (1 = initial fit)
	lastGood []byte // last accepted snapshot frame
	lastAcc  float64

	attElo float64 // zero until the first block update (EloInitial)
	defElo float64
}

// Run executes the configured co-evolution arena.
func Run(cfg Config) (*Result, error) {
	a, err := newArena(&cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{BaselineAcc: a.lastAcc}
	if err := a.emit(0); err != nil {
		return nil, err
	}
	master := rand.New(rand.NewSource(cfg.Seed + 1000003))
	for gen := 1; gen <= cfg.Generations; gen++ {
		gr, err := a.generation(gen, master)
		if err != nil {
			return nil, fmt.Errorf("coevo: generation %d: %w", gen, err)
		}
		res.Generations = append(res.Generations, *gr)
	}
	res.FinalSnapshot = a.lastGood
	res.FinalVersion = a.version
	return res, nil
}

func newArena(cfg *Config) (*arena, error) {
	if cfg.Set == nil || len(cfg.Set.Samples) == 0 {
		return nil, fmt.Errorf("coevo: empty dataset")
	}
	if cfg.Embedding == "" {
		cfg.Embedding = "histogram"
	}
	if cfg.Model == "" {
		cfg.Model = "lr"
	}
	if cfg.Strategy == "" {
		cfg.Strategy = "ga"
	}
	if cfg.Attackers <= 0 {
		cfg.Attackers = 4
	}
	if cfg.PopSize <= 0 {
		cfg.PopSize = 4
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 5
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.5
	}
	if cfg.Tolerance < 0 {
		cfg.Tolerance = 0
	} else if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.02
	}
	if cfg.EloK <= 0 {
		cfg.EloK = stats.EloK
	}
	emb, err := embed.Get(cfg.Embedding)
	if err != nil {
		return nil, err
	}
	if emb.Kind != embed.VectorKind {
		return nil, fmt.Errorf("coevo: embedding %q is graph-shaped; the arena takes vector embeddings", cfg.Embedding)
	}
	found := false
	for _, s := range srcobf.StrategyNames() {
		if s == cfg.Strategy {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("coevo: unknown strategy %q", cfg.Strategy)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	train, rest := cfg.Set.Split(cfg.TrainFrac, rng)
	if len(train) == 0 || len(rest) < 2 {
		return nil, fmt.Errorf("coevo: dataset too small to split (train %d, rest %d)", len(train), len(rest))
	}
	hold, attack := rest[:len(rest)/2], rest[len(rest)/2:]

	a := &arena{cfg: *cfg, emb: emb, seen: make(map[string]bool)}
	if a.trainX, a.trainY, err = a.featurize(train); err != nil {
		return nil, err
	}
	if a.holdX, a.holdY, err = a.featurize(hold); err != nil {
		return nil, err
	}

	n := cfg.Attackers
	if n > len(attack) {
		n = len(attack)
	}
	for i := 0; i < n; i++ {
		smp := attack[i]
		f, err := minic.Parse(smp.Source)
		if err != nil {
			return nil, fmt.Errorf("coevo: attack program %d: %w", i, err)
		}
		vec, err := core.EmbedSource(smp.Source, cfg.Embedding)
		if err != nil {
			return nil, err
		}
		// Population init draws from the master stream (sequential, so the
		// setup is worker-count independent too).
		pop, err := srcobf.NewPopulation(f, cfg.Strategy, cfg.PopSize, nil, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		a.attackers = append(a.attackers, &attacker{pop: pop, trueClass: smp.Class, origVec: vec})
	}

	m, err := ml.New(cfg.Model, rand.New(rand.NewSource(cfg.Seed+7)))
	if err != nil {
		return nil, err
	}
	if err := m.Fit(a.trainX, a.trainY, cfg.Set.NumClasses); err != nil {
		return nil, err
	}
	a.model = m
	a.lastAcc = a.holdoutAcc()
	a.version = 1
	var buf bytes.Buffer
	if err := ml.SaveLineage(&buf, m, ml.Lineage{Generation: 1}); err != nil {
		return nil, err
	}
	a.lastGood = buf.Bytes()
	return a, nil
}

// featurize embeds every sample through the shared progcache, in parallel,
// results merged by index.
func (a *arena) featurize(samples []dataset.Sample) ([][]float64, []int, error) {
	X := make([][]float64, len(samples))
	y := make([]int, len(samples))
	errs := make([]error, len(samples))
	workers := core.ClampWorkers(a.cfg.Workers, len(samples))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range samples {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			v, err := core.EmbedSource(samples[i].Source, a.cfg.Embedding)
			if err != nil {
				errs[i] = err
				return
			}
			X[i] = v
			y[i] = samples[i].Class
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return X, y, nil
}

func (a *arena) holdoutAcc() float64 {
	hit := 0
	for i, x := range a.holdX {
		if a.model.Predict(x) == a.holdY[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(a.holdX))
}

// emit writes the current accepted snapshot to SnapshotDir and the pusher.
// gen 0 is the initial fit.
func (a *arena) emit(gen int) error {
	if a.cfg.SnapshotDir != "" {
		if err := os.MkdirAll(a.cfg.SnapshotDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(a.cfg.SnapshotDir, fmt.Sprintf("%s.gen%03d.snap", a.cfg.Model, gen))
		if err := os.WriteFile(path, a.lastGood, 0o644); err != nil {
			return err
		}
	}
	if a.cfg.Push != nil {
		if err := a.cfg.Push.Push(a.cfg.Model, a.lastGood, a.version); err != nil {
			return fmt.Errorf("coevo: push gen %d: %w", gen, err)
		}
	}
	return nil
}

// popOutcome is one population's generation outcome, computed inside the
// parallel fan-out and merged in population order.
type popOutcome struct {
	vecs   []embed.Vector // member embeddings, in member order
	evaded []bool
	divSum float64 // pairwise distance sum
	divCnt int
}

func (a *arena) generation(gen int, master *rand.Rand) (*GenerationResult, error) {
	// Pre-derive the per-population seeds SEQUENTIALLY from the master
	// stream; this is the whole determinism contract — the parallel part
	// below only consumes private RNGs.
	seeds := make([]int64, len(a.attackers))
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	// The objective closes over the defender as it stands at generation
	// start; the retrain below happens strictly after every Evolve returns.
	model := a.model
	outcomes := make([]*popOutcome, len(a.attackers))
	workers := core.ClampWorkers(a.cfg.Workers, len(a.attackers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range a.attackers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			at := a.attackers[i]
			orig, class := at.origVec, at.trueClass
			at.pop.SetObjective(func(fl *ir.Flat) (float64, bool) {
				v := a.emb.VecFlat(fl)
				s := embed.Distance(orig, v)
				if model.Predict(v) != class {
					s += evadedBonus
				}
				return s, true
			})
			at.pop.Evolve(rand.New(rand.NewSource(seeds[i])))
			out := &popOutcome{}
			for mi := range at.pop.Members {
				// Evolve leaves every member carrying the flat view from its
				// last scoring, so the verdict pass below costs no compiles.
				fl := at.pop.Members[mi].Flat
				if fl == nil {
					var err error
					fl, err = srcobf.FlatView(at.pop.Members[mi].File)
					if err != nil {
						// applySeq guarantees members compile; a failure here
						// is a bug, not a data condition — surface as a miss.
						out.vecs = append(out.vecs, nil)
						out.evaded = append(out.evaded, false)
						continue
					}
				}
				v := a.emb.VecFlat(fl)
				out.vecs = append(out.vecs, v)
				out.evaded = append(out.evaded, model.Predict(v) != class)
			}
			for x := 0; x < len(out.vecs); x++ {
				for y := x + 1; y < len(out.vecs); y++ {
					if out.vecs[x] != nil && out.vecs[y] != nil {
						out.divSum += embed.Distance(out.vecs[x], out.vecs[y])
						out.divCnt++
					}
				}
			}
			outcomes[i] = out
		}(i)
	}
	wg.Wait()

	// Merge in population order: verdicts, diversity, and the evasion pool.
	gr := &GenerationResult{Gen: gen}
	evaded, total := 0, 0
	divSum, divPops := 0.0, 0
	for i, out := range outcomes {
		at := a.attackers[i]
		for mi, ev := range out.evaded {
			total++
			if !ev {
				continue
			}
			evaded++
			key := vecKey(out.vecs[mi], at.trueClass)
			if !a.seen[key] {
				a.seen[key] = true
				a.poolX = append(a.poolX, out.vecs[mi])
				a.poolY = append(a.poolY, at.trueClass)
				gr.NewEvasions++
			}
		}
		if out.divCnt > 0 {
			divSum += out.divSum / float64(out.divCnt)
			divPops++
		}
	}
	if total > 0 {
		gr.EvasionRate = float64(evaded) / float64(total)
	}
	if divPops > 0 {
		gr.Diversity = divSum / float64(divPops)
	}

	// One generation = one Elo rating block: every member plays the
	// defender once; an evasion is an attacker win.
	attPrev, defPrev := a.attackerElo(), a.defenderElo()
	gr.AttackerElo = stats.EloUpdate(attPrev, defPrev, float64(evaded), total, a.cfg.EloK)
	gr.DefenderElo = stats.EloUpdate(defPrev, attPrev, float64(total-evaded), total, a.cfg.EloK)
	a.setElo(gr.AttackerElo, gr.DefenderElo)

	// Retrain on the cumulative pool when this generation taught us
	// anything new; checkpoint, gate on the holdout, roll back on
	// regression.
	gr.Version = a.version
	gr.HoldoutAcc = a.lastAcc
	if gr.NewEvasions > 0 {
		X := append(append([][]float64{}, a.trainX...), a.poolX...)
		y := append(append([]int{}, a.trainY...), a.poolY...)
		start := time.Now()
		var err error
		if wf, ok := a.model.(ml.WarmFitter); ok {
			err = wf.FitWarm(X, y, a.cfg.Set.NumClasses)
		} else {
			err = a.model.Fit(X, y, a.cfg.Set.NumClasses)
		}
		gr.RetrainNS = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("retrain: %w", err)
		}
		acc := a.holdoutAcc()
		gr.HoldoutAcc = acc
		if acc < a.lastAcc-a.cfg.Tolerance {
			// Regression: restore the last accepted checkpoint. The pool
			// keeps the evasions — the next generation may absorb them from
			// a healthier direction.
			m, _, err := ml.LoadLineage(bytes.NewReader(a.lastGood))
			if err != nil {
				return nil, fmt.Errorf("rollback: %w", err)
			}
			a.model = m
			gr.RolledBack = true
		} else {
			prev := a.version
			a.version++
			var buf bytes.Buffer
			if err := ml.SaveLineage(&buf, a.model, ml.Lineage{Generation: a.version, Parent: prev}); err != nil {
				return nil, err
			}
			a.lastGood = buf.Bytes()
			a.lastAcc = acc
			gr.Version = a.version
			if err := a.emit(gen); err != nil {
				return nil, err
			}
		}
	}
	return gr, nil
}

// Elo state lives on the arena between generations.
func (a *arena) attackerElo() float64 {
	if a.attElo == 0 {
		return stats.EloInitial
	}
	return a.attElo
}

func (a *arena) defenderElo() float64 {
	if a.defElo == 0 {
		return stats.EloInitial
	}
	return a.defElo
}

func (a *arena) setElo(att, def float64) { a.attElo, a.defElo = att, def }

// vecKey builds the dedupe key for one evasion: the exact bit pattern of
// its feature vector plus its true class.
func vecKey(v []float64, class int) string {
	b := make([]byte, 0, len(v)*8+4)
	for _, x := range v {
		bits := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(bits>>s))
		}
	}
	return fmt.Sprintf("%d|%s", class, b)
}
