package coevo

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/progcache"
	"repro/internal/stats"
)

func testSet(t *testing.T) *dataset.Set {
	t.Helper()
	set, err := dataset.Generate(2, 8, 11)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return set
}

func testConfig(set *dataset.Set, workers int) Config {
	return Config{
		Set:         set,
		Embedding:   "histogram",
		Model:       "lr",
		Strategy:    "ga",
		Attackers:   2,
		PopSize:     2,
		Generations: 3,
		Seed:        42,
		Workers:     workers,
	}
}

// stripVolatile zeroes the fields documented as run-dependent so the rest
// can be compared exactly across runs and worker counts.
func stripVolatile(r *Result) *Result {
	c := *r
	c.Generations = append([]GenerationResult{}, r.Generations...)
	for i := range c.Generations {
		c.Generations[i].RetrainNS = 0
	}
	return &c
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	set := testSet(t)
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(testConfig(set, workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		res = stripVolatile(res)
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base.Generations, res.Generations) {
			t.Fatalf("workers=%d diverged:\n  base: %+v\n  got:  %+v", workers, base.Generations, res.Generations)
		}
		if !bytes.Equal(base.FinalSnapshot, res.FinalSnapshot) {
			t.Fatalf("workers=%d produced a different final snapshot", workers)
		}
	}
	if len(base.Generations) != 3 {
		t.Fatalf("want 3 generations, got %d", len(base.Generations))
	}
}

// TestRunThawCloneInvariance is the arena half of the thaw equivalence
// contract: a fixed-seed co-evolution run must produce an identical manifest
// (generation results and final snapshot) whether module copies come from
// ir.Thaw or from the deep-clone fallback, at 1, 4 and 8 workers.
func TestRunThawCloneInvariance(t *testing.T) {
	defer progcache.SetThaw(true)
	set := testSet(t)
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		for _, thaw := range []bool{true, false} {
			progcache.SetThaw(thaw)
			res, err := Run(testConfig(set, workers))
			if err != nil {
				t.Fatalf("Run(workers=%d, thaw=%v): %v", workers, thaw, err)
			}
			res = stripVolatile(res)
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base.Generations, res.Generations) {
				t.Fatalf("workers=%d thaw=%v diverged:\n  base: %+v\n  got:  %+v", workers, thaw, base.Generations, res.Generations)
			}
			if !bytes.Equal(base.FinalSnapshot, res.FinalSnapshot) {
				t.Fatalf("workers=%d thaw=%v produced a different final snapshot", workers, thaw)
			}
		}
	}
}

func TestRunEloZeroSumAndLineage(t *testing.T) {
	set := testSet(t)
	res, err := Run(testConfig(set, 2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, gr := range res.Generations {
		sum := gr.AttackerElo + gr.DefenderElo
		if math.Abs(sum-2*stats.EloInitial) > 1e-6 {
			t.Fatalf("gen %d: Elo not zero-sum: %.6f + %.6f", gr.Gen, gr.AttackerElo, gr.DefenderElo)
		}
	}
	_, lin, err := ml.LoadLineage(bytes.NewReader(res.FinalSnapshot))
	if err != nil {
		t.Fatalf("LoadLineage(final): %v", err)
	}
	if lin.Generation != res.FinalVersion {
		t.Fatalf("final snapshot generation %d != FinalVersion %d", lin.Generation, res.FinalVersion)
	}
	if res.FinalVersion > 1 && lin.Parent != res.FinalVersion-1 {
		t.Fatalf("final snapshot parent %d, want %d", lin.Parent, res.FinalVersion-1)
	}
}

// alwaysWrong evades every verdict and trains to nothing: plugging it in as
// the live defender forces every member to count as an evasion and every
// retrained checkpoint to crater on the holdout.
type alwaysWrong struct{}

func (alwaysWrong) Fit(X [][]float64, y []int, numClasses int) error { return nil }
func (alwaysWrong) Predict(x []float64) int                          { return -1 }
func (alwaysWrong) MemoryBytes() int64                               { return 0 }

func TestGenerationRollsBackOnRegression(t *testing.T) {
	set := testSet(t)
	cfg := testConfig(set, 2)
	a, err := newArena(&cfg)
	if err != nil {
		t.Fatalf("newArena: %v", err)
	}
	goodAcc := a.lastAcc
	a.model = alwaysWrong{}
	gr, err := a.generation(1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("generation: %v", err)
	}
	if gr.EvasionRate != 1 {
		t.Fatalf("alwaysWrong defender: want evasion rate 1, got %v", gr.EvasionRate)
	}
	if gr.NewEvasions == 0 {
		t.Fatal("want new evasions in the pool")
	}
	if !gr.RolledBack {
		t.Fatal("regressing retrain was not rolled back")
	}
	if gr.Version != 1 || a.version != 1 {
		t.Fatalf("rollback must not bump the version: gr=%d arena=%d", gr.Version, a.version)
	}
	if _, still := a.model.(alwaysWrong); still {
		t.Fatal("rollback did not restore the checkpointed model")
	}
	if acc := a.holdoutAcc(); acc != goodAcc {
		t.Fatalf("restored model holdout acc %v, want the checkpointed %v", acc, goodAcc)
	}
	// The pool kept the evasions: a follow-up generation with the restored
	// defender retrains on them and can accept.
	if len(a.poolX) != gr.NewEvasions {
		t.Fatalf("pool lost evasions across rollback: %d != %d", len(a.poolX), gr.NewEvasions)
	}
}

func TestRunWritesSnapshotDir(t *testing.T) {
	set := testSet(t)
	dir := t.TempDir()
	cfg := testConfig(set, 2)
	cfg.SnapshotDir = dir
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("no snapshot files written")
	}
	// gen 0 (the initial fit) is always present and must load.
	b, err := os.ReadFile(filepath.Join(dir, "lr.gen000.snap"))
	if err != nil {
		t.Fatalf("gen000 snapshot: %v", err)
	}
	if _, _, err := ml.LoadLineage(bytes.NewReader(b)); err != nil {
		t.Fatalf("gen000 snapshot does not load: %v", err)
	}
	_ = res
}

// recordingPusher counts pushes and remembers the last generation seen.
type recordingPusher struct {
	mu      sync.Mutex
	pushes  int
	lastGen int64
	name    string
}

func (p *recordingPusher) Push(model string, snapshot []byte, gen int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pushes++
	p.lastGen = gen
	p.name = model
	return nil
}

func TestRunPushesAcceptedSnapshots(t *testing.T) {
	set := testSet(t)
	p := &recordingPusher{}
	cfg := testConfig(set, 2)
	cfg.Push = p
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.pushes == 0 {
		t.Fatal("pusher never called")
	}
	if p.name != "lr" {
		t.Fatalf("pushed model %q, want lr", p.name)
	}
	if p.lastGen != res.FinalVersion {
		t.Fatalf("last pushed generation %d, want final version %d", p.lastGen, res.FinalVersion)
	}
}
