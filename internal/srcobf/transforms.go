package srcobf

import (
	"fmt"
	"math/rand"

	"repro/internal/minic"
)

// Transform is one of the fifteen semantics-preserving source rewrites.
// Apply mutates f in place and reports whether it changed anything.
type Transform struct {
	Name  string
	Apply func(f *minic.File, rng *rand.Rand) bool
}

// Transforms returns the fifteen rewrites, mirroring the "15 simpler
// transformations" Zhang et al. compose (loop restyling, branch reshaping,
// constant unfolding, dead code, declaration reshuffling, ...).
func Transforms() []Transform {
	return []Transform{
		{"for2while", tfFor2While},
		{"while2for", tfWhile2For},
		{"while2dowhile", tfWhile2DoWhile},
		{"if_negate", tfIfNegate},
		{"switch2if", tfSwitch2If},
		{"const_unfold", tfConstUnfold},
		{"dead_var", tfDeadVar},
		{"dead_if", tfDeadIf},
		{"commute", tfCommute},
		{"cmp_flip", tfCmpFlip},
		{"incdec2compound", tfIncDec2Compound},
		{"compound2plain", tfCompound2Plain},
		{"split_decl", tfSplitDecl},
		{"wrap_block", tfWrapBlock},
		{"ternary2if", tfTernary2If},
	}
}

// TransformNames lists the transform names in order.
func TransformNames() []string {
	ts := Transforms()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

func transformByName(name string) (Transform, error) {
	for _, t := range Transforms() {
		if t.Name == name {
			return t, nil
		}
	}
	return Transform{}, fmt.Errorf("srcobf: unknown transform %q", name)
}

// fresh generates collision-free helper variable names; MiniC identifiers
// beginning with "__so" are reserved for the obfuscator.
type fresh struct{ n int }

func (fr *fresh) name() string {
	fr.n++
	return fmt.Sprintf("__so%d", fr.n)
}

// tfFor2While rewrites for(init;cond;post) into init; while(cond){body;
// post}. Loops whose body contains a top-level continue are skipped: the
// continue would bypass the post expression.
func tfFor2While(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		fs, ok := s.(*minic.ForStmt)
		if !ok || containsContinue(fs.Body) || rng.Float64() > 0.8 {
			return s
		}
		cond := fs.Cond
		if cond == nil {
			cond = &minic.IntLit{Val: 1}
		}
		body := &minic.BlockStmt{List: []minic.Stmt{fs.Body}}
		if fs.Post != nil {
			body.List = append(body.List, &minic.ExprStmt{X: fs.Post})
		}
		var list []minic.Stmt
		if fs.Init != nil {
			list = append(list, fs.Init)
		}
		list = append(list, &minic.WhileStmt{Cond: cond, Body: body})
		changed = true
		return &minic.BlockStmt{List: list}
	})
	return changed
}

// tfWhile2For rewrites while(c) S into for(;c;) S.
func tfWhile2For(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		ws, ok := s.(*minic.WhileStmt)
		if !ok || rng.Float64() > 0.8 {
			return s
		}
		changed = true
		return &minic.ForStmt{Cond: ws.Cond, Body: ws.Body}
	})
	return changed
}

// tfWhile2DoWhile rewrites while(c) S into if(c) do S while(c).
func tfWhile2DoWhile(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		ws, ok := s.(*minic.WhileStmt)
		if !ok || rng.Float64() > 0.7 {
			return s
		}
		// The condition is evaluated again, so it must be repeatable.
		if !sideEffectFree(ws.Cond) {
			return s
		}
		changed = true
		return &minic.IfStmt{
			Cond: cloneExpr(ws.Cond),
			Then: &minic.BlockStmt{List: []minic.Stmt{
				&minic.DoWhileStmt{Body: ws.Body, Cond: ws.Cond},
			}},
		}
	})
	return changed
}

// tfIfNegate rewrites if(c) A else B into if(!c) B else A.
func tfIfNegate(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		is, ok := s.(*minic.IfStmt)
		if !ok || rng.Float64() > 0.6 {
			return s
		}
		neg := &minic.UnaryExpr{Op: "!", X: &minic.ParenExpr{X: is.Cond}}
		if is.Else != nil {
			changed = true
			return &minic.IfStmt{Cond: neg, Then: is.Else, Else: is.Then}
		}
		changed = true
		return &minic.IfStmt{Cond: neg, Then: &minic.EmptyStmt{}, Else: is.Then}
	})
	return changed
}

// tfSwitch2If rewrites switch statements without fallthrough into if-else
// chains comparing against a cached tag.
func tfSwitch2If(f *minic.File, rng *rand.Rand) bool {
	changed := false
	fr := &fresh{n: rng.Intn(1000) * 100}
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		sw, ok := s.(*minic.SwitchStmt)
		if !ok {
			return s
		}
		// Every case must end in a break (dropped) or return: fallthrough
		// cannot be expressed as an if-chain. Other top-level breaks would
		// re-bind to an enclosing loop.
		bodies := make([][]minic.Stmt, len(sw.Cases))
		for i, c := range sw.Cases {
			if len(c.Body) == 0 {
				return s
			}
			body := c.Body
			switch body[len(body)-1].(type) {
			case *minic.BreakStmt:
				body = body[:len(body)-1]
			case *minic.ReturnStmt:
				// fine as-is
			default:
				return s
			}
			for _, st := range body {
				if containsLoopBreak(st) {
					return s
				}
			}
			bodies[i] = body
		}
		tag := fr.name()
		decl := &minic.DeclStmt{Vars: []*minic.VarDecl{{
			Name: tag,
			Type: minic.TypeSpec{Base: minic.TInt},
			Init: sw.Tag,
		}}}
		// Build the chain: cases in order, default last.
		var chain minic.Stmt
		var defaultBody []minic.Stmt
		for i, c := range sw.Cases {
			if c.IsDefault {
				defaultBody = bodies[i]
			}
		}
		if defaultBody != nil {
			chain = &minic.BlockStmt{List: defaultBody}
		}
		for i := len(sw.Cases) - 1; i >= 0; i-- {
			c := sw.Cases[i]
			if c.IsDefault {
				continue
			}
			chain = &minic.IfStmt{
				Cond: &minic.BinaryExpr{Op: "==", X: &minic.Ident{Name: tag}, Y: &minic.IntLit{Val: c.Val}},
				Then: &minic.BlockStmt{List: bodies[i]},
				Else: chain,
			}
		}
		if chain == nil {
			chain = &minic.EmptyStmt{}
		}
		changed = true
		return &minic.BlockStmt{List: []minic.Stmt{decl, chain}}
	})
	return changed
}

// tfConstUnfold replaces integer literals with equivalent arithmetic.
func tfConstUnfold(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteAllExprs(f, func(e minic.Expr) minic.Expr {
		lit, ok := e.(*minic.IntLit)
		if !ok || rng.Float64() > 0.35 {
			return e
		}
		k := int64(rng.Intn(255) + 1)
		changed = true
		switch rng.Intn(3) {
		case 0: // (c-k)+k
			return &minic.ParenExpr{X: &minic.BinaryExpr{
				Op: "+",
				X:  &minic.ParenExpr{X: &minic.BinaryExpr{Op: "-", X: &minic.IntLit{Val: lit.Val}, Y: &minic.IntLit{Val: k}}},
				Y:  &minic.IntLit{Val: k},
			}}
		case 1: // (c^k)^k
			return &minic.ParenExpr{X: &minic.BinaryExpr{
				Op: "^",
				X:  &minic.ParenExpr{X: &minic.BinaryExpr{Op: "^", X: &minic.IntLit{Val: lit.Val}, Y: &minic.IntLit{Val: k}}},
				Y:  &minic.IntLit{Val: k},
			}}
		default: // (c+k)-k
			return &minic.ParenExpr{X: &minic.BinaryExpr{
				Op: "-",
				X:  &minic.ParenExpr{X: &minic.BinaryExpr{Op: "+", X: &minic.IntLit{Val: lit.Val}, Y: &minic.IntLit{Val: k}}},
				Y:  &minic.IntLit{Val: k},
			}}
		}
	})
	return changed
}

// tfDeadVar inserts dead local variables computed from constants.
func tfDeadVar(f *minic.File, rng *rand.Rand) bool {
	changed := false
	fr := &fresh{n: 10000 + rng.Intn(1000)*100}
	walkStmts(f, func(list []minic.Stmt) []minic.Stmt {
		if len(list) == 0 || rng.Float64() > 0.5 {
			return list
		}
		v := fr.name()
		decl := &minic.DeclStmt{Vars: []*minic.VarDecl{{
			Name: v,
			Type: minic.TypeSpec{Base: minic.TInt},
			Init: &minic.BinaryExpr{
				Op: []string{"+", "*", "^"}[rng.Intn(3)],
				X:  &minic.IntLit{Val: int64(rng.Intn(100))},
				Y:  &minic.IntLit{Val: int64(rng.Intn(100) + 1)},
			},
		}}}
		update := &minic.ExprStmt{X: &minic.AssignExpr{
			Op:  "+=",
			LHS: &minic.Ident{Name: v},
			RHS: &minic.IntLit{Val: int64(rng.Intn(50))},
		}}
		pos := rng.Intn(len(list) + 1)
		out := make([]minic.Stmt, 0, len(list)+2)
		out = append(out, list[:pos]...)
		out = append(out, decl, update)
		out = append(out, list[pos:]...)
		changed = true
		return out
	})
	return changed
}

// tfDeadIf inserts if(0){...} blocks with junk bodies.
func tfDeadIf(f *minic.File, rng *rand.Rand) bool {
	changed := false
	fr := &fresh{n: 20000 + rng.Intn(1000)*100}
	walkStmts(f, func(list []minic.Stmt) []minic.Stmt {
		if len(list) == 0 || rng.Float64() > 0.4 {
			return list
		}
		v := fr.name()
		junk := &minic.IfStmt{
			Cond: &minic.IntLit{Val: 0},
			Then: &minic.BlockStmt{List: []minic.Stmt{
				&minic.DeclStmt{Vars: []*minic.VarDecl{{
					Name: v, Type: minic.TypeSpec{Base: minic.TInt},
					Init: &minic.IntLit{Val: int64(rng.Intn(97))},
				}}},
				&minic.ExprStmt{X: &minic.AssignExpr{
					Op:  "=",
					LHS: &minic.Ident{Name: v},
					RHS: &minic.BinaryExpr{Op: "*", X: &minic.Ident{Name: v}, Y: &minic.IntLit{Val: 3}},
				}},
			}},
		}
		pos := rng.Intn(len(list) + 1)
		out := make([]minic.Stmt, 0, len(list)+1)
		out = append(out, list[:pos]...)
		out = append(out, junk)
		out = append(out, list[pos:]...)
		changed = true
		return out
	})
	return changed
}

// tfCommute swaps operands of commutative operators.
func tfCommute(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteAllExprs(f, func(e minic.Expr) minic.Expr {
		b, ok := e.(*minic.BinaryExpr)
		if !ok || rng.Float64() > 0.5 {
			return e
		}
		switch b.Op {
		case "+", "*", "&", "|", "^":
			// Swapping is safe only when evaluation order cannot be
			// observed (&& and || are excluded by construction).
			if sideEffectFree(b.X) && sideEffectFree(b.Y) {
				b.X, b.Y = b.Y, b.X
				changed = true
			}
		}
		return b
	})
	return changed
}

// tfCmpFlip mirrors comparisons: a<b becomes b>a, etc.
func tfCmpFlip(f *minic.File, rng *rand.Rand) bool {
	changed := false
	flip := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}
	rewriteAllExprs(f, func(e minic.Expr) minic.Expr {
		b, ok := e.(*minic.BinaryExpr)
		if !ok || rng.Float64() > 0.5 {
			return e
		}
		nop, isCmp := flip[b.Op]
		if !isCmp || !sideEffectFree(b.X) || !sideEffectFree(b.Y) {
			return e
		}
		b.Op = nop
		b.X, b.Y = b.Y, b.X
		changed = true
		return b
	})
	return changed
}

// tfIncDec2Compound rewrites statement-level i++ into i += 1.
func tfIncDec2Compound(f *minic.File, rng *rand.Rand) bool {
	changed := false
	conv := func(e minic.Expr) minic.Expr {
		id, ok := e.(*minic.IncDecExpr)
		if !ok || rng.Float64() > 0.7 {
			return e
		}
		op := "+="
		if id.Op == "--" {
			op = "-="
		}
		changed = true
		return &minic.AssignExpr{Op: op, LHS: id.X, RHS: &minic.IntLit{Val: 1}}
	}
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		switch x := s.(type) {
		case *minic.ExprStmt:
			x.X = conv(x.X)
		case *minic.ForStmt:
			if x.Post != nil {
				x.Post = conv(x.Post)
			}
		}
		return s
	})
	return changed
}

// tfCompound2Plain rewrites x op= e into x = x op e when x is repeatable.
func tfCompound2Plain(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteAllExprs(f, func(e minic.Expr) minic.Expr {
		a, ok := e.(*minic.AssignExpr)
		if !ok || a.Op == "=" || rng.Float64() > 0.7 {
			return e
		}
		if !sideEffectFree(a.LHS) {
			return e
		}
		op := a.Op[:len(a.Op)-1]
		changed = true
		return &minic.AssignExpr{
			Op:  "=",
			LHS: a.LHS,
			RHS: &minic.BinaryExpr{Op: op, X: cloneExpr(a.LHS), Y: &minic.ParenExpr{X: a.RHS}},
		}
	})
	return changed
}

// tfSplitDecl splits "int a = e;" into "int a; a = e;".
func tfSplitDecl(f *minic.File, rng *rand.Rand) bool {
	changed := false
	walkStmts(f, func(list []minic.Stmt) []minic.Stmt {
		var out []minic.Stmt
		for _, s := range list {
			ds, ok := s.(*minic.DeclStmt)
			if !ok || rng.Float64() > 0.6 {
				out = append(out, s)
				continue
			}
			split := false
			for _, v := range ds.Vars {
				if v.Init != nil && !v.Const && !v.Type.IsArray() {
					split = true
				}
			}
			if !split {
				out = append(out, s)
				continue
			}
			var assigns []minic.Stmt
			for _, v := range ds.Vars {
				if v.Init != nil && !v.Const && !v.Type.IsArray() {
					assigns = append(assigns, &minic.ExprStmt{X: &minic.AssignExpr{
						Op: "=", LHS: &minic.Ident{Name: v.Name}, RHS: v.Init,
					}})
					v.Init = nil
				}
			}
			out = append(out, ds)
			out = append(out, assigns...)
			changed = true
		}
		return out
	})
	return changed
}

// tfWrapBlock wraps random statements in redundant braces.
func tfWrapBlock(f *minic.File, rng *rand.Rand) bool {
	changed := false
	walkStmts(f, func(list []minic.Stmt) []minic.Stmt {
		for i, s := range list {
			if rng.Float64() > 0.25 {
				continue
			}
			switch s.(type) {
			case *minic.DeclStmt, *minic.EmptyStmt:
				// Wrapping a declaration changes its scope.
				continue
			case *minic.ExprStmt, *minic.ReturnStmt, *minic.BreakStmt, *minic.ContinueStmt:
				list[i] = &minic.BlockStmt{List: []minic.Stmt{s}}
				changed = true
			}
		}
		return list
	})
	return changed
}

// tfTernary2If rewrites "x = c ? a : b;" into an if/else.
func tfTernary2If(f *minic.File, rng *rand.Rand) bool {
	changed := false
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		es, ok := s.(*minic.ExprStmt)
		if !ok || rng.Float64() > 0.8 {
			return s
		}
		as, ok := es.X.(*minic.AssignExpr)
		if !ok || as.Op != "=" {
			return s
		}
		cond, ok := as.RHS.(*minic.CondExpr)
		if !ok {
			return s
		}
		if _, isIdent := as.LHS.(*minic.Ident); !isIdent {
			return s
		}
		changed = true
		return &minic.IfStmt{
			Cond: cond.Cond,
			Then: &minic.BlockStmt{List: []minic.Stmt{&minic.ExprStmt{X: &minic.AssignExpr{
				Op: "=", LHS: cloneExpr(as.LHS), RHS: cond.Then,
			}}}},
			Else: &minic.BlockStmt{List: []minic.Stmt{&minic.ExprStmt{X: &minic.AssignExpr{
				Op: "=", LHS: cloneExpr(as.LHS), RHS: cond.Else,
			}}}},
		}
	})
	return changed
}
