// Package srcobf implements source-level obfuscation in the style of Zhang
// et al.: fifteen semantics-preserving MiniC AST transformations combined by
// four search strategies — Random Search (rs), Markov-Chain Monte Carlo
// (mcmc), a greedy distance-maximizing policy standing in for the deep
// reinforcement learner (drlsg), and a Genetic Algorithm (ga). These evaders
// operate before compilation, which is exactly why the paper finds their
// effect dissolves under SSA construction and -O3 normalization.
package srcobf

import "repro/internal/minic"

// cloneFile deep-copies a parsed file so transformations never alias the
// original AST.
func cloneFile(f *minic.File) *minic.File {
	nf := &minic.File{}
	for _, d := range f.Decls {
		nf.Decls = append(nf.Decls, cloneDecl(d))
	}
	return nf
}

func cloneDecl(d minic.Decl) minic.Decl {
	switch x := d.(type) {
	case *minic.StructDecl:
		nd := &minic.StructDecl{Name: x.Name}
		for _, f := range x.Fields {
			nd.Fields = append(nd.Fields, cloneVarDecl(f))
		}
		return nd
	case *minic.VarDecl:
		return cloneVarDecl(x)
	case *minic.FuncDecl:
		nd := &minic.FuncDecl{Name: x.Name, Ret: cloneType(x.Ret)}
		for _, p := range x.Params {
			nd.Params = append(nd.Params, &minic.ParamDecl{
				Name: p.Name, Type: cloneType(p.Type), Array: p.Array,
			})
		}
		if x.Body != nil {
			nd.Body = cloneStmt(x.Body).(*minic.BlockStmt)
		}
		return nd
	}
	return d
}

func cloneType(t minic.TypeSpec) minic.TypeSpec {
	u := t
	u.Dims = append([]int(nil), t.Dims...)
	return u
}

func cloneVarDecl(v *minic.VarDecl) *minic.VarDecl {
	nv := &minic.VarDecl{Name: v.Name, Type: cloneType(v.Type), Const: v.Const}
	if v.Init != nil {
		nv.Init = cloneExpr(v.Init)
	}
	for _, e := range v.Inits {
		nv.Inits = append(nv.Inits, cloneExpr(e))
	}
	return nv
}

func cloneStmts(list []minic.Stmt) []minic.Stmt {
	if list == nil {
		return nil
	}
	out := make([]minic.Stmt, len(list))
	for i, s := range list {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s minic.Stmt) minic.Stmt {
	switch x := s.(type) {
	case *minic.BlockStmt:
		return &minic.BlockStmt{List: cloneStmts(x.List)}
	case *minic.DeclStmt:
		nd := &minic.DeclStmt{}
		for _, v := range x.Vars {
			nd.Vars = append(nd.Vars, cloneVarDecl(v))
		}
		return nd
	case *minic.IfStmt:
		ns := &minic.IfStmt{Cond: cloneExpr(x.Cond), Then: cloneStmt(x.Then)}
		if x.Else != nil {
			ns.Else = cloneStmt(x.Else)
		}
		return ns
	case *minic.WhileStmt:
		return &minic.WhileStmt{Cond: cloneExpr(x.Cond), Body: cloneStmt(x.Body)}
	case *minic.DoWhileStmt:
		return &minic.DoWhileStmt{Body: cloneStmt(x.Body), Cond: cloneExpr(x.Cond)}
	case *minic.ForStmt:
		ns := &minic.ForStmt{Body: cloneStmt(x.Body)}
		if x.Init != nil {
			ns.Init = cloneStmt(x.Init)
		}
		if x.Cond != nil {
			ns.Cond = cloneExpr(x.Cond)
		}
		if x.Post != nil {
			ns.Post = cloneExpr(x.Post)
		}
		return ns
	case *minic.SwitchStmt:
		ns := &minic.SwitchStmt{Tag: cloneExpr(x.Tag)}
		for _, c := range x.Cases {
			ns.Cases = append(ns.Cases, &minic.SwitchCase{
				Val: c.Val, IsDefault: c.IsDefault, Body: cloneStmts(c.Body),
			})
		}
		return ns
	case *minic.BreakStmt:
		return &minic.BreakStmt{}
	case *minic.ContinueStmt:
		return &minic.ContinueStmt{}
	case *minic.ReturnStmt:
		ns := &minic.ReturnStmt{}
		if x.Val != nil {
			ns.Val = cloneExpr(x.Val)
		}
		return ns
	case *minic.ExprStmt:
		return &minic.ExprStmt{X: cloneExpr(x.X)}
	case *minic.EmptyStmt:
		return &minic.EmptyStmt{}
	}
	return s
}

func cloneExpr(e minic.Expr) minic.Expr {
	switch x := e.(type) {
	case *minic.Ident:
		return &minic.Ident{Name: x.Name}
	case *minic.IntLit:
		return &minic.IntLit{Val: x.Val}
	case *minic.FloatLit:
		return &minic.FloatLit{Val: x.Val}
	case *minic.CharLit:
		return &minic.CharLit{Val: x.Val}
	case *minic.StringLit:
		return &minic.StringLit{Val: x.Val}
	case *minic.BinaryExpr:
		return &minic.BinaryExpr{Op: x.Op, X: cloneExpr(x.X), Y: cloneExpr(x.Y)}
	case *minic.UnaryExpr:
		return &minic.UnaryExpr{Op: x.Op, X: cloneExpr(x.X)}
	case *minic.IncDecExpr:
		return &minic.IncDecExpr{X: cloneExpr(x.X), Op: x.Op, Post: x.Post}
	case *minic.AssignExpr:
		return &minic.AssignExpr{Op: x.Op, LHS: cloneExpr(x.LHS), RHS: cloneExpr(x.RHS)}
	case *minic.CondExpr:
		return &minic.CondExpr{Cond: cloneExpr(x.Cond), Then: cloneExpr(x.Then), Else: cloneExpr(x.Else)}
	case *minic.CallExpr:
		nc := &minic.CallExpr{Name: x.Name}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, cloneExpr(a))
		}
		return nc
	case *minic.IndexExpr:
		return &minic.IndexExpr{X: cloneExpr(x.X), Idx: cloneExpr(x.Idx)}
	case *minic.FieldExpr:
		return &minic.FieldExpr{X: cloneExpr(x.X), Name: x.Name, Arrow: x.Arrow}
	case *minic.CastExpr:
		return &minic.CastExpr{To: cloneType(x.To), X: cloneExpr(x.X)}
	case *minic.ParenExpr:
		return &minic.ParenExpr{X: cloneExpr(x.X)}
	}
	return e
}

// walkStmts visits every statement list in the file bottom-up, letting fn
// rewrite the list (insertions, deletions, replacements).
func walkStmts(f *minic.File, fn func([]minic.Stmt) []minic.Stmt) {
	for _, d := range f.Decls {
		fd, ok := d.(*minic.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		walkStmtLists(fd.Body, fn)
	}
}

func walkStmtLists(s minic.Stmt, fn func([]minic.Stmt) []minic.Stmt) {
	switch x := s.(type) {
	case *minic.BlockStmt:
		for _, st := range x.List {
			walkStmtLists(st, fn)
		}
		x.List = fn(x.List)
	case *minic.IfStmt:
		walkStmtLists(x.Then, fn)
		if x.Else != nil {
			walkStmtLists(x.Else, fn)
		}
	case *minic.WhileStmt:
		walkStmtLists(x.Body, fn)
	case *minic.DoWhileStmt:
		walkStmtLists(x.Body, fn)
	case *minic.ForStmt:
		walkStmtLists(x.Body, fn)
	case *minic.SwitchStmt:
		for _, c := range x.Cases {
			for _, st := range c.Body {
				walkStmtLists(st, fn)
			}
			c.Body = fn(c.Body)
		}
	}
}

// rewriteStmt rewrites each statement node bottom-up via fn.
func rewriteStmt(s minic.Stmt, fn func(minic.Stmt) minic.Stmt) minic.Stmt {
	switch x := s.(type) {
	case *minic.BlockStmt:
		for i, st := range x.List {
			x.List[i] = rewriteStmt(st, fn)
		}
	case *minic.IfStmt:
		x.Then = rewriteStmt(x.Then, fn)
		if x.Else != nil {
			x.Else = rewriteStmt(x.Else, fn)
		}
	case *minic.WhileStmt:
		x.Body = rewriteStmt(x.Body, fn)
	case *minic.DoWhileStmt:
		x.Body = rewriteStmt(x.Body, fn)
	case *minic.ForStmt:
		if x.Init != nil {
			x.Init = rewriteStmt(x.Init, fn)
		}
		x.Body = rewriteStmt(x.Body, fn)
	case *minic.SwitchStmt:
		for _, c := range x.Cases {
			for i, st := range c.Body {
				c.Body[i] = rewriteStmt(st, fn)
			}
		}
	}
	return fn(s)
}

// rewriteFileStmts applies fn to every statement in every function.
func rewriteFileStmts(f *minic.File, fn func(minic.Stmt) minic.Stmt) {
	for _, d := range f.Decls {
		fd, ok := d.(*minic.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fd.Body = rewriteStmt(fd.Body, fn).(*minic.BlockStmt)
	}
}

// rewriteExpr rewrites an expression tree bottom-up.
func rewriteExpr(e minic.Expr, fn func(minic.Expr) minic.Expr) minic.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *minic.BinaryExpr:
		x.X = rewriteExpr(x.X, fn)
		x.Y = rewriteExpr(x.Y, fn)
	case *minic.UnaryExpr:
		x.X = rewriteExpr(x.X, fn)
	case *minic.IncDecExpr:
		x.X = rewriteExpr(x.X, fn)
	case *minic.AssignExpr:
		x.LHS = rewriteExpr(x.LHS, fn)
		x.RHS = rewriteExpr(x.RHS, fn)
	case *minic.CondExpr:
		x.Cond = rewriteExpr(x.Cond, fn)
		x.Then = rewriteExpr(x.Then, fn)
		x.Else = rewriteExpr(x.Else, fn)
	case *minic.CallExpr:
		for i, a := range x.Args {
			x.Args[i] = rewriteExpr(a, fn)
		}
	case *minic.IndexExpr:
		x.X = rewriteExpr(x.X, fn)
		x.Idx = rewriteExpr(x.Idx, fn)
	case *minic.FieldExpr:
		x.X = rewriteExpr(x.X, fn)
	case *minic.CastExpr:
		x.X = rewriteExpr(x.X, fn)
	case *minic.ParenExpr:
		x.X = rewriteExpr(x.X, fn)
	}
	return fn(e)
}

// rewriteAllExprs applies fn to every expression in every statement of the
// file, including loop clauses, switch tags and initializers.
func rewriteAllExprs(f *minic.File, fn func(minic.Expr) minic.Expr) {
	rewriteFileStmts(f, func(s minic.Stmt) minic.Stmt {
		switch x := s.(type) {
		case *minic.ExprStmt:
			x.X = rewriteExpr(x.X, fn)
		case *minic.IfStmt:
			x.Cond = rewriteExpr(x.Cond, fn)
		case *minic.WhileStmt:
			x.Cond = rewriteExpr(x.Cond, fn)
		case *minic.DoWhileStmt:
			x.Cond = rewriteExpr(x.Cond, fn)
		case *minic.ForStmt:
			if x.Cond != nil {
				x.Cond = rewriteExpr(x.Cond, fn)
			}
			if x.Post != nil {
				x.Post = rewriteExpr(x.Post, fn)
			}
		case *minic.SwitchStmt:
			x.Tag = rewriteExpr(x.Tag, fn)
		case *minic.ReturnStmt:
			if x.Val != nil {
				x.Val = rewriteExpr(x.Val, fn)
			}
		case *minic.DeclStmt:
			for _, v := range x.Vars {
				if v.Init != nil {
					v.Init = rewriteExpr(v.Init, fn)
				}
				for i, e := range v.Inits {
					v.Inits[i] = rewriteExpr(e, fn)
				}
			}
		}
		return s
	})
}

// containsContinue reports whether s contains a continue binding to the
// current loop level (not nested in an inner loop).
func containsContinue(s minic.Stmt) bool {
	switch x := s.(type) {
	case *minic.ContinueStmt:
		return true
	case *minic.BlockStmt:
		for _, st := range x.List {
			if containsContinue(st) {
				return true
			}
		}
	case *minic.IfStmt:
		if containsContinue(x.Then) {
			return true
		}
		if x.Else != nil && containsContinue(x.Else) {
			return true
		}
	case *minic.SwitchStmt:
		for _, c := range x.Cases {
			for _, st := range c.Body {
				if containsContinue(st) {
					return true
				}
			}
		}
	}
	// while/do/for open a new loop level: continues inside bind there.
	return false
}

// containsLoopBreak reports whether s contains a break binding at this
// statement level (not captured by a nested loop or switch).
func containsLoopBreak(s minic.Stmt) bool {
	switch x := s.(type) {
	case *minic.BreakStmt:
		return true
	case *minic.BlockStmt:
		for _, st := range x.List {
			if containsLoopBreak(st) {
				return true
			}
		}
	case *minic.IfStmt:
		if containsLoopBreak(x.Then) {
			return true
		}
		if x.Else != nil && containsLoopBreak(x.Else) {
			return true
		}
	}
	return false
}

// sideEffectFree reports whether evaluating e twice is observably the same
// as evaluating it once.
func sideEffectFree(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.Ident, *minic.IntLit, *minic.FloatLit, *minic.CharLit, *minic.StringLit:
		return true
	case *minic.BinaryExpr:
		return sideEffectFree(x.X) && sideEffectFree(x.Y)
	case *minic.UnaryExpr:
		return x.Op != "*" && sideEffectFree(x.X) // loads may trap on bad ptr
	case *minic.IndexExpr:
		return sideEffectFree(x.X) && sideEffectFree(x.Idx)
	case *minic.FieldExpr:
		return sideEffectFree(x.X)
	case *minic.CastExpr:
		return sideEffectFree(x.X)
	case *minic.ParenExpr:
		return sideEffectFree(x.X)
	case *minic.CondExpr:
		return sideEffectFree(x.Cond) && sideEffectFree(x.Then) && sideEffectFree(x.Else)
	}
	return false
}
