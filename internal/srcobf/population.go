package srcobf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/ir"
	"repro/internal/minic"
)

// This file is the online face of the four evader strategies: the same
// search moves TransformFile runs once per call, promoted into persistent
// populations with explicit state (members, step sequences) that an
// adversarial arena can evolve generation by generation against a changing
// objective — e.g. a classifier that retrains on the evasions it catches.

// Step is one element of a transformation sequence: a named transform plus
// the seed of the private RNG it is applied with, so sequences replay
// deterministically from the original program.
type Step struct {
	Name string
	Seed int64
}

// Objective scores a candidate program (higher is better) from its flat IR
// view; ok=false marks the candidate invalid (it is discarded). Objectives
// may change between generations — Evolve re-scores every member under the
// current objective before proposing moves, so scores stay comparable.
type Objective func(fl *ir.Flat) (score float64, ok bool)

// Member is one individual of a population: a transformation sequence, the
// program it denotes and that program's score under the population's
// objective at the last evaluation.
//
// What Seq/File track is strategy-specific: for rs and drlsg they are the
// best candidate found so far (monotone within a generation), for mcmc the
// chain's current state (the walk may move downhill), and for ga the
// member's current genome.
type Member struct {
	Seq   []Step
	File  *minic.File
	Score float64
	// Flat is the cached flat IR view of File, carried over from the probe
	// compile that validated it (or rebuilt at the last scoring). It is nil
	// only when File never compiled; consumers that need a view
	// unconditionally fall back to FlatView.
	Flat *ir.Flat
}

// Population is the persistent state of one evader strategy attacking one
// program. Evolve advances every member by one generation; all randomness
// flows through the rng passed to Evolve, so a population is deterministic
// for a fixed seed sequence regardless of how many sibling populations run
// concurrently.
type Population struct {
	Strategy string
	Members  []Member

	orig     *minic.File
	origHist embed.Vector
	origView *ir.Flat
	obj      Objective
}

// Per-generation search budgets. One Evolve call costs at most
// len(Members) * (budget) objective evaluations.
const (
	mcmcStepsPerGen = 8
	mcmcTemperature = 2.0
	drlsgWidth      = 4
	gaMutationRate  = 0.4
	rsMinSeq        = 5
)

// FlatView compiles a snapshot of f and returns its immutable flat IR view
// (the input Objective consumes). The AST is cloned first, so f is never
// mutated and stays replayable.
func FlatView(f *minic.File) (*ir.Flat, error) {
	m, err := minic.Compile(cloneFile(f), "member")
	if err != nil {
		return nil, err
	}
	return ir.Flatten(m), nil
}

// NewPopulation builds a size-member population of the named strategy
// around program f, evaluating every initial member under obj (nil = the
// default objective, opcode-histogram distance from the original program —
// the quantity the batch strategies maximize). The original program must
// compile.
func NewPopulation(f *minic.File, strategy string, size int, obj Objective, rng *rand.Rand) (*Population, error) {
	found := false
	for _, s := range StrategyNames() {
		if s == strategy {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("srcobf: unknown strategy %q", strategy)
	}
	if size < 1 {
		return nil, fmt.Errorf("srcobf: population size must be >= 1, got %d", size)
	}
	orig := cloneFile(f)
	ofl, err := origFlat(orig)
	if err != nil {
		return nil, fmt.Errorf("srcobf: original program does not compile: %w", err)
	}
	p := &Population{Strategy: strategy, orig: orig, origHist: embed.HistogramFlat(ofl), origView: ofl}
	p.SetObjective(obj)
	names := TransformNames()
	for i := 0; i < size; i++ {
		var m Member
		switch strategy {
		case "rs", "ga":
			// Seeded with a random sequence: rs members hill-climb from it,
			// ga members are the initial genomes.
			m.Seq = p.randSeq(names, rng)
		default:
			// mcmc chains and drlsg searchers start at the original program.
		}
		var fl *ir.Flat
		m.File, fl = applySeq(orig, m.Seq)
		m.Score, m.Flat = p.score(m.File, fl)
		p.Members = append(p.Members, m)
	}
	return p, nil
}

// SetObjective swaps the scoring function (nil restores the default
// histogram-distance objective). Member scores are not recomputed here;
// Evolve re-scores at entry.
func (p *Population) SetObjective(obj Objective) {
	if obj == nil {
		orig := p.origHist
		obj = func(fl *ir.Flat) (float64, bool) {
			return embed.Distance(orig, embed.HistogramFlat(fl)), true
		}
	}
	p.obj = obj
}

// score evaluates a candidate AST under the current objective, reusing the
// caller's flat view when one is on hand and compiling only when it is not.
// Invalid candidates (failed compile or objective rejection) score negative
// infinity so every valid program beats them. The view that fed the
// objective comes back so callers can cache it on the member.
func (p *Population) score(f *minic.File, fl *ir.Flat) (float64, *ir.Flat) {
	if fl == nil {
		// A nil view from applySeq means no step was accepted, so f is an
		// untouched clone of the original program — its precomputed view is
		// exact and saves recompiling the same source for every such member.
		fl = p.origView
	}
	if fl == nil {
		var err error
		fl, err = FlatView(f)
		if err != nil {
			return math.Inf(-1), nil
		}
	}
	s, ok := p.obj(fl)
	if !ok {
		return math.Inf(-1), fl
	}
	return s, fl
}

// randSeq draws a fresh random sequence the way the batch rs strategy does:
// a shuffled prefix of the transform catalogue, at least rsMinSeq long.
func (p *Population) randSeq(names []string, rng *rand.Rand) []Step {
	shuffled := append([]string(nil), names...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	k := rsMinSeq + rng.Intn(len(shuffled)-rsMinSeq+1)
	seq := make([]Step, 0, k)
	for _, n := range shuffled[:k] {
		seq = append(seq, Step{n, rng.Int63()})
	}
	return seq
}

// Best returns the highest-scoring member (ties resolve to the lowest
// index, so the result is deterministic).
func (p *Population) Best() *Member {
	bi := 0
	for i := range p.Members {
		if p.Members[i].Score > p.Members[bi].Score {
			bi = i
		}
	}
	return &p.Members[bi]
}

// Evolve advances the population one generation under the current
// objective. Members are first re-scored (the objective may have changed
// since the last generation), then each strategy makes its moves:
//
//	rs     every member proposes a fresh random sequence and keeps it only
//	       on improvement (independent restart hill-climbers)
//	mcmc   every member runs mcmcStepsPerGen Metropolis steps of its own
//	       chain (add/drop a step, accept uphill or with exp(delta/T))
//	drlsg  every member greedily extends its sequence with the best of
//	       drlsgWidth candidate actions, keeping the best program so far
//	ga     one generation of tournament selection, one-point crossover and
//	       mutation over the member genomes, with elitism
//
// All randomness comes from rng; members are processed in index order, so
// Evolve is deterministic for a fixed seed.
func (p *Population) Evolve(rng *rand.Rand) {
	for i := range p.Members {
		m := &p.Members[i]
		m.Score, m.Flat = p.score(m.File, m.Flat)
	}
	names := TransformNames()
	switch p.Strategy {
	case "rs":
		for i := range p.Members {
			m := &p.Members[i]
			seq := p.randSeq(names, rng)
			f, fl := applySeq(p.orig, seq)
			if s, fl := p.score(f, fl); s > m.Score {
				m.Seq, m.File, m.Score, m.Flat = seq, f, s, fl
			}
		}
	case "mcmc":
		for i := range p.Members {
			p.mcmcSteps(&p.Members[i], names, rng)
		}
	case "drlsg":
		for i := range p.Members {
			p.drlsgRound(&p.Members[i], names, rng)
		}
	case "ga":
		p.gaGeneration(names, rng)
	}
}

// mcmcSteps advances one Metropolis chain mcmcStepsPerGen steps.
func (p *Population) mcmcSteps(m *Member, names []string, rng *rand.Rand) {
	for s := 0; s < mcmcStepsPerGen; s++ {
		var cand []Step
		if len(m.Seq) > 3 && rng.Float64() < 0.25 {
			j := rng.Intn(len(m.Seq))
			cand = append(append([]Step(nil), m.Seq[:j]...), m.Seq[j+1:]...)
		} else {
			cand = append(append([]Step(nil), m.Seq...), Step{names[rng.Intn(len(names))], rng.Int63()})
		}
		f, cfl := applySeq(p.orig, cand)
		sc, cfl := p.score(f, cfl)
		if math.IsInf(sc, -1) {
			continue
		}
		delta := sc - m.Score
		if delta >= 0 || rng.Float64() < math.Exp(delta/mcmcTemperature) {
			m.Seq, m.File, m.Score, m.Flat = cand, f, sc, cfl
		}
	}
}

// drlsgRound extends one greedy searcher by its best candidate action; the
// member keeps the best program seen so far.
func (p *Population) drlsgRound(m *Member, names []string, rng *rand.Rand) {
	type cand struct {
		seq   []Step
		file  *minic.File
		score float64
		flat  *ir.Flat
	}
	var top *cand
	for w := 0; w < drlsgWidth; w++ {
		c := append(append([]Step(nil), m.Seq...), Step{names[rng.Intn(len(names))], rng.Int63()})
		f, fl := applySeq(p.orig, c)
		s, fl := p.score(f, fl)
		if math.IsInf(s, -1) {
			continue
		}
		if top == nil || s > top.score {
			top = &cand{c, f, s, fl}
		}
	}
	if top == nil {
		return
	}
	// The working sequence always advances (greedy commitment); File/Score
	// only improve.
	m.Seq = top.seq
	if top.score >= m.Score {
		m.File, m.Score, m.Flat = top.file, top.score, top.flat
	}
}

// gaGeneration runs one generation of the genetic strategy over the whole
// member set: elitism, tournament selection, one-point crossover, mutation.
func (p *Population) gaGeneration(names []string, rng *rand.Rand) {
	n := len(p.Members)
	if n == 1 {
		// A lone genome cannot cross over; mutate it hill-climbing style.
		m := &p.Members[0]
		cand := append([]Step(nil), m.Seq...)
		if len(cand) == 0 {
			cand = p.randSeq(names, rng)
		} else {
			cand[rng.Intn(len(cand))] = Step{names[rng.Intn(len(names))], rng.Int63()}
		}
		f, fl := applySeq(p.orig, cand)
		if s, fl := p.score(f, fl); s > m.Score {
			m.Seq, m.File, m.Score, m.Flat = cand, f, s, fl
		}
		return
	}
	tournament := func() int {
		a, b := rng.Intn(n), rng.Intn(n)
		if p.Members[a].Score >= p.Members[b].Score {
			return a
		}
		return b
	}
	next := make([]Member, 0, n)
	next = append(next, *p.Best())
	for len(next) < n {
		pa, pb := p.Members[tournament()].Seq, p.Members[tournament()].Seq
		child := crossover(pa, pb, rng)
		if len(child) == 0 {
			child = p.randSeq(names, rng)
		} else if rng.Float64() < gaMutationRate {
			child[rng.Intn(len(child))] = Step{names[rng.Intn(len(names))], rng.Int63()}
		}
		f, fl := applySeq(p.orig, child)
		s, fl := p.score(f, fl)
		next = append(next, Member{Seq: child, File: f, Score: s, Flat: fl})
	}
	p.Members = next
}

// crossover splices two parent sequences at one point each, tolerating
// unequal lengths (the arena's sequences grow at different rates).
func crossover(pa, pb []Step, rng *rand.Rand) []Step {
	ca, cb := 0, 0
	if len(pa) > 0 {
		ca = rng.Intn(len(pa) + 1)
	}
	if len(pb) > 0 {
		cb = rng.Intn(len(pb) + 1)
	}
	return append(append([]Step(nil), pa[:ca]...), pb[cb:]...)
}
