package srcobf_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/embed"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/passes"
	"repro/internal/srcobf"
)

var programs = []struct {
	name string
	src  string
}{
	{"loops_and_branches", `
	int main() {
		int s = 0;
		for (int i = 0; i < 25; i++) {
			if (i % 3 == 0) s += i * 2;
			else if (i % 3 == 1) s -= 1;
			else s ^= i;
		}
		int j = 0;
		while (j < 5) { s += j; j++; }
		return s;
	}`},
	{"switchy", `
	int cat(int x) {
		switch (x % 4) {
		case 0: return 10;
		case 1: return 20;
		case 2: return 30;
		default: return 40;
		}
	}
	int main() {
		int acc = 0;
		for (int i = 0; i < 16; i++) acc += cat(i);
		return acc;
	}`},
	{"arrays_ternary", `
	int main() {
		int a[12];
		for (int i = 0; i < 12; i++) a[i] = i * i - 3;
		int mx = a[0];
		for (int i = 1; i < 12; i++) mx = a[i] > mx ? a[i] : mx;
		int s = 0;
		do { s += mx; mx--; } while (mx > 100);
		return s + a[5];
	}`},
	{"recursion", `
	int gcd(int a, int b) {
		if (b == 0) return a;
		return gcd(b, a % b);
	}
	int main() { return gcd(252, 105) * 10 + gcd(17, 5); }`},
}

func behaviour(t *testing.T, src string) (int64, string) {
	t.Helper()
	m, err := minic.CompileSource(src, "t")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret, res.Output
}

// TestEachTransformPreservesSemantics applies every transform individually
// with multiple seeds.
func TestEachTransformPreservesSemantics(t *testing.T) {
	for _, prog := range programs {
		wantRet, wantOut := behaviour(t, prog.src)
		f, err := minic.Parse(prog.src)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range srcobf.Transforms() {
			for seed := int64(1); seed <= 4; seed++ {
				clone, err := minic.Parse(minic.Print(f)) // fresh AST
				if err != nil {
					t.Fatal(err)
				}
				tr.Apply(clone, rand.New(rand.NewSource(seed)))
				out := minic.Print(clone)
				gotRet, gotOut := behaviour(t, out)
				if gotRet != wantRet || gotOut != wantOut {
					t.Fatalf("%s/%s seed %d changed behaviour: ret %d->%d\nsource:\n%s",
						prog.name, tr.Name, seed, wantRet, gotRet, out)
				}
			}
		}
	}
}

// TestStrategiesPreserveSemantics runs all four strategies end to end.
func TestStrategiesPreserveSemantics(t *testing.T) {
	for _, prog := range programs {
		wantRet, wantOut := behaviour(t, prog.src)
		for _, strat := range srcobf.StrategyNames() {
			out, err := srcobf.TransformSource(prog.src, strat, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatalf("%s/%s: %v", prog.name, strat, err)
			}
			gotRet, gotOut := behaviour(t, out)
			if gotRet != wantRet || gotOut != wantOut {
				t.Fatalf("%s/%s changed behaviour: ret %d->%d\nsource:\n%s",
					prog.name, strat, wantRet, gotRet, out)
			}
		}
	}
}

// TestStrategiesMoveHistogram: each strategy should usually move the opcode
// histogram (that is its objective).
func TestStrategiesMoveHistogram(t *testing.T) {
	src := programs[0].src
	m0, _ := minic.CompileSource(src, "t")
	h0 := embed.Histogram(m0)
	moved := 0
	for _, strat := range srcobf.StrategyNames() {
		out, err := srcobf.TransformSource(src, strat, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		m1, err := minic.CompileSource(out, "t")
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if embed.Distance(h0, embed.Histogram(m1)) > 0 {
			moved++
		}
	}
	if moved < 3 {
		t.Fatalf("only %d/4 strategies moved the histogram", moved)
	}
}

// TestSourceEvasionDissolvesUnderO3 reproduces the paper's key observation:
// after -O3 normalization, source-level obfuscation mostly disappears. We
// require the O3 histogram distance to be below the O0 distance.
func TestSourceEvasionDissolvesUnderO3(t *testing.T) {
	src := programs[0].src
	out, err := srcobf.TransformSource(src, "rs", rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	distAt := func(level passes.Level) float64 {
		m0, _ := minic.CompileSource(src, "a")
		m1, _ := minic.CompileSource(out, "b")
		if err := passes.Optimize(m0, level); err != nil {
			t.Fatal(err)
		}
		if err := passes.Optimize(m1, level); err != nil {
			t.Fatal(err)
		}
		return embed.Distance(embed.Histogram(m0), embed.Histogram(m1))
	}
	d0 := distAt(passes.O0)
	d3 := distAt(passes.O3)
	if d0 == 0 {
		t.Skip("rs produced an IR-identical program at O0")
	}
	if d3 >= d0 {
		t.Fatalf("O3 did not shrink the histogram distance: O0=%v O3=%v", d0, d3)
	}
}

func TestTransformNamesCount(t *testing.T) {
	names := srcobf.TransformNames()
	if len(names) != 15 {
		t.Fatalf("have %d transforms, the paper's evaders compose 15", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate transform %q", n)
		}
		seen[n] = true
	}
}

func TestUnknownStrategy(t *testing.T) {
	if _, err := srcobf.TransformSource("int main() { return 0; }", "rl", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

// TestTransformedSourceStillPrintsAndReparses guards the printer contract.
func TestTransformedSourceStillPrintsAndReparses(t *testing.T) {
	for _, prog := range programs {
		out, err := srcobf.TransformSource(prog.src, "rs", rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := minic.Parse(out); err != nil {
			t.Fatalf("%s: transformed source does not reparse: %v\n%s", prog.name, err, out)
		}
	}
}

// TestTransformsHandleStructs: the AST walkers must traverse struct
// declarations and member accesses without breaking them.
func TestTransformsHandleStructs(t *testing.T) {
	src := `
	struct Acc { int lo; int hi; };
	void add(struct Acc *a, int v) {
		a->lo += v;
		if (a->lo >= 100) { a->hi++; a->lo -= 100; }
	}
	int main() {
		struct Acc a;
		a.lo = 0;
		a.hi = 0;
		for (int i = 0; i < 30; i++) add(&a, i);
		return a.hi * 1000 + a.lo;
	}`
	wantRet, wantOut := behaviour(t, src)
	for _, strat := range srcobf.StrategyNames() {
		out, err := srcobf.TransformSource(src, strat, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		gotRet, gotOut := behaviour(t, out)
		if gotRet != wantRet || gotOut != wantOut {
			t.Fatalf("%s changed struct program behaviour: %d -> %d\n%s", strat, wantRet, gotRet, out)
		}
	}
}

// TestTransformFileDeterministic: the one-shot entry point is a pure
// function of (source, strategy, seed) — same seed, byte-identical winner.
func TestTransformFileDeterministic(t *testing.T) {
	src := programs[1].src
	for _, strat := range srcobf.StrategyNames() {
		a, err := srcobf.TransformSource(src, strat, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		b, err := srcobf.TransformSource(src, strat, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if a != b {
			t.Fatalf("%s: same seed produced different winners:\n--- first\n%s\n--- second\n%s", strat, a, b)
		}
	}
}

// TestPopulationDeterministicAcrossWorkers: evolving a batch of populations
// concurrently must give byte-identical winners at any worker count, as long
// as per-population seeds are pre-derived sequentially from the master RNG —
// the same discipline the arena's generation loop uses.
func TestPopulationDeterministicAcrossWorkers(t *testing.T) {
	f, err := minic.Parse(programs[3].src)
	if err != nil {
		t.Fatal(err)
	}
	const nPops = 4
	for _, strat := range srcobf.StrategyNames() {
		runAt := func(workers int) []string {
			master := rand.New(rand.NewSource(42))
			seeds := make([]int64, nPops)
			for i := range seeds {
				seeds[i] = master.Int63()
			}
			outs := make([]string, nPops)
			sem := make(chan struct{}, workers)
			var wg sync.WaitGroup
			for i := 0; i < nPops; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					rng := rand.New(rand.NewSource(seeds[i]))
					p, err := srcobf.NewPopulation(f, strat, 3, nil, rng)
					if err != nil {
						t.Error(err)
						return
					}
					for g := 0; g < 2; g++ {
						p.Evolve(rng)
					}
					outs[i] = minic.Print(p.Best().File)
				}(i)
			}
			wg.Wait()
			return outs
		}
		base := runAt(1)
		for _, w := range []int{4, 8} {
			got := runAt(w)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("%s: population %d winner differs between 1 and %d workers", strat, i, w)
				}
			}
		}
	}
}
