package srcobf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/minic"
)

// StrategyNames lists the evader strategies, in the paper's naming.
func StrategyNames() []string { return []string{"rs", "mcmc", "drlsg", "ga"} }

// step is one element of a transformation sequence: a named transform plus
// the seed of the private RNG it is applied with, so that sequences can be
// replayed deterministically (the MCMC and GA strategies re-apply candidate
// sequences from scratch).
type step struct {
	name string
	seed int64
}

// applySeq replays a transformation sequence on a fresh clone of orig. A
// step whose result no longer compiles is skipped — the safety net that
// keeps every emitted program valid.
func applySeq(orig *minic.File, seq []step) *minic.File {
	cur := cloneFile(orig)
	for _, st := range seq {
		t, err := transformByName(st.name)
		if err != nil {
			continue
		}
		cand := cloneFile(cur)
		if !t.Apply(cand, rand.New(rand.NewSource(st.seed))) {
			continue
		}
		if _, err := minic.Compile(cand, "probe"); err != nil {
			continue
		}
		cur = cand
	}
	return cur
}

// score is the evader's objective: the Euclidean distance between the
// opcode histograms of the original and the transformed program (greater
// distance, better evasion — the quantity Figure 10 analyzes).
func score(orig embed.Vector, f *minic.File) float64 {
	m, err := minic.Compile(cloneFile(f), "scored")
	if err != nil {
		return -1
	}
	return embed.Distance(orig, embed.Histogram(m))
}

func origHistogram(f *minic.File) (embed.Vector, error) {
	m, err := minic.Compile(cloneFile(f), "orig")
	if err != nil {
		return nil, err
	}
	return embed.Histogram(m), nil
}

// TransformFile applies the named strategy to a parsed program and returns
// the transformed AST.
func TransformFile(f *minic.File, strategy string, rng *rand.Rand) (*minic.File, error) {
	switch strategy {
	case "rs":
		return randomSearch(f, rng), nil
	case "mcmc":
		return mcmc(f, rng)
	case "drlsg":
		return drlsg(f, rng)
	case "ga":
		return genetic(f, rng)
	default:
		return nil, fmt.Errorf("srcobf: unknown strategy %q", strategy)
	}
}

// TransformSource parses, transforms and re-prints MiniC source.
func TransformSource(src, strategy string, rng *rand.Rand) (string, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return "", err
	}
	nf, err := TransformFile(f, strategy, rng)
	if err != nil {
		return "", err
	}
	out := minic.Print(nf)
	if _, err := minic.CompileSource(out, "check"); err != nil {
		return "", fmt.Errorf("srcobf: %s produced uncompilable source: %w", strategy, err)
	}
	return out, nil
}

// randomSearch combines the 15 transformations randomly, without
// repetition (Zhang et al.'s rs strategy).
func randomSearch(f *minic.File, rng *rand.Rand) *minic.File {
	names := TransformNames()
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	k := 5 + rng.Intn(len(names)-4)
	seq := make([]step, 0, k)
	for _, n := range names[:k] {
		seq = append(seq, step{n, rng.Int63()})
	}
	return applySeq(f, seq)
}

// mcmc runs a Metropolis-Hastings walk over transformation sequences,
// favouring programs whose histogram moves away from the original.
func mcmc(f *minic.File, rng *rand.Rand) (*minic.File, error) {
	orig, err := origHistogram(f)
	if err != nil {
		return nil, err
	}
	names := TransformNames()
	const steps = 40
	const temperature = 2.0
	var seq []step
	cur := cloneFile(f)
	curScore := 0.0
	for i := 0; i < steps; i++ {
		var cand []step
		if len(seq) > 3 && rng.Float64() < 0.25 {
			// Drop a random step (the reverse move keeps the chain mixing).
			j := rng.Intn(len(seq))
			cand = append(append([]step(nil), seq[:j]...), seq[j+1:]...)
		} else {
			cand = append(append([]step(nil), seq...), step{names[rng.Intn(len(names))], rng.Int63()})
		}
		candFile := applySeq(f, cand)
		s := score(orig, candFile)
		if s < 0 {
			continue
		}
		delta := s - curScore
		if delta >= 0 || rng.Float64() < math.Exp(delta/temperature) {
			seq, cur, curScore = cand, candFile, s
		}
	}
	return cur, nil
}

// drlsg stands in for Zhang et al.'s deep-reinforcement-learning sequence
// generator: a greedy policy that, at each round, evaluates a handful of
// candidate actions and commits to the one maximizing the embedding
// distance from the original program — the exact objective the DRL agent is
// trained on. (See DESIGN.md for the substitution rationale.)
func drlsg(f *minic.File, rng *rand.Rand) (*minic.File, error) {
	orig, err := origHistogram(f)
	if err != nil {
		return nil, err
	}
	names := TransformNames()
	var seq []step
	best := cloneFile(f)
	bestScore := 0.0
	const rounds = 12
	const width = 4
	for r := 0; r < rounds; r++ {
		type cand struct {
			seq   []step
			file  *minic.File
			score float64
		}
		var top *cand
		for w := 0; w < width; w++ {
			c := append(append([]step(nil), seq...), step{names[rng.Intn(len(names))], rng.Int63()})
			cf := applySeq(f, c)
			s := score(orig, cf)
			if s < 0 {
				continue
			}
			if top == nil || s > top.score {
				top = &cand{c, cf, s}
			}
		}
		if top == nil {
			break
		}
		seq = top.seq
		if top.score >= bestScore {
			best, bestScore = top.file, top.score
		}
	}
	return best, nil
}

// genetic evolves transformation sequences with tournament selection,
// one-point crossover and mutation (Zhang et al.'s ga strategy; used by the
// paper's RQ7 obfuscator-detection experiment).
func genetic(f *minic.File, rng *rand.Rand) (*minic.File, error) {
	orig, err := origHistogram(f)
	if err != nil {
		return nil, err
	}
	names := TransformNames()
	const (
		popSize     = 8
		seqLen      = 6
		generations = 5
	)
	randSeq := func() []step {
		s := make([]step, seqLen)
		for i := range s {
			s[i] = step{names[rng.Intn(len(names))], rng.Int63()}
		}
		return s
	}
	pop := make([][]step, popSize)
	fit := make([]float64, popSize)
	files := make([]*minic.File, popSize)
	evalIdx := func(i int) {
		files[i] = applySeq(f, pop[i])
		fit[i] = score(orig, files[i])
	}
	for i := range pop {
		pop[i] = randSeq()
		evalIdx(i)
	}
	tournament := func() int {
		a, b := rng.Intn(popSize), rng.Intn(popSize)
		if fit[a] >= fit[b] {
			return a
		}
		return b
	}
	for g := 0; g < generations; g++ {
		next := make([][]step, 0, popSize)
		// Elitism: carry the best.
		bi := 0
		for i := range fit {
			if fit[i] > fit[bi] {
				bi = i
			}
		}
		next = append(next, pop[bi])
		for len(next) < popSize {
			pa, pb := pop[tournament()], pop[tournament()]
			cut := rng.Intn(seqLen)
			child := append(append([]step(nil), pa[:cut]...), pb[cut:]...)
			if rng.Float64() < 0.4 {
				child[rng.Intn(len(child))] = step{names[rng.Intn(len(names))], rng.Int63()}
			}
			next = append(next, child)
		}
		pop = next
		for i := range pop {
			evalIdx(i)
		}
	}
	bi := 0
	for i := range fit {
		if fit[i] > fit[bi] {
			bi = i
		}
	}
	return files[bi], nil
}
