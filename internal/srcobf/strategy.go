package srcobf

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/minic"
)

// StrategyNames lists the evader strategies, in the paper's naming.
func StrategyNames() []string { return []string{"rs", "mcmc", "drlsg", "ga"} }

// applySeq replays a transformation sequence on a fresh clone of orig. A
// step whose result no longer compiles is skipped — the safety net that
// keeps every emitted program valid. The probe compile that validated the
// last accepted step is not thrown away: its flat view comes back alongside
// the AST (nil when no step compiled), so scoring and the coevo arena reuse
// it instead of compiling the same program again.
func applySeq(orig *minic.File, seq []Step) (*minic.File, *ir.Flat) {
	cur := cloneFile(orig)
	var lastMod *ir.Module
	for _, st := range seq {
		t, err := transformByName(st.Name)
		if err != nil {
			continue
		}
		cand := cloneFile(cur)
		if !t.Apply(cand, rand.New(rand.NewSource(st.Seed))) {
			continue
		}
		mod, err := minic.Compile(cand, "member")
		if err != nil {
			continue
		}
		cur, lastMod = cand, mod
	}
	if lastMod == nil {
		return cur, nil
	}
	return cur, ir.Flatten(lastMod)
}

// origFlat compiles the original program once and returns its flat IR view
// — the reference point of the default evasion objective (its histogram is
// the quantity Figure 10 analyzes) and the fallback view score substitutes
// for candidates whose sequences applied no step.
func origFlat(f *minic.File) (*ir.Flat, error) {
	m, err := minic.Compile(cloneFile(f), "orig")
	if err != nil {
		return nil, err
	}
	return ir.Flatten(m), nil
}

// TransformFile applies the named strategy to a parsed program and returns
// the transformed AST. It is the batch (one-shot) entry point: each call
// builds a fresh Population with the strategy's paper-matching budget and
// runs it to completion under the default histogram-distance objective.
//
//	rs     size 1, no Evolve — one random combination of the transform
//	       catalogue (Zhang et al.'s rs draws a single sequence)
//	mcmc   1 chain × 5 generations × 8 Metropolis steps = the batch
//	       walk's 40 steps
//	drlsg  1 searcher × 12 greedy rounds (width 4)
//	ga     8 genomes × 5 generations (tournament/crossover/mutation)
func TransformFile(f *minic.File, strategy string, rng *rand.Rand) (*minic.File, error) {
	var size, gens int
	switch strategy {
	case "rs":
		size, gens = 1, 0
	case "mcmc":
		size, gens = 1, 5
	case "drlsg":
		size, gens = 1, 12
	case "ga":
		size, gens = 8, 5
	default:
		return nil, fmt.Errorf("srcobf: unknown strategy %q", strategy)
	}
	p, err := NewPopulation(f, strategy, size, nil, rng)
	if err != nil {
		return nil, err
	}
	for g := 0; g < gens; g++ {
		p.Evolve(rng)
	}
	return p.Best().File, nil
}

// TransformSource parses, transforms and re-prints MiniC source.
func TransformSource(src, strategy string, rng *rand.Rand) (string, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return "", err
	}
	nf, err := TransformFile(f, strategy, rng)
	if err != nil {
		return "", err
	}
	out := minic.Print(nf)
	if _, err := minic.CompileSource(out, "check"); err != nil {
		return "", fmt.Errorf("srcobf: %s produced uncompilable source: %w", strategy, err)
	}
	return out, nil
}
