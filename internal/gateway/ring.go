package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica indices. Virtual nodes smooth
// the key distribution (vnodes points per replica, fnv64a-hashed); the ring
// itself is immutable after construction — replica health is a
// routing-time filter, not a ring mutation, so a flapping replica does not
// reshuffle every other key's home.
//
// Keys are per-request: the classify/transform `source` field when present
// (so repeated probes of one program land on one replica and re-hit its
// private progcache — the shared-nothing design needs affinity to pay off),
// the raw body bytes otherwise.
type ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

func newRing(replicas, vnodes int) *ring {
	r := &ring{n: replicas}
	r.points = make([]ringPoint, 0, replicas*vnodes)
	for i := 0; i < replicas; i++ {
		for v := 0; v < vnodes; v++ {
			h := hashString("replica-" + strconv.Itoa(i) + "/" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return mix64(h.Sum64())
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw fnv64a over near-identical short
// strings ("replica-0/1", "replica-0/2", ...) leaves the vnode points
// clustered, which starves some replicas of arc length; a final avalanche
// spreads them uniformly. Keys and points go through the same mix, so the
// hash space stays consistent.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// order returns every replica index exactly once, in ring-walk order
// starting from key's home — the preference sequence for routing, retries
// and hedges.
func (r *ring) order(key uint64) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for k := 0; k < len(r.points) && len(out) < r.n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
