package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/serve"
)

// replica is the gateway's view of one backend serve process: its address,
// its probed health, a backpressure cooldown, and the per-replica obs
// series the latency-under-load manifests are cut from.
type replica struct {
	idx  int
	base string // normalized base URL, e.g. "http://127.0.0.1:8081"

	// healthy is refreshed by the /healthz prober and cleared inline by
	// transport failures, so a killed replica stops receiving traffic on
	// the first failed attempt rather than a probe interval later.
	healthy atomic.Bool
	// coolUntil (unix nanos) parks the replica after a 429/503 answer:
	// backpressure-aware routing prefers replicas that are not shedding.
	coolUntil atomic.Int64

	mu       sync.Mutex
	versions map[string]int64      // snapshot versions from the last probe
	lineage  map[string]ml.Lineage // snapshot lineage from the last probe

	requests     *obs.Counter
	failures     *obs.Counter
	backpressure *obs.Counter
	latency      *obs.Histogram
	healthGauge  *obs.Gauge
}

func newReplica(idx int, base string) *replica {
	p := "gateway.replica." + strconv.Itoa(idx)
	r := &replica{
		idx:          idx,
		base:         base,
		requests:     obs.GetCounter(p + ".requests"),
		failures:     obs.GetCounter(p + ".failures"),
		backpressure: obs.GetCounter(p + ".backpressure"),
		latency:      obs.GetHistogram(p + ".latency"),
		healthGauge:  obs.GetGauge(p + ".healthy"),
	}
	// Optimistic until the first probe: traffic flows immediately after
	// boot, and a wrong guess costs one failed attempt, not a probe period.
	r.setHealthy(true)
	return r
}

func (r *replica) setHealthy(ok bool) {
	r.healthy.Store(ok)
	if ok {
		r.healthGauge.Set(1)
	} else {
		r.healthGauge.Set(0)
	}
}

// available reports whether routing should prefer this replica right now.
func (r *replica) available(now time.Time) bool {
	return r.healthy.Load() && now.UnixNano() >= r.coolUntil.Load()
}

func (r *replica) cooling(now time.Time) bool {
	return now.UnixNano() < r.coolUntil.Load()
}

// park extends the backpressure cooldown to now+d (never shortens it).
func (r *replica) park(d time.Duration) {
	until := time.Now().Add(d).UnixNano()
	for {
		cur := r.coolUntil.Load()
		if until <= cur || r.coolUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// probe refreshes health (and the reported snapshot versions) from the
// replica's /healthz.
func (r *replica) probe(ctx context.Context, client *http.Client) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		r.setHealthy(false)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		r.setHealthy(false)
		return
	}
	var h serve.HealthResponse
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ok := resp.StatusCode == http.StatusOK
	r.setHealthy(ok)
	if ok && (h.Versions != nil || h.Lineage != nil) {
		r.mu.Lock()
		if h.Versions != nil {
			r.versions = h.Versions
		}
		r.lineage = h.Lineage
		r.mu.Unlock()
	}
}

func (r *replica) snapshotVersions() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.versions))
	for k, v := range r.versions {
		out[k] = v
	}
	return out
}

func (r *replica) snapshotLineage() map[string]ml.Lineage {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lineage) == 0 {
		return nil
	}
	out := make(map[string]ml.Lineage, len(r.lineage))
	for k, v := range r.lineage {
		out[k] = v
	}
	return out
}
