// Package gateway is the front tier of the sharded serving fabric: it
// consistent-hashes classify/transform requests across N replica serve
// processes, probes each replica's /healthz, routes around backpressure
// (429/503 answers park a replica briefly), retries transient failures with
// bounded exponential backoff, hedges slow requests onto the next replica
// in ring order to cut tail latency, and fans pushed model snapshots out to
// the whole fleet for versioned hot-swap. Each replica keeps a private
// progcache; the source-keyed ring gives repeated probes of one program
// affinity to one replica, which is what makes the shared-nothing caches
// effective.
//
// Endpoints (wire-compatible with a single serve process, so loadgen and
// clients need no changes):
//
//	POST /v1/classify       routed by source (or body) hash, retried/hedged
//	POST /v1/transform      same discipline
//	PUT  /v1/models/{name}  validate snapshot, fan out to every replica
//	GET  /healthz           fleet view: per-replica health + snapshot versions
//	GET  /metricz           JSON snapshot of the obs registry
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config sizes a Gateway. Zero values take the defaults below.
type Config struct {
	// Replicas are the backend base URLs ("host:port" or "http://host:port");
	// at least one is required.
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring.
	VNodes int
	// MaxAttempts bounds the tries per request, each on a distinct replica
	// (clamped to the replica count).
	MaxAttempts int
	// RetryBackoff is the base delay before a retry, doubling per attempt.
	RetryBackoff time.Duration
	// HedgeDelay launches a speculative second attempt on the next replica
	// when the first has not answered yet; first non-retryable answer wins.
	// 0 takes the default; negative disables hedging.
	HedgeDelay time.Duration
	// ProbeInterval is the /healthz polling period.
	ProbeInterval time.Duration
	// Cooldown parks a replica that answered 429/503 or failed transport.
	Cooldown time.Duration
	// MaxInFlight bounds admitted requests; beyond it the gateway answers
	// 429 without consulting any replica.
	MaxInFlight int
	// RequestTimeout is the end-to-end budget per request, retries and
	// hedges included.
	RequestTimeout time.Duration
}

const (
	defaultVNodes         = 64
	defaultMaxAttempts    = 3
	defaultRetryBackoff   = 5 * time.Millisecond
	defaultHedgeDelay     = 25 * time.Millisecond
	defaultProbeInterval  = 250 * time.Millisecond
	defaultCooldown       = 500 * time.Millisecond
	defaultMaxInFlight    = 1024
	defaultRequestTimeout = 15 * time.Second
	maxBodyBytes          = 1 << 20
	maxSnapshotBytes      = 64 << 20
	// maxRelayBytes bounds a replica answer the gateway will buffer;
	// transform responses carry printed IR, so this is roomier than the
	// request cap.
	maxRelayBytes = 8 << 20
)

// Gateway fronts a fleet of serve replicas. Build with New, then Start (or
// mount Handler), and Shutdown to drain.
type Gateway struct {
	cfg      Config
	replicas []*replica
	ring     *ring
	client   *http.Client
	admit    chan struct{}
	barrier  *serve.DrainBarrier
	mux      *http.ServeMux
	httpSrv  *http.Server

	probeCancel context.CancelFunc
	probeDone   chan struct{}

	requests  *obs.Counter
	rejected  *obs.Counter
	errors    *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	pushes    *obs.Counter
}

// New validates cfg, applies defaults, builds the ring and starts the
// health prober. Pair with Shutdown even if Start is never called.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = defaultVNodes
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = defaultMaxAttempts
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = defaultHedgeDelay
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = defaultCooldown
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	g := &Gateway{
		cfg:       cfg,
		ring:      newRing(len(cfg.Replicas), cfg.VNodes),
		admit:     make(chan struct{}, cfg.MaxInFlight),
		barrier:   serve.NewDrainBarrier(),
		mux:       http.NewServeMux(),
		probeDone: make(chan struct{}),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}},
		requests:  obs.GetCounter("gateway.requests"),
		rejected:  obs.GetCounter("gateway.rejected"),
		errors:    obs.GetCounter("gateway.errors"),
		retries:   obs.GetCounter("gateway.retries"),
		hedges:    obs.GetCounter("gateway.hedges"),
		hedgeWins: obs.GetCounter("gateway.hedge_wins"),
		pushes:    obs.GetCounter("gateway.snapshot_pushes"),
	}
	for i, addr := range cfg.Replicas {
		base, err := normalizeBase(addr)
		if err != nil {
			return nil, fmt.Errorf("gateway: replica %d: %w", i, err)
		}
		g.replicas = append(g.replicas, newReplica(i, base))
	}
	g.mux.Handle("POST /v1/classify", g.proxy("classify", "/v1/classify"))
	g.mux.Handle("POST /v1/transform", g.proxy("transform", "/v1/transform"))
	g.mux.HandleFunc("PUT /v1/models/{model}", g.handleModelPut)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metricz", g.handleMetricz)

	probeCtx, cancel := context.WithCancel(context.Background())
	g.probeCancel = cancel
	go g.probeLoop(probeCtx)
	return g, nil
}

func normalizeBase(addr string) (string, error) {
	if addr == "" {
		return "", fmt.Errorf("empty address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", err
	}
	if u.Host == "" {
		return "", fmt.Errorf("address %q has no host", addr)
	}
	return strings.TrimRight(u.Scheme+"://"+u.Host+u.Path, "/"), nil
}

// Handler exposes the full route table (for tests and embedding).
func (g *Gateway) Handler() http.Handler { return g.mux }

// Start listens on addr and serves in the background, returning the bound
// address. Pair with Shutdown.
func (g *Gateway) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	g.httpSrv = &http.Server{Handler: g.mux}
	go func() { _ = g.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the gateway: new requests answer 503, in-flight proxy
// work runs to completion within ctx's budget, and the prober stops. The
// replicas are processes of their own — draining them is their owner's job.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.barrier.BeginDrain()
	var err error
	if g.httpSrv != nil {
		err = g.httpSrv.Shutdown(ctx)
	}
	drainErr := g.barrier.Drain(ctx)
	g.probeCancel()
	<-g.probeDone
	if err == nil {
		err = drainErr
	}
	return err
}

// probeLoop refreshes every replica's health each interval, all probes in
// parallel so one hung replica cannot starve the sweep.
func (g *Gateway) probeLoop(ctx context.Context) {
	defer close(g.probeDone)
	client := &http.Client{Timeout: g.cfg.ProbeInterval}
	sweep := func() {
		var wg sync.WaitGroup
		for _, rep := range g.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				rep.probe(ctx, client)
			}(rep)
		}
		wg.Wait()
	}
	sweep()
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			sweep()
		}
	}
}

// routeKey extracts the consistent-hash key from a request body: the
// `source` field when the JSON carries one (cache affinity), the raw bytes
// otherwise.
func routeKey(body []byte) uint64 {
	var probe struct {
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && probe.Source != "" {
		return hashString(probe.Source)
	}
	return hashBytes(body)
}

// attempt is one try against one replica.
type attempt struct {
	status int
	body   []byte
	header http.Header
	err    error
	hedged bool
}

// retryable reports whether an attempt's outcome may be worth another
// replica: transport failures and backpressure answers are; every other
// status is the request's real answer and is relayed as-is.
func retryable(a attempt) bool {
	return a.err != nil || a.status == http.StatusTooManyRequests || a.status == http.StatusServiceUnavailable
}

// proxy wraps the forward orchestrator in the shared request discipline:
// drain barrier, admission control, the end-to-end deadline and latency
// observation.
func (g *Gateway) proxy(op, path string) http.Handler {
	lat := obs.GetHistogram("gateway.latency." + op)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.requests.Add(1)
		if !g.barrier.Enter() {
			writeError(w, http.StatusServiceUnavailable, "gateway is draining")
			return
		}
		defer g.barrier.Exit()
		select {
		case g.admit <- struct{}{}:
		default:
			g.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "gateway at capacity")
			return
		}
		defer func() { <-g.admit }()
		start := time.Now()
		defer func() { lat.Observe(time.Since(start)) }()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read request body: "+err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		res := g.forward(ctx, routeKey(body), path, body)
		if res.err != nil {
			g.errors.Add(1)
			switch {
			case errors.Is(res.err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "gateway: request deadline exceeded")
			case errors.Is(res.err, context.Canceled):
				writeError(w, serve.StatusClientClosedRequest, "gateway: client closed request")
			default:
				writeError(w, http.StatusBadGateway, "gateway: no replica answered: "+res.err.Error())
			}
			return
		}
		if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	})
}

// forward runs the routing/retry/hedge state machine for one request.
// Candidates are the replicas in ring order from the key's home, available
// (healthy, not cooling) ones first; attempts land on distinct replicas.
// The first non-retryable answer wins and cancels the rest; retryable
// outcomes trigger a backed-off retry on the next candidate; a hedge fires
// once if the leader is slow. When everything fails, the last backpressure
// answer (or transport error) is the result.
func (g *Gateway) forward(ctx context.Context, key uint64, path string, body []byte) attempt {
	now := time.Now()
	orderIdx := g.ring.order(key)
	candidates := make([]*replica, 0, len(orderIdx))
	var parked []*replica
	for _, idx := range orderIdx {
		rep := g.replicas[idx]
		if rep.available(now) {
			candidates = append(candidates, rep)
		} else {
			parked = append(parked, rep)
		}
	}
	// Unavailable replicas stay reachable as a last resort: all-parked is
	// likely a cold start or a global burst, not a dead fleet.
	candidates = append(candidates, parked...)
	maxAttempts := g.cfg.MaxAttempts
	if maxAttempts > len(candidates) {
		maxAttempts = len(candidates)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt, maxAttempts)
	launched := 0
	launch := func(hedged bool) bool {
		if launched >= maxAttempts {
			return false
		}
		rep := candidates[launched]
		launched++
		go func() {
			a := g.attempt(actx, rep, path, body)
			a.hedged = hedged
			results <- a
		}()
		return true
	}
	launch(false)

	var hedgeC <-chan time.Time
	if g.cfg.HedgeDelay > 0 {
		t := time.NewTimer(g.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var last attempt
	for pending > 0 {
		select {
		case a := <-results:
			pending--
			if !retryable(a) {
				if a.hedged {
					g.hedgeWins.Add(1)
				}
				return a
			}
			last = a
			if launched < maxAttempts {
				backoff := g.cfg.RetryBackoff << uint(launched-1)
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-actx.Done():
					t.Stop()
					return attempt{err: actx.Err()}
				}
				g.retries.Add(1)
				launch(false)
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				g.hedges.Add(1)
				pending++
			}
		case <-actx.Done():
			return attempt{err: actx.Err()}
		}
	}
	return last
}

// attempt performs one HTTP round trip against one replica, recording the
// per-replica series and maintaining health/cooldown state inline: a
// transport failure with a live context means the replica is gone (mark
// unhealthy now, a probe will resurrect it), and a 429/503 answer parks it
// for the cooldown.
func (g *Gateway) attempt(ctx context.Context, rep *replica, path string, body []byte) attempt {
	rep.requests.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+path, bytes.NewReader(body))
	if err != nil {
		rep.failures.Inc()
		return attempt{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := g.client.Do(req)
	rep.latency.Observe(time.Since(start))
	if err != nil {
		rep.failures.Inc()
		// Only penalize the replica when the failure is its own: a cancel
		// from the hedge winner or the request deadline also lands here.
		if ctx.Err() == nil {
			rep.setHealthy(false)
			rep.park(g.cfg.Cooldown)
		}
		return attempt{err: err}
	}
	rbody, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	resp.Body.Close()
	if rerr != nil {
		rep.failures.Inc()
		if ctx.Err() == nil {
			rep.park(g.cfg.Cooldown)
		}
		return attempt{err: rerr}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		rep.backpressure.Inc()
		rep.park(g.cfg.Cooldown)
	}
	return attempt{status: resp.StatusCode, body: rbody, header: resp.Header}
}

// handleModelPut validates a pushed snapshot once, then fans it out to
// every live replica in parallel. Success means every replica believed
// healthy swapped (the response lists each one's new version; replicas the
// prober has already declared dead are skipped and reported — they cannot
// receive a push, and a resurrected replica reloads from its snapshot
// directory anyway). A failure on a live replica answers 502 with the
// details — the push is idempotent, so the fix is to push again.
func (g *Gateway) handleModelPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if !g.barrier.Enter() {
		writeError(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	defer g.barrier.Exit()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read snapshot: "+err.Error())
		return
	}
	if _, err := ml.Load(bytes.NewReader(data)); err != nil {
		writeError(w, http.StatusBadRequest, "bad snapshot: "+err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	type pushResult struct {
		idx     int
		version int64
		err     error
	}
	var targets, skipped []*replica
	for _, rep := range g.replicas {
		if rep.healthy.Load() {
			targets = append(targets, rep)
		} else {
			skipped = append(skipped, rep)
		}
	}
	if len(targets) == 0 {
		writeError(w, http.StatusServiceUnavailable, "snapshot push: no healthy replica to push to")
		return
	}
	results := make(chan pushResult, len(targets))
	for _, rep := range targets {
		go func(rep *replica) {
			res := pushResult{idx: rep.idx}
			defer func() { results <- res }()
			req, err := http.NewRequestWithContext(ctx, http.MethodPut,
				rep.base+"/v1/models/"+url.PathEscape(name), bytes.NewReader(data))
			if err != nil {
				res.err = err
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				res.err = err
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				res.err = fmt.Errorf("replica %s: status %d: %s", rep.base, resp.StatusCode, strings.TrimSpace(string(body)))
				return
			}
			var out serve.ModelPutResponse
			if err := json.Unmarshal(body, &out); err != nil {
				res.err = fmt.Errorf("replica %s: bad push response: %w", rep.base, err)
				return
			}
			res.version = out.Version
		}(rep)
	}
	versions := make([]int64, len(g.replicas))
	var failures []string
	for range targets {
		res := <-results
		if res.err != nil {
			failures = append(failures, res.err.Error())
			continue
		}
		versions[res.idx] = res.version
	}
	if len(failures) > 0 {
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("snapshot push reached %d/%d live replicas: %s",
				len(targets)-len(failures), len(targets), strings.Join(failures, "; ")))
		return
	}
	g.pushes.Add(1)
	out := PushResponse{Model: name, Replicas: len(targets), Versions: versions}
	for _, rep := range skipped {
		out.Skipped = append(out.Skipped, rep.base)
	}
	_ = writeJSON(w, http.StatusOK, out)
}

// PushResponse answers a fleet-wide snapshot push.
type PushResponse struct {
	Model string `json:"model"`
	// Replicas is how many live replicas swapped.
	Replicas int `json:"replicas"`
	// Versions is each replica's new snapshot generation, in config order;
	// skipped (dead) replicas report 0.
	Versions []int64 `json:"versions"`
	// Skipped lists replicas the prober had declared dead at push time.
	Skipped []string `json:"skipped,omitempty"`
}

// HealthResponse is the gateway's /healthz payload: the fleet view.
type HealthResponse struct {
	Status   string          `json:"status"` // "ok", "degraded", "down" or "draining"
	Replicas []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one replica's slice of the fleet view.
type ReplicaHealth struct {
	Addr     string           `json:"addr"`
	Healthy  bool             `json:"healthy"`
	Cooling  bool             `json:"cooling,omitempty"`
	Versions map[string]int64 `json:"versions,omitempty"`
	// Lineage is the retraining ancestry each replica reported for the
	// snapshots it serves (see serve.HealthResponse.Lineage), so a fleet
	// push of a co-evolution checkpoint is traceable per replica.
	Lineage map[string]ml.Lineage `json:"lineage,omitempty"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := HealthResponse{Status: "ok"}
	healthy := 0
	for _, rep := range g.replicas {
		h := rep.healthy.Load()
		if h {
			healthy++
		}
		resp.Replicas = append(resp.Replicas, ReplicaHealth{
			Addr:     rep.base,
			Healthy:  h,
			Cooling:  rep.cooling(now),
			Versions: rep.snapshotVersions(),
			Lineage:  rep.snapshotLineage(),
		})
	}
	status := http.StatusOK
	switch {
	case g.barrier.Draining():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case healthy == 0:
		resp.Status = "down"
		status = http.StatusServiceUnavailable
	case healthy < len(g.replicas):
		resp.Status = "degraded"
	}
	_ = writeJSON(w, status, resp)
}

func (g *Gateway) handleMetricz(w http.ResponseWriter, r *http.Request) {
	_ = writeJSON(w, http.StatusOK, obs.Capture())
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err = w.Write(buf)
	return err
}

func writeError(w http.ResponseWriter, status int, msg string) {
	_ = writeJSON(w, status, serve.ErrorResponse{Error: msg})
}
