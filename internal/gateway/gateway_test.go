package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/serve"
)

// TestRingConsistencyAndSpread pins the hash ring's contract: order() is a
// full permutation, deterministic across ring rebuilds, reasonably even in
// its first choices, and adding a replica remaps only a fraction of the
// keyspace (the point of consistent hashing — a resize must not flush every
// replica's progcache).
func TestRingConsistencyAndSpread(t *testing.T) {
	const replicas, keys = 5, 10000
	r1 := newRing(replicas, 64)
	r2 := newRing(replicas, 64)
	first := make([]int, replicas)
	for k := 0; k < keys; k++ {
		key := hashString(fmt.Sprintf("key-%d", k))
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != replicas {
			t.Fatalf("order returned %d entries, want %d", len(o1), replicas)
		}
		seen := make(map[int]bool, replicas)
		for i, idx := range o1 {
			if idx != o2[i] {
				t.Fatalf("identical rings disagree on key %d", k)
			}
			if seen[idx] {
				t.Fatalf("order repeats replica %d for key %d", idx, k)
			}
			seen[idx] = true
		}
		first[o1[0]]++
	}
	for i, n := range first {
		// Uniform would be 2000; vnode placement wobbles, but a replica
		// receiving under a quarter of its fair share means the ring is
		// effectively excluding it.
		if n < keys/replicas/4 {
			t.Errorf("replica %d is first choice for only %d/%d keys", i, n, keys)
		}
	}

	bigger := newRing(replicas+1, 64)
	moved := 0
	for k := 0; k < keys; k++ {
		key := hashString(fmt.Sprintf("key-%d", k))
		if r1.order(key)[0] != bigger.order(key)[0] {
			moved++
		}
	}
	// Ideal remap fraction is 1/(n+1) ≈ 17%; anything near 100% would mean
	// modulo hashing snuck back in.
	if moved > keys/2 {
		t.Errorf("adding one replica moved %d/%d keys", moved, keys)
	}
}

// backend is a scriptable fake replica: counts requests, optionally
// answers 429 or sleeps, and serves a healthy /healthz.
type backend struct {
	ts       *httptest.Server
	requests atomic.Int64
	status   atomic.Int64 // response status for /v1/classify; 0 = 200
	delay    atomic.Int64 // nanoseconds of sleep before answering
}

func newBackend(t *testing.T, id int) *backend {
	t.Helper()
	b := &backend{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		b.requests.Add(1)
		if d := b.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if st := b.status.Load(); st != 0 {
			w.WriteHeader(int(st))
			fmt.Fprintf(w, `{"error":"scripted %d"}`, st)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%d}`, id)
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	})
	return g
}

func classifyVia(t *testing.T, g *Gateway, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	resp := w.Result()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRoutingAffinityBySource: requests carrying the same `source` land on
// one replica (that affinity is what makes the per-replica progcaches
// effective), while distinct sources spread over more than one.
func TestRoutingAffinityBySource(t *testing.T) {
	backends := []*backend{newBackend(t, 0), newBackend(t, 1), newBackend(t, 2)}
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.ts.URL
	}
	g := newTestGateway(t, Config{Replicas: addrs, HedgeDelay: -1})

	body := `{"source":"int main() { return 7; }"}`
	for i := 0; i < 12; i++ {
		resp, out := classifyVia(t, g, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, out)
		}
	}
	busy := 0
	for _, b := range backends {
		if n := b.requests.Load(); n > 0 {
			busy++
			if n != 12 {
				t.Errorf("affinity split: backend got %d/12 requests", n)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("one source hit %d backends, want exactly 1", busy)
	}

	for i := 0; i < 60; i++ {
		body := fmt.Sprintf(`{"source":"int main() { return %d; }"}`, i)
		resp, out := classifyVia(t, g, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spread request %d: %d: %s", i, resp.StatusCode, out)
		}
	}
	spread := 0
	for _, b := range backends {
		if b.requests.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("60 distinct sources hit %d backends, want >= 2", spread)
	}
}

// TestFailoverOnDeadReplica: with one replica's listener closed, every
// request still succeeds via retry on the next ring candidate, and the
// fleet health degrades rather than lies.
func TestFailoverOnDeadReplica(t *testing.T) {
	alive := newBackend(t, 0)
	dead := newBackend(t, 1)
	dead.ts.Close()
	g := newTestGateway(t, Config{
		Replicas:      []string{alive.ts.URL, dead.ts.URL},
		HedgeDelay:    -1,
		ProbeInterval: 20 * time.Millisecond,
	})

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"source":"int main() { return %d; }"}`, i)
		resp, out := classifyVia(t, g, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d died with the replica: %d: %s", i, resp.StatusCode, out)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		w := httptest.NewRecorder()
		g.Handler().ServeHTTP(w, req)
		var h HealthResponse
		if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		if h.Status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reported degraded: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackpressureRouting: a replica answering 429 is parked after its
// first shed and traffic flows to the other replica; the client sees only
// 200s.
func TestBackpressureRouting(t *testing.T) {
	shedding := newBackend(t, 0)
	shedding.status.Store(http.StatusTooManyRequests)
	healthy := newBackend(t, 1)
	g := newTestGateway(t, Config{
		Replicas:   []string{shedding.ts.URL, healthy.ts.URL},
		HedgeDelay: -1,
		Cooldown:   time.Minute, // parked once, parked for the whole test
	})

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"source":"int main() { return %d; }"}`, i)
		resp, out := classifyVia(t, g, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, resp.StatusCode, out)
		}
	}
	// Ring order varies per key, so the shedder may see a few first
	// attempts before every key's route finds it parked — but nothing close
	// to half the traffic.
	if n := shedding.requests.Load(); n > 5 {
		t.Errorf("parked replica still saw %d/20 requests", n)
	}
	if n := healthy.requests.Load(); n < 20 {
		t.Errorf("healthy replica saw %d/20 requests", n)
	}
}

// TestHedgingCutsTailLatency: when the primary for a key stalls, the hedge
// fires on the next candidate and the fast answer wins well before the
// stall clears.
func TestHedgingCutsTailLatency(t *testing.T) {
	a, b := newBackend(t, 0), newBackend(t, 1)
	g := newTestGateway(t, Config{
		Replicas:       []string{a.ts.URL, b.ts.URL},
		HedgeDelay:     10 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	})

	// Find the key's primary with both backends fast, then stall it.
	body := `{"source":"int main() { return 1; }"}`
	if resp, out := classifyVia(t, g, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d: %s", resp.StatusCode, out)
	}
	primary := a
	if b.requests.Load() > 0 {
		primary = b
	}
	primary.delay.Store(int64(2 * time.Second))

	start := time.Now()
	resp, out := classifyVia(t, g, body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request failed: %d: %s", resp.StatusCode, out)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("answer took %v: the hedge never fired", elapsed)
	}
	if a.requests.Load() == 0 || b.requests.Load() == 0 {
		t.Fatalf("hedge did not reach the second replica (a=%d b=%d)",
			a.requests.Load(), b.requests.Load())
	}
}

// trainLR builds a deterministic one-feature lr model; flip inverts the
// labeling so two models provably disagree.
func trainLR(t *testing.T, flip bool) ml.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	X := make([][]float64, 40)
	y := make([]int, len(X))
	for i := range X {
		c := i % 2
		X[i] = []float64{3*float64(c) + rng.NormFloat64()*0.1}
		if flip {
			y[i] = 1 - c
		} else {
			y[i] = c
		}
	}
	m, err := ml.New("lr", rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPushHotSwapFleet drives the fleet snapshot path end to end over real
// serve replicas: one PUT through the gateway swaps every replica's model
// without a restart, verdicts flip fleet-wide, and the response reports a
// converged version vector.
func TestPushHotSwapFleet(t *testing.T) {
	modelA, modelB := trainLR(t, false), trainLR(t, true)
	probe := []float64{3}
	if modelA.Predict(probe) == modelB.Predict(probe) {
		t.Fatal("test models agree; they must disagree to witness the swap")
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		s, err := serve.New(serve.Config{
			Models:      map[string]ml.Model{"lr": modelA},
			BatchWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
		addrs = append(addrs, addr)
	}
	g := newTestGateway(t, Config{Replicas: addrs, HedgeDelay: -1})

	classify := func(i int) int {
		body, _ := json.Marshal(serve.ClassifyRequest{Histogram: probe})
		resp, out := classifyVia(t, g, string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: %d: %s", i, resp.StatusCode, out)
		}
		var cr serve.ClassifyResponse
		if err := json.Unmarshal(out, &cr); err != nil {
			t.Fatal(err)
		}
		return cr.Verdicts["lr"]
	}
	if got, want := classify(0), modelA.Predict(probe); got != want {
		t.Fatalf("pre-swap verdict %d, want %d", got, want)
	}

	var snap bytes.Buffer
	if err := ml.Save(&snap, modelB); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPut, "/v1/models/lr", bytes.NewReader(snap.Bytes()))
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("push got %d: %s", w.Code, w.Body.String())
	}
	var push PushResponse
	if err := json.Unmarshal(w.Body.Bytes(), &push); err != nil {
		t.Fatal(err)
	}
	if push.Replicas != 2 || len(push.Versions) != 2 {
		t.Fatalf("push response %+v, want 2 replicas", push)
	}
	for i, v := range push.Versions {
		if v != 2 {
			t.Fatalf("replica %d at version %d after push, want 2 (fleet diverged)", i, v)
		}
	}
	// Every replica must answer with the new model — hit the fleet with
	// distinct sources... histogram requests route by body hash; several
	// tries cover both replicas, and any stale answer fails.
	for i := 0; i < 10; i++ {
		if got, want := classify(i), modelB.Predict(probe); got != want {
			t.Fatalf("post-swap verdict %d, want %d: a replica kept the old model", got, want)
		}
	}

	// Garbage never reaches the fleet: validated at the gateway.
	req = httptest.NewRequest(http.MethodPut, "/v1/models/lr", bytes.NewReader([]byte("junk")))
	w = httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("garbage push got %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestDrainCompletesInFlight: Shutdown lets a request already inside the
// proxy finish against a slow replica, while new work is refused with 503.
func TestDrainCompletesInFlight(t *testing.T) {
	slow := newBackend(t, 0)
	slow.delay.Store(int64(300 * time.Millisecond))
	g, err := New(Config{Replicas: []string{slow.ts.URL}, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}

	status := make(chan int, 1)
	go func() {
		resp, _ := classifyVia(t, g, `{"source":"int main() { return 0; }"}`)
		status <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let it reach the replica

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case st := <-status:
		if st != http.StatusOK {
			t.Fatalf("in-flight request during drain got %d, want 200", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	resp, out := classifyVia(t, g, `{"source":"int main() { return 0; }"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503: %s", resp.StatusCode, out)
	}
}
