package ml

import (
	"math/rand"
)

// MLP is a one-hidden-layer perceptron with ReLU activation and a softmax
// output, trained with minibatch Adam — the SciKit-default architecture the
// paper uses (one hidden layer, 100 units).
type MLP struct {
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64

	d, numCl int
	w1, b1   []float64 // hidden x d, hidden
	w2, b2   []float64 // numCl x hidden, numCl
	std      *standardizer
	rng      *rand.Rand
}

// NewMLP returns an untrained MLP with the given hidden width.
func NewMLP(hidden int, rng *rand.Rand) *MLP {
	return &MLP{Hidden: hidden, Epochs: 60, BatchSize: 32, LR: 1e-3, rng: rng}
}

// Fit trains the network.
func (m *MLP) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	Xs := m.std.applyAll(X)
	m.d = len(X[0])
	m.numCl = numClasses
	h := m.Hidden
	m.w1 = make([]float64, h*m.d)
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, numClasses*h)
	m.b2 = make([]float64, numClasses)
	xavier(m.w1, m.d, h, m.rng)
	xavier(m.w2, h, numClasses, m.rng)

	optW1 := newAdam(len(m.w1), m.LR)
	optB1 := newAdam(len(m.b1), m.LR)
	optW2 := newAdam(len(m.w2), m.LR)
	optB2 := newAdam(len(m.b2), m.LR)

	n := len(Xs)
	order := m.rng.Perm(n)
	gw1 := make([]float64, len(m.w1))
	gb1 := make([]float64, len(m.b1))
	gw2 := make([]float64, len(m.w2))
	gb2 := make([]float64, len(m.b2))
	hid := make([]float64, h)
	probs := make([]float64, numClasses)
	dHid := make([]float64, h)

	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			zero(gw1)
			zero(gb1)
			zero(gw2)
			zero(gb2)
			inv := 1.0 / float64(len(batch))
			for _, i := range batch {
				x := Xs[i]
				m.forward(x, hid, probs)
				softmaxInPlace(probs)
				// Output layer gradient.
				for c := 0; c < numClasses; c++ {
					g := probs[c]
					if c == y[i] {
						g -= 1
					}
					g *= inv
					gb2[c] += g
					base := c * h
					for j := 0; j < h; j++ {
						gw2[base+j] += g * hid[j]
					}
				}
				// Hidden layer gradient through ReLU.
				for j := 0; j < h; j++ {
					if hid[j] <= 0 {
						dHid[j] = 0
						continue
					}
					s := 0.0
					for c := 0; c < numClasses; c++ {
						g := probs[c]
						if c == y[i] {
							g -= 1
						}
						s += g * m.w2[c*h+j]
					}
					dHid[j] = s * inv
				}
				for j := 0; j < h; j++ {
					if dHid[j] == 0 {
						continue
					}
					gb1[j] += dHid[j]
					base := j * m.d
					for k, xv := range x {
						gw1[base+k] += dHid[j] * xv
					}
				}
			}
			optW1.step(m.w1, gw1)
			optB1.step(m.b1, gb1)
			optW2.step(m.w2, gw2)
			optB2.step(m.b2, gb2)
		}
	}
	return nil
}

func (m *MLP) forward(x []float64, hid, out []float64) {
	h := m.Hidden
	for j := 0; j < h; j++ {
		s := m.b1[j]
		base := j * m.d
		for k, xv := range x {
			s += m.w1[base+k] * xv
		}
		hid[j] = relu(s)
	}
	for c := 0; c < m.numCl; c++ {
		s := m.b2[c]
		base := c * h
		for j := 0; j < h; j++ {
			s += m.w2[base+j] * hid[j]
		}
		out[c] = s
	}
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int {
	xs := m.std.apply(x)
	hid := make([]float64, m.Hidden)
	out := make([]float64, m.numCl)
	m.forward(xs, hid, out)
	return argmax(out)
}

// MemoryBytes counts all parameter tensors.
func (m *MLP) MemoryBytes() int64 {
	return int64(len(m.w1)+len(m.b1)+len(m.w2)+len(m.b2))*8 + m.std.memory()
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
