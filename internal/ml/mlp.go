package ml

import (
	"math/rand"

	"repro/internal/linalg"
)

// MLP is a one-hidden-layer perceptron with ReLU activation and a softmax
// output, trained with minibatch Adam — the SciKit-default architecture the
// paper uses (one hidden layer, 100 units). Each minibatch runs as batched
// GEMMs over fixed gradient shards (see parallel.go), so training scales
// across cores with byte-identical results.
type MLP struct {
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64

	d, numCl int
	w1, b1   []float64 // hidden x d, hidden
	w2, b2   []float64 // numCl x hidden, numCl
	std      *standardizer
	rng      *rand.Rand
	warm     bool // FitWarm in progress: keep std and tensors (see warm.go)
}

// NewMLP returns an untrained MLP with the given hidden width.
func NewMLP(hidden int, rng *rand.Rand) *MLP {
	return &MLP{Hidden: hidden, Epochs: 60, BatchSize: 32, LR: 1e-3, rng: rng}
}

// mlpScratch is one shard's activation workspace (trainShard rows).
type mlpScratch struct {
	xb    []float64 // rows x d gathered inputs
	hid   []float64 // rows x h post-ReLU
	probs []float64 // rows x numCl: logits -> probs -> dLogits
	dHid  []float64 // rows x h
}

// Fit trains the network.
func (m *MLP) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("mlp")()
	if !m.warmOK(len(X[0]), numClasses) {
		m.std = fitStandardizer(X)
		m.d = len(X[0])
		m.numCl = numClasses
		m.w1 = make([]float64, m.Hidden*m.d)
		m.b1 = make([]float64, m.Hidden)
		m.w2 = make([]float64, numClasses*m.Hidden)
		m.b2 = make([]float64, numClasses)
		xavier(m.w1, m.d, m.Hidden, m.rng)
		xavier(m.w2, m.Hidden, numClasses, m.rng)
	}
	Xs := m.std.applyAll(X)
	h := m.Hidden

	params := [][]float64{m.w1, m.b1, m.w2, m.b2}
	opts := make([]*adam, len(params))
	grads := make([][]float64, len(params))
	for i, p := range params {
		opts[i] = newAdam(len(p), m.LR)
		grads[i] = make([]float64, len(p))
	}

	n := len(Xs)
	order := m.rng.Perm(n)
	batchMax := m.BatchSize
	if batchMax > n {
		batchMax = n
	}
	shards := numShards(batchMax, trainShard)
	sg := newShardGrads(shards, params)
	scr := make([]*mlpScratch, shards)
	for s := range scr {
		scr[s] = &mlpScratch{
			xb:    make([]float64, trainShard*m.d),
			hid:   make([]float64, trainShard*h),
			probs: make([]float64, trainShard*numClasses),
			dHid:  make([]float64, trainShard*h),
		}
	}

	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			inv := 1.0 / float64(len(batch))
			forShards(len(batch), trainShard, func(s, lo, hi int) {
				m.shardGrad(Xs, y, batch[lo:hi], inv, scr[s], sg.shard(s))
			})
			sg.mergeInto(grads, numShards(len(batch), trainShard))
			for i, p := range params {
				opts[i].step(p, grads[i])
			}
		}
	}
	return nil
}

// shardGrad runs forward + backward over one shard of the minibatch,
// accumulating into the shard's private gradient buffers
// (order: w1, b1, w2, b2).
func (m *MLP) shardGrad(Xs [][]float64, y []int, idxs []int, inv float64,
	sc *mlpScratch, g [][]float64) {

	gw1, gb1, gw2, gb2 := g[0], g[1], g[2], g[3]
	rows := len(idxs)
	h, c, d := m.Hidden, m.numCl, m.d

	// Gather the shard's input rows into a packed matrix.
	for r, i := range idxs {
		copy(sc.xb[r*d:(r+1)*d], Xs[i])
	}
	xb := sc.xb[:rows*d]

	// Forward: hid = relu(b1 + X·W1ᵀ); probs = softmax(b2 + hid·W2ᵀ).
	hid := sc.hid[:rows*h]
	for r := 0; r < rows; r++ {
		copy(hid[r*h:(r+1)*h], m.b1)
	}
	linalg.GemmNT(hid, xb, m.w1, rows, h, d)
	linalg.ReLU(hid)
	probs := sc.probs[:rows*c]
	for r := 0; r < rows; r++ {
		copy(probs[r*c:(r+1)*c], m.b2)
	}
	linalg.GemmNT(probs, hid, m.w2, rows, c, h)
	linalg.SoftmaxRows(probs, rows, c)

	// dLogits = (probs - onehot)/batch, in place.
	for r, i := range idxs {
		probs[r*c+y[i]] -= 1
	}
	linalg.Scale(inv, probs)

	// Output layer: gb2 += column sums, gW2 += dLogitsᵀ·hid,
	// dHid = dLogits·W2 gated by ReLU.
	for r := 0; r < rows; r++ {
		linalg.Add(gb2, probs[r*c:(r+1)*c])
	}
	linalg.GemmTN(gw2, probs, hid, c, h, rows)
	dHid := sc.dHid[:rows*h]
	linalg.Zero(dHid)
	linalg.GemmNN(dHid, probs, m.w2, rows, h, c)
	for i, v := range hid {
		if v == 0 {
			dHid[i] = 0
		}
	}

	// Hidden layer: gb1 += column sums, gW1 += dHidᵀ·X.
	for r := 0; r < rows; r++ {
		linalg.Add(gb1, dHid[r*h:(r+1)*h])
	}
	linalg.GemmTN(gw1, dHid, xb, h, d, rows)
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int {
	d := len(x)
	if d < m.d {
		d = m.d
	}
	xs := linalg.Grab(d)
	m.std.applyInto(xs, x)
	hid := linalg.Grab(m.Hidden)
	copy(hid, m.b1)
	linalg.MatVec(hid, m.w1, xs[:m.d], m.Hidden, m.d)
	linalg.ReLU(hid)
	out := linalg.Grab(m.numCl)
	copy(out, m.b2)
	linalg.MatVec(out, m.w2, hid, m.numCl, m.Hidden)
	best := argmax(out)
	linalg.Drop(out)
	linalg.Drop(hid)
	linalg.Drop(xs)
	return best
}

// MemoryBytes counts all parameter tensors.
func (m *MLP) MemoryBytes() int64 {
	return int64(len(m.w1)+len(m.b1)+len(m.w2)+len(m.b2))*8 + m.std.memory()
}
