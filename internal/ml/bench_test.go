package ml_test

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/ml"
)

// benchVecData is a fixed blobs problem at the histogram embedding's shape
// (63 features), the dominant vector workload of the arena.
func benchVecData(b *testing.B) ([][]float64, []int, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	Xtr, ytr, Xte, _ := synthBlobs(rng, 256, 128, 63, 8, 2.0)
	return Xtr, ytr, Xte
}

// benchWorkers runs fn once pinned to a single training worker (the
// apples-to-apples number against the old per-sample implementation) and
// once with all cores. Training results are byte-identical either way.
func benchWorkers(b *testing.B, fn func(b *testing.B)) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			ml.SetTrainWorkers(cfg.workers)
			defer ml.SetTrainWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			fn(b)
		})
	}
}

// BenchmarkFitMLP measures one full MLP training run.
func BenchmarkFitMLP(b *testing.B) {
	X, y, _ := benchVecData(b)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ml.NewMLP(100, rand.New(rand.NewSource(7)))
			m.Epochs = 10
			if err := m.Fit(X, y, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFitCNN measures one 1-D CNN training run.
func BenchmarkFitCNN(b *testing.B) {
	X, y, _ := benchVecData(b)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ml.NewCNN(rand.New(rand.NewSource(7)))
			m.Epochs = 5
			if err := m.Fit(X, y, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFitDGCNN measures one DGCNN training run over synthetic graphs.
func BenchmarkFitDGCNN(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	gs, ys := synthGraphs(rng, 64)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ml.NewDGCNN(rand.New(rand.NewSource(4)))
			m.Epochs = 5
			if err := m.FitGraphs(gs, ys, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFitLogistic measures full-batch logistic regression training.
func BenchmarkFitLogistic(b *testing.B) {
	X, y, _ := benchVecData(b)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := ml.NewLogistic(rand.New(rand.NewSource(7)))
			m.Epochs = 50
			if err := m.Fit(X, y, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFitSVM measures Pegasos SVM training (inherently sequential, so
// only the kernel rewiring shows up here).
func BenchmarkFitSVM(b *testing.B) {
	X, y, _ := benchVecData(b)
	ml.SetTrainWorkers(1)
	defer ml.SetTrainWorkers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ml.NewSVM(rand.New(rand.NewSource(7)))
		m.Epochs = 20
		if err := m.Fit(X, y, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures inference over a held-out batch for each
// vector model (the test-set loop of core.RunGame).
func BenchmarkPredictBatch(b *testing.B) {
	X, y, Xte := benchVecData(b)
	for _, name := range ml.VectorNames() {
		m, err := ml.New(name, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y, 8); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, x := range Xte {
					m.Predict(x)
				}
			}
		})
	}
}

// BenchmarkPredictGraphBatch measures DGCNN inference over held-out graphs.
func BenchmarkPredictGraphBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	gs, ys := synthGraphs(rng, 64)
	gte, _ := synthGraphs(rng, 32)
	m := ml.NewDGCNN(rand.New(rand.NewSource(4)))
	m.Epochs = 5
	if err := m.FitGraphs(gs, ys, 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gte {
			m.PredictGraph(g)
		}
	}
}

var _ = embed.ControlEdge // keep the import stable across bench revisions
