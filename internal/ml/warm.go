package ml

import "math/rand"

// Warm-start fitting: continue training from the current parameters
// instead of re-initializing. This is the incremental-retrain primitive of
// the co-evolution arena — each generation the defender re-fits on the
// cumulative pool (base set + evasions caught so far) starting from the
// weights it already has, so a few epochs suffice and the decision surface
// moves smoothly between generations.
//
// Semantics, shared by every implementation:
//
//   - The feature standardizer is FROZEN: it keeps the statistics of the
//     fit that first trained the model, so feature space stays comparable
//     across generations (and with any snapshot already pushed to a serving
//     fleet).
//   - Optimizer state (Adam moments, Pegasos step counter) is fresh per
//     call; only the parameters carry over.
//   - If the model is untrained, or the feature/class dimensions changed,
//     FitWarm falls back to a cold Fit — it never fails where Fit would
//     succeed.
//
// A model restored by Load has no RNG (the codec does not serialize one);
// FitWarm installs a fixed-seed source in that case so a
// rollback-then-retrain sequence stays deterministic.

// WarmFitter is implemented by the vector models that can continue
// training from their current parameters.
type WarmFitter interface {
	Model
	FitWarm(X [][]float64, y []int, numClasses int) error
}

func warmRng(rng *rand.Rand) *rand.Rand {
	if rng == nil {
		return rand.New(rand.NewSource(1))
	}
	return rng
}

// FitWarm retrains the logistic regression from its current weights.
func (m *Logistic) FitWarm(X [][]float64, y []int, numClasses int) error {
	m.rng = warmRng(m.rng)
	m.warm = true
	defer func() { m.warm = false }()
	return m.Fit(X, y, numClasses)
}

func (m *Logistic) warmOK(d, numClasses int) bool {
	return m.warm && m.d == d && m.numCl == numClasses && len(m.w) == numClasses*(d+1)
}

// FitWarm retrains the SVM from its current weights.
func (m *SVM) FitWarm(X [][]float64, y []int, numClasses int) error {
	m.rng = warmRng(m.rng)
	m.warm = true
	defer func() { m.warm = false }()
	return m.Fit(X, y, numClasses)
}

func (m *SVM) warmOK(d, numClasses int) bool {
	return m.warm && m.d == d && m.numCl == numClasses && len(m.w) == numClasses*(d+1)
}

// FitWarm retrains the MLP from its current weights.
func (m *MLP) FitWarm(X [][]float64, y []int, numClasses int) error {
	m.rng = warmRng(m.rng)
	m.warm = true
	defer func() { m.warm = false }()
	return m.Fit(X, y, numClasses)
}

func (m *MLP) warmOK(d, numClasses int) bool {
	return m.warm && m.d == d && m.numCl == numClasses &&
		len(m.w1) == m.Hidden*d && len(m.w2) == numClasses*m.Hidden
}

// FitWarm retrains the CNN from its current tensors (conv geometry is kept,
// so the input length must not have changed).
func (m *CNN) FitWarm(X [][]float64, y []int, numClasses int) error {
	m.rng = warmRng(m.rng)
	m.warm = true
	defer func() { m.warm = false }()
	return m.Fit(X, y, numClasses)
}

func (m *CNN) warmOK(d, numClasses int) bool {
	return m.warm && m.d == d && m.numCl == numClasses && len(m.w1) > 0
}

// FitWarm re-memorizes the given pool under the FROZEN standardizer (k-NN
// has no parameters to continue from; the warm property it preserves is the
// feature space).
func (m *KNN) FitWarm(X [][]float64, y []int, numClasses int) error {
	if m.std == nil || len(m.X) == 0 || numClasses != m.numCl ||
		len(X) == 0 || len(X[0]) != len(m.std.mean) {
		return m.Fit(X, y, numClasses)
	}
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("knn")()
	m.X = m.std.applyAll(X)
	m.y = append([]int(nil), y...)
	return nil
}
