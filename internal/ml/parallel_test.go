package ml_test

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// TestFitWorkerDeterminism trains every gradient-sharded model under 1, 4
// and 8 training workers and demands byte-identical weights: the shard
// structure fixes the float summation order independently of scheduling.
func TestFitWorkerDeterminism(t *testing.T) {
	defer ml.SetTrainWorkers(0)
	rng := rand.New(rand.NewSource(31))
	X, y, _, _ := synthBlobs(rng, 90, 0, 17, 4, 2.0)

	fitVec := func(name string, workers int) [][]float64 {
		ml.SetTrainWorkers(workers)
		m, err := ml.New(name, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w := ml.WeightsForTest(m)
		if w == nil {
			t.Fatalf("%s: no weights exposed", name)
		}
		return w
	}

	for _, name := range []string{"mlp", "cnn", "lr", "svm"} {
		base := fitVec(name, 1)
		for _, workers := range []int{4, 8} {
			got := fitVec(name, workers)
			compareWeights(t, name, workers, base, got)
		}
	}

	gs, ys := synthGraphs(rand.New(rand.NewSource(17)), 24)
	fitGraph := func(workers int) [][]float64 {
		ml.SetTrainWorkers(workers)
		m := ml.NewDGCNN(rand.New(rand.NewSource(6)))
		m.Epochs = 4
		if err := m.FitGraphs(gs, ys, 2); err != nil {
			t.Fatal(err)
		}
		return ml.WeightsForTest(m)
	}
	base := fitGraph(1)
	for _, workers := range []int{4, 8} {
		compareWeights(t, "dgcnn", workers, base, fitGraph(workers))
	}
}

func compareWeights(t *testing.T, name string, workers int, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: tensor count %d vs %d", name, len(want), len(got))
	}
	for ti := range want {
		for i := range want[ti] {
			if want[ti][i] != got[ti][i] {
				t.Fatalf("%s: workers=%d tensor %d idx %d: %v != %v (serial)",
					name, workers, ti, i, got[ti][i], want[ti][i])
			}
		}
	}
}

// TestKNNPruningExact checks the distance early-exit never changes a
// prediction relative to the full scan.
func TestKNNPruningExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	Xtr, ytr, Xte, _ := synthBlobs(rng, 250, 200, 24, 6, 6.0)
	m := ml.NewKNN(5)
	if err := m.Fit(Xtr, ytr, 6); err != nil {
		t.Fatal(err)
	}
	for i, x := range Xte {
		m.SetNoPruneForTest(false)
		pruned := m.Predict(x)
		m.SetNoPruneForTest(true)
		full := m.Predict(x)
		if pruned != full {
			t.Fatalf("sample %d: pruned=%d full=%d", i, pruned, full)
		}
	}
}
