package ml

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/embed"
)

// DGCNN is Zhang et al. (2018)'s Deep Graph Convolutional Neural Network,
// the model the paper uses for all graph-shaped program embeddings:
//
//  1. four graph convolutional layers (32, 32, 32 and 1 channel) with
//     hyperbolic-tangent activation, Z_{t+1} = tanh(D⁻¹ Ã Z_t W_t);
//  2. SortPooling: nodes sorted by the last 1-channel layer, top-k kept;
//  3. a one-dimensional convolutional layer (kernel = feature width);
//  4. max pooling;
//  5. a second one-dimensional convolutional layer;
//  6. a dense layer followed by dropout;
//  7. a final dense softmax classifier.
type DGCNN struct {
	GCDims  []int // per-layer output channels, last must be 1
	K       int   // SortPooling size
	C1      int   // conv-1 filters (kernel = concat width, stride = width)
	C2, K2  int   // conv-2 filters and kernel
	Hidden  int
	Dropout float64
	Epochs  int
	LR      float64

	inDim, numCl int
	catDim       int // sum of GCDims
	p1, l2, flat int

	gw     []([]float64) // GCN weight matrices, layer t: (prevDim x GCDims[t])
	w1, b1 []float64
	w2, b2 []float64
	w3, b3 []float64
	w4, b4 []float64
	rng    *rand.Rand
}

// NewDGCNN returns an untrained DGCNN with the paper's layer shape.
func NewDGCNN(rng *rand.Rand) *DGCNN {
	return &DGCNN{
		GCDims: []int{32, 32, 32, 1}, K: 16,
		C1: 16, C2: 32, K2: 5, Hidden: 128, Dropout: 0.5,
		Epochs: 30, LR: 1e-3, rng: rng,
	}
}

// graphPrep is the preprocessed propagation structure of one graph.
type graphPrep struct {
	n      int
	feats  [][]float64
	nbrs   [][]int32 // incoming neighbours incl. self loop
	invDeg []float64
}

func prepGraph(g *embed.Graph) *graphPrep {
	n := g.NumNodes()
	p := &graphPrep{n: n, feats: g.NodeFeats, nbrs: make([][]int32, n), invDeg: make([]float64, n)}
	for i := 0; i < n; i++ {
		p.nbrs[i] = append(p.nbrs[i], int32(i)) // self loop
	}
	for _, e := range g.Edges {
		// Treat edges as undirected for propagation, standard for GCNs.
		p.nbrs[e[1]] = append(p.nbrs[e[1]], int32(e[0]))
		p.nbrs[e[0]] = append(p.nbrs[e[0]], int32(e[1]))
	}
	for i := range p.nbrs {
		p.invDeg[i] = 1.0 / float64(len(p.nbrs[i]))
	}
	return p
}

// dgState holds forward activations of one graph for backprop.
type dgState struct {
	zs     [][][]float64 // per layer: n x dim post-tanh
	sorted []int         // node order chosen by SortPooling
	pooled []float64     // K x catDim (zero padded)
	a1     []float64     // K x C1 post-ReLU
	pool   []float64
	amax   []int
	a2     []float64
	hid    []float64
	mask   []float64
	probs  []float64
}

// FitGraphs trains on a labelled set of graphs.
func (m *DGCNN) FitGraphs(gs []*embed.Graph, y []int, numClasses int) error {
	if len(gs) == 0 || len(gs) != len(y) {
		return errBadGraphSet
	}
	if numClasses < 2 {
		return errBadGraphSet
	}
	m.numCl = numClasses
	m.inDim = 0
	for _, g := range gs {
		if g.FeatDim() > m.inDim {
			m.inDim = g.FeatDim()
		}
	}
	m.catDim = 0
	for _, d := range m.GCDims {
		m.catDim += d
	}
	m.p1 = m.K / 2
	m.l2 = m.p1 - m.K2 + 1
	if m.l2 < 1 {
		m.K2 = m.p1
		m.l2 = 1
	}
	m.flat = m.C2 * m.l2

	m.gw = make([][]float64, len(m.GCDims))
	prev := m.inDim
	for t, d := range m.GCDims {
		m.gw[t] = make([]float64, prev*d)
		xavier(m.gw[t], prev, d, m.rng)
		prev = d
	}
	m.w1 = make([]float64, m.C1*m.catDim)
	m.b1 = make([]float64, m.C1)
	m.w2 = make([]float64, m.C2*m.C1*m.K2)
	m.b2 = make([]float64, m.C2)
	m.w3 = make([]float64, m.Hidden*m.flat)
	m.b3 = make([]float64, m.Hidden)
	m.w4 = make([]float64, m.numCl*m.Hidden)
	m.b4 = make([]float64, m.numCl)
	xavier(m.w1, m.catDim, m.C1, m.rng)
	xavier(m.w2, m.C1*m.K2, m.C2, m.rng)
	xavier(m.w3, m.flat, m.Hidden, m.rng)
	xavier(m.w4, m.Hidden, m.numCl, m.rng)

	preps := make([]*graphPrep, len(gs))
	for i, g := range gs {
		preps[i] = prepGraph(g)
	}

	params := [][]float64{m.w1, m.b1, m.w2, m.b2, m.w3, m.b3, m.w4, m.b4}
	params = append(params, m.gw...)
	opts := make([]*adam, len(params))
	grads := make([][]float64, len(params))
	for i, p := range params {
		opts[i] = newAdam(len(p), m.LR)
		grads[i] = make([]float64, len(p))
	}

	order := m.rng.Perm(len(gs))
	const batch = 8
	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			for _, g := range grads {
				zero(g)
			}
			inv := 1.0 / float64(end-start)
			for _, i := range order[start:end] {
				st := m.forward(preps[i], true)
				m.backward(preps[i], st, y[i], inv, grads)
			}
			for i, p := range params {
				opts[i].step(p, grads[i])
			}
		}
	}
	return nil
}

var errBadGraphSet = errStr("ml: bad graph training set")

type errStr string

func (e errStr) Error() string { return string(e) }

// gcnForward computes the stacked GCN layers, returning post-tanh
// activations per layer.
func (m *DGCNN) gcnForward(p *graphPrep) [][][]float64 {
	zs := make([][][]float64, len(m.GCDims))
	prev := p.feats
	prevDim := m.inDim
	for t, d := range m.GCDims {
		w := m.gw[t]
		// H = prev * W  (n x d)
		h := make([][]float64, p.n)
		for i := 0; i < p.n; i++ {
			row := make([]float64, d)
			pr := prev[i]
			for a := 0; a < len(pr) && a < prevDim; a++ {
				v := pr[a]
				if v == 0 {
					continue
				}
				base := a * d
				for b := 0; b < d; b++ {
					row[b] += v * w[base+b]
				}
			}
			h[i] = row
		}
		// Z = tanh(D^-1 A H)
		z := make([][]float64, p.n)
		for i := 0; i < p.n; i++ {
			row := make([]float64, d)
			for _, nb := range p.nbrs[i] {
				hn := h[nb]
				for b := 0; b < d; b++ {
					row[b] += hn[b]
				}
			}
			s := p.invDeg[i]
			for b := 0; b < d; b++ {
				row[b] = math.Tanh(row[b] * s)
			}
			z[i] = row
		}
		zs[t] = z
		prev = z
		prevDim = d
	}
	return zs
}

func (m *DGCNN) forward(p *graphPrep, train bool) *dgState {
	st := &dgState{
		a1:    make([]float64, m.K*m.C1),
		pool:  make([]float64, m.C1*m.p1),
		amax:  make([]int, m.C1*m.p1),
		a2:    make([]float64, m.C2*m.l2),
		hid:   make([]float64, m.Hidden),
		mask:  make([]float64, m.Hidden),
		probs: make([]float64, m.numCl),
	}
	st.zs = m.gcnForward(p)
	// SortPooling on the last (1-channel) layer.
	last := st.zs[len(st.zs)-1]
	idxs := make([]int, p.n)
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool { return last[idxs[a]][0] > last[idxs[b]][0] })
	if len(idxs) > m.K {
		idxs = idxs[:m.K]
	}
	st.sorted = idxs
	st.pooled = make([]float64, m.K*m.catDim)
	for row, node := range idxs {
		off := row * m.catDim
		for _, z := range st.zs {
			for _, v := range z[node] {
				st.pooled[off] = v
				off++
			}
		}
	}
	// conv1: kernel = catDim, stride = catDim -> per-row dense, ReLU.
	for c := 0; c < m.C1; c++ {
		wb := c * m.catDim
		for r := 0; r < m.K; r++ {
			s := m.b1[c]
			pb := r * m.catDim
			for k := 0; k < m.catDim; k++ {
				s += m.w1[wb+k] * st.pooled[pb+k]
			}
			st.a1[c*m.K+r] = relu(s)
		}
	}
	// maxpool 2 along rows.
	for c := 0; c < m.C1; c++ {
		for r := 0; r < m.p1; r++ {
			i0 := c*m.K + 2*r
			v, ai := st.a1[i0], i0
			if 2*r+1 < m.K && st.a1[i0+1] > v {
				v, ai = st.a1[i0+1], i0+1
			}
			st.pool[c*m.p1+r] = v
			st.amax[c*m.p1+r] = ai
		}
	}
	// conv2 + ReLU.
	for c := 0; c < m.C2; c++ {
		for r := 0; r < m.l2; r++ {
			s := m.b2[c]
			for ic := 0; ic < m.C1; ic++ {
				wb := (c*m.C1 + ic) * m.K2
				pb := ic*m.p1 + r
				for k := 0; k < m.K2; k++ {
					s += m.w2[wb+k] * st.pool[pb+k]
				}
			}
			st.a2[c*m.l2+r] = relu(s)
		}
	}
	// dense + ReLU + dropout.
	for j := 0; j < m.Hidden; j++ {
		s := m.b3[j]
		base := j * m.flat
		for k := 0; k < m.flat; k++ {
			s += m.w3[base+k] * st.a2[k]
		}
		v := relu(s)
		if train {
			if m.rng.Float64() < m.Dropout {
				st.mask[j] = 0
			} else {
				st.mask[j] = 1 / (1 - m.Dropout)
			}
			v *= st.mask[j]
		} else {
			st.mask[j] = 1
		}
		st.hid[j] = v
	}
	for c := 0; c < m.numCl; c++ {
		s := m.b4[c]
		base := c * m.Hidden
		for j := 0; j < m.Hidden; j++ {
			s += m.w4[base+j] * st.hid[j]
		}
		st.probs[c] = s
	}
	softmaxInPlace(st.probs)
	return st
}

// backward accumulates gradients for one graph. grads order:
// w1,b1,w2,b2,w3,b3,w4,b4, gw[0..].
func (m *DGCNN) backward(p *graphPrep, st *dgState, label int, scale float64, grads [][]float64) {
	gw1, gb1 := grads[0], grads[1]
	gw2, gb2 := grads[2], grads[3]
	gw3, gb3 := grads[4], grads[5]
	gw4, gb4 := grads[6], grads[7]
	ggw := grads[8:]

	dHid := make([]float64, m.Hidden)
	for c := 0; c < m.numCl; c++ {
		g := st.probs[c]
		if c == label {
			g -= 1
		}
		g *= scale
		gb4[c] += g
		base := c * m.Hidden
		for j := 0; j < m.Hidden; j++ {
			gw4[base+j] += g * st.hid[j]
			dHid[j] += g * m.w4[base+j]
		}
	}
	dA2 := make([]float64, m.flat)
	for j := 0; j < m.Hidden; j++ {
		if st.hid[j] == 0 || st.mask[j] == 0 {
			continue
		}
		g := dHid[j] * st.mask[j]
		gb3[j] += g
		base := j * m.flat
		for k := 0; k < m.flat; k++ {
			gw3[base+k] += g * st.a2[k]
			dA2[k] += g * m.w3[base+k]
		}
	}
	dPool := make([]float64, m.C1*m.p1)
	for c := 0; c < m.C2; c++ {
		for r := 0; r < m.l2; r++ {
			idx := c*m.l2 + r
			if st.a2[idx] <= 0 {
				continue
			}
			g := dA2[idx]
			gb2[c] += g
			for ic := 0; ic < m.C1; ic++ {
				wb := (c*m.C1 + ic) * m.K2
				pb := ic*m.p1 + r
				for k := 0; k < m.K2; k++ {
					gw2[wb+k] += g * st.pool[pb+k]
					dPool[pb+k] += g * m.w2[wb+k]
				}
			}
		}
	}
	dA1 := make([]float64, m.K*m.C1)
	for i, g := range dPool {
		if g != 0 {
			dA1[st.amax[i]] += g
		}
	}
	dPooled := make([]float64, len(st.pooled))
	for c := 0; c < m.C1; c++ {
		wb := c * m.catDim
		for r := 0; r < m.K; r++ {
			idx := c*m.K + r
			if st.a1[idx] <= 0 {
				continue
			}
			g := dA1[idx]
			if g == 0 {
				continue
			}
			gb1[c] += g
			pb := r * m.catDim
			for k := 0; k < m.catDim; k++ {
				gw1[wb+k] += g * st.pooled[pb+k]
				dPooled[pb+k] += g * m.w1[wb+k]
			}
		}
	}
	// Route pooled gradients back to the selected nodes, split per layer.
	dZ := make([][][]float64, len(m.GCDims))
	for t, d := range m.GCDims {
		dZ[t] = make([][]float64, p.n)
		_ = d
	}
	for row, node := range st.sorted {
		off := row * m.catDim
		for t, d := range m.GCDims {
			if dZ[t][node] == nil {
				dZ[t][node] = make([]float64, d)
			}
			for b := 0; b < d; b++ {
				dZ[t][node][b] += dPooled[off]
				off++
			}
		}
	}
	// Backprop through the GCN stack, last layer first. dZ[t] receives
	// contributions both from SortPooling (above) and from layer t+1.
	for t := len(m.GCDims) - 1; t >= 0; t-- {
		d := m.GCDims[t]
		var prev [][]float64
		prevDim := m.inDim
		if t > 0 {
			prev = st.zs[t-1]
			prevDim = m.GCDims[t-1]
		} else {
			prev = p.feats
		}
		z := st.zs[t]
		// dM = dZ ⊙ (1 - Z²) ⊙ invDeg (fold the D⁻¹ scaling here)
		dM := make([][]float64, p.n)
		any := false
		for i := 0; i < p.n; i++ {
			if dZ[t][i] == nil {
				continue
			}
			row := make([]float64, d)
			s := p.invDeg[i]
			for b := 0; b < d; b++ {
				row[b] = dZ[t][i][b] * (1 - z[i][b]*z[i][b]) * s
			}
			dM[i] = row
			any = true
		}
		if !any {
			continue
		}
		// dH = Aᵀ dM (undirected A: neighbours both ways, self loop).
		dH := make([][]float64, p.n)
		for i := 0; i < p.n; i++ {
			if dM[i] == nil {
				continue
			}
			for _, nb := range p.nbrs[i] {
				if dH[nb] == nil {
					dH[nb] = make([]float64, d)
				}
				row := dH[nb]
				for b := 0; b < d; b++ {
					row[b] += dM[i][b]
				}
			}
		}
		// dW += prevᵀ dH ; d(prev) = dH Wᵀ
		w := m.gw[t]
		gw := ggw[t]
		for i := 0; i < p.n; i++ {
			if dH[i] == nil {
				continue
			}
			pr := prev[i]
			for a := 0; a < prevDim && a < len(pr); a++ {
				v := pr[a]
				base := a * d
				if v != 0 {
					for b := 0; b < d; b++ {
						gw[base+b] += v * dH[i][b]
					}
				}
				if t > 0 {
					s := 0.0
					for b := 0; b < d; b++ {
						s += dH[i][b] * w[base+b]
					}
					if s != 0 {
						if dZ[t-1][i] == nil {
							dZ[t-1][i] = make([]float64, prevDim)
						}
						dZ[t-1][i][a] += s
					}
				}
			}
		}
	}
}

// PredictGraph classifies a single graph.
func (m *DGCNN) PredictGraph(g *embed.Graph) int {
	st := m.forward(prepGraph(g), false)
	return argmax(st.probs)
}

// MemoryBytes counts the parameter tensors (plus Adam moments, matching
// how the paper measures trained-model footprints).
func (m *DGCNN) MemoryBytes() int64 {
	n := len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2) +
		len(m.w3) + len(m.b3) + len(m.w4) + len(m.b4)
	for _, w := range m.gw {
		n += len(w)
	}
	return int64(n) * 8 * 3
}
