package ml

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/embed"
	"repro/internal/linalg"
)

// DGCNN is Zhang et al. (2018)'s Deep Graph Convolutional Neural Network,
// the model the paper uses for all graph-shaped program embeddings:
//
//  1. four graph convolutional layers (32, 32, 32 and 1 channel) with
//     hyperbolic-tangent activation, Z_{t+1} = tanh(D⁻¹ Ã Z_t W_t);
//  2. SortPooling: nodes sorted by the last 1-channel layer, top-k kept;
//  3. a one-dimensional convolutional layer (kernel = feature width);
//  4. max pooling;
//  5. a second one-dimensional convolutional layer;
//  6. a dense layer followed by dropout;
//  7. a final dense softmax classifier.
//
// Node features are flattened into packed matrices so every GCN layer and
// the first convolution run as dense GEMMs; minibatches train over fixed
// graph shards (see parallel.go) with byte-identical results for any
// worker count.
type DGCNN struct {
	GCDims  []int // per-layer output channels, last must be 1
	K       int   // SortPooling size
	C1      int   // conv-1 filters (kernel = concat width, stride = width)
	C2, K2  int   // conv-2 filters and kernel
	Hidden  int
	Dropout float64
	Epochs  int
	LR      float64

	inDim, numCl int
	catDim       int // sum of GCDims
	p1, l2, flat int

	gw     []([]float64) // GCN weight matrices, layer t: (prevDim x GCDims[t])
	w1, b1 []float64
	w2, b2 []float64
	w3, b3 []float64
	w4, b4 []float64
	rng    *rand.Rand
}

// NewDGCNN returns an untrained DGCNN with the paper's layer shape.
func NewDGCNN(rng *rand.Rand) *DGCNN {
	return &DGCNN{
		GCDims: []int{32, 32, 32, 1}, K: 16,
		C1: 16, C2: 32, K2: 5, Hidden: 128, Dropout: 0.5,
		Epochs: 30, LR: 1e-3, rng: rng,
	}
}

// graphPrep is the preprocessed propagation structure of one graph: the
// neighbour lists plus the node features packed into one zero-padded
// (n x inDim) matrix so GCN layers are plain GEMMs.
type graphPrep struct {
	n      int
	flat   []float64 // n x inDim node features
	nbrs   [][]int32 // incoming neighbours incl. self loop
	invDeg []float64
}

func (m *DGCNN) prep(g *embed.Graph) *graphPrep {
	n := g.NumNodes()
	p := &graphPrep{n: n, nbrs: make([][]int32, n), invDeg: make([]float64, n)}
	p.flat = make([]float64, n*m.inDim)
	for i, row := range g.NodeFeats {
		if i >= n {
			break
		}
		w := len(row)
		if w > m.inDim {
			w = m.inDim
		}
		copy(p.flat[i*m.inDim:i*m.inDim+w], row)
	}
	for i := 0; i < n; i++ {
		p.nbrs[i] = append(p.nbrs[i], int32(i)) // self loop
	}
	for _, e := range g.Edges {
		// Treat edges as undirected for propagation, standard for GCNs.
		p.nbrs[e[1]] = append(p.nbrs[e[1]], int32(e[0]))
		p.nbrs[e[0]] = append(p.nbrs[e[0]], int32(e[1]))
	}
	for i := range p.nbrs {
		p.invDeg[i] = 1.0 / float64(len(p.nbrs[i]))
	}
	return p
}

// dgScratch is one shard's workspace. The fixed-size back-half buffers are
// allocated once per Fit; the graph-size-dependent GCN activations are
// grabbed from the linalg arena per graph and dropped after backprop.
type dgScratch struct {
	zs     [][]float64 // per layer: flat n x dim post-tanh (arena)
	sorted []int       // SortPooling node order (arena)
	kept   int         // rows actually pooled (min(n, K))

	pooled []float64 // K x catDim, zero padded
	a1     []float64 // K x C1 row-major post-ReLU
	pool   []float64 // C1 x p1
	amax   []int     // argmax index into a1 per pooled cell
	pcol   []float64 // l2 x (C1·K2) im2col of pool
	a2     []float64 // l2 x C2 row-major post-ReLU
	hid    []float64
	mask   []float64
	probs  []float64

	dHid, dA2, dPcol []float64
	dPool            []float64
	dA1, dPooled     []float64
}

func (m *DGCNN) newScratch() *dgScratch {
	ck := m.C1 * m.K2
	return &dgScratch{
		zs:      make([][]float64, len(m.GCDims)),
		pooled:  make([]float64, m.K*m.catDim),
		a1:      make([]float64, m.K*m.C1),
		pool:    make([]float64, m.C1*m.p1),
		amax:    make([]int, m.C1*m.p1),
		pcol:    make([]float64, m.l2*ck),
		a2:      make([]float64, m.flat),
		hid:     make([]float64, m.Hidden),
		mask:    make([]float64, m.Hidden),
		probs:   make([]float64, m.numCl),
		dHid:    make([]float64, m.Hidden),
		dA2:     make([]float64, m.flat),
		dPcol:   make([]float64, m.l2*ck),
		dPool:   make([]float64, m.C1*m.p1),
		dA1:     make([]float64, m.K*m.C1),
		dPooled: make([]float64, m.K*m.catDim),
	}
}

// release returns the per-graph arena buffers held by the scratch.
func (sc *dgScratch) release() {
	for t := len(sc.zs) - 1; t >= 0; t-- {
		linalg.Drop(sc.zs[t])
		sc.zs[t] = nil
	}
	linalg.DropInts(sc.sorted)
	sc.sorted = nil
}

// FitGraphs trains on a labelled set of graphs.
func (m *DGCNN) FitGraphs(gs []*embed.Graph, y []int, numClasses int) error {
	if len(gs) == 0 || len(gs) != len(y) {
		return errBadGraphSet
	}
	if numClasses < 2 {
		return errBadGraphSet
	}
	defer fitSpan("dgcnn")()
	m.numCl = numClasses
	m.inDim = 0
	for _, g := range gs {
		if g.FeatDim() > m.inDim {
			m.inDim = g.FeatDim()
		}
	}
	m.catDim = 0
	for _, d := range m.GCDims {
		m.catDim += d
	}
	m.p1 = m.K / 2
	m.l2 = m.p1 - m.K2 + 1
	if m.l2 < 1 {
		m.K2 = m.p1
		m.l2 = 1
	}
	m.flat = m.C2 * m.l2

	m.gw = make([][]float64, len(m.GCDims))
	prev := m.inDim
	for t, d := range m.GCDims {
		m.gw[t] = make([]float64, prev*d)
		xavier(m.gw[t], prev, d, m.rng)
		prev = d
	}
	m.w1 = make([]float64, m.C1*m.catDim)
	m.b1 = make([]float64, m.C1)
	m.w2 = make([]float64, m.C2*m.C1*m.K2)
	m.b2 = make([]float64, m.C2)
	m.w3 = make([]float64, m.Hidden*m.flat)
	m.b3 = make([]float64, m.Hidden)
	m.w4 = make([]float64, m.numCl*m.Hidden)
	m.b4 = make([]float64, m.numCl)
	xavier(m.w1, m.catDim, m.C1, m.rng)
	xavier(m.w2, m.C1*m.K2, m.C2, m.rng)
	xavier(m.w3, m.flat, m.Hidden, m.rng)
	xavier(m.w4, m.Hidden, m.numCl, m.rng)

	preps := make([]*graphPrep, len(gs))
	for i, g := range gs {
		preps[i] = m.prep(g)
	}

	params := [][]float64{m.w1, m.b1, m.w2, m.b2, m.w3, m.b3, m.w4, m.b4}
	params = append(params, m.gw...)
	opts := make([]*adam, len(params))
	grads := make([][]float64, len(params))
	for i, p := range params {
		opts[i] = newAdam(len(p), m.LR)
		grads[i] = make([]float64, len(p))
	}

	n := len(gs)
	order := m.rng.Perm(n)
	const batch = 8
	batchMax := batch
	if batchMax > n {
		batchMax = n
	}
	shards := numShards(batchMax, graphShard)
	sg := newShardGrads(shards, params)
	scr := make([]*dgScratch, shards)
	for s := range scr {
		scr[s] = m.newScratch()
	}
	seeds := make([]int64, batchMax)

	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			bo := order[start:end]
			for j := range bo {
				seeds[j] = m.rng.Int63()
			}
			inv := 1.0 / float64(len(bo))
			forShards(len(bo), graphShard, func(s, lo, hi int) {
				sc := scr[s]
				g := sg.shard(s)
				for r := lo; r < hi; r++ {
					i := bo[r]
					m.forward(preps[i], sc, seeds[r], true)
					m.backward(preps[i], sc, y[i], inv, g)
					sc.release()
				}
			})
			sg.mergeInto(grads, numShards(len(bo), graphShard))
			for i, p := range params {
				opts[i].step(p, grads[i])
			}
		}
	}
	return nil
}

var errBadGraphSet = errStr("ml: bad graph training set")

type errStr string

func (e errStr) Error() string { return string(e) }

// gcnForward computes the stacked GCN layers into sc.zs: per layer a packed
// (n x dim) post-tanh activation matrix. H = Zprev·W runs as one GEMM; the
// D⁻¹Ã aggregation is a fused neighbour-sum + tanh pass.
func (m *DGCNN) gcnForward(p *graphPrep, sc *dgScratch) {
	prev := p.flat
	prevDim := m.inDim
	for t, d := range m.GCDims {
		h := linalg.Grab(p.n * d)
		linalg.GemmNN(h, prev, m.gw[t], p.n, d, prevDim)
		z := linalg.Grab(p.n * d)
		for i := 0; i < p.n; i++ {
			row := z[i*d : (i+1)*d]
			for _, nb := range p.nbrs[i] {
				linalg.Add(row, h[int(nb)*d:(int(nb)+1)*d])
			}
			s := p.invDeg[i]
			for b := range row {
				row[b] = math.Tanh(row[b] * s)
			}
		}
		linalg.Drop(h)
		sc.zs[t] = z
		prev = z
		prevDim = d
	}
}

// forward runs one graph through the network. Dropout (train only) is
// seeded per sample so the mask does not depend on worker scheduling.
func (m *DGCNN) forward(p *graphPrep, sc *dgScratch, seed int64, train bool) {
	m.gcnForward(p, sc)

	// SortPooling on the last (1-channel) layer.
	last := sc.zs[len(sc.zs)-1]
	idxs := linalg.GrabInts(p.n)
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool { return last[idxs[a]] > last[idxs[b]] })
	sc.sorted = idxs
	sc.kept = p.n
	if sc.kept > m.K {
		sc.kept = m.K
	}
	linalg.Zero(sc.pooled)
	for row := 0; row < sc.kept; row++ {
		node := idxs[row]
		off := row * m.catDim
		for t, d := range m.GCDims {
			copy(sc.pooled[off:off+d], sc.zs[t][node*d:(node+1)*d])
			off += d
		}
	}

	// conv1: kernel = catDim, stride = catDim — one GEMM producing the
	// row-major (K x C1) activation, then ReLU.
	for r := 0; r < m.K; r++ {
		copy(sc.a1[r*m.C1:(r+1)*m.C1], m.b1)
	}
	linalg.GemmNT(sc.a1, sc.pooled, m.w1, m.K, m.C1, m.catDim)
	linalg.ReLU(sc.a1)

	// maxpool 2 along rows (pool stays channel-major for conv2).
	for c := 0; c < m.C1; c++ {
		for r := 0; r < m.p1; r++ {
			i0 := 2*r*m.C1 + c
			v, ai := sc.a1[i0], i0
			if 2*r+1 < m.K && sc.a1[i0+m.C1] > v {
				v, ai = sc.a1[i0+m.C1], i0+m.C1
			}
			sc.pool[c*m.p1+r] = v
			sc.amax[c*m.p1+r] = ai
		}
	}
	// conv2 as an im2col GEMM + ReLU; a2 is position-major (l2 x C2), which
	// only permutes the flattened features the dense layer learns over.
	ck := m.C1 * m.K2
	for r := 0; r < m.l2; r++ {
		dst := r * ck
		for ic := 0; ic < m.C1; ic++ {
			src := ic*m.p1 + r
			copy(sc.pcol[dst+ic*m.K2:dst+(ic+1)*m.K2], sc.pool[src:src+m.K2])
		}
	}
	for r := 0; r < m.l2; r++ {
		copy(sc.a2[r*m.C2:(r+1)*m.C2], m.b2)
	}
	linalg.GemmNT(sc.a2, sc.pcol, m.w2, m.l2, m.C2, ck)
	linalg.ReLU(sc.a2)
	// dense + ReLU + dropout.
	copy(sc.hid, m.b3)
	linalg.MatVec(sc.hid, m.w3, sc.a2, m.Hidden, m.flat)
	linalg.ReLU(sc.hid)
	if train {
		sm := splitmix(seed)
		keep := 1 / (1 - m.Dropout)
		for j := range sc.hid {
			if sm.float64() < m.Dropout {
				sc.mask[j] = 0
				sc.hid[j] = 0
			} else {
				sc.mask[j] = keep
				sc.hid[j] *= keep
			}
		}
	} else {
		for j := range sc.mask {
			sc.mask[j] = 1
		}
	}
	copy(sc.probs, m.b4)
	linalg.MatVec(sc.probs, m.w4, sc.hid, m.numCl, m.Hidden)
	softmaxInPlace(sc.probs)
}

// backward accumulates gradients for one graph. grads order:
// w1,b1,w2,b2,w3,b3,w4,b4, gw[0..].
func (m *DGCNN) backward(p *graphPrep, sc *dgScratch, label int, scale float64, grads [][]float64) {
	gw1, gb1 := grads[0], grads[1]
	gw2, gb2 := grads[2], grads[3]
	gw3, gb3 := grads[4], grads[5]
	gw4, gb4 := grads[6], grads[7]
	ggw := grads[8:]

	linalg.Zero(sc.dHid)
	for c := 0; c < m.numCl; c++ {
		g := sc.probs[c]
		if c == label {
			g -= 1
		}
		g *= scale
		gb4[c] += g
		base := c * m.Hidden
		linalg.Axpy(g, sc.hid, gw4[base:base+m.Hidden])
		linalg.Axpy(g, m.w4[base:base+m.Hidden], sc.dHid)
	}
	linalg.Zero(sc.dA2)
	for j := 0; j < m.Hidden; j++ {
		if sc.hid[j] == 0 || sc.mask[j] == 0 {
			continue
		}
		g := sc.dHid[j] * sc.mask[j]
		gb3[j] += g
		base := j * m.flat
		linalg.Axpy(g, sc.a2, gw3[base:base+m.flat])
		linalg.Axpy(g, m.w3[base:base+m.flat], sc.dA2)
	}
	// conv2 backward: gate by its ReLU, then the weight and input gradients
	// are GEMMs against the im2col matrix, folded back with a col2im pass.
	for i, v := range sc.a2 {
		if v == 0 {
			sc.dA2[i] = 0
		}
	}
	ck := m.C1 * m.K2
	for r := 0; r < m.l2; r++ {
		linalg.Add(gb2, sc.dA2[r*m.C2:(r+1)*m.C2])
	}
	linalg.GemmTN(gw2, sc.dA2, sc.pcol, m.C2, ck, m.l2)
	linalg.Zero(sc.dPcol)
	linalg.GemmNN(sc.dPcol, sc.dA2, m.w2, m.l2, ck, m.C2)
	linalg.Zero(sc.dPool)
	for r := 0; r < m.l2; r++ {
		src := r * ck
		for ic := 0; ic < m.C1; ic++ {
			dst := ic*m.p1 + r
			linalg.Add(sc.dPool[dst:dst+m.K2], sc.dPcol[src+ic*m.K2:src+(ic+1)*m.K2])
		}
	}
	// Unpool, gate by conv1's ReLU, then fold the conv1 gradients as GEMMs
	// against the pooled matrix.
	linalg.Zero(sc.dA1)
	for i, g := range sc.dPool {
		if g != 0 {
			sc.dA1[sc.amax[i]] += g
		}
	}
	for i, v := range sc.a1 {
		if v <= 0 {
			sc.dA1[i] = 0
		}
	}
	for r := 0; r < m.K; r++ {
		linalg.Add(gb1, sc.dA1[r*m.C1:(r+1)*m.C1])
	}
	linalg.GemmTN(gw1, sc.dA1, sc.pooled, m.C1, m.catDim, m.K)
	linalg.Zero(sc.dPooled)
	linalg.GemmNN(sc.dPooled, sc.dA1, m.w1, m.K, m.catDim, m.C1)

	// Route pooled gradients back to the selected nodes, split per layer.
	dZ := make([][]float64, len(m.GCDims))
	for t, d := range m.GCDims {
		dZ[t] = linalg.Grab(p.n * d)
	}
	for row := 0; row < sc.kept; row++ {
		node := sc.sorted[row]
		off := row * m.catDim
		for t, d := range m.GCDims {
			linalg.Add(dZ[t][node*d:(node+1)*d], sc.dPooled[off:off+d])
			off += d
		}
	}
	// Backprop through the GCN stack, last layer first. dZ[t] receives
	// contributions both from SortPooling (above) and from layer t+1.
	for t := len(m.GCDims) - 1; t >= 0; t-- {
		d := m.GCDims[t]
		var prev []float64
		prevDim := m.inDim
		if t > 0 {
			prev = sc.zs[t-1]
			prevDim = m.GCDims[t-1]
		} else {
			prev = p.flat
		}
		z := sc.zs[t]
		// dM = dZ ⊙ (1 - Z²) ⊙ invDeg, in place (fold the D⁻¹ scaling).
		dm := dZ[t]
		for i := 0; i < p.n; i++ {
			s := p.invDeg[i]
			row := dm[i*d : (i+1)*d]
			zr := z[i*d : (i+1)*d]
			for b := range row {
				row[b] *= (1 - zr[b]*zr[b]) * s
			}
		}
		// dH = Aᵀ dM (undirected A: neighbours both ways, self loop).
		dH := linalg.Grab(p.n * d)
		for i := 0; i < p.n; i++ {
			row := dm[i*d : (i+1)*d]
			for _, nb := range p.nbrs[i] {
				linalg.Add(dH[int(nb)*d:(int(nb)+1)*d], row)
			}
		}
		// dW += prevᵀ dH ; d(prev) += dH Wᵀ.
		linalg.GemmTN(ggw[t], prev, dH, prevDim, d, p.n)
		if t > 0 {
			linalg.GemmNT(dZ[t-1], dH, m.gw[t], p.n, prevDim, d)
		}
		linalg.Drop(dH)
	}
	for t := len(dZ) - 1; t >= 0; t-- {
		linalg.Drop(dZ[t])
	}
}

// PredictGraph classifies a single graph.
func (m *DGCNN) PredictGraph(g *embed.Graph) int {
	sc := m.newScratch()
	m.forward(m.prep(g), sc, 0, false)
	sc.release()
	return argmax(sc.probs)
}

// MemoryBytes counts the parameter tensors (plus Adam moments, matching
// how the paper measures trained-model footprints).
func (m *DGCNN) MemoryBytes() int64 {
	n := len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2) +
		len(m.w3) + len(m.b3) + len(m.w4) + len(m.b4)
	for _, w := range m.gw {
		n += len(w)
	}
	return int64(n) * 8 * 3
}
