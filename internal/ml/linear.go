package ml

import (
	"math"
	"math/rand"
	"sort"
)

// KNN is a k-nearest-neighbours classifier with Euclidean distance over
// standardized features.
type KNN struct {
	K     int
	std   *standardizer
	X     [][]float64
	y     []int
	numCl int
}

// NewKNN returns an untrained k-NN model.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the (standardized) training set.
func (m *KNN) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	m.X = m.std.applyAll(X)
	m.y = append([]int(nil), y...)
	m.numCl = numClasses
	return nil
}

// Predict votes among the k nearest training rows.
func (m *KNN) Predict(x []float64) int {
	xs := m.std.apply(x)
	type nb struct {
		d float64
		c int
	}
	k := m.K
	if k > len(m.X) {
		k = len(m.X)
	}
	// Partial selection of the k smallest distances.
	nbs := make([]nb, 0, k+1)
	for i, row := range m.X {
		d := sqDist(xs, row)
		if len(nbs) < k {
			nbs = append(nbs, nb{d, m.y[i]})
			if len(nbs) == k {
				sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
			}
			continue
		}
		if d >= nbs[k-1].d {
			continue
		}
		pos := sort.Search(k, func(j int) bool { return nbs[j].d > d })
		copy(nbs[pos+1:], nbs[pos:k-1])
		nbs[pos] = nb{d, m.y[i]}
	}
	votes := make([]float64, m.numCl)
	for _, n := range nbs {
		votes[n.c]++
	}
	return argmax(votes)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MemoryBytes counts the memorized training matrix.
func (m *KNN) MemoryBytes() int64 {
	if len(m.X) == 0 {
		return 0
	}
	return int64(len(m.X))*int64(len(m.X[0]))*8 + int64(len(m.y))*8 + m.std.memory()
}

// Logistic is multinomial logistic regression (softmax) trained with Adam
// on the full batch.
type Logistic struct {
	Epochs int
	LR     float64
	L2     float64
	w      []float64 // (numCl x (d+1)) row-major, bias last
	d      int
	numCl  int
	std    *standardizer
	rng    *rand.Rand
}

// NewLogistic returns an untrained logistic-regression model.
func NewLogistic(rng *rand.Rand) *Logistic {
	return &Logistic{Epochs: 200, LR: 0.1, L2: 1e-4, rng: rng}
}

// Fit trains with full-batch Adam.
func (m *Logistic) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	Xs := m.std.applyAll(X)
	m.d = len(X[0])
	m.numCl = numClasses
	m.w = make([]float64, numClasses*(m.d+1))
	for i := range m.w {
		m.w[i] = (m.rng.Float64()*2 - 1) * 0.01
	}
	opt := newAdam(len(m.w), m.LR)
	grads := make([]float64, len(m.w))
	probs := make([]float64, numClasses)
	n := float64(len(Xs))
	for ep := 0; ep < m.Epochs; ep++ {
		for i := range grads {
			grads[i] = m.L2 * m.w[i]
		}
		for i, x := range Xs {
			m.logits(x, probs)
			softmaxInPlace(probs)
			for c := 0; c < numClasses; c++ {
				g := probs[c]
				if c == y[i] {
					g -= 1
				}
				g /= n
				base := c * (m.d + 1)
				for j, xv := range x {
					grads[base+j] += g * xv
				}
				grads[base+m.d] += g
			}
		}
		opt.step(m.w, grads)
	}
	return nil
}

func (m *Logistic) logits(x []float64, out []float64) {
	for c := 0; c < m.numCl; c++ {
		base := c * (m.d + 1)
		s := m.w[base+m.d]
		for j, xv := range x {
			s += m.w[base+j] * xv
		}
		out[c] = s
	}
}

// Predict returns the argmax class.
func (m *Logistic) Predict(x []float64) int {
	xs := m.std.apply(x)
	out := make([]float64, m.numCl)
	m.logits(xs, out)
	return argmax(out)
}

// MemoryBytes counts the weight matrix.
func (m *Logistic) MemoryBytes() int64 { return int64(len(m.w))*8 + m.std.memory() }

// SVM is a linear one-vs-rest support vector machine trained with
// Pegasos-style stochastic subgradient descent on the hinge loss.
type SVM struct {
	Epochs int
	Lambda float64
	w      []float64 // (numCl x (d+1)), bias last
	d      int
	numCl  int
	std    *standardizer
	rng    *rand.Rand
}

// NewSVM returns an untrained linear SVM.
func NewSVM(rng *rand.Rand) *SVM {
	return &SVM{Epochs: 60, Lambda: 1e-4, rng: rng}
}

// Fit trains the one-vs-rest hinge objective.
func (m *SVM) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	Xs := m.std.applyAll(X)
	m.d = len(X[0])
	m.numCl = numClasses
	m.w = make([]float64, numClasses*(m.d+1))
	n := len(Xs)
	order := m.rng.Perm(n)
	t := 0
	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			eta := 1.0 / (m.Lambda * float64(t+100))
			x := Xs[i]
			for c := 0; c < m.numCl; c++ {
				yc := -1.0
				if y[i] == c {
					yc = 1.0
				}
				base := c * (m.d + 1)
				s := m.w[base+m.d]
				for j, xv := range x {
					s += m.w[base+j] * xv
				}
				// L2 shrink on weights (not bias).
				for j := 0; j < m.d; j++ {
					m.w[base+j] *= 1 - eta*m.Lambda
				}
				if yc*s < 1 {
					for j, xv := range x {
						m.w[base+j] += eta * yc * xv
					}
					m.w[base+m.d] += eta * yc
				}
			}
		}
	}
	return nil
}

// Predict returns the class with the largest margin.
func (m *SVM) Predict(x []float64) int {
	xs := m.std.apply(x)
	best, bestS := 0, math.Inf(-1)
	for c := 0; c < m.numCl; c++ {
		base := c * (m.d + 1)
		s := m.w[base+m.d]
		for j, xv := range xs {
			s += m.w[base+j] * xv
		}
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// MemoryBytes counts the weight matrix.
func (m *SVM) MemoryBytes() int64 { return int64(len(m.w))*8 + m.std.memory() }
