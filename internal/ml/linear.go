package ml

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/linalg"
)

// KNN is a k-nearest-neighbours classifier with Euclidean distance over
// standardized features.
type KNN struct {
	K     int
	std   *standardizer
	X     [][]float64
	y     []int
	numCl int
	// noPrune disables the distance early-exit; test hook for verifying the
	// pruned scan returns identical predictions.
	noPrune bool
}

// NewKNN returns an untrained k-NN model.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the (standardized) training set.
func (m *KNN) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("knn")()
	m.std = fitStandardizer(X)
	m.X = m.std.applyAll(X)
	m.y = append([]int(nil), y...)
	m.numCl = numClasses
	return nil
}

// knnNB is one neighbour candidate in the k-smallest selection.
type knnNB struct {
	d float64
	c int
}

// knnScratch is the per-prediction working set (candidate buffer + vote
// counts). Predict is the serial PredictBatch fallback, so this is recycled
// through a pool instead of allocated per row.
type knnScratch struct {
	nbs   []knnNB
	votes []float64
}

var knnScratchPool = sync.Pool{New: func() any { return new(knnScratch) }}

// sortNeighbours orders the candidate buffer ascending by distance. Up to 12
// elements this is the same stable insertion sort sort.Slice itself runs at
// that length, inlined to skip its closure and reflection allocations; larger
// k falls back to sort.Slice so the ordering of tied distances (and hence
// which candidate a later insertion evicts) stays identical to the original
// code on every path.
func sortNeighbours(nbs []knnNB) {
	if len(nbs) <= 12 {
		for i := 1; i < len(nbs); i++ {
			for j := i; j > 0 && nbs[j].d < nbs[j-1].d; j-- {
				nbs[j], nbs[j-1] = nbs[j-1], nbs[j]
			}
		}
		return
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
}

// Predict votes among the k nearest training rows. The inner distance scan
// prunes against the current k-th best: squared distance only grows, so a
// row whose partial sum already reaches that bound can be discarded without
// finishing — predictions are identical to the full scan.
func (m *KNN) Predict(x []float64) int {
	xs := linalg.Grab(len(x))
	m.std.applyInto(xs, x)
	k := m.K
	if k > len(m.X) {
		k = len(m.X)
	}
	sc := knnScratchPool.Get().(*knnScratch)
	if cap(sc.nbs) < k+1 {
		sc.nbs = make([]knnNB, 0, k+1)
	}
	// Partial selection of the k smallest distances.
	limit := math.Inf(1)
	nbs := sc.nbs[:0]
	for i, row := range m.X {
		var d float64
		if m.noPrune {
			d = sqDist(xs, row)
		} else {
			d = sqDistBounded(xs, row, limit)
		}
		if len(nbs) < k {
			nbs = append(nbs, knnNB{d, m.y[i]})
			if len(nbs) == k {
				sortNeighbours(nbs)
				limit = nbs[k-1].d
			}
			continue
		}
		if d >= limit {
			continue
		}
		// Upper-bound binary search (same answer as sort.Search over
		// nbs[j].d > d, without the escaping closure).
		lo, hi := 0, k
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if nbs[mid].d > d {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(nbs[lo+1:], nbs[lo:k-1])
		nbs[lo] = knnNB{d, m.y[i]}
		limit = nbs[k-1].d
	}
	linalg.Drop(xs)
	if cap(sc.votes) < m.numCl {
		sc.votes = make([]float64, m.numCl)
	}
	votes := sc.votes[:m.numCl]
	for i := range votes {
		votes[i] = 0
	}
	for _, n := range nbs {
		votes[n.c]++
	}
	best := argmax(votes)
	sc.nbs = nbs
	knnScratchPool.Put(sc)
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqDistBounded is sqDist with an early exit: once the strictly increasing
// partial sum reaches limit, the row cannot enter the neighbour set
// (callers discard d >= limit), so any value >= limit may be returned. The
// accumulation order matches sqDist exactly, so unpruned results are
// bit-identical.
func sqDistBounded(a, b []float64, limit float64) float64 {
	s := 0.0
	i := 0
	for ; i+7 < len(a); i += 8 {
		d := a[i] - b[i]
		s += d * d
		d = a[i+1] - b[i+1]
		s += d * d
		d = a[i+2] - b[i+2]
		s += d * d
		d = a[i+3] - b[i+3]
		s += d * d
		d = a[i+4] - b[i+4]
		s += d * d
		d = a[i+5] - b[i+5]
		s += d * d
		d = a[i+6] - b[i+6]
		s += d * d
		d = a[i+7] - b[i+7]
		s += d * d
		if s >= limit {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MemoryBytes counts the memorized training matrix.
func (m *KNN) MemoryBytes() int64 {
	if len(m.X) == 0 {
		return 0
	}
	return int64(len(m.X))*int64(len(m.X[0]))*8 + int64(len(m.y))*8 + m.std.memory()
}

// Logistic is multinomial logistic regression (softmax) trained with Adam
// on the full batch. The epoch gradient runs as batched GEMMs over fixed
// sample shards (see parallel.go): deterministic for any worker count.
type Logistic struct {
	Epochs int
	LR     float64
	L2     float64
	w      []float64 // (numCl x (d+1)) row-major, bias last
	d      int
	numCl  int
	std    *standardizer
	rng    *rand.Rand
	warm   bool // FitWarm in progress: keep std and weights (see warm.go)
}

// NewLogistic returns an untrained logistic-regression model.
func NewLogistic(rng *rand.Rand) *Logistic {
	return &Logistic{Epochs: 200, LR: 0.1, L2: 1e-4, rng: rng}
}

// Fit trains with full-batch Adam.
func (m *Logistic) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("lr")()
	if !m.warmOK(len(X[0]), numClasses) {
		m.std = fitStandardizer(X)
		m.d = len(X[0])
		m.numCl = numClasses
		m.w = make([]float64, numClasses*(m.d+1))
		for i := range m.w {
			m.w[i] = (m.rng.Float64()*2 - 1) * 0.01
		}
	}
	Xs := m.std.applyAll(X)
	opt := newAdam(len(m.w), m.LR)
	grads := make([]float64, len(m.w))
	n := len(Xs)
	d1 := m.d + 1

	// Pack the standardized rows once with the bias column folded in, so
	// logits and gradients are plain GEMMs against the (c x (d+1)) weights.
	xb := make([]float64, n*d1)
	for i, row := range Xs {
		copy(xb[i*d1:], row)
		xb[i*d1+m.d] = 1
	}

	shards := numShards(n, trainShard)
	sg := newShardGrads(shards, [][]float64{m.w})
	probScratch := make([][]float64, shards)
	for s := range probScratch {
		probScratch[s] = make([]float64, trainShard*numClasses)
	}
	invN := 1.0 / float64(n)

	for ep := 0; ep < m.Epochs; ep++ {
		forShards(n, trainShard, func(s, lo, hi int) {
			gw := sg.shard(s)[0]
			rows := hi - lo
			probs := probScratch[s][:rows*numClasses]
			rowsX := xb[lo*d1 : hi*d1]
			linalg.Zero(probs)
			linalg.GemmNT(probs, rowsX, m.w, rows, numClasses, d1)
			linalg.SoftmaxRows(probs, rows, numClasses)
			for r := 0; r < rows; r++ {
				probs[r*numClasses+y[lo+r]] -= 1
			}
			linalg.Scale(invN, probs)
			linalg.GemmTN(gw, probs, rowsX, numClasses, d1, rows)
		})
		sg.mergeInto([][]float64{grads}, shards)
		linalg.Axpy(m.L2, m.w, grads)
		opt.step(m.w, grads)
	}
	return nil
}

func (m *Logistic) logits(x []float64, out []float64) {
	d1 := m.d + 1
	for c := 0; c < m.numCl; c++ {
		base := c * d1
		out[c] = m.w[base+m.d] + linalg.Dot(x[:m.d], m.w[base:base+m.d])
	}
}

// Predict returns the argmax class.
func (m *Logistic) Predict(x []float64) int {
	d := len(x)
	if d < m.d {
		d = m.d
	}
	xs := linalg.Grab(d)
	m.std.applyInto(xs, x)
	out := linalg.Grab(m.numCl)
	m.logits(xs, out)
	best := argmax(out)
	linalg.Drop(out)
	linalg.Drop(xs)
	return best
}

// MemoryBytes counts the weight matrix.
func (m *Logistic) MemoryBytes() int64 { return int64(len(m.w))*8 + m.std.memory() }

// SVM is a linear one-vs-rest support vector machine trained with
// Pegasos-style stochastic subgradient descent on the hinge loss. Pegasos
// updates the weights after every sample, so the pass is inherently
// sequential; the margin/update inner loops run on the fused linalg
// kernels instead of scalar code.
type SVM struct {
	Epochs int
	Lambda float64
	w      []float64 // (numCl x (d+1)), bias last
	d      int
	numCl  int
	std    *standardizer
	rng    *rand.Rand
	warm   bool // FitWarm in progress: keep std and weights (see warm.go)
}

// NewSVM returns an untrained linear SVM.
func NewSVM(rng *rand.Rand) *SVM {
	return &SVM{Epochs: 60, Lambda: 1e-4, rng: rng}
}

// Fit trains the one-vs-rest hinge objective.
func (m *SVM) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("svm")()
	if !m.warmOK(len(X[0]), numClasses) {
		m.std = fitStandardizer(X)
		m.d = len(X[0])
		m.numCl = numClasses
		m.w = make([]float64, numClasses*(m.d+1))
	}
	Xs := m.std.applyAll(X)
	n := len(Xs)
	order := m.rng.Perm(n)
	t := 0
	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			eta := 1.0 / (m.Lambda * float64(t+100))
			x := Xs[i]
			for c := 0; c < m.numCl; c++ {
				yc := -1.0
				if y[i] == c {
					yc = 1.0
				}
				base := c * (m.d + 1)
				wRow := m.w[base : base+m.d]
				s := m.w[base+m.d] + linalg.Dot(x, wRow)
				// L2 shrink on weights (not bias).
				linalg.Scale(1-eta*m.Lambda, wRow)
				if yc*s < 1 {
					linalg.Axpy(eta*yc, x, wRow)
					m.w[base+m.d] += eta * yc
				}
			}
		}
	}
	return nil
}

// Predict returns the class with the largest margin.
func (m *SVM) Predict(x []float64) int {
	d := len(x)
	if d < m.d {
		d = m.d
	}
	xs := linalg.Grab(d)
	m.std.applyInto(xs, x)
	best, bestS := 0, math.Inf(-1)
	for c := 0; c < m.numCl; c++ {
		base := c * (m.d + 1)
		s := m.w[base+m.d] + linalg.Dot(xs[:m.d], m.w[base:base+m.d])
		if s > bestS {
			best, bestS = c, s
		}
	}
	linalg.Drop(xs)
	return best
}

// MemoryBytes counts the weight matrix.
func (m *SVM) MemoryBytes() int64 { return int64(len(m.w))*8 + m.std.memory() }
