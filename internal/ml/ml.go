// Package ml implements the six stochastic classification models of the
// paper from scratch on the standard library: random forest (rf), support
// vector machine (svm), k-nearest neighbours (knn), logistic regression
// (lr), multi-layer perceptron (mlp), a 1-D convolutional network (cnn),
// and Zhang et al.'s Deep Graph Convolutional Neural Network (dgcnn) for
// graph-shaped embeddings.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/embed"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// fitSpan times one model's training in the obs registry so run manifests
// break the harness's fit phase down per model:
//
//	defer fitSpan("rf")()
func fitSpan(model string) func() {
	return obs.GetTimer("ml.fit." + model).Start()
}

// Model classifies vector embeddings.
type Model interface {
	// Fit trains on rows X with labels y in [0, numClasses).
	Fit(X [][]float64, y []int, numClasses int) error
	// Predict returns the predicted class of x.
	Predict(x []float64) int
	// MemoryBytes estimates the trained model's resident size — the
	// quantity Figure 7's second chart compares across models.
	MemoryBytes() int64
}

// GraphModel classifies graph embeddings.
type GraphModel interface {
	FitGraphs(gs []*embed.Graph, y []int, numClasses int) error
	PredictGraph(g *embed.Graph) int
	MemoryBytes() int64
}

// Names lists the vector models in the paper's order.
func Names() []string { return []string{"dgcnn", "cnn", "rf", "svm", "knn", "lr", "mlp"} }

// VectorNames lists models usable with vector embeddings.
func VectorNames() []string { return []string{"cnn", "rf", "svm", "knn", "lr", "mlp"} }

// New constructs a vector model by name with default hyper-parameters.
func New(name string, rng *rand.Rand) (Model, error) {
	switch name {
	case "rf":
		return NewRandomForest(60, 0, rng), nil
	case "svm":
		return NewSVM(rng), nil
	case "knn":
		return NewKNN(5), nil
	case "lr":
		return NewLogistic(rng), nil
	case "mlp":
		return NewMLP(100, rng), nil
	case "cnn":
		return NewCNN(rng), nil
	case "dgcnn":
		return nil, fmt.Errorf("ml: %q classifies graph embeddings, not vectors — construct it with NewDGCNN and use the GraphModel API (vector models: %s)",
			name, strings.Join(VectorNames(), ", "))
	}
	return nil, fmt.Errorf("ml: unknown model %q", name)
}

// --- shared numeric helpers ---

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// standardizer rescales features to zero mean and unit variance; constant
// features pass through unchanged.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(X [][]float64) *standardizer {
	if len(X) == 0 {
		return &standardizer{}
	}
	d := len(X[0])
	s := &standardizer{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-9 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	if s.mean == nil {
		return x
	}
	out := make([]float64, len(x))
	s.applyInto(out, x)
	return out
}

// applyInto standardizes x into dst (len(dst) >= len(x)) without
// allocating, for per-sample hot loops; dimensions beyond the fitted width
// pass through unchanged, matching apply.
func (s *standardizer) applyInto(dst, x []float64) {
	if s.mean == nil {
		copy(dst, x)
		return
	}
	n := len(x)
	if n > len(s.mean) {
		n = len(s.mean)
	}
	for j := 0; j < n; j++ {
		dst[j] = (x[j] - s.mean[j]) / s.std[j]
	}
	copy(dst[n:], x[n:])
}

// applyAll standardizes every row, sharing one backing array for the
// output matrix (a single allocation instead of one per row).
func (s *standardizer) applyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if len(X) == 0 {
		return out
	}
	total := 0
	for _, row := range X {
		total += len(row)
	}
	backing := make([]float64, total)
	off := 0
	for i, row := range X {
		dst := backing[off : off+len(row)]
		s.applyInto(dst, row)
		out[i] = dst
		off += len(row)
	}
	return out
}

func (s *standardizer) memory() int64 {
	return int64(16 * len(s.mean))
}

// softmaxInPlace converts logits to probabilities.
func softmaxInPlace(z []float64) { linalg.Softmax(z) }

// adam is the Adam optimizer state for one parameter tensor.
type adam struct {
	m, v []float64
	t    int
	lr   float64
}

func newAdam(n int, lr float64) *adam {
	return &adam{m: make([]float64, n), v: make([]float64, n), lr: lr}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// step applies one Adam update of params against grads. The bias
// corrections are hoisted out of the element loop as reciprocal factors
// (lr/b1t and 1/sqrt(b2t)), leaving one sqrt and one divide per element:
// lr·m̂/(sqrt(v̂)+eps) = (lr/b1t)·m / (sqrt(v)/sqrt(b2t) + eps).
func (a *adam) step(params, grads []float64) {
	a.t++
	b1t := 1 - math.Pow(adamBeta1, float64(a.t))
	b2t := 1 - math.Pow(adamBeta2, float64(a.t))
	lrc := a.lr / b1t
	isb2 := 1 / math.Sqrt(b2t)
	for i := range params {
		g := grads[i]
		a.m[i] = adamBeta1*a.m[i] + (1-adamBeta1)*g
		a.v[i] = adamBeta2*a.v[i] + (1-adamBeta2)*g*g
		params[i] -= lrc * a.m[i] / (math.Sqrt(a.v[i])*isb2 + adamEps)
	}
}

// xavier initializes a weight slice with scaled uniform noise.
func xavier(w []float64, fanIn, fanOut int, rng *rand.Rand) {
	scale := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * scale
	}
}

func checkFit(X [][]float64, y []int, numClasses int) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: bad training set: %d rows, %d labels", len(X), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("ml: need at least 2 classes, have %d", numClasses)
	}
	for _, c := range y {
		if c < 0 || c >= numClasses {
			return fmt.Errorf("ml: label %d out of range [0,%d)", c, numClasses)
		}
	}
	return nil
}
