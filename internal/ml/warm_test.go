package ml_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func accOn(m ml.Model, X [][]float64, y []int) float64 {
	hit := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(X))
}

// TestFitWarmAllVectorModels: every vector model except rf implements
// WarmFitter; FitWarm falls back to a cold fit when untrained, and a warm
// continuation on the same pool keeps the model accurate.
func TestFitWarmAllVectorModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	Xtr, ytr, Xte, yte := synthBlobs(rng, 80, 40, 12, 4, 1.5)
	for _, name := range ml.VectorNames() {
		m, err := ml.New(name, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		wf, ok := m.(ml.WarmFitter)
		if !ok {
			if name != "rf" {
				t.Errorf("%s does not implement WarmFitter", name)
			}
			continue
		}
		// Untrained: FitWarm must behave like a cold Fit.
		if err := wf.FitWarm(Xtr, ytr, 4); err != nil {
			t.Fatalf("%s: cold-path FitWarm: %v", name, err)
		}
		cold := accOn(m, Xte, yte)
		// Trained: a warm pass over the same pool must not degrade it.
		if err := wf.FitWarm(Xtr, ytr, 4); err != nil {
			t.Fatalf("%s: warm FitWarm: %v", name, err)
		}
		warm := accOn(m, Xte, yte)
		if warm < cold-0.25 {
			t.Errorf("%s: warm refit collapsed accuracy %.2f -> %.2f", name, cold, warm)
		}
	}
}

// TestFitWarmGrowingPool mimics the arena's retrain loop: the pool grows
// each generation and the warm fit keeps absorbing it deterministically —
// two identical histories end with models that agree on every prediction.
func TestFitWarmGrowingPool(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	Xtr, ytr, Xte, _ := synthBlobs(rng, 60, 30, 12, 4, 1.5)
	run := func() ml.Model {
		m, err := ml.New("lr", rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		wf := m.(ml.WarmFitter)
		for cut := 20; cut <= len(Xtr); cut += 20 {
			if err := wf.FitWarm(Xtr[:cut], ytr[:cut], 4); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a, b := run(), run()
	for i, x := range Xte {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("identical warm-fit histories disagree on row %d", i)
		}
	}
}

// TestFitWarmAfterLoad: a model restored from a snapshot has no RNG; a
// warm refit must still work (rollback-then-retrain is a normal arena
// sequence) and keep the frozen standardizer semantics.
func TestFitWarmAfterLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	Xtr, ytr, Xte, yte := synthBlobs(rng, 80, 40, 12, 4, 1.5)
	for _, name := range []string{"lr", "svm", "mlp", "cnn", "knn"} {
		m, err := ml.New(name, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(Xtr, ytr, 4); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ml.Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		m2, err := ml.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		wf, ok := m2.(ml.WarmFitter)
		if !ok {
			t.Fatalf("%s: loaded model lost WarmFitter", name)
		}
		if err := wf.FitWarm(Xtr, ytr, 4); err != nil {
			t.Fatalf("%s: FitWarm after Load: %v", name, err)
		}
		if acc := accOn(m2, Xte, yte); acc < 0.5 {
			t.Errorf("%s: post-load warm refit accuracy %.2f", name, acc)
		}
	}
}

// TestSnapshotLineageRoundTrip: SaveLineage stamps travel with the frame
// and plain Save writes the zero (root) lineage.
func TestSnapshotLineageRoundTrip(t *testing.T) {
	models, _, Xte := trainAll(t)
	want := ml.Lineage{Generation: 7, Parent: 6}
	for _, name := range ml.VectorNames() {
		var buf bytes.Buffer
		if err := ml.SaveLineage(&buf, models[name], want); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m2, lin, err := ml.LoadLineage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lin != want {
			t.Fatalf("%s: lineage %+v round-tripped to %+v", name, want, lin)
		}
		for i, x := range Xte {
			if m2.Predict(x) != models[name].Predict(x) {
				t.Fatalf("%s: lineage frame changed prediction on row %d", name, i)
			}
		}
		// Plain Save = root lineage; plain Load ignores the stamp.
		buf.Reset()
		if err := ml.Save(&buf, models[name]); err != nil {
			t.Fatal(err)
		}
		if _, lin, err := ml.LoadLineage(bytes.NewReader(buf.Bytes())); err != nil || lin != (ml.Lineage{}) {
			t.Fatalf("%s: Save should stamp the zero lineage, got %+v (%v)", name, lin, err)
		}
		if _, err := ml.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: Load rejects a v2 frame: %v", name, err)
		}
	}
}

// TestSnapshotV1StillLoads: pre-lineage v1 frames (no generation/parent
// block) must keep loading, with the zero lineage. The v1 frame is built by
// down-converting a fresh v2 frame: flip the version word, cut the 16
// lineage bytes, restamp the checksum.
func TestSnapshotV1StillLoads(t *testing.T) {
	models, _, Xte := trainAll(t)
	m := models["lr"]
	var buf bytes.Buffer
	if err := ml.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	const magicLen = 8
	nameLen := int(binary.LittleEndian.Uint64(snap[magicLen+8:]))
	nameEnd := magicLen + 8 + 8 + nameLen
	v1 := append([]byte(nil), snap[:nameEnd]...)
	binary.LittleEndian.PutUint64(v1[magicLen:], 1)
	v1 = append(v1, snap[nameEnd+16:len(snap)-8]...)
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], uint64(crc32.ChecksumIEEE(v1)))
	v1 = append(v1, tail[:]...)

	m2, lin, err := ml.LoadLineage(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if lin != (ml.Lineage{}) {
		t.Fatalf("v1 frame decoded lineage %+v, want zero", lin)
	}
	for i, x := range Xte {
		if m2.Predict(x) != m.Predict(x) {
			t.Fatalf("v1 frame changed prediction on row %d", i)
		}
	}
	// Unknown future versions still fail loudly.
	bad := append([]byte(nil), snap[:len(snap)-8]...)
	binary.LittleEndian.PutUint64(bad[magicLen:], 99)
	binary.LittleEndian.PutUint64(tail[:], uint64(crc32.ChecksumIEEE(bad)))
	bad = append(bad, tail[:]...)
	if _, _, err := ml.LoadLineage(bytes.NewReader(bad)); err == nil {
		t.Fatal("version-99 frame loaded without error")
	}
}
