package ml

import "repro/internal/linalg"

// BatchPredictor is implemented by models whose forward pass can run as one
// batched GEMM over many rows at once — the serving hot path. PredictBatch
// classifies row X[i] into out[i]; out must have len(X) slots.
type BatchPredictor interface {
	PredictBatch(X [][]float64, out []int)
}

// PredictBatch classifies every row of X into out, using the model's
// batched pass when it has one and a serial Predict loop otherwise.
func PredictBatch(m Model, X [][]float64, out []int) {
	if len(X) == 0 {
		return
	}
	if bp, ok := m.(BatchPredictor); ok {
		bp.PredictBatch(X, out)
		return
	}
	for i, x := range X {
		out[i] = m.Predict(x)
	}
}

// packStdRows standardizes every input row into a packed rows x stride
// matrix (the first d columns; extra columns are left as initialized by the
// caller). Rows shorter than d are zero-padded, rows longer are truncated —
// the same effective treatment Predict's scratch path applies.
func packStdRows(dst []float64, X [][]float64, d, stride int, s *standardizer) {
	scratch := linalg.Grab(d)
	for r, x := range X {
		linalg.Zero(scratch)
		n := len(x)
		if n > d {
			n = d
		}
		copy(scratch, x[:n])
		row := dst[r*stride : r*stride+d]
		s.applyInto(row, scratch)
	}
	linalg.Drop(scratch)
}

// PredictBatch scores all rows with one logits GEMM.
func (m *Logistic) PredictBatch(X [][]float64, out []int) {
	rows := len(X)
	d1 := m.d + 1
	xb := make([]float64, rows*d1)
	packStdRows(xb, X, m.d, d1, m.std)
	for r := 0; r < rows; r++ {
		xb[r*d1+m.d] = 1 // bias column
	}
	logits := make([]float64, rows*m.numCl)
	linalg.GemmNT(logits, xb, m.w, rows, m.numCl, d1)
	for r := 0; r < rows; r++ {
		out[r] = argmax(logits[r*m.numCl : (r+1)*m.numCl])
	}
}

// PredictBatch scores all rows' margins with one GEMM.
func (m *SVM) PredictBatch(X [][]float64, out []int) {
	rows := len(X)
	d1 := m.d + 1
	xb := make([]float64, rows*d1)
	packStdRows(xb, X, m.d, d1, m.std)
	for r := 0; r < rows; r++ {
		xb[r*d1+m.d] = 1
	}
	margins := make([]float64, rows*m.numCl)
	linalg.GemmNT(margins, xb, m.w, rows, m.numCl, d1)
	for r := 0; r < rows; r++ {
		out[r] = argmax(margins[r*m.numCl : (r+1)*m.numCl])
	}
}

// PredictBatch runs the whole batch through both dense layers as GEMMs.
func (m *MLP) PredictBatch(X [][]float64, out []int) {
	rows := len(X)
	h, c := m.Hidden, m.numCl
	xb := make([]float64, rows*m.d)
	packStdRows(xb, X, m.d, m.d, m.std)
	hid := make([]float64, rows*h)
	for r := 0; r < rows; r++ {
		copy(hid[r*h:(r+1)*h], m.b1)
	}
	linalg.GemmNT(hid, xb, m.w1, rows, h, m.d)
	linalg.ReLU(hid)
	logits := make([]float64, rows*c)
	for r := 0; r < rows; r++ {
		copy(logits[r*c:(r+1)*c], m.b2)
	}
	linalg.GemmNT(logits, hid, m.w2, rows, c, h)
	for r := 0; r < rows; r++ {
		out[r] = argmax(logits[r*c : (r+1)*c])
	}
}

// PredictBatch runs both convolutions and both dense layers batched over
// every row (im2col GEMMs, exactly the training forward without dropout).
func (m *CNN) PredictBatch(X [][]float64, out []int) {
	rows := len(X)
	h, c := m.Hidden, m.numCl
	xb := make([]float64, rows*m.d)
	packStdRows(xb, X, m.d, m.d, m.std)
	sc := m.newScratch(rows)
	m.convForward(func(r int) []float64 { return xb[r*m.d : (r+1)*m.d] }, rows, sc)
	a2 := sc.a2[:rows*m.flat]
	hid := make([]float64, rows*h)
	for r := 0; r < rows; r++ {
		copy(hid[r*h:(r+1)*h], m.b3)
	}
	linalg.GemmNT(hid, a2, m.w3, rows, h, m.flat)
	linalg.ReLU(hid)
	logits := make([]float64, rows*c)
	for r := 0; r < rows; r++ {
		copy(logits[r*c:(r+1)*c], m.b4)
	}
	linalg.GemmNT(logits, hid, m.w4, rows, c, h)
	for r := 0; r < rows; r++ {
		out[r] = argmax(logits[r*c : (r+1)*c])
	}
}
