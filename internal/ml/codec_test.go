package ml_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ml"
)

// trainAll fits every vector model on one fixed-seed blob problem and
// returns the models with the train/test matrices.
func trainAll(t *testing.T) (map[string]ml.Model, [][]float64, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	Xtr, ytr, Xte, _ := synthBlobs(rng, 80, 40, 12, 4, 1.5)
	models := make(map[string]ml.Model)
	for _, name := range ml.VectorNames() {
		m, err := ml.New(name, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(Xtr, ytr, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		models[name] = m
	}
	return models, Xtr, Xte
}

func TestSnapshotRoundTripPredictIdentical(t *testing.T) {
	models, Xtr, Xte := trainAll(t)
	for _, name := range ml.VectorNames() {
		m := models[name]
		var buf bytes.Buffer
		if err := ml.Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		m2, err := ml.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		for _, X := range [][][]float64{Xtr, Xte} {
			for i, x := range X {
				if got, want := m2.Predict(x), m.Predict(x); got != want {
					t.Fatalf("%s: row %d: loaded model predicts %d, original %d", name, i, got, want)
				}
			}
		}
		if got, want := m2.MemoryBytes(), m.MemoryBytes(); got != want {
			t.Errorf("%s: loaded MemoryBytes %d != original %d", name, got, want)
		}
	}
}

func TestSnapshotRoundTripFile(t *testing.T) {
	models, _, Xte := trainAll(t)
	dir := t.TempDir()
	for _, name := range []string{"rf", "mlp"} {
		path := filepath.Join(dir, name+".snap")
		if err := ml.SaveFile(path, models[name]); err != nil {
			t.Fatal(err)
		}
		m2, err := ml.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range Xte {
			if m2.Predict(x) != models[name].Predict(x) {
				t.Fatalf("%s: file round trip changed a prediction", name)
			}
		}
	}
}

func TestSnapshotErrorPaths(t *testing.T) {
	models, _, _ := trainAll(t)
	var buf bytes.Buffer
	if err := ml.Save(&buf, models["mlp"]); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 8, len(snap) / 2, len(snap) - 1} {
			if _, err := ml.Load(bytes.NewReader(snap[:cut])); err == nil {
				t.Fatalf("truncation to %d bytes loaded without error", cut)
			}
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		for _, pos := range []int{10, len(snap) / 2, len(snap) - 9} {
			bad := append([]byte(nil), snap...)
			bad[pos] ^= 0x40
			_, err := ml.Load(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("bit flip at %d loaded without error", pos)
			}
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("bit flip at %d: want checksum error, got %v", pos, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		copy(bad, "NOTASNAP")
		if _, err := ml.Load(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Fatalf("want bad-magic error, got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ml.Load(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty snapshot loaded without error")
		}
	})
	t.Run("untrained", func(t *testing.T) {
		m, err := ml.New("svm", rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := ml.Save(&b, m); err == nil ||
			!strings.Contains(err.Error(), "untrained") {
			t.Fatalf("want untrained error, got %v", err)
		}
	})
}

func TestPredictBatchMatchesSerial(t *testing.T) {
	models, Xtr, Xte := trainAll(t)
	for _, name := range ml.VectorNames() {
		m := models[name]
		for _, X := range [][][]float64{Xtr, Xte, nil} {
			out := make([]int, len(X))
			ml.PredictBatch(m, X, out)
			for i, x := range X {
				if want := m.Predict(x); out[i] != want {
					t.Fatalf("%s: batch row %d = %d, serial = %d", name, i, out[i], want)
				}
			}
		}
	}
}

func TestNewDGCNNDirectsToGraphAPI(t *testing.T) {
	_, err := ml.New("dgcnn", rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("ml.New(\"dgcnn\") succeeded; want a directing error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "NewDGCNN") || !strings.Contains(msg, "GraphModel") {
		t.Fatalf("error should direct to the NewDGCNN / GraphModel API, got: %v", err)
	}
	if strings.Contains(msg, "unknown model") {
		t.Fatalf("dgcnn should not be reported as unknown: %v", err)
	}
}
