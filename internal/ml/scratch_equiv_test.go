package ml

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The pooled-scratch Predict paths (KNN candidate buffer + inlined insertion
// sort, RF slice tally) must return exactly what the allocating originals
// returned, including on tied distances and tied vote counts. The reference
// implementations below are the pre-pooling code, kept verbatim as oracles.

// refKNNPredict is the original KNN.Predict: per-call slices, sort.Slice for
// the initial k ordering, sort.Search for insertions.
func refKNNPredict(m *KNN, x []float64) int {
	xs := make([]float64, len(x))
	m.std.applyInto(xs, x)
	type nb struct {
		d float64
		c int
	}
	k := m.K
	if k > len(m.X) {
		k = len(m.X)
	}
	limit := math.Inf(1)
	nbs := make([]nb, 0, k+1)
	for i, row := range m.X {
		var d float64
		if m.noPrune {
			d = sqDist(xs, row)
		} else {
			d = sqDistBounded(xs, row, limit)
		}
		if len(nbs) < k {
			nbs = append(nbs, nb{d, m.y[i]})
			if len(nbs) == k {
				sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
				limit = nbs[k-1].d
			}
			continue
		}
		if d >= limit {
			continue
		}
		pos := sort.Search(k, func(j int) bool { return nbs[j].d > d })
		copy(nbs[pos+1:], nbs[pos:k-1])
		nbs[pos] = nb{d, m.y[i]}
		limit = nbs[k-1].d
	}
	votes := make([]float64, m.numCl)
	for _, n := range nbs {
		votes[n.c]++
	}
	return argmax(votes)
}

// tieGrid draws feature rows from a tiny integer grid so squared distances
// collide constantly — the adversarial case for neighbour ordering.
func tieGrid(rng *rand.Rand, n, d int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64(rng.Intn(3))
		}
		X[i] = row
	}
	return X
}

func TestKNNPooledPredictMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X := tieGrid(rng, 240, 6)
	y := make([]int, len(X))
	for i := range y {
		y[i] = rng.Intn(4)
	}
	// k=5 exercises the inlined insertion sort, k=15 the sort.Slice
	// fallback plus the binary-search insertion on a wider buffer.
	for _, k := range []int{1, 5, 12, 15} {
		m := NewKNN(k)
		if err := m.Fit(X, y, 4); err != nil {
			t.Fatal(err)
		}
		queries := append(tieGrid(rng, 300, 6), X[:40]...)
		for qi, q := range queries {
			if got, want := m.Predict(q), refKNNPredict(m, q); got != want {
				t.Fatalf("k=%d query %d: pooled Predict=%d, reference=%d", k, qi, got, want)
			}
		}
	}
}

func TestRFSliceTallyMatchesMapTally(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	X := tieGrid(rng, 200, 6)
	y := make([]int, len(X))
	for i := range y {
		y[i] = rng.Intn(4)
	}
	// Many shallow trees disagree often, producing tied vote counts.
	rf := NewRandomForest(31, 2, rand.New(rand.NewSource(3)))
	if err := rf.Fit(X, y, 4); err != nil {
		t.Fatal(err)
	}
	for qi, q := range tieGrid(rng, 300, 6) {
		if got, want := rf.Predict(q), rf.predictMapVotes(q); got != want {
			t.Fatalf("query %d: slice tally=%d, map tally=%d", qi, got, want)
		}
	}
}

func TestRFSnapshotRestoresTallyWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X := tieGrid(rng, 120, 5)
	y := make([]int, len(X))
	for i := range y {
		y[i] = rng.Intn(3)
	}
	rf := NewRandomForest(9, 3, rand.New(rand.NewSource(7)))
	if err := rf.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, rf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rf2, ok := m.(*RandomForest)
	if !ok {
		t.Fatalf("loaded %T, want *RandomForest", m)
	}
	if rf2.numCl != rf.numCl {
		t.Fatalf("restored numCl=%d, want %d", rf2.numCl, rf.numCl)
	}
	for qi, q := range tieGrid(rng, 100, 5) {
		if got, want := rf2.Predict(q), rf.Predict(q); got != want {
			t.Fatalf("query %d: restored forest=%d, original=%d", qi, got, want)
		}
	}
}
