package ml

// Test hooks: expose trained weights and the KNN prune toggle so external
// tests can assert byte-identical training across worker counts and prune
// exactness. Compiled into test binaries only.

// WeightsForTest returns every parameter tensor of a trained model.
func WeightsForTest(m any) [][]float64 {
	switch v := m.(type) {
	case *MLP:
		return [][]float64{v.w1, v.b1, v.w2, v.b2}
	case *CNN:
		return [][]float64{v.w1, v.b1, v.w2, v.b2, v.w3, v.b3, v.w4, v.b4}
	case *Logistic:
		return [][]float64{v.w}
	case *SVM:
		return [][]float64{v.w}
	case *DGCNN:
		out := [][]float64{v.w1, v.b1, v.w2, v.b2, v.w3, v.b3, v.w4, v.b4}
		return append(out, v.gw...)
	}
	return nil
}

// SetNoPruneForTest disables the KNN distance-scan early exit.
func (m *KNN) SetNoPruneForTest(b bool) { m.noPrune = b }
