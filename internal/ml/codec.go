package ml

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary snapshot codec for the six vector models. A snapshot captures
// everything Predict needs — hyper-parameters, trained tensors and the
// feature standardizer — so a model trained once can be served from any
// process. The frame is
//
//	magic "GOMLSNAP" | version u64 | model name | lineage | payload | crc32 u64
//
// with every integer fixed-width little-endian and the checksum covering
// all preceding bytes, so truncation and bit-flips both fail loudly at
// load time. Loaded models are prediction-ready; to re-train, construct a
// fresh model with New (the decoder does not restore RNG state).
//
// Version history: v1 had no lineage block; v2 inserted it (generation i64,
// parent i64) between the name and the payload. Both versions load — a v1
// frame decodes with the zero Lineage.

const (
	snapMagic   = "GOMLSNAP"
	snapVersion = 2
)

// Lineage locates a snapshot in a retraining chain: Generation is the
// snapshot's own version number and Parent the generation it was
// warm-started (or rolled back) from. The zero Lineage marks a root
// snapshot — a model trained from scratch, or any pre-lineage v1 frame.
type Lineage struct {
	Generation int64 `json:"generation"`
	Parent     int64 `json:"parent"`
}

// Save writes a snapshot of the trained model m to w with the zero
// (root) lineage. Untrained models and graph models (DGCNN) are rejected.
func Save(w io.Writer, m Model) error { return SaveLineage(w, m, Lineage{}) }

// SaveLineage writes a snapshot of the trained model m to w, stamped with
// its position in a retraining chain.
func SaveLineage(w io.Writer, m Model, lin Lineage) error {
	name, err := snapshotName(m)
	if err != nil {
		return err
	}
	sw := &snapWriter{}
	sw.raw([]byte(snapMagic))
	sw.u64(snapVersion)
	sw.str(name)
	sw.i64(lin.Generation)
	sw.i64(lin.Parent)
	if err := encodeModel(sw, m); err != nil {
		return err
	}
	sw.u64(uint64(crc32.ChecksumIEEE(sw.buf.Bytes())))
	_, err = w.Write(sw.buf.Bytes())
	return err
}

// Load reads a snapshot written by Save and reconstructs the model.
func Load(r io.Reader) (Model, error) {
	m, _, err := LoadLineage(r)
	return m, err
}

// LoadLineage reads a snapshot and reconstructs the model together with its
// lineage stamp (zero for v1 frames, which predate lineage).
func LoadLineage(r io.Reader) (Model, Lineage, error) {
	var lin Lineage
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, lin, fmt.Errorf("ml: read snapshot: %w", err)
	}
	// Smallest possible frame: magic + version + empty name + crc.
	if len(data) < len(snapMagic)+8+8+8 {
		return nil, lin, fmt.Errorf("ml: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, lin, fmt.Errorf("ml: not a model snapshot (bad magic)")
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	want := binary.LittleEndian.Uint64(tail)
	if got := uint64(crc32.ChecksumIEEE(body)); got != want {
		return nil, lin, fmt.Errorf("ml: snapshot corrupted (checksum mismatch)")
	}
	sr := &snapReader{data: body, off: len(snapMagic)}
	v := sr.u64()
	if v != 1 && v != snapVersion {
		return nil, lin, fmt.Errorf("ml: snapshot version %d, this binary speaks %d", v, snapVersion)
	}
	name := sr.str()
	if v >= 2 {
		lin.Generation = sr.i64()
		lin.Parent = sr.i64()
	}
	m, err := decodeModel(sr, name)
	if err != nil {
		return nil, lin, err
	}
	if sr.err != nil {
		return nil, lin, fmt.Errorf("ml: decode %s snapshot: %w", name, sr.err)
	}
	if sr.off != len(sr.data) {
		return nil, lin, fmt.Errorf("ml: %s snapshot has %d trailing bytes", name, len(sr.data)-sr.off)
	}
	return m, lin, nil
}

// SaveFile snapshots m to path, creating the file.
func SaveFile(path string, m Model) error {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a model snapshot from path.
func LoadFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func snapshotName(m Model) (string, error) {
	switch v := m.(type) {
	case *RandomForest:
		if len(v.trees) == 0 {
			return "", errUntrained("rf")
		}
		return "rf", nil
	case *SVM:
		if len(v.w) == 0 {
			return "", errUntrained("svm")
		}
		return "svm", nil
	case *KNN:
		if len(v.X) == 0 {
			return "", errUntrained("knn")
		}
		return "knn", nil
	case *Logistic:
		if len(v.w) == 0 {
			return "", errUntrained("lr")
		}
		return "lr", nil
	case *MLP:
		if len(v.w1) == 0 {
			return "", errUntrained("mlp")
		}
		return "mlp", nil
	case *CNN:
		if len(v.w1) == 0 {
			return "", errUntrained("cnn")
		}
		return "cnn", nil
	}
	return "", fmt.Errorf("ml: cannot snapshot model of type %T", m)
}

func errUntrained(name string) error {
	return fmt.Errorf("ml: cannot snapshot an untrained %s model", name)
}

func encodeModel(w *snapWriter, m Model) error {
	switch v := m.(type) {
	case *RandomForest:
		v.encodeSnap(w)
	case *SVM:
		v.encodeSnap(w)
	case *KNN:
		v.encodeSnap(w)
	case *Logistic:
		v.encodeSnap(w)
	case *MLP:
		v.encodeSnap(w)
	case *CNN:
		v.encodeSnap(w)
	default:
		return fmt.Errorf("ml: cannot snapshot model of type %T", m)
	}
	return nil
}

func decodeModel(r *snapReader, name string) (Model, error) {
	switch name {
	case "rf":
		m := &RandomForest{}
		m.decodeSnap(r)
		return m, nil
	case "svm":
		m := &SVM{}
		m.decodeSnap(r)
		return m, nil
	case "knn":
		m := &KNN{}
		m.decodeSnap(r)
		return m, nil
	case "lr":
		m := &Logistic{}
		m.decodeSnap(r)
		return m, nil
	case "mlp":
		m := &MLP{}
		m.decodeSnap(r)
		return m, nil
	case "cnn":
		m := &CNN{}
		m.decodeSnap(r)
		return m, nil
	}
	return nil, fmt.Errorf("ml: snapshot holds unknown model %q", name)
}

// --- wire helpers ---

type snapWriter struct{ buf bytes.Buffer }

func (w *snapWriter) raw(b []byte) { w.buf.Write(b) }

func (w *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *snapWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *snapWriter) int(v int)     { w.i64(int64(v)) }
func (w *snapWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *snapWriter) str(s string) {
	w.int(len(s))
	w.buf.WriteString(s)
}

func (w *snapWriter) floats(xs []float64) {
	w.int(len(xs))
	for _, x := range xs {
		w.f64(x)
	}
}

func (w *snapWriter) ints(xs []int) {
	w.int(len(xs))
	for _, x := range xs {
		w.i64(int64(x))
	}
}

// std writes the standardizer (nil-safe: an untouched standardizer decodes
// back to the pass-through state).
func (w *snapWriter) std(s *standardizer) {
	if s == nil {
		w.floats(nil)
		w.floats(nil)
		return
	}
	w.floats(s.mean)
	w.floats(s.std)
}

type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) i64() int64   { return int64(r.u64()) }
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *snapReader) int() int {
	v := r.i64()
	if int64(int(v)) != v {
		r.fail("integer %d overflows this platform's int", v)
		return 0
	}
	return int(v)
}

// sliceLen reads a length prefix and bounds it by the bytes remaining
// (elemSize bytes per element), so corrupt prefixes cannot trigger huge
// allocations.
func (r *snapReader) sliceLen(elemSize int) int {
	n := r.i64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(r.data)-r.off)/int64(elemSize) {
		r.fail("implausible length %d at byte %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *snapReader) str() string {
	n := r.sliceLen(1)
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *snapReader) floats() []float64 {
	n := r.sliceLen(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *snapReader) ints() []int {
	n := r.sliceLen(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.i64())
	}
	return out
}

func (r *snapReader) stdDec() *standardizer {
	s := &standardizer{mean: r.floats(), std: r.floats()}
	if len(s.mean) != len(s.std) {
		r.fail("standardizer mean/std length mismatch (%d vs %d)", len(s.mean), len(s.std))
	}
	return s
}

// --- per-model payloads ---

func (m *KNN) encodeSnap(w *snapWriter) {
	w.int(m.K)
	w.int(m.numCl)
	w.std(m.std)
	w.ints(m.y)
	cols := 0
	if len(m.X) > 0 {
		cols = len(m.X[0])
	}
	w.int(len(m.X))
	w.int(cols)
	for _, row := range m.X {
		for _, v := range row {
			w.f64(v)
		}
	}
}

func (m *KNN) decodeSnap(r *snapReader) {
	m.K = r.int()
	m.numCl = r.int()
	m.std = r.stdDec()
	m.y = r.ints()
	rows, cols := r.int(), r.int()
	if r.err != nil {
		return
	}
	if rows < 0 || cols < 0 || int64(rows)*int64(cols) > int64(len(r.data)-r.off)/8 {
		r.fail("implausible knn matrix %dx%d", rows, cols)
		return
	}
	if rows != len(m.y) {
		r.fail("knn rows %d != labels %d", rows, len(m.y))
		return
	}
	backing := make([]float64, rows*cols)
	for i := range backing {
		backing[i] = r.f64()
	}
	m.X = make([][]float64, rows)
	for i := range m.X {
		m.X[i] = backing[i*cols : (i+1)*cols]
	}
}

func (m *Logistic) encodeSnap(w *snapWriter) {
	w.int(m.Epochs)
	w.f64(m.LR)
	w.f64(m.L2)
	w.int(m.d)
	w.int(m.numCl)
	w.floats(m.w)
	w.std(m.std)
}

func (m *Logistic) decodeSnap(r *snapReader) {
	m.Epochs = r.int()
	m.LR = r.f64()
	m.L2 = r.f64()
	m.d = r.int()
	m.numCl = r.int()
	m.w = r.floats()
	m.std = r.stdDec()
	if r.err == nil && len(m.w) != m.numCl*(m.d+1) {
		r.fail("lr weights %d != %d classes x (%d+1) features", len(m.w), m.numCl, m.d)
	}
}

func (m *SVM) encodeSnap(w *snapWriter) {
	w.int(m.Epochs)
	w.f64(m.Lambda)
	w.int(m.d)
	w.int(m.numCl)
	w.floats(m.w)
	w.std(m.std)
}

func (m *SVM) decodeSnap(r *snapReader) {
	m.Epochs = r.int()
	m.Lambda = r.f64()
	m.d = r.int()
	m.numCl = r.int()
	m.w = r.floats()
	m.std = r.stdDec()
	if r.err == nil && len(m.w) != m.numCl*(m.d+1) {
		r.fail("svm weights %d != %d classes x (%d+1) features", len(m.w), m.numCl, m.d)
	}
}

func (m *MLP) encodeSnap(w *snapWriter) {
	w.int(m.Hidden)
	w.int(m.Epochs)
	w.int(m.BatchSize)
	w.f64(m.LR)
	w.int(m.d)
	w.int(m.numCl)
	w.floats(m.w1)
	w.floats(m.b1)
	w.floats(m.w2)
	w.floats(m.b2)
	w.std(m.std)
}

func (m *MLP) decodeSnap(r *snapReader) {
	m.Hidden = r.int()
	m.Epochs = r.int()
	m.BatchSize = r.int()
	m.LR = r.f64()
	m.d = r.int()
	m.numCl = r.int()
	m.w1 = r.floats()
	m.b1 = r.floats()
	m.w2 = r.floats()
	m.b2 = r.floats()
	m.std = r.stdDec()
	if r.err == nil && (len(m.w1) != m.Hidden*m.d || len(m.b1) != m.Hidden ||
		len(m.w2) != m.numCl*m.Hidden || len(m.b2) != m.numCl) {
		r.fail("mlp tensor shapes inconsistent with hidden=%d d=%d classes=%d",
			m.Hidden, m.d, m.numCl)
	}
}

func (m *CNN) encodeSnap(w *snapWriter) {
	w.int(m.C1)
	w.int(m.K1)
	w.int(m.C2)
	w.int(m.K2)
	w.int(m.Hidden)
	w.f64(m.Dropout)
	w.int(m.Epochs)
	w.int(m.BatchSize)
	w.f64(m.LR)
	w.int(m.d)
	w.int(m.numCl)
	w.int(m.l1)
	w.int(m.p1)
	w.int(m.l2)
	w.int(m.flat)
	w.floats(m.w1)
	w.floats(m.b1)
	w.floats(m.w2)
	w.floats(m.b2)
	w.floats(m.w3)
	w.floats(m.b3)
	w.floats(m.w4)
	w.floats(m.b4)
	w.std(m.std)
}

func (m *CNN) decodeSnap(r *snapReader) {
	m.C1 = r.int()
	m.K1 = r.int()
	m.C2 = r.int()
	m.K2 = r.int()
	m.Hidden = r.int()
	m.Dropout = r.f64()
	m.Epochs = r.int()
	m.BatchSize = r.int()
	m.LR = r.f64()
	m.d = r.int()
	m.numCl = r.int()
	m.l1 = r.int()
	m.p1 = r.int()
	m.l2 = r.int()
	m.flat = r.int()
	m.w1 = r.floats()
	m.b1 = r.floats()
	m.w2 = r.floats()
	m.b2 = r.floats()
	m.w3 = r.floats()
	m.b3 = r.floats()
	m.w4 = r.floats()
	m.b4 = r.floats()
	m.std = r.stdDec()
	if r.err == nil && (len(m.w1) != m.C1*m.K1 || len(m.w2) != m.C2*m.C1*m.K2 ||
		len(m.w3) != m.Hidden*m.flat || len(m.w4) != m.numCl*m.Hidden ||
		m.flat != m.C2*m.l2) {
		r.fail("cnn tensor shapes inconsistent with conv %dx%d/%dx%d hidden=%d", m.C1, m.K1, m.C2, m.K2, m.Hidden)
	}
}

func (rf *RandomForest) encodeSnap(w *snapWriter) {
	w.int(rf.NumTrees)
	w.int(rf.MaxDepth)
	w.int(len(rf.trees))
	for _, t := range rf.trees {
		w.int(t.numClasses)
		w.int(t.maxDepth)
		w.int(t.minLeaf)
		w.int(t.numFeats)
		w.int(len(t.nodes))
		for _, nd := range t.nodes {
			w.int(nd.feature)
			w.f64(nd.thresh)
			w.i64(int64(nd.left))
			w.i64(int64(nd.right))
			w.i64(int64(nd.label))
		}
	}
}

func (rf *RandomForest) decodeSnap(r *snapReader) {
	rf.NumTrees = r.int()
	rf.MaxDepth = r.int()
	n := r.sliceLen(8)
	if r.err != nil {
		return
	}
	rf.trees = make([]*DecisionTree, n)
	for i := range rf.trees {
		t := &DecisionTree{}
		t.numClasses = r.int()
		t.maxDepth = r.int()
		t.minLeaf = r.int()
		t.numFeats = r.int()
		nodes := r.sliceLen(5 * 8)
		if r.err != nil {
			return
		}
		t.nodes = make([]treeNode, nodes)
		for j := range t.nodes {
			nd := &t.nodes[j]
			nd.feature = r.int()
			nd.thresh = r.f64()
			nd.left = int32(r.i64())
			nd.right = int32(r.i64())
			nd.label = int32(r.i64())
			if r.err == nil && nd.feature >= 0 &&
				(nd.left < 0 || int(nd.left) >= nodes || nd.right < 0 || int(nd.right) >= nodes) {
				r.fail("tree %d node %d has out-of-range children", i, j)
				return
			}
		}
		rf.trees[i] = t
		// The snapshot format carries the class count per tree (all trees of
		// one Fit share it); restore the forest-level tally width from it.
		if t.numClasses > rf.numCl {
			rf.numCl = t.numClasses
		}
	}
}
