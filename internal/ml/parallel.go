package ml

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
)

// Deterministic data-parallel training.
//
// Every gradient-trained model splits each minibatch into fixed-size shards
// (trainShard samples for vector models, graphShard graphs for the DGCNN).
// Workers claim whole shards and accumulate gradients into private per-shard
// buffers; the reduction then merges the shards in shard-index order. The
// shard structure depends only on the batch size — never on the worker
// count — so the float summation order is fixed and training results are
// byte-identical for any GOMAXPROCS / SetTrainWorkers value, including the
// serial path (one worker). This is the same guarantee the game harness
// gives for parallel rounds.

const (
	// trainShard is the gradient-shard width for vector models.
	trainShard = 8
	// graphShard is the gradient-shard width for graph models, smaller
	// because one graph is far heavier than one vector sample.
	graphShard = 2
)

// trainWorkers holds the configured worker count; 0 means GOMAXPROCS.
var trainWorkers atomic.Int32

// SetTrainWorkers sets the number of goroutines gradient-trained models use
// per minibatch. n <= 0 restores the default (GOMAXPROCS). Any value yields
// byte-identical training results; the knob only trades wall-clock for CPU.
// When the game harness already saturates the machine with parallel rounds
// (arena -j), set this to 1 to avoid oversubscription.
func SetTrainWorkers(n int) {
	if n < 0 {
		n = 0
	}
	trainWorkers.Store(int32(n))
}

// NumTrainWorkers reports the effective training worker count.
func NumTrainWorkers() int {
	if n := int(trainWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

func numShards(n, shardSize int) int {
	return (n + shardSize - 1) / shardSize
}

// forShards runs fn(shard, start, end) for every shardSize-wide shard of n
// samples. Shards are claimed atomically by up to NumTrainWorkers()
// goroutines; with one worker everything runs inline on the caller. fn must
// write only to per-shard state.
func forShards(n, shardSize int, fn func(shard, start, end int)) {
	shards := numShards(n, shardSize)
	workers := NumTrainWorkers()
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			end := (s + 1) * shardSize
			if end > n {
				end = n
			}
			fn(s, s*shardSize, end)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				end := (s + 1) * shardSize
				if end > n {
					end = n
				}
				fn(s, s*shardSize, end)
			}
		}()
	}
	wg.Wait()
}

// shardGrads holds per-shard gradient accumulators mirroring a parameter
// tensor list. Merging in shard order fixes the reduction's float summation
// order independently of which worker produced which shard.
type shardGrads struct {
	bufs [][][]float64 // [shard][tensor]
}

func newShardGrads(shards int, params [][]float64) *shardGrads {
	sg := &shardGrads{bufs: make([][][]float64, shards)}
	for s := range sg.bufs {
		sg.bufs[s] = make([][]float64, len(params))
		for t, p := range params {
			sg.bufs[s][t] = make([]float64, len(p))
		}
	}
	return sg
}

// shard returns shard s's tensor buffers, zeroed for a fresh accumulation.
func (sg *shardGrads) shard(s int) [][]float64 {
	bufs := sg.bufs[s]
	for _, b := range bufs {
		linalg.Zero(b)
	}
	return bufs
}

// mergeInto sets grads = Σ_shards bufs[shard], adding shards in index order
// (only the first `used` shards participate).
func (sg *shardGrads) mergeInto(grads [][]float64, used int) {
	for _, g := range grads {
		linalg.Zero(g)
	}
	for s := 0; s < used; s++ {
		for t, b := range sg.bufs[s] {
			linalg.Add(grads[t], b)
		}
	}
}

// splitmix is a tiny SplitMix64 PRNG used for per-sample dropout masks. The
// per-sample seeds are drawn from the model's rand.Rand in batch order
// before the shards fan out, so the mask stream is a pure function of the
// sample's position — not of worker interleaving.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
