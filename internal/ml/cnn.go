package ml

import (
	"math/rand"

	"repro/internal/linalg"
)

// CNN is the vector-input variant of Zhang et al.'s DGCNN: the four graph
// convolution layers are dropped (arrays have no vertices to merge) and
// what remains is the back half of that architecture — a 1-D convolution,
// max pooling, a second 1-D convolution, a dense layer with dropout and a
// softmax classifier. Both convolutions run as im2col GEMMs over the whole
// shard, and the dense layers as batched GEMMs over fixed gradient shards
// (see parallel.go), so training parallelizes with byte-identical results.
type CNN struct {
	C1, K1    int // first conv: filters, kernel
	C2, K2    int // second conv
	Hidden    int
	Dropout   float64
	Epochs    int
	BatchSize int
	LR        float64

	d, numCl         int
	l1, p1, l2, flat int // derived layer lengths
	w1, b1, w2, b2   []float64
	w3, b3, w4, b4   []float64
	std              *standardizer
	rng              *rand.Rand
	warm             bool // FitWarm in progress: keep std, geometry, tensors
}

// NewCNN returns an untrained 1-D CNN with the default shape.
func NewCNN(rng *rand.Rand) *CNN {
	return &CNN{
		C1: 8, K1: 5, C2: 16, K2: 5, Hidden: 64, Dropout: 0.3,
		Epochs: 50, BatchSize: 32, LR: 1e-3, rng: rng,
	}
}

// cnnScratch is one shard's workspace. Activation layouts (rows = samples
// in the shard):
//
//	xcol  (rows·l1) x K1      im2col of the standardized inputs
//	a1    (rows·l1) x C1      conv1 output, row-major, post-ReLU
//	pool  rows x (C1·p1)      channel-major per sample
//	pcol  (rows·l2) x (C1·K2) im2col of pool
//	a2    (rows·l2) x C2      conv2 output, row-major, post-ReLU
//
// so both convolutions and all their gradients are plain GEMMs.
type cnnScratch struct {
	xcol  []float64
	a1    []float64
	pool  []float64
	amax  []int // flat index into a1 per pooled cell
	pcol  []float64
	a2    []float64
	hid   []float64 // rows x Hidden post-ReLU post-dropout
	mask  []float64
	probs []float64

	dHid, dA2, dPcol []float64
	dPool, dA1       []float64
}

func (m *CNN) newScratch(rows int) *cnnScratch {
	ck := m.C1 * m.K2
	return &cnnScratch{
		xcol:  make([]float64, rows*m.l1*m.K1),
		a1:    make([]float64, rows*m.l1*m.C1),
		pool:  make([]float64, rows*m.C1*m.p1),
		amax:  make([]int, rows*m.C1*m.p1),
		pcol:  make([]float64, rows*m.l2*ck),
		a2:    make([]float64, rows*m.flat),
		hid:   make([]float64, rows*m.Hidden),
		mask:  make([]float64, rows*m.Hidden),
		probs: make([]float64, rows*m.numCl),
		dHid:  make([]float64, rows*m.Hidden),
		dA2:   make([]float64, rows*m.flat),
		dPcol: make([]float64, rows*m.l2*ck),
		dPool: make([]float64, rows*m.C1*m.p1),
		dA1:   make([]float64, rows*m.l1*m.C1),
	}
}

// Fit trains the network with minibatch Adam.
func (m *CNN) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("cnn")()
	if !m.warmOK(len(X[0]), numClasses) {
		m.std = fitStandardizer(X)
		m.d = len(X[0])
		m.numCl = numClasses
		m.l1 = m.d - m.K1 + 1
		if m.l1 < 2 {
			// Input too short for the kernel: shrink the kernel.
			m.K1 = m.d/2 + 1
			m.l1 = m.d - m.K1 + 1
		}
		m.p1 = m.l1 / 2
		m.l2 = m.p1 - m.K2 + 1
		if m.l2 < 1 {
			m.K2 = m.p1
			m.l2 = 1
		}
		m.flat = m.C2 * m.l2

		m.w1 = make([]float64, m.C1*m.K1)
		m.b1 = make([]float64, m.C1)
		m.w2 = make([]float64, m.C2*m.C1*m.K2)
		m.b2 = make([]float64, m.C2)
		m.w3 = make([]float64, m.Hidden*m.flat)
		m.b3 = make([]float64, m.Hidden)
		m.w4 = make([]float64, m.numCl*m.Hidden)
		m.b4 = make([]float64, m.numCl)
		xavier(m.w1, m.K1, m.C1, m.rng)
		xavier(m.w2, m.C1*m.K2, m.C2, m.rng)
		xavier(m.w3, m.flat, m.Hidden, m.rng)
		xavier(m.w4, m.Hidden, m.numCl, m.rng)
	}
	Xs := m.std.applyAll(X)

	params := [][]float64{m.w1, m.b1, m.w2, m.b2, m.w3, m.b3, m.w4, m.b4}
	opts := make([]*adam, len(params))
	grads := make([][]float64, len(params))
	for i, p := range params {
		opts[i] = newAdam(len(p), m.LR)
		grads[i] = make([]float64, len(p))
	}

	n := len(Xs)
	order := m.rng.Perm(n)
	batchMax := m.BatchSize
	if batchMax > n {
		batchMax = n
	}
	shards := numShards(batchMax, trainShard)
	sg := newShardGrads(shards, params)
	scr := make([]*cnnScratch, shards)
	for s := range scr {
		scr[s] = m.newScratch(trainShard)
	}
	seeds := make([]int64, batchMax)

	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			// Per-sample dropout seeds, drawn in batch order so the mask
			// stream does not depend on worker interleaving.
			for j := range batch {
				seeds[j] = m.rng.Int63()
			}
			inv := 1.0 / float64(len(batch))
			forShards(len(batch), trainShard, func(s, lo, hi int) {
				m.shardGrad(Xs, y, batch[lo:hi], seeds[lo:hi], inv, scr[s], sg.shard(s))
			})
			sg.mergeInto(grads, numShards(len(batch), trainShard))
			for i, p := range params {
				opts[i].step(p, grads[i])
			}
		}
	}
	return nil
}

// convForward computes conv1 + maxpool + conv2 for rows samples whose
// standardized inputs are fetched via xrow. Everything lands in sc.
func (m *CNN) convForward(xrow func(r int) []float64, rows int, sc *cnnScratch) {
	ck := m.C1 * m.K2
	// im2col of the inputs, then conv1 as one GEMM + ReLU.
	for r := 0; r < rows; r++ {
		x := xrow(r)
		base := r * m.l1 * m.K1
		for p := 0; p < m.l1; p++ {
			copy(sc.xcol[base+p*m.K1:base+(p+1)*m.K1], x[p:p+m.K1])
		}
	}
	a1 := sc.a1[:rows*m.l1*m.C1]
	for t := 0; t < rows*m.l1; t++ {
		copy(a1[t*m.C1:(t+1)*m.C1], m.b1)
	}
	linalg.GemmNT(a1, sc.xcol[:rows*m.l1*m.K1], m.w1, rows*m.l1, m.C1, m.K1)
	linalg.ReLU(a1)
	// maxpool 2 along positions.
	for r := 0; r < rows; r++ {
		for c := 0; c < m.C1; c++ {
			dst := (r*m.C1 + c) * m.p1
			for q := 0; q < m.p1; q++ {
				i0 := (r*m.l1+2*q)*m.C1 + c
				v, ai := a1[i0], i0
				if 2*q+1 < m.l1 && a1[i0+m.C1] > v {
					v, ai = a1[i0+m.C1], i0+m.C1
				}
				sc.pool[dst+q] = v
				sc.amax[dst+q] = ai
			}
		}
	}
	// im2col of pool, then conv2 as one GEMM + ReLU.
	for r := 0; r < rows; r++ {
		for p := 0; p < m.l2; p++ {
			dst := (r*m.l2 + p) * ck
			for ic := 0; ic < m.C1; ic++ {
				src := (r*m.C1+ic)*m.p1 + p
				copy(sc.pcol[dst+ic*m.K2:dst+(ic+1)*m.K2], sc.pool[src:src+m.K2])
			}
		}
	}
	a2 := sc.a2[:rows*m.flat]
	for t := 0; t < rows*m.l2; t++ {
		copy(a2[t*m.C2:(t+1)*m.C2], m.b2)
	}
	linalg.GemmNT(a2, sc.pcol[:rows*m.l2*ck], m.w2, rows*m.l2, m.C2, ck)
	linalg.ReLU(a2)
}

// shardGrad runs forward + backward over one shard of the minibatch,
// accumulating into the shard's private gradient buffers
// (order: w1, b1, w2, b2, w3, b3, w4, b4).
func (m *CNN) shardGrad(Xs [][]float64, y []int, idxs []int, seeds []int64,
	inv float64, sc *cnnScratch, g [][]float64) {

	gw1, gb1 := g[0], g[1]
	gw2, gb2 := g[2], g[3]
	gw3, gb3 := g[4], g[5]
	gw4, gb4 := g[6], g[7]
	rows := len(idxs)
	h, c, ck := m.Hidden, m.numCl, m.C1*m.K2

	m.convForward(func(r int) []float64 { return Xs[idxs[r]] }, rows, sc)
	a2 := sc.a2[:rows*m.flat]

	// Dense forward: hid = dropout(relu(b3 + A2·W3ᵀ)),
	// probs = softmax(b4 + hid·W4ᵀ).
	hid := sc.hid[:rows*h]
	for r := 0; r < rows; r++ {
		copy(hid[r*h:(r+1)*h], m.b3)
	}
	linalg.GemmNT(hid, a2, m.w3, rows, h, m.flat)
	linalg.ReLU(hid)
	mask := sc.mask[:rows*h]
	keep := 1 / (1 - m.Dropout)
	for r := 0; r < rows; r++ {
		sm := splitmix(seeds[r])
		for j := 0; j < h; j++ {
			if sm.float64() < m.Dropout {
				mask[r*h+j] = 0
				hid[r*h+j] = 0
			} else {
				mask[r*h+j] = keep
				hid[r*h+j] *= keep
			}
		}
	}
	probs := sc.probs[:rows*c]
	for r := 0; r < rows; r++ {
		copy(probs[r*c:(r+1)*c], m.b4)
	}
	linalg.GemmNT(probs, hid, m.w4, rows, c, h)
	linalg.SoftmaxRows(probs, rows, c)

	// dLogits = (probs - onehot)/batch, in place.
	for r, i := range idxs {
		probs[r*c+y[i]] -= 1
	}
	linalg.Scale(inv, probs)

	// Output layer.
	for r := 0; r < rows; r++ {
		linalg.Add(gb4, probs[r*c:(r+1)*c])
	}
	linalg.GemmTN(gw4, probs, hid, c, h, rows)
	dHid := sc.dHid[:rows*h]
	linalg.Zero(dHid)
	linalg.GemmNN(dHid, probs, m.w4, rows, h, c)

	// Gate through dropout + ReLU: hid > 0 iff the unit survived both.
	for i, v := range hid {
		if v == 0 {
			dHid[i] = 0
		} else {
			dHid[i] *= mask[i]
		}
	}
	for r := 0; r < rows; r++ {
		linalg.Add(gb3, dHid[r*h:(r+1)*h])
	}
	linalg.GemmTN(gw3, dHid, a2, h, m.flat, rows)
	dA2 := sc.dA2[:rows*m.flat]
	linalg.Zero(dA2)
	linalg.GemmNN(dA2, dHid, m.w3, rows, m.flat, h)

	// conv2 backward: gate by ReLU, then GEMMs against pcol.
	for i, v := range a2 {
		if v == 0 {
			dA2[i] = 0
		}
	}
	for t := 0; t < rows*m.l2; t++ {
		linalg.Add(gb2, dA2[t*m.C2:(t+1)*m.C2])
	}
	linalg.GemmTN(gw2, dA2, sc.pcol[:rows*m.l2*ck], m.C2, ck, rows*m.l2)
	dPcol := sc.dPcol[:rows*m.l2*ck]
	linalg.Zero(dPcol)
	linalg.GemmNN(dPcol, dA2, m.w2, rows*m.l2, ck, m.C2)

	// col2im back onto the pooled map, unpool, gate by conv1's ReLU.
	dPool := sc.dPool[:rows*m.C1*m.p1]
	linalg.Zero(dPool)
	for r := 0; r < rows; r++ {
		for p := 0; p < m.l2; p++ {
			src := (r*m.l2 + p) * ck
			for ic := 0; ic < m.C1; ic++ {
				dst := (r*m.C1+ic)*m.p1 + p
				linalg.Add(dPool[dst:dst+m.K2], dPcol[src+ic*m.K2:src+(ic+1)*m.K2])
			}
		}
	}
	dA1 := sc.dA1[:rows*m.l1*m.C1]
	linalg.Zero(dA1)
	for i, gv := range dPool {
		if gv != 0 {
			dA1[sc.amax[i]] += gv
		}
	}
	a1 := sc.a1[:rows*m.l1*m.C1]
	for i, v := range a1 {
		if v == 0 {
			dA1[i] = 0
		}
	}
	for t := 0; t < rows*m.l1; t++ {
		linalg.Add(gb1, dA1[t*m.C1:(t+1)*m.C1])
	}
	linalg.GemmTN(gw1, dA1, sc.xcol[:rows*m.l1*m.K1], m.C1, m.K1, rows*m.l1)
}

// Predict returns the argmax class.
func (m *CNN) Predict(x []float64) int {
	d := len(x)
	if d < m.d {
		d = m.d
	}
	xs := linalg.Grab(d)
	m.std.applyInto(xs, x)
	ck := m.C1 * m.K2
	sc := &cnnScratch{
		xcol: linalg.Grab(m.l1 * m.K1),
		a1:   linalg.Grab(m.l1 * m.C1),
		pool: linalg.Grab(m.C1 * m.p1),
		amax: linalg.GrabInts(m.C1 * m.p1),
		pcol: linalg.Grab(m.l2 * ck),
		a2:   linalg.Grab(m.flat),
	}
	m.convForward(func(int) []float64 { return xs[:m.d] }, 1, sc)
	hid := linalg.Grab(m.Hidden)
	copy(hid, m.b3)
	linalg.MatVec(hid, m.w3, sc.a2, m.Hidden, m.flat)
	linalg.ReLU(hid)
	out := linalg.Grab(m.numCl)
	copy(out, m.b4)
	linalg.MatVec(out, m.w4, hid, m.numCl, m.Hidden)
	best := argmax(out)
	linalg.Drop(out)
	linalg.Drop(hid)
	linalg.Drop(sc.a2)
	linalg.Drop(sc.pcol)
	linalg.DropInts(sc.amax)
	linalg.Drop(sc.pool)
	linalg.Drop(sc.a1)
	linalg.Drop(sc.xcol)
	linalg.Drop(xs)
	return best
}

// MemoryBytes counts all parameter tensors. Mirroring the paper's
// observation, the convolutional model is an order of magnitude heavier in
// practice because training keeps per-example activation state; we include
// one activation buffer set in the estimate.
func (m *CNN) MemoryBytes() int64 {
	params := len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2) +
		len(m.w3) + len(m.b3) + len(m.w4) + len(m.b4)
	acts := m.C1*m.l1 + m.C1*m.p1 + m.C2*m.l2 + m.Hidden + m.numCl
	return int64(params+acts)*8*3 + m.std.memory() // params + adam m/v
}
