package ml

import (
	"math/rand"
)

// CNN is the vector-input variant of Zhang et al.'s DGCNN: the four graph
// convolution layers are dropped (arrays have no vertices to merge) and
// what remains is the back half of that architecture — a 1-D convolution,
// max pooling, a second 1-D convolution, a dense layer with dropout and a
// softmax classifier.
type CNN struct {
	C1, K1    int // first conv: filters, kernel
	C2, K2    int // second conv
	Hidden    int
	Dropout   float64
	Epochs    int
	BatchSize int
	LR        float64

	d, numCl         int
	l1, p1, l2, flat int // derived layer lengths
	w1, b1, w2, b2   []float64
	w3, b3, w4, b4   []float64
	std              *standardizer
	rng              *rand.Rand
}

// NewCNN returns an untrained 1-D CNN with the default shape.
func NewCNN(rng *rand.Rand) *CNN {
	return &CNN{
		C1: 8, K1: 5, C2: 16, K2: 5, Hidden: 64, Dropout: 0.3,
		Epochs: 50, BatchSize: 32, LR: 1e-3, rng: rng,
	}
}

// cnnState holds per-example activations for backprop.
type cnnState struct {
	x     []float64
	a1    []float64 // C1 x l1 post-ReLU
	pool  []float64 // C1 x p1
	amax  []int     // argmax index per pooled cell
	a2    []float64 // C2 x l2 post-ReLU
	hid   []float64 // Hidden post-ReLU
	mask  []float64 // dropout mask over hidden
	probs []float64
}

// Fit trains the network with minibatch Adam.
func (m *CNN) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	m.std = fitStandardizer(X)
	Xs := m.std.applyAll(X)
	m.d = len(X[0])
	m.numCl = numClasses
	m.l1 = m.d - m.K1 + 1
	if m.l1 < 2 {
		// Input too short for the kernel: shrink the kernel.
		m.K1 = m.d/2 + 1
		m.l1 = m.d - m.K1 + 1
	}
	m.p1 = m.l1 / 2
	m.l2 = m.p1 - m.K2 + 1
	if m.l2 < 1 {
		m.K2 = m.p1
		m.l2 = 1
	}
	m.flat = m.C2 * m.l2

	m.w1 = make([]float64, m.C1*m.K1)
	m.b1 = make([]float64, m.C1)
	m.w2 = make([]float64, m.C2*m.C1*m.K2)
	m.b2 = make([]float64, m.C2)
	m.w3 = make([]float64, m.Hidden*m.flat)
	m.b3 = make([]float64, m.Hidden)
	m.w4 = make([]float64, m.numCl*m.Hidden)
	m.b4 = make([]float64, m.numCl)
	xavier(m.w1, m.K1, m.C1, m.rng)
	xavier(m.w2, m.C1*m.K2, m.C2, m.rng)
	xavier(m.w3, m.flat, m.Hidden, m.rng)
	xavier(m.w4, m.Hidden, m.numCl, m.rng)

	opts := []*adam{
		newAdam(len(m.w1), m.LR), newAdam(len(m.b1), m.LR),
		newAdam(len(m.w2), m.LR), newAdam(len(m.b2), m.LR),
		newAdam(len(m.w3), m.LR), newAdam(len(m.b3), m.LR),
		newAdam(len(m.w4), m.LR), newAdam(len(m.b4), m.LR),
	}
	params := [][]float64{m.w1, m.b1, m.w2, m.b2, m.w3, m.b3, m.w4, m.b4}
	grads := make([][]float64, len(params))
	for i, p := range params {
		grads[i] = make([]float64, len(p))
	}

	st := m.newState()
	n := len(Xs)
	order := m.rng.Perm(n)
	for ep := 0; ep < m.Epochs; ep++ {
		m.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			for _, g := range grads {
				zero(g)
			}
			batch := order[start:end]
			inv := 1.0 / float64(len(batch))
			for _, i := range batch {
				m.forward(Xs[i], st, true)
				m.backward(st, y[i], inv, grads)
			}
			for i, p := range params {
				opts[i].step(p, grads[i])
			}
		}
	}
	return nil
}

func (m *CNN) newState() *cnnState {
	return &cnnState{
		a1:    make([]float64, m.C1*m.l1),
		pool:  make([]float64, m.C1*m.p1),
		amax:  make([]int, m.C1*m.p1),
		a2:    make([]float64, m.C2*m.l2),
		hid:   make([]float64, m.Hidden),
		mask:  make([]float64, m.Hidden),
		probs: make([]float64, m.numCl),
	}
}

func (m *CNN) forward(x []float64, st *cnnState, train bool) {
	st.x = x
	// conv1 (single input channel) + ReLU.
	for c := 0; c < m.C1; c++ {
		wb := c * m.K1
		for p := 0; p < m.l1; p++ {
			s := m.b1[c]
			for k := 0; k < m.K1; k++ {
				s += m.w1[wb+k] * x[p+k]
			}
			st.a1[c*m.l1+p] = relu(s)
		}
	}
	// maxpool 2.
	for c := 0; c < m.C1; c++ {
		for p := 0; p < m.p1; p++ {
			i0 := c*m.l1 + 2*p
			v, ai := st.a1[i0], i0
			if 2*p+1 < m.l1 && st.a1[i0+1] > v {
				v, ai = st.a1[i0+1], i0+1
			}
			st.pool[c*m.p1+p] = v
			st.amax[c*m.p1+p] = ai
		}
	}
	// conv2 over C1 channels + ReLU.
	for c := 0; c < m.C2; c++ {
		for p := 0; p < m.l2; p++ {
			s := m.b2[c]
			for ic := 0; ic < m.C1; ic++ {
				wb := (c*m.C1 + ic) * m.K2
				pb := ic*m.p1 + p
				for k := 0; k < m.K2; k++ {
					s += m.w2[wb+k] * st.pool[pb+k]
				}
			}
			st.a2[c*m.l2+p] = relu(s)
		}
	}
	// dense + ReLU + dropout.
	for j := 0; j < m.Hidden; j++ {
		s := m.b3[j]
		base := j * m.flat
		for k := 0; k < m.flat; k++ {
			s += m.w3[base+k] * st.a2[k]
		}
		v := relu(s)
		if train {
			if m.rng.Float64() < m.Dropout {
				st.mask[j] = 0
			} else {
				st.mask[j] = 1 / (1 - m.Dropout)
			}
			v *= st.mask[j]
		}
		st.hid[j] = v
	}
	// output logits.
	for c := 0; c < m.numCl; c++ {
		s := m.b4[c]
		base := c * m.Hidden
		for j := 0; j < m.Hidden; j++ {
			s += m.w4[base+j] * st.hid[j]
		}
		st.probs[c] = s
	}
	softmaxInPlace(st.probs)
}

// backward accumulates gradients for one example (already forwarded).
// grads order: w1,b1,w2,b2,w3,b3,w4,b4.
func (m *CNN) backward(st *cnnState, label int, scale float64, grads [][]float64) {
	gw1, gb1 := grads[0], grads[1]
	gw2, gb2 := grads[2], grads[3]
	gw3, gb3 := grads[4], grads[5]
	gw4, gb4 := grads[6], grads[7]

	dLogits := make([]float64, m.numCl)
	for c := range dLogits {
		g := st.probs[c]
		if c == label {
			g -= 1
		}
		dLogits[c] = g * scale
	}
	dHid := make([]float64, m.Hidden)
	for c := 0; c < m.numCl; c++ {
		g := dLogits[c]
		gb4[c] += g
		base := c * m.Hidden
		for j := 0; j < m.Hidden; j++ {
			gw4[base+j] += g * st.hid[j]
			dHid[j] += g * m.w4[base+j]
		}
	}
	dA2 := make([]float64, m.flat)
	for j := 0; j < m.Hidden; j++ {
		if st.hid[j] == 0 {
			continue // ReLU off or dropped out
		}
		g := dHid[j] * st.mask[j]
		if st.mask[j] == 0 {
			continue
		}
		// hid[j] = relu(z)*mask; relu derivative is 1 where hid>0.
		gb3[j] += g
		base := j * m.flat
		for k := 0; k < m.flat; k++ {
			gw3[base+k] += g * st.a2[k]
			dA2[k] += g * m.w3[base+k]
		}
	}
	dPool := make([]float64, m.C1*m.p1)
	for c := 0; c < m.C2; c++ {
		for p := 0; p < m.l2; p++ {
			idx := c*m.l2 + p
			if st.a2[idx] <= 0 {
				continue
			}
			g := dA2[idx]
			gb2[c] += g
			for ic := 0; ic < m.C1; ic++ {
				wb := (c*m.C1 + ic) * m.K2
				pb := ic*m.p1 + p
				for k := 0; k < m.K2; k++ {
					gw2[wb+k] += g * st.pool[pb+k]
					dPool[pb+k] += g * m.w2[wb+k]
				}
			}
		}
	}
	dA1 := make([]float64, m.C1*m.l1)
	for i, g := range dPool {
		if g != 0 {
			dA1[st.amax[i]] += g
		}
	}
	for c := 0; c < m.C1; c++ {
		wb := c * m.K1
		for p := 0; p < m.l1; p++ {
			idx := c*m.l1 + p
			if st.a1[idx] <= 0 {
				continue
			}
			g := dA1[idx]
			if g == 0 {
				continue
			}
			gb1[c] += g
			for k := 0; k < m.K1; k++ {
				gw1[wb+k] += g * st.x[p+k]
			}
		}
	}
}

// Predict returns the argmax class.
func (m *CNN) Predict(x []float64) int {
	st := m.newState()
	for j := range st.mask {
		st.mask[j] = 1
	}
	m.forward(m.std.apply(x), st, false)
	return argmax(st.probs)
}

// MemoryBytes counts all parameter tensors. Mirroring the paper's
// observation, the convolutional model is an order of magnitude heavier in
// practice because training keeps per-example activation state; we include
// one activation buffer set in the estimate.
func (m *CNN) MemoryBytes() int64 {
	params := len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2) +
		len(m.w3) + len(m.b3) + len(m.w4) + len(m.b4)
	acts := m.C1*m.l1 + m.C1*m.p1 + m.C2*m.l2 + m.Hidden + m.numCl
	return int64(params+acts)*8*3 + m.std.memory() // params + adam m/v
}
