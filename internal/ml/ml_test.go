package ml_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/ml"
)

// synthBlobs generates an easy gaussian-blob classification problem and
// splits it into train and test halves drawn from the same centers.
func synthBlobs(rng *rand.Rand, nTrain, nTest, d, classes int, spread float64) (Xtr [][]float64, ytr []int, Xte [][]float64, yte []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 10
		}
	}
	draw := func(n int) ([][]float64, []int) {
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			c := i % classes
			y[i] = c
			row := make([]float64, d)
			for j := range row {
				row[j] = centers[c][j] + rng.NormFloat64()*spread
			}
			X[i] = row
		}
		return X, y
	}
	Xtr, ytr = draw(nTrain)
	Xte, yte = draw(nTest)
	return
}

func accuracy(m ml.Model, X [][]float64, y []int) float64 {
	hits := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(X))
}

func TestAllVectorModelsLearnBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	Xtr, ytr, Xte, yte := synthBlobs(rng, 300, 150, 10, 5, 1.5)

	for _, name := range ml.VectorNames() {
		m, err := ml.New(name, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(Xtr, ytr, 5); err != nil {
			t.Fatalf("%s: fit: %v", name, err)
		}
		acc := accuracy(m, Xte, yte)
		if acc < 0.9 {
			t.Errorf("%s: accuracy %.2f on trivially separable blobs", name, acc)
		}
		if m.MemoryBytes() <= 0 {
			t.Errorf("%s: non-positive memory estimate", name)
		}
	}
}

func TestModelsRejectBadInput(t *testing.T) {
	for _, name := range ml.VectorNames() {
		m, _ := ml.New(name, rand.New(rand.NewSource(1)))
		if err := m.Fit(nil, nil, 3); err == nil {
			t.Errorf("%s: fit accepted empty training set", name)
		}
		if err := m.Fit([][]float64{{1}}, []int{5}, 3); err == nil {
			t.Errorf("%s: fit accepted out-of-range label", name)
		}
		if err := m.Fit([][]float64{{1}, {2}}, []int{0, 1}, 1); err == nil {
			t.Errorf("%s: fit accepted single-class problem", name)
		}
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := ml.New("transformer", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecisionTreeExactFit(t *testing.T) {
	// A tree with unlimited depth must reach 100% training accuracy on
	// consistent data.
	rng := rand.New(rand.NewSource(3))
	X, y, _, _ := synthBlobs(rng, 200, 0, 6, 4, 3.0)
	tree := ml.NewDecisionTree(0, 0, rand.New(rand.NewSource(5)))
	if err := tree.Fit(X, y, 4); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, X, y); acc != 1.0 {
		t.Fatalf("training accuracy %.3f, want 1.0", acc)
	}
}

func TestRandomForestBeatsSingleShallowTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	Xtr, ytr, Xte, yte := synthBlobs(rng, 400, 200, 12, 6, 4.0)

	tree := ml.NewDecisionTree(2, 0, rand.New(rand.NewSource(1)))
	if err := tree.Fit(Xtr, ytr, 6); err != nil {
		t.Fatal(err)
	}
	rf := ml.NewRandomForest(40, 0, rand.New(rand.NewSource(1)))
	if err := rf.Fit(Xtr, ytr, 6); err != nil {
		t.Fatal(err)
	}
	accTree := accuracy(tree, Xte, yte)
	accRF := accuracy(rf, Xte, yte)
	if accRF <= accTree-0.01 {
		t.Fatalf("forest (%.3f) should not lose to a depth-2 tree (%.3f)", accRF, accTree)
	}
}

func TestKNNDegenerateK(t *testing.T) {
	m := ml.NewKNN(50) // larger than the training set
	X := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
	y := []int{0, 0, 1, 1}
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	// With k capped at n the vote is global majority (tie -> class 0 ok);
	// the model must at least not panic and stay deterministic.
	_ = m.Predict([]float64{0, 0})
}

func TestKNNSimple(t *testing.T) {
	m := ml.NewKNN(3)
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {10, 10}, {11, 10}, {10, 11}}
	y := []int{0, 0, 0, 1, 1, 1}
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5, 0.5}); got != 0 {
		t.Fatalf("predict near cluster 0 = %d", got)
	}
	if got := m.Predict([]float64{10.5, 10.5}); got != 1 {
		t.Fatalf("predict near cluster 1 = %d", got)
	}
}

// graph test helpers: class 0 = chains with "add-ish" features, class 1 =
// stars with "mul-ish" features.
func synthGraphs(rng *rand.Rand, n int) ([]*embed.Graph, []int) {
	gs := make([]*embed.Graph, n)
	ys := make([]int, n)
	for i := range gs {
		cls := i % 2
		nodes := 6 + rng.Intn(6)
		g := &embed.Graph{}
		for v := 0; v < nodes; v++ {
			f := make([]float64, 8)
			if cls == 0 {
				f[v%3] = 1
			} else {
				f[3+v%3] = 1
			}
			g.NodeFeats = append(g.NodeFeats, f)
		}
		if cls == 0 {
			for v := 0; v+1 < nodes; v++ {
				g.Edges = append(g.Edges, [2]int{v, v + 1})
				g.EdgeTypes = append(g.EdgeTypes, embed.ControlEdge)
			}
		} else {
			for v := 1; v < nodes; v++ {
				g.Edges = append(g.Edges, [2]int{0, v})
				g.EdgeTypes = append(g.EdgeTypes, embed.ControlEdge)
			}
		}
		gs[i] = g
		ys[i] = cls
	}
	return gs, ys
}

func TestDGCNNLearnsGraphClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gtr, ytr := synthGraphs(rng, 80)
	gte, yte := synthGraphs(rng, 40)
	m := ml.NewDGCNN(rand.New(rand.NewSource(4)))
	m.Epochs = 40
	if err := m.FitGraphs(gtr, ytr, 2); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, g := range gte {
		if m.PredictGraph(g) == yte[i] {
			hits++
		}
	}
	acc := float64(hits) / float64(len(gte))
	if acc < 0.9 {
		t.Fatalf("dgcnn accuracy %.2f on trivially separable graphs", acc)
	}
	if m.MemoryBytes() <= 0 {
		t.Fatal("non-positive memory estimate")
	}
}

func TestDGCNNRejectsBadInput(t *testing.T) {
	m := ml.NewDGCNN(rand.New(rand.NewSource(1)))
	if err := m.FitGraphs(nil, nil, 2); err == nil {
		t.Fatal("accepted empty graph set")
	}
}

// Property test: model predictions are deterministic after training.
func TestPredictionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y, _, _ := synthBlobs(rng, 120, 0, 8, 3, 2.0)
	for _, name := range ml.VectorNames() {
		m, _ := ml.New(name, rand.New(rand.NewSource(2)))
		if err := m.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			x := make([]float64, 8)
			for j := range x {
				x[j] = r.NormFloat64() * 5
			}
			return m.Predict(x) == m.Predict(x)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property test: predictions are always a valid class index.
func TestPredictionRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y, _, _ := synthBlobs(rng, 90, 0, 5, 3, 2.0)
	for _, name := range ml.VectorNames() {
		m, _ := ml.New(name, rand.New(rand.NewSource(3)))
		if err := m.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		f := func(vals [5]float64) bool {
			c := m.Predict(vals[:])
			return c >= 0 && c < 3
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	// The paper reports the lightweight linear models well under the
	// tree/conv models; verify the same ordering holds here.
	rng := rand.New(rand.NewSource(13))
	X, y, _, _ := synthBlobs(rng, 200, 0, 63, 8, 2.0)
	fit := func(name string) ml.Model {
		m, _ := ml.New(name, rand.New(rand.NewSource(5)))
		if err := m.Fit(X, y, 8); err != nil {
			t.Fatal(err)
		}
		return m
	}
	lr := fit("lr")
	rf := fit("rf")
	if rf.MemoryBytes() <= lr.MemoryBytes() {
		t.Fatalf("rf (%d B) should outweigh lr (%d B)", rf.MemoryBytes(), lr.MemoryBytes())
	}
}
