package ml

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
)

// treeNode is one node of a CART decision tree, stored in a flat arena.
type treeNode struct {
	feature int     // split feature; -1 for leaves
	thresh  float64 // go left when x[feature] <= thresh
	left    int32
	right   int32
	label   int32 // leaf prediction
}

// DecisionTree is a CART classifier with Gini impurity splits.
type DecisionTree struct {
	nodes      []treeNode
	maxDepth   int
	minLeaf    int
	numFeats   int // features sampled per split; 0 = all
	rng        *rand.Rand
	numClasses int
}

// NewDecisionTree builds an untrained tree. maxDepth 0 means unlimited;
// numFeats 0 considers every feature at every split.
func NewDecisionTree(maxDepth, numFeats int, rng *rand.Rand) *DecisionTree {
	return &DecisionTree{maxDepth: maxDepth, minLeaf: 1, numFeats: numFeats, rng: rng}
}

// Fit trains the tree.
func (t *DecisionTree) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	t.numClasses = numClasses
	t.nodes = t.nodes[:0]
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.build(X, y, idx, 0)
	return nil
}

// build grows the subtree over samples idx and returns its node index.
func (t *DecisionTree) build(X [][]float64, y []int, idx []int, depth int) int32 {
	counts := make([]int, t.numClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	majority, pure := majorityClass(counts, len(idx))
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, label: int32(majority)})
	if pure || len(idx) <= t.minLeaf || (t.maxDepth > 0 && depth >= t.maxDepth) {
		return node
	}
	feat, thresh, ok := t.bestSplit(X, y, idx, counts)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	l := t.build(X, y, left, depth+1)
	r := t.build(X, y, right, depth+1)
	t.nodes[node].feature = feat
	t.nodes[node].thresh = thresh
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

func majorityClass(counts []int, n int) (int, bool) {
	best, bestN := 0, -1
	for c, k := range counts {
		if k > bestN {
			best, bestN = c, k
		}
	}
	return best, bestN == n
}

// bestSplit scans candidate features for the threshold minimizing the
// weighted Gini impurity, using the classic sort-and-sweep.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int, total []int) (int, float64, bool) {
	d := len(X[0])
	feats := make([]int, d)
	for i := range feats {
		feats[i] = i
	}
	if t.numFeats > 0 && t.numFeats < d {
		t.rng.Shuffle(d, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:t.numFeats]
	}
	n := len(idx)
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	type pair struct {
		v float64
		c int
	}
	pairs := make([]pair, n)
	leftCounts := make([]int, t.numClasses)
	rightCounts := make([]int, t.numClasses)
	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = pair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[n-1].v {
			continue
		}
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = total[c]
		}
		leftN, rightN := 0, n
		leftSq, rightSq := 0.0, sumSquares(rightCounts)
		for k := 0; k < n-1; k++ {
			c := pairs[k].c
			// Incremental sum-of-squares update.
			leftSq += float64(2*leftCounts[c] + 1)
			rightSq -= float64(2*rightCounts[c] - 1)
			leftCounts[c]++
			rightCounts[c]--
			leftN++
			rightN--
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			gini := giniFromSquares(leftSq, leftN) * float64(leftN) / float64(n)
			gini += giniFromSquares(rightSq, rightN) * float64(rightN) / float64(n)
			if gini < bestGini {
				bestGini = gini
				bestFeat = f
				bestThresh = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

func sumSquares(counts []int) float64 {
	s := 0.0
	for _, c := range counts {
		s += float64(c) * float64(c)
	}
	return s
}

func giniFromSquares(sq float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return 1 - sq/(float64(n)*float64(n))
}

// Predict descends the tree.
func (t *DecisionTree) Predict(x []float64) int {
	node := int32(0)
	for {
		nd := &t.nodes[node]
		if nd.feature < 0 {
			return int(nd.label)
		}
		if x[nd.feature] <= nd.thresh {
			node = nd.left
		} else {
			node = nd.right
		}
	}
}

// MemoryBytes counts the node arena.
func (t *DecisionTree) MemoryBytes() int64 { return int64(len(t.nodes)) * 32 }

// RandomForest is a bagged ensemble of decision trees with per-split
// feature subsampling (sqrt(d) by default, like SciKit's classifier).
type RandomForest struct {
	NumTrees int
	MaxDepth int
	trees    []*DecisionTree
	numCl    int
	rng      *rand.Rand
}

// NewRandomForest builds an untrained forest. maxDepth 0 means unlimited.
func NewRandomForest(numTrees, maxDepth int, rng *rand.Rand) *RandomForest {
	return &RandomForest{NumTrees: numTrees, MaxDepth: maxDepth, rng: rng}
}

// Fit trains each tree on a bootstrap sample.
func (rf *RandomForest) Fit(X [][]float64, y []int, numClasses int) error {
	if err := checkFit(X, y, numClasses); err != nil {
		return err
	}
	defer fitSpan("rf")()
	d := len(X[0])
	mtry := int(math.Sqrt(float64(d)))
	if mtry < 1 {
		mtry = 1
	}
	rf.numCl = numClasses
	rf.trees = make([]*DecisionTree, rf.NumTrees)
	n := len(X)
	for ti := range rf.trees {
		bi := make([]int, n)
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := range bi {
			j := rf.rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := NewDecisionTree(rf.MaxDepth, mtry, rand.New(rand.NewSource(rf.rng.Int63())))
		if err := tree.Fit(bx, by, numClasses); err != nil {
			return err
		}
		rf.trees[ti] = tree
	}
	return nil
}

// Predict takes a majority vote over the ensemble. The tally runs over a
// pooled slice; the winner is the first class in tree order to reach each
// new peak count, exactly as the old map-based tally resolved ties.
func (rf *RandomForest) Predict(x []float64) int {
	if rf.numCl <= 0 {
		return rf.predictMapVotes(x)
	}
	votes := linalg.GrabInts(rf.numCl)
	best, bestN := 0, -1
	for _, t := range rf.trees {
		c := t.Predict(x)
		votes[c]++
		if votes[c] > bestN {
			best, bestN = c, votes[c]
		}
	}
	linalg.DropInts(votes)
	return best
}

// predictMapVotes is the unbounded-class fallback for forests whose class
// count is unknown (zero-valued structs in tests); trained or snapshot-
// restored forests always carry numCl.
func (rf *RandomForest) predictMapVotes(x []float64) int {
	votes := map[int]int{}
	best, bestN := 0, -1
	for _, t := range rf.trees {
		c := t.Predict(x)
		votes[c]++
		if votes[c] > bestN {
			best, bestN = c, votes[c]
		}
	}
	return best
}

// MemoryBytes sums the trees.
func (rf *RandomForest) MemoryBytes() int64 {
	var n int64
	for _, t := range rf.trees {
		n += t.MemoryBytes()
	}
	return n
}
