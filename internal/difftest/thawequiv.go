package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/progen"
)

// This file is the differential proof obligation behind ir.Thaw: for every
// registered module-level transform, mutating a module thawed from its flat
// view must be indistinguishable — bit for bit — from mutating a deep clone
// of the same module. The clone path is the oracle: it predates the flat IR
// and copies the pointer graph directly, so any divergence is a thaw bug
// (mis-wired operand, broken aliasing, a shared node that should have been
// private), not a transform bug.
//
// Each cell compiles the program once, derives both copies from that one
// module, runs the same transform with identically-seeded RNGs on each, and
// demands:
//
//   - the transform errors on both copies or on neither
//   - both results verify
//   - both results print identically
//   - both results behave identically under the interpreter: same return
//     value, same output, same trap kind, same step count (no relaxed trap
//     clause — the two modules are supposed to be the same module)
//
// After all transforms, the master module must still print exactly as it did
// before any cell ran and re-flatten to byte-identical tables: a transform
// that reaches through a thawed copy's shared immutables (types, foreign
// declarations) and mutates the master fails here even if its own cell
// passed.

// ThawEquivConfig bounds one thaw-equivalence campaign.
type ThawEquivConfig struct {
	N       int    // programs to generate
	Seed    int64  // base seed; program i uses Seed+i
	Workers int    // parallel workers (clamped; <=0 means all cores)
	Set     string // transform set for Transforms(); source transforms are skipped
	// Gen overrides the program shape; zero value means progen defaults.
	Gen progen.Config
}

// ThawEquivResult is the outcome of RunThawEquivalence.
type ThawEquivResult struct {
	Programs   int
	Transforms int   // module-level transforms exercised per program
	Cells      int64 // (program, transform) cells compared
	OracleErrs int64 // programs that failed to compile (generator bugs)
	Failures   []Failure
}

// thawCheck runs one transform over a clone-derived and a thaw-derived copy
// of master and returns a non-empty detail string on any divergence.
func thawCheck(master *ir.Module, fl *ir.Flat, tr Transform, seed int64) string {
	cl := master.Clone()
	th := ir.Thaw(fl)
	errA := tr.ApplyMod(cl, rand.New(rand.NewSource(seed)))
	errB := tr.ApplyMod(th, rand.New(rand.NewSource(seed)))
	if (errA == nil) != (errB == nil) {
		return fmt.Sprintf("transform error only on one path: clone=%v thaw=%v", errA, errB)
	}
	if errA != nil {
		if errA.Error() != errB.Error() {
			return fmt.Sprintf("transform errors differ: clone=%v thaw=%v", errA, errB)
		}
		return "" // failed identically; nothing further to compare
	}
	if err := cl.Verify(); err != nil {
		return fmt.Sprintf("clone path fails verify: %v", err)
	}
	if err := th.Verify(); err != nil {
		return fmt.Sprintf("thaw path fails verify: %v", err)
	}
	sa, sb := cl.String(), th.String()
	if sa != sb {
		return fmt.Sprintf("transformed modules print differently:\n--- clone ---\n%s\n--- thaw ---\n%s", sa, sb)
	}
	oa := Observe(cl, OracleMaxSteps)
	ob := Observe(th, OracleMaxSteps)
	if oa != ob {
		return fmt.Sprintf("transformed modules behave differently: clone %s vs thaw %s", oa, ob)
	}
	return ""
}

// RunThawEquivalence generates cfg.N programs and, for each, checks every
// module-level transform in cfg.Set for clone/thaw equivalence. The run is
// deterministic for a fixed (Seed, N, Set) regardless of Workers.
func RunThawEquivalence(cfg ThawEquivConfig) (*ThawEquivResult, error) {
	all, err := Transforms(cfg.Set)
	if err != nil {
		return nil, err
	}
	var trs []Transform
	for _, tr := range all {
		if tr.ApplyMod != nil {
			trs = append(trs, tr)
		}
	}
	if len(trs) == 0 {
		return nil, fmt.Errorf("difftest: transform set %q has no module-level transforms", cfg.Set)
	}
	gen := cfg.Gen
	if gen == (progen.Config{}) {
		gen = progen.DefaultConfig()
	}

	programs := obs.GetCounter("thawfuzz.programs")
	cells := obs.GetCounter("thawfuzz.cells")
	failures := obs.GetCounter("thawfuzz.failures")

	res := &ThawEquivResult{Programs: cfg.N, Transforms: len(trs)}
	var mu sync.Mutex
	workers := core.ClampWorkers(cfg.Workers, cfg.N)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				progSeed := cfg.Seed + int64(i)
				src := progen.GenerateCfg(rand.New(rand.NewSource(progSeed)), gen)
				programs.Inc()
				master, err := minic.CompileSource(src, "prog")
				if err != nil {
					mu.Lock()
					res.OracleErrs++
					res.Failures = append(res.Failures, Failure{
						Seed: progSeed, Transform: "compile", Verdict: TransformError,
						Detail: err.Error(), Repro: src,
					})
					mu.Unlock()
					continue
				}
				before := master.String()
				fl := ir.Flatten(master)
				var fails []Failure
				for _, tr := range trs {
					cells.Inc()
					if detail := thawCheck(master, fl, tr, cellSeed(progSeed, tr.Name)); detail != "" {
						fails = append(fails, Failure{
							Seed: progSeed, Transform: tr.Name, Verdict: Mismatch,
							Detail: detail, Repro: src,
						})
					}
				}
				// The master fed every cell; none may have touched it — not
				// through the clone, not through shared thaw immutables.
				if after := master.String(); after != before {
					fails = append(fails, Failure{
						Seed: progSeed, Transform: "master-immutability", Verdict: Mismatch,
						Detail: fmt.Sprintf("master mutated by transform cells:\n--- before ---\n%s\n--- after ---\n%s", before, after),
						Repro:  src,
					})
				} else if d := ir.FlatDiff(fl, ir.Flatten(master)); d != "" {
					fails = append(fails, Failure{
						Seed: progSeed, Transform: "master-immutability", Verdict: Mismatch,
						Detail: "master no longer re-flattens to its original tables: " + d,
						Repro:  src,
					})
				}
				if len(fails) > 0 {
					mu.Lock()
					res.Failures = append(res.Failures, fails...)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	res.Cells = int64(res.Programs) * int64(res.Transforms)

	// Failure order must not depend on worker scheduling.
	sort.Slice(res.Failures, func(i, j int) bool {
		if res.Failures[i].Seed != res.Failures[j].Seed {
			return res.Failures[i].Seed < res.Failures[j].Seed
		}
		return res.Failures[i].Transform < res.Failures[j].Transform
	})
	for range res.Failures {
		failures.Inc()
	}
	return res, nil
}
