// Package difftest is the differential-testing harness behind `arena fuzz`
// and `make fuzz-smoke`: it compiles generated MiniC programs, records the
// unoptimized interpreter run as the semantic oracle, then pushes the same
// source through every registered transformation — each optimization pass,
// the O1–O3 pipelines, each obfuscator and composed evader pipelines — and
// demands that the module still verifies and behaves identically.
//
// # Trap-equivalence policy
//
// Observable behaviour is (stdout, exit value, trap kind). Two runs are
// compared under the policy the repo documents in DESIGN.md:
//
//   - If the oracle run completes without trapping, every transformed run
//     must also complete without trapping, with bit-identical stdout and
//     exit value. The transformed run gets a step budget of 64x the oracle's
//     step count plus a constant slack, so a legal slowdown (obfuscators
//     routinely cost ~8x) never reads as a divergence, while a transform
//     that introduces nontermination still fails loudly.
//   - If the oracle run traps, traps are not treated as observable events:
//     an optimizer may legally delete an unreachable trapping instruction or
//     reorder a trap with respect to output. The transformed run may either
//     trap (any kind) or complete cleanly, and the shorter of the two stdout
//     streams must be a prefix of the longer. Such cells count as
//     "trap-skipped", never as "equal".
//
// progen generates trap-free programs by construction, so in practice the
// second clause only fires for hand-written or shrunk repro inputs.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obfus"
	"repro/internal/passes"
)

// OracleMaxSteps is the interpreter budget for the O0 oracle run. progen
// programs terminate in well under a million steps; the headroom is for
// hand-written repro inputs.
const OracleMaxSteps = 16 << 20

// budgetFor returns the transformed run's step budget given the oracle's
// step count: generous enough for legal slowdowns, finite enough to catch
// introduced nontermination.
func budgetFor(oracleSteps int64) int64 { return 64*oracleSteps + 65536 }

// Obs is the observable behaviour of one interpreter run.
type Obs struct {
	Ret   int64  // main's return value (0 if trapped)
	Out   string // everything printed before completion or trap
	Trap  string // trap kind ("" = completed): div0, mem, budget, stack, unreachable, other
	Steps int64  // instructions executed
}

func (o Obs) String() string {
	if o.Trap != "" {
		return fmt.Sprintf("trap=%s out=%q steps=%d", o.Trap, o.Out, o.Steps)
	}
	return fmt.Sprintf("ret=%d out=%q steps=%d", o.Ret, o.Out, o.Steps)
}

// trapKind folds the interpreter's trap message into a stable category so
// failure reports and crasher filenames stay short and diffable.
func trapKind(err error) string {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "division by zero"):
		return "div0"
	case strings.Contains(msg, "invalid memory access"),
		strings.Contains(msg, "negative allocation"),
		strings.Contains(msg, "out of memory"):
		return "mem"
	case strings.Contains(msg, "instruction budget exhausted"):
		return "budget"
	case strings.Contains(msg, "call stack overflow"):
		return "stack"
	case strings.Contains(msg, "reached unreachable"):
		return "unreachable"
	default:
		return "other"
	}
}

// Observe runs m under the given step budget and captures its behaviour.
// Interpreter errors become trap observations rather than Go errors: a trap
// is a legitimate program behaviour under the equivalence policy.
func Observe(m *ir.Module, maxSteps int64) Obs {
	return ObserveEngine(m, maxSteps, nil)
}

// ObserveEngine is Observe on a specific execution engine (nil means the
// tree interpreter). Every engine reports the same Obs for the same module
// by contract; EngineCheck enforces it.
func ObserveEngine(m *ir.Module, maxSteps int64, eng interp.Engine) Obs {
	var res *interp.Result
	var err error
	if eng == nil {
		res, err = interp.Run(m, interp.Options{MaxSteps: maxSteps})
	} else {
		res, err = eng.Run(m, interp.Options{MaxSteps: maxSteps})
	}
	if err != nil {
		o := Obs{Trap: trapKind(err)}
		if res != nil {
			o.Out = res.Output
			o.Steps = res.Steps
		}
		return o
	}
	return Obs{Ret: res.Ret, Out: res.Output, Steps: res.Steps}
}

// Oracle compiles src at O0 and records its behaviour, which every
// transformed run is then compared against.
func Oracle(src string) (Obs, error) {
	m, err := minic.CompileSource(src, "oracle")
	if err != nil {
		return Obs{}, fmt.Errorf("oracle compile: %w", err)
	}
	if err := m.Verify(); err != nil {
		return Obs{}, fmt.Errorf("oracle verify: %w", err)
	}
	return Observe(m, OracleMaxSteps), nil
}

// Verdict classifies one (program, transform) cell.
type Verdict int

// The verdicts, from best to worst. Mismatch, EngineDiverged, VerifyFail
// and TransformError are failures; Equal and TrapSkipped are not.
const (
	Equal          Verdict = iota // identical observable behaviour
	TrapSkipped                   // oracle trapped; compared under the relaxed trap clause
	Mismatch                      // observable behaviour diverged
	EngineDiverged                // two execution engines disagreed on the same module
	VerifyFail                    // ir.Verify failed after the transform
	TransformError                // the transform itself returned an error
)

func (v Verdict) String() string {
	switch v {
	case Equal:
		return "equal"
	case TrapSkipped:
		return "trap-skipped"
	case Mismatch:
		return "mismatch"
	case EngineDiverged:
		return "engine-diverged"
	case VerifyFail:
		return "verify-fail"
	default:
		return "transform-error"
	}
}

// Failure reports whether the verdict means the transform broke semantics.
func (v Verdict) Failure() bool { return v >= Mismatch }

// Equivalent applies the trap-equivalence policy documented on the package.
func Equivalent(oracle, got Obs) (Verdict, string) {
	if oracle.Trap == "" {
		if got.Trap != "" {
			return Mismatch, fmt.Sprintf("oracle completed but transformed trapped: %s vs %s", oracle, got)
		}
		if got.Ret != oracle.Ret || got.Out != oracle.Out {
			return Mismatch, fmt.Sprintf("output diverged: %s vs %s", oracle, got)
		}
		return Equal, ""
	}
	// Trapping oracle: the transform may remove, reorder or change the
	// trap; only already-produced output constrains it.
	a, b := oracle.Out, got.Out
	if len(b) < len(a) {
		a, b = b, a
	}
	if !strings.HasPrefix(b, a) {
		return Mismatch, fmt.Sprintf("outputs not prefix-compatible across trap: %s vs %s", oracle, got)
	}
	return TrapSkipped, ""
}

// Transform is one registered transformation under test.
type Transform struct {
	Name  string
	Group string // pass | pipeline | obfus | composed | source
	Apply func(src string, rng *rand.Rand) (*ir.Module, error)
	// ApplyMod is the module-level half of the transform: it mutates a
	// module the caller already compiled. Apply is compile followed by
	// ApplyMod for every group except "source" (whose transforms rewrite
	// MiniC text and therefore have no module form; ApplyMod is nil there).
	// The thaw-equivalence campaign uses ApplyMod to run one transform over
	// two differently-obtained copies of the same module.
	ApplyMod func(m *ir.Module, rng *rand.Rand) error
}

// compile is the front half shared by the pass/pipeline/obfus transforms.
// Each cell compiles privately (no progcache) so a cache bug can never mask
// or fabricate a transform bug.
func compile(src string) (*ir.Module, error) {
	return minic.CompileSource(src, "prog")
}

// fromMod lifts a module-level transform into the source-level Apply shape.
func fromMod(mod func(m *ir.Module, rng *rand.Rand) error) func(src string, rng *rand.Rand) (*ir.Module, error) {
	return func(src string, rng *rand.Rand) (*ir.Module, error) {
		m, err := compile(src)
		if err != nil {
			return nil, err
		}
		return m, mod(m, rng)
	}
}

func passTransform(name string) Transform {
	mod := func(m *ir.Module, _ *rand.Rand) error {
		_, err := passes.RunPass(m, name)
		return err
	}
	return Transform{Name: name, Group: "pass", Apply: fromMod(mod), ApplyMod: mod}
}

func pipelineTransform(name string) Transform {
	lvl, _ := passes.ParseLevel(name)
	mod := func(m *ir.Module, _ *rand.Rand) error {
		return passes.Optimize(m, lvl)
	}
	return Transform{Name: name, Group: "pipeline", Apply: fromMod(mod), ApplyMod: mod}
}

func obfusTransform(name string) Transform {
	mod := func(m *ir.Module, rng *rand.Rand) error {
		return obfus.Apply(m, name, rng)
	}
	return Transform{Name: name, Group: "obfus", Apply: fromMod(mod), ApplyMod: mod}
}

// composedTransform chains a core evader with a core normalization level —
// the exact obfuscate-then-normalize composition Game 3 plays. The evaders
// composed here are all module-level obfuscations, so the module form simply
// chains the two mutations; Apply still routes through core.Transform so the
// campaign exercises the same progcache path production uses.
func composedTransform(evader, level string) Transform {
	lvl, _ := passes.ParseLevel(level)
	return Transform{Name: evader + "+" + level, Group: "composed",
		Apply: func(src string, rng *rand.Rand) (*ir.Module, error) {
			m, err := core.Transform(src, evader, rng)
			if err != nil {
				return nil, err
			}
			return m, core.Normalize(m, lvl)
		},
		ApplyMod: func(m *ir.Module, rng *rand.Rand) error {
			if err := obfus.Apply(m, evader, rng); err != nil {
				return err
			}
			return core.Normalize(m, lvl)
		}}
}

func sourceTransform(name string) Transform {
	return Transform{Name: name, Group: "source", Apply: func(src string, rng *rand.Rand) (*ir.Module, error) {
		return core.Transform(src, name, rng)
	}}
}

// PassNames are the individual passes under differential test.
var PassNames = []string{"mem2reg", "instcombine", "simplifycfg", "sccp", "dce", "gvn", "licm", "unroll", "inline"}

// Transforms returns the transform set for a campaign:
//
//	smoke    every pass, pipeline and obfuscator
//	module   smoke plus the composed evader pipelines (default)
//	all      module plus the source-level evader strategies (slow)
//	<name>   just the named transform
func Transforms(set string) ([]Transform, error) {
	var ts []Transform
	for _, p := range PassNames {
		ts = append(ts, passTransform(p))
	}
	for _, lvl := range []string{"O1", "O2", "O3"} {
		ts = append(ts, pipelineTransform(lvl))
	}
	for _, o := range []string{"bcf", "fla", "sub", "ollvm"} {
		ts = append(ts, obfusTransform(o))
	}
	if set == "smoke" {
		return ts, nil
	}
	ts = append(ts,
		composedTransform("bcf", "O2"),
		composedTransform("fla", "O3"),
		composedTransform("ollvm", "O2"),
	)
	switch set {
	case "", "module":
		return ts, nil
	case "all":
		for _, s := range []string{"rs", "mcmc", "drlsg", "ga"} {
			ts = append(ts, sourceTransform(s))
		}
		return ts, nil
	}
	for _, t := range ts {
		if t.Name == set {
			return []Transform{t}, nil
		}
	}
	for _, s := range []string{"rs", "mcmc", "drlsg", "ga"} {
		if s == set {
			return []Transform{sourceTransform(s)}, nil
		}
	}
	return nil, fmt.Errorf("difftest: unknown transform set %q", set)
}

// CheckOne runs a single (program, transform) cell against a precomputed
// oracle and returns the verdict plus a human-readable detail on failure.
func CheckOne(src string, tr Transform, rng *rand.Rand, oracle Obs) (Verdict, string) {
	return CheckOneEngine(src, tr, rng, oracle, nil)
}

// EngineCheck runs m on both the tree interpreter and eng and demands a
// bit-identical observation: same return value, same output, same trap
// kind, same step count. This is the engine-conformance half of the fuzz
// campaign — unlike transform equivalence there is no relaxed trap clause,
// because the two engines execute the very same module.
func EngineCheck(m *ir.Module, maxSteps int64, eng interp.Engine) (Obs, Verdict, string) {
	tree := Observe(m, maxSteps)
	got := ObserveEngine(m, maxSteps, eng)
	if got != tree {
		return tree, EngineDiverged, fmt.Sprintf("engine %s disagrees with tree: %s vs %s", eng.Name(), got, tree)
	}
	return tree, Equal, ""
}

// CheckOneEngine is CheckOne with engine cross-validation: when eng is
// non-nil (and not the tree interpreter itself), the transformed module is
// executed on both engines and any disagreement is reported as
// EngineDiverged before the usual transform-equivalence comparison.
func CheckOneEngine(src string, tr Transform, rng *rand.Rand, oracle Obs, eng interp.Engine) (Verdict, string) {
	m, err := tr.Apply(src, rng)
	if err != nil {
		return TransformError, err.Error()
	}
	if err := m.Verify(); err != nil {
		return VerifyFail, err.Error()
	}
	if eng != nil && eng.Name() != "tree" {
		got, v, detail := EngineCheck(m, budgetFor(oracle.Steps), eng)
		if v.Failure() {
			return v, detail
		}
		return Equivalent(oracle, got)
	}
	got := Observe(m, budgetFor(oracle.Steps))
	return Equivalent(oracle, got)
}
